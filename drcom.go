// Package drcom is the public face of the declarative real-time OSGi
// component model (DRCom) reproduction: one System value wires together
// the OSGi-like framework, the simulated RTAI kernel, and the DRCR
// runtime, so applications deal only with descriptors, bundles, and
// management services.
//
// Quickstart:
//
//	sys, err := drcom.NewSystem(drcom.Config{})
//	if err != nil { ... }
//	defer sys.Close()
//	err = sys.DeployXML(`<component name="camera" ...>...</component>`)
//	err = sys.Run(time.Second) // advance simulated time
//	info, _ := sys.Component("camera")
package drcom

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/adl"
	"repro/internal/core"
	"repro/internal/descriptor"
	"repro/internal/ldap"
	"repro/internal/manifest"
	"repro/internal/obs"
	"repro/internal/osgi"
	"repro/internal/plan"
	"repro/internal/policy"
	"repro/internal/rtos"
	"repro/internal/sim"
)

// Re-exported types, so typical applications import only this package.
type (
	// LoadMode is the system load regime (light or stress).
	LoadMode = rtos.LoadMode
	// State is the DRCom component lifecycle state of Figure 1.
	State = core.State
	// Info is a read-only component snapshot.
	Info = core.Info
	// Event is one lifecycle transition record.
	Event = core.Event
	// Management is the per-component management service of §2.4.
	Management = core.Management
	// Resolver is the pluggable resolving-service contract.
	Resolver = policy.Resolver
	// Contract is a component's declared real-time contract.
	Contract = policy.Contract
	// View is the DRCR's global contract view.
	View = policy.View
	// Decision is a resolving service's verdict.
	Decision = policy.Decision
	// Time is a point in simulated time.
	Time = sim.Time
	// Observer is the read-only observability view: live spans, causal
	// chains, metric snapshots, trace digests.
	Observer = obs.Observer
	// Span is one traced DRCR decision.
	Span = obs.Span
	// MetricsSnapshot is the stable-ordered metrics export.
	MetricsSnapshot = obs.Snapshot

	// Plan is a compiled, pre-validated composition plan (typed port
	// checks, wiring table, activation schedule, admission deltas).
	Plan = plan.Plan
	// PlanRejectError aggregates the typed port conflicts that made a
	// bundle impossible to compose; DeployBundle returns it before
	// anything is installed.
	PlanRejectError = plan.RejectError
	// PortIncompatibility names one conflicting port pair and why the
	// provider cannot satisfy the consumer (version range vs. structural
	// datatype mismatch).
	PortIncompatibility = plan.PortIncompatibility

	// Built-in resolving services, re-exported for convenience.
	Utilization = policy.Utilization
	RMA         = policy.RMA
	EDF         = policy.EDF
	Chain       = policy.Chain
	Static      = policy.Static
	// Func adapts a closure to a customized resolving service.
	Func = policy.Func
)

// Re-exported constants.
const (
	LightLoad  = rtos.LightLoad
	StressLoad = rtos.StressLoad

	// Scheduling disciplines for Config.Policy.
	FixedPriority         = rtos.FixedPriority
	EarliestDeadlineFirst = rtos.EarliestDeadlineFirst

	Disabled    = core.Disabled
	Unsatisfied = core.Unsatisfied
	Satisfied   = core.Satisfied
	Active      = core.Active
	Suspended   = core.Suspended
	Destroyed   = core.Destroyed

	// ManagementInterface is the registry name of management services.
	ManagementInterface = core.ManagementInterface
	// ResolverInterface is the registry name customized resolving
	// services are published under.
	ResolverInterface = policy.ServiceInterface
)

// Config parameterises a System.
type Config struct {
	// NumCPUs sets the simulated processor count (default 1; the paper's
	// testbed was a dual-core machine, so 2 is common).
	NumCPUs int
	// Seed drives all simulation randomness (default 1).
	Seed uint64
	// Mode is the initial load regime (default LightLoad).
	Mode LoadMode
	// Quantum is the round-robin slice among equal priorities; zero
	// selects the 100µs default, negative disables rotation.
	Quantum time.Duration
	// Internal overrides the DRCR's internal resolving service (default
	// utilization admission with bound 1.0).
	Internal Resolver
	// ExecJitter is the fractional execution-time variance of component
	// tasks (default 0.05; negative disables).
	ExecJitter float64
	// Policy selects the kernel's dispatch discipline; default the
	// paper's fixed-priority + round-robin. EDF is available as an
	// extension (see Ablation D).
	Policy rtos.SchedPolicy
}

// System owns one complete DRCom stack.
type System struct {
	fw     *osgi.Framework
	kernel *rtos.Kernel
	drcr   *core.DRCR
	closed bool
}

// NewSystem boots a framework, a kernel and a DRCR.
func NewSystem(cfg Config) (*System, error) {
	fw := osgi.NewFramework()
	kernel := rtos.NewKernel(rtos.Config{
		NumCPUs: cfg.NumCPUs,
		Seed:    cfg.Seed,
		Mode:    cfg.Mode,
		Quantum: cfg.Quantum,
		Policy:  cfg.Policy,
	})
	d, err := core.New(fw, kernel, core.Options{
		Internal:   cfg.Internal,
		ExecJitter: cfg.ExecJitter,
	})
	if err != nil {
		return nil, err
	}
	return &System{fw: fw, kernel: kernel, drcr: d}, nil
}

// Framework exposes the underlying OSGi-like framework.
func (s *System) Framework() *osgi.Framework { return s.fw }

// Kernel exposes the simulated RTAI kernel.
func (s *System) Kernel() *rtos.Kernel { return s.kernel }

// DRCR exposes the component runtime.
func (s *System) DRCR() *core.DRCR { return s.drcr }

// Now reports the current simulated time.
func (s *System) Now() Time { return s.kernel.Now() }

// Run advances simulated time by d, executing everything due.
func (s *System) Run(d time.Duration) error { return s.kernel.Run(d) }

// SetLoadMode switches between the light and stress regimes at run time.
func (s *System) SetLoadMode(m LoadMode) { s.kernel.SetLoadMode(m) }

// DeployXML parses, validates and deploys one component descriptor.
func (s *System) DeployXML(src string) error {
	desc, err := descriptor.Parse(src)
	if err != nil {
		return err
	}
	return s.drcr.Deploy(desc)
}

// DeployBundle installs and starts a bundle carrying the given DRCom
// descriptors (resource path → XML), the way the paper's components are
// "delivered as individual bundles". Resources are installed in sorted
// path order, so the deploy is deterministic regardless of map order.
//
// Before anything is installed, the descriptor set is compiled into a
// composition plan: a typed port conflict — a provider speaks a
// consumer's topic but fails its version range or structural datatype —
// rejects the whole bundle with a *PlanRejectError naming the exact
// port pair, instead of installing components doomed to wait or be
// denied. The compiled plan is cached, so the bundle start that follows
// fast-applies it without recompiling.
func (s *System) DeployBundle(symbolicName, version string, descriptors map[string]string) (*osgi.Bundle, error) {
	if len(descriptors) == 0 {
		return nil, errors.New("drcom: bundle needs at least one descriptor")
	}
	v, err := manifest.ParseVersion(version)
	if err != nil {
		return nil, fmt.Errorf("drcom: %w", err)
	}
	paths := make([]string, 0, len(descriptors))
	for path := range descriptors {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	m := manifest.New(symbolicName, v)
	resources := map[string]string{}
	var descs []*descriptor.Component
	for _, path := range paths {
		src := descriptors[path]
		if err := descriptor.Sniff(src); err != nil {
			return nil, fmt.Errorf("drcom: resource %s: %w", path, err)
		}
		m.DRComComponents = append(m.DRComComponents, path)
		resources[path] = src
		if desc, err := descriptor.Parse(src); err == nil {
			descs = append(descs, desc) // malformed ones are skipped at adoption
		}
	}
	if len(descs) > 0 {
		if _, err := s.drcr.CompilePlan(descs); err != nil {
			return nil, err
		}
	}
	b, err := s.fw.Install(osgi.Definition{Manifest: m, Resources: resources})
	if err != nil {
		return nil, err
	}
	if err := b.Start(); err != nil {
		return nil, err
	}
	return b, nil
}

// CompilePlan compiles (or fetches from the plan cache) the composition
// plan for a set of descriptor sources in the given order, against the
// system's current admitted view — what the console's `plan` command
// renders. A typed port conflict returns a *PlanRejectError.
func (s *System) CompilePlan(srcs []string) (*Plan, error) {
	descs, err := descriptor.ParseAll(srcs)
	if err != nil {
		return nil, err
	}
	return s.drcr.CompilePlan(descs)
}

// DeployApplication parses an ADL application document plus the component
// descriptors it references, validates the architecture (connections,
// port compatibility, coverage, acyclicity), and deploys the members in
// provider-before-consumer order.
func (s *System) DeployApplication(appSrc string, componentSrcs []string) error {
	app, err := adl.Parse(appSrc)
	if err != nil {
		return err
	}
	comps, err := descriptor.ParseAll(componentSrcs)
	if err != nil {
		return err
	}
	byName := make(map[string]*descriptor.Component, len(comps))
	for _, c := range comps {
		byName[c.Name] = c
	}
	return adl.Deploy(s.drcr, app, byName)
}

// RegisterBody binds a descriptor bincode to a functional routine.
func (s *System) RegisterBody(bincode string, f core.BodyFactory) error {
	return s.drcr.RegisterBody(bincode, f)
}

// RegisterResolver publishes a customized resolving service in the
// registry; the DRCR consults it on every admission. The returned
// function withdraws it.
func (s *System) RegisterResolver(r Resolver) (remove func(), err error) {
	if r == nil {
		return nil, errors.New("drcom: nil resolver")
	}
	reg, err := s.fw.RegisterService([]string{ResolverInterface}, r, ldap.Properties{
		"resolver.name": r.Name(),
	})
	if err != nil {
		return nil, err
	}
	// New resolvers can change past denials; re-resolve immediately.
	s.drcr.Resolve()
	return func() {
		_ = reg.Unregister()
		s.drcr.Resolve()
	}, nil
}

// Component returns a snapshot of one component.
func (s *System) Component(name string) (Info, bool) { return s.drcr.Component(name) }

// Components lists snapshots of all components.
func (s *System) Components() []Info { return s.drcr.Components() }

// Management returns a component's live management service.
func (s *System) Management(name string) (Management, bool) { return s.drcr.Management(name) }

// Enable enables a disabled component (enableRTComponent).
func (s *System) Enable(name string) error { return s.drcr.Enable(name) }

// Disable disables a component, deactivating it if needed.
func (s *System) Disable(name string) error { return s.drcr.Disable(name) }

// Suspend suspends an active component via its management interface.
func (s *System) Suspend(name string) error { return s.drcr.Suspend(name) }

// Resume resumes a suspended component.
func (s *System) Resume(name string) error { return s.drcr.Resume(name) }

// Remove destroys a component and re-resolves dependants.
func (s *System) Remove(name string) error { return s.drcr.Remove(name) }

// Downgrade steps an active component down one declared service mode; it
// keeps serving under the cheaper contract.
func (s *System) Downgrade(name, reason string) error { return s.drcr.Downgrade(name, reason) }

// AllowPromotion lifts the promotion hold a Downgrade left, letting the
// resolver step the component back toward its full contract.
func (s *System) AllowPromotion(name string) error { return s.drcr.AllowPromotion(name) }

// Crash abruptly fails a component: it lands DISABLED, where only a
// restart supervisor or an explicit Enable brings it back.
func (s *System) Crash(name, reason string) error { return s.drcr.Crash(name, reason) }

// GlobalView returns the DRCR's admission view of promised contracts.
func (s *System) GlobalView() View { return s.drcr.GlobalView() }

// Observer returns the read-only management view of the observability
// plane: live spans, per-component causal chains (`why`), and metric
// snapshots over every subsystem.
func (s *System) Observer() Observer { return s.drcr.Observer() }

// Events returns the lifecycle event log.
func (s *System) Events() []Event { return s.drcr.Events() }

// AddListener subscribes to lifecycle events.
func (s *System) AddListener(f func(Event)) (remove func()) { return s.drcr.AddListener(f) }

// Close shuts the DRCR and the framework down.
func (s *System) Close() {
	if s.closed {
		return
	}
	s.closed = true
	s.drcr.Close()
	_ = s.fw.Shutdown()
}
