// Command smartcamera runs the paper's motivating ARFLEX scenario
// (Figure 2 / Figure 3): a smart camera that returns regions of interest
// on demand, split into a real-time acquisition pipeline and an OSGi
// management plane.
//
// Three components ship in two bundles:
//
//	camera  (100 Hz, RT) — grabs frames, writes ROI bytes to RTAI.SHM
//	roiSel  (100 Hz, RT) — consumes frames, selects a region of interest
//	panel   ( 10 Hz, RT) — consumes the ROI for the operator display
//
// The program demonstrates descriptor-driven wiring, functional bodies
// doing real data flow over the simulated RTAI SHM, and an adaptation
// manager that retunes the camera through the management service it
// discovers in the registry.
package main

import (
	"fmt"
	"log"
	"strconv"
	"time"

	drcom "repro"
	"repro/internal/descriptor"
	"repro/internal/rtos"
)

const cameraXML = `<component name="camera" desc="smart camera controller" type="periodic" cpuusage="0.1">
  <implementation bincode="ua.pats.demo.smartcamera.RTComponent"/>
  <periodictask frequence="100" runoncup="0" priority="2"/>
  <outport name="frames" interface="RTAI.SHM" type="Byte" size="400"/>
  <property name="gain" type="Integer" value="1"/>
</component>`

const roiXML = `<component name="roisel" desc="region of interest selector" type="periodic" cpuusage="0.05">
  <implementation bincode="ua.pats.demo.smartcamera.ROISelector"/>
  <periodictask frequence="100" runoncup="0" priority="3"/>
  <inport name="frames" interface="RTAI.SHM" type="Byte" size="400"/>
  <outport name="roi" interface="RTAI.SHM" type="Integer" size="4"/>
</component>`

const panelXML = `<component name="panel" desc="operator display" type="periodic" cpuusage="0.01">
  <implementation bincode="ua.pats.demo.smartcamera.Panel"/>
  <periodictask frequence="10" runoncup="0" priority="4"/>
  <inport name="roi" interface="RTAI.SHM" type="Integer" size="4"/>
</component>`

func main() {
	sys, err := drcom.NewSystem(drcom.Config{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// Functional bodies: a synthetic frame generator, a brightest-pixel
	// ROI selector, and a panel that tallies what it sees.
	registerBodies(sys)

	fmt.Println("== starting the camera bundle (camera + ROI selector)")
	if _, err := sys.DeployBundle("ua.pats.demo.smartcamera", "1.0", map[string]string{
		"OSGI-INF/camera.xml": cameraXML,
		"OSGI-INF/roi.xml":    roiXML,
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("== starting the panel bundle")
	if _, err := sys.DeployBundle("ua.pats.demo.panel", "1.0", map[string]string{
		"OSGI-INF/panel.xml": panelXML,
	}); err != nil {
		log.Fatal(err)
	}
	for _, info := range sys.Components() {
		fmt.Printf("   %-7s %-11v bindings=%v\n", info.Name, info.State, info.Bindings)
	}

	fmt.Println("== running 2 simulated seconds of the pipeline")
	if err := sys.Run(2 * time.Second); err != nil {
		log.Fatal(err)
	}
	report(sys)

	// An external adaptation manager: discover the camera's management
	// service via the registry and double its gain, exactly the fine-
	// tuning loop §2.4 describes.
	fmt.Println("== adaptation manager raises camera gain via the registry")
	refs := sys.Framework().ServiceReferences(drcom.ManagementInterface, nil)
	for _, ref := range refs {
		if ref.Property("drcom.component") != "camera" {
			continue
		}
		mgmt := sys.Framework().Service(ref).(drcom.Management)
		cur, _ := mgmt.Property("gain")
		gain, _ := strconv.Atoi(cur)
		if err := mgmt.SetProperty("gain", strconv.Itoa(gain*2)); err != nil {
			log.Fatal(err)
		}
	}
	if err := sys.Run(time.Second); err != nil {
		log.Fatal(err)
	}
	report(sys)

	fmt.Println("== camera bundle stops: dependants cascade down")
	cam := sys.Framework().BundleByName("ua.pats.demo.smartcamera")
	if err := cam.Stop(); err != nil {
		log.Fatal(err)
	}
	for _, info := range sys.Components() {
		fmt.Printf("   %-7s %-11v (%s)\n", info.Name, info.State, info.LastReason)
	}
}

func registerBodies(sys *drcom.System) {
	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	must(sys.RegisterBody("ua.pats.demo.smartcamera.RTComponent", func(c *descriptor.Component) rtos.Body {
		return func(j *rtos.JobContext) {
			shm, err := j.Kernel.IPC().SHM("frames")
			if err != nil {
				return
			}
			// Synthetic frame: a bright spot whose position sweeps with
			// time, scaled by the gain property.
			frame := make([]int64, 400)
			pos := int(j.Index % 400)
			frame[pos] = 200
			_ = shm.WriteAll(frame)
		}
	}))
	must(sys.RegisterBody("ua.pats.demo.smartcamera.ROISelector", func(c *descriptor.Component) rtos.Body {
		return func(j *rtos.JobContext) {
			frames, err := j.Kernel.IPC().SHM("frames")
			if err != nil {
				return
			}
			roi, err := j.Kernel.IPC().SHM("roi")
			if err != nil {
				return
			}
			// Find the brightest pixel; publish x, y, w, h.
			data := frames.ReadAll()
			best, bestIdx := int64(-1), 0
			for i, v := range data {
				if v > best {
					best, bestIdx = v, i
				}
			}
			_ = roi.Set(0, int64(bestIdx%20))
			_ = roi.Set(1, int64(bestIdx/20))
			_ = roi.Set(2, 4)
			_ = roi.Set(3, 4)
		}
	}))
	must(sys.RegisterBody("ua.pats.demo.smartcamera.Panel", func(c *descriptor.Component) rtos.Body {
		return func(j *rtos.JobContext) {
			roi, err := j.Kernel.IPC().SHM("roi")
			if err != nil {
				return
			}
			_, _ = roi.Get(0)
			_, _ = roi.Get(1)
		}
	}))
}

func report(sys *drcom.System) {
	for _, name := range []string{"camera", "roisel", "panel"} {
		task, ok := sys.Kernel().Task(name)
		if !ok {
			continue
		}
		st := task.Stats()
		fmt.Printf("   %-7s jobs=%-6d misses=%-3d latency avg %8.1f ns max %8d ns\n",
			name, st.Jobs, st.Misses, st.Latency.Average, st.Latency.Max)
	}
}
