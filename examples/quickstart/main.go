// Command quickstart is the smallest complete DRCom program: boot a
// system, deploy one declarative real-time component, watch its Figure 1
// lifecycle, drive it through the management interface, and read its
// latency statistics.
package main

import (
	"fmt"
	"log"
	"time"

	drcom "repro"
)

const cameraXML = `<component name="camera" desc="smart camera controller" type="periodic" cpuusage="0.1">
  <implementation bincode="ua.pats.demo.smartcamera.RTComponent"/>
  <periodictask frequence="100" runoncup="0" priority="2"/>
  <outport name="images" interface="RTAI.SHM" type="Byte" size="400"/>
  <property name="prox00" type="Integer" value="6"/>
</component>`

func main() {
	sys, err := drcom.NewSystem(drcom.Config{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// Print every lifecycle transition as it happens.
	remove := sys.AddListener(func(ev drcom.Event) {
		fmt.Printf("  lifecycle %s\n", ev)
	})
	defer remove()

	fmt.Println("== deploying the Figure 2 smart-camera component")
	if err := sys.DeployXML(cameraXML); err != nil {
		log.Fatal(err)
	}

	info, _ := sys.Component("camera")
	fmt.Printf("== state: %v (reason: %s)\n", info.State, info.LastReason)

	fmt.Println("== running 1 simulated second at 100 Hz")
	if err := sys.Run(time.Second); err != nil {
		log.Fatal(err)
	}

	mgmt, ok := sys.Management("camera")
	if !ok {
		log.Fatal("management service missing")
	}
	st := mgmt.Status()
	fmt.Printf("== status: %d jobs, %d misses, state %v\n", st.Jobs, st.Misses, st.TaskState)

	fmt.Println("== reconfiguring through the management interface (async)")
	if err := mgmt.SetProperty("prox00", "9"); err != nil {
		log.Fatal(err)
	}
	if err := sys.Run(20 * time.Millisecond); err != nil { // next job polls the mailbox
		log.Fatal(err)
	}
	v, _ := mgmt.Property("prox00")
	fmt.Printf("== prox00 is now %s\n", v)

	fmt.Println("== suspend / resume")
	if err := sys.Suspend("camera"); err != nil {
		log.Fatal(err)
	}
	if err := sys.Run(100 * time.Millisecond); err != nil {
		log.Fatal(err)
	}
	if err := sys.Resume("camera"); err != nil {
		log.Fatal(err)
	}
	if err := sys.Run(100 * time.Millisecond); err != nil {
		log.Fatal(err)
	}

	task, _ := sys.Kernel().Task("camera")
	row := task.Stats().Latency
	fmt.Printf("== scheduling latency: avg %.1f ns, avedev %.1f ns, min %d, max %d (n=%d)\n",
		row.Average, row.AveDev, row.Min, row.Max, row.N)
}
