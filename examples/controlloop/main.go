// Command controlloop replays the paper's §4.3 dynamicity scenario with
// the §4.2 component pair: the Display component functionally depends on
// the Calculation component's outport, so the DRCR activates and
// deactivates it automatically as Calculation's bundle starts and stops.
// It then prints the latency comparison of the two implementations
// (Table 1's light-mode rows) for a short run.
package main

import (
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/workload"
)

func main() {
	fmt.Println("== §4.3 dynamicity scenario (Calculation ⇄ Display)")
	res, err := workload.RunDynamicityScenario(42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   %-4s %-55s %-12s %-12s\n", "step", "event", "calc", "disp")
	for _, s := range res.Steps {
		fmt.Printf("   %-4s %-55s %-12s %-12s\n", s.At, s.Description, s.CalcState, s.DispState)
	}

	fmt.Println("\n== DRCR lifecycle timeline (the process figures §4.3 had no page budget for)")
	fmt.Println(bench.Timeline(res.Events))

	fmt.Println("\n== light-mode latency, 10k samples per implementation")
	out, rows, err := bench.Table1(10000, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out)
	fmt.Println("== side by side with the published Table 1")
	fmt.Println(bench.CompareWithPaper(rows))
}
