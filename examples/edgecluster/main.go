// Command edgecluster federates a four-node telecom edge gateway over
// the deterministic simulated network: a central gateway node (n0)
// aggregates baseband feeds produced by three cell nodes (n1..n3), each
// cell also carrying local load (a transcoder pair, a billing collector).
// Mid-run the backhaul to cell n3 is cut. The majority leader declares
// the node lost and re-places its components on nodes with spare budget;
// the evacuated cell radio does not fit at full rate, so admission walks
// its declared mode ladder and admits it degraded (downgrade-before-deny
// — the cell keeps serving at reduced capacity instead of going dark).
// After the link heals, the leader reconciles the stale copies still
// running on n3, and the degradation-driven placement policy migrates
// the shed radio back to the now-empty edge node, where it re-admits at
// full rate.
//
// The whole scenario is driven through the cluster console — the same
// scripted sessions work interactively.
package main

import (
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/console"
	"repro/internal/descriptor"
	"repro/internal/obs"
	"repro/internal/rtos"
	"repro/internal/sim"
)

// Descriptors for the gateway application. Port and task names stay
// within the RTAI six-character significance limit.
var files = map[string]string{
	// n0: the aggregator, consuming the feeds of the two stable cells.
	// (It deliberately does not depend on cell 3 — when that cell's node
	// is cut off, the gateway pipeline must keep running.)
	"agg.xml": `<component name="agg" desc="feed aggregator" type="periodic" cpuusage="0.35">
  <implementation bincode="edge.Agg"/>
  <periodictask frequence="100" runoncup="0" priority="2"/>
  <inport name="c1" interface="RTAI.SHM" type="Integer" size="4"/>
  <inport name="c2" interface="RTAI.SHM" type="Integer" size="4"/>
</component>`,
	// n1/n2: plain cell radios plus transcoder load.
	"bts1.xml": `<component name="bts1" desc="cell radio 1" type="periodic" cpuusage="0.25">
  <implementation bincode="edge.BTS"/>
  <periodictask frequence="200" runoncup="0" priority="3"/>
  <outport name="c1" interface="RTAI.SHM" type="Integer" size="4"/>
</component>`,
	"bts2.xml": `<component name="bts2" desc="cell radio 2" type="periodic" cpuusage="0.25">
  <implementation bincode="edge.BTS"/>
  <periodictask frequence="200" runoncup="0" priority="3"/>
  <outport name="c2" interface="RTAI.SHM" type="Integer" size="4"/>
</component>`,
	"codec1.xml": `<component name="codec1" desc="transcoder" type="periodic" cpuusage="0.45">
  <implementation bincode="edge.Codec"/>
  <periodictask frequence="50" runoncup="0" priority="6"/>
</component>`,
	"codec2.xml": `<component name="codec2" desc="transcoder" type="periodic" cpuusage="0.45">
  <implementation bincode="edge.Codec"/>
  <periodictask frequence="50" runoncup="0" priority="6"/>
</component>`,
	// n3: the cell that will be cut off. Its radio declares a degraded
	// mode — the ladder rung the gateway falls back to when the full
	// contract does not fit after evacuation.
	"bts3.xml": `<component name="bts3" desc="cell radio 3" type="periodic" cpuusage="0.30">
  <implementation bincode="edge.BTS"/>
  <periodictask frequence="200" runoncup="0" priority="3"/>
  <outport name="c3" interface="RTAI.SHM" type="Integer" size="4"/>
  <mode name="eco" frequence="50" cpuusage="0.08"/>
</component>`,
	"bill.xml": `<component name="bill" desc="billing collector" type="periodic" cpuusage="0.45">
  <implementation bincode="edge.Bill"/>
  <periodictask frequence="50" runoncup="0" priority="5"/>
</component>`,
}

func main() {
	cl, err := cluster.New(cluster.Config{Nodes: 4, Seed: 21})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	// Task bodies: radios publish a sample into their cell feed, the
	// aggregator and the background loads just burn their budget.
	if err := cl.RegisterBody("edge.BTS", func(d *descriptor.Component) rtos.Body {
		topic := d.OutPorts[0].Name
		return func(j *rtos.JobContext) {
			if shm, err := j.Kernel.IPC().SHM(topic); err == nil {
				_ = shm.Set(int(j.Index%4), int64(j.Index))
			}
		}
	}); err != nil {
		log.Fatal(err)
	}
	for _, bin := range []string{"edge.Agg", "edge.Codec", "edge.Bill"} {
		if err := cl.RegisterBody(bin, func(*descriptor.Component) rtos.Body {
			return func(*rtos.JobContext) {}
		}); err != nil {
			log.Fatal(err)
		}
	}

	co := console.NewCluster(cl, os.Stdout)
	co.ReadFile = func(path string) ([]byte, error) {
		if xml, ok := files[path]; ok {
			return []byte(xml), nil
		}
		return nil, fmt.Errorf("no such descriptor %q", path)
	}
	session := func(label, script string) {
		fmt.Printf("\n== %s\n", label)
		if err := co.Run(strings.NewReader(script)); err != nil {
			log.Fatal(err)
		}
	}

	session("deploy the gateway application", `
deploy agg.xml n0
deploy bts1.xml n1
deploy codec1.xml n1
deploy bts2.xml n2
deploy codec2.xml n2
deploy bts3.xml n3
deploy bill.xml n3
run 60ms
nodes
`)

	// Cut the backhaul to cell n3 for 60 ms. The schedule is part of the
	// deterministic network model, so the whole scenario replays
	// byte-identically.
	cl.Net().SchedulePartition(cl.Now().Add(sim.Duration(5*time.Millisecond)),
		60*time.Millisecond, 3)

	session("backhaul to n3 cut: node loss, evacuation, ladder shedding", `
run 40ms
links
nodes
`)

	session("link healed: reconcile stale copies, migrate the radio home", `
run 120ms
links
nodes
`)

	fmt.Println("\n== cluster control-plane decisions")
	for _, s := range cl.Plane().Spans() {
		switch s.Kind {
		case obs.KindPartition, obs.KindHeal, obs.KindNodeLoss,
			obs.KindPlace, obs.KindMigrate:
			fmt.Printf("   %s\n", s)
		}
	}
	snap := cl.Plane().Snapshot()
	fmt.Printf("\nplacements=%d migrations=%d node-losses=%d converged=%v\n",
		snap.Cluster.Placements, snap.Cluster.Migrations,
		snap.Cluster.NodeLosses, cl.Converged())
}
