// Command faultdemo breaks a running contract on purpose and shows the
// framework repairing itself — the adaptive loop the paper promises in
// §2.4 but never perturbs: detect a contract violation at run time,
// revoke the offender's budget, cascade its dependants, and re-admit
// the closure in dependency order once the system is healthy again.
//
// The workload is the §4.2 latency pair (calc @1000 Hz writing SHM,
// disp @4 Hz reading it). A scripted fault inflates calc's execution
// time ×4 for 400 ms — 12% measured CPU against a 5% declared budget.
// The same campaign runs twice: guarded by internal/contract, then
// unguarded as the containment baseline.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/workload"
)

func main() {
	fmt.Println("== guarded: contract guard enforcing")
	g, err := workload.RunFaultCampaign(workload.FaultCampaignConfig{Guarded: true})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nfault script:")
	for _, r := range g.InjectTrace {
		fmt.Printf("  %s\n", r)
	}
	fmt.Println("\nguard trace (violation -> revoke -> quarantine -> restore):")
	for _, r := range g.GuardTrace {
		fmt.Printf("  %10v  %-9s  %-4s  %s\n",
			time.Duration(r.At), r.Action, r.Component, r.Detail)
	}
	fmt.Printf("\ndetection latency: %v   revokes: %d   restores: %d   MTTR: %v\n",
		g.DetectionLatency, g.RevokeCount, g.RestoreCount, g.MTTR)
	fmt.Println("\nfinal states:")
	for _, info := range g.Final {
		fmt.Printf("  %-4s  %v\n", info.Name, info.State)
	}
	fmt.Printf("\ntrace digest: %s\n", g.TraceDigest)

	fmt.Println("\n== unguarded: same campaign, no enforcement")
	u, err := workload.RunFaultCampaign(workload.FaultCampaignConfig{Guarded: false})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncontainment — disp max |dispatch latency|:\n")
	fmt.Printf("  guarded:   %8d ns (within the 30 µs bound)\n", g.DispMaxAbs)
	fmt.Printf("  unguarded: %8d ns (calc's overrun starves disp)\n", u.DispMaxAbs)
}
