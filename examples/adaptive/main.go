// Command adaptive demonstrates the framework's extensibility claim: a
// customized resolving service plugged in through the OSGi service
// registry (§2.2's "user-customized resolving service") changes the
// admission behaviour of the whole system without touching the DRCR.
//
// A fleet of identical 100 Hz components with a total declared budget of
// 140% is deployed three times:
//
//  1. under the internal utilization service alone (first-come
//     admission up to 100%),
//  2. with a customized service that reserves 30% headroom for future
//     deployments,
//  3. with a customized service that admits only even-numbered
//     components (an application-specific rule no generic policy could
//     express).
package main

import (
	"fmt"
	"log"
	"strings"

	drcom "repro"
	"repro/internal/workload"
)

func main() {
	fmt.Println("== internal utilization admission only")
	run(nil)

	fmt.Println("\n== plus customized service: keep 30% headroom")
	headroom := drcom.Func{
		Label: "headroom-30",
		F: func(v drcom.View, c drcom.Contract) drcom.Decision {
			var sum float64
			for _, a := range v.OnCPU(c.CPU) {
				sum += a.CPUUsage
			}
			if sum+c.CPUUsage > 0.7 {
				return drcom.Decision{Admit: false, Reason: "headroom reserve"}
			}
			return drcom.Decision{Admit: true}
		},
	}
	run(headroom)

	fmt.Println("\n== plus customized service: even-numbered components only")
	evenOnly := drcom.Func{
		Label: "even-only",
		F: func(v drcom.View, c drcom.Contract) drcom.Decision {
			n := strings.TrimPrefix(c.Name, "c")
			if len(n) > 0 && (n[len(n)-1]-'0')%2 == 0 {
				return drcom.Decision{Admit: true}
			}
			return drcom.Decision{Admit: false, Reason: "odd component"}
		},
	}
	run(evenOnly)
}

func run(custom drcom.Resolver) {
	sys, err := drcom.NewSystem(drcom.Config{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	if custom != nil {
		if _, err := sys.RegisterResolver(custom); err != nil {
			log.Fatal(err)
		}
	}
	comps, err := workload.OversubscribedSet(14, 1.4)
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range comps {
		if err := sys.DRCR().Deploy(c); err != nil {
			log.Fatal(err)
		}
	}
	var active, waiting []string
	var used float64
	for _, info := range sys.Components() {
		if info.State == drcom.Active {
			active = append(active, info.Name)
			used += info.CPUUsage
		} else {
			waiting = append(waiting, info.Name)
		}
	}
	fmt.Printf("   admitted %d/%d components, declared budget in use %.0f%%\n",
		len(active), len(comps), used*100)
	fmt.Printf("   active:  %s\n", strings.Join(active, " "))
	fmt.Printf("   waiting: %s\n", strings.Join(waiting, " "))
	if len(waiting) > 0 {
		info, _ := sys.Component(waiting[0])
		fmt.Printf("   e.g. %s: %s\n", info.Name, info.LastReason)
	}
}
