// Command settopbox plays the paper's introductory motivation: a Set-Top
// Box whose media pipeline has soft real-time requirements. A video
// decoder, an audio decoder, an on-screen display and a background
// transcoder share one CPU; when a second video stream (picture-in-
// picture) is hot-deployed the CPU is oversubscribed, and an adaptation
// manager with the importance-shedding policy degrades the least
// important components (transcoder first, OSD second) to keep the
// decoders inside their contracts — then restores them when the PiP
// stream stops. The transcoder and the OSD declare degraded <mode>
// elements, so shedding steps them down their ladders (they keep
// serving at a reduced rate) instead of suspending them outright.
//
// This exercises the DRCom extensions built on the paper's §6 future
// work: the importance descriptor attribute, multi-mode contracts, and
// the adaptation manager.
package main

import (
	"fmt"
	"log"
	"time"

	drcom "repro"
	"repro/internal/adapt"
)

func desc(name string, freq int, prio int, usage float64, importance int, modes ...string) string {
	extra := ""
	for _, m := range modes {
		extra += "\n  " + m
	}
	return fmt.Sprintf(`<component name="%s" type="periodic" cpuusage="%.2f" importance="%d">
  <implementation bincode="stb.%s"/>
  <periodictask frequence="%d" runoncup="0" priority="%d"/>%s
</component>`, name, usage, importance, name, freq, prio, extra)
}

func main() {
	sys, err := drcom.NewSystem(drcom.Config{
		Seed: 9,
		// The box accepts every deployment and lets the adaptation
		// manager arbitrate: admission by adaptation instead of denial.
		Internal: drcom.Static{AdmitAll: true, Label: "open-admission"},
		// Decoders consume exactly their declared budgets (media decoding
		// is rate-controlled); this keeps the demo's schedulability
		// analysis exact.
		ExecJitter: -1,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// The resident pipeline: 85% declared budget, exactly schedulable
	// under its declared fixed priorities.
	pipeline := map[string]string{
		"OSGI-INF/video.xml": desc("video", 50, 1, 0.40, 10), // 50 fps decoder
		"OSGI-INF/audio.xml": desc("audio", 100, 2, 0.15, 9), // audio decoder
		// on-screen display: can fall back to a bare heads-up overlay
		"OSGI-INF/osd.xml": desc("osd", 25, 3, 0.10, 3,
			`<mode name="hud" frequence="25" cpuusage="0.02"/>`),
		// background transcoder: can trickle along at a fifth the budget
		"OSGI-INF/xcode.xml": desc("xcode", 20, 4, 0.20, 1,
			`<mode name="idle" frequence="20" cpuusage="0.04"/>`),
	}
	if _, err := sys.DeployBundle("stb.pipeline", "1.0", pipeline); err != nil {
		log.Fatal(err)
	}

	// Long hysteresis: victims are only restored after 2.5 s of health,
	// so the manager does not flap while the PiP stream is running.
	mgr, err := adapt.New(sys.DRCR(), &adapt.ImportanceShedding{HealthyChecks: 25}, 100*time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	if err := mgr.Start(); err != nil {
		log.Fatal(err)
	}
	defer mgr.Stop()

	show := func(label string) {
		fmt.Printf("-- %s\n", label)
		for _, info := range sys.Components() {
			task, ok := sys.Kernel().Task(info.Name)
			misses := uint64(0)
			if ok {
				misses = task.Stats().Misses
			}
			fmt.Printf("   %-6s imp=%-2d budget=%3.0f%% mode=%-5s %-11v misses=%d\n",
				info.Name, info.Importance, info.CPUUsage*100, info.ModeName, info.State, misses)
		}
	}

	if err := sys.Run(2 * time.Second); err != nil {
		log.Fatal(err)
	}
	show("steady state (85% declared budget)")

	fmt.Println("\n== viewer opens picture-in-picture: second decoder hot-deployed")
	// The PiP decoder runs below the resident pipeline's priorities and
	// above osd/xcode in importance: the manager should step those two
	// down their declared mode ladders to make room.
	pip, err := sys.DeployBundle("stb.pip", "1.0", map[string]string{
		"OSGI-INF/pip.xml": desc("pip", 50, 5, 0.30, 8),
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Run(2 * time.Second); err != nil {
		log.Fatal(err)
	}
	show("under PiP overload (adaptation manager shed load)")

	fmt.Println("\n== PiP stream stops; manager restores shed components")
	if err := pip.Stop(); err != nil {
		log.Fatal(err)
	}
	if err := sys.Run(6 * time.Second); err != nil {
		log.Fatal(err)
	}
	show("after recovery")

	fmt.Println("\n== adaptation log")
	for _, a := range mgr.History() {
		status := "ok"
		if a.Err != nil {
			status = a.Err.Error()
		}
		fmt.Printf("   [%v] %v %s (%s) — %s\n", a.At, a.Action.Kind, a.Action.Component, a.Action.Reason, status)
	}
}
