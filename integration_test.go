package drcom

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/adapt"
	"repro/internal/core"
	"repro/internal/descriptor"
	"repro/internal/rtos"
	"repro/internal/rtos/ipc"
)

// Integration tests exercising the full stack end to end: framework →
// bundles → descriptors → DRCR → HRC → simulated kernel → IPC, plus the
// extensions (ADL, adaptation manager) layered on top.

const itCameraXML = `<component name="camera" type="periodic" cpuusage="0.10">
  <implementation bincode="it.Camera"/>
  <periodictask frequence="100" runoncup="0" priority="2"/>
  <outport name="frames" interface="RTAI.SHM" type="Byte" size="64"/>
  <property name="drcom.exectime.us" type="Integer" value="50"/>
</component>`

const itSinkXML = `<component name="sink" type="periodic" cpuusage="0.05">
  <implementation bincode="it.Sink"/>
  <periodictask frequence="50" runoncup="0" priority="3"/>
  <inport name="frames" interface="RTAI.SHM" type="Byte" size="64"/>
  <property name="drcom.exectime.us" type="Integer" value="20"/>
</component>`

const itAppXML = `<application name="itpipe">
  <member component="camera"/>
  <member component="sink"/>
  <connection from="camera/frames" to="sink/frames"/>
</application>`

func TestIntegrationADLApplication(t *testing.T) {
	sys, err := NewSystem(Config{Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	var produced, consumed int
	if err := sys.RegisterBody("it.Camera", func(*descriptor.Component) rtos.Body {
		return func(j *rtos.JobContext) {
			if shm, err := j.Kernel.IPC().SHM("frames"); err == nil {
				_ = shm.Set(0, int64(j.Index%256))
				produced++
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := sys.RegisterBody("it.Sink", func(*descriptor.Component) rtos.Body {
		return func(j *rtos.JobContext) {
			if shm, err := j.Kernel.IPC().SHM("frames"); err == nil {
				if _, err := shm.Get(0); err == nil {
					consumed++
				}
			}
		}
	}); err != nil {
		t.Fatal(err)
	}

	if err := sys.DeployApplication(itAppXML, []string{itCameraXML, itSinkXML}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"camera", "sink"} {
		if info, _ := sys.Component(name); info.State != Active {
			t.Fatalf("%s = %v", name, info.State)
		}
	}
	if err := sys.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if produced < 90 || consumed < 45 {
		t.Fatalf("produced %d consumed %d", produced, consumed)
	}

	// Invalid application: missing connection coverage.
	badApp := `<application name="bad"><member component="sink"/></application>`
	sinkOnly := `<component name="sink2" type="periodic" cpuusage="0.05">
	  <implementation bincode="x"/>
	  <periodictask frequence="50" runoncup="0" priority="3"/>
	  <inport name="frames" interface="RTAI.SHM" type="Byte" size="64"/>
	</component>`
	_ = sinkOnly
	if err := sys.DeployApplication(badApp, []string{itSinkXML}); err == nil {
		t.Fatal("invalid application deployed")
	}
}

func TestIntegrationAdaptationManagerOnSystem(t *testing.T) {
	sys, err := NewSystem(Config{
		Seed:       33,
		Internal:   Static{AdmitAll: true, Label: "open"},
		ExecJitter: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	mk := func(name string, usage float64, prio, imp int) string {
		return fmt.Sprintf(`<component name="%s" type="periodic" cpuusage="%.2f" importance="%d">
		  <implementation bincode="x"/>
		  <periodictask frequence="100" runoncup="0" priority="%d"/>
		</component>`, name, usage, imp, prio)
	}
	if err := sys.DeployXML(mk("main", 0.6, 1, 5)); err != nil {
		t.Fatal(err)
	}
	if err := sys.DeployXML(mk("side", 0.6, 2, 1)); err != nil {
		t.Fatal(err)
	}
	mgr, err := adapt.New(sys.DRCR(), &adapt.ImportanceShedding{HealthyChecks: 100}, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.Start(); err != nil {
		t.Fatal(err)
	}
	defer mgr.Stop()
	if err := sys.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if info, _ := sys.Component("side"); info.State != Suspended {
		t.Fatalf("side = %v, want shed", info.State)
	}
	if info, _ := sys.Component("main"); info.State != Active {
		t.Fatalf("main = %v", info.State)
	}
}

// TestIntegrationLoadModeSwitchUnderDeployment drives the full §4
// storyline in one system: deploy, measure light, switch to stress,
// measure again, hot-remove and redeploy under stress.
func TestIntegrationLoadModeSwitchUnderDeployment(t *testing.T) {
	sys, err := NewSystem(Config{Seed: 35})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if err := sys.DeployXML(itCameraXML); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	task, _ := sys.Kernel().Task("camera")
	lightMean := task.Stats().Latency.Average

	sys.SetLoadMode(StressLoad)
	task.ResetStats()
	if err := sys.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	stressMean := task.Stats().Latency.Average
	if lightMean < -5000 || lightMean > 5000 {
		t.Fatalf("light mean = %v", lightMean)
	}
	if stressMean > -15000 {
		t.Fatalf("stress mean = %v", stressMean)
	}

	// Hot redeployment under stress keeps working.
	if err := sys.Remove("camera"); err != nil {
		t.Fatal(err)
	}
	if err := sys.DeployXML(itCameraXML); err != nil {
		t.Fatal(err)
	}
	if info, _ := sys.Component("camera"); info.State != Active {
		t.Fatalf("redeployed camera = %v", info.State)
	}
}

// TestIntegrationIPCTeardownLeavesNoResidue repeatedly cycles a pipeline
// and checks that every activation/deactivation pair leaves the IPC
// namespace clean.
func TestIntegrationIPCTeardownLeavesNoResidue(t *testing.T) {
	sys, err := NewSystem(Config{Seed: 37})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	for i := 0; i < 20; i++ {
		if err := sys.DeployXML(itCameraXML); err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
		if err := sys.DeployXML(itSinkXML); err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
		if err := sys.Run(50 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
		if err := sys.Remove("camera"); err != nil {
			t.Fatal(err)
		}
		if err := sys.Remove("sink"); err != nil {
			t.Fatal(err)
		}
		shms, boxes := sys.Kernel().IPC().Names()
		if len(shms) != 0 || len(boxes) != 0 {
			t.Fatalf("cycle %d: IPC residue: shm=%v boxes=%v", i, shms, boxes)
		}
		if len(sys.Kernel().Tasks()) != 0 {
			t.Fatalf("cycle %d: task residue: %v", i, sys.Kernel().Tasks())
		}
	}
}

// TestIntegrationMailboxPortTransport runs a producer/consumer pair over
// an RTAI.Mailbox port instead of SHM.
func TestIntegrationMailboxPortTransport(t *testing.T) {
	sys, err := NewSystem(Config{Seed: 39})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	producer := `<component name="prod" type="periodic" cpuusage="0.02">
	  <implementation bincode="it.Prod"/>
	  <periodictask frequence="100" runoncup="0" priority="1"/>
	  <outport name="evq" interface="RTAI.Mailbox" type="Byte" size="4"/>
	</component>`
	consumer := `<component name="cons" type="periodic" cpuusage="0.02">
	  <implementation bincode="it.Cons"/>
	  <periodictask frequence="20" runoncup="0" priority="2"/>
	  <inport name="evq" interface="RTAI.Mailbox" type="Byte" size="4"/>
	</component>`
	var received int
	if err := sys.RegisterBody("it.Prod", func(*descriptor.Component) rtos.Body {
		return func(j *rtos.JobContext) {
			if box, err := j.Kernel.IPC().Mailbox("evq"); err == nil {
				_ = box.Send([]byte{byte(j.Index)}) // full box drops, as RTAI would
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := sys.RegisterBody("it.Cons", func(*descriptor.Component) rtos.Body {
		return func(j *rtos.JobContext) {
			box, err := j.Kernel.IPC().Mailbox("evq")
			if err != nil {
				return
			}
			for {
				if _, err := box.Receive(); err != nil {
					return
				}
				received++
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := sys.DeployXML(producer); err != nil {
		t.Fatal(err)
	}
	if err := sys.DeployXML(consumer); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	// 100 Hz producer into a 4-deep box drained at 20 Hz: five arrivals
	// per drain against four slots, so the consumer sees a bounded stream
	// and the mailbox counts the overflow drops.
	if received < 50 {
		t.Fatalf("received = %d", received)
	}
	box, err := sys.Kernel().IPC().Mailbox("evq")
	if err != nil {
		t.Fatal(err)
	}
	sent, got, dropped := box.Stats()
	if sent == 0 || got == 0 || dropped == 0 {
		t.Fatalf("mailbox stats sent=%d received=%d dropped=%d", sent, got, dropped)
	}
}

// TestIntegrationEventLogLegality replays a long random-ish churn and
// asserts every logged transition is legal per Figure 1.
func TestIntegrationEventLogLegality(t *testing.T) {
	sys, err := NewSystem(Config{Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if err := sys.DeployXML(itCameraXML); err != nil {
		t.Fatal(err)
	}
	if err := sys.DeployXML(itSinkXML); err != nil {
		t.Fatal(err)
	}
	ops := []func() error{
		func() error { return sys.Suspend("camera") },
		func() error { return sys.Resume("camera") },
		func() error { return sys.Disable("sink") },
		func() error { return sys.Enable("sink") },
		func() error { return sys.Disable("camera") },
		func() error { return sys.Enable("camera") },
		func() error { return sys.Run(30 * time.Millisecond) },
	}
	for i := 0; i < 50; i++ {
		_ = ops[i%len(ops)]() // state-dependent failures are fine
	}
	for _, ev := range sys.Events() {
		if ev.From != 0 && !core.CanTransition(ev.From, ev.To) {
			t.Fatalf("illegal transition: %v", ev)
		}
	}
}

// TestIntegrationSemaphoreGuardedSHM shows two tasks coordinating over a
// semaphore-guarded segment without blocking.
func TestIntegrationSemaphoreGuardedSHM(t *testing.T) {
	sys, err := NewSystem(Config{Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	k := sys.Kernel()
	if _, err := k.IPC().CreateSemaphore("guard", 1); err != nil {
		t.Fatal(err)
	}
	shm, err := k.IPC().CreateSHM("cell", ipc.Integer, 2)
	if err != nil {
		t.Fatal(err)
	}
	write := func(j *rtos.JobContext, val int64) {
		sem, err := k.IPC().Semaphore("guard")
		if err != nil || !sem.TryAcquire() {
			return // contended: skip this job, RTAI try-style
		}
		defer sem.Release()
		_ = shm.Set(0, val)
		_ = shm.Set(1, val) // both cells must always match
	}
	a, err := k.CreateTask(rtos.TaskSpec{
		Name: "wa", Type: rtos.Periodic, Period: time.Millisecond, Priority: 1,
		ExecTime: 20 * time.Microsecond,
		Body:     func(j *rtos.JobContext) { write(j, 1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := k.CreateTask(rtos.TaskSpec{
		Name: "wb", Type: rtos.Periodic, Period: time.Millisecond, Priority: 2,
		ExecTime: 20 * time.Microsecond,
		Body:     func(j *rtos.JobContext) { write(j, 2) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	v0, _ := shm.Get(0)
	v1, _ := shm.Get(1)
	if v0 != v1 {
		t.Fatalf("torn write: %d vs %d", v0, v1)
	}
	sem, _ := k.IPC().Semaphore("guard")
	if acq, _ := sem.Stats(); acq == 0 {
		t.Fatal("semaphore never acquired")
	}
}

// TestIntegrationEDFSystem runs a DRCom system on the EDF kernel: the
// same descriptors and DRCR, different dispatch discipline underneath.
func TestIntegrationEDFSystem(t *testing.T) {
	sys, err := NewSystem(Config{Seed: 45, Policy: EarliestDeadlineFirst, ExecJitter: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if sys.Kernel().Policy() != EarliestDeadlineFirst {
		t.Fatal("policy not plumbed through")
	}
	// A rate-inverted pair at 90% density: infeasible under the declared
	// fixed priorities (the short task waits out the long job) but
	// comfortably schedulable under EDF, with slack for release jitter.
	long := `<component name="long" type="periodic" cpuusage="0.45">
	  <implementation bincode="x"/>
	  <periodictask frequence="100" runoncup="0" priority="1"/>
	</component>`
	short := `<component name="short" type="periodic" cpuusage="0.45">
	  <implementation bincode="x"/>
	  <periodictask frequence="250" runoncup="0" priority="2"/>
	</component>`
	if err := sys.DeployXML(long); err != nil {
		t.Fatal(err)
	}
	if err := sys.DeployXML(short); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	for _, task := range sys.Kernel().Tasks() {
		st := task.Stats()
		if st.Misses+st.Skips != 0 {
			t.Fatalf("%s violated %d contracts under EDF", task.Name(), st.Misses+st.Skips)
		}
	}
}
