package console

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/contract"
	"repro/internal/descriptor"
	"repro/internal/rtos"
)

const clusterProdXML = `<component name="prod" desc="producer" type="periodic" cpuusage="0.1">
  <implementation bincode="demo.ClProd"/>
  <periodictask frequence="500" runoncup="0" priority="3"/>
  <outport name="feed" interface="RTAI.SHM" type="Integer" size="4"/>
</component>`

const clusterConsXML = `<component name="cons" desc="consumer" type="periodic" cpuusage="0.1">
  <implementation bincode="demo.ClCons"/>
  <periodictask frequence="250" runoncup="0" priority="4"/>
  <inport name="feed" interface="RTAI.SHM" type="Integer" size="4"/>
</component>`

func newClusterConsole(t *testing.T, nodes int) (*Console, *strings.Builder) {
	t.Helper()
	cl, err := cluster.New(cluster.Config{Nodes: nodes, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	if err := cl.RegisterBody("demo.ClProd", func(d *descriptor.Component) rtos.Body {
		topic := d.OutPorts[0].Name
		return func(j *rtos.JobContext) {
			if shm, err := j.Kernel.IPC().SHM(topic); err == nil {
				_ = shm.Set(int(j.Index%4), int64(j.Index))
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := cl.RegisterBody("demo.ClCons", func(*descriptor.Component) rtos.Body {
		return func(*rtos.JobContext) {}
	}); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	c := NewCluster(cl, &out)
	c.ReadFile = func(path string) ([]byte, error) {
		switch path {
		case "prod.xml":
			return []byte(clusterProdXML), nil
		case "cons.xml":
			return []byte(clusterConsXML), nil
		}
		return nil, fmt.Errorf("no such file %q", path)
	}
	return c, &out
}

func TestClusterSessionNodesAndLinks(t *testing.T) {
	c, out := newClusterConsole(t, 3)
	script := `
deploy prod.xml n0
deploy cons.xml n1
run 40ms
nodes
links
`
	if err := c.Run(strings.NewReader(script)); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"deployed prod.xml on n0",
		"deployed cons.xml on n1",
		"leader n0",
		"placed cons -> n1",
		"placed prod -> n0",
		"converged true",
		"all 3 links up",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("session output missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "error:") {
		t.Fatalf("session reported an error:\n%s", got)
	}
}

func TestClusterSessionMigrateAndRemove(t *testing.T) {
	c, out := newClusterConsole(t, 3)
	script := `
deploy prod.xml n0
run 20ms
migrate prod n2
run 20ms
nodes
remove prod
nodes
`
	if err := c.Run(strings.NewReader(script)); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "prod -> n2") {
		t.Fatalf("migrate not reported:\n%s", got)
	}
	if !strings.Contains(got, "placed prod -> n2") {
		t.Fatalf("catalog did not follow the migration:\n%s", got)
	}
	if !strings.Contains(got, "prod removed from the cluster") {
		t.Fatalf("remove not reported:\n%s", got)
	}
}

// Single-node diagnostics must refuse politely in cluster mode instead
// of crashing, and unknown node ids must be rejected.
func TestClusterSessionGuards(t *testing.T) {
	c, out := newClusterConsole(t, 2)
	script := `
gantt 10ms
migrate ghost n1
migrate ghost n9
deploy prod.xml n5
`
	if err := c.Run(strings.NewReader(script)); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"needs a single-node system",
		"not placed",
		`no node "n9"`,
		`no node "n5"`,
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("missing guard %q:\n%s", want, got)
		}
	}
}

// Cluster mode serves spans/why/watch/metrics/flightrec from the
// federated planes; why stitches across the network (the chain behind
// a provisioned component reaches back to the cluster control plane)
// and names may be node-qualified.
func TestClusterSessionFederatedObservability(t *testing.T) {
	c, out := newClusterConsole(t, 3)
	script := `
deploy prod.xml n0
deploy cons.xml n1
run 40ms
spans n0 5
spans 3
why cons
why n1/cons
why node1/cons
watch 20ms n1
metrics
flightrec
why n9/cons
`
	if err := c.Run(strings.NewReader(script)); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"spans shown on n0",
		"spans shown on cluster",
		"[n1]",      // why cons resolves to the placement node
		"[cluster]", // ... and stitches across the provision hop
		"watched 20ms",
		"level sampled", // cluster snapshot header line
		"cluster latency (merged):",
		"no flight dumps",
		`no plane "n9"`,
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("federated observability output missing %q:\n%s", want, got)
		}
	}
}

// The component table renders bindings in explicit port-name order.
func TestListBindingsSorted(t *testing.T) {
	got := formatBindings(map[string]string{"zz": "a", "aa": "b", "mm": "c"})
	if got != "aa<-b mm<-c zz<-a" {
		t.Fatalf("bindings not name-sorted: %q", got)
	}
	if formatBindings(nil) != "-" {
		t.Fatalf("empty bindings should render as -")
	}
}

const clusterStochXML = `<component name="stoch" type="periodic" cpuusage="0.3">
  <implementation bincode="demo.ClCons"/>
  <periodictask frequence="1000" runoncup="0" priority="1"/>
  <budget dist="normal(0.3,0.02)" p="0.97"/>
  <mode name="eco" frequence="250" cpuusage="0.15"/>
  <property name="drcom.exectime.us" type="Integer" value="300"/>
</component>`

// TestClusterSessionForecastAndAdmit pins the node-qualified variants:
// admit compiles against an explicit node's view, and forecast reads
// per-node guards with node and node/name filters.
func TestClusterSessionForecastAndAdmit(t *testing.T) {
	c, out := newClusterConsole(t, 3)
	prev := c.ReadFile
	c.ReadFile = func(path string) ([]byte, error) {
		if path == "stoch.xml" {
			return []byte(clusterStochXML), nil
		}
		return prev(path)
	}
	g, err := contract.New(c.cl.Node(1).DRCR(), contract.Options{Predict: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Start(); err != nil {
		t.Fatal(err)
	}
	c.AttachGuard("n1", g)
	if err := c.Run(strings.NewReader(`
deploy stoch.xml n1
run 300ms
admit n1 prod.xml -dry
admit prod.xml -dry
forecast n1
forecast n1/stoch
forecast n0
`)); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"[n1] admit (dry run): 1 components, 1 schedulable, 0 stochastic verdicts",
		"[n1]   prod     constant budget (deterministic admission)",
		"error: usage: admit <node> <file.xml> [more.xml ...] -dry",
		"[n1] stoch    P(miss)=",
		"no forecasts yet", // n0 has no guard attached
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	if n := strings.Count(got, "[n1] stoch    P(miss)="); n != 2 {
		t.Errorf("want 2 forecast rows (node filter + node/name filter), got %d:\n%s", n, got)
	}
}
