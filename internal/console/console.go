// Package console implements a line-oriented command interpreter over a
// DRCom system — the analogue of the Equinox console session the paper's
// prototype ran in. It drives deployment, lifecycle operations, simulated
// time, and diagnostics (component table, latency rows, event timeline,
// scheduler Gantt) from a script or interactive stream.
package console

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	drcom "repro"
	"repro/internal/bench"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/rtos"
)

// Console interprets commands against one System.
type Console struct {
	sys    *drcom.System
	out    io.Writer
	tracer *rtos.Tracer
	// ReadFile is stubbed in tests; defaults to os.ReadFile.
	ReadFile func(string) ([]byte, error)
}

// New builds a console writing responses to out.
func New(sys *drcom.System, out io.Writer) *Console {
	return &Console{sys: sys, out: out, ReadFile: os.ReadFile}
}

// Run interprets commands from in until EOF or the quit command. Blank
// lines and #-comments are skipped. Errors are reported to the output
// stream; they do not stop the session.
func (c *Console) Run(in io.Reader) error {
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if quit := c.Exec(line); quit {
			return nil
		}
	}
	return sc.Err()
}

// Exec interprets one command line; it reports whether the session should
// end.
func (c *Console) Exec(line string) (quit bool) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return false
	}
	cmd, args := fields[0], fields[1:]
	var err error
	switch cmd {
	case "help":
		c.printHelp()
	case "quit", "exit":
		return true
	case "deploy":
		err = c.deploy(args)
	case "remove", "enable", "disable", "suspend", "resume":
		err = c.lifecycle(cmd, args)
	case "run":
		err = c.run(args)
	case "mode":
		err = c.mode(args)
	case "modes":
		c.modes()
	case "downgrade":
		err = c.downgrade(args)
	case "promote":
		err = c.promote(args)
	case "list", "lb", "ss":
		c.list()
	case "events":
		c.events()
	case "spans":
		err = c.spans(args)
	case "why":
		err = c.why(args)
	case "metrics":
		c.metrics()
	case "watch":
		err = c.watch(args)
	case "timeline":
		fmt.Fprint(c.out, bench.Timeline(c.sys.Events()))
	case "latency":
		c.latency()
	case "view":
		c.view()
	case "status":
		err = c.status(args)
	case "set":
		err = c.set(args)
	case "trace":
		err = c.traceCmd(args)
	case "gantt":
		err = c.gantt(args)
	default:
		err = fmt.Errorf("unknown command %q (try help)", cmd)
	}
	if err != nil {
		fmt.Fprintf(c.out, "error: %v\n", err)
	}
	return false
}

func (c *Console) printHelp() {
	fmt.Fprint(c.out, `commands:
  deploy <file.xml>       parse and deploy a component descriptor
  remove|enable|disable|suspend|resume <name>
  run <duration>          advance simulated time (e.g. run 500ms)
  mode light|stress       switch the load regime
  modes                   declared service-mode ladders and admitted modes
  downgrade <name> [why]  step a component down one service mode
  promote <name>          allow a downgraded component to re-promote
  list                    component table (alias: lb, ss)
  events                  unified decision timeline (with why column)
  spans [n]               last n observability spans (default 20)
  why <component>         causal chain behind a component's latest span
  metrics                 observability metrics snapshot
  watch <duration>        run + print the spans the interval produced
  timeline                per-component state strips
  latency                 per-task scheduling latency rows
  view                    admission view (budgets per CPU)
  status <name>           management-service status snapshot
  set <name> <key> <val>  set a component property (async)
  trace on|off            attach/detach the scheduler tracer
  gantt <duration>        run + render a scheduler Gantt chart
  quit                    end the session
`)
}

func (c *Console) deploy(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: deploy <file.xml>")
	}
	data, err := c.ReadFile(args[0])
	if err != nil {
		return err
	}
	if err := c.sys.DeployXML(string(data)); err != nil {
		return err
	}
	fmt.Fprintf(c.out, "deployed %s\n", args[0])
	return nil
}

func (c *Console) lifecycle(cmd string, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: %s <component>", cmd)
	}
	name := args[0]
	var err error
	switch cmd {
	case "remove":
		err = c.sys.Remove(name)
	case "enable":
		err = c.sys.Enable(name)
	case "disable":
		err = c.sys.Disable(name)
	case "suspend":
		err = c.sys.Suspend(name)
	case "resume":
		err = c.sys.Resume(name)
	}
	if err != nil {
		return err
	}
	info, _ := c.sys.Component(name)
	fmt.Fprintf(c.out, "%s: %v\n", name, info.State)
	return nil
}

func (c *Console) run(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: run <duration>")
	}
	d, err := time.ParseDuration(args[0])
	if err != nil {
		return err
	}
	if err := c.sys.Run(d); err != nil {
		return err
	}
	fmt.Fprintf(c.out, "now %v\n", c.sys.Now())
	return nil
}

func (c *Console) mode(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: mode light|stress")
	}
	switch args[0] {
	case "light":
		c.sys.SetLoadMode(drcom.LightLoad)
	case "stress":
		c.sys.SetLoadMode(drcom.StressLoad)
	default:
		return fmt.Errorf("unknown mode %q", args[0])
	}
	fmt.Fprintf(c.out, "mode %s\n", args[0])
	return nil
}

// modes prints each component's declared service-mode ladder, marking
// the admitted mode. Single-mode components are summarised on one line.
func (c *Console) modes() {
	for _, info := range c.sys.Components() {
		if len(info.Modes) == 0 {
			fmt.Fprintf(c.out, "%-8s full contract only (%.0f%% @ %s)\n",
				info.Name, info.CPUUsage*100, info.State)
			continue
		}
		fmt.Fprintf(c.out, "%-8s %v\n", info.Name, info.State)
		for i, m := range info.Modes {
			marker := " "
			if i == info.Mode {
				marker = "*"
			}
			fmt.Fprintf(c.out, "  %s %d %-8s %6.0f Hz %5.0f%%", marker, i, m.Name, m.FrequencyHz, m.CPUUsage*100)
			if len(m.Drops) > 0 {
				fmt.Fprintf(c.out, "  drops %v", m.Drops)
			}
			fmt.Fprintln(c.out)
		}
	}
}

// downgrade steps a component down one declared mode.
func (c *Console) downgrade(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: downgrade <component> [reason]")
	}
	reason := "console request"
	if len(args) > 1 {
		reason = strings.Join(args[1:], " ")
	}
	if err := c.sys.Downgrade(args[0], reason); err != nil {
		return err
	}
	info, _ := c.sys.Component(args[0])
	fmt.Fprintf(c.out, "%s: %v mode %d (%s)\n", args[0], info.State, info.Mode, info.ModeName)
	return nil
}

// promote lifts a component's promotion hold.
func (c *Console) promote(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: promote <component>")
	}
	if err := c.sys.AllowPromotion(args[0]); err != nil {
		return err
	}
	info, _ := c.sys.Component(args[0])
	fmt.Fprintf(c.out, "%s: %v mode %d (%s)\n", args[0], info.State, info.Mode, info.ModeName)
	return nil
}

func (c *Console) list() {
	infos := c.sys.Components()
	fmt.Fprintf(c.out, "%-8s %-11s %-9s %4s %4s %7s %4s  %s\n",
		"name", "state", "kind", "cpu", "prio", "budget", "imp", "bindings")
	for _, info := range infos {
		fmt.Fprintf(c.out, "%-8s %-11v %-9s %4d %4d %6.0f%% %4d  %v\n",
			info.Name, info.State, info.Kind, info.CPU, info.Priority,
			info.CPUUsage*100, info.Importance, info.Bindings)
	}
	fmt.Fprintf(c.out, "%d components\n", len(infos))
}

// / events prints the unified decision timeline: every retained span from
// the observability plane — lifecycle transitions, admission denials,
// contract violations, budget revoke/restore, quarantines, faults — with
// a why column naming the causing span when one is recorded.
func (c *Console) events() {
	o := c.sys.Observer()
	for _, s := range o.Spans() {
		if s.Kind == obs.KindSched || s.Kind == obs.KindResolveRound {
			continue // scheduler noise; use trace/gantt for that
		}
		fmt.Fprintf(c.out, "%s%s\n", s, c.whyColumn(o, s))
	}
}

// whyColumn renders the cause of a span, if it is still retained.
func (c *Console) whyColumn(o drcom.Observer, s drcom.Span) string {
	if s.Cause == 0 {
		return ""
	}
	cs, ok := o.Span(s.Cause)
	if !ok {
		return ""
	}
	why := "  why: " + cs.Kind.String()
	if cs.Component != "" {
		why += " " + cs.Component
	}
	if cs.To != "" {
		why += " " + cs.To
	}
	return why
}

// spans prints the most recent n retained spans, all kinds included.
func (c *Console) spans(args []string) error {
	n := 20
	switch len(args) {
	case 0:
	case 1:
		v, err := strconv.Atoi(args[0])
		if err != nil || v <= 0 {
			return fmt.Errorf("usage: spans [n]")
		}
		n = v
	default:
		return fmt.Errorf("usage: spans [n]")
	}
	o := c.sys.Observer()
	all := o.Spans()
	if len(all) > n {
		all = all[len(all)-n:]
	}
	for _, s := range all {
		fmt.Fprintf(c.out, "%s\n", s)
	}
	fmt.Fprintf(c.out, "%d spans shown, %d emitted\n", len(all), uint64(o.NextID())-1)
	return nil
}

// why prints the causal chain ending at a component's latest span,
// consequence first.
func (c *Console) why(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: why <component>")
	}
	chain := c.sys.Observer().Why(args[0])
	if len(chain) == 0 {
		return fmt.Errorf("no spans recorded for %q", args[0])
	}
	fmt.Fprintf(c.out, "%s\n", chain[0])
	for _, s := range chain[1:] {
		fmt.Fprintf(c.out, "  <- %s\n", s)
	}
	return nil
}

// metrics prints the observability snapshot.
func (c *Console) metrics() {
	fmt.Fprint(c.out, c.sys.Observer().Snapshot().Format())
}

// watch advances simulated time and prints every span the interval
// produced (scheduler bridge spans summarised, not listed).
func (c *Console) watch(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: watch <duration>")
	}
	d, err := time.ParseDuration(args[0])
	if err != nil {
		return err
	}
	o := c.sys.Observer()
	from := o.NextID()
	if err := c.sys.Run(d); err != nil {
		return err
	}
	fresh := o.SpansSince(from)
	sched := 0
	for _, s := range fresh {
		if s.Kind == obs.KindSched {
			sched++
			continue
		}
		fmt.Fprintf(c.out, "%s%s\n", s, c.whyColumn(o, s))
	}
	fmt.Fprintf(c.out, "watched %v: %d new spans", d, len(fresh))
	if sched > 0 {
		fmt.Fprintf(c.out, " (%d sched)", sched)
	}
	fmt.Fprintln(c.out)
	return nil
}

func (c *Console) latency() {
	var rows []metrics.Row
	for _, task := range c.sys.Kernel().Tasks() {
		rows = append(rows, task.Stats().Latency)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Label < rows[j].Label })
	fmt.Fprint(c.out, metrics.FormatTable("scheduling latency (ns)", rows))
}

func (c *Console) view() {
	view := c.sys.GlobalView()
	for cpuID := 0; cpuID < view.NumCPUs; cpuID++ {
		var sum float64
		names := []string{}
		for _, ct := range view.OnCPU(cpuID) {
			sum += ct.CPUUsage
			names = append(names, ct.Name)
		}
		fmt.Fprintf(c.out, "cpu%d: %3.0f%% declared (%s)\n", cpuID, sum*100, strings.Join(names, " "))
	}
}

func (c *Console) status(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: status <component>")
	}
	mgmt, ok := c.sys.Management(args[0])
	if !ok {
		return fmt.Errorf("no management service for %q (not active?)", args[0])
	}
	st := mgmt.Status()
	fmt.Fprintf(c.out, "%s: task=%v jobs=%d misses=%d skips=%d served=%d lost=%d last=%v\n",
		args[0], st.TaskState, st.Jobs, st.Misses, st.Skips,
		st.CommandsServed, st.CommandsLost, st.LastJobAt)
	return nil
}

func (c *Console) set(args []string) error {
	if len(args) != 3 {
		return fmt.Errorf("usage: set <component> <key> <value>")
	}
	mgmt, ok := c.sys.Management(args[0])
	if !ok {
		return fmt.Errorf("no management service for %q", args[0])
	}
	if err := mgmt.SetProperty(args[1], args[2]); err != nil {
		return err
	}
	fmt.Fprintf(c.out, "queued %s=%s for %s (applied at next job)\n", args[1], args[2], args[0])
	return nil
}

func (c *Console) traceCmd(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: trace on|off")
	}
	switch args[0] {
	case "on":
		c.tracer = c.sys.Kernel().StartTrace(0)
		fmt.Fprintln(c.out, "trace on")
	case "off":
		c.sys.Kernel().StopTrace()
		c.tracer = nil
		fmt.Fprintln(c.out, "trace off")
	default:
		return fmt.Errorf("usage: trace on|off")
	}
	return nil
}

func (c *Console) gantt(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: gantt <duration>")
	}
	d, err := time.ParseDuration(args[0])
	if err != nil {
		return err
	}
	tracer := c.sys.Kernel().StartTrace(0)
	from := c.sys.Now()
	if err := c.sys.Run(d); err != nil {
		return err
	}
	if c.tracer == nil {
		c.sys.Kernel().StopTrace()
	}
	fmt.Fprint(c.out, tracer.Gantt(from, c.sys.Now(), 96))
	return nil
}
