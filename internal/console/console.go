// Package console implements a line-oriented command interpreter over a
// DRCom system — the analogue of the Equinox console session the paper's
// prototype ran in. It drives deployment, lifecycle operations, simulated
// time, and diagnostics (component table, latency rows, event timeline,
// scheduler Gantt) from a script or interactive stream.
package console

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	drcom "repro"
	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/contract"
	"repro/internal/descriptor"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/rtos"
)

// Console interprets commands against one System, or — in cluster mode —
// against a federation of nodes (see NewCluster).
type Console struct {
	sys    *drcom.System
	cl     *cluster.Cluster
	out    io.Writer
	tracer *rtos.Tracer
	// guards holds the contract guards the forecast command reads,
	// keyed by plane ("" for the single system, "n2" per cluster node).
	guards map[string]*contract.Guard
	// ReadFile is stubbed in tests; defaults to os.ReadFile.
	ReadFile func(string) ([]byte, error)
}

// New builds a console writing responses to out.
func New(sys *drcom.System, out io.Writer) *Console {
	return &Console{sys: sys, out: out, ReadFile: os.ReadFile}
}

// NewCluster builds a console driving a federated cluster instead of a
// single system. run/deploy/remove route through the cluster's leader;
// nodes, links and migrate expose the federation; single-node
// diagnostics (spans, gantt, …) are unavailable.
func NewCluster(cl *cluster.Cluster, out io.Writer) *Console {
	return &Console{cl: cl, out: out, ReadFile: os.ReadFile}
}

// AttachCluster adds a cluster to an existing single-system console,
// enabling the nodes/links/migrate commands alongside it.
func (c *Console) AttachCluster(cl *cluster.Cluster) { c.cl = cl }

// AttachGuard exposes a contract guard to the forecast command. The node
// key is "" for a single-system console; cluster consoles attach one
// guard per node under its plane name ("n0", "n1", …).
func (c *Console) AttachGuard(node string, g *contract.Guard) {
	if c.guards == nil {
		c.guards = map[string]*contract.Guard{}
	}
	c.guards[node] = g
}

// Run interprets commands from in until EOF or the quit command. Blank
// lines and #-comments are skipped. Errors are reported to the output
// stream; they do not stop the session.
func (c *Console) Run(in io.Reader) error {
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if quit := c.Exec(line); quit {
			return nil
		}
	}
	return sc.Err()
}

// Exec interprets one command line; it reports whether the session should
// end.
func (c *Console) Exec(line string) (quit bool) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return false
	}
	cmd, args := fields[0], fields[1:]
	var err error
	if c.sys == nil {
		switch cmd {
		case "help", "quit", "exit", "run", "deploy", "remove", "nodes", "links", "migrate",
			"spans", "why", "watch", "metrics", "flightrec", "forecast", "admit":
		default:
			fmt.Fprintf(c.out, "error: %q needs a single-node system; this console drives a cluster (try nodes, links, migrate)\n", cmd)
			return false
		}
	}
	switch cmd {
	case "help":
		c.printHelp()
	case "quit", "exit":
		return true
	case "deploy":
		err = c.deploy(args)
	case "plan":
		err = c.plan(args)
	case "remove", "enable", "disable", "suspend", "resume":
		err = c.lifecycle(cmd, args)
	case "run":
		err = c.run(args)
	case "mode":
		err = c.mode(args)
	case "modes":
		c.modes()
	case "downgrade":
		err = c.downgrade(args)
	case "promote":
		err = c.promote(args)
	case "forecast":
		err = c.forecast(args)
	case "admit":
		err = c.admit(args)
	case "list", "lb", "ss":
		c.list()
	case "events":
		c.events()
	case "spans":
		err = c.spans(args)
	case "why":
		err = c.why(args)
	case "metrics":
		c.metrics()
	case "watch":
		err = c.watch(args)
	case "flightrec":
		err = c.flightrec(args)
	case "timeline":
		fmt.Fprint(c.out, bench.Timeline(c.sys.Events()))
	case "latency":
		c.latency()
	case "view":
		c.view()
	case "status":
		err = c.status(args)
	case "set":
		err = c.set(args)
	case "trace":
		err = c.traceCmd(args)
	case "gantt":
		err = c.gantt(args)
	case "nodes":
		err = c.nodesCmd()
	case "links":
		err = c.linksCmd()
	case "migrate":
		err = c.migrateCmd(args)
	default:
		err = fmt.Errorf("unknown command %q (try help)", cmd)
	}
	if err != nil {
		fmt.Fprintf(c.out, "error: %v\n", err)
	}
	return false
}

func (c *Console) printHelp() {
	fmt.Fprint(c.out, `commands:
  deploy <file.xml>       parse and deploy a component descriptor
  plan <file.xml> [...]   compile a bundle's composition plan (no deploy)
  remove|enable|disable|suspend|resume <name>
  run <duration>          advance simulated time (e.g. run 500ms)
  mode light|stress       switch the load regime
  modes                   declared service-mode ladders and admitted modes
  downgrade <name> [why]  step a component down one service mode
  promote <name>          allow a downgraded component to re-promote
  forecast [name]         guard's predicted miss probabilities per component
  admit <file.xml> [...] -dry
                          dry-run admission: Monte-Carlo verdicts, no deploy
  list                    component table (alias: lb, ss)
  events                  unified decision timeline (with why column)
  spans [n]               last n observability spans (default 20)
  why <component>         causal chain behind a component's latest span
  metrics                 observability metrics snapshot
  watch <duration>        run + print the spans the interval produced
  flightrec [name]        flight-recorder dumps: list all, or print one
  timeline                per-component state strips
  latency                 per-task scheduling latency rows
  view                    admission view (budgets per CPU)
  status <name>           management-service status snapshot
  set <name> <key> <val>  set a component property (async)
  trace on|off            attach/detach the scheduler tracer
  gantt <duration>        run + render a scheduler Gantt chart
  nodes                   cluster global view (leader, reports, placements)
  links                   network ledger and per-pair partition status
  migrate <name> <node>   move a component to an explicit node
  quit                    end the session
cluster mode: spans/why/watch/metrics/flightrec read the federated
planes; names may be node-qualified (why n2/decoder, spans n1 10,
watch 40ms n0). Plain names stitch across nodes. forecast takes a
node or n2/name filter; admit needs a leading node (admit n1 f.xml -dry).
`)
}

func (c *Console) deploy(args []string) error {
	if c.sys == nil {
		return c.deployCluster(args)
	}
	if len(args) != 1 {
		return fmt.Errorf("usage: deploy <file.xml>")
	}
	data, err := c.ReadFile(args[0])
	if err != nil {
		return err
	}
	if err := c.sys.DeployXML(string(data)); err != nil {
		return err
	}
	fmt.Fprintf(c.out, "deployed %s\n", args[0])
	return nil
}

// plan compiles — without deploying — the composition plan for the
// given descriptor files, in argument order, against the live system,
// and renders it: activation schedule, wiring table, admission deltas,
// leftovers. Every section iterates pre-sorted plan slices, so the
// render is deterministic.
func (c *Console) plan(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: plan <file.xml> [more.xml ...]")
	}
	srcs := make([]string, 0, len(args))
	for _, path := range args {
		data, err := c.ReadFile(path)
		if err != nil {
			return err
		}
		srcs = append(srcs, string(data))
	}
	p, err := c.sys.CompilePlan(srcs)
	if err != nil {
		return err
	}
	fmt.Fprintf(c.out, "plan %s: %d components, %d schedulable, %d leftover\n",
		p.Key[:12], len(p.Components), len(p.Schedule), len(p.Leftovers))
	if len(p.Schedule) > 0 {
		fmt.Fprintln(c.out, "activation order:")
		for i, name := range p.Schedule {
			cause := "-"
			if ci := p.CauseIdx[i]; ci >= 0 {
				cause = p.Schedule[ci]
			}
			fmt.Fprintf(c.out, "  %2d. %-8s cause %s\n", i+1, name, cause)
		}
	}
	if len(p.Edges) > 0 {
		fmt.Fprintln(c.out, "wiring:")
		for _, e := range p.Edges {
			provider := "(unbound)"
			if e.Provider != "" {
				provider = e.Provider
			}
			fmt.Fprintf(c.out, "  %s.%s <- %s", e.Consumer, e.Inport, provider)
			if e.External {
				fmt.Fprint(c.out, " (external)")
			}
			if len(e.Modes) > 1 {
				fmt.Fprintf(c.out, " [%s]", strings.Join(e.Modes, ","))
			}
			fmt.Fprintln(c.out)
		}
	}
	if len(p.Deltas) > 0 {
		fmt.Fprintln(c.out, "admission delta:")
		for _, d := range p.Deltas {
			fmt.Fprintf(c.out, "  cpu%d: %.3f -> %.3f (%+.3f)\n", d.CPU, d.Before, d.After, d.Delta)
		}
	}
	for _, lo := range p.Leftovers {
		fmt.Fprintf(c.out, "leftover: %s waits on inport %s\n", lo.Name, lo.Missing)
	}
	if p.Fallback != "" {
		fmt.Fprintf(c.out, "fallback: %s (deploy takes the event path)\n", p.Fallback)
	}
	return nil
}

// deployCluster routes a descriptor through the cluster: with an explicit
// node argument it pins the placement, otherwise the leader picks the
// node with the most headroom.
func (c *Console) deployCluster(args []string) error {
	if len(args) != 1 && len(args) != 2 {
		return fmt.Errorf("usage: deploy <file.xml> [node]")
	}
	data, err := c.ReadFile(args[0])
	if err != nil {
		return err
	}
	if len(args) == 2 {
		node, err := parseNodeID(args[1], c.cl.Nodes())
		if err != nil {
			return err
		}
		if err := c.cl.DeployXMLOn(node, string(data)); err != nil {
			return err
		}
		fmt.Fprintf(c.out, "deployed %s on n%d\n", args[0], node)
		return nil
	}
	if err := c.cl.DeployXML(string(data)); err != nil {
		return err
	}
	fmt.Fprintf(c.out, "deployed %s (leader-placed)\n", args[0])
	return nil
}

func (c *Console) lifecycle(cmd string, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: %s <component>", cmd)
	}
	name := args[0]
	if c.sys == nil { // cluster mode: only remove routes through the catalog
		if err := c.cl.Remove(name); err != nil {
			return err
		}
		fmt.Fprintf(c.out, "%s removed from the cluster\n", name)
		return nil
	}
	var err error
	switch cmd {
	case "remove":
		err = c.sys.Remove(name)
	case "enable":
		err = c.sys.Enable(name)
	case "disable":
		err = c.sys.Disable(name)
	case "suspend":
		err = c.sys.Suspend(name)
	case "resume":
		err = c.sys.Resume(name)
	}
	if err != nil {
		return err
	}
	info, _ := c.sys.Component(name)
	fmt.Fprintf(c.out, "%s: %v\n", name, info.State)
	return nil
}

func (c *Console) run(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: run <duration>")
	}
	d, err := time.ParseDuration(args[0])
	if err != nil {
		return err
	}
	if c.sys == nil {
		if err := c.cl.Run(d); err != nil {
			return err
		}
		fmt.Fprintf(c.out, "now %v\n", time.Duration(c.cl.Now()))
		return nil
	}
	if err := c.sys.Run(d); err != nil {
		return err
	}
	fmt.Fprintf(c.out, "now %v\n", c.sys.Now())
	return nil
}

func (c *Console) mode(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: mode light|stress")
	}
	switch args[0] {
	case "light":
		c.sys.SetLoadMode(drcom.LightLoad)
	case "stress":
		c.sys.SetLoadMode(drcom.StressLoad)
	default:
		return fmt.Errorf("unknown mode %q", args[0])
	}
	fmt.Fprintf(c.out, "mode %s\n", args[0])
	return nil
}

// modes prints each component's declared service-mode ladder, marking
// the admitted mode. Single-mode components are summarised on one line.
func (c *Console) modes() {
	for _, info := range c.sys.Components() {
		if len(info.Modes) == 0 {
			fmt.Fprintf(c.out, "%-8s full contract only (%.0f%% @ %s)\n",
				info.Name, info.CPUUsage*100, info.State)
			continue
		}
		fmt.Fprintf(c.out, "%-8s %v\n", info.Name, info.State)
		for i, m := range info.Modes {
			marker := " "
			if i == info.Mode {
				marker = "*"
			}
			fmt.Fprintf(c.out, "  %s %d %-8s %6.0f Hz %5.0f%%", marker, i, m.Name, m.FrequencyHz, m.CPUUsage*100)
			if len(m.Drops) > 0 {
				fmt.Fprintf(c.out, "  drops %v", m.Drops)
			}
			fmt.Fprintln(c.out)
		}
	}
}

// downgrade steps a component down one declared mode.
func (c *Console) downgrade(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: downgrade <component> [reason]")
	}
	reason := "console request"
	if len(args) > 1 {
		reason = strings.Join(args[1:], " ")
	}
	if err := c.sys.Downgrade(args[0], reason); err != nil {
		return err
	}
	info, _ := c.sys.Component(args[0])
	fmt.Fprintf(c.out, "%s: %v mode %d (%s)\n", args[0], info.State, info.Mode, info.ModeName)
	return nil
}

// promote lifts a component's promotion hold.
func (c *Console) promote(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: promote <component>")
	}
	if err := c.sys.AllowPromotion(args[0]); err != nil {
		return err
	}
	info, _ := c.sys.Component(args[0])
	fmt.Fprintf(c.out, "%s: %v mode %d (%s)\n", args[0], info.State, info.Mode, info.ModeName)
	return nil
}

// forecast prints each attached guard's latest per-component forecast:
// the blended miss probability against the declared allowance, the
// trend projection, and the hysteresis state. An argument filters by
// component; in cluster mode it may be node-qualified ("n2/calc") or a
// bare node ("n2").
func (c *Console) forecast(args []string) error {
	if len(args) > 1 {
		return fmt.Errorf("usage: forecast [node/]name")
	}
	if len(c.guards) == 0 {
		return fmt.Errorf("no contract guard attached (AttachGuard)")
	}
	nodeFilter, compFilter := "", ""
	if len(args) == 1 {
		if c.cl != nil {
			node, comp := splitNodeQualified(args[0])
			if node != "" {
				canon, err := c.normalizeNode(node)
				if err != nil {
					return err
				}
				nodeFilter, compFilter = canon, comp
			} else if canon, err := c.normalizeNode(args[0]); err == nil {
				nodeFilter = canon
			} else {
				compFilter = args[0]
			}
		} else {
			compFilter = args[0]
		}
	}
	nodes := make([]string, 0, len(c.guards))
	for node := range c.guards {
		nodes = append(nodes, node)
	}
	sort.Strings(nodes)
	shown := 0
	for _, node := range nodes {
		if nodeFilter != "" && node != nodeFilter {
			continue
		}
		tag := ""
		if node != "" {
			tag = "[" + node + "] "
		}
		for _, f := range c.guards[node].Forecasts() {
			if compFilter != "" && f.Component != compFilter {
				continue
			}
			state := "armed"
			if !f.Armed {
				state = "held"
			}
			fmt.Fprintf(c.out, "%s%-8s P(miss)=%.3f allowed=%.3f projected=%.4f limit=%.4f sigma=%.4f %s samples=%d at=%v\n",
				tag, f.Component, f.PMiss, f.Allowed, f.Projected, f.Limit, f.Sigma, state,
				f.Samples, time.Duration(f.At))
			shown++
		}
	}
	if shown == 0 {
		fmt.Fprintln(c.out, "no forecasts yet (estimator runs for active budget-declaring components)")
	}
	return nil
}

// admit dry-runs admission for a bundle of descriptor files: it compiles
// the composition plan against the live admitted view and prints the
// Monte-Carlo verdict of every stochastic budget plus the admission
// deltas — without deploying anything. The -dry flag is required; the
// deploy command is how a bundle is applied. In cluster mode a leading
// node argument picks the node whose view the bundle is tried against.
func (c *Console) admit(args []string) error {
	dry := false
	files := make([]string, 0, len(args))
	node := ""
	for _, a := range args {
		switch {
		case a == "-dry":
			dry = true
		case c.cl != nil && len(files) == 0 && !strings.Contains(a, "."):
			canon, err := c.normalizeNode(a)
			if err != nil {
				return err
			}
			node = canon
		default:
			files = append(files, a)
		}
	}
	usage := "usage: admit <file.xml> [more.xml ...] -dry"
	if c.sys == nil {
		usage = "usage: admit <node> <file.xml> [more.xml ...] -dry"
	}
	if len(files) == 0 {
		return fmt.Errorf("%s", usage)
	}
	if !dry {
		return fmt.Errorf("%s (admission is a dry run; deploy applies a bundle)", usage)
	}
	srcs := make([]string, 0, len(files))
	for _, path := range files {
		data, err := c.ReadFile(path)
		if err != nil {
			return err
		}
		srcs = append(srcs, string(data))
	}
	var (
		p   *plan.Plan
		err error
	)
	tag := ""
	if c.sys != nil {
		p, err = c.sys.CompilePlan(srcs)
	} else {
		if node == "" {
			return fmt.Errorf("%s", usage)
		}
		tag = "[" + node + "] "
		id, perr := parseNodeID(node, c.cl.Nodes())
		if perr != nil {
			return perr
		}
		descs, perr := descriptor.ParseAll(srcs)
		if perr != nil {
			return perr
		}
		p, err = c.cl.Node(id).DRCR().CompilePlan(descs)
	}
	if err != nil {
		return err
	}
	verdicts := make(map[string]string, len(p.Admissions))
	for _, a := range p.Admissions {
		verdicts[a.Name] = a.Verdict
	}
	fmt.Fprintf(c.out, "%sadmit (dry run): %d components, %d schedulable, %d stochastic verdicts\n",
		tag, len(p.Components), len(p.Schedule), len(p.Admissions))
	for _, name := range p.Schedule {
		if v, ok := verdicts[name]; ok {
			fmt.Fprintf(c.out, "%s  %-8s %s\n", tag, name, v)
		} else {
			fmt.Fprintf(c.out, "%s  %-8s constant budget (deterministic admission)\n", tag, name)
		}
	}
	for _, d := range p.Deltas {
		fmt.Fprintf(c.out, "%s  cpu%d: %.3f -> %.3f (%+.3f)\n", tag, d.CPU, d.Before, d.After, d.Delta)
	}
	for _, lo := range p.Leftovers {
		fmt.Fprintf(c.out, "%s  leftover: %s waits on inport %s\n", tag, lo.Name, lo.Missing)
	}
	if p.Fallback != "" {
		fmt.Fprintf(c.out, "%s  fallback: %s (deploy would take the event path)\n", tag, p.Fallback)
	}
	return nil
}

func (c *Console) list() {
	infos := c.sys.Components()
	fmt.Fprintf(c.out, "%-8s %-11s %-9s %4s %4s %7s %4s  %s\n",
		"name", "state", "kind", "cpu", "prio", "budget", "imp", "bindings")
	for _, info := range infos {
		fmt.Fprintf(c.out, "%-8s %-11v %-9s %4d %4d %6.0f%% %4d  %s\n",
			info.Name, info.State, info.Kind, info.CPU, info.Priority,
			info.CPUUsage*100, info.Importance, formatBindings(info.Bindings))
	}
	fmt.Fprintf(c.out, "%d components\n", len(infos))
}

// formatBindings renders a binding map in explicit port-name order; the
// render feeds scripted session transcripts (and, through them, pinned
// digests), so the order must not lean on fmt's map formatting.
func formatBindings(b map[string]string) string {
	if len(b) == 0 {
		return "-"
	}
	ports := make([]string, 0, len(b))
	for port := range b {
		ports = append(ports, port)
	}
	sort.Strings(ports)
	parts := make([]string, 0, len(ports))
	for _, port := range ports {
		parts = append(parts, port+"<-"+b[port])
	}
	return strings.Join(parts, " ")
}

// / events prints the unified decision timeline: every retained span from
// the observability plane — lifecycle transitions, admission denials,
// contract violations, budget revoke/restore, quarantines, faults — with
// a why column naming the causing span when one is recorded.
func (c *Console) events() {
	o := c.sys.Observer()
	for _, s := range o.Spans() {
		if s.Kind == obs.KindSched || s.Kind == obs.KindResolveRound {
			continue // scheduler noise; use trace/gantt for that
		}
		fmt.Fprintf(c.out, "%s%s\n", s, c.whyColumn(o, s))
	}
}

// whyColumn renders the cause of a span, if it is still retained.
func (c *Console) whyColumn(o drcom.Observer, s drcom.Span) string {
	if s.Cause == 0 {
		return ""
	}
	cs, ok := o.Span(s.Cause)
	if !ok {
		return ""
	}
	why := "  why: " + cs.Kind.String()
	if cs.Component != "" {
		why += " " + cs.Component
	}
	if cs.To != "" {
		why += " " + cs.To
	}
	return why
}

// spans prints the most recent n retained spans, all kinds included.
// In cluster mode an optional leading node argument ("n2", "node2",
// "cluster") selects the plane; the default is the cluster plane.
func (c *Console) spans(args []string) error {
	if c.sys == nil && len(args) > 0 {
		if _, err := strconv.Atoi(args[0]); err != nil {
			return c.spansCluster(args[0], args[1:])
		}
	}
	if c.sys == nil {
		return c.spansCluster("cluster", args)
	}
	n := 20
	switch len(args) {
	case 0:
	case 1:
		v, err := strconv.Atoi(args[0])
		if err != nil || v <= 0 {
			return fmt.Errorf("usage: spans [n]")
		}
		n = v
	default:
		return fmt.Errorf("usage: spans [n]")
	}
	o := c.sys.Observer()
	all := o.Spans()
	if len(all) > n {
		all = all[len(all)-n:]
	}
	for _, s := range all {
		fmt.Fprintf(c.out, "%s\n", s)
	}
	fmt.Fprintf(c.out, "%d spans shown, %d emitted\n", len(all), uint64(o.NextID())-1)
	return nil
}

// why prints the causal chain ending at a component's latest span,
// consequence first. In cluster mode the chain is stitched across
// node boundaries; a node-qualified name ("n2/decoder") pins the
// plane the walk starts on.
func (c *Console) why(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: why [node/]component")
	}
	if c.sys == nil {
		return c.whyCluster(args[0])
	}
	chain := c.sys.Observer().Why(args[0])
	if len(chain) == 0 {
		return fmt.Errorf("no spans recorded for %q", args[0])
	}
	fmt.Fprintf(c.out, "%s\n", chain[0])
	for _, s := range chain[1:] {
		fmt.Fprintf(c.out, "  <- %s\n", s)
	}
	return nil
}

// metrics prints the observability snapshot, plus the compiled-plan
// cache counters (lookups live outside the obs plane, in the cache).
// Cluster mode prints the control-plane snapshot and the latency
// summary merged across every node's histograms.
func (c *Console) metrics() {
	if c.sys == nil {
		c.metricsCluster()
		return
	}
	fmt.Fprint(c.out, c.sys.Observer().Snapshot().Format())
	if hits, misses, size := c.sys.DRCR().PlanCache().Stats(); hits+misses+uint64(size) > 0 {
		fmt.Fprintf(c.out, "  plan cache: %d hits, %d misses, %d entries\n", hits, misses, size)
	}
}

// watch advances simulated time and prints every span the interval
// produced (scheduler bridge spans summarised, not listed). Cluster
// mode watches every plane, or one when a node argument follows the
// duration (watch 40ms n2).
func (c *Console) watch(args []string) error {
	if c.sys == nil {
		return c.watchCluster(args)
	}
	if len(args) != 1 {
		return fmt.Errorf("usage: watch <duration>")
	}
	d, err := time.ParseDuration(args[0])
	if err != nil {
		return err
	}
	o := c.sys.Observer()
	from := o.NextID()
	if err := c.sys.Run(d); err != nil {
		return err
	}
	fresh := o.SpansSince(from)
	sched := 0
	for _, s := range fresh {
		if s.Kind == obs.KindSched {
			sched++
			continue
		}
		fmt.Fprintf(c.out, "%s%s\n", s, c.whyColumn(o, s))
	}
	fmt.Fprintf(c.out, "watched %v: %d new spans", d, len(fresh))
	if sched > 0 {
		fmt.Fprintf(c.out, " (%d sched)", sched)
	}
	fmt.Fprintln(c.out)
	return nil
}

func (c *Console) latency() {
	var rows []metrics.Row
	for _, task := range c.sys.Kernel().Tasks() {
		rows = append(rows, task.Stats().Latency)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Label < rows[j].Label })
	fmt.Fprint(c.out, metrics.FormatTable("scheduling latency (ns)", rows))
}

func (c *Console) view() {
	view := c.sys.GlobalView()
	for cpuID := 0; cpuID < view.NumCPUs; cpuID++ {
		var sum float64
		names := []string{}
		for _, ct := range view.OnCPU(cpuID) {
			sum += ct.CPUUsage
			names = append(names, ct.Name)
		}
		fmt.Fprintf(c.out, "cpu%d: %3.0f%% declared (%s)\n", cpuID, sum*100, strings.Join(names, " "))
	}
}

func (c *Console) status(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: status <component>")
	}
	mgmt, ok := c.sys.Management(args[0])
	if !ok {
		return fmt.Errorf("no management service for %q (not active?)", args[0])
	}
	st := mgmt.Status()
	fmt.Fprintf(c.out, "%s: task=%v jobs=%d misses=%d skips=%d served=%d lost=%d last=%v\n",
		args[0], st.TaskState, st.Jobs, st.Misses, st.Skips,
		st.CommandsServed, st.CommandsLost, st.LastJobAt)
	return nil
}

func (c *Console) set(args []string) error {
	if len(args) != 3 {
		return fmt.Errorf("usage: set <component> <key> <value>")
	}
	mgmt, ok := c.sys.Management(args[0])
	if !ok {
		return fmt.Errorf("no management service for %q", args[0])
	}
	if err := mgmt.SetProperty(args[1], args[2]); err != nil {
		return err
	}
	fmt.Fprintf(c.out, "queued %s=%s for %s (applied at next job)\n", args[1], args[2], args[0])
	return nil
}

func (c *Console) traceCmd(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: trace on|off")
	}
	switch args[0] {
	case "on":
		c.tracer = c.sys.Kernel().StartTrace(0)
		fmt.Fprintln(c.out, "trace on")
	case "off":
		c.sys.Kernel().StopTrace()
		c.tracer = nil
		fmt.Fprintln(c.out, "trace off")
	default:
		return fmt.Errorf("usage: trace on|off")
	}
	return nil
}

func (c *Console) gantt(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: gantt <duration>")
	}
	d, err := time.ParseDuration(args[0])
	if err != nil {
		return err
	}
	tracer := c.sys.Kernel().StartTrace(0)
	from := c.sys.Now()
	if err := c.sys.Run(d); err != nil {
		return err
	}
	if c.tracer == nil {
		c.sys.Kernel().StopTrace()
	}
	fmt.Fprint(c.out, tracer.Gantt(from, c.sys.Now(), 96))
	return nil
}

// parseNodeID accepts "3" or "n3".
func parseNodeID(s string, nodes int) (int, error) {
	id, err := strconv.Atoi(strings.TrimPrefix(s, "n"))
	if err != nil || id < 0 || id >= nodes {
		return 0, fmt.Errorf("no node %q (cluster has n0..n%d)", s, nodes-1)
	}
	return id, nil
}

// nodesCmd prints the global view: one row per node with its leader
// belief, reachable peers and the leader's freshest report, then the
// placement catalog. All map walks render in explicit sorted order.
func (c *Console) nodesCmd() error {
	if c.cl == nil {
		return fmt.Errorf("no cluster attached")
	}
	v := c.cl.GlobalView()
	fmt.Fprintf(c.out, "leader n%d\n", v.Leader)
	fmt.Fprintf(c.out, "%-5s %-7s %-12s %6s %9s  %s\n",
		"node", "leader", "reachable", "load", "admitted", "components")
	for _, n := range v.Nodes {
		reach := make([]string, 0, len(n.Reachable))
		for _, id := range n.Reachable {
			reach = append(reach, fmt.Sprintf("n%d", id))
		}
		names := make([]string, 0, len(n.Comps))
		for name := range n.Comps {
			names = append(names, name)
		}
		sort.Strings(names)
		comps := make([]string, 0, len(names))
		for _, name := range names {
			comps = append(comps, fmt.Sprintf("%s/m%d", name, n.Comps[name]))
		}
		fmt.Fprintf(c.out, "n%-4d n%-6d %-12s %5.0f%% %9d  %s\n",
			n.ID, n.Leader, strings.Join(reach, ","), n.Load*100, n.Admitted,
			strings.Join(comps, " "))
	}
	names := make([]string, 0, len(v.Placements))
	for name := range v.Placements {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(c.out, "placed %s -> n%d\n", name, v.Placements[name])
	}
	fmt.Fprintf(c.out, "converged %v\n", c.cl.Converged())
	return nil
}

// linksCmd prints the network conservation ledger and the current cut
// status of every node pair.
func (c *Console) linksCmd() error {
	if c.cl == nil {
		return fmt.Errorf("no cluster attached")
	}
	st := c.cl.Net().Stats()
	fmt.Fprintf(c.out, "net: sent %d dup %d delivered %d dropped %d (partition %d, loss %d) inflight %d\n",
		st.Sent, st.Duplicated, st.Delivered, st.Dropped, st.PartitionDrops, st.LossDrops, st.Inflight)
	cut := 0
	for a := 0; a < c.cl.Nodes(); a++ {
		for b := a + 1; b < c.cl.Nodes(); b++ {
			if c.cl.Net().Partitioned(a, b) {
				fmt.Fprintf(c.out, "link n%d<->n%d: CUT\n", a, b)
				cut++
			}
		}
	}
	if cut == 0 {
		fmt.Fprintf(c.out, "all %d links up\n", c.cl.Nodes()*(c.cl.Nodes()-1)/2)
	}
	return nil
}

// planeNames lists the federation's planes in render order: the
// cluster control plane first, then nodes by id.
func (c *Console) planeNames() []string {
	names := make([]string, 0, c.cl.Nodes()+1)
	names = append(names, "cluster")
	for i := 0; i < c.cl.Nodes(); i++ {
		names = append(names, fmt.Sprintf("n%d", i))
	}
	return names
}

// normalizeNode canonicalises a plane qualifier: "cluster", "n2" and
// "node2" are accepted; the canonical plane key comes back.
func (c *Console) normalizeNode(s string) (string, error) {
	if s == "cluster" {
		return s, nil
	}
	q := strings.TrimPrefix(s, "node")
	if q == s {
		q = strings.TrimPrefix(s, "n")
	}
	id, err := strconv.Atoi(q)
	if err != nil || id < 0 || id >= c.cl.Nodes() {
		return "", fmt.Errorf("no plane %q (cluster, n0..n%d)", s, c.cl.Nodes()-1)
	}
	return fmt.Sprintf("n%d", id), nil
}

// splitNodeQualified splits "n2/decoder" into plane and component;
// a bare name comes back with an empty plane.
func splitNodeQualified(s string) (node, comp string) {
	if i := strings.IndexByte(s, '/'); i >= 0 {
		return s[:i], s[i+1:]
	}
	return "", s
}

// spansCluster prints the last n retained spans of one plane.
func (c *Console) spansCluster(node string, rest []string) error {
	node, err := c.normalizeNode(node)
	if err != nil {
		return err
	}
	n := 20
	switch len(rest) {
	case 0:
	case 1:
		v, err := strconv.Atoi(rest[0])
		if err != nil || v <= 0 {
			return fmt.Errorf("usage: spans [node] [n]")
		}
		n = v
	default:
		return fmt.Errorf("usage: spans [node] [n]")
	}
	p := c.cl.Planes()[node]
	all := p.Spans()
	if len(all) > n {
		all = all[len(all)-n:]
	}
	for _, s := range all {
		fmt.Fprintf(c.out, "[%s] %s\n", node, s)
	}
	fmt.Fprintf(c.out, "%d spans shown on %s, %d emitted\n", len(all), node, uint64(p.NextID())-1)
	return nil
}

// whyCluster prints a stitched causal chain, each hop tagged with the
// plane it was recorded on.
func (c *Console) whyCluster(arg string) error {
	node, comp := splitNodeQualified(arg)
	var chain []obs.StitchedSpan
	if node == "" {
		chain = c.cl.Why(comp)
	} else {
		canon, err := c.normalizeNode(node)
		if err != nil {
			return err
		}
		chain = c.cl.WhyOn(canon, comp)
	}
	if len(chain) == 0 {
		return fmt.Errorf("no spans recorded for %q", arg)
	}
	fmt.Fprintf(c.out, "[%s] %s\n", chain[0].Node, chain[0].Span)
	for _, s := range chain[1:] {
		fmt.Fprintf(c.out, "  <- [%s] %s\n", s.Node, s.Span)
	}
	return nil
}

// watchCluster advances the federation and prints what each plane
// recorded during the interval.
func (c *Console) watchCluster(args []string) error {
	if len(args) != 1 && len(args) != 2 {
		return fmt.Errorf("usage: watch <duration> [node]")
	}
	d, err := time.ParseDuration(args[0])
	if err != nil {
		return err
	}
	names := c.planeNames()
	if len(args) == 2 {
		node, err := c.normalizeNode(args[1])
		if err != nil {
			return err
		}
		names = []string{node}
	}
	planes := c.cl.Planes()
	from := make(map[string]obs.SpanID, len(names))
	for _, name := range names {
		from[name] = planes[name].NextID()
	}
	if err := c.cl.Run(d); err != nil {
		return err
	}
	total, sched := 0, 0
	for _, name := range names {
		fresh := planes[name].SpansSince(from[name])
		total += len(fresh)
		for _, s := range fresh {
			if s.Kind == obs.KindSched {
				sched++
				continue
			}
			fmt.Fprintf(c.out, "[%s] %s\n", name, s)
		}
	}
	fmt.Fprintf(c.out, "watched %v: %d new spans", d, total)
	if sched > 0 {
		fmt.Fprintf(c.out, " (%d sched)", sched)
	}
	fmt.Fprintln(c.out)
	return nil
}

// metricsCluster prints the control-plane snapshot and the latency
// summary merged over every plane's histograms.
func (c *Console) metricsCluster() {
	fmt.Fprint(c.out, c.cl.Planes()["cluster"].Snapshot().Format())
	stats := c.cl.LatencyStats()
	if len(stats) == 0 {
		return
	}
	fmt.Fprintln(c.out, "cluster latency (merged):")
	for _, st := range stats {
		fmt.Fprintf(c.out, "  %-18s n=%-6d p50 %-10v p95 %-10v p99 %-10v max %v\n",
			st.Name, st.Count, time.Duration(st.P50NS), time.Duration(st.P95NS),
			time.Duration(st.P99NS), time.Duration(st.MaxNS))
	}
}

// flightrec lists the retained flight-recorder dumps, or prints one
// dump's frozen span window by name. Cluster mode gathers dumps from
// every plane under node-qualified names.
func (c *Console) flightrec(args []string) error {
	if len(args) > 1 {
		return fmt.Errorf("usage: flightrec [name]")
	}
	var dumps []obs.FlightDump
	if c.sys == nil {
		dumps = c.cl.FlightDumps()
	} else {
		dumps = c.sys.Observer().FlightDumps()
	}
	if len(args) == 1 {
		for _, d := range dumps {
			if d.Name != args[0] {
				continue
			}
			fmt.Fprintf(c.out, "%s: at=%v trigger=%d spans=%d\n",
				d.Name, time.Duration(d.At), d.Trigger, len(d.Spans))
			for _, s := range d.Spans {
				fmt.Fprintf(c.out, "  %s\n", s)
			}
			return nil
		}
		return fmt.Errorf("no flight dump %q", args[0])
	}
	if len(dumps) == 0 {
		fmt.Fprintln(c.out, "no flight dumps")
		return nil
	}
	for _, d := range dumps {
		open := ""
		if !d.Complete() {
			open = " (open)"
		}
		fmt.Fprintf(c.out, "%s: at=%v trigger=%d spans=%d%s\n",
			d.Name, time.Duration(d.At), d.Trigger, len(d.Spans), open)
	}
	return nil
}

// migrateCmd moves a component to an explicit node.
func (c *Console) migrateCmd(args []string) error {
	if c.cl == nil {
		return fmt.Errorf("no cluster attached")
	}
	if len(args) != 2 {
		return fmt.Errorf("usage: migrate <component> <node>")
	}
	dst, err := parseNodeID(args[1], c.cl.Nodes())
	if err != nil {
		return err
	}
	if err := c.cl.Migrate(args[0], dst); err != nil {
		return err
	}
	fmt.Fprintf(c.out, "%s -> n%d\n", args[0], dst)
	return nil
}
