package console

import (
	"fmt"
	"strings"
	"testing"

	drcom "repro"
)

const cameraXML = `<component name="camera" type="periodic" cpuusage="0.1">
  <implementation bincode="demo.Camera"/>
  <periodictask frequence="100" runoncup="0" priority="2"/>
</component>`

func newConsole(t *testing.T) (*Console, *strings.Builder) {
	t.Helper()
	sys, err := drcom.NewSystem(drcom.Config{Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	var out strings.Builder
	c := New(sys, &out)
	c.ReadFile = func(path string) ([]byte, error) {
		if path == "camera.xml" {
			return []byte(cameraXML), nil
		}
		return nil, fmt.Errorf("no such file %q", path)
	}
	return c, &out
}

func session(t *testing.T, script string) string {
	t.Helper()
	c, out := newConsole(t)
	if err := c.Run(strings.NewReader(script)); err != nil {
		t.Fatal(err)
	}
	return out.String()
}

func TestSessionBasics(t *testing.T) {
	out := session(t, `
# a comment and a blank line are skipped

deploy camera.xml
list
run 500ms
status camera
latency
view
quit
list  # unreachable after quit
`)
	for _, want := range []string{
		"deployed camera.xml",
		"ACTIVE",
		"now 500ms",
		"jobs=",
		"scheduling latency",
		"cpu0:  10% declared (camera)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "1 components") != 1 {
		t.Errorf("quit did not end the session:\n%s", out)
	}
}

func TestSessionLifecycleCommands(t *testing.T) {
	out := session(t, `
deploy camera.xml
suspend camera
resume camera
disable camera
enable camera
remove camera
events
`)
	for _, want := range []string{
		"camera: SUSPENDED",
		"camera: ACTIVE",
		"camera: DISABLED",
		"DESTROYED",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestSessionErrorsDoNotAbort(t *testing.T) {
	out := session(t, `
bogus command
deploy nope.xml
deploy
run notaduration
mode sideways
status ghost
set ghost k v
suspend ghost
trace sideways
gantt
deploy camera.xml
`)
	if got := strings.Count(out, "error:"); got != 10 {
		t.Errorf("errors reported = %d, want 10:\n%s", got, out)
	}
	if !strings.Contains(out, "deployed camera.xml") {
		t.Errorf("session aborted before final command:\n%s", out)
	}
}

func TestSessionSetProperty(t *testing.T) {
	out := session(t, `
deploy camera.xml
set camera gain 4
run 20ms
status camera
`)
	if !strings.Contains(out, "queued gain=4") {
		t.Errorf("set not acknowledged:\n%s", out)
	}
	if !strings.Contains(out, "served=1") {
		t.Errorf("command not served by RT side:\n%s", out)
	}
}

func TestSessionModeSwitch(t *testing.T) {
	out := session(t, `
deploy camera.xml
mode stress
run 1s
latency
mode light
mode
`)
	if !strings.Contains(out, "mode stress") {
		t.Errorf("mode switch not acknowledged:\n%s", out)
	}
	// Stress regime visible in the latency row (mean ≈ -21µs).
	if !strings.Contains(out, "-21") {
		t.Errorf("stress latency regime not visible:\n%s", out)
	}
}

func TestSessionTraceAndGantt(t *testing.T) {
	out := session(t, `
deploy camera.xml
trace on
gantt 50ms
trace off
timeline
help
`)
	for _, want := range []string{"trace on", "gantt", "#", "legend", "state strips", "commands:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
