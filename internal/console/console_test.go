package console

import (
	"fmt"
	"strings"
	"testing"

	drcom "repro"
	"repro/internal/contract"
	"repro/internal/descriptor"
	"repro/internal/fault"
	"repro/internal/rtos"
	"repro/internal/workload"
)

const cameraXML = `<component name="camera" type="periodic" cpuusage="0.1">
  <implementation bincode="demo.Camera"/>
  <periodictask frequence="100" runoncup="0" priority="2"/>
</component>`

const modesCameraXML = `<component name="camera" type="periodic" cpuusage="0.1">
  <implementation bincode="demo.Camera"/>
  <periodictask frequence="100" runoncup="0" priority="2"/>
  <mode name="eco" frequence="50" cpuusage="0.05"/>
</component>`

const provXML = `<component name="feeder" type="periodic" cpuusage="0.05">
  <implementation bincode="demo.Feeder"/>
  <periodictask frequence="100" runoncup="0" priority="3"/>
  <outport name="beam" interface="RTAI.SHM" type="Integer" size="16"/>
</component>`

const consXML = `<component name="eater" type="periodic" cpuusage="0.05">
  <implementation bincode="demo.Eater"/>
  <periodictask frequence="100" runoncup="0" priority="4"/>
  <inport name="beam" interface="RTAI.SHM" type="Integer" size="16"/>
  <inport name="ghost" interface="RTAI.SHM" type="Integer" size="16"/>
</component>`

func newConsole(t *testing.T) (*Console, *strings.Builder) {
	t.Helper()
	sys, err := drcom.NewSystem(drcom.Config{Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	var out strings.Builder
	c := New(sys, &out)
	c.ReadFile = func(path string) ([]byte, error) {
		switch path {
		case "camera.xml":
			return []byte(cameraXML), nil
		case "modes.xml":
			return []byte(modesCameraXML), nil
		case "prov.xml":
			return []byte(provXML), nil
		case "cons.xml":
			return []byte(consXML), nil
		}
		return nil, fmt.Errorf("no such file %q", path)
	}
	return c, &out
}

func session(t *testing.T, script string) string {
	t.Helper()
	c, out := newConsole(t)
	if err := c.Run(strings.NewReader(script)); err != nil {
		t.Fatal(err)
	}
	return out.String()
}

func TestSessionBasics(t *testing.T) {
	out := session(t, `
# a comment and a blank line are skipped

deploy camera.xml
list
run 500ms
status camera
latency
view
quit
list  # unreachable after quit
`)
	for _, want := range []string{
		"deployed camera.xml",
		"ACTIVE",
		"now 500ms",
		"jobs=",
		"scheduling latency",
		"cpu0:  10% declared (camera)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "1 components") != 1 {
		t.Errorf("quit did not end the session:\n%s", out)
	}
}

func TestSessionLifecycleCommands(t *testing.T) {
	out := session(t, `
deploy camera.xml
suspend camera
resume camera
disable camera
enable camera
remove camera
events
`)
	for _, want := range []string{
		"camera: SUSPENDED",
		"camera: ACTIVE",
		"camera: DISABLED",
		"DESTROYED",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestSessionErrorsDoNotAbort(t *testing.T) {
	out := session(t, `
bogus command
deploy nope.xml
deploy
run notaduration
mode sideways
status ghost
set ghost k v
suspend ghost
trace sideways
gantt
deploy camera.xml
`)
	if got := strings.Count(out, "error:"); got != 10 {
		t.Errorf("errors reported = %d, want 10:\n%s", got, out)
	}
	if !strings.Contains(out, "deployed camera.xml") {
		t.Errorf("session aborted before final command:\n%s", out)
	}
}

func TestSessionSetProperty(t *testing.T) {
	out := session(t, `
deploy camera.xml
set camera gain 4
run 20ms
status camera
`)
	if !strings.Contains(out, "queued gain=4") {
		t.Errorf("set not acknowledged:\n%s", out)
	}
	if !strings.Contains(out, "served=1") {
		t.Errorf("command not served by RT side:\n%s", out)
	}
}

func TestSessionModeSwitch(t *testing.T) {
	out := session(t, `
deploy camera.xml
mode stress
run 1s
latency
mode light
mode
`)
	if !strings.Contains(out, "mode stress") {
		t.Errorf("mode switch not acknowledged:\n%s", out)
	}
	// Stress regime visible in the latency row (mean ≈ -21µs).
	if !strings.Contains(out, "-21") {
		t.Errorf("stress latency regime not visible:\n%s", out)
	}
}

// The degradation commands: modes renders the declared ladder with the
// admitted rung marked, downgrade steps down it, promote lifts the hold
// so the resolver climbs back.
func TestSessionModeLadderCommands(t *testing.T) {
	out := session(t, `
deploy modes.xml
modes
downgrade camera slow-path
downgrade camera
modes
promote camera
downgrade
promote camera extra
`)
	for _, want := range []string{
		"deployed modes.xml",
		"* 0 full", // full contract admitted at deploy
		"1 eco",    // the declared degraded rung
		"50 Hz",
		"camera: ACTIVE mode 1 (eco)", // downgrade keeps it serving
		`error: core: camera has no mode below "eco"`, // ladder bottom
		"* 1 eco",                      // second modes render: marker moved down
		"camera: ACTIVE mode 0 (full)", // promotion restored the contract
		"error: usage: downgrade <component> [reason]",
		"error: usage: promote <component>",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// The mode swaps surface as ACTIVE->ACTIVE events, not outages.
	if strings.Contains(out, "UNSATISFIED") {
		t.Errorf("mode transitions must not look like outages:\n%s", out)
	}
}

// Components without declared modes render as single-contract rows.
func TestSessionModesWithoutLadder(t *testing.T) {
	out := session(t, `
deploy camera.xml
modes
`)
	if !strings.Contains(out, "full contract only (10% @ ACTIVE)") {
		t.Errorf("single-mode component not rendered:\n%s", out)
	}
}

func TestSessionTraceAndGantt(t *testing.T) {
	out := session(t, `
deploy camera.xml
trace on
gantt 50ms
trace off
timeline
help
`)
	for _, want := range []string{"trace on", "gantt", "#", "legend", "state strips", "commands:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// The observability commands over the camera demo: spans, metrics, and
// watch must all reflect the deploy/activate history.
func TestSessionObservabilityCommands(t *testing.T) {
	out := session(t, `
deploy camera.xml
spans
why camera
metrics
watch 100ms
why ghost
spans -3
`)
	for _, want := range []string{
		"deploy camera UNSATISFIED",
		"transition camera SATISFIED->ACTIVE",
		"spans shown,",
		"observability @",
		"lifecycle: 1 deploys",
		"watched 100ms:",
		`error: no spans recorded for "ghost"`,
		"error: usage: spans [n]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// why camera roots the chain at a causing span: ACTIVE descends from
	// the SATISFIED transition.
	if !strings.Contains(out, "<- ") {
		t.Errorf("why printed no causal ancestry:\n%s", out)
	}
}

// Acceptance: after a guarded fault campaign, `why disp` must answer the
// paper's management question — why did the display stop? — with the
// full causal chain from the injected fault through the violation and
// revoke to the cascade deactivation.
func TestSessionWhyChainAfterFaultCampaign(t *testing.T) {
	sys, err := drcom.NewSystem(drcom.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	// The §4.2 functional routines: calc publishes on its outport so the
	// guard's staleness probe sees live data (only the injected budget
	// overrun should trip it).
	err = sys.RegisterBody("rtai.demo.Calculation", func(*descriptor.Component) rtos.Body {
		return func(j *rtos.JobContext) {
			if shm, err := j.Kernel.IPC().SHM(workload.LatencySHM); err == nil {
				_ = shm.Set(0, int64(j.Now.Sub(j.Nominal)))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	err = sys.RegisterBody("rtai.demo.Display", func(*descriptor.Component) rtos.Body {
		return func(j *rtos.JobContext) {
			if shm, err := j.Kernel.IPC().SHM(workload.LatencySHM); err == nil {
				_, _ = shm.Get(0)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range []string{workload.CalcXML, workload.DisplayXML} {
		if err := sys.DeployXML(src); err != nil {
			t.Fatal(err)
		}
	}
	inj, err := fault.New(sys.DRCR(), sys.Framework())
	if err != nil {
		t.Fatal(err)
	}
	defer inj.Close()
	if err := inj.Install(workload.StandardCampaign()); err != nil {
		t.Fatal(err)
	}
	guard, err := contract.New(sys.DRCR(), contract.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := guard.Start(); err != nil {
		t.Fatal(err)
	}
	defer guard.Stop()

	var out strings.Builder
	c := New(sys, &out)
	// Run past the fault start (300ms) and the guard's detection window,
	// but not past the first quarantine restore.
	c.Exec("run 350ms")
	c.Exec("why disp")
	c.Exec("events")
	c.Exec("metrics")

	// The chain, consequence first: disp's cascade deactivation, caused
	// by calc's revoke, caused by the violation, caused by the injection.
	text := out.String()
	idx := func(sub string) int { return strings.Index(text, sub) }
	chain := []string{
		"transition disp ACTIVE->UNSATISFIED",
		"<- ",
		"revoke calc",
		"violation calc budget-overrun",
		"fault-inject calc exec-inflate",
	}
	last := -1
	for _, want := range chain {
		at := idx(want)
		if at < 0 {
			t.Fatalf("why chain missing %q:\n%s", want, text)
		}
		if at < last {
			t.Fatalf("why chain out of order at %q:\n%s", want, text)
		}
		last = at
	}
	// The events timeline carries the same attribution as a why column.
	if !strings.Contains(text, "why: revoke calc") {
		t.Errorf("events timeline missing the revoke attribution:\n%s", text)
	}
	// And the metrics snapshot counts the enforcement.
	if !strings.Contains(text, "contract:  1 violations, 1 revocations") {
		t.Errorf("metrics snapshot missing contract counters:\n%s", text)
	}
}

// TestPlanCommand compiles a two-descriptor bundle without deploying:
// the render must show the activation schedule, the wiring table
// (bound, unbound), the admission delta, the leftover, and the metrics
// snapshot must grow a plan-cache line once a compile has happened.
func TestPlanCommand(t *testing.T) {
	out := session(t, `
plan prov.xml cons.xml
metrics
quit
`)
	for _, want := range []string{
		"plan ",
		"2 components, 1 schedulable, 1 leftover",
		"activation order:",
		" 1. feeder",
		"wiring:",
		"eater.beam <- feeder",
		"eater.ghost <- (unbound)",
		"admission delta:",
		"cpu0: 0.000 -> 0.050 (+0.050)",
		"leftover: eater waits on inport ghost",
		"plans:",
		"1 compiled",
		"plan cache: 0 hits, 1 misses, 1 entries",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("plan output missing %q:\n%s", want, out)
		}
	}
	// Nothing was deployed: plan is read-only.
	if strings.Contains(out, "deployed") {
		t.Error("plan command deployed something")
	}
}

const stochConsoleXML = `<component name="stoch" type="periodic" cpuusage="0.3">
  <implementation bincode="demo.Stoch"/>
  <periodictask frequence="1000" runoncup="0" priority="1"/>
  <budget dist="normal(0.3,0.02)" p="0.97"/>
  <mode name="eco" frequence="250" cpuusage="0.15"/>
  <property name="drcom.exectime.us" type="Integer" value="300"/>
</component>`

// TestSessionAdmitDryRun pins the admit command: it renders the
// compile-time Monte-Carlo verdicts without deploying, refuses to run
// without -dry, and its verdict matches what the runtime admit emits.
func TestSessionAdmitDryRun(t *testing.T) {
	c, out := newConsole(t)
	prev := c.ReadFile
	c.ReadFile = func(path string) ([]byte, error) {
		if path == "stoch.xml" {
			return []byte(stochConsoleXML), nil
		}
		return prev(path)
	}
	if err := c.Run(strings.NewReader(`
admit stoch.xml -dry
admit stoch.xml
list
`)); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"admit (dry run): 1 components, 1 schedulable, 1 stochastic verdicts",
		"meets p=0.970",
		"cpu0: 0.000 -> 0.300 (+0.300)",
		"error: usage: admit <file.xml> [more.xml ...] -dry (admission is a dry run; deploy applies a bundle)",
		"0 components", // the dry run must not have deployed anything
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

// TestSessionForecast pins the forecast command: with a predictive guard
// attached, a budget-declaring component gets a forecast row; without a
// guard the command explains itself.
func TestSessionForecast(t *testing.T) {
	c, out := newConsole(t)
	prev := c.ReadFile
	c.ReadFile = func(path string) ([]byte, error) {
		if path == "stoch.xml" {
			return []byte(stochConsoleXML), nil
		}
		return prev(path)
	}
	if c.Exec("forecast"); !strings.Contains(out.String(), "no contract guard attached") {
		t.Fatalf("guardless forecast did not explain itself:\n%s", out.String())
	}
	g, err := contract.New(c.sys.DRCR(), contract.Options{Predict: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Start(); err != nil {
		t.Fatal(err)
	}
	c.AttachGuard("", g)
	if err := c.Run(strings.NewReader(`
deploy stoch.xml
run 300ms
forecast
forecast stoch
forecast nosuch
`)); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if n := strings.Count(got, "stoch    P(miss)="); n != 2 {
		t.Errorf("want 2 forecast rows for stoch (bare + filtered), got %d:\n%s", n, got)
	}
	for _, want := range []string{
		"allowed=0.030", // 1 - declared p
		"armed",
		"no forecasts yet", // the nosuch filter matches nothing
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}
