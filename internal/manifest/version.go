// Package manifest implements OSGi bundle metadata: versions, version
// ranges, and the manifest headers the framework resolver consumes
// (Bundle-SymbolicName, Import-Package, Export-Package, …).
package manifest

import (
	"fmt"
	"strconv"
	"strings"
)

// Version is an OSGi version: major.minor.micro with an optional
// qualifier. The zero value is version 0.0.0.
type Version struct {
	Major, Minor, Micro int
	Qualifier           string
}

// ParseVersion parses "major[.minor[.micro[.qualifier]]]".
func ParseVersion(s string) (Version, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Version{}, fmt.Errorf("manifest: empty version")
	}
	parts := strings.SplitN(s, ".", 4)
	var v Version
	var err error
	if v.Major, err = parseVersionPart(parts[0]); err != nil {
		return Version{}, fmt.Errorf("manifest: bad major in %q: %w", s, err)
	}
	if len(parts) > 1 {
		if v.Minor, err = parseVersionPart(parts[1]); err != nil {
			return Version{}, fmt.Errorf("manifest: bad minor in %q: %w", s, err)
		}
	}
	if len(parts) > 2 {
		if v.Micro, err = parseVersionPart(parts[2]); err != nil {
			return Version{}, fmt.Errorf("manifest: bad micro in %q: %w", s, err)
		}
	}
	if len(parts) > 3 {
		v.Qualifier = parts[3]
		if v.Qualifier == "" {
			return Version{}, fmt.Errorf("manifest: empty qualifier in %q", s)
		}
	}
	return v, nil
}

func parseVersionPart(s string) (int, error) {
	n, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil {
		return 0, err
	}
	if n < 0 {
		return 0, fmt.Errorf("negative segment %d", n)
	}
	return n, nil
}

// MustParseVersion parses a version known to be valid; it panics on error.
func MustParseVersion(s string) Version {
	v, err := ParseVersion(s)
	if err != nil {
		panic(err)
	}
	return v
}

// Compare returns -1, 0 or 1 ordering v against o. Qualifiers compare
// lexically, absent qualifier sorting first (OSGi semantics).
func (v Version) Compare(o Version) int {
	if v.Major != o.Major {
		return sign(v.Major - o.Major)
	}
	if v.Minor != o.Minor {
		return sign(v.Minor - o.Minor)
	}
	if v.Micro != o.Micro {
		return sign(v.Micro - o.Micro)
	}
	return strings.Compare(v.Qualifier, o.Qualifier)
}

func sign(n int) int {
	switch {
	case n < 0:
		return -1
	case n > 0:
		return 1
	default:
		return 0
	}
}

// String renders the version in canonical form.
func (v Version) String() string {
	base := fmt.Sprintf("%d.%d.%d", v.Major, v.Minor, v.Micro)
	if v.Qualifier != "" {
		return base + "." + v.Qualifier
	}
	return base
}

// Range is an OSGi version range: either a single floor version
// ("1.2" == [1.2, ∞)) or an interval like "[1.0,2.0)".
type Range struct {
	Low, High         Version
	IncLow, IncHigh   bool
	Unbounded         bool // no upper bound
	parsedFromDefault bool
}

// AnyVersion matches every version (the default when a header omits one).
var AnyVersion = Range{Unbounded: true, IncLow: true, parsedFromDefault: true}

// ParseRange parses an OSGi version range.
func ParseRange(s string) (Range, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return AnyVersion, nil
	}
	if s[0] != '[' && s[0] != '(' {
		v, err := ParseVersion(s)
		if err != nil {
			return Range{}, err
		}
		return Range{Low: v, IncLow: true, Unbounded: true}, nil
	}
	if len(s) < 2 {
		return Range{}, fmt.Errorf("manifest: bad range %q", s)
	}
	last := s[len(s)-1]
	if last != ']' && last != ')' {
		return Range{}, fmt.Errorf("manifest: range %q missing terminator", s)
	}
	inner := s[1 : len(s)-1]
	parts := strings.Split(inner, ",")
	if len(parts) != 2 {
		return Range{}, fmt.Errorf("manifest: range %q must have two endpoints", s)
	}
	low, err := ParseVersion(parts[0])
	if err != nil {
		return Range{}, fmt.Errorf("manifest: range %q low: %w", s, err)
	}
	high, err := ParseVersion(parts[1])
	if err != nil {
		return Range{}, fmt.Errorf("manifest: range %q high: %w", s, err)
	}
	r := Range{
		Low:     low,
		High:    high,
		IncLow:  s[0] == '[',
		IncHigh: last == ']',
	}
	if c := low.Compare(high); c > 0 || (c == 0 && !(r.IncLow && r.IncHigh)) {
		return Range{}, fmt.Errorf("manifest: range %q is empty", s)
	}
	return r, nil
}

// Contains reports whether v lies in the range.
func (r Range) Contains(v Version) bool {
	cLow := v.Compare(r.Low)
	if cLow < 0 || (cLow == 0 && !r.IncLow) {
		return false
	}
	if r.Unbounded {
		return true
	}
	cHigh := v.Compare(r.High)
	if cHigh > 0 || (cHigh == 0 && !r.IncHigh) {
		return false
	}
	return true
}

// String renders the range.
func (r Range) String() string {
	if r.Unbounded {
		if r.parsedFromDefault {
			return "0.0.0"
		}
		return r.Low.String()
	}
	lo, hi := "(", ")"
	if r.IncLow {
		lo = "["
	}
	if r.IncHigh {
		hi = "]"
	}
	return fmt.Sprintf("%s%s,%s%s", lo, r.Low, r.High, hi)
}
