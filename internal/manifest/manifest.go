package manifest

import (
	"fmt"
	"sort"
	"strings"
)

// Well-known header names.
const (
	HeaderSymbolicName    = "Bundle-SymbolicName"
	HeaderVersion         = "Bundle-Version"
	HeaderName            = "Bundle-Name"
	HeaderActivator       = "Bundle-Activator"
	HeaderImportPackage   = "Import-Package"
	HeaderExportPackage   = "Export-Package"
	HeaderDRComComponents = "DRCom-Components"
	HeaderServiceComp     = "Service-Component"
)

// PackageExport is one clause of Export-Package.
type PackageExport struct {
	Name    string
	Version Version
}

// PackageImport is one clause of Import-Package.
type PackageImport struct {
	Name     string
	Range    Range
	Optional bool
}

// Manifest is a parsed bundle manifest.
type Manifest struct {
	SymbolicName string
	Version      Version
	Name         string
	Activator    string
	Imports      []PackageImport
	Exports      []PackageExport
	// DRComComponents lists the component descriptor resources declared in
	// the DRCom-Components header, the DRCom analogue of Service-Component.
	DRComComponents []string
	// ServiceComponents lists declarative-service descriptor resources.
	ServiceComponents []string
	// Raw holds every header verbatim.
	Raw map[string]string
}

// New builds a minimal valid manifest.
func New(symbolicName string, version Version) *Manifest {
	return &Manifest{
		SymbolicName: symbolicName,
		Version:      version,
		Raw: map[string]string{
			HeaderSymbolicName: symbolicName,
			HeaderVersion:      version.String(),
		},
	}
}

// Parse reads a manifest in the MANIFEST.MF "Header: value" format.
// Continuation lines start with a single space, as in JAR manifests.
func Parse(text string) (*Manifest, error) {
	headers, err := parseHeaders(text)
	if err != nil {
		return nil, err
	}
	m := &Manifest{Raw: headers}
	sn, ok := headers[HeaderSymbolicName]
	if !ok || strings.TrimSpace(sn) == "" {
		return nil, fmt.Errorf("manifest: missing %s", HeaderSymbolicName)
	}
	// The symbolic name may carry directives (name;singleton:=true); we
	// keep only the name.
	m.SymbolicName = strings.TrimSpace(strings.SplitN(sn, ";", 2)[0])
	if vs, ok := headers[HeaderVersion]; ok {
		v, err := ParseVersion(vs)
		if err != nil {
			return nil, fmt.Errorf("manifest: %s: %w", HeaderVersion, err)
		}
		m.Version = v
	}
	m.Name = strings.TrimSpace(headers[HeaderName])
	m.Activator = strings.TrimSpace(headers[HeaderActivator])
	if imp, ok := headers[HeaderImportPackage]; ok {
		m.Imports, err = parseImports(imp)
		if err != nil {
			return nil, err
		}
	}
	if exp, ok := headers[HeaderExportPackage]; ok {
		m.Exports, err = parseExports(exp)
		if err != nil {
			return nil, err
		}
	}
	if dc, ok := headers[HeaderDRComComponents]; ok {
		m.DRComComponents = splitList(dc)
	}
	if sc, ok := headers[HeaderServiceComp]; ok {
		m.ServiceComponents = splitList(sc)
	}
	return m, nil
}

func parseHeaders(text string) (map[string]string, error) {
	headers := map[string]string{}
	var lastKey string
	for lineNo, line := range strings.Split(text, "\n") {
		line = strings.TrimRight(line, "\r")
		if strings.TrimSpace(line) == "" {
			continue
		}
		if line[0] == ' ' || line[0] == '\t' {
			if lastKey == "" {
				return nil, fmt.Errorf("manifest: line %d: continuation without header", lineNo+1)
			}
			headers[lastKey] += strings.TrimSpace(line)
			continue
		}
		idx := strings.Index(line, ":")
		if idx <= 0 {
			return nil, fmt.Errorf("manifest: line %d: malformed header %q", lineNo+1, line)
		}
		key := strings.TrimSpace(line[:idx])
		val := strings.TrimSpace(line[idx+1:])
		if _, dup := headers[key]; dup {
			return nil, fmt.Errorf("manifest: duplicate header %q", key)
		}
		headers[key] = val
		lastKey = key
	}
	if len(headers) == 0 {
		return nil, fmt.Errorf("manifest: empty manifest")
	}
	return headers, nil
}

// splitClauses splits a header value on commas that are not inside quotes
// (version ranges contain commas: pkg;version="[1,2)").
func splitClauses(s string) []string {
	var out []string
	var b strings.Builder
	inQuote := false
	for _, r := range s {
		switch {
		case r == '"':
			inQuote = !inQuote
			b.WriteRune(r)
		case r == ',' && !inQuote:
			out = append(out, b.String())
			b.Reset()
		default:
			b.WriteRune(r)
		}
	}
	if strings.TrimSpace(b.String()) != "" {
		out = append(out, b.String())
	}
	return out
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseImports(header string) ([]PackageImport, error) {
	var out []PackageImport
	for _, clause := range splitClauses(header) {
		parts := strings.Split(clause, ";")
		name := strings.TrimSpace(parts[0])
		if name == "" {
			return nil, fmt.Errorf("manifest: empty import package in %q", header)
		}
		imp := PackageImport{Name: name, Range: AnyVersion}
		for _, attr := range parts[1:] {
			key, val, found := strings.Cut(attr, "=")
			if !found {
				return nil, fmt.Errorf("manifest: bad import attribute %q", attr)
			}
			key = strings.TrimSpace(key)
			val = strings.Trim(strings.TrimSpace(val), `"`)
			switch key {
			case "version":
				r, err := ParseRange(val)
				if err != nil {
					return nil, fmt.Errorf("manifest: import %s: %w", name, err)
				}
				imp.Range = r
			case "resolution:":
				imp.Optional = val == "optional"
			default:
				// Unknown attributes are ignored, as by real frameworks.
			}
		}
		out = append(out, imp)
	}
	return out, nil
}

func parseExports(header string) ([]PackageExport, error) {
	var out []PackageExport
	for _, clause := range splitClauses(header) {
		parts := strings.Split(clause, ";")
		name := strings.TrimSpace(parts[0])
		if name == "" {
			return nil, fmt.Errorf("manifest: empty export package in %q", header)
		}
		exp := PackageExport{Name: name}
		for _, attr := range parts[1:] {
			key, val, found := strings.Cut(attr, "=")
			if !found {
				return nil, fmt.Errorf("manifest: bad export attribute %q", attr)
			}
			key = strings.TrimSpace(key)
			val = strings.Trim(strings.TrimSpace(val), `"`)
			if key == "version" {
				v, err := ParseVersion(val)
				if err != nil {
					return nil, fmt.Errorf("manifest: export %s: %w", name, err)
				}
				exp.Version = v
			}
		}
		out = append(out, exp)
	}
	return out, nil
}

// Render writes the manifest back out in MANIFEST.MF format with
// deterministic header ordering.
func (m *Manifest) Render() string {
	keys := make([]string, 0, len(m.Raw))
	for k := range m.Raw {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s: %s\n", k, m.Raw[k])
	}
	return b.String()
}
