package manifest

import (
	"testing"
	"testing/quick"
)

func TestParseVersion(t *testing.T) {
	cases := []struct {
		in   string
		want Version
	}{
		{"1", Version{Major: 1}},
		{"1.2", Version{Major: 1, Minor: 2}},
		{"1.2.3", Version{Major: 1, Minor: 2, Micro: 3}},
		{"1.2.3.beta", Version{Major: 1, Minor: 2, Micro: 3, Qualifier: "beta"}},
		{" 3.2.1 ", Version{Major: 3, Minor: 2, Micro: 1}},
		{"0.0.0", Version{}},
	}
	for _, c := range cases {
		got, err := ParseVersion(c.in)
		if err != nil {
			t.Errorf("ParseVersion(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseVersion(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestParseVersionInvalid(t *testing.T) {
	for _, in := range []string{"", "a", "1.a", "1.2.x", "-1", "1.-2", "1.2.3."} {
		if _, err := ParseVersion(in); err == nil {
			t.Errorf("ParseVersion(%q) succeeded", in)
		}
	}
}

func TestMustParseVersionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MustParseVersion("bogus")
}

func TestVersionCompare(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"1.0.0", "1.0.0", 0},
		{"1.0.0", "2.0.0", -1},
		{"2.0.0", "1.9.9", 1},
		{"1.1.0", "1.0.9", 1},
		{"1.0.1", "1.0.2", -1},
		{"1.0.0", "1.0.0.beta", -1},
		{"1.0.0.alpha", "1.0.0.beta", -1},
		{"1.0.0.rc1", "1.0.0.rc1", 0},
	}
	for _, c := range cases {
		a, b := MustParseVersion(c.a), MustParseVersion(c.b)
		if got := a.Compare(b); got != c.want {
			t.Errorf("Compare(%s,%s) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := b.Compare(a); got != -c.want {
			t.Errorf("Compare(%s,%s) = %d, want %d", c.b, c.a, got, -c.want)
		}
	}
}

func TestVersionString(t *testing.T) {
	if got := MustParseVersion("1.2").String(); got != "1.2.0" {
		t.Errorf("String = %q, want 1.2.0", got)
	}
	if got := MustParseVersion("1.2.3.q").String(); got != "1.2.3.q" {
		t.Errorf("String = %q", got)
	}
}

func TestParseRange(t *testing.T) {
	cases := []struct {
		in       string
		contains []string
		excludes []string
	}{
		{"", []string{"0.0.0", "99.0.0"}, nil},
		{"1.2", []string{"1.2.0", "2.0.0", "99.0.0"}, []string{"1.1.9", "0.5.0"}},
		{"[1.0,2.0)", []string{"1.0.0", "1.9.9"}, []string{"0.9.9", "2.0.0", "2.1.0"}},
		{"[1.0,2.0]", []string{"1.0.0", "2.0.0"}, []string{"2.0.1"}},
		{"(1.0,2.0)", []string{"1.0.1", "1.5.0"}, []string{"1.0.0", "2.0.0"}},
		{"[1.0,1.0]", []string{"1.0.0"}, []string{"1.0.1", "0.9.9"}},
	}
	for _, c := range cases {
		r, err := ParseRange(c.in)
		if err != nil {
			t.Errorf("ParseRange(%q): %v", c.in, err)
			continue
		}
		for _, v := range c.contains {
			if !r.Contains(MustParseVersion(v)) {
				t.Errorf("range %q should contain %s", c.in, v)
			}
		}
		for _, v := range c.excludes {
			if r.Contains(MustParseVersion(v)) {
				t.Errorf("range %q should exclude %s", c.in, v)
			}
		}
	}
}

func TestParseRangeInvalid(t *testing.T) {
	for _, in := range []string{"[1.0", "[1.0,2.0", "[2.0,1.0]", "(1.0,1.0)", "[1.0,1.0)", "[a,b]", "[1.0,2.0,3.0]", "["} {
		if _, err := ParseRange(in); err == nil {
			t.Errorf("ParseRange(%q) succeeded", in)
		}
	}
}

func TestRangeString(t *testing.T) {
	cases := []struct{ in, want string }{
		{"[1.0,2.0)", "[1.0.0,2.0.0)"},
		{"(1.0,2.0]", "(1.0.0,2.0.0]"},
		{"1.5", "1.5.0"},
		{"", "0.0.0"},
	}
	for _, c := range cases {
		r, err := ParseRange(c.in)
		if err != nil {
			t.Fatalf("ParseRange(%q): %v", c.in, err)
		}
		if got := r.String(); got != c.want {
			t.Errorf("Range(%q).String() = %q, want %q", c.in, got, c.want)
		}
	}
}

// Property: Compare is antisymmetric and consistent with Contains for
// single-version ranges.
func TestVersionCompareProperty(t *testing.T) {
	prop := func(a1, a2, a3, b1, b2, b3 uint8) bool {
		a := Version{Major: int(a1 % 8), Minor: int(a2 % 8), Micro: int(a3 % 8)}
		b := Version{Major: int(b1 % 8), Minor: int(b2 % 8), Micro: int(b3 % 8)}
		if a.Compare(b) != -b.Compare(a) {
			return false
		}
		exact := Range{Low: a, High: a, IncLow: true, IncHigh: true}
		return exact.Contains(b) == (a.Compare(b) == 0)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
