package manifest

import (
	"strings"
	"testing"
)

const sampleManifest = `Bundle-SymbolicName: ua.pats.demo.smartcamera
Bundle-Version: 1.0.2
Bundle-Name: Smart Camera Controller
Bundle-Activator: ua.pats.demo.smartcamera.Activator
Import-Package: org.osgi.framework;version="[1.3,2.0)", ua.pats.rt;version="1.0",
 ua.pats.util
Export-Package: ua.pats.demo.smartcamera.api;version="1.0.2"
DRCom-Components: OSGI-INF/camera.xml, OSGI-INF/filter.xml
`

func TestParseSample(t *testing.T) {
	m, err := Parse(sampleManifest)
	if err != nil {
		t.Fatal(err)
	}
	if m.SymbolicName != "ua.pats.demo.smartcamera" {
		t.Errorf("SymbolicName = %q", m.SymbolicName)
	}
	if m.Version != MustParseVersion("1.0.2") {
		t.Errorf("Version = %v", m.Version)
	}
	if m.Name != "Smart Camera Controller" {
		t.Errorf("Name = %q", m.Name)
	}
	if m.Activator != "ua.pats.demo.smartcamera.Activator" {
		t.Errorf("Activator = %q", m.Activator)
	}
	if len(m.Imports) != 3 {
		t.Fatalf("Imports = %v", m.Imports)
	}
	if m.Imports[0].Name != "org.osgi.framework" {
		t.Errorf("import0 = %q", m.Imports[0].Name)
	}
	if !m.Imports[0].Range.Contains(MustParseVersion("1.5")) ||
		m.Imports[0].Range.Contains(MustParseVersion("2.0")) {
		t.Errorf("import0 range wrong: %v", m.Imports[0].Range)
	}
	if m.Imports[2].Name != "ua.pats.util" {
		t.Errorf("continuation line import = %q", m.Imports[2].Name)
	}
	if len(m.Exports) != 1 || m.Exports[0].Version != MustParseVersion("1.0.2") {
		t.Errorf("Exports = %v", m.Exports)
	}
	if len(m.DRComComponents) != 2 || m.DRComComponents[1] != "OSGI-INF/filter.xml" {
		t.Errorf("DRComComponents = %v", m.DRComComponents)
	}
}

func TestParseSymbolicNameDirectives(t *testing.T) {
	m, err := Parse("Bundle-SymbolicName: my.bundle;singleton:=true\n")
	if err != nil {
		t.Fatal(err)
	}
	if m.SymbolicName != "my.bundle" {
		t.Errorf("SymbolicName = %q", m.SymbolicName)
	}
}

func TestParseOptionalImport(t *testing.T) {
	m, err := Parse("Bundle-SymbolicName: b\nImport-Package: x;resolution:=optional\n")
	if err != nil {
		t.Fatal(err)
	}
	if !m.Imports[0].Optional {
		t.Error("optional import not detected")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"missing symbolic name", "Bundle-Name: x\n"},
		{"malformed header", "NotAHeader\n"},
		{"bad version", "Bundle-SymbolicName: b\nBundle-Version: banana\n"},
		{"duplicate header", "Bundle-SymbolicName: b\nBundle-SymbolicName: c\n"},
		{"continuation first", " leading continuation\n"},
		{"bad import range", "Bundle-SymbolicName: b\nImport-Package: x;version=\"[2.0,1.0]\"\n"},
		{"bad export version", "Bundle-SymbolicName: b\nExport-Package: x;version=\"zz\"\n"},
		{"bad import attr", "Bundle-SymbolicName: b\nImport-Package: x;version\n"},
	}
	for _, c := range cases {
		if _, err := Parse(c.in); err == nil {
			t.Errorf("%s: Parse succeeded", c.name)
		}
	}
}

func TestSplitClausesQuotedComma(t *testing.T) {
	got := splitClauses(`a;version="[1,2)", b`)
	if len(got) != 2 {
		t.Fatalf("splitClauses = %v", got)
	}
	if !strings.Contains(got[0], "[1,2)") {
		t.Errorf("clause0 = %q", got[0])
	}
}

func TestNewAndRender(t *testing.T) {
	m := New("my.bundle", MustParseVersion("2.1"))
	out := m.Render()
	if !strings.Contains(out, "Bundle-SymbolicName: my.bundle") {
		t.Errorf("Render missing symbolic name:\n%s", out)
	}
	if !strings.Contains(out, "Bundle-Version: 2.1.0") {
		t.Errorf("Render missing version:\n%s", out)
	}
	back, err := Parse(out)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if back.SymbolicName != "my.bundle" || back.Version != MustParseVersion("2.1.0") {
		t.Errorf("round trip = %+v", back)
	}
}

func TestParseCRLF(t *testing.T) {
	m, err := Parse("Bundle-SymbolicName: b\r\nBundle-Version: 1.0\r\n")
	if err != nil {
		t.Fatal(err)
	}
	if m.SymbolicName != "b" {
		t.Errorf("SymbolicName = %q", m.SymbolicName)
	}
}

func TestServiceComponentHeader(t *testing.T) {
	m, err := Parse("Bundle-SymbolicName: b\nService-Component: OSGI-INF/ds.xml\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(m.ServiceComponents) != 1 || m.ServiceComponents[0] != "OSGI-INF/ds.xml" {
		t.Errorf("ServiceComponents = %v", m.ServiceComponents)
	}
}
