package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
	"testing"

	"repro/internal/descriptor"
	"repro/internal/osgi"
	"repro/internal/rtos"
)

// coneXML renders a small periodic component pinned to a CPU with
// optional in/out topics.
func coneXML(name string, cpu int, usage float64, in, out string) string {
	s := fmt.Sprintf(`<component name=%q type="periodic" cpuusage="%g">
  <implementation bincode="cone.Body"/>
  <periodictask frequence="100" runoncup="%d" priority="5"/>
`, name, usage, cpu)
	if in != "" {
		s += fmt.Sprintf(`  <inport name=%q interface="RTAI.SHM" type="Integer" size="64"/>`+"\n", in)
	}
	if out != "" {
		s += fmt.Sprintf(`  <outport name=%q interface="RTAI.SHM" type="Integer" size="64"/>`+"\n", out)
	}
	return s + `</component>`
}

// coneRig builds a DRCR over numCPU simulated CPUs with the given stripe
// count (0 = unsharded reference).
func coneRig(t *testing.T, numCPU, shards int) *DRCR {
	t.Helper()
	fw := osgi.NewFramework()
	k := rtos.NewKernel(rtos.Config{NumCPUs: numCPU, Timing: &noNoise, Seed: 11})
	d, err := New(fw, k, Options{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return d
}

// coneOps replays a fixed per-cone operation script: deploy a
// provider→consumer pair on topic t<c>, then churn through disable/
// enable, revoke/restore, and a remove/redeploy cycle. Every target
// lives on CPU c and every topic is cone-private, so scripts on
// different cones commute — the final state must not depend on how the
// goroutines interleaved.
func coneOps(t testing.TB, d *DRCR, c int) {
	topic := fmt.Sprintf("t%d", c)
	prov, cons := fmt.Sprintf("pv%d", c), fmt.Sprintf("cs%d", c)
	deploy := func(name, in, out string) {
		desc, err := descriptor.Parse(coneXML(name, c, 0.01, in, out))
		if err != nil {
			t.Errorf("cone %d: parse %s: %v", c, name, err)
			return
		}
		if err := d.Deploy(desc); err != nil {
			t.Errorf("cone %d: deploy %s: %v", c, name, err)
		}
	}
	deploy(prov, "", topic)
	deploy(cons, topic, "")
	for i := 0; i < 25; i++ {
		if err := d.Disable(prov); err != nil {
			t.Errorf("cone %d: disable: %v", c, err)
		}
		if err := d.Enable(prov); err != nil {
			t.Errorf("cone %d: enable: %v", c, err)
		}
		if err := d.RevokeBudget(cons, "cone churn"); err != nil {
			t.Errorf("cone %d: revoke: %v", c, err)
		}
		if err := d.RestoreBudget(cons); err != nil {
			t.Errorf("cone %d: restore: %v", c, err)
		}
		if i%5 == 0 {
			if err := d.Remove(cons); err != nil {
				t.Errorf("cone %d: remove: %v", c, err)
			}
			deploy(cons, topic, "")
		}
	}
}

// coneStateDigest folds every component's observable final state.
func coneStateDigest(d *DRCR) string {
	h := sha256.New()
	for _, info := range d.Components() {
		fmt.Fprintf(h, "%s|%v|%v|", info.Name, info.State, info.Revoked)
		keys := make([]string, 0, len(info.Bindings))
		for k := range info.Bindings {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(h, "%s->%s,", k, info.Bindings[k])
		}
		h.Write([]byte("\n"))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TestConcurrentConesMatchSequential runs four independent dependency
// cones concurrently against a striped DRCR and checks the final
// component states equal a sequential unsharded replay — cone-striped
// locking must not change any lifecycle outcome.
func TestConcurrentConesMatchSequential(t *testing.T) {
	const cones = 4

	seq := coneRig(t, cones, 0)
	for c := 0; c < cones; c++ {
		coneOps(t, seq, c)
	}
	want := coneStateDigest(seq)

	for _, shards := range []int{2, 4} {
		d := coneRig(t, cones, shards)
		var wg sync.WaitGroup
		for c := 0; c < cones; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				coneOps(t, d, c)
			}(c)
		}
		wg.Wait()
		if got := coneStateDigest(d); got != want {
			t.Errorf("shards=%d: final state digest %s != sequential %s", shards, got, want)
		}
	}
}

// TestConeMergeAndStripes pins the union-find mechanics: a topic
// spanning two CPUs merges their cones, merges are monotone under
// removal, and whole-table locks nest with cone locks.
func TestConeMergeAndStripes(t *testing.T) {
	cl := newConeLocks(4, 4)
	if cl == nil {
		t.Fatal("newConeLocks(4,4) = nil")
	}
	k1 := portKey{name: "shared", iface: descriptor.SHM}
	tok := cl.lockWiring(0, []portKey{k1})
	cl.unlock(tok)
	tok = cl.lockWiring(2, []portKey{k1}) // spans cones 0 and 2 → merge
	cl.unlock(tok)
	cl.mu.Lock()
	r0, r2 := cl.find(0), cl.find(2)
	r1 := cl.find(1)
	cl.mu.Unlock()
	if r0 != r2 {
		t.Errorf("cpus 0 and 2 share topic %v but cones differ: %d vs %d", k1, r0, r2)
	}
	if r1 == r0 {
		t.Errorf("cpu 1 merged into cone %d without any shared topic", r0)
	}
	// Degenerate stripe counts: clamped to NumCPUs; below 2 disabled.
	if cl := newConeLocks(2, 16); cl == nil || cl.shards != 2 {
		t.Errorf("newConeLocks(2,16) want 2 stripes, got %+v", cl)
	}
	if cl := newConeLocks(8, 1); cl != nil {
		t.Errorf("newConeLocks(8,1) = %+v, want nil (striping off)", cl)
	}
	var nilCL *coneLocks
	nilCL.unlock(nilCL.lockAll()) // nil receiver is a no-op
}
