package core

// Service-mode transitions — graceful degradation (§6 direction: richer
// component descriptions let the runtime adapt instead of denying).
//
// A component with declared <mode> elements owns a ladder of contracts:
// mode 0 is the full contract, later modes trade rate, budget, or
// optional inputs for admissibility. Three movements exist:
//
//   - downgrade-before-deny at admission time (resolve.go/fullsweep.go):
//     if the full contract is denied, the cheapest admissible mode is
//     activated instead of leaving the component denied;
//   - Downgrade, the contract guard's first remedy: step a violating
//     component one mode down instead of revoking its budget outright;
//   - best-effort promotion (promotePendingLocked): when capacity frees,
//     degraded components step back toward mode 0, deterministically in
//     name order, unless a promoHold (cleared by AllowPromotion) gates
//     them.
//
// Mode swaps keep the component ACTIVE throughout: its outport
// transports survive, so dependants never cascade on a downgrade.

import (
	"fmt"

	"repro/internal/hrc"
	"repro/internal/rtos"
)

// setModeLocked re-instantiates c's RT task under the contract of the
// given service mode, updating the admission view in place. The
// component must be Active. Its outport IPC objects are owned by the
// component record and deliberately left untouched: dependants keep
// their bindings across the swap.
func (d *DRCR) setModeLocked(c *Component, mode int, reason string) error {
	spec, err := d.taskSpecLocked(c.desc, mode)
	if err != nil {
		return err
	}
	if c.mgmtReg != nil {
		_ = c.mgmtReg.Unregister()
		c.mgmtReg = nil
	}
	if c.inst != nil {
		_ = c.inst.Close()
		c.inst = nil
	}
	var body rtos.Body
	if f := d.factories[c.desc.Implementation]; f != nil {
		body = f(c.desc)
	}
	props := map[string]string{}
	for _, p := range c.desc.Properties {
		props[p.Name] = p.Value
	}
	inst, err := hrc.New(hrc.Config{
		Kernel: d.kernel,
		Spec:   spec,
		Body:   body,
		Props:  props,
	})
	if err == nil {
		err = inst.Start()
		if err != nil {
			_ = inst.Close()
		}
	}
	if err != nil {
		// The old instance is gone and the new one would not start: the
		// component cannot stay admitted. Tear it down through the normal
		// pipeline so dependants cascade.
		why := "mode change failed: " + err.Error()
		d.deactivateLocked(c, why)
		d.setStateLocked(c, Unsatisfied, why)
		d.markProviderDownLocked(c)
		return err
	}
	wasDegraded, isDegraded := c.mode > 0, mode > 0
	c.inst = inst
	c.mode = mode
	c.lastReason = reason
	// Rebind the inports the new mode requires; dropped ones stay unbound.
	c.bindings = map[string]string{}
	for _, in := range c.desc.InPorts {
		if !c.desc.RequiresInport(mode, in.Name) {
			continue
		}
		c.bindings[in.Name] = d.findProviderLocked(c.desc.Name, in)
	}
	// Swap the promised contract in the admission view. Membership did not
	// change, so the provider index stands; the budget totals and the view
	// epoch move.
	name := c.desc.Name
	for i := range d.admitted {
		if d.admitted[i].Name == name {
			ct := contractAt(c.desc, mode)
			d.admitted[i] = &ct
			break
		}
	}
	if isDegraded && !wasDegraded {
		d.degraded = insertName(d.degraded, name)
	} else if !isDegraded && wasDegraded {
		d.degraded = removeName(d.degraded, name)
	}
	d.recomputeLoadLocked()
	d.viewEpoch++
	d.registerMgmtLocked(c, inst)
	return nil
}

// emitModeEventLocked publishes a synthetic ACTIVE→ACTIVE lifecycle
// event for a mode swap. Listeners keyed on re-activation (the fault
// injector re-applies open faults when a component comes up) must see
// the new instance, which the swap replaced.
func (d *DRCR) emitModeEventLocked(c *Component, reason string) {
	c.lastReason = reason
	d.emitLocked(Event{
		At: d.kernel.Now(), Component: c.desc.Name,
		From: Active, To: Active, Reason: reason,
	})
}

// Downgrade steps an active component one service mode down — the
// contract guard's remedy before revocation: shed load, stay available.
// The component keeps running under the cheaper contract; best-effort
// promotion back toward mode 0 is barred until AllowPromotion.
func (d *DRCR) Downgrade(name, reason string) error {
	t := d.coneOf(name)
	defer d.cones.unlock(t)
	d.mu.Lock()
	c, ok := d.comps[name]
	if !ok {
		d.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownComponent, name)
	}
	if c.state != Active {
		st := c.state
		d.mu.Unlock()
		return fmt.Errorf("core: cannot downgrade %s in state %v", name, st)
	}
	if c.mode+1 >= c.desc.NumModes() {
		d.mu.Unlock()
		return fmt.Errorf("core: %s has no mode below %q", name, c.desc.ModeName(c.mode))
	}
	from := c.desc.ModeName(c.mode)
	why := "downgraded: " + reason
	if err := d.setModeLocked(c, c.mode+1, why); err != nil {
		d.mu.Unlock()
		d.resolveDelta()
		return err
	}
	c.promoHold = true
	// Cause: the ambient span the guard pushed (the violation), if any.
	c.lastSpan = d.obs.Downgrade(d.kernel.Now(), name, from, c.desc.ModeName(c.mode), reason, 0)
	d.emitModeEventLocked(c, why)
	d.mu.Unlock()
	// The downgrade freed declared budget: waiters may now be admissible.
	d.resolveDelta()
	return nil
}

// AllowPromotion lifts the promotion hold a Downgrade placed, letting
// the next resolution pass consider stepping the component back toward
// its full contract. The guard calls this when its backoff expires.
func (d *DRCR) AllowPromotion(name string) error {
	t := d.coneOf(name)
	defer d.cones.unlock(t)
	d.mu.Lock()
	c, ok := d.comps[name]
	if !ok {
		d.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownComponent, name)
	}
	c.promoHold = false
	d.mu.Unlock()
	d.resolveDelta()
	return nil
}

// Crash reports an abrupt component failure (a fault-injected crash):
// the instance is torn down and the component lands DISABLED — it does
// not re-enter resolution by itself. The restart supervisor (package
// supervise) owns bringing it back via Enable, under its restart
// budget.
func (d *DRCR) Crash(name, reason string) error {
	t := d.coneOf(name)
	defer d.cones.unlock(t)
	d.mu.Lock()
	c, ok := d.comps[name]
	if !ok {
		d.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownComponent, name)
	}
	if c.state == Disabled || c.state == Destroyed {
		d.mu.Unlock()
		return nil
	}
	why := "crashed: " + reason
	wasAdmitted := c.state == Active || c.state == Suspended
	if wasAdmitted {
		d.deactivateLocked(c, why)
	}
	d.setStateLocked(c, Disabled, why)
	if wasAdmitted {
		d.markProviderDownLocked(c)
	}
	d.mu.Unlock()
	d.resolveDelta()
	return nil
}
