package core

import "sync"

// Cone-striped locking for the lifecycle surface (Options.Shards).
//
// The component table is partitioned by *dependency cone*: the
// union-find below tracks, per simulated CPU, which CPUs are coupled —
// two CPUs join the same cone when a port topic spans them (a binding
// may cross them) and components on one CPU always share a cone (they
// compete for the same budget). Each cone hashes to one of Shards lock
// stripes; a lifecycle operation takes its cone's stripe *before* the
// runtime mutex d.mu, so operations on independent cones overlap — each
// holds its stripe through mutation plus the incremental resolution it
// triggers, interleaving with other cones at d.mu granularity — while
// operations inside one cone serialise in arrival order.
//
// Cone tracking is deliberately monotone: cones only ever merge. A
// removal does not split its cone even when it cut the last edge between
// two CPU groups — a conservative over-approximation that costs some
// concurrency under churn but keeps every merge O(α) and makes stale
// stripe lookups detectable by simple revalidation (a cone's stripe can
// change only because the cone grew).
//
// Lock order, globally: stripes in ascending index order, then d.mu.
// Nothing acquires a stripe while holding d.mu. Event listeners run
// with the operation's stripes held (d.mu dropped), so a listener must
// not call lifecycle operations inline when sharding is on — schedule
// them on the kernel clock instead, as packages fault and supervise do.

// maxInlineStripes bounds the stripes one wiring operation names before
// it escalates to whole-table locking.
const maxInlineStripes = 8

// coneToken records the stripes a lifecycle operation holds. The zero
// token holds nothing; tokens are comparable, which revalidation uses.
type coneToken struct {
	all bool
	n   int
	s   [maxInlineStripes]int32
}

// coneLocks is the stripe table plus the union-find cone tracker.
type coneLocks struct {
	shards  int
	stripes []sync.Mutex

	mu     sync.Mutex
	parent []int           // union-find over CPUs; parent[c] == c at a root
	reps   map[portKey]int // port topic → a CPU inside the topic's cone
}

// newConeLocks builds the stripe table; below two effective shards the
// striping layer is pointless and the constructor returns nil (every
// method tolerates a nil receiver at zero cost).
func newConeLocks(numCPU, shards int) *coneLocks {
	if shards > numCPU {
		shards = numCPU
	}
	if shards < 2 {
		return nil
	}
	cl := &coneLocks{
		shards:  shards,
		stripes: make([]sync.Mutex, shards),
		parent:  make([]int, numCPU),
		reps:    map[portKey]int{},
	}
	for i := range cl.parent {
		cl.parent[i] = i
	}
	return cl
}

// find returns cpu's cone root, halving paths as it walks. Caller holds
// cl.mu.
func (cl *coneLocks) find(cpu int) int {
	for cl.parent[cpu] != cpu {
		cl.parent[cpu] = cl.parent[cl.parent[cpu]]
		cpu = cl.parent[cpu]
	}
	return cpu
}

// unionLocked merges two cones, keeping the smaller root so stripe
// assignment is stable under merge order. Caller holds cl.mu.
func (cl *coneLocks) unionLocked(a, b int) {
	ra, rb := cl.find(a), cl.find(b)
	if ra == rb {
		return
	}
	if rb < ra {
		ra, rb = rb, ra
	}
	cl.parent[rb] = ra
}

// stripeSetLocked fills t with the sorted, deduplicated stripes covering
// cpu's cone and the cones of every listed topic; false means the set
// overflowed the inline capacity and the caller must escalate to
// lockAll. Caller holds cl.mu.
func (cl *coneLocks) stripeSetLocked(cpu int, topics []portKey, t *coneToken) bool {
	t.all, t.n = false, 0
	add := func(s int32) bool {
		for i := 0; i < t.n; i++ {
			if t.s[i] == s {
				return true
			}
		}
		if t.n == maxInlineStripes {
			return false
		}
		t.s[t.n] = s
		t.n++
		return true
	}
	if !add(int32(cl.find(cpu) % cl.shards)) {
		return false
	}
	for _, tp := range topics {
		rep, ok := cl.reps[tp]
		if !ok {
			continue // first appearance of the topic; no cone to join yet
		}
		if !add(int32(cl.find(rep) % cl.shards)) {
			return false
		}
	}
	// Insertion sort: the set is at most maxInlineStripes long and must
	// be acquired in ascending order.
	for i := 1; i < t.n; i++ {
		for j := i; j > 0 && t.s[j] < t.s[j-1]; j-- {
			t.s[j], t.s[j-1] = t.s[j-1], t.s[j]
		}
	}
	return true
}

// observeLocked records a component's topic edges, merging the cones its
// wiring couples. Caller holds cl.mu and the stripes covering every
// involved cone.
func (cl *coneLocks) observeLocked(cpu int, topics []portKey) {
	for _, tp := range topics {
		if rep, ok := cl.reps[tp]; ok {
			cl.unionLocked(cpu, rep)
		} else {
			cl.reps[tp] = cpu
		}
	}
}

// lockWiring acquires, in ascending order, the stripes covering cpu's
// cone and the cone of each topic — the ordered cross-cone lock a
// deploy's wiring takes — then records the topic edges, merging the
// touched cones. Because cones only grow, a stripe set computed before
// acquisition can go stale; acquisition revalidates and retries. The
// merged cone's root is one of the locked roots, so the returned token
// still covers it.
func (cl *coneLocks) lockWiring(cpu int, topics []portKey) coneToken {
	if cl == nil {
		return coneToken{}
	}
	if cpu < 0 || cpu >= len(cl.parent) {
		// Out-of-range pin: the operation will be rejected under d.mu,
		// but lock the table so the failure still serialises.
		return cl.lockAll()
	}
	for {
		var want coneToken
		cl.mu.Lock()
		ok := cl.stripeSetLocked(cpu, topics, &want)
		cl.mu.Unlock()
		if !ok {
			t := cl.lockAll()
			cl.mu.Lock()
			cl.observeLocked(cpu, topics)
			cl.mu.Unlock()
			return t
		}
		for i := 0; i < want.n; i++ {
			cl.stripes[want.s[i]].Lock()
		}
		var have coneToken
		cl.mu.Lock()
		if cl.stripeSetLocked(cpu, topics, &have) && have == want {
			cl.observeLocked(cpu, topics)
			cl.mu.Unlock()
			return want
		}
		cl.mu.Unlock()
		for i := want.n - 1; i >= 0; i-- {
			cl.stripes[want.s[i]].Unlock()
		}
	}
}

// lockCone acquires the single stripe of cpu's cone, revalidating
// against concurrent merges. A negative cpu locks the whole table.
func (cl *coneLocks) lockCone(cpu int) coneToken {
	if cl == nil {
		return coneToken{}
	}
	if cpu < 0 || cpu >= len(cl.parent) {
		return cl.lockAll()
	}
	for {
		cl.mu.Lock()
		s := int32(cl.find(cpu) % cl.shards)
		cl.mu.Unlock()
		cl.stripes[s].Lock()
		cl.mu.Lock()
		ok := int32(cl.find(cpu)%cl.shards) == s
		cl.mu.Unlock()
		if ok {
			var t coneToken
			t.n, t.s[0] = 1, s
			return t
		}
		cl.stripes[s].Unlock()
	}
}

// lockAll acquires every stripe in ascending order — the whole-table
// operations (Resolve, bundle adoption/withdrawal, Close) and unknown
// targets take this path.
func (cl *coneLocks) lockAll() coneToken {
	if cl == nil {
		return coneToken{}
	}
	for i := range cl.stripes {
		cl.stripes[i].Lock()
	}
	return coneToken{all: true}
}

// unlock releases a token's stripes in descending order.
func (cl *coneLocks) unlock(t coneToken) {
	if cl == nil {
		return
	}
	if t.all {
		for i := len(cl.stripes) - 1; i >= 0; i-- {
			cl.stripes[i].Unlock()
		}
		return
	}
	for i := t.n - 1; i >= 0; i-- {
		cl.stripes[t.s[i]].Unlock()
	}
}

// coneOf stripes a name-keyed lifecycle operation: it locks the cone of
// the component's CPU, or the whole table when the name is unknown (the
// operation then fails, or a concurrent deploy raced it — either way the
// conservative lock is correct).
func (d *DRCR) coneOf(name string) coneToken {
	if d.cones == nil {
		return coneToken{}
	}
	d.mu.Lock()
	cpu := -1
	if c, ok := d.comps[name]; ok {
		cpu = c.desc.CPU()
	}
	d.mu.Unlock()
	return d.cones.lockCone(cpu)
}
