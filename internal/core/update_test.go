package core

import (
	"testing"
	"time"

	"repro/internal/manifest"
	"repro/internal/osgi"
)

// TestBundleUpdateSwapsComponentContract exercises the continuous-
// deployment path the paper's introduction highlights: updating a bundle
// in place (no system restart) replaces its component's real-time
// contract, and the DRCR re-admits the new version automatically.
func TestBundleUpdateSwapsComponentContract(t *testing.T) {
	fw, k, d := newRig(t)

	mkDef := func(version, freq string) osgi.Definition {
		m := manifest.New("demo.cam", manifest.MustParseVersion(version))
		m.DRComComponents = []string{"OSGI-INF/cam.xml"}
		return osgi.Definition{
			Manifest: m,
			Resources: map[string]string{
				"OSGI-INF/cam.xml": `<component name="cam" type="periodic" cpuusage="0.1">
				  <implementation bincode="x"/>
				  <periodictask frequence="` + freq + `" runoncup="0" priority="1"/>
				</component>`,
			},
		}
	}

	b, err := fw.Install(mkDef("1.0", "100"))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	task, ok := k.Task("cam")
	if !ok {
		t.Fatal("v1 task missing")
	}
	if task.Spec().Period != 10*time.Millisecond {
		t.Fatalf("v1 period = %v", task.Spec().Period)
	}
	if err := k.Run(50 * time.Millisecond); err != nil {
		t.Fatal(err)
	}

	// Hot update to v2 at 200 Hz: stop → swap definition → start, all
	// driven by framework events.
	if err := b.Update(mkDef("2.0", "200")); err != nil {
		t.Fatal(err)
	}
	if got := stateOf(t, d, "cam"); got != Active {
		t.Fatalf("cam after update = %v", got)
	}
	task2, ok := k.Task("cam")
	if !ok {
		t.Fatal("v2 task missing")
	}
	if task2 == task {
		t.Fatal("task instance not recreated on update")
	}
	if task2.Spec().Period != 5*time.Millisecond {
		t.Fatalf("v2 period = %v, want 5ms (200 Hz)", task2.Spec().Period)
	}
	if err := k.Run(50 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if task2.Stats().Jobs < 9 {
		t.Fatalf("v2 jobs = %d", task2.Stats().Jobs)
	}
	// The whole system never restarted: the framework and kernel are the
	// same instances and the event log shows the v1 destroy + v2 adopt.
	var destroyed, adopted bool
	for _, ev := range d.Events() {
		if ev.Component == "cam" && ev.To == Destroyed {
			destroyed = true
		}
		if ev.Component == "cam" && destroyed && ev.To == Active {
			adopted = true
		}
	}
	if !destroyed || !adopted {
		t.Fatalf("update lifecycle not visible in events: destroyed=%v adopted=%v", destroyed, adopted)
	}
}

// TestBundleUpdateCascadesThroughDependants: updating the provider bundle
// briefly takes dependants down and brings them back — downtime-free for
// the system, contract-preserving for the components.
func TestBundleUpdateCascadesThroughDependants(t *testing.T) {
	fw, _, d := newRig(t)
	provDef := func(version string) osgi.Definition {
		m := manifest.New("demo.calc", manifest.MustParseVersion(version))
		m.DRComComponents = []string{"OSGI-INF/calc.xml"}
		return osgi.Definition{
			Manifest:  m,
			Resources: map[string]string{"OSGI-INF/calc.xml": calcXML},
		}
	}
	pb, err := fw.Install(provDef("1.0"))
	if err != nil {
		t.Fatal(err)
	}
	if err := pb.Start(); err != nil {
		t.Fatal(err)
	}
	if err := d.Deploy(mustParse(t, displayXML)); err != nil {
		t.Fatal(err)
	}
	if got := stateOf(t, d, "disp"); got != Active {
		t.Fatalf("disp = %v", got)
	}
	if err := pb.Update(provDef("1.1")); err != nil {
		t.Fatal(err)
	}
	// After the update settles, both are active again.
	if got := stateOf(t, d, "calc"); got != Active {
		t.Fatalf("calc after update = %v", got)
	}
	if got := stateOf(t, d, "disp"); got != Active {
		t.Fatalf("disp after provider update = %v", got)
	}
	info, _ := d.Component("calc")
	if info.Bundle != "demo.calc" {
		t.Fatalf("calc bundle = %q", info.Bundle)
	}
}
