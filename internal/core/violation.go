package core

import "fmt"

// Violation intake — the budget-revocation transition of Figure 1.
//
// Runtime contract monitors (package contract) watch the kernel's actual
// accounting against each component's declared contract. When a component
// breaks its promise — measured CPU past the declared cpuusage budget, a
// deadline-miss storm, a stale outport — the guard reports the violation
// here, and the DRCR reacts through its existing pipeline: the offender's
// instance is torn down, its contract leaves the global view so dependants
// cascade through resolution, and the component is barred from
// re-admission until the guard restores its budget.

// RevokeBudget withdraws a component's admitted real-time contract in
// response to a runtime contract violation. The component drops to
// UNSATISFIED (deactivating its RT task and releasing its transports),
// resolution re-runs so dependants cascade or alternatives take over, and
// the component is excluded from the activation sweep until
// RestoreBudget lifts the revocation.
func (d *DRCR) RevokeBudget(name, reason string) error {
	t := d.coneOf(name)
	defer d.cones.unlock(t)
	d.mu.Lock()
	c, ok := d.comps[name]
	if !ok {
		d.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownComponent, name)
	}
	why := "budget revoked: " + reason
	// The revoke span's cause is the ambient one the guard pushed (the
	// violation that triggered it); the Unsatisfied transition and the
	// dependant cascade chain to the revoke span in turn.
	c.obsCause = d.obs.Revoke(d.kernel.Now(), name, why)
	if c.state == Active || c.state == Suspended {
		d.deactivateLocked(c, why)
		d.setStateLocked(c, Unsatisfied, why)
		d.markProviderDownLocked(c)
	}
	c.revoked = true
	c.lastReason = why
	d.mu.Unlock()
	d.resolveDelta()
	return nil
}

// RestoreBudget lifts a revocation: the component may be admitted again
// on the next resolution pass (run immediately), so a healed component
// and its dependants return to ACTIVE in dependency order.
func (d *DRCR) RestoreBudget(name string) error {
	t := d.coneOf(name)
	defer d.cones.unlock(t)
	d.mu.Lock()
	c, ok := d.comps[name]
	if !ok {
		d.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownComponent, name)
	}
	if !c.revoked {
		d.mu.Unlock()
		return nil
	}
	c.revoked = false
	c.lastReason = "budget restored"
	// Ambient cause: the quarantine span the guard pushed. Re-admission
	// spans chain to the restore.
	c.obsCause = d.obs.Restore(d.kernel.Now(), name, "budget restored")
	d.enqueueActLocked(name)
	d.mu.Unlock()
	d.resolveDelta()
	return nil
}
