package core

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/descriptor"
	"repro/internal/manifest"
	"repro/internal/osgi"
	"repro/internal/rtos"
)

// TestThreeLevelCascade checks cascade deactivation across a chain
// A -> B -> C when the root provider goes away.
func TestThreeLevelCascade(t *testing.T) {
	_, k, d := newRig(t)
	chain := []string{
		`<component name="src" type="periodic" cpuusage="0.02">
		  <implementation bincode="x"/>
		  <periodictask frequence="100" runoncup="0" priority="1"/>
		  <outport name="p1" interface="RTAI.SHM" type="Byte" size="8"/>
		</component>`,
		`<component name="mid" type="periodic" cpuusage="0.02">
		  <implementation bincode="x"/>
		  <periodictask frequence="100" runoncup="0" priority="2"/>
		  <inport name="p1" interface="RTAI.SHM" type="Byte" size="8"/>
		  <outport name="p2" interface="RTAI.SHM" type="Byte" size="8"/>
		</component>`,
		`<component name="end" type="periodic" cpuusage="0.02">
		  <implementation bincode="x"/>
		  <periodictask frequence="100" runoncup="0" priority="3"/>
		  <inport name="p2" interface="RTAI.SHM" type="Byte" size="8"/>
		</component>`,
	}
	// Deploy in reverse order to prove order-independence.
	for i := len(chain) - 1; i >= 0; i-- {
		if err := d.Deploy(mustParse(t, chain[i])); err != nil {
			t.Fatal(err)
		}
	}
	for _, name := range []string{"src", "mid", "end"} {
		if got := stateOf(t, d, name); got != Active {
			t.Fatalf("%s = %v", name, got)
		}
	}
	// Root removal cascades through the whole chain.
	if err := d.Remove("src"); err != nil {
		t.Fatal(err)
	}
	if got := stateOf(t, d, "mid"); got != Unsatisfied {
		t.Fatalf("mid = %v", got)
	}
	if got := stateOf(t, d, "end"); got != Unsatisfied {
		t.Fatalf("end = %v", got)
	}
	if n := len(k.Tasks()); n != 0 {
		t.Fatalf("tasks left: %d", n)
	}
	// Root return reactivates the chain.
	if err := d.Deploy(mustParse(t, chain[0])); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"src", "mid", "end"} {
		if got := stateOf(t, d, name); got != Active {
			t.Fatalf("%s after redeploy = %v", name, got)
		}
	}
}

// TestBundleWithMalformedDescriptorSkipped mirrors SCR behaviour: a bad
// descriptor in a bundle is skipped, good ones still load.
func TestBundleWithMalformedDescriptorSkipped(t *testing.T) {
	fw, _, d := newRig(t)
	m := manifest.New("mixed", manifest.MustParseVersion("1.0"))
	m.DRComComponents = []string{"OSGI-INF/good.xml", "OSGI-INF/bad.xml", "OSGI-INF/missing.xml"}
	b, err := fw.Install(osgi.Definition{
		Manifest: m,
		Resources: map[string]string{
			"OSGI-INF/good.xml": calcXML,
			"OSGI-INF/bad.xml":  `<component name="waytoolong"`,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	if got := stateOf(t, d, "calc"); got != Active {
		t.Fatalf("good component = %v", got)
	}
	if len(d.Components()) != 1 {
		t.Fatalf("components = %v", d.Components())
	}
}

// TestDisabledDescriptorInBundle: enabled="false" components wait for
// enableRTComponent even when delivered via bundles.
func TestDisabledDescriptorInBundle(t *testing.T) {
	fw, _, d := newRig(t)
	src := `<component name="lazy" type="periodic" enabled="false" cpuusage="0.01">
	  <implementation bincode="x"/>
	  <periodictask frequence="10" runoncup="0" priority="1"/>
	</component>`
	m := manifest.New("lazyb", manifest.MustParseVersion("1.0"))
	m.DRComComponents = []string{"OSGI-INF/lazy.xml"}
	b, err := fw.Install(osgi.Definition{
		Manifest:  m,
		Resources: map[string]string{"OSGI-INF/lazy.xml": src},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	if got := stateOf(t, d, "lazy"); got != Disabled {
		t.Fatalf("lazy = %v", got)
	}
	if err := d.Enable("lazy"); err != nil {
		t.Fatal(err)
	}
	if got := stateOf(t, d, "lazy"); got != Active {
		t.Fatalf("lazy after enable = %v", got)
	}
}

// TestInvariantsUnderChurn drives pseudo-random deploy/remove/enable/
// disable/suspend sequences and asserts the DRCR's two core invariants
// after every step:
//
//  1. admission: the summed declared budgets of admitted components never
//     exceed the bound on any CPU;
//  2. functional: every Active/Suspended component's inports are bound to
//     an admitted provider.
func TestInvariantsUnderChurn(t *testing.T) {
	mkDesc := func(i int, usage float64, withIn, withOut bool) *descriptor.Component {
		ports := ""
		if withOut {
			ports += `<outport name="p` + fmt.Sprint(i%3) + `" interface="RTAI.SHM" type="Byte" size="8"/>`
		}
		if withIn {
			ports += `<inport name="p` + fmt.Sprint((i+1)%3) + `" interface="RTAI.SHM" type="Byte" size="8"/>`
		}
		src := fmt.Sprintf(`<component name="n%02d" type="periodic" cpuusage="%.3f">
		  <implementation bincode="x"/>
		  <periodictask frequence="100" runoncup="%d" priority="%d"/>
		  %s
		</component>`, i, usage, i%2, i+1, ports)
		c, err := descriptor.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}

	prop := func(script []uint8) bool {
		fw := osgi.NewFramework()
		k := rtos.NewKernel(rtos.Config{NumCPUs: 2, Timing: &noNoise, Seed: 99})
		d, err := New(fw, k, Options{})
		if err != nil {
			return false
		}
		defer d.Close()
		for step, op := range script {
			i := int(op % 8)
			name := fmt.Sprintf("n%02d", i)
			switch (op / 8) % 6 {
			case 0:
				_ = d.Deploy(mkDesc(i, float64(op%40)/100+0.05, op%2 == 0, op%3 == 0))
			case 1:
				_ = d.Remove(name)
			case 2:
				_ = d.Enable(name)
			case 3:
				_ = d.Disable(name)
			case 4:
				_ = d.Suspend(name)
			case 5:
				_ = d.Resume(name)
			}
			_ = k.Run(time.Millisecond)

			// Invariant 1: per-CPU admitted budget within bound.
			view := d.GlobalView()
			for cpuID := 0; cpuID < view.NumCPUs; cpuID++ {
				var sum float64
				for _, ct := range view.OnCPU(cpuID) {
					sum += ct.CPUUsage
				}
				if sum > 1.0+1e-9 {
					t.Logf("step %d: cpu%d over budget: %v", step, cpuID, sum)
					return false
				}
			}
			// Invariant 2: every admitted component's inports are bound.
			admitted := map[string]bool{}
			for _, info := range d.Components() {
				if info.State == Active || info.State == Suspended {
					admitted[info.Name] = true
				}
			}
			for _, info := range d.Components() {
				if info.State != Active && info.State != Suspended {
					continue
				}
				for port, provider := range info.Bindings {
					if provider == "" || !admitted[provider] {
						t.Logf("step %d: %s inport %s bound to %q (not admitted)",
							step, info.Name, port, provider)
						return false
					}
				}
			}
			// Invariant 3: kernel tasks exactly match admitted components.
			if len(k.Tasks()) != len(admitted) {
				t.Logf("step %d: %d tasks vs %d admitted", step, len(k.Tasks()), len(admitted))
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
