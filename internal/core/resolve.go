package core

// Incremental worklist-based constraint resolution.
//
// The paper's DRCR re-resolves functional and non-functional constraints
// on every run-time change (§2.2, §4.3). The reference implementation in
// fullsweep.go reproduces that literally: a fixed-point sweep over every
// managed component per change, O(n²)–O(n³) under churn. This file is the
// production engine: every lifecycle operation enqueues exactly the
// components whose constraints could have changed, and resolution drains
// that worklist, cascading along the reverse-dependency (port consumer)
// edges kept in consIndex and answering port queries from the admitted
// provider index instead of scanning the component set.
//
// The two engines must be observably identical — same final states, same
// lifecycle events in the same order, same reasons — which the
// differential churn tests pin. Three ordering rules make that hold:
//
//  1. deactivation rounds emulate the reference sweep's cursor: a
//     consumer dirtied behind the cursor waits for the next round, one
//     ahead of it joins the current round;
//  2. activation candidates are processed in ascending name order, and
//     every admitted-set or resolver-chain change re-arms the components
//     waiting on admission, mirroring the reference fixed point;
//  3. admission decisions are cached only while the drain, the view
//     epoch and the resolver-chain epoch all stand still — customized
//     resolving services may be stateful across Resolve calls (the fault
//     injector's flap resolver is), so a full Resolve always re-consults.

import (
	"sort"
	"time"

	"repro/internal/descriptor"
	"repro/internal/obs"
	"repro/internal/policy"
)

// Resolve runs constraint resolution. It re-examines every waiting
// component (resolving services may have changed their answers since the
// last run) and drains all pending dirty work to a fixed point.
// Reentrant calls — e.g. service events raised while activating —
// coalesce into an extra pass.
func (d *DRCR) Resolve() {
	t := d.cones.lockAll()
	defer d.cones.unlock(t)
	d.runResolve(true)
}

// resolveDelta drains only the dirty work the calling operation staged.
func (d *DRCR) resolveDelta() { d.runResolve(false) }

func (d *DRCR) runResolve(full bool) {
	d.mu.Lock()
	if full && !d.opts.FullSweepResolve {
		d.markAllWaitingLocked()
	}
	if d.resolving {
		d.dirty = true
		d.mu.Unlock()
		return
	}
	d.resolving = true
	d.mu.Unlock()
	start := time.Now()
	defer func() {
		d.obs.RecordLatency(obs.LatResolve, time.Since(start).Nanoseconds())
		d.mu.Lock()
		d.resolving = false
		d.mu.Unlock()
	}()
	for pass := 0; pass < 1000; pass++ {
		var changed bool
		if d.opts.FullSweepResolve {
			changed = d.resolveOnce()
		} else {
			changed = d.drainWorklist()
		}
		d.mu.Lock()
		dirty := d.dirty
		d.dirty = false
		d.mu.Unlock()
		if !changed && !dirty {
			return
		}
	}
}

// markAllWaitingLocked arms every waiting component for re-examination —
// the full-Resolve contract external callers (and stateful customized
// resolvers) rely on.
func (d *DRCR) markAllWaitingLocked() {
	for name := range d.waiting {
		d.enqueueActLocked(name)
	}
}

// drainWorklist empties both worklists. Each iteration mirrors one
// reference pass — a deactivation round, then an activation round — so
// work a round stages behind its cursor lands in the next iteration, in
// the exact position the reference fixed point would give it.
func (d *DRCR) drainWorklist() bool {
	d.refreshChain() // outside d.mu: resolvers live in the registry
	d.mu.Lock()
	defer d.mu.Unlock()
	d.drainID++ // invalidates admission decisions cached by earlier drains
	d.obs.NoteDrain()
	changed := false
	for {
		// Trace the round only when there is staged work: a steady-state
		// Resolve with empty worklists stays span- and allocation-free.
		if len(d.deactPending) > 0 || len(d.actPending) > 0 {
			d.obs.ResolveRound(d.kernel.Now(), len(d.deactPending), len(d.actPending))
		}
		if d.deactRoundLocked() {
			changed = true
		}
		d.syncWaitersLocked() // deactivations free budget for admission waiters
		if d.actRoundLocked() {
			changed = true
		}
		d.syncWaitersLocked() // activations move the view; re-arm for next pass
		if len(d.deactPending) == 0 && len(d.actPending) == 0 {
			// Both worklists drained: new admissions always beat
			// promotions. Only now may a degraded component claim freed
			// capacity for a better mode; a success loops so waiters
			// re-synchronise against the moved view before the next one.
			if len(d.degraded) > 0 && d.promotePendingLocked(d.consultResolvers) {
				changed = true
				continue
			}
			return changed
		}
	}
}

// deactRoundLocked processes one round of the deactivation worklist,
// emulating the reference sweep's cursor: the staged names run in
// ascending order; cascading to a consumer ahead of the cursor joins the
// current round, behind it waits for the next.
func (d *DRCR) deactRoundLocked() bool {
	if len(d.deactPending) == 0 {
		return false
	}
	changed := false
	d.deactRound = append(d.deactRound[:0], d.deactPending...)
	d.deactPending = d.deactPending[:0]
	for k := range d.deactMember {
		delete(d.deactMember, k)
	}
	for i := 0; i < len(d.deactRound); i++ {
		name := d.deactRound[i]
		c, ok := d.comps[name]
		if !ok {
			continue
		}
		if c.state != Active && c.state != Suspended {
			// Not admitted: the activation round owns its re-check
			// (including a Satisfied→Unsatisfied demotion).
			if c.state == Unsatisfied || c.state == Satisfied {
				d.enqueueActLocked(name)
			}
			continue
		}
		missing := d.unsatisfiedInportLocked(c, c.mode)
		if missing == "" {
			continue
		}
		reason := "inport " + missing + " lost its provider"
		d.deactivateLocked(c, reason)
		d.setStateLocked(c, Unsatisfied, reason)
		changed = true
		d.enqueueActLocked(name)
		for _, out := range c.desc.OutPorts {
			for _, cn := range d.consIndex[keyOf(out)] {
				if cn == name {
					continue
				}
				if p, ok := d.comps[cn]; ok && p.obsCause == 0 {
					p.obsCause = c.lastSpan // this deactivation dirtied it
				}
				if cn > name {
					d.deactRound = insertRound(d.deactRound, i, cn)
				} else {
					d.enqueueDeactLocked(cn)
				}
			}
		}
	}
	return changed
}

// insertRound inserts name into the sorted tail round[i+1:] (dedup'd).
func insertRound(round []string, i int, name string) []string {
	tail := round[i+1:]
	j := sort.SearchStrings(tail, name)
	if j < len(tail) && tail[j] == name {
		return round
	}
	pos := i + 1 + j
	round = append(round, "")
	copy(round[pos+1:], round[pos:])
	round[pos] = name
	return round
}

// actRoundLocked processes one round of the activation worklist. Like
// the deactivation round, a cursor emulates the reference sweep: a
// consumer whose provider activates behind it waits for the next round
// (the reference catches it on its next pass), one ahead of the cursor
// joins the current round. Resolving services are consulted outside the
// lock, exactly like the reference engine, and the component is
// re-validated afterwards.
func (d *DRCR) actRoundLocked() bool {
	if len(d.actPending) == 0 {
		return false
	}
	changed := false
	d.actRound = append(d.actRound[:0], d.actPending...)
	d.actPending = d.actPending[:0]
	for k := range d.actMember {
		delete(d.actMember, k)
	}
	for i := 0; i < len(d.actRound); i++ {
		if d.tryActivateLocked(i) {
			changed = true
		}
	}
	return changed
}

// tryActivateLocked examines actRound[i]: functional constraints first,
// then admission, then activation, cascading to the new provider's
// waiting consumers on success. Reports whether anything changed.
func (d *DRCR) tryActivateLocked(i int) bool {
	name := d.actRound[i]
	c, ok := d.comps[name]
	if !ok || (c.state != Unsatisfied && c.state != Satisfied) {
		return false
	}
	if c.revoked {
		// A revoked budget bars re-admission until RestoreBudget; the
		// lifecycle stays where the revocation left it.
		return false
	}
	changed := false
	modes, missing := d.feasibleModesLocked(c)
	if len(modes) == 0 {
		c.wait = waitPorts
		if c.state == Satisfied {
			d.setStateLocked(c, Unsatisfied, "inport "+missing+" unsatisfied")
			return true
		}
		c.lastReason = "inport " + missing + " unsatisfied"
		return false
	}
	if c.state == Unsatisfied {
		d.setStateLocked(c, Satisfied, "functional constraints satisfied")
		changed = true
		// Chain what follows (admission verdict or activation) to the
		// Unsatisfied→Satisfied move that enabled it.
		c.obsCause = c.lastSpan
	}
	view := d.viewLocked()
	chainEpoch := d.chainEpoch.Load()
	var decision policy.Decision
	var mode int
	if c.cacheValid && c.cacheDrain == d.drainID &&
		c.cacheViewEpoch == d.viewEpoch && c.cacheChainEpoch == chainEpoch &&
		!d.chainDirty.Load() {
		decision = c.cachedDecision
		mode = c.cachedMode
	} else {
		viewEpoch, drainID := d.viewEpoch, d.drainID
		desc := c.desc
		// Snapshot the feasible-mode list before unlocking: the scratch
		// buffer is reused by reentrant resolution work.
		var stack [4]int
		ms := append(stack[:0], modes...)
		d.mu.Unlock()
		var note string
		decision, mode, note = d.admitWalk(view, desc, ms, d.consultResolvers)
		ce := d.chainEpoch.Load()
		d.mu.Lock()
		c2, ok := d.comps[name]
		if !ok || c2.state != Satisfied {
			return changed
		}
		c = c2
		c.cacheValid = true
		c.cacheDrain = drainID
		c.cacheViewEpoch = viewEpoch
		c.cacheChainEpoch = ce
		c.cachedDecision = decision
		c.cachedMode = mode
		c.admitNote = note
	}
	if !decision.Admit {
		d.noteDenyLocked(c, "admission denied: "+decision.Reason)
		c.wait = waitAdmission
		return changed
	}
	c.mode = mode
	if c.desc.Budget != nil {
		c.admitVerdict = decision.Verdict
	}
	if err := d.activateLocked(c); err != nil {
		c.mode = 0
		c.admitVerdict = ""
		c.lastReason = "activation failed: " + err.Error()
		c.wait = waitAdmission
		return changed
	}
	c.wait = waitNone
	c.cacheValid = false
	// Cascade to the new provider's waiting consumers: ahead of the
	// cursor they join this round, behind it the next.
	for _, out := range c.desc.OutPorts {
		for _, cn := range d.consIndex[keyOf(out)] {
			if cn == name {
				continue
			}
			p, ok := d.comps[cn]
			if !ok || (p.state != Unsatisfied && p.state != Satisfied) {
				continue
			}
			if p.obsCause == 0 {
				p.obsCause = c.lastSpan // this activation may satisfy it
			}
			if cn > name {
				d.actRound = insertRound(d.actRound, i, cn)
			} else {
				d.enqueueActLocked(cn)
			}
		}
	}
	return true
}

// syncWaitersLocked re-arms every admission waiter when the admitted set
// or the resolver chain changed since the last synchronisation — the
// worklist equivalent of the reference engine running another full pass
// after any change.
func (d *DRCR) syncWaitersLocked() {
	ce := d.chainEpoch.Load()
	if d.drainViewEpoch == d.viewEpoch && d.drainChainEpoch == ce {
		return
	}
	d.drainViewEpoch, d.drainChainEpoch = d.viewEpoch, ce
	for name, c := range d.waiting {
		if c.wait == waitAdmission {
			d.enqueueActLocked(name)
		}
	}
}

// markProviderDownLocked stages every consumer of a departed provider's
// outport topics for a satisfaction re-check.
func (d *DRCR) markProviderDownLocked(c *Component) {
	if d.opts.FullSweepResolve {
		return
	}
	for _, out := range c.desc.OutPorts {
		for _, cn := range d.consIndex[keyOf(out)] {
			if cn != c.desc.Name {
				if p, ok := d.comps[cn]; ok && p.obsCause == 0 {
					p.obsCause = c.lastSpan // the provider's departure span
				}
				d.enqueueDeactLocked(cn)
			}
		}
	}
}

// enqueueActLocked stages a component for the activation phase's next
// round; the staging list stays sorted so rounds run in name order.
func (d *DRCR) enqueueActLocked(name string) {
	if d.opts.FullSweepResolve || d.actMember[name] {
		return
	}
	d.actMember[name] = true
	i := sort.SearchStrings(d.actPending, name)
	d.actPending = append(d.actPending, "")
	copy(d.actPending[i+1:], d.actPending[i:])
	d.actPending[i] = name
}

func (d *DRCR) enqueueDeactLocked(name string) {
	if d.opts.FullSweepResolve || d.deactMember[name] {
		return
	}
	d.deactMember[name] = true
	i := sort.SearchStrings(d.deactPending, name)
	d.deactPending = append(d.deactPending, "")
	copy(d.deactPending[i+1:], d.deactPending[i:])
	d.deactPending[i] = name
}

// refreshChain rebuilds the cached resolver chain if a resolving-service
// registry event invalidated it. Called without d.mu held: customized
// resolvers live in the service registry and fetching them may call back.
func (d *DRCR) refreshChain() {
	if !d.chainDirty.Swap(false) {
		return
	}
	chain := policy.Chain{d.opts.Internal}
	for _, ref := range d.fw.ServiceReferences(policy.ServiceInterface, nil) {
		if r, ok := d.fw.Service(ref).(policy.Resolver); ok {
			chain = append(chain, r)
		}
	}
	d.chainMu.Lock()
	d.chain = chain
	d.chainMu.Unlock()
	d.chainEpoch.Add(1)
}

// consultResolvers chains the internal resolving service with every
// customized resolving service (§4.3), using the event-invalidated cache
// instead of re-querying the registry per candidate.
func (d *DRCR) consultResolvers(view policy.View, cand policy.Contract) policy.Decision {
	d.refreshChain()
	d.chainMu.Lock()
	chain := d.chain
	d.chainMu.Unlock()
	return chain.Admit(view, cand)
}

// unsatisfiedInportLocked returns the name of the first inport required
// in service mode m with no compatible outport among admitted
// components, or "". Mode 0 requires every inport; degraded modes exempt
// their dropped ones.
func (d *DRCR) unsatisfiedInportLocked(c *Component, mode int) string {
	if d.opts.FullSweepResolve {
		return d.unsatisfiedInportScanLocked(c, mode)
	}
	for _, in := range c.desc.InPorts {
		if !c.desc.RequiresInport(mode, in.Name) {
			continue
		}
		if d.findProviderIndexLocked(c.desc.Name, in) == "" {
			return in.Name
		}
	}
	return ""
}

// feasibleModesLocked collects, in declared order, the service modes of
// c whose required inports all have admitted providers, reusing the
// DRCR's scratch buffer. When no mode is feasible, missing names mode
// 0's first unsatisfied inport (each mode requires a subset of mode 0's
// inports, so mode 0 infeasible is implied).
func (d *DRCR) feasibleModesLocked(c *Component) (modes []int, missing string) {
	nm := c.desc.NumModes()
	d.feasModes = d.feasModes[:0]
	for m := 0; m < nm; m++ {
		miss := d.unsatisfiedInportLocked(c, m)
		if miss == "" {
			d.feasModes = append(d.feasModes, m)
		} else if m == 0 {
			missing = miss
		}
	}
	if len(d.feasModes) == 0 {
		return nil, missing
	}
	return d.feasModes, ""
}

// admitWalk consults the resolver chain for each port-feasible mode in
// declared order and returns the first admitting decision with its mode
// — "downgrade-before-deny": the best feasible contract is admitted
// instead of denying the component outright. When every mode is denied
// it returns the last (cheapest mode's) denial. note carries the first
// denial's reason, explaining why a degraded admission fell short of the
// full contract. Runs without d.mu held; both resolve engines share it.
func (d *DRCR) admitWalk(view policy.View, desc *descriptor.Component, modes []int,
	consult func(policy.View, policy.Contract) policy.Decision) (policy.Decision, int, string) {
	var decision policy.Decision
	note := ""
	for _, m := range modes {
		decision = consult(view, contractAt(desc, m))
		if decision.Admit {
			return decision, m, note
		}
		if note == "" {
			note = decision.Reason
		}
	}
	return decision, modes[len(modes)-1], note
}

// promotePendingLocked attempts one best-effort promotion: the first
// degraded component (in name order) that is active, not held back by a
// pending AllowPromotion, and whose next-better mode is port-feasible
// and admitted against the view minus its own current contract steps up
// one mode. Called with d.mu held and only when both worklists are
// empty, so new admissions always claim freed capacity first.
func (d *DRCR) promotePendingLocked(consult func(policy.View, policy.Contract) policy.Decision) bool {
	for i := 0; i < len(d.degraded); i++ {
		name := d.degraded[i]
		c, ok := d.comps[name]
		if !ok || c.state != Active || c.promoHold || c.revoked || c.mode == 0 {
			continue
		}
		target := c.mode - 1
		if d.unsatisfiedInportLocked(c, target) != "" {
			continue
		}
		view := d.promotionViewLocked(c)
		cand := contractAt(c.desc, target)
		mode := c.mode
		d.mu.Unlock()
		decision := consult(view, cand)
		d.mu.Lock()
		c2, ok := d.comps[name]
		if !ok || c2 != c || c.state != Active || c.mode != mode || c.promoHold || c.revoked {
			continue
		}
		if !decision.Admit {
			continue
		}
		from := c.desc.ModeName(c.mode)
		if err := d.setModeLocked(c, target, "promoted: capacity recovered"); err != nil {
			continue
		}
		c.lastSpan = d.obs.Upgrade(d.kernel.Now(), name, from, c.desc.ModeName(c.mode),
			"capacity recovered", c.lastSpan)
		d.emitModeEventLocked(c, "promoted toward full contract")
		return true
	}
	return false
}

// promotionViewLocked is the admission view with c's own current
// contract withdrawn — what the world looks like if the component
// released its degraded budget to claim a better mode.
func (d *DRCR) promotionViewLocked(c *Component) policy.View {
	base := d.viewLocked()
	v := policy.View{NumCPUs: base.NumCPUs, Epoch: base.Epoch}
	name := c.desc.Name
	var self policy.Contract
	if len(base.Admitted) > 1 {
		v.Admitted = make([]policy.Contract, 0, len(base.Admitted)-1)
	}
	for _, ct := range base.Admitted {
		if ct.Name == name {
			self = ct
			continue
		}
		if ct.Budget != nil {
			v.Stochastic = true
		}
		v.Admitted = append(v.Admitted, ct)
	}
	v.CPULoad = make([]float64, len(base.CPULoad))
	copy(v.CPULoad, base.CPULoad)
	if self.CPU >= 0 && self.CPU < len(v.CPULoad) {
		v.CPULoad[self.CPU] -= self.CPUUsage
	}
	return v
}

// findProviderLocked locates an admitted component whose outport can
// satisfy the given inport.
func (d *DRCR) findProviderLocked(self string, in descriptor.Port) string {
	if d.opts.FullSweepResolve {
		return d.findProviderScanLocked(self, in)
	}
	return d.findProviderIndexLocked(self, in)
}

// findProviderIndexLocked answers the provider query from the admitted
// provider index: a map lookup plus a walk of the (tiny, name-sorted)
// provider list for that topic, so the choice matches the reference scan
// over the name-sorted admitted set.
func (d *DRCR) findProviderIndexLocked(self string, in descriptor.Port) string {
	if in.Direction != descriptor.In {
		return ""
	}
	for _, p := range d.provIndex[keyOf(in)] {
		if p.name != self && p.port.CanSatisfy(in) {
			return p.name
		}
	}
	// No local provider: a remote provision (replicated over the cluster
	// network) satisfies the functional constraint too.
	return d.remoteProviderLocked(in)
}
