package core

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/descriptor"
	"repro/internal/hrc"
	"repro/internal/ldap"
	"repro/internal/obs"
	"repro/internal/osgi"
	"repro/internal/rtos"
)

// Common errors.
var (
	ErrUnknownComponent = errors.New("core: unknown component")
	ErrClosed           = errors.New("core: DRCR closed")
)

// Deploy registers a component descriptor directly (no bundle) and runs
// resolution. The descriptor must already be validated by Parse.
func (d *DRCR) Deploy(desc *descriptor.Component) error {
	start := time.Now()
	defer func() { d.obs.RecordLatency(obs.LatDeploy, time.Since(start).Nanoseconds()) }()
	if desc != nil && d.cones != nil {
		t := d.cones.lockWiring(desc.CPU(), portKeysOf(desc))
		defer d.cones.unlock(t)
	}
	if err := d.addComponent(desc, nil); err != nil {
		return err
	}
	d.resolveDelta()
	return nil
}

// Remove destroys a component: deactivating it (and, through resolution,
// its dependents) and deleting its record.
func (d *DRCR) Remove(name string) error {
	t := d.coneOf(name)
	defer d.cones.unlock(t)
	d.mu.Lock()
	c, ok := d.comps[name]
	if !ok {
		d.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownComponent, name)
	}
	wasAdmitted := c.state == Active || c.state == Suspended
	if wasAdmitted {
		d.deactivateLocked(c, "component removed")
	}
	d.setStateLocked(c, Destroyed, "component removed")
	if wasAdmitted {
		d.markProviderDownLocked(c)
	}
	d.removeRecordLocked(c)
	d.mu.Unlock()
	d.resolveDelta()
	return nil
}

// Enable re-enables a disabled component (the paper's enableRTComponent).
func (d *DRCR) Enable(name string) error {
	t := d.coneOf(name)
	defer d.cones.unlock(t)
	d.mu.Lock()
	c, ok := d.comps[name]
	if !ok {
		d.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownComponent, name)
	}
	if c.state == Disabled {
		d.setStateLocked(c, Unsatisfied, "enabled")
		d.enqueueActLocked(name)
	}
	d.mu.Unlock()
	d.resolveDelta()
	return nil
}

// Disable deactivates (if needed) and disables a component.
func (d *DRCR) Disable(name string) error {
	t := d.coneOf(name)
	defer d.cones.unlock(t)
	d.mu.Lock()
	c, ok := d.comps[name]
	if !ok {
		d.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownComponent, name)
	}
	wasAdmitted := false
	switch c.state {
	case Disabled, Destroyed:
		d.mu.Unlock()
		return nil
	case Active, Suspended:
		wasAdmitted = true
		d.deactivateLocked(c, "disabled")
	}
	d.setStateLocked(c, Disabled, "disabled")
	if wasAdmitted {
		d.markProviderDownLocked(c)
	}
	d.mu.Unlock()
	d.resolveDelta()
	return nil
}

// Suspend suspends an active component through its management interface.
// The contract (budget, ports) stays admitted, so dependants remain
// satisfied; the RT task parks at its next job boundary.
func (d *DRCR) Suspend(name string) error {
	t := d.coneOf(name)
	defer d.cones.unlock(t)
	d.mu.Lock()
	c, ok := d.comps[name]
	if !ok {
		d.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownComponent, name)
	}
	if c.state != Active {
		st := c.state
		d.mu.Unlock()
		return fmt.Errorf("core: cannot suspend %s in state %v", name, st)
	}
	inst := c.inst
	d.setStateLocked(c, Suspended, "suspend requested")
	d.mu.Unlock()
	return inst.Suspend()
}

// Resume reactivates a suspended component.
func (d *DRCR) Resume(name string) error {
	t := d.coneOf(name)
	defer d.cones.unlock(t)
	d.mu.Lock()
	c, ok := d.comps[name]
	if !ok {
		d.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownComponent, name)
	}
	if c.state != Suspended {
		st := c.state
		d.mu.Unlock()
		return fmt.Errorf("core: cannot resume %s in state %v", name, st)
	}
	inst := c.inst
	d.setStateLocked(c, Active, "resume requested")
	d.mu.Unlock()
	return inst.Resume()
}

// bundleChanged ingests components from starting bundles and withdraws
// them when their bundle stops or disappears.
func (d *DRCR) bundleChanged(ev osgi.BundleEvent) {
	switch ev.Type {
	case osgi.BundleStarted:
		d.adoptBundle(ev.Bundle)
	case osgi.BundleStopping, osgi.BundleStopped, osgi.BundleUninstalled:
		d.dropBundle(ev.Bundle)
	}
}

func (d *DRCR) adoptBundle(b *osgi.Bundle) {
	t := d.cones.lockAll()
	defer d.cones.unlock(t)
	m := b.Manifest()
	if m == nil {
		return
	}
	var descs []*descriptor.Component
	for _, res := range m.DRComComponents {
		src, ok := b.Resource(res)
		if !ok {
			continue
		}
		desc, err := descriptor.Parse(src)
		if err != nil {
			continue // malformed descriptors are skipped, mirroring SCR
		}
		descs = append(descs, desc)
	}
	d.deployBatchLocked(descs, b)
}

func (d *DRCR) dropBundle(b *osgi.Bundle) {
	t := d.cones.lockAll()
	defer d.cones.unlock(t)
	d.mu.Lock()
	var names []string
	for name, c := range d.comps {
		if c.bundle == b {
			names = append(names, name)
		}
	}
	// Withdraw in name order, matching the order the resolution sweeps use,
	// so a multi-component bundle tears down deterministically.
	sort.Strings(names)
	for _, name := range names {
		c, ok := d.comps[name]
		if !ok {
			continue // a listener callback removed it mid-loop
		}
		wasAdmitted := c.state == Active || c.state == Suspended
		if wasAdmitted {
			d.deactivateLocked(c, "bundle "+b.SymbolicName()+" stopped")
		}
		d.setStateLocked(c, Destroyed, "bundle "+b.SymbolicName()+" stopped")
		if wasAdmitted {
			d.markProviderDownLocked(c)
		}
		d.removeRecordLocked(c)
	}
	d.mu.Unlock()
	d.resolveDelta()
}

// removeRecordLocked forgets a destroyed component: its record, its slot
// in the sorted name list, its reverse-dependency edges, and any waiting
// entry. Stale worklist entries are skipped on pop.
func (d *DRCR) removeRecordLocked(c *Component) {
	name := c.desc.Name
	delete(d.comps, name)
	d.allNames = removeName(d.allNames, name)
	for _, in := range c.desc.InPorts {
		key := keyOf(in)
		if ns := removeName(d.consIndex[key], name); len(ns) == 0 {
			delete(d.consIndex, key)
		} else {
			d.consIndex[key] = ns
		}
	}
	delete(d.waiting, name)
}

func (d *DRCR) addComponent(desc *descriptor.Component, b *osgi.Bundle) error {
	if desc == nil {
		return errors.New("core: nil descriptor")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if _, dup := d.comps[desc.Name]; dup {
		return fmt.Errorf("core: component %q already deployed (names are globally unique)", desc.Name)
	}
	if cpuID := desc.CPU(); cpuID >= d.kernel.NumCPUs() {
		return fmt.Errorf("core: component %q pinned to cpu%d but kernel has %d CPUs",
			desc.Name, cpuID, d.kernel.NumCPUs())
	}
	c := &Component{desc: desc, bundle: b} // bindings stay nil until activation fills them
	if desc.Enabled {
		c.state = Unsatisfied
		c.lastReason = "deployed"
	} else {
		c.state = Disabled
		c.lastReason = "deployed disabled"
	}
	d.comps[desc.Name] = c
	d.allNames = insertName(d.allNames, desc.Name)
	for _, in := range desc.InPorts {
		key := keyOf(in)
		d.consIndex[key] = insertName(d.consIndex[key], desc.Name)
	}
	if c.state == Unsatisfied {
		d.waiting[desc.Name] = c
		d.enqueueActLocked(desc.Name)
	}
	c.lastSpan = d.obs.Deploy(d.kernel.Now(), desc.Name, c.state.String(), c.lastReason)
	d.emitLocked(Event{
		At: d.kernel.Now(), Component: desc.Name,
		From: 0, To: c.state, Reason: c.lastReason,
	})
	return nil
}

// activateLocked instantiates the component: IPC objects for its
// outports, the hybrid RT task, and the management service.
func (d *DRCR) activateLocked(c *Component) error {
	var spec rtos.TaskSpec
	if c.planSpec != nil {
		// The plan preflight already computed and validated this spec;
		// sim time cannot advance mid-apply, so it is the spec this call
		// would rebuild.
		spec = *c.planSpec
		c.planSpec = nil
	} else {
		var err error
		spec, err = d.taskSpecLocked(c.desc, c.mode)
		if err != nil {
			return err
		}
	}
	// Outport transports first, so the body can look them up.
	var createdSHM, createdBoxes []string
	rollback := func() {
		for _, n := range createdSHM {
			_ = d.kernel.IPC().DeleteSHM(n)
		}
		for _, n := range createdBoxes {
			_ = d.kernel.IPC().DeleteMailbox(n)
		}
	}
	for _, out := range c.desc.OutPorts {
		switch out.Interface {
		case descriptor.SHM:
			if _, err := d.kernel.IPC().CreateSHM(out.Name, out.Type, out.Size); err != nil {
				rollback()
				return fmt.Errorf("outport %s: %w", out.Name, err)
			}
			createdSHM = append(createdSHM, out.Name)
		case descriptor.Mailbox:
			if _, err := d.kernel.IPC().CreateMailbox(out.Name, out.Size); err != nil {
				rollback()
				return fmt.Errorf("outport %s: %w", out.Name, err)
			}
			createdBoxes = append(createdBoxes, out.Name)
		}
	}
	var body rtos.Body
	if f := d.factories[c.desc.Implementation]; f != nil {
		body = f(c.desc)
	}
	var props map[string]string
	if len(c.desc.Properties) > 0 {
		props = make(map[string]string, len(c.desc.Properties))
		for _, p := range c.desc.Properties {
			props[p.Name] = p.Value
		}
	}
	inst, err := hrc.New(hrc.Config{
		Kernel: d.kernel,
		Spec:   spec,
		Body:   body,
		Props:  props,
	})
	if err != nil {
		rollback()
		return err
	}
	if err := inst.Start(); err != nil {
		_ = inst.Close()
		rollback()
		return err
	}
	// Record inport bindings for the global view; inports the admitted
	// mode drops stay unbound.
	c.bindings = make(map[string]string, len(c.desc.InPorts))
	planBinds := c.planBinds
	c.planBinds = nil
	for i, in := range c.desc.InPorts {
		if !c.desc.RequiresInport(c.mode, in.Name) {
			continue
		}
		if planBinds != nil {
			c.bindings[in.Name] = planBinds[i]
		} else {
			c.bindings[in.Name] = d.findProviderLocked(c.desc.Name, in)
		}
	}
	c.inst = inst
	c.ownedSHM = createdSHM
	c.ownedBoxes = createdBoxes
	d.setStateLocked(c, Active, "admitted and activated")
	if c.admitVerdict != "" {
		// A stochastic contract was admitted: pin the Monte-Carlo verdict
		// in the span stream so `why` explains the probability that let it
		// in. Constant-budget components never set admitVerdict, keeping
		// legacy digests untouched.
		c.lastSpan = d.obs.AdmitVerdict(d.kernel.Now(), c.desc.Name,
			c.desc.ModeName(c.mode), c.admitVerdict, c.lastSpan)
		c.admitVerdict = ""
	}
	if c.mode > 0 {
		// Admitted below the full contract: downgrade-before-deny. The
		// span chains to the activation so `why` explains the shortfall.
		detail := "downgrade-before-deny"
		if c.admitNote != "" {
			detail += ": " + c.admitNote
		} else {
			detail += ": full contract infeasible"
		}
		c.lastSpan = d.obs.Downgrade(d.kernel.Now(), c.desc.Name,
			descriptor.FullModeName, c.desc.ModeName(c.mode), detail, c.lastSpan)
	}
	c.admitNote = ""

	d.registerMgmtLocked(c, inst)
	return nil
}

// registerMgmtLocked publishes the management service together with the
// component's properties (§2.4). Registration happens via the
// framework-level registrar: the component may belong to no bundle. A
// degraded component advertises its effective budget and current mode.
func (d *DRCR) registerMgmtLocked(c *Component, inst *hrc.Component) {
	svcProps := make(ldap.Properties, 4+len(c.desc.Properties))
	svcProps["drcom.component"] = c.desc.Name
	svcProps["drcom.type"] = string(c.desc.Kind)
	svcProps["drcom.cpuusage"] = c.desc.ModeSpec(c.mode).CPUUsage
	if c.mode > 0 {
		svcProps["drcom.mode"] = c.desc.ModeName(c.mode)
	}
	for _, p := range c.desc.Properties {
		svcProps[p.Name] = p.Value
	}
	if reg, err := d.fw.RegisterService([]string{ManagementInterface}, Management(inst), svcProps); err == nil {
		c.mgmtReg = reg
	}
}

// deactivateLocked tears the instance down and releases its transports.
func (d *DRCR) deactivateLocked(c *Component, reason string) {
	if c.mgmtReg != nil {
		_ = c.mgmtReg.Unregister()
		c.mgmtReg = nil
	}
	if c.inst != nil {
		_ = c.inst.Close()
		c.inst = nil
	}
	for _, n := range c.ownedSHM {
		_ = d.kernel.IPC().DeleteSHM(n)
	}
	for _, n := range c.ownedBoxes {
		_ = d.kernel.IPC().DeleteMailbox(n)
	}
	c.ownedSHM, c.ownedBoxes = nil, nil
	c.bindings = map[string]string{}
	c.mode = 0
	c.promoHold = false
	c.admitVerdict = ""
	c.lastReason = reason
}

// portKeysOf lists a descriptor's port topics (in- and outports), the
// edges that couple dependency cones.
func portKeysOf(desc *descriptor.Component) []portKey {
	keys := make([]portKey, 0, len(desc.InPorts)+len(desc.OutPorts))
	for _, p := range desc.InPorts {
		keys = append(keys, keyOf(p))
	}
	for _, p := range desc.OutPorts {
		keys = append(keys, keyOf(p))
	}
	return keys
}

// taskSpecLocked maps a descriptor's real-time contract in service mode
// `mode` onto an RT task specification. The simulated execution cost is
// the mode's declared budget (cpuusage × period) unless the component
// carries an explicit "drcom.exectime.us" property, which pins the exec
// time across every mode (degrading changes the contract, not the work).
func (d *DRCR) taskSpecLocked(desc *descriptor.Component, mode int) (rtos.TaskSpec, error) {
	spec := rtos.TaskSpec{
		Name:       desc.Name,
		CPU:        desc.CPU(),
		Priority:   desc.Priority(),
		ExecJitter: d.opts.ExecJitter,
	}
	m := desc.ModeSpec(mode)
	switch desc.Kind {
	case descriptor.Periodic:
		spec.Type = rtos.Periodic
		spec.Period = m.Period()
		spec.ExecTime = time.Duration(m.CPUUsage * float64(spec.Period))
		// A task created mid-run starts releasing at the next period
		// boundary (rt_task_make_periodic semantics). Without the phase,
		// release index 0 would be nominally at time zero and the task
		// would burn through a catch-up burst of skipped releases.
		if now := int64(d.kernel.Now()); now > 0 {
			p := int64(spec.Period)
			spec.Phase = time.Duration((now + p - 1) / p * p)
		}
	case descriptor.Aperiodic:
		spec.Type = rtos.Aperiodic
		spec.ExecTime = d.opts.DefaultAperiodicCost
	default:
		return rtos.TaskSpec{}, fmt.Errorf("core: component %s: unknown kind %q", desc.Name, desc.Kind)
	}
	if p, ok := desc.Property("drcom.exectime.us"); ok {
		us, err := p.Int()
		if err != nil || us <= 0 {
			return rtos.TaskSpec{}, fmt.Errorf("core: component %s: bad drcom.exectime.us", desc.Name)
		}
		spec.ExecTime = time.Duration(us) * time.Microsecond
	}
	if spec.ExecTime <= 0 {
		spec.ExecTime = time.Microsecond
	}
	return spec, nil
}

// setStateLocked performs a checked Figure 1 transition and emits the
// event.
func (d *DRCR) setStateLocked(c *Component, to State, reason string) {
	d.setStateImplLocked(c, to, reason, true)
}

// setStatePlanLocked is setStateLocked minus the waiting-set upkeep.
// Only the plan apply's own transitions use it: a scheduled component's
// Unsatisfied→Satisfied→Active run would add it to the waiting set and
// immediately remove it again, churn no reader can observe — every read
// of d.waiting during the apply window is either deferred by d.resolving
// or owned by the apply, which restores the exact event-path contents
// (leftovers, failed activations) before any such read. Reentrant
// listener callbacks keep using setStateLocked, so their transitions
// maintain the waiting set normally.
func (d *DRCR) setStatePlanLocked(c *Component, to State, reason string) {
	d.setStateImplLocked(c, to, reason, false)
}

func (d *DRCR) setStateImplLocked(c *Component, to State, reason string, trackWaiting bool) {
	from := c.state
	if from == to {
		return
	}
	if from != 0 && !CanTransition(from, to) {
		// Illegal transitions are programming errors in the runtime; keep
		// the record but scream in the event log.
		reason = fmt.Sprintf("ILLEGAL TRANSITION %v->%v: %s", from, to, reason)
	}
	c.state = to
	c.lastReason = reason
	// Keep the incremental admission view in sync before the event goes
	// out: listeners may call back into the DRCR and must see it current.
	d.noteTransitionLocked(c, from, to)
	if trackWaiting {
		switch to {
		case Unsatisfied, Satisfied:
			d.waiting[c.desc.Name] = c
		default:
			delete(d.waiting, c.desc.Name)
		}
	}
	c.lastSpan = d.obs.Transition(d.kernel.Now(), c.desc.Name, from.String(), to.String(), reason, d.takeCause(c))
	d.emitLocked(Event{At: d.kernel.Now(), Component: c.desc.Name, From: from, To: to, Reason: reason})
}

func (d *DRCR) emitLocked(ev Event) {
	d.events = append(d.events, ev)
	ls := make([]func(Event), len(d.listeners))
	copy(ls, d.listeners)
	// Listeners run without the lock to allow callbacks into the DRCR.
	d.mu.Unlock()
	for _, l := range ls {
		if l != nil {
			l(ev)
		}
	}
	d.mu.Lock()
}
