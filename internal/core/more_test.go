package core

import (
	"testing"
	"time"

	"repro/internal/descriptor"
	"repro/internal/rtos"
)

// TestCrossCPUPortWiring: SHM is a global namespace, so a consumer pinned
// to CPU 1 may feed from a producer on CPU 0.
func TestCrossCPUPortWiring(t *testing.T) {
	_, k, d := newRig(t)
	producer := `<component name="src" type="periodic" cpuusage="0.05">
	  <implementation bincode="x"/>
	  <periodictask frequence="100" runoncup="0" priority="1"/>
	  <outport name="feed" interface="RTAI.SHM" type="Integer" size="4"/>
	</component>`
	consumer := `<component name="snk" type="periodic" cpuusage="0.05">
	  <implementation bincode="x"/>
	  <periodictask frequence="50" runoncup="1" priority="1"/>
	  <inport name="feed" interface="RTAI.SHM" type="Integer" size="4"/>
	</component>`
	if err := d.Deploy(mustParse(t, producer)); err != nil {
		t.Fatal(err)
	}
	if err := d.Deploy(mustParse(t, consumer)); err != nil {
		t.Fatal(err)
	}
	if got := stateOf(t, d, "snk"); got != Active {
		t.Fatalf("cross-CPU consumer = %v", got)
	}
	info, _ := d.Component("snk")
	if info.Bindings["feed"] != "src" {
		t.Fatalf("bindings = %v", info.Bindings)
	}
	// Both tasks run on their own processors.
	if err := k.Run(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	src, _ := k.Task("src")
	snk, _ := k.Task("snk")
	if src.Spec().CPU != 0 || snk.Spec().CPU != 1 {
		t.Fatalf("affinities = %d/%d", src.Spec().CPU, snk.Spec().CPU)
	}
	if src.Stats().Jobs == 0 || snk.Stats().Jobs == 0 {
		t.Fatal("tasks idle")
	}
}

// TestAperiodicComponentEndToEnd: an aperiodic DRCom component activates,
// its task awaits triggers, and the management interface sees its jobs.
func TestAperiodicComponentEndToEnd(t *testing.T) {
	_, k, d := newRig(t)
	var fired int
	if err := d.RegisterBody("x.Handler", func(*descriptor.Component) rtos.Body {
		return func(*rtos.JobContext) { fired++ }
	}); err != nil {
		t.Fatal(err)
	}
	src := `<component name="evh" desc="event handler" type="aperiodic">
	  <implementation bincode="x.Handler"/>
	  <aperiodictask runoncup="0" priority="0"/>
	</component>`
	if err := d.Deploy(mustParse(t, src)); err != nil {
		t.Fatal(err)
	}
	if got := stateOf(t, d, "evh"); got != Active {
		t.Fatalf("state = %v", got)
	}
	task, ok := k.Task("evh")
	if !ok {
		t.Fatal("no task")
	}
	// No periodic releases happen on their own.
	if err := k.Run(50 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if fired != 0 {
		t.Fatalf("aperiodic fired %d times without trigger", fired)
	}
	// Interrupt-style triggers drive it.
	for i := 0; i < 5; i++ {
		if err := task.Trigger(); err != nil {
			t.Fatal(err)
		}
		if err := k.Run(time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	if fired != 5 {
		t.Fatalf("fired = %d", fired)
	}
	// The snapshot is published at dispatch, so it trails by one job.
	mgmt, _ := d.Management("evh")
	if got := mgmt.Status().Jobs; got < 4 {
		t.Fatalf("management jobs = %d", got)
	}
	if task.Stats().Jobs != 5 {
		t.Fatalf("kernel jobs = %d", task.Stats().Jobs)
	}
}

// TestAperiodicHasNoBudgetContract: aperiodic contracts contribute no
// period to the admission view and never block periodic admission.
func TestAperiodicHasNoBudgetContract(t *testing.T) {
	_, _, d := newRig(t)
	src := `<component name="evh" type="aperiodic" cpuusage="0.3">
	  <implementation bincode="x"/>
	</component>`
	if err := d.Deploy(mustParse(t, src)); err != nil {
		t.Fatal(err)
	}
	view := d.GlobalView()
	if len(view.Admitted) != 1 || view.Admitted[0].Period != 0 {
		t.Fatalf("view = %+v", view.Admitted)
	}
	// Its declared usage still counts against the utilization bound —
	// the budget is a promise regardless of release pattern.
	big := `<component name="big" type="periodic" cpuusage="0.8">
	  <implementation bincode="x"/>
	  <periodictask frequence="100" runoncup="0" priority="1"/>
	</component>`
	if err := d.Deploy(mustParse(t, big)); err != nil {
		t.Fatal(err)
	}
	if got := stateOf(t, d, "big"); got != Satisfied {
		t.Fatalf("big = %v, want admission denial at 1.1 total", got)
	}
}
