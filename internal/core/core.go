// Package core implements the DRCR — the Declarative Real-time Component
// Runtime of the paper (§2.2): the service that owns the lifecycle of
// every declarative real-time component, keeps an accurate global view of
// promised real-time contracts, resolves functional (port) and
// non-functional (admission) constraints, and adapts the running set when
// bundles and components come and go, without impairing the contracts of
// components that stay active.
//
// Components reach the DRCR in two ways: declared in bundle resources
// named by the DRCom-Components manifest header (parsed automatically
// when the bundle starts), or deployed directly through Deploy. Each
// activated component is realised as a hybrid real-time component
// (package hrc) on the simulated RTAI kernel (package rtos), and its
// management interface is published in the OSGi service registry under
// ManagementInterface, exactly as §2.4 describes.
package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/descriptor"
	"repro/internal/hrc"
	"repro/internal/ldap"
	"repro/internal/obs"
	"repro/internal/osgi"
	"repro/internal/plan"
	"repro/internal/policy"
	"repro/internal/rtos"
	"repro/internal/rtos/ipc"
	"repro/internal/sim"
)

// State is the DRCom component lifecycle state (the paper's Figure 1).
type State int

// Lifecycle states. External events move components between Disabled,
// Unsatisfied and Destroyed; the DRCR manages Unsatisfied ⇄ Satisfied ⇄
// Active automatically; Suspended is entered through the management
// interface while the contract (budget, ports) stays admitted.
const (
	Disabled State = iota + 1
	Unsatisfied
	Satisfied
	Active
	Suspended
	Destroyed
)

func (s State) String() string {
	switch s {
	case 0:
		return "NEW"
	case Disabled:
		return "DISABLED"
	case Unsatisfied:
		return "UNSATISFIED"
	case Satisfied:
		return "SATISFIED"
	case Active:
		return "ACTIVE"
	case Suspended:
		return "SUSPENDED"
	case Destroyed:
		return "DESTROYED"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// legalTransitions is the exact transition relation of Figure 1; every
// state change the DRCR performs is checked against it.
var legalTransitions = map[State][]State{
	Disabled:    {Unsatisfied, Destroyed},
	Unsatisfied: {Satisfied, Disabled, Destroyed},
	Satisfied:   {Active, Unsatisfied, Disabled, Destroyed},
	Active:      {Suspended, Unsatisfied, Disabled, Destroyed},
	Suspended:   {Active, Unsatisfied, Disabled, Destroyed},
}

// CanTransition reports whether from → to is a legal Figure 1 move.
func CanTransition(from, to State) bool {
	for _, t := range legalTransitions[from] {
		if t == to {
			return true
		}
	}
	return false
}

// ManagementInterface is the registry interface name under which each
// active component's management service is published (§2.4).
const ManagementInterface = "drcom.Management"

// Management is the per-component management contract of §2.4: suspend,
// resume, get/set properties, and task status. Note init and uninit are
// deliberately not part of the interface — only the DRCR creates and
// destroys instances, or the global view would rot.
type Management interface {
	Suspend() error
	Resume() error
	SetProperty(key, value string) error
	Property(key string) (string, bool)
	Status() hrc.Status
}

// Compile-time proof that the hybrid component satisfies the management
// contract.
var _ Management = (*hrc.Component)(nil)

// BodyFactory builds the functional routine for a component, the stand-in
// for loading the descriptor's bincode class.
type BodyFactory func(c *descriptor.Component) rtos.Body

// Event records one lifecycle transition for diagnostics and the
// dynamicity experiments.
type Event struct {
	At        sim.Time
	Component string
	From, To  State
	Reason    string
}

func (e Event) String() string {
	return fmt.Sprintf("[%v] %s: %v -> %v (%s)", e.At, e.Component, e.From, e.To, e.Reason)
}

// waitKind classifies why a non-admitted component is waiting, so the
// worklist engine knows which events can change its fate: a port waiter
// needs a new provider of one of its inport topics, an admission waiter
// needs the admission view (or the resolver chain) to change.
type waitKind int

const (
	waitNone waitKind = iota
	waitPorts
	waitAdmission
)

// Component is the DRCR's record of one declared component.
type Component struct {
	desc    *descriptor.Component
	bundle  *osgi.Bundle // nil for directly-deployed components
	state   State
	inst    *hrc.Component
	mgmtReg *osgi.ServiceRegistration
	// bindings maps inport name -> providing component name while active.
	bindings map[string]string
	// planBinds, when non-nil, holds the precompiled activation-moment
	// binding row (by InPorts index) the plan apply staged; activateLocked
	// consumes and clears it instead of querying the provider index.
	// planSpec is the matching preflight-validated task spec.
	planBinds []string
	planSpec  *rtos.TaskSpec
	// lastReason explains the most recent state decision.
	lastReason string
	// revoked bars the component from re-admission after a runtime
	// contract violation, until RestoreBudget clears it.
	revoked bool
	// ownedSHM / ownedBoxes are the IPC objects created for outports.
	ownedSHM   []string
	ownedBoxes []string

	// mode is the admitted service mode (0 = the full contract),
	// meaningful while Active/Suspended. promoHold bars best-effort
	// promotion back toward mode 0 until AllowPromotion clears it, so a
	// guard's backoff policy gates re-promotion. admitNote carries the
	// denial reason that forced a degraded admission, surfaced in the
	// downgrade span.
	mode      int
	promoHold bool
	admitNote string
	// admitVerdict carries the admitting decision's reason into
	// activation for components with distribution-valued budgets, where
	// it becomes the admit span's detail. Empty otherwise.
	admitVerdict string

	// wait records the last resolution failure mode (worklist engine).
	wait waitKind
	// lastSpan is the component's most recent observability span;
	// obsCause is the pending cause the next span should carry (set when
	// another component's transition dirties this one).
	lastSpan obs.SpanID
	obsCause obs.SpanID
	// Admission decision cache: valid while the drain, view epoch and
	// resolver-chain epoch all match. Scoped to a single drain because
	// customized resolving services may be stateful across Resolve calls
	// (the fault injector's flap resolver is), so reusing a decision from
	// an earlier Resolve would freeze their answer.
	cacheDrain      uint64
	cacheViewEpoch  uint64
	cacheChainEpoch uint64
	cachedDecision  policy.Decision
	cachedMode      int
	cacheValid      bool
}

// portKey identifies a port topic for index lookups: two ports with equal
// keys differ at most in size, which the index entries carry explicitly
// (§2.3: name+interface+type+size determine compatibility).
type portKey struct {
	name  string
	iface descriptor.PortInterface
	typ   ipc.ElemType
}

func keyOf(p descriptor.Port) portKey { return portKey{p.Name, p.Interface, p.Type} }

// portProv is one admitted provider of a port topic. It carries the
// full declared outport so the index answers compatibility queries
// (size plus the typed version/datatype rules) exactly like the
// reference scan over descriptors.
type portProv struct {
	name string
	port descriptor.Port
}

// Info is a read-only component snapshot.
type Info struct {
	Name       string
	State      State
	Kind       descriptor.TaskKind
	CPU        int
	Priority   int
	CPUUsage   float64
	Importance int
	Bundle     string // symbolic name, "" if directly deployed
	Bindings   map[string]string
	LastReason string
	// Revoked reports an outstanding budget revocation (contract
	// violation); the component cannot re-activate until restored.
	Revoked bool
	// Mode is the admitted service mode index (0 = full contract) and
	// ModeName its label; while degraded, CPUUsage above reflects the
	// admitted mode's declared budget, not the full contract's. Modes
	// lists the declared mode ladder including mode 0 (nil when the
	// component declares no degraded modes).
	Mode     int
	ModeName string
	Modes    []ModeInfo
	// OutPorts lists the component's declared outports (name and
	// transport), so external monitors can watch port freshness.
	OutPorts []PortInfo
	// BudgetDist is the declared stochastic budget in canonical dist
	// grammar ("" for constant-budget components) and BudgetP its
	// declared deadline-met probability.
	BudgetDist string
	BudgetP    float64
}

// ModeInfo is a read-only declared-mode snapshot with inherited fields
// resolved.
type ModeInfo struct {
	Name        string
	FrequencyHz float64
	CPUUsage    float64
	Drops       []string
}

// PortInfo is a read-only declared-port snapshot.
type PortInfo struct {
	Name      string
	Interface string
}

// Options configure a DRCR.
type Options struct {
	// Internal is the DRCR's built-in resolving service; defaults to
	// policy.Utilization{} (enforce declared budgets, bound 1.0).
	Internal policy.Resolver
	// ExecJitter is the fractional execution-time jitter given to
	// component tasks; defaults to 0.05.
	ExecJitter float64
	// DefaultAperiodicCost is the simulated cost of an aperiodic job;
	// defaults to 10µs.
	DefaultAperiodicCost time.Duration
	// FullSweepResolve selects the reference fixed-point full-sweep
	// resolution engine instead of the incremental worklist engine. It
	// exists for differential testing and benchmarking only: both engines
	// must produce identical lifecycle outcomes, which the differential
	// churn tests pin.
	FullSweepResolve bool
	// Obs is the observability plane every DRCR decision is traced into;
	// defaults to a fresh plane at the Sampled level.
	Obs *obs.Plane
	// DisablePlanFastPath routes every bundle/batch deploy through the
	// per-descriptor event path even when a compiled composition plan
	// could be fast-applied. It exists for differential testing and
	// benchmarking: both paths must produce identical lifecycle outcomes,
	// which the plan differential tests pin.
	DisablePlanFastPath bool
	// Shards stripes the lifecycle surface by dependency cone (see
	// cones.go): operations on independent cones run concurrently, each
	// holding its cone's stripe through mutation plus the resolution it
	// triggers; whole-table operations (Resolve, bundle events, Close)
	// take every stripe. 0 or 1 disables striping — the runtime mutex
	// alone serialises, exactly the pre-sharding behaviour. With
	// striping on, event listeners must not call lifecycle operations
	// inline; schedule them on the kernel clock instead.
	Shards int
}

func (o *Options) applyDefaults() {
	if o.Internal == nil {
		o.Internal = policy.Utilization{}
	}
	if o.ExecJitter == 0 {
		o.ExecJitter = 0.05
	}
	if o.ExecJitter < 0 {
		o.ExecJitter = 0
	}
	if o.DefaultAperiodicCost <= 0 {
		o.DefaultAperiodicCost = 10 * time.Microsecond
	}
	if o.Obs == nil {
		o.Obs = obs.NewPlane(obs.Options{})
	}
}

// DRCR is the declarative real-time component runtime.
type DRCR struct {
	mu    sync.Mutex
	cones *coneLocks // cone-striped op locking; nil unless Options.Shards > 1

	fw     *osgi.Framework
	kernel *rtos.Kernel
	opts   Options
	obs    *obs.Plane

	comps     map[string]*Component
	factories map[string]BodyFactory

	// planCache holds compiled composition plans keyed by descriptor-set
	// digest, so redeploys and cluster-shipped batches skip compilation.
	// Replaceable via SetPlanCache (a cluster shares one across nodes).
	planCache *plan.Cache

	// admitted is the contract set of Active/Suspended components, kept
	// name-sorted up to admittedSorted and maintained incrementally on
	// every lifecycle transition so Resolve's fixed-point iterations
	// never rebuild it. Inserts append past the sorted prefix;
	// flushAdmittedLocked sorts and merges the tail before any ordered
	// read, so a whole-bundle deploy pays one O(N) merge instead of N
	// O(N) shifts. Pointers, not values: the merge moves one machine
	// word per element instead of a whole contract. cpuLoad is the
	// matching per-CPU summed declared budget.
	admitted       []*policy.Contract
	admittedSorted int
	cpuLoad        []float64
	// loadDirty flags CPUs whose accumulator is stale; loadLocked
	// re-sums them in admitted-name order before anyone reads cpuLoad,
	// so a whole-bundle deploy pays one rebuild instead of N.
	loadDirty    []bool
	loadDirtyAny bool

	// allNames is the sorted name list of every managed component,
	// maintained incrementally on deploy/destroy so the reference full
	// sweep never re-sorts. namesScratch / admittedScratch are the reused
	// snapshot buffers its passes iterate (snapshots are required: event
	// listeners run unlocked and may mutate the component set).
	allNames        []string
	namesScratch    []string
	admittedScratch []string

	// provIndex maps a port topic to its admitted providers (sorted by
	// name, so provider choice matches the reference scan over the
	// name-sorted admitted set). consIndex maps a topic to every managed
	// component declaring an inport on it, admitted or not — the reverse
	// dependency edges the worklist engine cascades along.
	provIndex map[portKey][]portProv
	consIndex map[portKey][]string

	// remoteProv / remoteCons are the federation indexes (remote.go):
	// topics provided by admitted components on other cluster nodes
	// (consulted by both resolve engines after the local admitted set)
	// and topics components here export to other nodes.
	remoteProv map[portKey][]remoteEntry
	remoteCons map[portKey][]string

	// viewEpoch counts admitted-set membership changes; viewSnap is the
	// immutable snapshot shared by every consult at that epoch.
	viewEpoch     uint64
	viewSnap      policy.View
	viewSnapEpoch uint64
	viewSnapValid bool

	// waiting tracks every Unsatisfied/Satisfied component. actPending /
	// deactPending are the sorted dirty-component staging worklists,
	// actRound / deactRound the reused buffers the phases sweep; the
	// drain* fields remember the epochs the last drain synchronised
	// against.
	waiting map[string]*Component
	// degraded is the sorted name list of admitted components running
	// below mode 0; the best-effort promotion pass walks it only when
	// non-empty, keeping the steady state allocation-free.
	degraded        []string
	feasModes       []int
	actPending      []string
	actMember       map[string]bool
	actRound        []string
	deactPending    []string
	deactMember     map[string]bool
	deactRound      []string
	drainID         uint64
	drainViewEpoch  uint64
	drainChainEpoch uint64

	// Resolver-chain cache: rebuilt only when a drcom.ResolvingService
	// registry event fires, instead of on every consult.
	chainDirty atomic.Bool
	chainEpoch atomic.Uint64
	chainMu    sync.Mutex
	chain      policy.Chain

	events    []Event
	listeners []func(Event)

	removeBundleListener  func()
	removeServiceListener func()
	resolving             bool
	dirty                 bool
	closed                bool
}

// New attaches a DRCR to a framework and kernel. The DRCR immediately
// starts listening for bundle lifecycle events.
func New(fw *osgi.Framework, kernel *rtos.Kernel, opts Options) (*DRCR, error) {
	if fw == nil || kernel == nil {
		return nil, errors.New("core: DRCR needs a framework and a kernel")
	}
	opts.applyDefaults()
	d := &DRCR{
		fw:          fw,
		kernel:      kernel,
		opts:        opts,
		obs:         opts.Obs,
		comps:       map[string]*Component{},
		factories:   map[string]BodyFactory{},
		planCache:   plan.NewCache(),
		provIndex:   map[portKey][]portProv{},
		consIndex:   map[portKey][]string{},
		waiting:     map[string]*Component{},
		actMember:   map[string]bool{},
		deactMember: map[string]bool{},
	}
	d.cones = newConeLocks(kernel.NumCPUs(), opts.Shards)
	d.obs.BindKernel(kernel)
	d.obs.SetLoadFunc(d.declaredLoad)
	d.chainDirty.Store(true) // build the resolver chain on first consult
	d.removeBundleListener = fw.AddBundleListener(osgi.BundleListenerFunc(d.bundleChanged))
	// Resolver registrations/removals invalidate the cached chain. The
	// listener only flips an atomic flag: it may fire while d.mu is held
	// (the DRCR itself registers management services during activation).
	resolverFilter := ldap.MustParse("(" + osgi.PropObjectClass + "=" + policy.ServiceInterface + ")")
	d.removeServiceListener = fw.AddServiceListener(osgi.ServiceListenerFunc(func(osgi.ServiceEvent) {
		d.chainDirty.Store(true)
	}), resolverFilter)
	return d, nil
}

// Kernel returns the RT kernel the DRCR drives.
func (d *DRCR) Kernel() *rtos.Kernel { return d.kernel }

// Obs returns the observability plane the DRCR emits into. Subsystems
// reacting to DRCR state (the contract guard, the fault injector) trace
// their own decisions through it so causal chains span subsystems.
func (d *DRCR) Obs() *obs.Plane { return d.obs }

// Observer returns the read-only management view of the plane.
func (d *DRCR) Observer() obs.Observer { return d.obs.Observer() }

// declaredLoad snapshots the per-CPU admission accumulators for metric
// snapshots.
func (d *DRCR) declaredLoad() []float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]float64, d.kernel.NumCPUs())
	copy(out, d.loadLocked())
	return out
}

// takeCause consumes a component's pending span cause.
func (d *DRCR) takeCause(c *Component) obs.SpanID {
	id := c.obsCause
	c.obsCause = 0
	return id
}

// noteDenyLocked records an admission denial. A deny span is emitted
// only when the reason changed — the full-sweep engine re-consults every
// waiting component each pass while the worklist engine re-consults only
// when something dirtied it, and deduplication makes the two span
// streams identical.
func (d *DRCR) noteDenyLocked(c *Component, reason string) {
	cause := d.takeCause(c)
	if reason != c.lastReason {
		c.lastSpan = d.obs.Deny(d.kernel.Now(), c.desc.Name, reason, cause)
	}
	c.lastReason = reason
}

// Framework returns the owning framework.
func (d *DRCR) Framework() *osgi.Framework { return d.fw }

// RegisterBody associates a descriptor bincode with a functional routine
// factory. Components without a registered body still activate — their
// tasks consume their declared budget but perform no data flow.
func (d *DRCR) RegisterBody(bincode string, f BodyFactory) error {
	if bincode == "" || f == nil {
		return errors.New("core: RegisterBody needs a bincode and a factory")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.factories[bincode]; dup {
		return fmt.Errorf("core: body for %q already registered", bincode)
	}
	d.factories[bincode] = f
	return nil
}

// AddListener subscribes to lifecycle events; the returned function
// unsubscribes.
func (d *DRCR) AddListener(f func(Event)) (remove func()) {
	if f == nil {
		return func() {}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.listeners = append(d.listeners, f)
	idx := len(d.listeners) - 1
	return func() {
		d.mu.Lock()
		defer d.mu.Unlock()
		if idx < len(d.listeners) {
			d.listeners[idx] = nil
		}
	}
}

// Events returns a copy of the lifecycle event log.
func (d *DRCR) Events() []Event {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]Event, len(d.events))
	copy(out, d.events)
	return out
}

// ClearEvents empties the event log.
func (d *DRCR) ClearEvents() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.events = d.events[:0]
}

// Component returns a snapshot of the named component.
func (d *DRCR) Component(name string) (Info, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	c, ok := d.comps[name]
	if !ok {
		return Info{}, false
	}
	return d.infoLocked(c), true
}

// Components lists snapshots of all managed components, sorted by name.
func (d *DRCR) Components() []Info {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]Info, 0, len(d.comps))
	for _, c := range d.comps {
		out = append(out, d.infoLocked(c))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func (d *DRCR) infoLocked(c *Component) Info {
	info := Info{
		Name:       c.desc.Name,
		State:      c.state,
		Kind:       c.desc.Kind,
		CPU:        c.desc.CPU(),
		Priority:   c.desc.Priority(),
		CPUUsage:   c.desc.CPUUsage,
		Importance: c.desc.Importance,
		LastReason: c.lastReason,
		Revoked:    c.revoked,
		Mode:       c.mode,
		ModeName:   c.desc.ModeName(c.mode),
		Bindings:   map[string]string{},
	}
	if c.mode > 0 {
		info.CPUUsage = c.desc.ModeSpec(c.mode).CPUUsage
	}
	if n := c.desc.NumModes(); n > 1 {
		info.Modes = make([]ModeInfo, n)
		for i := 0; i < n; i++ {
			m := c.desc.ModeSpec(i)
			info.Modes[i] = ModeInfo{Name: m.Name, FrequencyHz: m.FrequencyHz, CPUUsage: m.CPUUsage, Drops: m.Drops}
		}
	}
	if c.bundle != nil {
		info.Bundle = c.bundle.SymbolicName()
	}
	if c.desc.Budget != nil {
		info.BudgetDist = c.desc.Budget.String()
		info.BudgetP = c.desc.BudgetP
	}
	for _, out := range c.desc.OutPorts {
		info.OutPorts = append(info.OutPorts, PortInfo{Name: out.Name, Interface: string(out.Interface)})
	}
	for k, v := range c.bindings {
		info.Bindings[k] = v
	}
	return info
}

// Management returns the live management service of an active component.
func (d *DRCR) Management(name string) (Management, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	c, ok := d.comps[name]
	if !ok || c.inst == nil {
		return nil, false
	}
	return c.inst, true
}

// GlobalView assembles the admission view over currently admitted
// (Active or Suspended) components — the DRCR's accurate global picture
// of promised contracts. The returned snapshot is immutable and shared:
// treat it as read-only (resolvers must anyway, per policy.Resolver).
func (d *DRCR) GlobalView() policy.View {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.viewLocked()
}

// viewLocked returns the admission snapshot for the current view epoch.
// The snapshot is rebuilt (fresh slices, never mutated in place) only
// when the admitted membership changed since the last call, so a burst
// of consults against an unchanged view shares one copy instead of
// re-copying the contract list per candidate.
func (d *DRCR) viewLocked() policy.View {
	if !d.viewSnapValid || d.viewSnapEpoch != d.viewEpoch {
		d.flushAdmittedLocked()
		v := policy.View{NumCPUs: d.kernel.NumCPUs(), Epoch: d.viewEpoch}
		if len(d.admitted) > 0 {
			v.Admitted = make([]policy.Contract, len(d.admitted))
			for i, ct := range d.admitted {
				v.Admitted[i] = *ct
				if ct.Budget != nil {
					v.Stochastic = true
				}
			}
		}
		if load := d.loadLocked(); len(load) > 0 {
			v.CPULoad = make([]float64, len(load))
			copy(v.CPULoad, load)
		}
		d.viewSnap = v
		d.viewSnapEpoch = d.viewEpoch
		d.viewSnapValid = true
	}
	return d.viewSnap
}

// admittedSet reports whether a state counts into the admission view.
func admittedSet(s State) bool { return s == Active || s == Suspended }

// noteTransitionLocked keeps the incremental admission view in sync with a
// component's from → to move.
func (d *DRCR) noteTransitionLocked(c *Component, from, to State) {
	was, is := admittedSet(from), admittedSet(to)
	if was == is {
		return
	}
	name := c.desc.Name
	var cpu int
	if is {
		ct := contractAt(c.desc, c.mode)
		cpu = ct.CPU
		// Append past the sorted prefix; the merge happens lazily at the
		// next ordered read. Component names are unique in the admitted
		// set, so the deferred sort lands the entry exactly where the
		// immediate sorted insert would have.
		d.admitted = append(d.admitted, &ct)
		if c.mode > 0 {
			d.degraded = insertName(d.degraded, name)
		}
	} else {
		d.flushAdmittedLocked()
		i := sort.Search(len(d.admitted), func(i int) bool { return d.admitted[i].Name >= name })
		if i >= len(d.admitted) || d.admitted[i].Name != name {
			return // not tracked; nothing to withdraw
		}
		cpu = d.admitted[i].CPU
		d.admitted = append(d.admitted[:i], d.admitted[i+1:]...)
		d.admittedSorted = len(d.admitted)
		if len(d.degraded) > 0 {
			d.degraded = removeName(d.degraded, name)
		}
	}
	// A membership change on one CPU leaves every other CPU's contract
	// sequence untouched, so their name-order sums are bit-for-bit the
	// ones a full rebuild would produce. Mark this CPU stale; the re-sum
	// happens lazily at the next cpuLoad read (loadLocked), which folds a
	// whole-bundle deploy's N re-sums into one.
	d.markLoadDirtyLocked(cpu)
	d.viewEpoch++
	// Keep the provider index exactly the outports of the admitted set.
	for _, out := range c.desc.OutPorts {
		key := keyOf(out)
		if is {
			d.provIndex[key] = insertProv(d.provIndex[key], portProv{name: name, port: out})
		} else {
			d.provIndex[key] = removeProv(d.provIndex[key], name)
		}
	}
}

func insertProv(ps []portProv, p portProv) []portProv {
	i := sort.Search(len(ps), func(i int) bool { return ps[i].name >= p.name })
	if i < len(ps) && ps[i].name == p.name {
		ps[i] = p
		return ps
	}
	ps = append(ps, portProv{})
	copy(ps[i+1:], ps[i:])
	ps[i] = p
	return ps
}

func removeProv(ps []portProv, name string) []portProv {
	i := sort.Search(len(ps), func(i int) bool { return ps[i].name >= name })
	if i >= len(ps) || ps[i].name != name {
		return ps
	}
	return append(ps[:i], ps[i+1:]...)
}

func insertName(ns []string, name string) []string {
	i := sort.SearchStrings(ns, name)
	if i < len(ns) && ns[i] == name {
		return ns
	}
	ns = append(ns, "")
	copy(ns[i+1:], ns[i:])
	ns[i] = name
	return ns
}

// mergeNames merges a sorted batch of new names into a sorted list —
// the single-pass equivalent of insertName once per element. Callers
// guarantee the batch is disjoint from dst (the plan install loop skips
// duplicates against the component table, which dst mirrors).
func mergeNames(dst, add []string) []string {
	if len(add) == 0 {
		return dst
	}
	if len(dst) == 0 || dst[len(dst)-1] < add[0] {
		return append(dst, add...)
	}
	out := make([]string, 0, len(dst)+len(add))
	i, j := 0, 0
	for i < len(dst) && j < len(add) {
		if dst[i] <= add[j] {
			out = append(out, dst[i])
			i++
		} else {
			out = append(out, add[j])
			j++
		}
	}
	out = append(out, dst[i:]...)
	out = append(out, add[j:]...)
	return out
}

func removeName(ns []string, name string) []string {
	i := sort.SearchStrings(ns, name)
	if i >= len(ns) || ns[i] != name {
		return ns
	}
	return append(ns[:i], ns[i+1:]...)
}

// flushAdmittedLocked restores the full name-sort invariant on
// d.admitted: the appended tail is sorted and merged into the sorted
// prefix in one backward pass. Every ordered reader calls this first;
// the call is a length comparison when nothing was appended. The merged
// slice is element-for-element the one immediate sorted inserts would
// have produced (names are unique), so every downstream ordered
// computation — name-order load sums, view snapshots, reference scans —
// is bit-for-bit unchanged.
func (d *DRCR) flushAdmittedLocked() {
	n := len(d.admitted)
	if d.admittedSorted == n {
		return
	}
	tail := d.admitted[d.admittedSorted:]
	sort.Slice(tail, func(i, j int) bool { return tail[i].Name < tail[j].Name })
	if d.admittedSorted > 0 && d.admitted[d.admittedSorted-1].Name > tail[0].Name {
		tmp := append([]*policy.Contract(nil), tail...)
		i, j, k := d.admittedSorted-1, len(tmp)-1, n-1
		for j >= 0 {
			if i >= 0 && d.admitted[i].Name > tmp[j].Name {
				d.admitted[k] = d.admitted[i]
				i--
			} else {
				d.admitted[k] = tmp[j]
				j--
			}
			k--
		}
	}
	d.admittedSorted = n
}

// recomputeLoadLocked refreshes the per-CPU budget accumulators from the
// admitted set. It runs only when membership changes (not on every Resolve
// iteration) and always sums in name order, so the totals are bit-for-bit
// the ones a full rebuild would produce.
func (d *DRCR) recomputeLoadLocked() {
	d.flushAdmittedLocked()
	if d.cpuLoad == nil {
		d.cpuLoad = make([]float64, d.kernel.NumCPUs())
	}
	for i := range d.cpuLoad {
		d.cpuLoad[i] = 0
	}
	for _, ct := range d.admitted {
		if ct.CPU >= 0 && ct.CPU < len(d.cpuLoad) {
			d.cpuLoad[ct.CPU] += ct.CPUUsage
		}
	}
	for i := range d.loadDirty {
		d.loadDirty[i] = false
	}
	d.loadDirtyAny = false
}

// markLoadDirtyLocked flags one CPU's accumulator stale after a
// membership change there.
func (d *DRCR) markLoadDirtyLocked(cpu int) {
	if d.loadDirty == nil {
		d.loadDirty = make([]bool, d.kernel.NumCPUs())
	}
	if cpu < 0 || cpu >= len(d.loadDirty) {
		return
	}
	d.loadDirty[cpu] = true
	d.loadDirtyAny = true
}

// loadLocked returns the per-CPU accumulators, re-summing any stale CPU
// in admitted-name order first — bit-for-bit the totals a full rebuild
// at every transition would have produced, without paying the rebuild
// per transition.
func (d *DRCR) loadLocked() []float64 {
	if d.cpuLoad == nil {
		d.cpuLoad = make([]float64, d.kernel.NumCPUs())
	}
	if !d.loadDirtyAny {
		return d.cpuLoad
	}
	d.flushAdmittedLocked()
	for i, dirty := range d.loadDirty {
		if dirty {
			d.cpuLoad[i] = 0
		}
	}
	for _, ct := range d.admitted {
		if ct.CPU >= 0 && ct.CPU < len(d.cpuLoad) && d.loadDirty[ct.CPU] {
			d.cpuLoad[ct.CPU] += ct.CPUUsage
		}
	}
	for i := range d.loadDirty {
		d.loadDirty[i] = false
	}
	d.loadDirtyAny = false
	return d.cpuLoad
}

func contractOf(desc *descriptor.Component) policy.Contract {
	ct := policy.Contract{
		Name:       desc.Name,
		CPU:        desc.CPU(),
		Priority:   desc.Priority(),
		CPUUsage:   desc.CPUUsage,
		Importance: desc.Importance,
		Budget:     desc.Budget,
		MetP:       desc.BudgetP,
	}
	if desc.Periodic != nil {
		ct.Period = desc.Periodic.Period()
	}
	return ct
}

// contractAt is the contract a component promises in service mode m:
// contractOf for mode 0, the mode's declared budget and rate otherwise.
// Degraded modes promise their constant declared budget — the
// distribution refines only the full contract, so stepping down always
// shrinks the admission question.
func contractAt(desc *descriptor.Component, mode int) policy.Contract {
	ct := contractOf(desc)
	if mode > 0 {
		m := desc.ModeSpec(mode)
		ct.CPUUsage = m.CPUUsage
		ct.Budget = nil
		ct.MetP = 0
		if desc.Periodic != nil {
			ct.Period = m.Period()
		}
	}
	return ct
}

// sortedNamesLocked snapshots the incrementally-maintained sorted name
// list into a reused scratch buffer (safe against listener callbacks
// mutating the component set while a sweep iterates it unlocked).
func (d *DRCR) sortedNamesLocked() []string {
	d.namesScratch = append(d.namesScratch[:0], d.allNames...)
	return d.namesScratch
}

// Close detaches the DRCR from framework events and destroys every
// component.
func (d *DRCR) Close() {
	t := d.cones.lockAll()
	defer d.cones.unlock(t)
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	d.mu.Unlock()
	d.removeBundleListener()
	d.removeServiceListener()
	// Bulk teardown: every component is going away, so cascading through
	// resolution after each removal (quadratic-to-cubic at container
	// scale) would only recompute states that are about to be destroyed.
	// Deactivate and destroy each record directly instead, in name order
	// for a deterministic event trail.
	d.mu.Lock()
	for _, name := range d.sortedNamesLocked() {
		c, ok := d.comps[name]
		if !ok {
			continue
		}
		if c.state == Active || c.state == Suspended {
			d.deactivateLocked(c, "component removed")
		}
		d.setStateLocked(c, Destroyed, "component removed")
		d.removeRecordLocked(c)
	}
	d.mu.Unlock()
}
