package core

import (
	"errors"
	"testing"
	"time"
)

// TestRevokeBudgetCascadesAndRestores walks the budget-revocation
// transition end to end: revoking the provider's budget drops it to
// UNSATISFIED, the dependant cascades, resolution cannot re-admit the
// offender while revoked, and restoring the budget re-activates the whole
// closure in dependency order.
func TestRevokeBudgetCascadesAndRestores(t *testing.T) {
	_, k, d := newRig(t)
	for _, src := range []string{calcXML, displayXML} {
		if err := d.Deploy(mustParse(t, src)); err != nil {
			t.Fatal(err)
		}
	}
	if st := stateOf(t, d, "calc"); st != Active {
		t.Fatalf("calc = %v, want ACTIVE", st)
	}
	if st := stateOf(t, d, "disp"); st != Active {
		t.Fatalf("disp = %v, want ACTIVE", st)
	}
	if err := k.Run(10 * time.Millisecond); err != nil {
		t.Fatal(err)
	}

	if err := d.RevokeBudget("calc", "test violation"); err != nil {
		t.Fatal(err)
	}
	if st := stateOf(t, d, "calc"); st != Unsatisfied {
		t.Errorf("after revoke, calc = %v, want UNSATISFIED", st)
	}
	if st := stateOf(t, d, "disp"); st != Unsatisfied {
		t.Errorf("after revoke, disp = %v, want UNSATISFIED (cascade)", st)
	}
	info, _ := d.Component("calc")
	if !info.Revoked {
		t.Error("calc Info.Revoked = false after RevokeBudget")
	}
	if _, ok := k.Task("calc"); ok {
		t.Error("calc task still exists after revocation")
	}

	// Resolution must not re-admit a revoked component.
	d.Resolve()
	if st := stateOf(t, d, "calc"); st != Unsatisfied {
		t.Errorf("Resolve re-admitted revoked calc: %v", st)
	}

	revokedAt := k.Now()
	if err := k.Run(5 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := d.RestoreBudget("calc"); err != nil {
		t.Fatal(err)
	}
	if st := stateOf(t, d, "calc"); st != Active {
		t.Errorf("after restore, calc = %v, want ACTIVE", st)
	}
	if st := stateOf(t, d, "disp"); st != Active {
		t.Errorf("after restore, disp = %v, want ACTIVE", st)
	}
	info, _ = d.Component("calc")
	if info.Revoked {
		t.Error("calc Info.Revoked still true after RestoreBudget")
	}

	// Re-activation must come in dependency order: the provider's ACTIVE
	// event precedes the dependant's.
	var calcAt, dispAt = -1, -1
	for i, ev := range d.Events() {
		if ev.At <= revokedAt || ev.To != Active {
			continue
		}
		switch ev.Component {
		case "calc":
			if calcAt < 0 {
				calcAt = i
			}
		case "disp":
			if dispAt < 0 {
				dispAt = i
			}
		}
	}
	if calcAt < 0 || dispAt < 0 {
		t.Fatalf("missing re-activation events (calc %d, disp %d)", calcAt, dispAt)
	}
	if calcAt > dispAt {
		t.Errorf("disp re-activated (event %d) before its provider calc (event %d)", dispAt, calcAt)
	}

	// The restored pair must actually run again.
	if err := k.Run(20 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	task, ok := k.Task("calc")
	if !ok {
		t.Fatal("calc task missing after restore")
	}
	if task.Metrics().Jobs == 0 {
		t.Error("restored calc never ran")
	}
}

func TestRevokeRestoreEdgeCases(t *testing.T) {
	_, _, d := newRig(t)
	if err := d.RevokeBudget("ghost", "x"); !errors.Is(err, ErrUnknownComponent) {
		t.Errorf("RevokeBudget(ghost) = %v, want ErrUnknownComponent", err)
	}
	if err := d.RestoreBudget("ghost"); !errors.Is(err, ErrUnknownComponent) {
		t.Errorf("RestoreBudget(ghost) = %v, want ErrUnknownComponent", err)
	}
	if err := d.Deploy(mustParse(t, calcXML)); err != nil {
		t.Fatal(err)
	}
	// Restoring a never-revoked component is a no-op.
	if err := d.RestoreBudget("calc"); err != nil {
		t.Errorf("RestoreBudget on healthy component: %v", err)
	}
	if st := stateOf(t, d, "calc"); st != Active {
		t.Errorf("calc = %v after no-op restore, want ACTIVE", st)
	}
	// Revoking twice is idempotent.
	if err := d.RevokeBudget("calc", "first"); err != nil {
		t.Fatal(err)
	}
	if err := d.RevokeBudget("calc", "second"); err != nil {
		t.Fatal(err)
	}
	if st := stateOf(t, d, "calc"); st != Unsatisfied {
		t.Errorf("calc = %v after double revoke, want UNSATISFIED", st)
	}
	if err := d.RestoreBudget("calc"); err != nil {
		t.Fatal(err)
	}
	if st := stateOf(t, d, "calc"); st != Active {
		t.Errorf("calc = %v after restore, want ACTIVE", st)
	}
}
