package core

// Reference resolution engine: the literal transcription of the paper's
// re-resolve-everything reaction to run-time change, selected with
// Options.FullSweepResolve. Each pass deactivates every admitted
// component whose inports lost their providers, then tries to activate
// every waiting component, looping to a fixed point. It is O(n²)–O(n³)
// under churn and exists so the incremental worklist engine (resolve.go)
// can be differentially tested and benchmarked against it: both engines
// must produce identical states, events and reasons.

import (
	"repro/internal/descriptor"
	"repro/internal/policy"
)

// resolveOnce performs one deactivation sweep and one activation sweep.
func (d *DRCR) resolveOnce() (changed bool) {
	// Deactivation: an admitted component whose inports lost their
	// providers must go down (the Display case when Calculation stops).
	// The sweep walks a snapshot of the admitted set (sorted by name), as
	// deactivations shrink it mid-loop.
	d.mu.Lock()
	// One reference pass = one resolution round; the sweep has no staged
	// worklists, so the depth arguments are zero.
	d.obs.ResolveRound(d.kernel.Now(), 0, 0)
	d.flushAdmittedLocked()
	d.admittedScratch = d.admittedScratch[:0]
	for _, ct := range d.admitted {
		d.admittedScratch = append(d.admittedScratch, ct.Name)
	}
	for _, name := range d.admittedScratch {
		c, ok := d.comps[name]
		if !ok || (c.state != Active && c.state != Suspended) {
			continue
		}
		if missing := d.unsatisfiedInportLocked(c, c.mode); missing != "" {
			d.deactivateLocked(c, "inport "+missing+" lost its provider")
			d.setStateLocked(c, Unsatisfied, "inport "+missing+" lost its provider")
			changed = true
		}
	}
	names := d.sortedNamesLocked()
	d.mu.Unlock()

	// Activation: try to bring up everything whose functional constraints
	// hold and that every resolving service admits.
	for _, name := range names {
		d.mu.Lock()
		c, ok := d.comps[name]
		if !ok || (c.state != Unsatisfied && c.state != Satisfied) {
			d.mu.Unlock()
			continue
		}
		if c.revoked {
			// A revoked budget bars re-admission until RestoreBudget; the
			// lifecycle stays where the revocation left it.
			d.mu.Unlock()
			continue
		}
		modes, missing := d.feasibleModesLocked(c)
		if len(modes) == 0 {
			if c.state == Satisfied {
				d.setStateLocked(c, Unsatisfied, "inport "+missing+" unsatisfied")
				changed = true
			} else {
				c.lastReason = "inport " + missing + " unsatisfied"
			}
			d.mu.Unlock()
			continue
		}
		if c.state == Unsatisfied {
			d.setStateLocked(c, Satisfied, "functional constraints satisfied")
			changed = true
			// Chain the admission verdict to the move that enabled it,
			// mirroring the worklist engine.
			c.obsCause = c.lastSpan
		}
		view := d.viewLocked()
		desc := c.desc
		var stack [4]int
		ms := append(stack[:0], modes...)
		d.mu.Unlock()

		// Consult resolving services outside the lock: customized
		// resolvers live in the service registry and may call back.
		decision, mode, note := d.admitWalk(view, desc, ms, d.consultResolversRef)
		d.mu.Lock()
		c, ok = d.comps[name]
		if !ok || c.state != Satisfied {
			d.mu.Unlock()
			continue
		}
		if !decision.Admit {
			d.noteDenyLocked(c, "admission denied: "+decision.Reason)
			d.mu.Unlock()
			continue
		}
		c.mode = mode
		c.admitNote = note
		if c.desc.Budget != nil {
			c.admitVerdict = decision.Verdict
		}
		if err := d.activateLocked(c); err != nil {
			c.mode = 0
			c.admitVerdict = ""
			c.lastReason = "activation failed: " + err.Error()
			d.mu.Unlock()
			continue
		}
		d.mu.Unlock()
		changed = true
	}

	// Best-effort promotion: once the sweep settles, let one degraded
	// component step toward its full contract; runResolve loops resolveOnce
	// to a fixed point, so every promotable component gets its turn.
	d.mu.Lock()
	if len(d.degraded) > 0 && d.promotePendingLocked(d.consultResolversRef) {
		changed = true
	}
	d.mu.Unlock()
	return changed
}

// consultResolversRef rebuilds the resolver chain from the registry for
// every consult, as the reference engine always did.
func (d *DRCR) consultResolversRef(view policy.View, cand policy.Contract) policy.Decision {
	chain := policy.Chain{d.opts.Internal}
	for _, ref := range d.fw.ServiceReferences(policy.ServiceInterface, nil) {
		if r, ok := d.fw.Service(ref).(policy.Resolver); ok {
			chain = append(chain, r)
		}
	}
	return chain.Admit(view, cand)
}

// unsatisfiedInportScanLocked is the index-free satisfaction check for
// service mode m (dropped inports are exempt).
func (d *DRCR) unsatisfiedInportScanLocked(c *Component, mode int) string {
	for _, in := range c.desc.InPorts {
		if !c.desc.RequiresInport(mode, in.Name) {
			continue
		}
		if d.findProviderScanLocked(c.desc.Name, in) == "" {
			return in.Name
		}
	}
	return ""
}

// findProviderScanLocked walks the whole admitted set (sorted by name)
// looking for a compatible outport — the scan the provider index
// replaces.
func (d *DRCR) findProviderScanLocked(self string, in descriptor.Port) string {
	d.flushAdmittedLocked()
	for _, ct := range d.admitted {
		if ct.Name == self {
			continue
		}
		p, ok := d.comps[ct.Name]
		if !ok {
			continue
		}
		for _, out := range p.desc.OutPorts {
			if out.CanSatisfy(in) {
				return ct.Name
			}
		}
	}
	// Same remote fallback as the worklist engine (shared helper), so the
	// two engines keep making identical provider choices.
	return d.remoteProviderLocked(in)
}
