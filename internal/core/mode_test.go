package core

import (
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/osgi"
	"repro/internal/rtos"
)

// calcModesXML is the calculation job with two degraded fallbacks: eco
// halves the budget at a quarter rate, min runs at a tenth.
const calcModesXML = `<component name="calc" type="periodic" cpuusage="0.5">
  <implementation bincode="demo.Calculation"/>
  <periodictask frequence="1000" runoncup="0" priority="1"/>
  <outport name="lat" interface="RTAI.SHM" type="Integer" size="100"/>
  <mode name="eco" frequence="250" cpuusage="0.25"/>
  <mode name="min" frequence="100" cpuusage="0.05"/>
</component>`

const hogXML = `<component name="hog" type="periodic" cpuusage="0.9">
  <implementation bincode="demo.Hog"/>
  <periodictask frequence="100" runoncup="0" priority="3"/>
</component>`

// dispModesXML consumes calc's outport in full mode but can serve
// without it in its "solo" fallback.
const dispModesXML = `<component name="disp" type="periodic" cpuusage="0.1">
  <implementation bincode="demo.Display"/>
  <periodictask frequence="4" runoncup="0" priority="2"/>
  <inport name="lat" interface="RTAI.SHM" type="Integer" size="100"/>
  <mode name="solo" cpuusage="0.05" drops="lat"/>
</component>`

func modeOf(t *testing.T, d *DRCR, name string) (int, string) {
	t.Helper()
	info, ok := d.Component(name)
	if !ok {
		t.Fatalf("component %s unknown", name)
	}
	return info.Mode, info.ModeName
}

// TestDowngradeBeforeDeny pins the admission walk: a component whose
// full contract does not fit is admitted in its best feasible mode
// instead of being denied, and steps back to the full contract when the
// capacity returns.
func TestDowngradeBeforeDeny(t *testing.T) {
	for _, fullSweep := range []bool{false, true} {
		name := "worklist"
		if fullSweep {
			name = "fullsweep"
		}
		t.Run(name, func(t *testing.T) {
			fw := osgi.NewFramework()
			k := rtos.NewKernel(rtos.Config{NumCPUs: 2, Timing: &noNoise, Seed: 17})
			d, err := New(fw, k, Options{FullSweepResolve: fullSweep})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(d.Close)

			if err := d.Deploy(mustParse(t, hogXML)); err != nil {
				t.Fatal(err)
			}
			if err := d.Deploy(mustParse(t, calcModesXML)); err != nil {
				t.Fatal(err)
			}
			// 0.9 + 0.5 > 1.0 and 0.9 + 0.25 > 1.0, but 0.9 + 0.05 fits:
			// calc must be active in "min", not denied.
			if got := stateOf(t, d, "calc"); got != Active {
				t.Fatalf("calc state = %v, want Active", got)
			}
			if m, mn := modeOf(t, d, "calc"); m != 2 || mn != "min" {
				t.Fatalf("calc mode = %d (%s), want 2 (min)", m, mn)
			}
			info, _ := d.Component("calc")
			if info.CPUUsage != 0.05 {
				t.Fatalf("degraded CPUUsage = %g, want the admitted mode's 0.05", info.CPUUsage)
			}
			spans := d.Obs().Why("calc")
			found := false
			for _, s := range spans {
				if s.Kind == obs.KindDowngrade && strings.Contains(s.Detail, "downgrade-before-deny") {
					found = true
				}
			}
			if !found {
				t.Fatalf("no downgrade-before-deny span for calc; got %v", spans)
			}

			// Freeing the hog promotes calc stepwise back to the full
			// contract within one Resolve fixed point.
			if err := d.Remove("hog"); err != nil {
				t.Fatal(err)
			}
			if m, mn := modeOf(t, d, "calc"); m != 0 || mn != "full" {
				t.Fatalf("after capacity freed: calc mode = %d (%s), want 0 (full)", m, mn)
			}
			if got := stateOf(t, d, "calc"); got != Active {
				t.Fatalf("calc state after promotion = %v, want Active", got)
			}
			up := 0
			for _, s := range d.Obs().Spans() {
				if s.Kind == obs.KindUpgrade && s.Component == "calc" {
					up++
				}
			}
			if up != 2 {
				t.Fatalf("want 2 upgrade spans (min->eco->full), got %d", up)
			}
		})
	}
}

// TestDowngradeAndPromotionHold pins the guard-facing API: Downgrade
// steps an active component down and bars promotion until
// AllowPromotion lifts the hold.
func TestDowngradeAndPromotionHold(t *testing.T) {
	_, _, d := newRig(t)
	if err := d.Deploy(mustParse(t, calcModesXML)); err != nil {
		t.Fatal(err)
	}
	if m, _ := modeOf(t, d, "calc"); m != 0 {
		t.Fatalf("calc starts in mode %d, want 0", m)
	}
	if err := d.Downgrade("calc", "overrun observed"); err != nil {
		t.Fatal(err)
	}
	if m, mn := modeOf(t, d, "calc"); m != 1 || mn != "eco" {
		t.Fatalf("after Downgrade: mode = %d (%s), want 1 (eco)", m, mn)
	}
	if got := stateOf(t, d, "calc"); got != Active {
		t.Fatalf("calc state after downgrade = %v, want Active (stay available)", got)
	}
	// Capacity is plentiful, but the hold must keep the mode pinned.
	d.Resolve()
	if m, _ := modeOf(t, d, "calc"); m != 1 {
		t.Fatalf("promotion ran despite hold: mode = %d", m)
	}
	if err := d.AllowPromotion("calc"); err != nil {
		t.Fatal(err)
	}
	if m, mn := modeOf(t, d, "calc"); m != 0 || mn != "full" {
		t.Fatalf("after AllowPromotion: mode = %d (%s), want 0 (full)", m, mn)
	}
	if err := d.Downgrade("calc", "again"); err != nil {
		t.Fatal(err)
	}
	if err := d.Downgrade("calc", "worse"); err != nil {
		t.Fatal(err)
	}
	if m, mn := modeOf(t, d, "calc"); m != 2 || mn != "min" {
		t.Fatalf("double downgrade: mode = %d (%s), want 2 (min)", m, mn)
	}
	if err := d.Downgrade("calc", "no lower"); err == nil {
		t.Fatal("Downgrade below the last mode must fail")
	}
}

// TestModeDropsKeepServing pins optional-input shedding: a component
// whose fallback drops an inport activates degraded without the
// provider, keeps serving when the provider leaves, and returns to the
// full contract when it comes back.
func TestModeDropsKeepServing(t *testing.T) {
	_, _, d := newRig(t)
	if err := d.Deploy(mustParse(t, dispModesXML)); err != nil {
		t.Fatal(err)
	}
	// No provider for lat: full mode is infeasible, solo drops the port.
	if got := stateOf(t, d, "disp"); got != Active {
		t.Fatalf("disp state = %v, want Active in solo mode", got)
	}
	if m, mn := modeOf(t, d, "disp"); m != 1 || mn != "solo" {
		t.Fatalf("disp mode = %d (%s), want 1 (solo)", m, mn)
	}
	info, _ := d.Component("disp")
	if _, bound := info.Bindings["lat"]; bound {
		t.Fatal("dropped inport must stay unbound")
	}

	// The provider's arrival promotes disp to the full contract and binds
	// the port.
	if err := d.Deploy(mustParse(t, calcXML)); err != nil {
		t.Fatal(err)
	}
	if m, mn := modeOf(t, d, "disp"); m != 0 || mn != "full" {
		t.Fatalf("with provider: disp mode = %d (%s), want 0 (full)", m, mn)
	}
	info, _ = d.Component("disp")
	if info.Bindings["lat"] != "calc" {
		t.Fatalf("lat binding = %q, want calc", info.Bindings["lat"])
	}

	// The provider leaving downgrades disp back to solo instead of
	// cascading it down.
	if err := d.Remove("calc"); err != nil {
		t.Fatal(err)
	}
	if got := stateOf(t, d, "disp"); got != Active {
		t.Fatalf("disp state after provider loss = %v, want Active (degraded)", got)
	}
	if m, mn := modeOf(t, d, "disp"); m != 1 || mn != "solo" {
		t.Fatalf("disp mode after provider loss = %d (%s), want 1 (solo)", m, mn)
	}
}

// TestCrashAndEnable pins the supervisor-facing API: Crash lands the
// component DISABLED (no self-recovery), Enable re-enters admission.
func TestCrashAndEnable(t *testing.T) {
	_, _, d := newRig(t)
	if err := d.Deploy(mustParse(t, calcXML)); err != nil {
		t.Fatal(err)
	}
	if err := d.Deploy(mustParse(t, displayXML)); err != nil {
		t.Fatal(err)
	}
	if got := stateOf(t, d, "disp"); got != Active {
		t.Fatalf("disp = %v, want Active", got)
	}
	if err := d.Crash("calc", "fault injected"); err != nil {
		t.Fatal(err)
	}
	if got := stateOf(t, d, "calc"); got != Disabled {
		t.Fatalf("calc after crash = %v, want Disabled", got)
	}
	if got := stateOf(t, d, "disp"); got != Unsatisfied {
		t.Fatalf("disp after provider crash = %v, want Unsatisfied", got)
	}
	info, _ := d.Component("calc")
	if !strings.Contains(info.LastReason, "crashed") {
		t.Fatalf("calc reason = %q, want a crash reason", info.LastReason)
	}
	if err := d.Crash("calc", "idempotent on disabled"); err != nil {
		t.Fatal(err)
	}
	if err := d.Enable("calc"); err != nil {
		t.Fatal(err)
	}
	if got := stateOf(t, d, "calc"); got != Active {
		t.Fatalf("calc after enable = %v, want Active", got)
	}
	if got := stateOf(t, d, "disp"); got != Active {
		t.Fatalf("disp after restart = %v, want Active", got)
	}
}
