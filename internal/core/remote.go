package core

// Remote port federation: the DRCR's view of port topics provided or
// consumed by components on *other* nodes of a cluster (package cluster).
//
// A remote provider entry says "an admitted component on another node
// exports a compatible outport on this topic; its data is replicated into
// this kernel's IPC registry by the federation layer". Both resolve
// engines consult the same index, after the local admitted set: a local
// provider always wins (no network hop), remote origins are walked in
// sorted order, so provider choice stays deterministic and
// engine-independent. A remote consumer entry is the reverse edge — a
// component here is known to feed components elsewhere — kept so the
// federation layer and the console can introspect export demand; it does
// not affect resolution (outports need no consumers to activate).
//
// Entries are installed and withdrawn by provision control messages
// delivered over the simulated network, so they propagate with real
// latency and are subject to partitions: a consumer node keeps a stale
// remote provider entry until the unprovision message arrives (or the
// failure detector declares the origin node lost).

import (
	"fmt"
	"sort"

	"repro/internal/descriptor"
)

// remoteEntry is one remote provision of a topic.
type remoteEntry struct {
	origin string // "component@node" — globally unique, sorted key
	port   descriptor.Port
}

// AddRemoteProvider registers origin (conventionally "component@nodeN")
// as a remote provider of the topic declared by out, an outport as
// declared at the providing component. Waiting consumers of the topic
// are staged for re-resolution.
func (d *DRCR) AddRemoteProvider(out descriptor.Port, origin string) error {
	if origin == "" || out.Direction != descriptor.Out {
		return fmt.Errorf("core: remote provider needs an origin and an outport, got %q/%v", origin, out.Direction)
	}
	t := d.cones.lockAll()
	defer d.cones.unlock(t)
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return ErrClosed
	}
	key := keyOf(out)
	if d.remoteProv == nil {
		d.remoteProv = map[portKey][]remoteEntry{}
	}
	d.remoteProv[key] = insertRemote(d.remoteProv[key], remoteEntry{origin: origin, port: out})
	// A new provider can satisfy waiting consumers; it can also change the
	// provider choice of nothing that is already admitted (local providers
	// win and rebinding is not done in place), so staging the topic's
	// waiting consumers is exactly the dirty set.
	for _, cn := range d.consIndex[key] {
		d.enqueueActLocked(cn)
	}
	d.mu.Unlock()
	d.resolveDelta()
	return nil
}

// RemoveRemoteProvider withdraws a remote provision. Consumers bound to
// it cascade through resolution exactly like consumers of a departed
// local provider.
func (d *DRCR) RemoveRemoteProvider(out descriptor.Port, origin string) error {
	t := d.cones.lockAll()
	defer d.cones.unlock(t)
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return ErrClosed
	}
	key := keyOf(out)
	es := removeRemote(d.remoteProv[key], origin)
	if len(es) == 0 {
		delete(d.remoteProv, key)
	} else {
		d.remoteProv[key] = es
	}
	for _, cn := range d.consIndex[key] {
		d.enqueueDeactLocked(cn)
	}
	d.mu.Unlock()
	d.resolveDelta()
	return nil
}

// AddRemoteConsumer records that origin (a component on another node)
// consumes the given topic from this node — the export-demand edge the
// federation layer forwards data for.
func (d *DRCR) AddRemoteConsumer(in descriptor.Port, origin string) error {
	if origin == "" {
		return fmt.Errorf("core: remote consumer needs an origin")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.remoteCons == nil {
		d.remoteCons = map[portKey][]string{}
	}
	key := keyOf(in)
	d.remoteCons[key] = insertName(d.remoteCons[key], origin)
	return nil
}

// RemoveRemoteConsumer withdraws an export-demand edge.
func (d *DRCR) RemoveRemoteConsumer(in descriptor.Port, origin string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	key := keyOf(in)
	ns := removeName(d.remoteCons[key], origin)
	if len(ns) == 0 {
		delete(d.remoteCons, key)
	} else {
		d.remoteCons[key] = ns
	}
	return nil
}

// RemoteProvision is one row of the read-only remote index snapshot.
type RemoteProvision struct {
	Topic  string
	Origin string
}

// RemoteProviders lists the remote provider index sorted by topic then
// origin — a deterministic walk safe to feed into digests and tables.
func (d *DRCR) RemoteProviders() []RemoteProvision {
	d.mu.Lock()
	defer d.mu.Unlock()
	return snapshotRemoteLocked(d.remoteProv)
}

// RemoteConsumers lists the remote consumer index sorted by topic then
// origin.
func (d *DRCR) RemoteConsumers() []RemoteProvision {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]RemoteProvision, 0, len(d.remoteCons))
	for key, origins := range d.remoteCons {
		for _, o := range origins {
			out = append(out, RemoteProvision{Topic: key.name, Origin: o})
		}
	}
	sortProvisions(out)
	return out
}

func snapshotRemoteLocked(m map[portKey][]remoteEntry) []RemoteProvision {
	out := make([]RemoteProvision, 0, len(m))
	for key, es := range m {
		for _, e := range es {
			out = append(out, RemoteProvision{Topic: key.name, Origin: e.origin})
		}
	}
	sortProvisions(out)
	return out
}

func sortProvisions(ps []RemoteProvision) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Topic != ps[j].Topic {
			return ps[i].Topic < ps[j].Topic
		}
		return ps[i].Origin < ps[j].Origin
	})
}

// remoteProviderLocked answers a provider query from the remote index —
// the shared fallback both resolve engines call after the local admitted
// set came up empty, so their choices are identical by construction.
func (d *DRCR) remoteProviderLocked(in descriptor.Port) string {
	if in.Direction != descriptor.In {
		return ""
	}
	for _, e := range d.remoteProv[keyOf(in)] {
		if e.port.CanSatisfy(in) {
			return e.origin
		}
	}
	return ""
}

func insertRemote(es []remoteEntry, e remoteEntry) []remoteEntry {
	i := sort.Search(len(es), func(i int) bool { return es[i].origin >= e.origin })
	if i < len(es) && es[i].origin == e.origin {
		es[i] = e
		return es
	}
	es = append(es, remoteEntry{})
	copy(es[i+1:], es[i:])
	es[i] = e
	return es
}

func removeRemote(es []remoteEntry, origin string) []remoteEntry {
	i := sort.Search(len(es), func(i int) bool { return es[i].origin >= origin })
	if i >= len(es) || es[i].origin != origin {
		return es
	}
	return append(es[:i], es[i+1:]...)
}
