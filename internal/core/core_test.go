package core

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/descriptor"
	"repro/internal/ldap"
	"repro/internal/manifest"
	"repro/internal/osgi"
	"repro/internal/policy"
	"repro/internal/rtos"
)

var noNoise = rtos.TimingModel{}

func newRig(t *testing.T) (*osgi.Framework, *rtos.Kernel, *DRCR) {
	t.Helper()
	fw := osgi.NewFramework()
	k := rtos.NewKernel(rtos.Config{NumCPUs: 2, Timing: &noNoise, Seed: 17})
	d, err := New(fw, k, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return fw, k, d
}

// calcXML / displayXML mirror the paper's §4.2 component pair: a 1000 Hz
// calculation task exporting shared memory and a 4 Hz display task that
// functionally depends on it.
const calcXML = `<component name="calc" desc="simulated computing job" type="periodic" cpuusage="0.05">
  <implementation bincode="demo.Calculation"/>
  <periodictask frequence="1000" runoncup="0" priority="1"/>
  <outport name="lat" interface="RTAI.SHM" type="Integer" size="100"/>
</component>`

const displayXML = `<component name="disp" desc="display scheduling latency" type="periodic" cpuusage="0.01">
  <implementation bincode="demo.Display"/>
  <periodictask frequence="4" runoncup="0" priority="2"/>
  <inport name="lat" interface="RTAI.SHM" type="Integer" size="100"/>
</component>`

func mustParse(t *testing.T, src string) *descriptor.Component {
	t.Helper()
	c, err := descriptor.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func stateOf(t *testing.T, d *DRCR, name string) State {
	t.Helper()
	info, ok := d.Component(name)
	if !ok {
		t.Fatalf("component %s unknown", name)
	}
	return info.State
}

// TestDynamicityScenario reproduces §4.3 end to end: Display deployed
// first stays Unsatisfied; Calculation's arrival satisfies and activates
// it after the resolving services agree; stopping Calculation cascades
// Display back down.
func TestDynamicityScenario(t *testing.T) {
	fw, k, d := newRig(t)

	// The paper's customized resolving service answering true.
	custom := policy.Static{AdmitAll: true, Label: "customized"}
	if _, err := fw.RegisterService([]string{policy.ServiceInterface}, policy.Resolver(custom), nil); err != nil {
		t.Fatal(err)
	}

	if err := d.Deploy(mustParse(t, displayXML)); err != nil {
		t.Fatal(err)
	}
	if got := stateOf(t, d, "disp"); got != Unsatisfied {
		t.Fatalf("display alone = %v, want UNSATISFIED", got)
	}
	info, _ := d.Component("disp")
	if !strings.Contains(info.LastReason, "lat") {
		t.Fatalf("reason %q does not name the missing inport", info.LastReason)
	}

	if err := d.Deploy(mustParse(t, calcXML)); err != nil {
		t.Fatal(err)
	}
	if got := stateOf(t, d, "calc"); got != Active {
		t.Fatalf("calc = %v", got)
	}
	if got := stateOf(t, d, "disp"); got != Active {
		t.Fatalf("display after calc arrival = %v, want ACTIVE", got)
	}
	info, _ = d.Component("disp")
	if info.Bindings["lat"] != "calc" {
		t.Fatalf("bindings = %v", info.Bindings)
	}

	// Both RT tasks really run.
	if err := k.Run(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	calcTask, ok := k.Task("calc")
	if !ok {
		t.Fatal("calc task missing")
	}
	if calcTask.Stats().Jobs < 99 {
		t.Fatalf("calc jobs = %d", calcTask.Stats().Jobs)
	}

	// Stopping Calculation: DRCR gets notified and finds Display
	// unsatisfied; it is deactivated.
	if err := d.Remove("calc"); err != nil {
		t.Fatal(err)
	}
	if got := stateOf(t, d, "disp"); got != Unsatisfied {
		t.Fatalf("display after calc removal = %v, want UNSATISFIED", got)
	}
	if _, ok := k.Task("disp"); ok {
		t.Fatal("display RT task survived deactivation")
	}
	if _, err := k.IPC().SHM("lat"); err == nil {
		t.Fatal("calc's outport SHM survived removal")
	}

	// Redeploying Calculation brings Display back automatically.
	if err := d.Deploy(mustParse(t, calcXML)); err != nil {
		t.Fatal(err)
	}
	if got := stateOf(t, d, "disp"); got != Active {
		t.Fatalf("display after calc redeploy = %v, want ACTIVE", got)
	}
}

func TestCustomResolverDenies(t *testing.T) {
	fw, _, d := newRig(t)
	deny := policy.Static{AdmitAll: false, Label: "veto"}
	if _, err := fw.RegisterService([]string{policy.ServiceInterface}, policy.Resolver(deny), nil); err != nil {
		t.Fatal(err)
	}
	if err := d.Deploy(mustParse(t, calcXML)); err != nil {
		t.Fatal(err)
	}
	if got := stateOf(t, d, "calc"); got != Satisfied {
		t.Fatalf("vetoed component = %v, want SATISFIED (functionally ok, not admitted)", got)
	}
	info, _ := d.Component("calc")
	if !strings.Contains(info.LastReason, "veto") {
		t.Fatalf("reason %q does not name the vetoing resolver", info.LastReason)
	}
}

func TestAdmissionEnforcesBudgets(t *testing.T) {
	_, _, d := newRig(t)
	mk := func(name string, usage string) *descriptor.Component {
		return mustParse(t, `<component name="`+name+`" type="periodic" cpuusage="`+usage+`">
		  <implementation bincode="x"/>
		  <periodictask frequence="100" runoncup="0" priority="3"/>
		</component>`)
	}
	if err := d.Deploy(mk("a", "0.6")); err != nil {
		t.Fatal(err)
	}
	if err := d.Deploy(mk("b", "0.3")); err != nil {
		t.Fatal(err)
	}
	if err := d.Deploy(mk("c", "0.2")); err != nil { // would make 1.1
		t.Fatal(err)
	}
	if stateOf(t, d, "a") != Active || stateOf(t, d, "b") != Active {
		t.Fatal("fitting components not active")
	}
	if got := stateOf(t, d, "c"); got != Satisfied {
		t.Fatalf("over-budget component = %v, want SATISFIED (admission denied)", got)
	}
	// Freeing budget lets the waiting component in on the next resolve.
	if err := d.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if got := stateOf(t, d, "c"); got != Active {
		t.Fatalf("after budget freed = %v, want ACTIVE", got)
	}
}

func TestAdmissionIsPerCPU(t *testing.T) {
	_, _, d := newRig(t)
	mk := func(name, cpuID string) *descriptor.Component {
		return mustParse(t, `<component name="`+name+`" type="periodic" cpuusage="0.8">
		  <implementation bincode="x"/>
		  <periodictask frequence="100" runoncup="`+cpuID+`" priority="3"/>
		</component>`)
	}
	if err := d.Deploy(mk("a", "0")); err != nil {
		t.Fatal(err)
	}
	if err := d.Deploy(mk("b", "1")); err != nil {
		t.Fatal(err)
	}
	if stateOf(t, d, "a") != Active || stateOf(t, d, "b") != Active {
		t.Fatal("per-CPU admission wrongly coupled the processors")
	}
}

func TestDeployValidation(t *testing.T) {
	_, _, d := newRig(t)
	if err := d.Deploy(nil); err == nil {
		t.Fatal("nil descriptor accepted")
	}
	if err := d.Deploy(mustParse(t, calcXML)); err != nil {
		t.Fatal(err)
	}
	if err := d.Deploy(mustParse(t, calcXML)); err == nil {
		t.Fatal("duplicate name accepted (names are globally unique)")
	}
	tooManyCPUs := mustParse(t, `<component name="far" type="periodic" cpuusage="0.1">
	  <implementation bincode="x"/>
	  <periodictask frequence="10" runoncup="7" priority="1"/>
	</component>`)
	if err := d.Deploy(tooManyCPUs); err == nil {
		t.Fatal("cpu out of range accepted")
	}
}

func TestEnableDisable(t *testing.T) {
	_, k, d := newRig(t)
	disabled := mustParse(t, `<component name="late" type="periodic" enabled="false" cpuusage="0.1">
	  <implementation bincode="x"/>
	  <periodictask frequence="100" runoncup="0" priority="1"/>
	</component>`)
	if err := d.Deploy(disabled); err != nil {
		t.Fatal(err)
	}
	if got := stateOf(t, d, "late"); got != Disabled {
		t.Fatalf("state = %v, want DISABLED until enableRTComponent", got)
	}
	if _, ok := k.Task("late"); ok {
		t.Fatal("disabled component has an RT task")
	}
	if err := d.Enable("late"); err != nil {
		t.Fatal(err)
	}
	if got := stateOf(t, d, "late"); got != Active {
		t.Fatalf("after enable = %v", got)
	}
	if err := d.Disable("late"); err != nil {
		t.Fatal(err)
	}
	if got := stateOf(t, d, "late"); got != Disabled {
		t.Fatalf("after disable = %v", got)
	}
	if _, ok := k.Task("late"); ok {
		t.Fatal("disabled component kept its RT task")
	}
	if err := d.Enable("nope"); !errors.Is(err, ErrUnknownComponent) {
		t.Fatalf("Enable unknown: %v", err)
	}
	if err := d.Disable("nope"); !errors.Is(err, ErrUnknownComponent) {
		t.Fatalf("Disable unknown: %v", err)
	}
}

func TestSuspendResumeKeepsContractAdmitted(t *testing.T) {
	_, k, d := newRig(t)
	if err := d.Deploy(mustParse(t, calcXML)); err != nil {
		t.Fatal(err)
	}
	if err := d.Deploy(mustParse(t, displayXML)); err != nil {
		t.Fatal(err)
	}
	if err := d.Suspend("calc"); err != nil {
		t.Fatal(err)
	}
	if got := stateOf(t, d, "calc"); got != Suspended {
		t.Fatalf("calc = %v", got)
	}
	// Suspension is not departure: the display's functional constraint
	// still holds (instance and ports exist).
	if got := stateOf(t, d, "disp"); got != Active {
		t.Fatalf("disp while provider suspended = %v, want ACTIVE", got)
	}
	// The budget stays admitted.
	view := d.GlobalView()
	if len(view.Admitted) != 2 {
		t.Fatalf("admitted contracts = %d, want 2", len(view.Admitted))
	}
	// The RT task actually parks (after serving the mailbox command).
	if err := k.Run(5 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	task, _ := k.Task("calc")
	if task.State() != rtos.TaskSuspended {
		t.Fatalf("task state = %v", task.State())
	}
	if err := d.Resume("calc"); err != nil {
		t.Fatal(err)
	}
	if task.State() != rtos.TaskActive {
		t.Fatalf("task state after resume = %v", task.State())
	}
	// Guards.
	if err := d.Resume("calc"); err == nil {
		t.Fatal("resume of active component accepted")
	}
	if err := d.Suspend("disp"); err != nil {
		t.Fatal(err)
	}
	if err := d.Suspend("disp"); err == nil {
		t.Fatal("double suspend accepted")
	}
}

func TestManagementServicePublished(t *testing.T) {
	fw, k, d := newRig(t)
	if err := d.Deploy(mustParse(t, calcXML)); err != nil {
		t.Fatal(err)
	}
	refs := fw.ServiceReferences(ManagementInterface, ldap.MustParse("(drcom.component=calc)"))
	if len(refs) != 1 {
		t.Fatalf("management services = %d", len(refs))
	}
	mgmt, ok := fw.Service(refs[0]).(Management)
	if !ok {
		t.Fatalf("service is %T", fw.Service(refs[0]))
	}
	// Drive the component through the discovered service, as an external
	// adaptation manager would.
	if err := mgmt.SetProperty("gain", "4"); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(5 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if v, _ := mgmt.Property("gain"); v != "4" {
		t.Fatalf("gain = %q", v)
	}
	st := mgmt.Status()
	if st.Jobs == 0 {
		t.Fatalf("status = %+v", st)
	}
	// Deactivation withdraws the service.
	if err := d.Remove("calc"); err != nil {
		t.Fatal(err)
	}
	if refs := fw.ServiceReferences(ManagementInterface, nil); len(refs) != 0 {
		t.Fatalf("management services after removal = %d", len(refs))
	}
}

func TestBundleDrivenLifecycle(t *testing.T) {
	fw, _, d := newRig(t)
	mkBundle := func(symbolic, res, xmlSrc string) *osgi.Bundle {
		m := manifest.New(symbolic, manifest.MustParseVersion("1.0"))
		m.DRComComponents = []string{res}
		b, err := fw.Install(osgi.Definition{
			Manifest:  m,
			Resources: map[string]string{res: xmlSrc},
		})
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	dispB := mkBundle("demo.display", "OSGI-INF/disp.xml", displayXML)
	if err := dispB.Start(); err != nil {
		t.Fatal(err)
	}
	if got := stateOf(t, d, "disp"); got != Unsatisfied {
		t.Fatalf("disp = %v", got)
	}
	calcB := mkBundle("demo.calc", "OSGI-INF/calc.xml", calcXML)
	if err := calcB.Start(); err != nil {
		t.Fatal(err)
	}
	if got := stateOf(t, d, "disp"); got != Active {
		t.Fatalf("disp after calc bundle start = %v", got)
	}
	info, _ := d.Component("calc")
	if info.Bundle != "demo.calc" {
		t.Fatalf("calc bundle = %q", info.Bundle)
	}
	// Stopping the calc bundle destroys its component and cascades.
	if err := calcB.Stop(); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Component("calc"); ok {
		t.Fatal("calc survived its bundle stop")
	}
	if got := stateOf(t, d, "disp"); got != Unsatisfied {
		t.Fatalf("disp after calc bundle stop = %v", got)
	}
	// Restart brings everything back.
	if err := calcB.Start(); err != nil {
		t.Fatal(err)
	}
	if got := stateOf(t, d, "disp"); got != Active {
		t.Fatalf("disp after calc bundle restart = %v", got)
	}
}

func TestPortCompatibilityChecked(t *testing.T) {
	_, _, d := newRig(t)
	// Producer exports Integer×100; consumer wants Integer×200 — name and
	// type match but the size constraint fails (§2.3 compatibility).
	if err := d.Deploy(mustParse(t, calcXML)); err != nil {
		t.Fatal(err)
	}
	big := mustParse(t, `<component name="dispb" type="periodic" cpuusage="0.01">
	  <implementation bincode="x"/>
	  <periodictask frequence="4" runoncup="0" priority="2"/>
	  <inport name="lat" interface="RTAI.SHM" type="Integer" size="200"/>
	</component>`)
	if err := d.Deploy(big); err != nil {
		t.Fatal(err)
	}
	if got := stateOf(t, d, "dispb"); got != Unsatisfied {
		t.Fatalf("size-incompatible consumer = %v, want UNSATISFIED", got)
	}
}

func TestEventLogRecordsTransitions(t *testing.T) {
	_, _, d := newRig(t)
	var seen []Event
	remove := d.AddListener(func(ev Event) { seen = append(seen, ev) })
	if err := d.Deploy(mustParse(t, calcXML)); err != nil {
		t.Fatal(err)
	}
	// Deploy → UNSATISFIED → SATISFIED → ACTIVE.
	if len(seen) < 3 {
		t.Fatalf("events = %v", seen)
	}
	last := seen[len(seen)-1]
	if last.To != Active || last.Component != "calc" {
		t.Fatalf("last event = %v", last)
	}
	for _, ev := range d.Events() {
		if ev.From != 0 && !CanTransition(ev.From, ev.To) {
			t.Fatalf("illegal transition logged: %v", ev)
		}
	}
	remove()
	d.ClearEvents()
	if err := d.Remove("calc"); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3 { // listener removed, nothing new
		t.Fatalf("listener survived removal: %v", seen)
	}
	if len(d.Events()) == 0 {
		t.Fatal("event log empty after Remove")
	}
}

func TestLifecycleTransitionRelation(t *testing.T) {
	// Exhaustively pin Figure 1: exactly these transitions are legal.
	type tr struct{ from, to State }
	legal := map[tr]bool{}
	for _, c := range []tr{
		{Disabled, Unsatisfied}, {Disabled, Destroyed},
		{Unsatisfied, Satisfied}, {Unsatisfied, Disabled}, {Unsatisfied, Destroyed},
		{Satisfied, Active}, {Satisfied, Unsatisfied}, {Satisfied, Disabled}, {Satisfied, Destroyed},
		{Active, Suspended}, {Active, Unsatisfied}, {Active, Disabled}, {Active, Destroyed},
		{Suspended, Active}, {Suspended, Unsatisfied}, {Suspended, Disabled}, {Suspended, Destroyed},
	} {
		legal[c] = true
	}
	states := []State{Disabled, Unsatisfied, Satisfied, Active, Suspended, Destroyed}
	for _, from := range states {
		for _, to := range states {
			want := legal[tr{from, to}]
			if got := CanTransition(from, to); got != want {
				t.Errorf("CanTransition(%v,%v) = %v, want %v", from, to, got, want)
			}
		}
	}
}

func TestBodyFactoryDataFlow(t *testing.T) {
	_, k, d := newRig(t)
	if err := d.RegisterBody("demo.Calculation", func(c *descriptor.Component) rtos.Body {
		return func(j *rtos.JobContext) {
			if shm, err := j.Kernel.IPC().SHM("lat"); err == nil {
				_ = shm.Set(0, int64(j.Index))
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	var reads []int64
	if err := d.RegisterBody("demo.Display", func(c *descriptor.Component) rtos.Body {
		return func(j *rtos.JobContext) {
			if shm, err := j.Kernel.IPC().SHM("lat"); err == nil {
				if v, err := shm.Get(0); err == nil {
					reads = append(reads, v)
				}
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := d.RegisterBody("demo.Display", nil); err == nil {
		t.Fatal("nil factory accepted")
	}
	if err := d.Deploy(mustParse(t, calcXML)); err != nil {
		t.Fatal(err)
	}
	if err := d.Deploy(mustParse(t, displayXML)); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if len(reads) < 3 {
		t.Fatalf("display reads = %d", len(reads))
	}
	if last := reads[len(reads)-1]; last < 900 {
		t.Fatalf("display saw stale data: last read %d", last)
	}
}

func TestExecTimePropertyOverride(t *testing.T) {
	_, k, d := newRig(t)
	src := `<component name="tiny" type="periodic" cpuusage="0.5">
	  <implementation bincode="x"/>
	  <periodictask frequence="100" runoncup="0" priority="1"/>
	  <property name="drcom.exectime.us" type="Integer" value="20"/>
	</component>`
	if err := d.Deploy(mustParse(t, src)); err != nil {
		t.Fatal(err)
	}
	task, ok := k.Task("tiny")
	if !ok {
		t.Fatal("task missing")
	}
	if got := task.Spec().ExecTime; got != 20*time.Microsecond {
		t.Fatalf("exec = %v, want property override", got)
	}
	// Bad override refuses activation but keeps the record.
	bad := `<component name="bad" type="periodic" cpuusage="0.1">
	  <implementation bincode="x"/>
	  <periodictask frequence="100" runoncup="0" priority="1"/>
	  <property name="drcom.exectime.us" type="Integer" value="-3"/>
	</component>`
	if err := d.Deploy(mustParse(t, bad)); err != nil {
		t.Fatal(err)
	}
	if got := stateOf(t, d, "bad"); got == Active {
		t.Fatal("bad exec override activated")
	}
}

func TestGlobalViewContracts(t *testing.T) {
	_, _, d := newRig(t)
	if err := d.Deploy(mustParse(t, calcXML)); err != nil {
		t.Fatal(err)
	}
	view := d.GlobalView()
	if view.NumCPUs != 2 || len(view.Admitted) != 1 {
		t.Fatalf("view = %+v", view)
	}
	ct := view.Admitted[0]
	if ct.Name != "calc" || ct.CPUUsage != 0.05 || ct.Period != time.Millisecond || ct.Priority != 1 {
		t.Fatalf("contract = %+v", ct)
	}
}

func TestCloseDestroysEverything(t *testing.T) {
	fw := osgi.NewFramework()
	k := rtos.NewKernel(rtos.Config{NumCPUs: 2, Timing: &noNoise, Seed: 17})
	d, err := New(fw, k, Options{})
	if err != nil {
		t.Fatal(err)
	}
	calc, err := descriptor.Parse(calcXML)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Deploy(calc); err != nil {
		t.Fatal(err)
	}
	d.Close()
	d.Close() // idempotent
	if _, ok := k.Task("calc"); ok {
		t.Fatal("RT task survived Close")
	}
	if err := d.Deploy(calc); !errors.Is(err, ErrClosed) {
		t.Fatalf("Deploy after Close: %v", err)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil, Options{}); err == nil {
		t.Fatal("nil deps accepted")
	}
}

func TestRemoveUnknown(t *testing.T) {
	_, _, d := newRig(t)
	if err := d.Remove("ghost"); !errors.Is(err, ErrUnknownComponent) {
		t.Fatalf("Remove unknown: %v", err)
	}
}
