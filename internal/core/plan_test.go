package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/descriptor"
	"repro/internal/manifest"
	"repro/internal/obs"
	"repro/internal/osgi"
	"repro/internal/plan"
	"repro/internal/rtos"
)

// planRig is one DRCR under plan-vs-event-path differential test.
type planRig struct {
	fw *osgi.Framework
	k  *rtos.Kernel
	d  *DRCR
}

func newPlanRig(t *testing.T, shards int, disableFastPath bool) *planRig {
	t.Helper()
	fw := osgi.NewFramework()
	k := rtos.NewKernel(rtos.Config{NumCPUs: 4, Timing: &noNoise, Seed: 31})
	d, err := New(fw, k, Options{Shards: shards, DisablePlanFastPath: disableFastPath})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return &planRig{fw: fw, k: k, d: d}
}

// deployBundle installs and starts a bundle carrying the given descriptor
// sources in order, mirroring drcom.System.DeployBundle.
func (r *planRig) deployBundle(t *testing.T, symbolic string, srcs []string) *osgi.Bundle {
	t.Helper()
	m := manifest.New(symbolic, manifest.MustParseVersion("1.0"))
	resources := map[string]string{}
	for i, src := range srcs {
		path := fmt.Sprintf("OSGI-INF/c%02d.xml", i)
		m.DRComComponents = append(m.DRComComponents, path)
		resources[path] = src
	}
	b, err := r.fw.Install(osgi.Definition{Manifest: m, Resources: resources})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	return b
}

// planCampaign drives one rig through a deployment scenario that a
// whole-bundle fast path must replicate exactly: an external provider
// already admitted, a bundle forming a diamond DAG with a leftover
// consumer and a disabled member, a second bundle consuming across the
// bundle boundary, churn (stop/start, enable, remove), and a redeploy of
// an identical bundle that on the fast system must hit the plan cache.
func planCampaign(t *testing.T, r *planRig) {
	t.Helper()
	// An external provider deployed the classic way, already admitted
	// before any bundle arrives.
	if err := r.d.Deploy(mustParse(t, churnXML("ext", 0, 0.01, nil, []string{"base"}))); err != nil {
		t.Fatal(err)
	}

	// Bundle 1: a diamond — src feeds mid1/mid2, sink joins them — plus
	// "orph" waiting on a topic nobody provides (leftover), "root"
	// consuming the pre-deployed external provider, and a disabled member.
	disabled := strings.Replace(
		churnXML("off", 2, 0.01, nil, nil),
		`type="periodic"`, `type="periodic" enabled="false"`, 1)
	diamond := []string{
		churnXML("src", 0, 0.01, nil, []string{"ta"}),
		churnXML("mid1", 1, 0.01, []string{"ta"}, []string{"tb"}),
		churnXML("mid2", 2, 0.01, []string{"ta"}, []string{"tc"}),
		churnXML("sink", 3, 0.01, []string{"tb", "tc"}, nil),
		churnXML("orph", 1, 0.01, []string{"nowhr"}, nil),
		churnXML("root", 0, 0.01, []string{"base"}, nil),
		disabled,
	}
	b1 := r.deployBundle(t, "plan.diamond", diamond)

	// Bundle 2 consumes across the bundle boundary and feeds the orphan.
	chain := []string{
		churnXML("hub", 2, 0.01, []string{"tb"}, []string{"nowhr"}),
		churnXML("leaf", 3, 0.01, []string{"nowhr"}, nil),
	}
	b2 := r.deployBundle(t, "plan.chain", chain)

	// Churn: lifecycle ops between deploys, then teardown and an identical
	// redeploy — the fast system must serve it from the plan cache.
	if err := r.d.Enable("off"); err != nil {
		t.Fatal(err)
	}
	if err := r.d.Disable("mid2"); err != nil {
		t.Fatal(err)
	}
	if err := b2.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := b2.Start(); err != nil {
		t.Fatal(err)
	}
	if err := r.d.Enable("mid2"); err != nil {
		t.Fatal(err)
	}
	// Tear both bundles down (b2 first, so no waiter outlives b1) and
	// redeploy the identical diamond on the now-quiet system: the fast
	// system must serve it straight from the plan cache.
	if err := b2.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := b2.Uninstall(); err != nil {
		t.Fatal(err)
	}
	if err := b1.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := b1.Uninstall(); err != nil {
		t.Fatal(err)
	}
	r.deployBundle(t, "plan.diamond2", diamond)

	// Bundle 3 overflows one CPU's budget mid-batch, forcing the admission
	// dry-run (fast system) and the deny path (event system) to agree that
	// only the event path can express the outcome.
	heavy := []string{
		churnXML("hvy1", 1, 0.45, nil, nil),
		churnXML("hvy2", 1, 0.45, nil, nil),
		churnXML("hvy3", 1, 0.45, nil, nil),
	}
	r.deployBundle(t, "plan.heavy", heavy)
}

// TestPlanApplyDifferential deploys identical whole-bundle campaigns on a
// fast-path system and a DisablePlanFastPath system and requires
// byte-identical event logs, obs digests (span IDs and causes included),
// stream digests, and final states — at shard counts 1 and 4 — while
// asserting the fast system really exercised plan-apply and its cache.
func TestPlanApplyDifferential(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			fast := newPlanRig(t, shards, false)
			slow := newPlanRig(t, shards, true)
			planCampaign(t, fast)
			planCampaign(t, slow)

			if f, s := traceDigest(fast.d.Events()), traceDigest(slow.d.Events()); f != s {
				fe, se := fast.d.Events(), slow.d.Events()
				t.Errorf("event traces diverge (fast %d events, slow %d events)", len(fe), len(se))
				for i := 0; i < len(fe) || i < len(se); i++ {
					var a, b string
					if i < len(fe) {
						a = fe[i].String()
					}
					if i < len(se) {
						b = se[i].String()
					}
					if a != b {
						t.Fatalf("first divergence at event %d:\n  fast: %s\n  slow: %s", i, a, b)
					}
				}
			}
			if f, s := fast.d.Obs().Digest(), slow.d.Obs().Digest(); f != s {
				t.Errorf("obs digests diverge: fast %s slow %s", f[:12], s[:12])
			}
			if f, s := fast.d.Obs().StreamDigest(), slow.d.Obs().StreamDigest(); f != s {
				t.Errorf("obs stream digests diverge: fast %s slow %s", f[:12], s[:12])
			}
			if f, s := stateSummary(fast.d), stateSummary(slow.d); f != s {
				t.Errorf("final states diverge:\nfast:\n%s\nslow:\n%s", f, s)
			}

			// The comparison is only meaningful if the fast path actually ran.
			snap := fast.d.Obs().Snapshot()
			if snap.Plan.Applies == 0 {
				t.Fatal("fast system never applied a plan; differential test is vacuous")
			}
			if snap.Plan.CacheHits == 0 {
				t.Fatal("identical redeploy missed the plan cache")
			}
			if slowSnap := slow.d.Obs().Snapshot(); slowSnap.Plan.Applies != 0 {
				t.Fatalf("DisablePlanFastPath system applied %d plans", slowSnap.Plan.Applies)
			}
		})
	}
}

// TestPlanApplyDifferentialFullObs pins that at obs Level Full — where
// resolve-round spans consume span IDs — the fast path stands down, so
// digests trivially agree and nothing diverges.
func TestPlanApplyDifferentialFullObs(t *testing.T) {
	fast := newPlanRig(t, 1, false)
	slow := newPlanRig(t, 1, true)
	fast.d.Obs().SetLevel(obs.Full)
	slow.d.Obs().SetLevel(obs.Full)
	planCampaign(t, fast)
	planCampaign(t, slow)
	if f, s := fast.d.Obs().Digest(), slow.d.Obs().Digest(); f != s {
		t.Errorf("obs digests diverge at Full level: fast %s slow %s", f[:12], s[:12])
	}
	if snap := fast.d.Obs().Snapshot(); snap.Plan.Applies != 0 {
		t.Fatalf("fast path ran %d times at Full obs level; resolve-round spans would diverge", snap.Plan.Applies)
	}
}

// TestPlanFastPathFallsBackUnderWaiters: with a waiting consumer already
// in the runtime, a bundle deploy must take the event path (cascades can
// touch pre-existing waiters), and the fallback counter must say so.
func TestPlanFastPathFallsBackUnderWaiters(t *testing.T) {
	r := newPlanRig(t, 1, false)
	if err := r.d.Deploy(mustParse(t, churnXML("lone", 0, 0.01, []string{"gap"}, nil))); err != nil {
		t.Fatal(err)
	}
	r.deployBundle(t, "plan.filler", []string{
		churnXML("fill", 1, 0.01, nil, []string{"gap"}),
	})
	if st := stateOf(t, r.d, "lone"); st != Active {
		t.Fatalf("lone = %v after provider bundle, want ACTIVE", st)
	}
	snap := r.d.Obs().Snapshot()
	if snap.Plan.Applies != 0 {
		t.Fatalf("plan applied across a pre-existing waiter (applies=%d)", snap.Plan.Applies)
	}
	if snap.Plan.Fallbacks == 0 {
		t.Fatal("fallback not counted")
	}
}

// TestCompilePlanTypedReject: a bundle whose only topic-matching provider
// fails the consumer's version range or datatype must be rejected at
// compile time with a typed error naming the exact port pair.
func TestCompilePlanTypedReject(t *testing.T) {
	prov := `<component name="sensor" type="periodic" cpuusage="0.01">
	  <implementation bincode="x"/>
	  <periodictask frequence="100" runoncup="0" priority="5"/>
	  <outport name="feed" interface="RTAI.SHM" type="Integer" size="64" version="1.2.0" datatype="struct{seq:int32}"/>
	</component>`
	cons := `<component name="filter" type="periodic" cpuusage="0.01">
	  <implementation bincode="x"/>
	  <periodictask frequence="100" runoncup="1" priority="5"/>
	  <inport name="feed" interface="RTAI.SHM" type="Integer" size="64" version="[2.0.0,3.0.0)" datatype="struct{seq:int32}"/>
	</component>`
	r := newPlanRig(t, 1, false)
	descs := []*descriptor.Component{mustParse(t, prov), mustParse(t, cons)}
	_, err := r.d.CompilePlan(descs)
	var rej *plan.RejectError
	if !errors.As(err, &rej) {
		t.Fatalf("CompilePlan = %v, want *plan.RejectError", err)
	}
	if len(rej.Conflicts) != 1 {
		t.Fatalf("conflicts = %d, want 1", len(rej.Conflicts))
	}
	c := rej.Conflicts[0]
	if c.Provider != "sensor" || c.Consumer != "filter" || c.ProviderPort != "feed" || c.ConsumerPort != "feed" {
		t.Fatalf("conflict names wrong pair: %+v", c)
	}
	if c.Kind != "version" {
		t.Fatalf("kind = %q, want version", c.Kind)
	}
	if !strings.Contains(c.Reason, "outside required range") {
		t.Fatalf("reason = %q", c.Reason)
	}

	// Structural mismatch: provider's struct lacks the consumer's field.
	prov2 := prov
	cons2 := strings.Replace(
		strings.Replace(cons, `version="[2.0.0,3.0.0)" `, ``, 1),
		`datatype="struct{seq:int32}"`, `datatype="struct{seq:int32,ts:int32}"`, 1)
	_, err = r.d.CompilePlan([]*descriptor.Component{mustParse(t, prov2), mustParse(t, cons2)})
	if !errors.As(err, &rej) {
		t.Fatalf("structural CompilePlan = %v, want *plan.RejectError", err)
	}
	if rej.Conflicts[0].Kind != "structure" {
		t.Fatalf("kind = %q, want structure", rej.Conflicts[0].Kind)
	}

	// An absent provider is NOT a typed conflict — the consumer waits.
	p, err := r.d.CompilePlan([]*descriptor.Component{mustParse(t, cons)})
	if err != nil {
		t.Fatalf("lone consumer: %v", err)
	}
	if len(p.Leftovers) != 1 {
		t.Fatalf("leftovers = %d, want 1", len(p.Leftovers))
	}
}
