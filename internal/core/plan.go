package core

// Composition-plan fast path: applying a compiled plan (package plan)
// installs a whole bundle, wires its ports and activates the whole DAG
// in one pass under the stripe locks, instead of N worklist rounds.
//
// The fast path is an optimisation, never a semantic fork. It runs only
// when a guard list proves the worklist engine could not have done
// anything the plan did not precompute — and then it emits exactly the
// spans and lifecycle events the event path would, in the same order,
// with the same causes, leaving every piece of engine bookkeeping
// (waiting set, provider index, admission view, drain epochs) in the
// state a real drain would have left it. Anything else falls back to
// the per-descriptor event path. The differential tests pin
// byte-identical event logs and obs digests between the two paths.

import (
	"sort"
	"time"

	"repro/internal/descriptor"
	"repro/internal/obs"
	"repro/internal/osgi"
	"repro/internal/plan"
	"repro/internal/policy"
	"repro/internal/rtos"
)

// SetPlanCache replaces the DRCR's compiled-plan cache, so a cluster
// can share one cache across nodes: a plan compiled by the leader for a
// migration batch is found by key on the receiving node and applied
// without recompiling.
func (d *DRCR) SetPlanCache(c *plan.Cache) {
	if c == nil {
		return
	}
	d.mu.Lock()
	d.planCache = c
	d.mu.Unlock()
}

// PlanCache returns the DRCR's compiled-plan cache.
func (d *DRCR) PlanCache() *plan.Cache {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.planCache
}

// CompilePlan compiles (or fetches from the cache) the composition plan
// for a descriptor batch against the DRCR's current view. A typed port
// conflict returns (*plan.RejectError); System.DeployBundle surfaces it
// before anything is installed. The returned plan is also what the
// console's `plan` command renders.
func (d *DRCR) CompilePlan(descs []*descriptor.Component) (*plan.Plan, error) {
	env := d.planEnv()
	key := plan.KeyOf(descs)
	if p, ok := d.planCache.Get(key); ok {
		if p.ExtFP == plan.Fingerprint(descs, env.Providers) {
			d.obs.NotePlanCacheHit()
			return p, nil
		}
	}
	p, err := plan.Compile(descs, env)
	d.obs.NotePlanCompile()
	if err != nil {
		return nil, err
	}
	d.planCache.Put(p)
	return p, nil
}

// planEnv snapshots the compile environment: CPU count, the internal
// resolver's utilization bound, the admitted view, and every outport
// admitted outside the batch (local index plus remote provisions).
func (d *DRCR) planEnv() plan.Env {
	bound := 0.0
	if u, ok := d.utilizationOnly(); ok {
		bound = u.Bound
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return plan.Env{
		NumCPUs:   d.kernel.NumCPUs(),
		Bound:     bound,
		View:      d.viewLocked(),
		Providers: d.extProvidersLocked(),
	}
}

// utilizationOnly reports whether the effective resolver chain is
// exactly the internal utilization resolver — the only chain whose
// verdicts the plan compiler can replicate bit-for-bit. Any customized
// resolving service (possibly stateful) routes deploys to the event
// path, where it is consulted for real.
func (d *DRCR) utilizationOnly() (policy.Utilization, bool) {
	d.refreshChain()
	d.chainMu.Lock()
	chain := d.chain
	d.chainMu.Unlock()
	if len(chain) != 1 {
		return policy.Utilization{}, false
	}
	u, ok := chain[0].(policy.Utilization)
	return u, ok
}

// extProvidersLocked lists every admitted outport outside the batch:
// the local provider index plus the remote provision index.
func (d *DRCR) extProvidersLocked() []plan.ExtProvider {
	var out []plan.ExtProvider
	for _, ps := range d.provIndex {
		for _, p := range ps {
			out = append(out, plan.ExtProvider{Origin: p.name, Port: p.port})
		}
	}
	for _, es := range d.remoteProv {
		for _, e := range es {
			out = append(out, plan.ExtProvider{Origin: e.origin, Remote: true, Port: e.port})
		}
	}
	return out
}

// DeployAll deploys a descriptor batch as one unit: the plan fast path
// when applicable, else per-descriptor installs followed by one drain —
// exactly a bundle adoption without the bundle. The cluster's
// migration/evacuation batches land here.
func (d *DRCR) DeployAll(descs []*descriptor.Component) {
	start := time.Now()
	defer func() { d.obs.RecordLatency(obs.LatDeploy, time.Since(start).Nanoseconds()) }()
	t := d.cones.lockAll()
	defer d.cones.unlock(t)
	d.deployBatchLocked(descs, nil)
}

// deployBatchLocked runs under the all-stripes lock: plan fast path or
// install-all + one drain.
func (d *DRCR) deployBatchLocked(descs []*descriptor.Component, b *osgi.Bundle) {
	planStart := time.Now()
	if d.tryApplyPlan(descs, b) {
		d.obs.RecordLatency(obs.LatPlanApply, time.Since(planStart).Nanoseconds())
		// Listeners may have staged work mid-apply; drain it.
		d.resolveDelta()
		return
	}
	for _, desc := range descs {
		_ = d.addComponent(desc, b) // duplicates are skipped
	}
	d.resolveDelta()
}

// tryApplyPlan attempts the fast path for a descriptor batch. It
// reports false — having changed nothing — when any guard fails; the
// caller then runs the event path.
func (d *DRCR) tryApplyPlan(descs []*descriptor.Component, b *osgi.Bundle) bool {
	if d.opts.DisablePlanFastPath || len(descs) == 0 {
		return false // fast path configured off: not a fallback, no note
	}
	// At Full level the event path's resolve rounds emit spans that
	// consume span IDs; the fast path has no rounds, so the ID streams
	// would diverge. Trace-everything runs take the event path.
	if d.obs.Level() == obs.Full {
		d.obs.NotePlanFallback()
		return false
	}
	util, ok := d.utilizationOnly()
	if !ok {
		// A customized resolving service (possibly stateful) must be
		// consulted for real, one candidate at a time.
		d.obs.NotePlanFallback()
		return false
	}

	d.mu.Lock()
	if d.closed || d.resolving ||
		len(d.waiting) != 0 || len(d.degraded) != 0 ||
		len(d.actPending) != 0 || len(d.deactPending) != 0 {
		// Pending engine work (or waiting components the batch's cascades
		// would touch): only a real drain resolves the interleaving.
		d.mu.Unlock()
		d.obs.NotePlanFallback()
		return false
	}
	for _, desc := range descs {
		if _, dup := d.comps[desc.Name]; dup {
			d.mu.Unlock()
			d.obs.NotePlanFallback()
			return false
		}
	}
	env := plan.Env{
		NumCPUs:   d.kernel.NumCPUs(),
		Bound:     util.Bound,
		View:      d.viewLocked(),
		Providers: d.extProvidersLocked(),
	}

	key := plan.KeyOf(descs)
	p, hit := d.planCache.Get(key)
	if hit && p.ExtFP != plan.Fingerprint(descs, env.Providers) {
		hit = false // providers moved since compilation; recompile
	}
	if hit {
		d.obs.NotePlanCacheHit()
	} else {
		var err error
		p, err = plan.Compile(descs, env)
		d.obs.NotePlanCompile()
		if err != nil {
			// Typed port conflict. A bundle adopted through the raw OSGi
			// lifecycle has no error channel (System.DeployBundle compiles
			// first and surfaces it); keep the legacy wait semantics.
			d.obs.NotePlanFallback()
			d.mu.Unlock()
			return false
		}
		d.planCache.Put(p)
	}
	if p.Fallback != "" {
		d.obs.NotePlanFallback()
		d.mu.Unlock()
		return false
	}
	if hit {
		// Cached plans were dry-run against an older view; re-run the
		// admission dry-run against the live one.
		if reason := p.AdmitDryRun(env.View, env.NumCPUs, util.Bound); reason != "" {
			d.obs.NotePlanFallback()
			d.mu.Unlock()
			return false
		}
	}
	specs, ok := d.preflightPlanLocked(p)
	if !ok {
		d.obs.NotePlanFallback()
		d.mu.Unlock()
		return false
	}

	// All guards green: apply. d.resolving coalesces reentrant Resolve
	// calls from listeners into the trailing drain, like a real drain.
	d.resolving = true
	d.applyPlanLocked(p, specs, b)
	d.resolving = false
	d.mu.Unlock()
	d.obs.NotePlanApply()
	return true
}

// preflightPlanLocked verifies that every scheduled activation will
// succeed: valid task specs, no kernel task or IPC object already using
// a scheduled name. The event path absorbs such failures one component
// at a time ("activation failed: ..."); the fast path must know them
// before the first span goes out. The validated specs (one per schedule
// entry) are returned so the apply stages them instead of rebuilding
// each — sim time cannot advance mid-apply, so they stay exact.
func (d *DRCR) preflightPlanLocked(p *plan.Plan) ([]rtos.TaskSpec, bool) {
	byName := map[string]*descriptor.Component{}
	for _, desc := range p.Components {
		byName[desc.Name] = desc
	}
	shms, boxes := d.kernel.IPC().Names()
	shmTaken := make(map[string]bool, len(shms))
	for _, n := range shms {
		shmTaken[n] = true
	}
	boxTaken := make(map[string]bool, len(boxes))
	for _, n := range boxes {
		boxTaken[n] = true
	}
	specs := make([]rtos.TaskSpec, len(p.Schedule))
	for i, name := range p.Schedule {
		desc := byName[name]
		if desc == nil {
			return nil, false
		}
		spec, err := d.taskSpecLocked(desc, 0)
		if err != nil {
			return nil, false
		}
		specs[i] = spec
		if _, exists := d.kernel.Task(name); exists {
			return nil, false
		}
		for _, out := range desc.OutPorts {
			switch out.Interface {
			case descriptor.SHM:
				if shmTaken[out.Name] {
					return nil, false
				}
				shmTaken[out.Name] = true
			case descriptor.Mailbox:
				if boxTaken[out.Name] {
					return nil, false
				}
				boxTaken[out.Name] = true
			}
		}
	}
	return specs, true
}

// applyPlanLocked is the one-pass whole-DAG apply: install every
// component in manifest order, then activate the schedule in order,
// reproducing the event path's spans, events, causes and bookkeeping
// exactly. Called with d.mu held and every guard satisfied.
func (d *DRCR) applyPlanLocked(p *plan.Plan, specs []rtos.TaskSpec, b *osgi.Bundle) {
	d.drainID++ // the apply is this deploy's drain
	d.obs.NoteDrain()

	// The plan knows the batch size, so grow the bookkeeping once instead
	// of paying append-and-shift reallocation N times mid-apply. Capacity
	// only — contents and ordering are untouched.
	n := len(p.Components)
	if need := len(d.events) + n + 2*len(p.Schedule); cap(d.events) < need {
		grown := make([]Event, len(d.events), need)
		copy(grown, d.events)
		d.events = grown
	}
	if need := len(d.admitted) + len(p.Schedule); cap(d.admitted) < need {
		grown := make([]*policy.Contract, len(d.admitted), need)
		copy(grown, d.admitted)
		d.admitted = grown
	}
	if need := len(d.allNames) + n; cap(d.allNames) < need {
		grown := make([]string, len(d.allNames), need)
		copy(grown, d.allNames)
		d.allNames = grown
	}

	// Install phase — the exact addComponent sequence, minus the
	// worklist staging (the schedule replaces the drain). Installed names
	// are collected and merged into allNames in one pass below; nothing in
	// the loop reads allNames, so the final slice is the one per-component
	// sorted inserts would have built.
	installed := make([]string, 0, n)
	raced := false // any skip voids the precompiled binding rows
	for _, desc := range p.Components {
		if _, dup := d.comps[desc.Name]; dup {
			raced = true
			continue // a listener callback raced an install; skip like the event path
		}
		c := &Component{desc: desc, bundle: b} // bindings stay nil until activation fills them
		if desc.Enabled {
			c.state = Unsatisfied
			c.lastReason = "deployed"
		} else {
			c.state = Disabled
			c.lastReason = "deployed disabled"
		}
		d.comps[desc.Name] = c
		installed = append(installed, desc.Name)
		for _, in := range desc.InPorts {
			key := keyOf(in)
			d.consIndex[key] = insertName(d.consIndex[key], desc.Name)
		}
		// Unsatisfied installs are NOT put in d.waiting here: scheduled
		// ones leave it again within this apply, and the set's event-path
		// contents are restored below (leftovers; the error branch) before
		// anything can read it — every reader during the apply window is
		// deferred by d.resolving or is the apply itself.
		c.lastSpan = d.obs.Deploy(d.kernel.Now(), desc.Name, c.state.String(), c.lastReason)
		d.emitLocked(Event{
			At: d.kernel.Now(), Component: desc.Name,
			From: 0, To: c.state, Reason: c.lastReason,
		})
	}

	sort.Strings(installed)
	d.allNames = mergeNames(d.allNames, installed)

	// Activation phase — the schedule is the worklist cursor's exact
	// admit order; causes chain along the same topic edges.
	spans := make([]obs.SpanID, len(p.Schedule))
	for i, name := range p.Schedule {
		c, ok := d.comps[name]
		if !ok || c.state != Unsatisfied || c.revoked {
			raced = true
			// A listener callback raced the batch. Listener-driven
			// transitions maintained d.waiting themselves; a bare budget
			// revoke did not move the state, so restore the membership the
			// install deferred.
			if ok && (c.state == Unsatisfied || c.state == Satisfied) {
				d.waiting[name] = c
			}
			continue
		}
		if ci := p.CauseIdx[i]; ci >= 0 {
			c.obsCause = spans[ci]
		}
		d.setStatePlanLocked(c, Satisfied, "functional constraints satisfied")
		// Chain the activation to the Unsatisfied→Satisfied move, exactly
		// like the worklist engine.
		c.obsCause = c.lastSpan
		c.mode = 0
		// Stage the precompiled activation-moment bindings and the
		// preflight-validated task spec — valid only while the live index
		// evolves exactly as the schedule simulated it; any skip above
		// reverts to per-inport index queries and a fresh spec.
		if !raced {
			if i < len(p.BindRows) {
				c.planBinds = p.BindRows[i]
			}
			c.planSpec = &specs[i]
		}
		if err := d.activateLocked(c); err != nil {
			c.planBinds = nil
			c.planSpec = nil
			// Preflight is supposed to make this unreachable; if it happens
			// anyway, leave the component exactly as the event path would
			// and hand the rest of the batch to a real drain.
			c.mode = 0
			c.lastReason = "activation failed: " + err.Error()
			c.wait = waitAdmission
			// Restore the waiting set the event path would have built: every
			// batch member still short of Active (the failed component, the
			// unreached tail of the schedule, leftovers) belongs in it. Any
			// member a reentrant listener touched is already maintained.
			for _, desc := range p.Components {
				if cc, ok := d.comps[desc.Name]; ok &&
					(cc.state == Unsatisfied || cc.state == Satisfied) {
					d.waiting[desc.Name] = cc
				}
			}
			for wn := range d.waiting {
				d.enqueueActLocked(wn)
			}
			break
		}
		c.wait = waitNone
		c.cacheValid = false
		spans[i] = c.lastSpan // the SATISFIED→ACTIVE span: the cascade cause
	}

	// Leftovers: installed members with no feasible mode. The event
	// path's rounds visit them, leave the mode-0 missing-inport reason,
	// and seed their pending span cause from the first topic-edge
	// provider that activated — state future drains must see.
	for _, lo := range p.Leftovers {
		c, ok := d.comps[lo.Name]
		if !ok || c.state != Unsatisfied {
			continue
		}
		if lo.CauseIdx >= 0 && c.obsCause == 0 {
			c.obsCause = spans[lo.CauseIdx]
		}
		c.lastReason = "inport " + lo.Missing + " unsatisfied"
		c.wait = waitPorts
		d.waiting[lo.Name] = c // install deferred this; future drains visit it here
	}

	// Drain epilogue: the epochs a finished drain synchronises against.
	d.drainViewEpoch = d.viewEpoch
	d.drainChainEpoch = d.chainEpoch.Load()
}
