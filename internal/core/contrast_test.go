package core

import (
	"fmt"
	"testing"

	"repro/internal/manifest"
	"repro/internal/osgi"
	"repro/internal/scr"
)

// TestContrastWithDeclarativeServices demonstrates §2.1's argument
// mechanically: plain Declarative Services activates anything whose
// references are satisfied — it has no notion of a real-time contract —
// while the DRCR refuses the same overload. This is the difference the
// paper builds DRCom for.
func TestContrastWithDeclarativeServices(t *testing.T) {
	// Ten "components" each claiming 20% CPU: 200% total.
	const n, usageEach = 10, 0.2

	// Declarative Services: all ten activate; nothing pushes back.
	fw := osgi.NewFramework()
	ds := scr.NewRuntime(fw)
	defer ds.Close()
	type nopInstance struct{ scr.Instance }
	for i := 0; i < n; i++ {
		cls := fmt.Sprintf("load.C%d", i)
		if err := ds.RegisterFactory(cls, func() scr.Instance { return nop{} }); err != nil {
			t.Fatal(err)
		}
		m := manifest.New(fmt.Sprintf("ds.b%d", i), manifest.MustParseVersion("1.0"))
		m.ServiceComponents = []string{"OSGI-INF/c.xml"}
		b, err := fw.Install(osgi.Definition{
			Manifest: m,
			Resources: map[string]string{
				"OSGI-INF/c.xml": fmt.Sprintf(`<component name="dsc%d"><implementation class="%s"/></component>`, i, cls),
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := b.Start(); err != nil {
			t.Fatal(err)
		}
	}
	dsActive := 0
	for _, c := range ds.Components() {
		if c.State() == scr.StateActive {
			dsActive++
		}
	}
	if dsActive != n {
		t.Fatalf("DS activated %d/%d; DS has no admission, all should run", dsActive, n)
	}

	// DRCom: the same demand hits the DRCR's global admission.
	_, _, d := newRig(t)
	for i := 0; i < n; i++ {
		src := fmt.Sprintf(`<component name="rt%02d" type="periodic" cpuusage="%.2f">
		  <implementation bincode="x"/>
		  <periodictask frequence="100" runoncup="0" priority="%d"/>
		</component>`, i, usageEach, i+1)
		if err := d.Deploy(mustParse(t, src)); err != nil {
			t.Fatal(err)
		}
	}
	rtActive, waiting := 0, 0
	for _, info := range d.Components() {
		switch info.State {
		case Active:
			rtActive++
		case Satisfied:
			waiting++
		}
	}
	if rtActive != 5 { // 5 × 0.2 = 1.0, the budget ceiling
		t.Fatalf("DRCR admitted %d, want exactly the budget's worth (5)", rtActive)
	}
	if waiting != n-5 {
		t.Fatalf("waiting = %d", waiting)
	}
	_ = nopInstance{}
}

// nop is a no-op DS instance.
type nop struct{}

func (nop) Activate(*scr.ComponentContext) error { return nil }
func (nop) Deactivate()                          {}

// TestOutportNameCollisionRefusedAtActivation: two components declaring
// the same outport name cannot both be active — the transport namespace
// is global (RTAI nam2num), and the DRCR surfaces the conflict instead
// of silently cross-wiring.
func TestOutportNameCollisionRefusedAtActivation(t *testing.T) {
	_, k, d := newRig(t)
	mk := func(name string) string {
		return `<component name="` + name + `" type="periodic" cpuusage="0.05">
		  <implementation bincode="x"/>
		  <periodictask frequence="100" runoncup="0" priority="1"/>
		  <outport name="shared" interface="RTAI.SHM" type="Byte" size="8"/>
		</component>`
	}
	if err := d.Deploy(mustParse(t, mk("first"))); err != nil {
		t.Fatal(err)
	}
	if err := d.Deploy(mustParse(t, mk("second"))); err != nil {
		t.Fatal(err)
	}
	if got := stateOf(t, d, "first"); got != Active {
		t.Fatalf("first = %v", got)
	}
	info, _ := d.Component("second")
	if info.State == Active {
		t.Fatal("colliding outport activated twice")
	}
	if info.LastReason == "" {
		t.Fatal("no reason recorded for the refusal")
	}
	// The loser takes over as soon as the name frees up.
	if err := d.Remove("first"); err != nil {
		t.Fatal(err)
	}
	if got := stateOf(t, d, "second"); got != Active {
		t.Fatalf("second after first's removal = %v", got)
	}
	if _, err := k.IPC().SHM("shared"); err != nil {
		t.Fatalf("transport missing after takeover: %v", err)
	}
}
