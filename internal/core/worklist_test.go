package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/descriptor"
	"repro/internal/manifest"
	"repro/internal/obs"
	"repro/internal/osgi"
	"repro/internal/policy"
	"repro/internal/rtos"
)

// churnXML builds a descriptor for the differential-churn topologies:
// periodic, tiny declared budget, SHM ports named after topics.
func churnXML(name string, cpu int, usage float64, inports, outports []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, `<component name=%q type="periodic" cpuusage="%g">`+"\n", name, usage)
	fmt.Fprintf(&b, `  <implementation bincode="churn.Body"/>`+"\n")
	fmt.Fprintf(&b, `  <periodictask frequence="100" runoncup="%d" priority="5"/>`+"\n", cpu)
	for _, p := range inports {
		fmt.Fprintf(&b, `  <inport name=%q interface="RTAI.SHM" type="Integer" size="64"/>`+"\n", p)
	}
	for _, p := range outports {
		fmt.Fprintf(&b, `  <outport name=%q interface="RTAI.SHM" type="Integer" size="64"/>`+"\n", p)
	}
	b.WriteString(`</component>`)
	return b.String()
}

// churnRig is one DRCR under differential test, with its own stateful
// customized resolving service (mirroring internal/fault's flap
// resolver, which toggles a denied set and calls bare Resolve).
type churnRig struct {
	fw     *osgi.Framework
	d      *DRCR
	denied map[string]bool
}

func newChurnRig(t *testing.T, fullSweep bool) *churnRig {
	t.Helper()
	fw := osgi.NewFramework()
	k := rtos.NewKernel(rtos.Config{NumCPUs: 4, Timing: &noNoise, Seed: 99})
	d, err := New(fw, k, Options{FullSweepResolve: fullSweep})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	r := &churnRig{fw: fw, d: d, denied: map[string]bool{}}
	flap := policy.Func{Label: "flap", F: func(_ policy.View, cand policy.Contract) policy.Decision {
		if r.denied[cand.Name] {
			return policy.Decision{Admit: false, Reason: "flapped off"}
		}
		return policy.Decision{Admit: true, Reason: "flap ok"}
	}}
	if _, err := fw.RegisterService([]string{policy.ServiceInterface}, policy.Resolver(flap), nil); err != nil {
		t.Fatal(err)
	}
	return r
}

// traceDigest hashes the full ordered event log.
func traceDigest(evs []Event) string {
	h := sha256.New()
	for _, ev := range evs {
		fmt.Fprintf(h, "%d|%s|%v|%v|%s\n", int64(ev.At), ev.Component, ev.From, ev.To, ev.Reason)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// stateSummary renders the final component states canonically.
func stateSummary(d *DRCR) string {
	var b strings.Builder
	for _, info := range d.Components() {
		fmt.Fprintf(&b, "%s state=%v revoked=%v reason=%q bindings=", info.Name, info.State, info.Revoked, info.LastReason)
		keys := make([]string, 0, len(info.Bindings))
		for k := range info.Bindings {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "%s->%s,", k, info.Bindings[k])
		}
		b.WriteString("\n")
	}
	return b.String()
}

const (
	opToggleDeploy = iota
	opToggleEnable
	opToggleRevoke
	opToggleFlap
	opKinds
)

type churnOp struct {
	kind   int
	target string
}

// applyChurnOp executes one operation against a rig. Every branch is
// deterministic given identical rig state, so replaying the same op list
// drives both engines through the same scenario; errors (unknown names,
// duplicate deploys) are part of the scenario and ignored.
func applyChurnOp(rig *churnRig, op churnOp, descs map[string]*descriptor.Component) {
	d := rig.d
	switch op.kind {
	case opToggleDeploy:
		if _, ok := d.Component(op.target); ok {
			_ = d.Remove(op.target)
		} else {
			_ = d.Deploy(descs[op.target])
		}
	case opToggleEnable:
		if info, ok := d.Component(op.target); ok {
			if info.State == Disabled {
				_ = d.Enable(op.target)
			} else {
				_ = d.Disable(op.target)
			}
		}
	case opToggleRevoke:
		if info, ok := d.Component(op.target); ok {
			if info.Revoked {
				_ = d.RestoreBudget(op.target)
			} else {
				_ = d.RevokeBudget(op.target, "differential churn")
			}
		}
	case opToggleFlap:
		// The stateful customized resolver changes its answer, then the
		// caller runs a bare Resolve — exactly internal/fault's pattern.
		rig.denied[op.target] = !rig.denied[op.target]
		d.Resolve()
	}
}

// buildChurnTopology creates producer→relay→consumers groups plus a tail
// of heavy components that overflow the budget, so the storm exercises
// port cascades, admission denials and re-admissions together.
func buildChurnTopology(t *testing.T, groups, fanout, heavy int) (map[string]*descriptor.Component, []string) {
	t.Helper()
	descs := map[string]*descriptor.Component{}
	var names []string
	add := func(name, src string) {
		c, err := descriptor.Parse(src)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		descs[name] = c
		names = append(names, name)
	}
	for g := 0; g < groups; g++ {
		cpu := g % 4
		tg := fmt.Sprintf("t%02d", g)
		ug := fmt.Sprintf("u%02d", g)
		add(fmt.Sprintf("p%02d", g), churnXML(fmt.Sprintf("p%02d", g), cpu, 0.002, nil, []string{tg}))
		add(fmt.Sprintf("r%02d", g), churnXML(fmt.Sprintf("r%02d", g), cpu, 0.002, []string{tg}, []string{ug}))
		for f := 0; f < fanout; f++ {
			n := fmt.Sprintf("c%02dx%01d", g, f)
			add(n, churnXML(n, cpu, 0.002, []string{ug}, nil))
		}
	}
	for h := 0; h < heavy; h++ {
		n := fmt.Sprintf("zh%02d", h)
		add(n, churnXML(n, h%4, 0.45, nil, nil))
	}
	return descs, names
}

// TestDifferentialRandomChurn replays seeded random lifecycle storms
// through the reference full-sweep engine and the incremental worklist
// engine, and requires bit-identical event traces and final states.
func TestDifferentialRandomChurn(t *testing.T) {
	descs, names := buildChurnTopology(t, 10, 3, 8)
	for _, seed := range []int64{1, 7, 42, 1234} {
		rng := rand.New(rand.NewSource(seed))
		ops := make([]churnOp, 400)
		for i := range ops {
			ops[i] = churnOp{kind: rng.Intn(opKinds), target: names[rng.Intn(len(names))]}
		}

		ref := newChurnRig(t, true)
		inc := newChurnRig(t, false)
		for _, rig := range []*churnRig{ref, inc} {
			for _, name := range names {
				_ = rig.d.Deploy(descs[name])
			}
			for _, op := range ops {
				applyChurnOp(rig, op, descs)
			}
		}

		refDigest, incDigest := traceDigest(ref.d.Events()), traceDigest(inc.d.Events())
		if refDigest != incDigest {
			refEvs, incEvs := ref.d.Events(), inc.d.Events()
			t.Errorf("seed %d: event traces diverge (ref %d events %s, inc %d events %s)",
				seed, len(refEvs), refDigest[:12], len(incEvs), incDigest[:12])
			for i := 0; i < len(refEvs) || i < len(incEvs); i++ {
				var a, b string
				if i < len(refEvs) {
					a = refEvs[i].String()
				}
				if i < len(incEvs) {
					b = incEvs[i].String()
				}
				if a != b {
					t.Fatalf("seed %d: first divergence at event %d:\n  ref: %s\n  inc: %s", seed, i, a, b)
				}
			}
		}
		if refState, incState := stateSummary(ref.d), stateSummary(inc.d); refState != incState {
			t.Errorf("seed %d: final states diverge:\nref:\n%s\ninc:\n%s", seed, refState, incState)
		}
	}
}

// TestDeepChainCascadeOrder drops the root of a 1000-deep provider chain
// (c0000 provides c0001, which provides c0002, …) by stopping its bundle
// and requires the cascade to deactivate in dependency order — each
// component goes down only after the provider it lost — and, after the
// bundle restarts, to re-admit in dependency order, without quadratic
// blow-up on the worklist engine.
func TestDeepChainCascadeOrder(t *testing.T) {
	const n = 1000
	fw := osgi.NewFramework()
	k := rtos.NewKernel(rtos.Config{NumCPUs: 4, Timing: &noNoise, Seed: 5})
	d, err := New(fw, k, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)

	cname := func(i int) string { return fmt.Sprintf("c%03d", i) }
	topic := func(i int) string { return fmt.Sprintf("l%03d", i) }

	// Root lives in its own bundle so dropBundle starts the cascade.
	m := manifest.New("chain.root", manifest.MustParseVersion("1.0"))
	m.DRComComponents = []string{"OSGI-INF/root.xml"}
	b, err := fw.Install(osgi.Definition{
		Manifest: m,
		Resources: map[string]string{
			"OSGI-INF/root.xml": churnXML(cname(0), 0, 0.003, nil, []string{topic(0)}),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < n; i++ {
		var outs []string
		if i < n-1 {
			outs = []string{topic(i)}
		}
		src := churnXML(cname(i), i%4, 0.003, []string{topic(i - 1)}, outs)
		if err := d.Deploy(mustParse(t, src)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if st := stateOf(t, d, cname(i)); st != Active {
			t.Fatalf("%s = %v before drop, want ACTIVE", cname(i), st)
		}
	}

	d.ClearEvents()
	if err := b.Stop(); err != nil {
		t.Fatal(err)
	}
	downAt := make([]int, n)
	for i := range downAt {
		downAt[i] = -1
	}
	for idx, ev := range d.Events() {
		if ev.To == Unsatisfied || ev.To == Destroyed {
			var i int
			if _, err := fmt.Sscanf(ev.Component, "c%03d", &i); err == nil && downAt[i] < 0 {
				downAt[i] = idx
			}
		}
	}
	for i := 0; i < n; i++ {
		if i > 0 { // the root itself is destroyed and forgotten
			if st := stateOf(t, d, cname(i)); st != Unsatisfied {
				t.Fatalf("%s = %v after drop, want UNSATISFIED", cname(i), st)
			}
		}
		if downAt[i] < 0 {
			t.Fatalf("%s never went down", cname(i))
		}
		if i > 0 && downAt[i] < downAt[i-1] {
			t.Fatalf("%s went down (event %d) before its provider %s (event %d)",
				cname(i), downAt[i], cname(i-1), downAt[i-1])
		}
	}

	d.ClearEvents()
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	upAt := make([]int, n)
	for i := range upAt {
		upAt[i] = -1
	}
	for idx, ev := range d.Events() {
		if ev.To == Active {
			var i int
			if _, err := fmt.Sscanf(ev.Component, "c%03d", &i); err == nil && upAt[i] < 0 {
				upAt[i] = idx
			}
		}
	}
	for i := 0; i < n; i++ {
		if st := stateOf(t, d, cname(i)); st != Active {
			t.Fatalf("%s = %v after re-deploy, want ACTIVE", cname(i), st)
		}
		if upAt[i] < 0 {
			t.Fatalf("%s never re-activated", cname(i))
		}
		if i > 0 && upAt[i] < upAt[i-1] {
			t.Fatalf("%s re-activated (event %d) before its provider %s (event %d)",
				cname(i), upAt[i], cname(i-1), upAt[i-1])
		}
	}
}

// TestResolveSteadyStateAllocs pins the allocation-free discipline of a
// steady-state resolve tick: with every component admitted and no dirty
// work, Resolve and GlobalView must not allocate.
func TestResolveSteadyStateAllocs(t *testing.T) {
	_, _, d := newRig(t)
	for _, src := range []string{calcXML, displayXML} {
		if err := d.Deploy(mustParse(t, src)); err != nil {
			t.Fatal(err)
		}
	}
	if st := stateOf(t, d, "disp"); st != Active {
		t.Fatalf("disp = %v, want ACTIVE", st)
	}
	// The observability plane rides the resolve path; the default
	// sampling level must not break the allocation discipline.
	if lvl := d.Obs().Level(); lvl != obs.Sampled {
		t.Fatalf("default obs level = %v, want sampled", lvl)
	}
	d.Resolve() // warm up: first resolve builds the resolver chain cache
	if allocs := testing.AllocsPerRun(100, func() { d.Resolve() }); allocs != 0 {
		t.Errorf("steady-state Resolve allocates %.1f objects per run, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() { _ = d.GlobalView() }); allocs != 0 {
		t.Errorf("steady-state GlobalView allocates %.1f objects per run, want 0", allocs)
	}
	// Same discipline at Full level: an empty resolve tick emits nothing,
	// so even the most verbose level leaves the steady state alone.
	d.Obs().SetLevel(obs.Full)
	if allocs := testing.AllocsPerRun(100, func() { d.Resolve() }); allocs != 0 {
		t.Errorf("Full-level steady-state Resolve allocates %.1f objects per run, want 0", allocs)
	}
	d.Obs().SetLevel(obs.Sampled)
}
