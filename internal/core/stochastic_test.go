package core

import (
	"strings"
	"testing"

	"repro/internal/descriptor"
	"repro/internal/obs"
	"repro/internal/osgi"
	"repro/internal/rtos"
)

// §4.2-style pair where calc declares a distribution-valued budget.
const stochCalcXML = `<component name="calc" type="periodic" cpuusage="0.3">
  <implementation bincode="demo.Calculation"/>
  <periodictask frequence="1000" runoncup="0" priority="1"/>
  <budget dist="normal(0.3,0.02)" p="0.97"/>
  <outport name="lat" interface="RTAI.SHM" type="Integer" size="100"/>
</component>`

const stochDispXML = `<component name="disp" type="periodic" cpuusage="0.1">
  <implementation bincode="demo.Display"/>
  <periodictask frequence="4" runoncup="0" priority="2"/>
  <inport name="lat" interface="RTAI.SHM" type="Integer" size="100"/>
</component>`

// A fat constant component that leaves too little headroom for calc's
// declared p=0.97 (0.75 + N(0.3,0.02) is over 1.0 more than 3% of the
// time — in fact almost always).
const stochHogXML = `<component name="hog" type="periodic" cpuusage="0.75">
  <implementation bincode="demo.Hog"/>
  <periodictask frequence="100" runoncup="0" priority="3"/>
</component>`

func stochRig(t *testing.T, fullSweep bool) *DRCR {
	t.Helper()
	fw := osgi.NewFramework()
	k := rtos.NewKernel(rtos.Config{NumCPUs: 1, Timing: &noNoise, Seed: 17})
	d, err := New(fw, k, Options{FullSweepResolve: fullSweep})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return d
}

func TestStochasticAdmitSpanBothEngines(t *testing.T) {
	digests := make([]string, 2)
	for i, fullSweep := range []bool{false, true} {
		d := stochRig(t, fullSweep)
		for _, src := range []string{stochCalcXML, stochDispXML} {
			if err := d.Deploy(mustParse(t, src)); err != nil {
				t.Fatal(err)
			}
		}
		if got := stateOf(t, d, "calc"); got != Active {
			t.Fatalf("fullSweep=%v: calc state %v, want Active", fullSweep, got)
		}
		var admits []obs.Span
		for _, s := range d.Obs().Spans() {
			if s.Kind == obs.KindAdmit {
				admits = append(admits, s)
			}
		}
		if len(admits) != 1 || admits[0].Component != "calc" {
			t.Fatalf("fullSweep=%v: admit spans = %v, want exactly one for calc", fullSweep, admits)
		}
		if !strings.Contains(admits[0].Detail, "meets p=0.970") {
			t.Fatalf("fullSweep=%v: admit detail %q", fullSweep, admits[0].Detail)
		}
		info, _ := d.Component("calc")
		if info.BudgetDist != "normal(0.3,0.02)" || info.BudgetP != 0.97 {
			t.Fatalf("info budget = %q/%v", info.BudgetDist, info.BudgetP)
		}
		digests[i] = d.Obs().StreamDigest()
	}
	if digests[0] != digests[1] {
		t.Fatalf("engines diverged on stochastic admission:\nworklist:  %s\nfullsweep: %s",
			digests[0], digests[1])
	}
}

func TestStochasticDenyCarriesProbability(t *testing.T) {
	for _, fullSweep := range []bool{false, true} {
		d := stochRig(t, fullSweep)
		if err := d.Deploy(mustParse(t, stochHogXML)); err != nil {
			t.Fatal(err)
		}
		if err := d.Deploy(mustParse(t, stochCalcXML)); err != nil {
			t.Fatal(err)
		}
		info, ok := d.Component("calc")
		if !ok {
			t.Fatal("calc unknown")
		}
		if info.State == Active {
			t.Fatalf("fullSweep=%v: calc admitted at mean load 1.05", fullSweep)
		}
		if !strings.Contains(info.LastReason, "below p=0.970") {
			t.Fatalf("fullSweep=%v: deny reason %q should carry the MC probability", fullSweep, info.LastReason)
		}
	}
}

func TestStochasticPlanVerdictMatchesRuntime(t *testing.T) {
	d := stochRig(t, false)
	batch := []*descriptor.Component{mustParse(t, stochCalcXML), mustParse(t, stochDispXML)}
	p, err := d.CompilePlan(batch)
	if err != nil {
		t.Fatal(err)
	}
	if p.Fallback == "" {
		t.Fatal("stochastic plan must route to the event path")
	}
	if len(p.Admissions) != 1 || p.Admissions[0].Name != "calc" {
		t.Fatalf("plan admissions = %+v", p.Admissions)
	}
	// Deploy through the event path and compare the verdict strings: the
	// compile-time Monte-Carlo verdict must be byte-identical to the
	// runtime's admit-span detail (shared sampler, shared seed).
	for _, src := range []string{stochCalcXML, stochDispXML} {
		if err := d.Deploy(mustParse(t, src)); err != nil {
			t.Fatal(err)
		}
	}
	var detail string
	for _, s := range d.Obs().Spans() {
		if s.Kind == obs.KindAdmit && s.Component == "calc" {
			detail = s.Detail
		}
	}
	if detail == "" {
		t.Fatal("no admit span for calc")
	}
	if detail != p.Admissions[0].Verdict {
		t.Fatalf("compile-time verdict diverges from runtime:\nplan:    %q\nruntime: %q",
			p.Admissions[0].Verdict, detail)
	}
}
