package fault

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/ldap"
	"repro/internal/obs"
	"repro/internal/osgi"
	"repro/internal/policy"
	"repro/internal/rtos/ipc"
	"repro/internal/sim"
)

// Injector applies scripted fault campaigns to a running DRCom stack.
type Injector struct {
	d  *core.DRCR
	fw *osgi.Framework

	// Open faults, keyed by target, so they survive the target's
	// suspension: the DRCR recreates tasks and IPC objects on
	// re-admission and the lifecycle listener re-applies what is open.
	openScale map[string]float64
	openStall map[string]bool
	openBox   map[string]ipc.MailboxFault
	openSHM   map[string]bool
	denied    map[string]bool

	flapReg        *osgi.ServiceRegistration
	removeListener func()
	pending        []*sim.Event
	trace          []Record
}

// New builds an injector over a DRCR. The framework is needed only for
// BundleStop and ResolverFlap faults; pass nil to forbid those kinds.
func New(d *core.DRCR, fw *osgi.Framework) (*Injector, error) {
	if d == nil {
		return nil, errors.New("fault: injector needs a DRCR")
	}
	inj := &Injector{
		d:         d,
		fw:        fw,
		openScale: map[string]float64{},
		openStall: map[string]bool{},
		openBox:   map[string]ipc.MailboxFault{},
		openSHM:   map[string]bool{},
		denied:    map[string]bool{},
	}
	// Re-admission tears down and rebuilds the offender's task and owned
	// IPC objects; a fault that is still open must follow the component
	// into its new incarnation or healing would be trivial.
	inj.removeListener = d.AddListener(func(e core.Event) {
		if e.To == core.Active {
			inj.reapply(e.Component)
		}
	})
	return inj, nil
}

// Close cancels pending injections, clears every open fault, withdraws
// the flapping resolver, and detaches from the DRCR.
func (inj *Injector) Close() {
	for _, ev := range inj.pending {
		ev.Cancel()
	}
	inj.pending = nil
	for name := range inj.openScale {
		inj.clear(Fault{Kind: ExecInflate, Target: name})
	}
	for name := range inj.openStall {
		inj.clear(Fault{Kind: Stall, Target: name})
	}
	for name := range inj.openBox {
		inj.clear(Fault{Kind: MailboxDrop, Target: name})
	}
	for name := range inj.openSHM {
		inj.clear(Fault{Kind: SHMFreeze, Target: name})
	}
	for name := range inj.denied {
		inj.clear(Fault{Kind: ResolverFlap, Target: name})
	}
	if inj.flapReg != nil {
		_ = inj.flapReg.Unregister()
		inj.flapReg = nil
	}
	if inj.removeListener != nil {
		inj.removeListener()
		inj.removeListener = nil
	}
}

// Trace returns a copy of the injection trace.
func (inj *Injector) Trace() []Record {
	out := make([]Record, len(inj.trace))
	copy(out, inj.trace)
	return out
}

// Install schedules every fault of the campaign on the simulated clock,
// relative to now.
func (inj *Injector) Install(c Campaign) error {
	clock := inj.d.Kernel().Clock()
	for i := range c.Faults {
		f := c.Faults[i]
		if err := inj.validate(f); err != nil {
			return fmt.Errorf("fault: campaign %q: %w", c.Name, err)
		}
		if f.Kind == ExecDrift {
			if err := inj.installDrift(f); err != nil {
				return fmt.Errorf("fault: campaign %q: %w", c.Name, err)
			}
			continue
		}
		at := f.At
		if at < 0 {
			at = 0
		}
		ev, err := clock.After(at, "fault:inject:"+f.Kind.String(), func(sim.Time) {
			inj.apply(f)
		})
		if err != nil {
			return err
		}
		inj.pending = append(inj.pending, ev)
		if f.For > 0 {
			ev, err := clock.After(at+f.For, "fault:clear:"+f.Kind.String(), func(sim.Time) {
				inj.clear(f)
			})
			if err != nil {
				return err
			}
			inj.pending = append(inj.pending, ev)
		}
	}
	return nil
}

// installDrift expands an ExecDrift fault into its ramp: N Step-spaced
// scale increments climbing linearly to Factor, then a clear at the end
// of the window. Only the first increment and the clear enter the trace
// and the causal plane — the ramp is one fault, not N.
func (inj *Injector) installDrift(f Fault) error {
	clock := inj.d.Kernel().Clock()
	step := f.Step
	if step <= 0 {
		step = 10 * time.Millisecond
	}
	factor := f.Factor
	if factor <= 0 {
		factor = 2
	}
	at := f.At
	if at < 0 {
		at = 0
	}
	n := int(f.For / step)
	if n < 1 {
		n = 1
	}
	for k := 0; k < n; k++ {
		first := k == 0
		scale := 1 + (factor-1)*float64(k+1)/float64(n)
		ev, err := clock.After(at+time.Duration(k)*step, "fault:drift:"+f.Target, func(sim.Time) {
			now := inj.d.Kernel().Now()
			inj.openScale[f.Target] = scale
			inj.setScale(f.Target, scale)
			if first {
				detail := fmt.Sprintf("ramp to %.2f over %d steps of %v", factor, n, step)
				inj.noteInject(now, ExecDrift, f.Target, detail)
				inj.record(now, "inject", ExecDrift, f.Target, detail)
			}
		})
		if err != nil {
			return err
		}
		inj.pending = append(inj.pending, ev)
	}
	ev, err := clock.After(at+f.For, "fault:clear:"+f.Kind.String(), func(sim.Time) {
		inj.clear(f)
	})
	if err != nil {
		return err
	}
	inj.pending = append(inj.pending, ev)
	return nil
}

func (inj *Injector) validate(f Fault) error {
	if f.Target == "" {
		return errors.New("fault needs a target")
	}
	switch f.Kind {
	case ExecInflate, Stall, MailboxDrop, MailboxDup, SHMFreeze, Crash:
		return nil
	case ExecDrift:
		if f.For <= 0 {
			return errors.New("exec-drift needs a ramp window (For > 0)")
		}
		return nil
	case BundleStop, ResolverFlap:
		if inj.fw == nil {
			return fmt.Errorf("%v needs a framework", f.Kind)
		}
		return nil
	default:
		return fmt.Errorf("unknown fault kind %v", f.Kind)
	}
}

// noteInject traces a fault application and registers it as the open
// cause on its target, so later violations and clears chain back to it.
func (inj *Injector) noteInject(now sim.Time, kind Kind, target, detail string) {
	plane := inj.d.Obs()
	plane.SetOpenCause(target, plane.FaultInject(now, kind.String(), target, detail))
}

func (inj *Injector) apply(f Fault) {
	now := inj.d.Kernel().Now()
	plane := inj.d.Obs()
	switch f.Kind {
	case ExecInflate:
		factor := f.Factor
		if factor <= 0 {
			factor = 2
		}
		inj.openScale[f.Target] = factor
		inj.setScale(f.Target, factor)
		inj.noteInject(now, f.Kind, f.Target, fmt.Sprintf("factor %.2f", factor))
		inj.record(now, "inject", f.Kind, f.Target, fmt.Sprintf("factor %.2f", factor))
	case Stall:
		inj.openStall[f.Target] = true
		inj.setStall(f.Target, true)
		inj.noteInject(now, f.Kind, f.Target, "")
		inj.record(now, "inject", f.Kind, f.Target, "")
	case MailboxDrop:
		inj.openBox[f.Target] = ipc.MailboxDropAll
		inj.setBoxFault(f.Target, ipc.MailboxDropAll)
		inj.noteInject(now, f.Kind, f.Target, "")
		inj.record(now, "inject", f.Kind, f.Target, "")
	case MailboxDup:
		inj.openBox[f.Target] = ipc.MailboxDuplicate
		inj.setBoxFault(f.Target, ipc.MailboxDuplicate)
		inj.noteInject(now, f.Kind, f.Target, "")
		inj.record(now, "inject", f.Kind, f.Target, "")
	case SHMFreeze:
		inj.openSHM[f.Target] = true
		inj.setFrozen(f.Target, true)
		inj.noteInject(now, f.Kind, f.Target, "")
		inj.record(now, "inject", f.Kind, f.Target, "")
	case BundleStop:
		if b := inj.fw.BundleByName(f.Target); b != nil {
			// Trace before stopping: the withdrawal cascade the stop
			// triggers chains to the injection span.
			inj.noteInject(now, f.Kind, f.Target, "")
			plane.PushCause(plane.OpenCause(f.Target))
			err := b.Stop()
			plane.PopCause()
			if err != nil {
				inj.record(now, "error", f.Kind, f.Target, err.Error())
				return
			}
			inj.record(now, "inject", f.Kind, f.Target, "")
		} else {
			inj.record(now, "error", f.Kind, f.Target, "no such bundle")
		}
	case ResolverFlap:
		inj.denied[f.Target] = true
		inj.ensureFlapResolver()
		inj.noteInject(now, f.Kind, f.Target, "resolver now denies")
		inj.record(now, "inject", f.Kind, f.Target, "resolver now denies")
		plane.PushCause(plane.OpenCause(f.Target))
		inj.d.Resolve()
		plane.PopCause()
	case Crash:
		// Trace before crashing so the teardown cascade chains to the
		// injection span; the component stays down until a supervisor
		// re-enables it.
		inj.noteInject(now, f.Kind, f.Target, "")
		plane.PushCause(plane.OpenCause(f.Target))
		err := inj.d.Crash(f.Target, "injected crash")
		plane.PopCause()
		if err != nil {
			inj.record(now, "error", f.Kind, f.Target, err.Error())
			return
		}
		inj.record(now, "inject", f.Kind, f.Target, "")
	}
}

// noteClear traces a fault being lifted (chained to the injection span)
// and closes the open cause on the target. It returns the clear span so
// recovery cascades can chain to it.
func (inj *Injector) noteClear(now sim.Time, kind Kind, target, detail string) obs.SpanID {
	plane := inj.d.Obs()
	id := plane.FaultClear(now, kind.String(), target, detail, plane.OpenCause(target))
	plane.ClearOpenCause(target)
	return id
}

func (inj *Injector) clear(f Fault) {
	now := inj.d.Kernel().Now()
	plane := inj.d.Obs()
	switch f.Kind {
	case ExecInflate, ExecDrift:
		delete(inj.openScale, f.Target)
		inj.setScale(f.Target, 1)
		inj.noteClear(now, f.Kind, f.Target, "")
		inj.record(now, "clear", f.Kind, f.Target, "")
	case Stall:
		delete(inj.openStall, f.Target)
		inj.setStall(f.Target, false)
		inj.noteClear(now, f.Kind, f.Target, "")
		inj.record(now, "clear", f.Kind, f.Target, "")
	case MailboxDrop, MailboxDup:
		delete(inj.openBox, f.Target)
		inj.setBoxFault(f.Target, ipc.MailboxHealthy)
		inj.noteClear(now, f.Kind, f.Target, "")
		inj.record(now, "clear", f.Kind, f.Target, "")
	case SHMFreeze:
		delete(inj.openSHM, f.Target)
		inj.setFrozen(f.Target, false)
		inj.noteClear(now, f.Kind, f.Target, "")
		inj.record(now, "clear", f.Kind, f.Target, "")
	case BundleStop:
		if b := inj.fw.BundleByName(f.Target); b != nil {
			// The restart's adoption cascade chains to the clear span.
			id := inj.noteClear(now, f.Kind, f.Target, "bundle restarted")
			plane.PushCause(id)
			err := b.Start()
			plane.PopCause()
			if err != nil {
				inj.record(now, "error", f.Kind, f.Target, err.Error())
				return
			}
			inj.record(now, "clear", f.Kind, f.Target, "bundle restarted")
		}
	case ResolverFlap:
		delete(inj.denied, f.Target)
		id := inj.noteClear(now, f.Kind, f.Target, "resolver admits again")
		inj.record(now, "clear", f.Kind, f.Target, "resolver admits again")
		plane.PushCause(id)
		inj.d.Resolve()
		plane.PopCause()
	case Crash:
		// The defect is gone, but recovery is the supervisor's decision:
		// clearing only closes the causal chain.
		inj.noteClear(now, f.Kind, f.Target, "crash condition cleared")
		inj.record(now, "clear", f.Kind, f.Target, "crash condition cleared")
	}
}

// reapply pushes still-open task and IPC faults onto a component's fresh
// incarnation after the DRCR re-admits it.
func (inj *Injector) reapply(component string) {
	now := inj.d.Kernel().Now()
	plane := inj.d.Obs()
	noteReapply := func(kind Kind, target, detail string) {
		plane.FaultReapply(now, kind.String(), target, detail, plane.OpenCause(target))
	}
	if factor, ok := inj.openScale[component]; ok {
		inj.setScale(component, factor)
		noteReapply(ExecInflate, component, fmt.Sprintf("factor %.2f", factor))
		inj.record(now, "reapply", ExecInflate, component, fmt.Sprintf("factor %.2f", factor))
	}
	if inj.openStall[component] {
		inj.setStall(component, true)
		noteReapply(Stall, component, "")
		inj.record(now, "reapply", Stall, component, "")
	}
	// Owned IPC objects are recreated with the component's outport names.
	if info, ok := inj.d.Component(component); ok {
		for _, p := range info.OutPorts {
			if mode, ok := inj.openBox[p.Name]; ok {
				inj.setBoxFault(p.Name, mode)
				noteReapply(MailboxDrop, p.Name, mode.String())
				inj.record(now, "reapply", MailboxDrop, p.Name, mode.String())
			}
			if inj.openSHM[p.Name] {
				inj.setFrozen(p.Name, true)
				noteReapply(SHMFreeze, p.Name, "")
				inj.record(now, "reapply", SHMFreeze, p.Name, "")
			}
		}
	}
}

func (inj *Injector) setScale(task string, factor float64) {
	if t, ok := inj.d.Kernel().Task(task); ok {
		t.SetExecScale(factor)
	}
}

func (inj *Injector) setStall(task string, stalled bool) {
	if t, ok := inj.d.Kernel().Task(task); ok {
		t.SetStalled(stalled)
	}
}

func (inj *Injector) setBoxFault(name string, mode ipc.MailboxFault) {
	if m, err := inj.d.Kernel().IPC().Mailbox(name); err == nil {
		m.SetFault(mode)
	}
}

func (inj *Injector) setFrozen(name string, frozen bool) {
	if s, err := inj.d.Kernel().IPC().SHM(name); err == nil {
		s.SetFrozen(frozen)
	}
}

// ensureFlapResolver lazily publishes the flapping resolving service: a
// policy.Func that consults the injector's live denial set, so the same
// registered service flips its vote as faults open and close.
func (inj *Injector) ensureFlapResolver() {
	if inj.flapReg != nil {
		return
	}
	flap := policy.Func{
		Label: "fault-flap",
		F: func(_ policy.View, cand policy.Contract) policy.Decision {
			if inj.denied[cand.Name] {
				return policy.Decision{Reason: "fault injector veto"}
			}
			return policy.Decision{Admit: true, Reason: "no open veto"}
		},
	}
	reg, err := inj.fw.RegisterService([]string{policy.ServiceInterface},
		policy.Resolver(flap), ldap.Properties{"resolver.name": flap.Label})
	if err != nil {
		inj.record(inj.d.Kernel().Now(), "error", ResolverFlap, "", err.Error())
		return
	}
	inj.flapReg = reg
}

func (inj *Injector) record(at sim.Time, action string, kind Kind, target, detail string) {
	inj.trace = append(inj.trace, Record{At: at, Action: action, Kind: kind, Target: target, Detail: detail})
}
