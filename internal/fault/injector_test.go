package fault

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/descriptor"
	"repro/internal/manifest"
	"repro/internal/osgi"
	"repro/internal/rtos"
)

const calcXML = `<component name="calc" desc="computing job" type="periodic" cpuusage="0.05">
  <implementation bincode="demo.Calculation"/>
  <periodictask frequence="1000" runoncup="0" priority="1"/>
  <outport name="lat" interface="RTAI.SHM" type="Integer" size="100"/>
</component>`

const dispXML = `<component name="disp" desc="display" type="periodic" cpuusage="0.01">
  <implementation bincode="demo.Display"/>
  <periodictask frequence="4" runoncup="0" priority="2"/>
  <inport name="lat" interface="RTAI.SHM" type="Integer" size="100"/>
</component>`

func rig(t *testing.T) (*osgi.Framework, *rtos.Kernel, *core.DRCR) {
	t.Helper()
	fw := osgi.NewFramework()
	k := rtos.NewKernel(rtos.Config{Seed: 3})
	d, err := core.New(fw, k, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return fw, k, d
}

func deploy(t *testing.T, d *core.DRCR, srcs ...string) {
	t.Helper()
	for _, src := range srcs {
		desc, err := descriptor.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Deploy(desc); err != nil {
			t.Fatal(err)
		}
	}
}

func TestValidate(t *testing.T) {
	_, _, d := rig(t)
	inj, err := New(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer inj.Close()
	if err := inj.Install(Campaign{Faults: []Fault{{Kind: ExecInflate}}}); err == nil {
		t.Error("fault without target accepted")
	}
	if err := inj.Install(Campaign{Faults: []Fault{{Kind: BundleStop, Target: "b"}}}); err == nil {
		t.Error("BundleStop without framework accepted")
	}
	if err := inj.Install(Campaign{Faults: []Fault{{Kind: Kind(99), Target: "x"}}}); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := New(nil, nil); err == nil {
		t.Error("nil DRCR accepted")
	}
}

func TestExecInflateAppliesAndClears(t *testing.T) {
	fw, k, d := rig(t)
	deploy(t, d, calcXML)
	inj, err := New(d, fw)
	if err != nil {
		t.Fatal(err)
	}
	defer inj.Close()
	err = inj.Install(Campaign{Name: "t", Faults: []Fault{{
		Kind: ExecInflate, Target: "calc", At: time.Millisecond, For: 2 * time.Millisecond, Factor: 3,
	}}})
	if err != nil {
		t.Fatal(err)
	}
	task, _ := k.Task("calc")
	if err := k.Run(1500 * time.Microsecond); err != nil {
		t.Fatal(err)
	}
	if task.ExecScale() != 3 {
		t.Errorf("mid-fault exec scale = %v, want 3", task.ExecScale())
	}
	if err := k.Run(2 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if task.ExecScale() != 1 {
		t.Errorf("post-fault exec scale = %v, want 1", task.ExecScale())
	}
	tr := inj.Trace()
	if len(tr) != 2 || tr[0].Action != "inject" || tr[1].Action != "clear" {
		t.Errorf("trace = %v, want inject then clear", tr)
	}
}

func TestReapplyOnReactivation(t *testing.T) {
	fw, k, d := rig(t)
	deploy(t, d, calcXML)
	inj, err := New(d, fw)
	if err != nil {
		t.Fatal(err)
	}
	defer inj.Close()
	err = inj.Install(Campaign{Name: "t", Faults: []Fault{{
		Kind: Stall, Target: "calc", At: time.Millisecond, // never clears
	}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Run(2 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// Simulate the guard's reaction: tear the offender down and re-admit.
	if err := d.RevokeBudget("calc", "test"); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(2 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := d.RestoreBudget("calc"); err != nil {
		t.Fatal(err)
	}
	task, ok := k.Task("calc")
	if !ok {
		t.Fatal("calc task missing after restore")
	}
	if !task.Stalled() {
		t.Error("open stall fault not re-applied to recreated task")
	}
	found := false
	for _, r := range inj.Trace() {
		if r.Action == "reapply" && r.Kind == Stall {
			found = true
		}
	}
	if !found {
		t.Errorf("no reapply record in trace: %v", inj.Trace())
	}
}

func TestResolverFlapBlocksReadmission(t *testing.T) {
	fw, k, d := rig(t)
	deploy(t, d, calcXML, dispXML)
	inj, err := New(d, fw)
	if err != nil {
		t.Fatal(err)
	}
	defer inj.Close()
	err = inj.Install(Campaign{Name: "t", Faults: []Fault{{
		Kind: ResolverFlap, Target: "calc", At: time.Millisecond, For: 5 * time.Millisecond,
	}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Run(2 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// An already-active component keeps running — the flapping resolver
	// only vetoes future admissions.
	if info, _ := d.Component("calc"); info.State != core.Active {
		t.Fatalf("active calc evicted by flap: %v", info.State)
	}
	// But once calc needs re-admission, the veto bites.
	if err := d.RevokeBudget("calc", "test"); err != nil {
		t.Fatal(err)
	}
	if err := d.RestoreBudget("calc"); err != nil {
		t.Fatal(err)
	}
	if info, _ := d.Component("calc"); info.State == core.Active {
		t.Fatal("calc re-admitted while resolver flap open")
	}
	if info, _ := d.Component("disp"); info.State == core.Active {
		t.Fatal("disp active without its provider")
	}
	// When the flap clears, the injector re-resolves and the pair returns.
	if err := k.Run(5 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if info, _ := d.Component("calc"); info.State != core.Active {
		t.Errorf("calc = %v after flap cleared, want ACTIVE", info.State)
	}
	if info, _ := d.Component("disp"); info.State != core.Active {
		t.Errorf("disp = %v after flap cleared, want ACTIVE", info.State)
	}
}

func TestBundleStopAndRestart(t *testing.T) {
	fw, k, d := rig(t)
	m := manifest.New("demo.calc", manifest.MustParseVersion("1.0"))
	m.DRComComponents = []string{"OSGI-INF/calc.xml"}
	b, err := fw.Install(osgi.Definition{
		Manifest:  m,
		Resources: map[string]string{"OSGI-INF/calc.xml": calcXML},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	if info, _ := d.Component("calc"); info.State != core.Active {
		t.Fatalf("calc = %v, want ACTIVE", info.State)
	}
	inj, err := New(d, fw)
	if err != nil {
		t.Fatal(err)
	}
	defer inj.Close()
	err = inj.Install(Campaign{Name: "t", Faults: []Fault{{
		Kind: BundleStop, Target: "demo.calc", At: time.Millisecond, For: 2 * time.Millisecond,
	}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Run(2 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Component("calc"); ok {
		t.Error("calc still managed while its bundle is stopped")
	}
	if err := k.Run(2 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if info, ok := d.Component("calc"); !ok || info.State != core.Active {
		t.Errorf("calc not ACTIVE after bundle restart (ok=%v)", ok)
	}
}

func TestKindStrings(t *testing.T) {
	kinds := []Kind{ExecInflate, Stall, MailboxDrop, MailboxDup, SHMFreeze, BundleStop, ResolverFlap}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("kind %d has empty or duplicate string %q", int(k), s)
		}
		seen[s] = true
	}
}

// TestCrashFault pins the crash kind: the target drops to DISABLED and
// stays there (recovery belongs to a supervisor), its dependants cascade,
// and the clear closes the causal chain without restarting anything.
func TestCrashFault(t *testing.T) {
	_, k, d := rig(t)
	deploy(t, d, calcXML, dispXML)
	inj, err := New(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer inj.Close()
	err = inj.Install(Campaign{Name: "crash", Faults: []Fault{{
		Kind: Crash, Target: "calc", At: time.Millisecond, For: 2 * time.Millisecond,
	}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Run(2 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if info, _ := d.Component("calc"); info.State != core.Disabled {
		t.Fatalf("calc = %v after crash, want DISABLED", info.State)
	}
	if info, _ := d.Component("disp"); info.State == core.Active {
		t.Fatal("disp active without its crashed provider")
	}
	if err := k.Run(5 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// The clear does not restart: no supervisor is attached.
	if info, _ := d.Component("calc"); info.State != core.Disabled {
		t.Fatalf("calc = %v after clear, want still DISABLED", info.State)
	}
	var injected, cleared bool
	for _, r := range inj.Trace() {
		if r.Kind == Crash && r.Action == "inject" {
			injected = true
		}
		if r.Kind == Crash && r.Action == "clear" {
			cleared = true
		}
	}
	if !injected || !cleared {
		t.Fatalf("inject=%v clear=%v, want both (trace %v)", injected, cleared, inj.Trace())
	}
}
