// Package fault is a deterministic fault injector for DRCom systems: it
// perturbs a running System through scripted campaigns driven entirely by
// the simulated clock, so the same seed and the same campaign produce a
// byte-identical sequence of injections, violations, and recoveries.
//
// Supported fault kinds cover the failure modes the paper's adaptation
// story must survive: execution-time inflation (a component silently
// exceeding its declared cpuusage budget), stuck tasks (deadline-miss
// storms), IPC faults (mailboxes dropping or duplicating messages, SHM
// segments going stale), spurious bundle stops, and resolver flapping (a
// customized resolving service that changes its vote at run time).
//
// Faults are plain data: a Campaign is a list of (at, duration, kind,
// target) tuples. The injector schedules apply/clear callbacks on the sim
// clock, tracks which faults are open, and re-applies open faults when the
// DRCR recreates a component's task after re-admission — so a fault
// outlives the suspension it provokes, exactly like a real defect would.
package fault

import (
	"fmt"
	"time"

	"repro/internal/sim"
)

// Kind classifies an injectable fault.
type Kind int

// Fault kinds.
const (
	// ExecInflate multiplies the target task's execution time by Factor,
	// making the component overrun its declared budget.
	ExecInflate Kind = iota + 1
	// Stall makes the target task run far past its deadline every release
	// (a stuck component: deadline-miss storm).
	Stall
	// MailboxDrop makes the target mailbox silently discard every send.
	MailboxDrop
	// MailboxDup makes the target mailbox enqueue every message twice.
	MailboxDup
	// SHMFreeze makes the target SHM segment ignore writes, so its
	// generation counter stops advancing (stale port).
	SHMFreeze
	// BundleStop spuriously stops the target bundle (restarted on clear).
	BundleStop
	// ResolverFlap registers a customized resolving service that denies
	// the target component while the fault is open, then withdraws the
	// veto — a resolver changing its vote at run time.
	ResolverFlap
	// Crash abruptly fails the target component: its instance is torn
	// down and it lands DISABLED, where only a restart supervisor (or an
	// explicit Enable) brings it back. Clearing the fault closes the open
	// cause but does not restart the component.
	Crash
	// ExecDrift ramps the target task's execution scale linearly from 1
	// up to Factor over the fault's For window in Step-spaced increments
	// (default 10 ms) — the slow degradation a predictive monitor should
	// catch before the first hard overrun. Clearing resets the scale.
	ExecDrift
)

func (k Kind) String() string {
	switch k {
	case ExecInflate:
		return "exec-inflate"
	case Stall:
		return "stall"
	case MailboxDrop:
		return "mailbox-drop"
	case MailboxDup:
		return "mailbox-dup"
	case SHMFreeze:
		return "shm-freeze"
	case BundleStop:
		return "bundle-stop"
	case ResolverFlap:
		return "resolver-flap"
	case Crash:
		return "crash"
	case ExecDrift:
		return "exec-drift"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Fault is one scripted perturbation.
type Fault struct {
	Kind Kind
	// Target names what the fault hits: a component/task name for
	// ExecInflate, Stall and ResolverFlap; a mailbox or SHM name for the
	// IPC kinds; a bundle symbolic name for BundleStop.
	Target string
	// At is the injection time, as an offset from Install.
	At time.Duration
	// For is how long the fault stays open; zero means it never clears.
	For time.Duration
	// Factor is the execution-time multiplier for ExecInflate, and the
	// ramp's final multiplier for ExecDrift (default 2).
	Factor float64
	// Step is the ramp increment cadence for ExecDrift (default 10 ms);
	// other kinds ignore it.
	Step time.Duration
}

// Campaign is a named, ordered fault script.
type Campaign struct {
	Name   string
	Faults []Fault
}

// Record is one entry of the injector's trace.
type Record struct {
	At     sim.Time
	Action string // "inject" | "clear" | "reapply" | "error"
	Kind   Kind
	Target string
	Detail string
}

func (r Record) String() string {
	return fmt.Sprintf("[%v] %s %v %s%s", r.At, r.Action, r.Kind, r.Target, suffix(r.Detail))
}

func suffix(detail string) string {
	if detail == "" {
		return ""
	}
	return " (" + detail + ")"
}
