package sim

import "math"

// Rand is a small, fast, deterministic pseudo-random stream (SplitMix64
// seeded xorshift128+). Each subsystem takes its own stream so adding a
// consumer never perturbs another subsystem's draws.
//
// The zero value is not useful; construct with NewRand.
type Rand struct {
	s0, s1 uint64
}

// NewRand returns a stream seeded from seed via SplitMix64.
func NewRand(seed uint64) *Rand {
	r := &Rand{}
	r.Reseed(seed)
	return r
}

// Reseed resets the stream as if freshly created with seed.
func (r *Rand) Reseed(seed uint64) {
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	r.s0 = next()
	r.s1 = next()
	if r.s0 == 0 && r.s1 == 0 {
		r.s0 = 1 // xorshift state must be non-zero
	}
}

// Fork derives an independent stream; the parent advances by one draw.
func (r *Rand) Fork() *Rand { return NewRand(r.Uint64()) }

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	x, y := r.s0, r.s1
	r.s0 = y
	x ^= x << 23
	x ^= x >> 17
	x ^= y ^ (y >> 26)
	r.s1 = x
	return x + y
}

// Float64 returns a value uniformly distributed in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a value uniformly distributed in [0, n). It panics if n <= 0,
// mirroring math/rand.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a value uniformly distributed in [0, n). It panics if
// n <= 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// NormFloat64 returns a normally distributed value with mean 0 and standard
// deviation 1, using the Box-Muller transform.
func (r *Rand) NormFloat64() float64 {
	for {
		u1 := r.Float64()
		if u1 == 0 {
			continue
		}
		u2 := r.Float64()
		return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	}
}

// ExpFloat64 returns an exponentially distributed value with rate 1.
func (r *Rand) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u == 0 {
			continue
		}
		return -math.Log(u)
	}
}

// Bool returns true with probability p (clamped to [0,1]).
func (r *Rand) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}
