package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestClockZeroValue(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("zero clock Now = %v, want 0", c.Now())
	}
	if c.Pending() != 0 {
		t.Fatalf("zero clock Pending = %d, want 0", c.Pending())
	}
	if c.Step() {
		t.Fatal("Step on empty clock reported an event")
	}
}

func TestScheduleAndRun(t *testing.T) {
	c := NewClock()
	var order []string
	mk := func(name string) Handler {
		return func(Time) { order = append(order, name) }
	}
	if _, err := c.Schedule(30, "c", mk("c")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Schedule(10, "a", mk("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Schedule(20, "b", mk("b")); err != nil {
		t.Fatal(err)
	}
	if err := c.RunUntil(100); err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "c"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if c.Now() != 100 {
		t.Fatalf("Now = %v, want 100", c.Now())
	}
}

func TestEqualTimeEventsFireInScheduleOrder(t *testing.T) {
	c := NewClock()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		if _, err := c.Schedule(5, "e", func(Time) { order = append(order, i) }); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Drain(0); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want ascending", order)
		}
	}
}

func TestSchedulePastRejected(t *testing.T) {
	c := NewClock()
	if _, err := c.Schedule(10, "x", func(Time) {}); err != nil {
		t.Fatal(err)
	}
	if err := c.RunUntil(50); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Schedule(20, "late", func(Time) {}); err == nil {
		t.Fatal("scheduling in the past succeeded")
	}
}

func TestScheduleNilHandlerRejected(t *testing.T) {
	c := NewClock()
	if _, err := c.Schedule(1, "nil", nil); err == nil {
		t.Fatal("nil handler accepted")
	}
}

func TestAfterNegativeRejected(t *testing.T) {
	c := NewClock()
	if _, err := c.After(-time.Nanosecond, "neg", func(Time) {}); err == nil {
		t.Fatal("negative delay accepted")
	}
}

func TestCancel(t *testing.T) {
	c := NewClock()
	fired := false
	e, err := c.Schedule(10, "x", func(Time) { fired = true })
	if err != nil {
		t.Fatal(err)
	}
	if !e.Pending() {
		t.Fatal("event not pending after schedule")
	}
	e.Cancel()
	if e.Pending() {
		t.Fatal("event pending after cancel")
	}
	e.Cancel() // idempotent
	if err := c.Drain(0); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelOneOfEqualTime(t *testing.T) {
	c := NewClock()
	var got []string
	e1, _ := c.Schedule(10, "a", func(Time) { got = append(got, "a") })
	if _, err := c.Schedule(10, "b", func(Time) { got = append(got, "b") }); err != nil {
		t.Fatal(err)
	}
	e1.Cancel()
	if err := c.Drain(0); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "b" {
		t.Fatalf("got %v, want [b]", got)
	}
}

func TestHandlerSchedulesMore(t *testing.T) {
	c := NewClock()
	count := 0
	var tick Handler
	tick = func(now Time) {
		count++
		if count < 5 {
			if _, err := c.Schedule(now.Add(10), "tick", tick); err != nil {
				t.Errorf("reschedule: %v", err)
			}
		}
	}
	if _, err := c.Schedule(0, "tick", tick); err != nil {
		t.Fatal(err)
	}
	if err := c.Drain(0); err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if c.Now() != 40 {
		t.Fatalf("Now = %v, want 40", c.Now())
	}
}

func TestRunUntilStopsBeforeLaterEvents(t *testing.T) {
	c := NewClock()
	fired := false
	if _, err := c.Schedule(100, "late", func(Time) { fired = true }); err != nil {
		t.Fatal(err)
	}
	if err := c.RunUntil(50); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("event after deadline fired")
	}
	if c.Now() != 50 {
		t.Fatalf("Now = %v, want 50", c.Now())
	}
	if err := c.RunUntil(100); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("event at deadline did not fire")
	}
}

func TestDrainLimit(t *testing.T) {
	c := NewClock()
	var tick Handler
	tick = func(now Time) {
		_, _ = c.Schedule(now.Add(1), "tick", tick)
	}
	if _, err := c.Schedule(0, "tick", tick); err != nil {
		t.Fatal(err)
	}
	if err := c.Drain(1000); err == nil {
		t.Fatal("runaway drain not detected")
	}
}

func TestRunForNegative(t *testing.T) {
	c := NewClock()
	if err := c.RunFor(-1); err == nil {
		t.Fatal("negative RunFor accepted")
	}
}

func TestReentrantRunRejected(t *testing.T) {
	c := NewClock()
	var inner error
	if _, err := c.Schedule(1, "outer", func(Time) {
		inner = c.RunUntil(100)
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.RunUntil(10); err != nil {
		t.Fatal(err)
	}
	if inner != ErrReentrantRun {
		t.Fatalf("inner run err = %v, want ErrReentrantRun", inner)
	}
}

func TestTimeString(t *testing.T) {
	if got := Time(1500).String(); got != "1.5µs" {
		t.Fatalf("Time(1500).String() = %q", got)
	}
	if got := Infinity.String(); got != "+inf" {
		t.Fatalf("Infinity.String() = %q", got)
	}
}

func TestTimeArithmetic(t *testing.T) {
	a := Time(100)
	if a.Add(50) != Time(150) {
		t.Fatal("Add broken")
	}
	if Time(150).Sub(a) != 50 {
		t.Fatal("Sub broken")
	}
}

// Property: for any set of offsets, events fire in non-decreasing time
// order and the clock never runs backwards.
func TestEventOrderingProperty(t *testing.T) {
	prop := func(offsets []uint16) bool {
		c := NewClock()
		var last Time = -1
		ok := true
		for _, off := range offsets {
			at := Time(off)
			if _, err := c.Schedule(at, "p", func(now Time) {
				if now < last {
					ok = false
				}
				last = now
			}); err != nil {
				return false
			}
		}
		if err := c.Drain(0); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
