// Package sim provides a deterministic discrete-event simulation kernel:
// a virtual nanosecond clock, an event queue with stable ordering, and
// seedable pseudo-random streams.
//
// Everything above it in this repository (the simulated RTAI kernel, the
// DRCR runtime, the benchmark harness) advances time exclusively through
// this package, which makes every experiment reproducible bit-for-bit from
// its seed.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time int64

// Duration is a span of virtual time in nanoseconds. It converts trivially
// to and from time.Duration, which is also nanosecond-based.
type Duration = time.Duration

// Infinity is a sentinel time later than any schedulable event.
const Infinity Time = math.MaxInt64

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// String formats the time as a duration since simulation start.
func (t Time) String() string {
	if t == Infinity {
		return "+inf"
	}
	return Duration(t).String()
}

// Handler is a callback run when an event fires. The handler may schedule
// further events on the same clock.
type Handler func(now Time)

// Event is a scheduled occurrence. The zero Event is invalid; obtain events
// through Clock.Schedule.
//
// An Event handle is live from Schedule until the event fires or its
// cancellation is collected; the clock then recycles the struct for later
// Schedule calls, so holders must drop their reference at fire time (every
// dispatcher in this repository nils its field first thing in the handler).
type Event struct {
	at      Time
	seq     uint64 // tie-break so equal-time events fire in schedule order
	fn      Handler
	index   int // heap index, -1 when not queued
	cancel  bool
	label   string
	onClock *Clock
	free    *Event // free-list link while recycled
}

// Time reports when the event is (or was) due.
func (e *Event) Time() Time { return e.at }

// Label reports the diagnostic label given at schedule time.
func (e *Event) Label() string { return e.label }

// Pending reports whether the event is still queued and not cancelled.
func (e *Event) Pending() bool { return e != nil && e.index >= 0 && !e.cancel }

// Cancel removes the event from its queue. Cancelling an already-fired or
// already-cancelled event is a no-op.
//
// Cancellation is lazy: the event is only marked dead and skipped (and its
// struct recycled) when the queue reaches it, so Cancel is O(1) instead of
// an O(log n) heap removal. A compaction pass keeps the queue from
// accumulating dead entries under cancel-heavy workloads.
func (e *Event) Cancel() {
	if e == nil || e.cancel || e.index < 0 || e.onClock == nil {
		return
	}
	e.cancel = true
	c := e.onClock
	c.cancelled++
	if c.cancelled > compactThreshold && c.cancelled > len(c.queue)/2 {
		c.compact()
	}
}

// compactThreshold is the minimum number of dead entries before a Cancel
// triggers queue compaction (and dead entries must also outnumber live
// ones). Small queues never compact; the per-pop skip handles them.
const compactThreshold = 64

// eventQueue is a min-heap ordered by (time, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Clock is a discrete-event virtual clock. The zero value is ready to use
// at time zero. Clock is not safe for concurrent use; the simulation is
// single-threaded by design.
type Clock struct {
	now       Time
	queue     eventQueue
	nextSeq   uint64
	fired     uint64
	running   bool
	cancelled int    // dead entries still sitting in queue (lazy cancel)
	freeList  *Event // recycled Event structs, linked through Event.free
	freeLen   int
}

// freeListMax bounds the free list so a one-off scheduling burst does not
// pin its peak event count in memory forever.
const freeListMax = 1024

// ErrReentrantRun is returned when Run variants are invoked from inside an
// event handler.
var ErrReentrantRun = errors.New("sim: reentrant clock run")

// initialQueueCap pre-sizes the event heap so steady-state scheduling
// never grows the backing array.
const initialQueueCap = 128

// NewClock returns a clock at time zero.
func NewClock() *Clock {
	return &Clock{queue: make(eventQueue, 0, initialQueueCap)}
}

// Now reports the current virtual time.
func (c *Clock) Now() Time { return c.now }

// Pending reports the number of queued events.
func (c *Clock) Pending() int { return len(c.queue) - c.cancelled }

// Fired reports the total number of events executed so far.
func (c *Clock) Fired() uint64 { return c.fired }

// NextEventTime reports the due time of the earliest pending (not
// cancelled) event, or Infinity when the queue is empty. Conservative
// parallel execution uses it to compute the horizon a clock may safely
// advance to.
func (c *Clock) NextEventTime() Time {
	if e := c.peek(); e != nil {
		return e.at
	}
	return Infinity
}

// Schedule queues fn to run at absolute time at. Scheduling in the past
// (before Now) is an error; scheduling exactly at Now is allowed and the
// event runs on the next step. The label is for diagnostics only.
func (c *Clock) Schedule(at Time, label string, fn Handler) (*Event, error) {
	if fn == nil {
		return nil, errors.New("sim: nil handler")
	}
	if at < c.now {
		return nil, fmt.Errorf("sim: schedule %q at %v before now %v", label, at, c.now)
	}
	e := c.alloc()
	e.at, e.seq, e.fn, e.label, e.onClock, e.index = at, c.nextSeq, fn, label, c, -1
	c.nextSeq++
	heap.Push(&c.queue, e)
	return e, nil
}

// alloc takes an Event from the free list, falling back to the heap
// allocator only when the list is dry; in steady state every fired event
// is recycled and Schedule allocates nothing.
func (c *Clock) alloc() *Event {
	if e := c.freeList; e != nil {
		c.freeList = e.free
		c.freeLen--
		e.free = nil
		return e
	}
	return &Event{}
}

// recycle returns a dead (fired or collected-cancelled) event to the free
// list. Handler and label references are dropped immediately so recycled
// events never pin user closures.
func (c *Clock) recycle(e *Event) {
	e.fn = nil
	e.label = ""
	e.cancel = false
	e.index = -1
	if c.freeLen >= freeListMax {
		return // let the GC take the overflow
	}
	e.free = c.freeList
	c.freeList = e
	c.freeLen++
}

// compact rebuilds the queue without its dead entries, recycling them.
// Heap order is re-established from the strict (time, seq) total order, so
// the pop sequence is unchanged.
func (c *Clock) compact() {
	live := c.queue[:0]
	for _, e := range c.queue {
		if e.cancel {
			c.recycle(e)
		} else {
			live = append(live, e)
		}
	}
	for i := len(live); i < len(c.queue); i++ {
		c.queue[i] = nil
	}
	c.queue = live
	c.cancelled = 0
	for i, e := range c.queue {
		e.index = i
	}
	heap.Init(&c.queue)
}

// After queues fn to run d from now. Negative d is an error.
func (c *Clock) After(d Duration, label string, fn Handler) (*Event, error) {
	if d < 0 {
		return nil, fmt.Errorf("sim: negative delay %v for %q", d, label)
	}
	return c.Schedule(c.now.Add(d), label, fn)
}

// Step fires the single earliest pending event, advancing the clock to its
// time. It reports whether an event fired.
func (c *Clock) Step() bool {
	for len(c.queue) > 0 {
		e := heap.Pop(&c.queue).(*Event)
		if e.cancel {
			c.cancelled--
			c.recycle(e)
			continue
		}
		c.now = e.at
		c.fired++
		fn := e.fn
		e.fn = nil
		fn(c.now)
		// Recycle after the handler so the struct cannot be reused while
		// its own firing is still on the stack.
		c.recycle(e)
		return true
	}
	return false
}

// RunUntil fires events in order until the queue is empty or the next event
// is strictly after deadline, then advances the clock to deadline.
func (c *Clock) RunUntil(deadline Time) error {
	if c.running {
		return ErrReentrantRun
	}
	if deadline < c.now {
		return fmt.Errorf("sim: deadline %v before now %v", deadline, c.now)
	}
	c.running = true
	defer func() { c.running = false }()
	for len(c.queue) > 0 {
		next := c.peek()
		if next == nil {
			break
		}
		if next.at > deadline {
			break
		}
		c.Step()
	}
	if deadline > c.now && deadline != Infinity {
		c.now = deadline
	}
	return nil
}

// RunBefore fires events in order while they are strictly before t, then
// advances the clock to t without firing anything due exactly at t.
// Sharded kernels use it to realise the "control events first" tie rule
// at lookahead barriers: a shard clock is brought up to the barrier
// instant while events scheduled exactly at the barrier stay queued for
// the next window.
func (c *Clock) RunBefore(t Time) error {
	if c.running {
		return ErrReentrantRun
	}
	if t < c.now {
		return fmt.Errorf("sim: barrier %v before now %v", t, c.now)
	}
	c.running = true
	defer func() { c.running = false }()
	for {
		next := c.peek()
		if next == nil || next.at >= t {
			break
		}
		c.Step()
	}
	if t > c.now && t != Infinity {
		c.now = t
	}
	return nil
}

// RunFor advances the clock by d, firing all events due in the window.
func (c *Clock) RunFor(d Duration) error {
	if d < 0 {
		return fmt.Errorf("sim: negative run duration %v", d)
	}
	return c.RunUntil(c.now.Add(d))
}

// Drain fires every pending event. It guards against runaway simulations
// with maxEvents; zero means no limit.
func (c *Clock) Drain(maxEvents uint64) error {
	if c.running {
		return ErrReentrantRun
	}
	c.running = true
	defer func() { c.running = false }()
	var n uint64
	for c.Step() {
		n++
		if maxEvents > 0 && n >= maxEvents {
			return fmt.Errorf("sim: drain exceeded %d events", maxEvents)
		}
	}
	return nil
}

func (c *Clock) peek() *Event {
	for len(c.queue) > 0 {
		e := c.queue[0]
		if !e.cancel {
			return e
		}
		heap.Pop(&c.queue)
		c.cancelled--
		c.recycle(e)
	}
	return nil
}
