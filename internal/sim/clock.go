// Package sim provides a deterministic discrete-event simulation kernel:
// a virtual nanosecond clock, an event queue with stable ordering, and
// seedable pseudo-random streams.
//
// Everything above it in this repository (the simulated RTAI kernel, the
// DRCR runtime, the benchmark harness) advances time exclusively through
// this package, which makes every experiment reproducible bit-for-bit from
// its seed.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time int64

// Duration is a span of virtual time in nanoseconds. It converts trivially
// to and from time.Duration, which is also nanosecond-based.
type Duration = time.Duration

// Infinity is a sentinel time later than any schedulable event.
const Infinity Time = math.MaxInt64

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// String formats the time as a duration since simulation start.
func (t Time) String() string {
	if t == Infinity {
		return "+inf"
	}
	return Duration(t).String()
}

// Handler is a callback run when an event fires. The handler may schedule
// further events on the same clock.
type Handler func(now Time)

// Event is a scheduled occurrence. The zero Event is invalid; obtain events
// through Clock.Schedule.
type Event struct {
	at      Time
	seq     uint64 // tie-break so equal-time events fire in schedule order
	fn      Handler
	index   int // heap index, -1 when not queued
	cancel  bool
	label   string
	onClock *Clock
}

// Time reports when the event is (or was) due.
func (e *Event) Time() Time { return e.at }

// Label reports the diagnostic label given at schedule time.
func (e *Event) Label() string { return e.label }

// Pending reports whether the event is still queued and not cancelled.
func (e *Event) Pending() bool { return e != nil && e.index >= 0 && !e.cancel }

// Cancel removes the event from its queue. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Event) Cancel() {
	if e == nil || e.cancel {
		return
	}
	e.cancel = true
	if e.index >= 0 && e.onClock != nil {
		heap.Remove(&e.onClock.queue, e.index)
	}
}

// eventQueue is a min-heap ordered by (time, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Clock is a discrete-event virtual clock. The zero value is ready to use
// at time zero. Clock is not safe for concurrent use; the simulation is
// single-threaded by design.
type Clock struct {
	now     Time
	queue   eventQueue
	nextSeq uint64
	fired   uint64
	running bool
}

// ErrReentrantRun is returned when Run variants are invoked from inside an
// event handler.
var ErrReentrantRun = errors.New("sim: reentrant clock run")

// NewClock returns a clock at time zero.
func NewClock() *Clock { return &Clock{} }

// Now reports the current virtual time.
func (c *Clock) Now() Time { return c.now }

// Pending reports the number of queued events.
func (c *Clock) Pending() int { return len(c.queue) }

// Fired reports the total number of events executed so far.
func (c *Clock) Fired() uint64 { return c.fired }

// Schedule queues fn to run at absolute time at. Scheduling in the past
// (before Now) is an error; scheduling exactly at Now is allowed and the
// event runs on the next step. The label is for diagnostics only.
func (c *Clock) Schedule(at Time, label string, fn Handler) (*Event, error) {
	if fn == nil {
		return nil, errors.New("sim: nil handler")
	}
	if at < c.now {
		return nil, fmt.Errorf("sim: schedule %q at %v before now %v", label, at, c.now)
	}
	e := &Event{at: at, seq: c.nextSeq, fn: fn, label: label, onClock: c, index: -1}
	c.nextSeq++
	heap.Push(&c.queue, e)
	return e, nil
}

// After queues fn to run d from now. Negative d is an error.
func (c *Clock) After(d Duration, label string, fn Handler) (*Event, error) {
	if d < 0 {
		return nil, fmt.Errorf("sim: negative delay %v for %q", d, label)
	}
	return c.Schedule(c.now.Add(d), label, fn)
}

// Step fires the single earliest pending event, advancing the clock to its
// time. It reports whether an event fired.
func (c *Clock) Step() bool {
	for len(c.queue) > 0 {
		e := heap.Pop(&c.queue).(*Event)
		if e.cancel {
			continue
		}
		c.now = e.at
		c.fired++
		e.fn(c.now)
		return true
	}
	return false
}

// RunUntil fires events in order until the queue is empty or the next event
// is strictly after deadline, then advances the clock to deadline.
func (c *Clock) RunUntil(deadline Time) error {
	if c.running {
		return ErrReentrantRun
	}
	if deadline < c.now {
		return fmt.Errorf("sim: deadline %v before now %v", deadline, c.now)
	}
	c.running = true
	defer func() { c.running = false }()
	for len(c.queue) > 0 {
		next := c.peek()
		if next == nil {
			break
		}
		if next.at > deadline {
			break
		}
		c.Step()
	}
	if deadline > c.now && deadline != Infinity {
		c.now = deadline
	}
	return nil
}

// RunFor advances the clock by d, firing all events due in the window.
func (c *Clock) RunFor(d Duration) error {
	if d < 0 {
		return fmt.Errorf("sim: negative run duration %v", d)
	}
	return c.RunUntil(c.now.Add(d))
}

// Drain fires every pending event. It guards against runaway simulations
// with maxEvents; zero means no limit.
func (c *Clock) Drain(maxEvents uint64) error {
	if c.running {
		return ErrReentrantRun
	}
	c.running = true
	defer func() { c.running = false }()
	var n uint64
	for c.Step() {
		n++
		if maxEvents > 0 && n >= maxEvents {
			return fmt.Errorf("sim: drain exceeded %d events", maxEvents)
		}
	}
	return nil
}

func (c *Clock) peek() *Event {
	for len(c.queue) > 0 {
		e := c.queue[0]
		if !e.cancel {
			return e
		}
		heap.Pop(&c.queue)
	}
	return nil
}
