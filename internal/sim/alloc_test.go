package sim

import "testing"

// nopHandler is package-level so taking its reference never captures
// loop state.
func nopHandler(Time) {}

// TestScheduleStepAllocFree proves the hot path of the event loop —
// Schedule followed by Step — allocates nothing once the Event pool is
// warm. This is the property the whole simulation's throughput rests on.
func TestScheduleStepAllocFree(t *testing.T) {
	c := NewClock()
	// Warm the pool: one event cycling through schedule/fire seeds the
	// free list.
	if _, err := c.Schedule(c.Now()+1, "warm", nopHandler); err != nil {
		t.Fatal(err)
	}
	c.Step()

	allocs := testing.AllocsPerRun(1000, func() {
		if _, err := c.Schedule(c.Now()+1, "tick", nopHandler); err != nil {
			t.Fatal(err)
		}
		if !c.Step() {
			t.Fatal("no event fired")
		}
	})
	if allocs != 0 {
		t.Fatalf("Schedule+Step allocated %.2f objects per cycle, want 0", allocs)
	}
}

// TestCancelCollectAllocFree proves the cancel-and-collect path recycles
// through the pool too: scheduling, cancelling, and sweeping past the
// dead entry allocates nothing in steady state.
func TestCancelCollectAllocFree(t *testing.T) {
	c := NewClock()
	for i := 0; i < 4; i++ { // warm the pool with a few structs
		if _, err := c.Schedule(c.Now()+1, "warm", nopHandler); err != nil {
			t.Fatal(err)
		}
	}
	for c.Step() {
	}

	allocs := testing.AllocsPerRun(1000, func() {
		ev, err := c.Schedule(c.Now()+1, "doomed", nopHandler)
		if err != nil {
			t.Fatal(err)
		}
		live, err := c.Schedule(c.Now()+2, "live", nopHandler)
		if err != nil {
			t.Fatal(err)
		}
		ev.Cancel()
		if !c.Step() { // skips the corpse, fires live
			t.Fatal("no event fired")
		}
		if live.Pending() {
			t.Fatal("live event still pending after step")
		}
	})
	if allocs != 0 {
		t.Fatalf("Schedule+Cancel+Step allocated %.2f objects per cycle, want 0", allocs)
	}
}
