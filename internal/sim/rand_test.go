package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with same seed diverged at draw %d", i)
		}
	}
}

func TestRandDifferentSeedsDiffer(t *testing.T) {
	a, b := NewRand(1), NewRand(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different seeds matched %d/100 draws", same)
	}
}

func TestReseedResets(t *testing.T) {
	r := NewRand(7)
	first := r.Uint64()
	r.Uint64()
	r.Reseed(7)
	if got := r.Uint64(); got != first {
		t.Fatalf("after reseed first draw = %d, want %d", got, first)
	}
}

func TestForkIndependence(t *testing.T) {
	parent := NewRand(9)
	child := parent.Fork()
	// The child must be deterministic given the parent seed.
	parent2 := NewRand(9)
	child2 := parent2.Fork()
	for i := 0; i < 100; i++ {
		if child.Uint64() != child2.Uint64() {
			t.Fatal("forked streams not reproducible")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRand(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRand(4)
	seen := map[int]bool{}
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) produced only %d distinct values", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRand(1).Intn(0)
}

func TestInt63nPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Int63n(-1) did not panic")
		}
	}()
	NewRand(1).Int63n(-1)
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRand(5)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRand(6)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("ExpFloat64 = %v < 0", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean = %v, want ~1", mean)
	}
}

func TestBoolEdges(t *testing.T) {
	r := NewRand(8)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := NewRand(10)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) hit rate = %v", frac)
	}
}

// Property: any seed yields a usable stream whose Intn stays in range.
func TestRandProperty(t *testing.T) {
	prop := func(seed uint64, n uint8) bool {
		bound := int(n%100) + 1
		r := NewRand(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(bound)
			if v < 0 || v >= bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
