package hrc

import (
	"testing"
	"time"

	"repro/internal/rtos"
)

var noNoise = rtos.TimingModel{}

func newKernel() *rtos.Kernel {
	return rtos.NewKernel(rtos.Config{Timing: &noNoise, Seed: 9})
}

func periodicSpec(name string) rtos.TaskSpec {
	return rtos.TaskSpec{
		Name: name, Type: rtos.Periodic, Period: time.Millisecond,
		Priority: 2, ExecTime: 50 * time.Microsecond,
	}
}

func TestNewValidation(t *testing.T) {
	k := newKernel()
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil kernel accepted")
	}
	spec := periodicSpec("x")
	spec.Body = func(*rtos.JobContext) {}
	if _, err := New(Config{Kernel: k, Spec: spec}); err == nil {
		t.Fatal("pre-set Body accepted")
	}
	spec = periodicSpec("x")
	spec.Overhead = time.Microsecond
	if _, err := New(Config{Kernel: k, Spec: spec}); err == nil {
		t.Fatal("pre-set Overhead accepted")
	}
	// Bad task spec propagates, and the mailbox is rolled back so the
	// name can be reused.
	bad := periodicSpec("y")
	bad.Period = 0
	if _, err := New(Config{Kernel: k, Spec: bad}); err == nil {
		t.Fatal("bad spec accepted")
	}
	if _, err := New(Config{Kernel: k, Spec: periodicSpec("y")}); err != nil {
		t.Fatalf("mailbox not rolled back: %v", err)
	}
}

func TestFunctionalBodyRuns(t *testing.T) {
	k := newKernel()
	var runs int
	c, err := New(Config{Kernel: k, Spec: periodicSpec("cam"), Body: func(*rtos.JobContext) { runs++ }})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(10 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if runs < 10 {
		t.Fatalf("runs = %d", runs)
	}
	st := c.Status()
	if st.Jobs == 0 || st.TaskState != rtos.TaskActive {
		t.Fatalf("status = %+v", st)
	}
}

func TestAsyncSuspendTakesEffectAtJobBoundary(t *testing.T) {
	k := newKernel()
	c, err := New(Config{Kernel: k, Spec: periodicSpec("cam")})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(5 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := c.Suspend(); err != nil {
		t.Fatal(err)
	}
	// Command sits in the mailbox; the task is still active until its
	// next job polls it.
	if c.Task().State() != rtos.TaskActive {
		t.Fatal("suspend applied synchronously in async mode")
	}
	if err := k.Run(2 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if c.Task().State() != rtos.TaskSuspended {
		t.Fatalf("task state = %v after poll", c.Task().State())
	}
	jobs := c.Status().Jobs
	if err := k.Run(5 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if c.Status().Jobs != jobs {
		t.Fatal("suspended task kept running")
	}
	// Resume is direct: the task cannot poll its own mailbox while
	// suspended.
	if err := c.Resume(); err != nil {
		t.Fatal(err)
	}
	if c.Task().State() != rtos.TaskActive {
		t.Fatal("resume not immediate")
	}
	if err := k.Run(5 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if c.Status().Jobs <= jobs {
		t.Fatal("resumed task not running")
	}
}

func TestSetPropertyAsync(t *testing.T) {
	k := newKernel()
	c, err := New(Config{Kernel: k, Spec: periodicSpec("cam"), Props: map[string]string{"gain": "1"}})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := c.Property("gain"); !ok || v != "1" {
		t.Fatalf("seed property = %q, %v", v, ok)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	if err := c.SetProperty("gain", "8"); err != nil {
		t.Fatal(err)
	}
	// Not applied until the RT side polls.
	if v, _ := c.Property("gain"); v != "1" {
		t.Fatalf("property applied synchronously: %q", v)
	}
	if err := k.Run(2 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if v, _ := c.Property("gain"); v != "8" {
		t.Fatalf("property after poll = %q", v)
	}
	if got := c.Status().CommandsServed; got != 1 {
		t.Fatalf("served = %d", got)
	}
	if err := c.SetProperty("", "x"); err == nil {
		t.Fatal("empty key accepted")
	}
	if err := c.SetProperty("a\x00b", "x"); err == nil {
		t.Fatal("NUL key accepted")
	}
	props := c.Properties()
	props["gain"] = "tampered"
	if v, _ := c.Property("gain"); v != "8" {
		t.Fatal("Properties() aliases internal map")
	}
}

func TestMailboxOverflowCountsLost(t *testing.T) {
	k := newKernel()
	c, err := New(Config{Kernel: k, Spec: periodicSpec("cam"), MailboxCapacity: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	// Fill the box without letting the task poll (no Run in between).
	if err := c.SetProperty("a", "1"); err != nil {
		t.Fatal(err)
	}
	if err := c.SetProperty("b", "2"); err != nil {
		t.Fatal(err)
	}
	if err := c.SetProperty("c", "3"); err == nil {
		t.Fatal("overflow not reported")
	}
	if got := c.Status().CommandsLost; got != 1 {
		t.Fatalf("lost = %d", got)
	}
}

func TestAsyncCommandsDoNotPerturbLatency(t *testing.T) {
	k := newKernel()
	c, err := New(Config{Kernel: k, Spec: periodicSpec("cam")})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	// Command storm: a set-property every simulated 2ms.
	for i := 0; i < 50; i++ {
		if err := k.Run(2 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
		if err := c.SetProperty("p", "v"); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Task().Stats().Latency.Max; got != 0 {
		t.Fatalf("async command storm perturbed dispatch latency: max %d ns", got)
	}
}

func TestSyncCommandsPerturbLatency(t *testing.T) {
	k := newKernel()
	c, err := New(Config{Kernel: k, Spec: periodicSpec("cam"), Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	// Send each command right before a release so the handler burst
	// collides with the task's dispatch.
	for i := 0; i < 50; i++ {
		if err := k.Run(2*time.Millisecond - 5*time.Microsecond); err != nil {
			t.Fatal(err)
		}
		if err := c.SetProperty("p", "v"); err != nil {
			t.Fatal(err)
		}
		if err := k.Run(5 * time.Microsecond); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Task().Stats().Latency.Max; got <= 0 {
		t.Fatalf("sync command handling did not perturb latency: max %d ns", got)
	}
	// Sync mode applies immediately.
	if v, _ := c.Property("p"); v != "v" {
		t.Fatalf("sync property = %q", v)
	}
}

func TestClose(t *testing.T) {
	k := newKernel()
	c, err := New(Config{Kernel: k, Spec: periodicSpec("cam")})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := c.Start(); err == nil {
		t.Fatal("closed component started")
	}
	if err := c.Suspend(); err == nil {
		t.Fatal("closed component accepted command")
	}
	if err := c.Resume(); err == nil {
		t.Fatal("closed component resumed")
	}
	// Name fully released: a new component can reuse it.
	if _, err := New(Config{Kernel: k, Spec: periodicSpec("cam")}); err != nil {
		t.Fatalf("name not released: %v", err)
	}
}

func TestHandlerName(t *testing.T) {
	if got := handlerName("cam"); got != "cam!" {
		t.Fatalf("handlerName(cam) = %q", got)
	}
	if got := handlerName("camera"); got != "camer!" {
		t.Fatalf("handlerName(camera) = %q", got)
	}
	if len(handlerName("abcdef")) > 6 {
		t.Fatal("handler name exceeds 6 chars")
	}
}

func TestSyncModeUsesHandlerTask(t *testing.T) {
	k := newKernel()
	c, err := New(Config{Kernel: k, Spec: periodicSpec("camera"), Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := k.Task("camer!"); !ok {
		t.Fatal("handler task missing")
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := k.Task("camer!"); ok {
		t.Fatal("handler task survived Close")
	}
}

func TestOverheadChargedPerJob(t *testing.T) {
	k := newKernel()
	poll := 500 * time.Nanosecond
	c, err := New(Config{Kernel: k, Spec: periodicSpec("cam"), CommandPollCost: poll})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(10*time.Millisecond + 100*time.Microsecond); err != nil {
		t.Fatal(err)
	}
	st := c.Task().Stats()
	wantResp := float64(50*time.Microsecond + poll)
	if st.Response.Average != wantResp {
		t.Fatalf("response = %v, want exec+poll = %v", st.Response.Average, wantResp)
	}
}
