// Package hrc implements the paper's Hybrid Real-time Component approach
// (§3.1-§3.2): each component splits into a small real-time part running
// as an RTAI task and a large management part living in the OSGi world,
// bridged by an asynchronous command channel so the real-time code never
// waits for the management plane.
//
// Commands (suspend, set-property) travel through an RTAI mailbox and are
// served when the task finishes its main functional routine, exactly as
// §3.2 prescribes; status flows the other way through a snapshot the RT
// part publishes after every job. Resume is the one direct call — a
// suspended task cannot poll its mailbox, so the management part resumes
// it through the kernel, the LXRT rt_task_resume analogue.
package hrc

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/rtos"
	"repro/internal/rtos/ipc"
	"repro/internal/sim"
)

// Command opcodes on the intra-component mailbox.
const (
	opSuspend = "suspend"
	opSet     = "set"
)

// DefaultCommandPollCost is the per-job cost of the end-of-routine
// command poll, the measurable overhead of the hybrid approach.
const DefaultCommandPollCost = 150 * time.Nanosecond

// DefaultSyncCommandCost models servicing one command synchronously
// inside the RT path (the design the paper rejects): a handler burst that
// delays the real-time task.
const DefaultSyncCommandCost = 30 * time.Microsecond

// DefaultMailboxCapacity bounds the command queue.
const DefaultMailboxCapacity = 16

// Status is the RT-side snapshot the management part reads without
// blocking the task. It is refreshed once per job, so it may be up to one
// period stale — the price of strict asynchrony.
type Status struct {
	TaskState      rtos.TaskState
	Jobs           uint64
	Misses         uint64
	Skips          uint64
	LastJobAt      sim.Time
	CommandsServed uint64
	CommandsLost   uint64 // mailbox-full drops observed by the sender
}

// Config assembles a hybrid component.
type Config struct {
	// Kernel is the RT container.
	Kernel *rtos.Kernel
	// Spec is the RT task contract; Body and Overhead are managed by the
	// wrapper and must be left empty.
	Spec rtos.TaskSpec
	// Body is the functional routine of the RT part.
	Body rtos.Body
	// CommandPollCost overrides DefaultCommandPollCost when positive.
	CommandPollCost time.Duration
	// MailboxCapacity overrides DefaultMailboxCapacity when positive.
	MailboxCapacity int
	// Props seeds the RT-side configurable parameters.
	Props map[string]string
	// Sync switches the bridge to synchronous command handling, for the
	// ablation of §3.2's design choice. Commands then apply immediately
	// and each one injects a high-priority handler burst on the task's
	// CPU, perturbing the RT schedule.
	Sync bool
	// SyncCommandCost overrides DefaultSyncCommandCost when positive.
	SyncCommandCost time.Duration
}

// Component is a live hybrid component.
type Component struct {
	k        *rtos.Kernel
	task     *rtos.Task
	box      *ipc.Mailbox
	sync     bool
	syncCost time.Duration
	handler  *rtos.Task // sync-mode command burst injector

	mu     sync.Mutex
	props  map[string]string
	status Status
	lost   uint64

	userBody rtos.Body
	closed   bool
}

// New builds the component: RT task plus command mailbox. The task is
// created but not started; call Start.
func New(cfg Config) (*Component, error) {
	if cfg.Kernel == nil {
		return nil, errors.New("hrc: nil kernel")
	}
	if cfg.Spec.Body != nil || cfg.Spec.Overhead != 0 {
		return nil, errors.New("hrc: Spec.Body and Spec.Overhead are managed by the wrapper")
	}
	pollCost := cfg.CommandPollCost
	if pollCost <= 0 {
		pollCost = DefaultCommandPollCost
	}
	capacity := cfg.MailboxCapacity
	if capacity <= 0 {
		capacity = DefaultMailboxCapacity
	}
	syncCost := cfg.SyncCommandCost
	if syncCost <= 0 {
		syncCost = DefaultSyncCommandCost
	}
	c := &Component{
		k:        cfg.Kernel,
		sync:     cfg.Sync,
		syncCost: syncCost,
		userBody: cfg.Body,
	}
	if len(cfg.Props) > 0 {
		c.props = make(map[string]string, len(cfg.Props))
		for k, v := range cfg.Props {
			c.props[k] = v
		}
	}
	box, err := cfg.Kernel.IPC().CreateMailbox(cfg.Spec.Name, capacity)
	if err != nil {
		return nil, fmt.Errorf("hrc: command mailbox: %w", err)
	}
	c.box = box
	spec := cfg.Spec
	spec.Body = c.rtBody
	spec.Overhead = pollCost
	task, err := cfg.Kernel.CreateTask(spec)
	if err != nil {
		_ = cfg.Kernel.IPC().DeleteMailbox(cfg.Spec.Name)
		return nil, fmt.Errorf("hrc: rt task: %w", err)
	}
	c.task = task
	if cfg.Sync {
		h, err := cfg.Kernel.CreateTask(rtos.TaskSpec{
			Name:     handlerName(cfg.Spec.Name),
			Type:     rtos.Aperiodic,
			CPU:      cfg.Spec.CPU,
			Priority: 0, // command handling preempts everything in sync mode
			ExecTime: syncCost,
		})
		if err != nil {
			_ = task.Delete()
			_ = cfg.Kernel.IPC().DeleteMailbox(cfg.Spec.Name)
			return nil, fmt.Errorf("hrc: sync handler task: %w", err)
		}
		c.handler = h
	}
	return c, nil
}

// handlerName derives a distinct ≤6-char task name for the sync-mode
// command handler.
func handlerName(base string) string {
	if len(base) < 6 {
		return base + "!"
	}
	return base[:5] + "!"
}

// Task exposes the RT part.
func (c *Component) Task() *rtos.Task { return c.task }

// Name returns the component (task) name.
func (c *Component) Name() string { return c.task.Name() }

// Start activates the RT part.
func (c *Component) Start() error {
	if c.closed {
		return errors.New("hrc: component closed")
	}
	if c.handler != nil {
		if err := c.handler.Start(); err != nil {
			return err
		}
	}
	return c.task.Start()
}

// rtBody is the RT-side loop body: functional routine, then status
// publication, then the asynchronous command poll (§3.2 ordering).
func (c *Component) rtBody(j *rtos.JobContext) {
	if c.userBody != nil {
		c.userBody(j)
	}
	c.publishStatus(j)
	if !c.sync {
		c.serveCommands()
	}
}

func (c *Component) publishStatus(j *rtos.JobContext) {
	jobs, misses, skips := c.task.Counters()
	c.mu.Lock()
	served := c.status.CommandsServed
	c.status = Status{
		TaskState:      c.task.State(),
		Jobs:           jobs,
		Misses:         misses,
		Skips:          skips,
		LastJobAt:      j.Now,
		CommandsServed: served,
		CommandsLost:   c.lost,
	}
	c.mu.Unlock()
}

func (c *Component) serveCommands() {
	for {
		msg, err := c.box.Receive()
		if err != nil {
			return // ErrEmpty: nothing to serve, never block
		}
		c.applyCommand(string(msg))
	}
}

func (c *Component) applyCommand(msg string) {
	parts := strings.SplitN(msg, "\x00", 3)
	c.mu.Lock()
	c.status.CommandsServed++
	c.mu.Unlock()
	switch parts[0] {
	case opSuspend:
		_ = c.task.Suspend() // task acts on itself at the job boundary
	case opSet:
		if len(parts) == 3 {
			c.mu.Lock()
			if c.props == nil {
				c.props = map[string]string{}
			}
			c.props[parts[1]] = parts[2]
			c.mu.Unlock()
		}
	}
}

// send delivers a command asynchronously (mailbox) or, in sync mode,
// applies it immediately and injects the handler burst into the RT
// schedule.
func (c *Component) send(msg string) error {
	if c.closed {
		return errors.New("hrc: component closed")
	}
	if c.sync {
		c.applyCommand(msg)
		if c.handler != nil && c.handler.State() == rtos.TaskActive {
			return c.handler.Trigger()
		}
		return nil
	}
	if err := c.box.Send([]byte(msg)); err != nil {
		c.mu.Lock()
		c.lost++
		c.mu.Unlock()
		return fmt.Errorf("hrc: command dropped: %w", err)
	}
	return nil
}

// Management interface (paper §2.4): suspend, resume, get/set properties,
// and status of the real-time task. init/uninit are deliberately absent —
// only the DRCR may create or destroy instances.

// Suspend asks the RT part to suspend at its next job boundary.
func (c *Component) Suspend() error { return c.send(opSuspend) }

// Resume reactivates the RT part immediately (rt_task_resume analogue —
// a suspended task cannot poll its own mailbox).
func (c *Component) Resume() error {
	if c.closed {
		return errors.New("hrc: component closed")
	}
	return c.task.Resume()
}

// SetProperty updates an RT-side parameter at the next job boundary (or
// immediately in sync mode).
func (c *Component) SetProperty(key, value string) error {
	if key == "" || strings.Contains(key, "\x00") {
		return errors.New("hrc: bad property key")
	}
	return c.send(opSet + "\x00" + key + "\x00" + value)
}

// Property reads a property from the management-side mirror.
func (c *Component) Property(key string) (string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.props[key]
	return v, ok
}

// Properties returns a copy of all properties.
func (c *Component) Properties() map[string]string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]string, len(c.props))
	for k, v := range c.props {
		out[k] = v
	}
	return out
}

// Status returns the last snapshot the RT part published (up to one
// period stale; strictly non-blocking).
func (c *Component) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.status
	st.CommandsLost = c.lost
	return st
}

// Close tears down the RT task, the handler, and the mailbox. Only the
// DRCR calls this (the descriptor model hides init/uninit from clients).
func (c *Component) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	var firstErr error
	if err := c.task.Delete(); err != nil && !errors.Is(err, rtos.ErrTaskDeleted) {
		firstErr = err
	}
	if c.handler != nil {
		if err := c.handler.Delete(); err != nil && !errors.Is(err, rtos.ErrTaskDeleted) && firstErr == nil {
			firstErr = err
		}
	}
	if err := c.k.IPC().DeleteMailbox(c.task.Name()); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}
