package hrc

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/rtos"
	"repro/internal/sim"
)

// TestStatusStalenessBoundedByPeriod: the snapshot is refreshed every
// job, so its LastJobAt never lags the clock by more than one period
// while the task runs.
func TestStatusStalenessBoundedByPeriod(t *testing.T) {
	k := newKernel()
	c, err := New(Config{Kernel: k, Spec: periodicSpec("cam")})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	period := c.Task().Spec().Period
	for i := 0; i < 50; i++ {
		if err := k.Run(700 * time.Microsecond); err != nil { // deliberately unaligned
			t.Fatal(err)
		}
		st := c.Status()
		if st.Jobs == 0 {
			continue // before the first job
		}
		if lag := k.Now().Sub(st.LastJobAt); lag > period {
			t.Fatalf("status lag %v exceeds one period %v", lag, period)
		}
	}
}

// TestSyncModeAppliesImmediately: the ablation's rejected design has one
// virtue — commands land instantly — which the test pins so the tradeoff
// stays visible.
func TestSyncModeAppliesImmediately(t *testing.T) {
	k := newKernel()
	c, err := New(Config{Kernel: k, Spec: periodicSpec("cam"), Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	if err := c.Suspend(); err != nil {
		t.Fatal(err)
	}
	// No simulated time has passed; sync mode already applied it.
	if c.Task().State() != rtos.TaskSuspended {
		t.Fatalf("sync suspend not immediate: %v", c.Task().State())
	}
	if err := c.Resume(); err != nil {
		t.Fatal(err)
	}
	if err := c.SetProperty("k", "v"); err != nil {
		t.Fatal(err)
	}
	if v, _ := c.Property("k"); v != "v" {
		t.Fatal("sync set-property not immediate")
	}
}

// TestManyComponentsShareOneKernel: the bridge scales to a fleet without
// name or mailbox collisions.
func TestManyComponentsShareOneKernel(t *testing.T) {
	k := newKernel()
	var comps []*Component
	for i := 0; i < 20; i++ {
		spec := periodicSpec(fmt.Sprintf("c%02d", i))
		spec.Period = 10 * time.Millisecond
		spec.ExecTime = 100 * time.Microsecond
		spec.Priority = i
		c, err := New(Config{Kernel: k, Spec: spec})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Start(); err != nil {
			t.Fatal(err)
		}
		comps = append(comps, c)
	}
	if err := k.Run(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	for _, c := range comps {
		if c.Status().Jobs < 9 {
			t.Fatalf("%s jobs = %d", c.Name(), c.Status().Jobs)
		}
		if err := c.SetProperty("x", "1"); err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
	}
	if err := k.Run(20 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	for _, c := range comps {
		if v, _ := c.Property("x"); v != "1" {
			t.Fatalf("%s property not applied", c.Name())
		}
		if err := c.Close(); err != nil {
			t.Fatalf("%s close: %v", c.Name(), err)
		}
	}
	if len(k.Tasks()) != 0 {
		t.Fatalf("tasks left: %d", len(k.Tasks()))
	}
	shms, boxes := k.IPC().Names()
	if len(shms)+len(boxes) != 0 {
		t.Fatalf("IPC residue: %v %v", shms, boxes)
	}
}

// TestStatusZeroBeforeFirstJob: the snapshot starts zeroed, not garbage.
func TestStatusZeroBeforeFirstJob(t *testing.T) {
	k := newKernel()
	c, err := New(Config{Kernel: k, Spec: periodicSpec("cam")})
	if err != nil {
		t.Fatal(err)
	}
	st := c.Status()
	if st.Jobs != 0 || st.LastJobAt != sim.Time(0) || st.CommandsServed != 0 {
		t.Fatalf("pre-start status = %+v", st)
	}
}
