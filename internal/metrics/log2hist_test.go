package metrics

import "testing"

func TestLog2HistBuckets(t *testing.T) {
	var h Log2Hist
	h.Observe(0)
	h.Observe(1)
	h.Observe(2)
	h.Observe(3)
	h.Observe(4)
	h.Observe(-5) // clamps to 0
	if got := h.Bucket(0); got != 2 {
		t.Fatalf("bucket 0 = %d, want 2 (zero + clamped negative)", got)
	}
	if got := h.Bucket(1); got != 1 {
		t.Fatalf("bucket 1 = %d, want 1", got)
	}
	if got := h.Bucket(2); got != 2 {
		t.Fatalf("bucket 2 = %d, want 2 (samples 2,3)", got)
	}
	if got := h.Bucket(3); got != 1 {
		t.Fatalf("bucket 3 = %d, want 1 (sample 4)", got)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if h.Max() != 4 {
		t.Fatalf("max = %d, want 4", h.Max())
	}
}

func TestLog2HistQuantile(t *testing.T) {
	var h Log2Hist
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}
	// 100 samples of 100ns, 10 of 10000ns.
	for i := 0; i < 100; i++ {
		h.Observe(100)
	}
	for i := 0; i < 10; i++ {
		h.Observe(10000)
	}
	p50 := h.Quantile(0.50)
	if p50 < 100 || p50 > 128 {
		t.Fatalf("p50 = %d, want within [100,128] (bucket upper bound)", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 10000 || p99 > 16384 {
		t.Fatalf("p99 = %d, want within [10000,16384]", p99)
	}
	if h.Quantile(1) != 10000 {
		t.Fatalf("p100 = %d, want clamp to max 10000", h.Quantile(1))
	}
}

func TestLog2HistQuantileOrderIndependent(t *testing.T) {
	var a, b Log2Hist
	samples := []int64{5, 900, 42, 7, 7, 123456, 1, 0, 31}
	for _, v := range samples {
		a.Observe(v)
	}
	for i := len(samples) - 1; i >= 0; i-- {
		b.Observe(samples[i])
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.95, 0.99, 1} {
		if a.Quantile(q) != b.Quantile(q) {
			t.Fatalf("q=%v: %d vs %d (order-dependent)", q, a.Quantile(q), b.Quantile(q))
		}
	}
}

func TestLog2HistMerge(t *testing.T) {
	var a, b Log2Hist
	a.Observe(10)
	a.Observe(20)
	b.Observe(5000)
	a.Merge(&b)
	a.Merge(nil)
	if a.Count() != 3 {
		t.Fatalf("merged count = %d, want 3", a.Count())
	}
	if a.Max() != 5000 {
		t.Fatalf("merged max = %d, want 5000", a.Max())
	}
}

func TestLog2HistObserveAllocFree(t *testing.T) {
	var h Log2Hist
	v := int64(1234)
	if avg := testing.AllocsPerRun(1000, func() {
		h.Observe(v)
		v += 17
	}); avg > 0.001 {
		t.Fatalf("Observe allocates %v/op, want <= 0.001", avg)
	}
}
