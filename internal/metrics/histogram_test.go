package metrics

import (
	"strings"
	"testing"
)

func TestNewHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(0, 100, 0); err == nil {
		t.Fatal("zero bins accepted")
	}
	if _, err := NewHistogram(100, 100, 5); err == nil {
		t.Fatal("empty range accepted")
	}
	if _, err := NewHistogram(100, 0, 5); err == nil {
		t.Fatal("inverted range accepted")
	}
}

func TestHistogramBinning(t *testing.T) {
	h, err := NewHistogram(0, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	h.Observe(0)   // bin 0
	h.Observe(9)   // bin 0
	h.Observe(10)  // bin 1
	h.Observe(99)  // bin 9
	h.Observe(100) // overflow
	h.Observe(-1)  // underflow
	if h.Bin(0) != 2 {
		t.Fatalf("bin0 = %d, want 2", h.Bin(0))
	}
	if h.Bin(1) != 1 {
		t.Fatalf("bin1 = %d, want 1", h.Bin(1))
	}
	if h.Bin(9) != 1 {
		t.Fatalf("bin9 = %d, want 1", h.Bin(9))
	}
	if h.Overflow() != 1 || h.Underflow() != 1 {
		t.Fatalf("over/under = %d/%d, want 1/1", h.Overflow(), h.Underflow())
	}
	if h.Total() != 6 {
		t.Fatalf("Total = %d, want 6", h.Total())
	}
}

func TestHistogramNegativeRange(t *testing.T) {
	h, err := NewHistogram(-30000, 30000, 60)
	if err != nil {
		t.Fatal(err)
	}
	h.Observe(-21083)
	h.Observe(-1334)
	h.Observe(21489)
	var sum uint64
	for i := 0; i < h.NumBins(); i++ {
		sum += h.Bin(i)
	}
	if sum != 3 {
		t.Fatalf("binned = %d, want 3", sum)
	}
}

func TestHistogramBinRange(t *testing.T) {
	h, err := NewHistogram(0, 100, 4)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := h.BinRange(1)
	if lo != 25 || hi != 50 {
		t.Fatalf("BinRange(1) = [%v,%v), want [25,50)", lo, hi)
	}
}

func TestHistogramBinOutOfRange(t *testing.T) {
	h, _ := NewHistogram(0, 10, 2)
	if h.Bin(-1) != 0 || h.Bin(99) != 0 {
		t.Fatal("out-of-range Bin not zero")
	}
}

func TestHistogramRender(t *testing.T) {
	h, _ := NewHistogram(0, 30, 3)
	for i := 0; i < 9; i++ {
		h.Observe(Sample(i))
	}
	h.Observe(15)
	h.Observe(-5)
	h.Observe(40)
	out := h.Render(10)
	if !strings.Contains(out, "#") {
		t.Fatalf("render has no bars:\n%s", out)
	}
	if !strings.Contains(out, "<lo") || !strings.Contains(out, ">=hi") {
		t.Fatalf("render missing under/overflow rows:\n%s", out)
	}
	// Default width path.
	if h.Render(0) == "" {
		t.Fatal("Render(0) empty")
	}
}
