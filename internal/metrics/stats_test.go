package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestEmptySeries(t *testing.T) {
	var s Series
	if s.Len() != 0 || s.Mean() != 0 || s.AveDev() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty series statistics not all zero")
	}
	if s.Percentile(50) != 0 {
		t.Fatal("empty percentile not zero")
	}
}

func TestSeriesBasicStats(t *testing.T) {
	var s Series
	s.AddAll([]Sample{1, 2, 3, 4, 5})
	if got := s.Mean(); got != 3 {
		t.Fatalf("Mean = %v, want 3", got)
	}
	// AVEDEV of 1..5 = (2+1+0+1+2)/5 = 1.2
	if got := s.AveDev(); math.Abs(got-1.2) > 1e-12 {
		t.Fatalf("AveDev = %v, want 1.2", got)
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("Min/Max = %d/%d, want 1/5", s.Min(), s.Max())
	}
	if s.Len() != 5 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestSeriesNegativeValues(t *testing.T) {
	var s Series
	s.AddAll([]Sample{-25436, -633, 23798})
	if s.Min() != -25436 {
		t.Fatalf("Min = %d", s.Min())
	}
	if s.Max() != 23798 {
		t.Fatalf("Max = %d", s.Max())
	}
	wantMean := float64(-25436-633+23798) / 3
	if got := s.Mean(); math.Abs(got-wantMean) > 1e-9 {
		t.Fatalf("Mean = %v, want %v", got, wantMean)
	}
}

func TestStdDev(t *testing.T) {
	var s Series
	s.AddAll([]Sample{2, 4, 4, 4, 5, 5, 7, 9})
	if got := s.StdDev(); math.Abs(got-2) > 1e-12 {
		t.Fatalf("StdDev = %v, want 2", got)
	}
}

func TestPercentile(t *testing.T) {
	var s Series
	for i := 1; i <= 100; i++ {
		s.Add(Sample(i))
	}
	cases := []struct {
		p    float64
		want Sample
	}{
		{0, 1}, {1, 1}, {50, 50}, {99, 99}, {100, 100}, {-5, 1}, {150, 100},
	}
	for _, c := range cases {
		if got := s.Percentile(c.p); got != c.want {
			t.Errorf("Percentile(%v) = %d, want %d", c.p, got, c.want)
		}
	}
}

func TestSamplesCopy(t *testing.T) {
	var s Series
	s.AddAll([]Sample{1, 2, 3})
	got := s.Samples()
	got[0] = 99
	if s.Samples()[0] != 1 {
		t.Fatal("Samples did not return a copy")
	}
}

func TestReset(t *testing.T) {
	var s Series
	s.AddAll([]Sample{5, 6})
	s.Reset()
	if s.Len() != 0 || s.Mean() != 0 || s.Min() != 0 {
		t.Fatal("Reset did not clear series")
	}
	s.Add(-7)
	if s.Min() != -7 || s.Max() != -7 {
		t.Fatal("series unusable after Reset")
	}
}

func TestRowAndFormatTable(t *testing.T) {
	var s Series
	s.AddAll([]Sample{-10, 0, 10})
	row := s.Row("HRC (light)")
	if row.Label != "HRC (light)" || row.N != 3 || row.Min != -10 || row.Max != 10 {
		t.Fatalf("Row = %+v", row)
	}
	out := FormatTable("Table 1 Latency Test", []Row{row})
	for _, want := range []string{"Table 1", "AVERAGE", "AVEDEV", "MIN", "MAX", "HRC (light)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("FormatTable output missing %q:\n%s", want, out)
		}
	}
}

// Property: AveDev is non-negative and never exceeds max-min; Min <= Mean
// <= Max.
func TestSeriesInvariants(t *testing.T) {
	prop := func(vals []int32) bool {
		if len(vals) == 0 {
			return true
		}
		var s Series
		for _, v := range vals {
			s.Add(Sample(v))
		}
		mean := s.Mean()
		if mean < float64(s.Min())-1e-9 || mean > float64(s.Max())+1e-9 {
			return false
		}
		ad := s.AveDev()
		return ad >= 0 && ad <= float64(s.Max()-s.Min())+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: AveDev <= StdDev for any sample set (Jensen's inequality).
func TestAveDevLEStdDev(t *testing.T) {
	prop := func(vals []int16) bool {
		if len(vals) == 0 {
			return true
		}
		var s Series
		for _, v := range vals {
			s.Add(Sample(v))
		}
		return s.AveDev() <= s.StdDev()+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
