package metrics

import (
	"fmt"
	"strings"
)

// Histogram is a fixed-bin histogram over a closed range, with explicit
// under/overflow counters, used to visualise latency distributions.
type Histogram struct {
	lo, hi   Sample
	binWidth float64
	bins     []uint64
	under    uint64
	over     uint64
	total    uint64
}

// NewHistogram creates a histogram with nbins equal-width bins covering
// [lo, hi). It returns an error for degenerate ranges or bin counts.
func NewHistogram(lo, hi Sample, nbins int) (*Histogram, error) {
	if nbins <= 0 {
		return nil, fmt.Errorf("metrics: nbins %d must be positive", nbins)
	}
	if hi <= lo {
		return nil, fmt.Errorf("metrics: range [%d,%d) is empty", lo, hi)
	}
	return &Histogram{
		lo:       lo,
		hi:       hi,
		binWidth: float64(hi-lo) / float64(nbins),
		bins:     make([]uint64, nbins),
	}, nil
}

// Observe records one sample.
func (h *Histogram) Observe(v Sample) {
	h.total++
	switch {
	case v < h.lo:
		h.under++
	case v >= h.hi:
		h.over++
	default:
		idx := int(float64(v-h.lo) / h.binWidth)
		if idx >= len(h.bins) { // float edge case at the top boundary
			idx = len(h.bins) - 1
		}
		h.bins[idx]++
	}
}

// Total reports the number of observations including under/overflow.
func (h *Histogram) Total() uint64 { return h.total }

// Underflow reports samples below the range.
func (h *Histogram) Underflow() uint64 { return h.under }

// Overflow reports samples at or above the range top.
func (h *Histogram) Overflow() uint64 { return h.over }

// Bin reports the count in bin i.
func (h *Histogram) Bin(i int) uint64 {
	if i < 0 || i >= len(h.bins) {
		return 0
	}
	return h.bins[i]
}

// NumBins reports the configured bin count.
func (h *Histogram) NumBins() int { return len(h.bins) }

// BinRange reports the half-open value range of bin i.
func (h *Histogram) BinRange(i int) (lo, hi float64) {
	lo = float64(h.lo) + float64(i)*h.binWidth
	return lo, lo + h.binWidth
}

// Render draws an ASCII histogram, width columns wide at the largest bin.
func (h *Histogram) Render(width int) string {
	if width <= 0 {
		width = 50
	}
	var peak uint64
	for _, c := range h.bins {
		if c > peak {
			peak = c
		}
	}
	var b strings.Builder
	if h.under > 0 {
		fmt.Fprintf(&b, "%14s %8d\n", "<lo", h.under)
	}
	for i, c := range h.bins {
		lo, _ := h.BinRange(i)
		bar := 0
		if peak > 0 {
			bar = int(float64(c) / float64(peak) * float64(width))
		}
		fmt.Fprintf(&b, "%14.0f %8d %s\n", lo, c, strings.Repeat("#", bar))
	}
	if h.over > 0 {
		fmt.Fprintf(&b, "%14s %8d\n", ">=hi", h.over)
	}
	return b.String()
}
