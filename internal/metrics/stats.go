// Package metrics implements the measurement machinery the evaluation
// harness reports with: streaming latency statistics matching the paper's
// Table 1 columns (AVERAGE, AVEDEV, MIN, MAX), percentiles, and fixed-bin
// histograms.
//
// AVEDEV is the Excel function the paper's table was evidently produced
// with: the mean of the absolute deviations from the arithmetic mean.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Sample is one latency observation in nanoseconds. Negative values are
// meaningful: a periodic task dispatched before its nominal release (timer
// calibration drift) has negative latency, as in the paper.
type Sample = int64

// Series accumulates samples and computes Table 1-style statistics.
// The zero value is an empty, ready-to-use series.
type Series struct {
	samples []Sample
	sum     float64
	min     Sample
	max     Sample
}

// Add appends one observation.
func (s *Series) Add(v Sample) {
	if len(s.samples) == 0 {
		s.min, s.max = v, v
	} else {
		if v < s.min {
			s.min = v
		}
		if v > s.max {
			s.max = v
		}
	}
	s.samples = append(s.samples, v)
	s.sum += float64(v)
}

// AddAll appends many observations.
func (s *Series) AddAll(vs []Sample) {
	for _, v := range vs {
		s.Add(v)
	}
}

// Len reports the number of observations.
func (s *Series) Len() int { return len(s.samples) }

// Mean returns the arithmetic mean (Table 1 "AVERAGE"). Zero if empty.
func (s *Series) Mean() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	return s.sum / float64(len(s.samples))
}

// AveDev returns the mean absolute deviation from the mean (Table 1
// "AVEDEV"). Zero if empty.
func (s *Series) AveDev() float64 {
	n := len(s.samples)
	if n == 0 {
		return 0
	}
	mean := s.Mean()
	var acc float64
	for _, v := range s.samples {
		acc += math.Abs(float64(v) - mean)
	}
	return acc / float64(n)
}

// StdDev returns the population standard deviation. Zero if empty.
func (s *Series) StdDev() float64 {
	n := len(s.samples)
	if n == 0 {
		return 0
	}
	mean := s.Mean()
	var acc float64
	for _, v := range s.samples {
		d := float64(v) - mean
		acc += d * d
	}
	return math.Sqrt(acc / float64(n))
}

// Min returns the smallest observation (Table 1 "MIN"). Zero if empty.
func (s *Series) Min() Sample {
	if len(s.samples) == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest observation (Table 1 "MAX"). Zero if empty.
func (s *Series) Max() Sample {
	if len(s.samples) == 0 {
		return 0
	}
	return s.max
}

// Percentile returns the p-th percentile (0 <= p <= 100) using
// nearest-rank on a sorted copy. Zero if empty.
func (s *Series) Percentile(p float64) Sample {
	n := len(s.samples)
	if n == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	sorted := make([]Sample, n)
	copy(sorted, s.samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(math.Ceil(p / 100 * float64(n)))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// Samples returns a copy of the raw observations.
func (s *Series) Samples() []Sample {
	out := make([]Sample, len(s.samples))
	copy(out, s.samples)
	return out
}

// Reset discards all observations.
func (s *Series) Reset() {
	s.samples = s.samples[:0]
	s.sum = 0
	s.min, s.max = 0, 0
}

// Reserve grows the sample buffer so at least n further Adds proceed
// without reallocating, letting allocation-free hot paths record
// observations.
func (s *Series) Reserve(n int) {
	if free := cap(s.samples) - len(s.samples); free < n {
		grown := make([]Sample, len(s.samples), len(s.samples)+n)
		copy(grown, s.samples)
		s.samples = grown
	}
}

// Row is one Table 1 row: a label with the four reported statistics.
type Row struct {
	Label   string
	Average float64
	AveDev  float64
	Min     Sample
	Max     Sample
	N       int
}

// Row materialises the series into a labelled Table 1 row.
func (s *Series) Row(label string) Row {
	return Row{
		Label:   label,
		Average: s.Mean(),
		AveDev:  s.AveDev(),
		Min:     s.Min(),
		Max:     s.Max(),
		N:       s.Len(),
	}
}

// FormatTable renders rows in the layout of the paper's Table 1
// (nanosecond units, two decimals for the derived statistics).
func FormatTable(title string, rows []Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-22s %12s %12s %10s %10s %9s\n",
		"", "AVERAGE", "AVEDEV", "MIN", "MAX", "N")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %12.2f %12.2f %10d %10d %9d\n",
			r.Label, r.Average, r.AveDev, r.Min, r.Max, r.N)
	}
	return b.String()
}
