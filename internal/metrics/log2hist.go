package metrics

import (
	"fmt"
	"math/bits"
	"strings"
)

// Log2Hist is a fixed-bucket base-2 histogram over non-negative samples
// (nanoseconds, typically). Bucket b counts samples v with
// bits.Len64(v) == b, i.e. v in [2^(b-1), 2^b); bucket 0 counts zeros.
// The value array is inline — no pointers, no heap — so the record path
// is a bounds-checked increment and stays allocation-free, which the obs
// latency instrumentation depends on (it records inside hot paths).
//
// Quantiles are deterministic: Quantile walks the cumulative counts and
// reports the upper bound of the bucket holding the q-th sample (clamped
// to the observed maximum), so two runs observing the same multiset of
// samples report identical quantiles regardless of arrival order.
type Log2Hist struct {
	counts [65]uint64
	total  uint64
	max    int64
}

// log2Buckets is the number of buckets (bits.Len64 range is 0..64).
const log2Buckets = 65

// Observe records one sample; negative samples clamp to zero. It never
// allocates.
func (h *Log2Hist) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bits.Len64(uint64(v))]++
	h.total++
	if v > h.max {
		h.max = v
	}
}

// Count reports the number of recorded samples.
func (h *Log2Hist) Count() uint64 { return h.total }

// Max reports the largest recorded sample (0 when empty).
func (h *Log2Hist) Max() int64 { return h.max }

// Bucket reports the count in bucket b (0 <= b < NumBuckets).
func (h *Log2Hist) Bucket(b int) uint64 {
	if b < 0 || b >= log2Buckets {
		return 0
	}
	return h.counts[b]
}

// NumBuckets reports the fixed bucket count.
func (h *Log2Hist) NumBuckets() int { return log2Buckets }

// BucketRange reports the half-open sample range [lo, hi) of bucket b.
// Bucket 0 is the degenerate [0, 1).
func (h *Log2Hist) BucketRange(b int) (lo, hi int64) {
	if b <= 0 {
		return 0, 1
	}
	if b >= 63 {
		// The top buckets saturate at the int64 maximum.
		return 1 << 62, int64(^uint64(0) >> 1)
	}
	return 1 << (b - 1), 1 << b
}

// Quantile reports a deterministic upper bound for the q-quantile
// (0 <= q <= 1): the upper edge of the bucket containing the ceil(q*n)-th
// smallest sample, clamped to the observed maximum. Returns 0 when empty.
func (h *Log2Hist) Quantile(q float64) int64 {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(h.total))
	if rank == 0 {
		rank = 1
	}
	if rank > h.total {
		rank = h.total
	}
	var cum uint64
	for b := 0; b < log2Buckets; b++ {
		cum += h.counts[b]
		if cum >= rank {
			_, hi := h.BucketRange(b)
			if hi > h.max {
				hi = h.max
			}
			return hi
		}
	}
	return h.max
}

// Merge folds another histogram into this one.
func (h *Log2Hist) Merge(o *Log2Hist) {
	if o == nil {
		return
	}
	for b := 0; b < log2Buckets; b++ {
		h.counts[b] += o.counts[b]
	}
	h.total += o.total
	if o.max > h.max {
		h.max = o.max
	}
}

// Render draws the occupied buckets as an ASCII histogram, width columns
// wide at the largest bucket.
func (h *Log2Hist) Render(width int) string {
	if width <= 0 {
		width = 50
	}
	var peak uint64
	for _, c := range h.counts {
		if c > peak {
			peak = c
		}
	}
	var b strings.Builder
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		lo, _ := h.BucketRange(i)
		bar := 0
		if peak > 0 {
			bar = int(float64(c) / float64(peak) * float64(width))
		}
		fmt.Fprintf(&b, "%14d %8d %s\n", lo, c, strings.Repeat("#", bar))
	}
	return b.String()
}
