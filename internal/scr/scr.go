// Package scr is a miniature OSGi Declarative Services (DS) runtime, the
// component model the paper builds on and contrasts with (§2.1): service
// components declared in XML bundle resources, with references that are
// tracked and bound automatically as target services come and go.
//
// DRCom deliberately goes beyond what this package offers — DS knows
// nothing about real-time contracts, CPU budgets, or port compatibility —
// and having a working DS substrate makes that difference testable.
package scr

import (
	"encoding/xml"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/ldap"
	"repro/internal/osgi"
)

// Cardinality constrains how many target services a reference needs.
type Cardinality string

// Reference cardinalities, as in the DS specification.
const (
	Optional      Cardinality = "0..1"
	Mandatory     Cardinality = "1..1"
	MultipleOpt   Cardinality = "0..n"
	MultipleMand  Cardinality = "1..n"
	defaultPolicy             = "static"
)

// Description is a parsed DS component description.
type Description struct {
	Name           string
	Implementation string
	Provides       []string
	References     []Reference
	Enabled        bool
}

// Reference is one declared dependency on a service interface.
type Reference struct {
	Name        string
	Interface   string
	Cardinality Cardinality
	Policy      string // "static" or "dynamic"
	Target      *ldap.Filter
}

type xmlComponent struct {
	XMLName        xml.Name `xml:"component"`
	Name           string   `xml:"name,attr"`
	Enabled        string   `xml:"enabled,attr"`
	Implementation struct {
		Class string `xml:"class,attr"`
	} `xml:"implementation"`
	Service struct {
		Provides []struct {
			Interface string `xml:"interface,attr"`
		} `xml:"provide"`
	} `xml:"service"`
	References []struct {
		Name        string `xml:"name,attr"`
		Interface   string `xml:"interface,attr"`
		Cardinality string `xml:"cardinality,attr"`
		Policy      string `xml:"policy,attr"`
		Target      string `xml:"target,attr"`
	} `xml:"reference"`
}

// ParseDescription reads a DS component XML document.
func ParseDescription(src string) (*Description, error) {
	var xc xmlComponent
	if err := xml.Unmarshal([]byte(src), &xc); err != nil {
		return nil, fmt.Errorf("scr: parsing component XML: %w", err)
	}
	if strings.TrimSpace(xc.Name) == "" {
		return nil, errors.New("scr: component missing name")
	}
	if strings.TrimSpace(xc.Implementation.Class) == "" {
		return nil, fmt.Errorf("scr: component %s missing implementation class", xc.Name)
	}
	d := &Description{
		Name:           xc.Name,
		Implementation: xc.Implementation.Class,
		Enabled:        xc.Enabled != "false",
	}
	for _, p := range xc.Service.Provides {
		if p.Interface == "" {
			return nil, fmt.Errorf("scr: component %s: provide without interface", xc.Name)
		}
		d.Provides = append(d.Provides, p.Interface)
	}
	for _, r := range xc.References {
		if r.Interface == "" {
			return nil, fmt.Errorf("scr: component %s: reference %q without interface", xc.Name, r.Name)
		}
		ref := Reference{
			Name:        r.Name,
			Interface:   r.Interface,
			Cardinality: Cardinality(r.Cardinality),
			Policy:      r.Policy,
		}
		if ref.Cardinality == "" {
			ref.Cardinality = Mandatory
		}
		switch ref.Cardinality {
		case Optional, Mandatory, MultipleOpt, MultipleMand:
		default:
			return nil, fmt.Errorf("scr: component %s: bad cardinality %q", xc.Name, r.Cardinality)
		}
		if ref.Policy == "" {
			ref.Policy = defaultPolicy
		}
		if ref.Policy != "static" && ref.Policy != "dynamic" {
			return nil, fmt.Errorf("scr: component %s: bad policy %q", xc.Name, r.Policy)
		}
		if r.Target != "" {
			f, err := ldap.Parse(r.Target)
			if err != nil {
				return nil, fmt.Errorf("scr: component %s: target filter: %w", xc.Name, err)
			}
			ref.Target = f
		}
		d.References = append(d.References, ref)
	}
	return d, nil
}

// Instance is the component implementation contract: the analogue of a DS
// component class with activate/deactivate lifecycle methods.
type Instance interface {
	Activate(cc *ComponentContext) error
	Deactivate()
}

// Rebinder is the optional dynamic-policy contract: an active instance
// implementing it has its references rebound in place when matching
// services come or go (all declared references must use policy
// "dynamic"), instead of the deactivate/reactivate cycle static policy
// mandates.
type Rebinder interface {
	Rebind(cc *ComponentContext)
}

// Factory constructs instances for an implementation class name.
type Factory func() Instance

// ComponentContext is what an activated instance sees.
type ComponentContext struct {
	Description *Description
	Bundle      *osgi.Bundle
	services    map[string][]any
}

// BoundServices returns the services bound to the named reference.
func (cc *ComponentContext) BoundServices(refName string) []any {
	out := make([]any, len(cc.services[refName]))
	copy(out, cc.services[refName])
	return out
}

// ComponentState is the DS component lifecycle state.
type ComponentState int

// Component states.
const (
	StateDisabled ComponentState = iota + 1
	StateUnsatisfied
	StateSatisfied
	StateActive
)

func (s ComponentState) String() string {
	switch s {
	case StateDisabled:
		return "DISABLED"
	case StateUnsatisfied:
		return "UNSATISFIED"
	case StateSatisfied:
		return "SATISFIED"
	case StateActive:
		return "ACTIVE"
	default:
		return fmt.Sprintf("ComponentState(%d)", int(s))
	}
}

// Component is a managed DS component.
type Component struct {
	desc      *Description
	bundle    *osgi.Bundle
	state     ComponentState
	instance  Instance
	regs      []*osgi.ServiceRegistration
	lastBound map[string][]any // dynamic policy: last binding snapshot
}

// Name returns the component name.
func (c *Component) Name() string { return c.desc.Name }

// State returns the component state.
func (c *Component) State() ComponentState { return c.state }

// Runtime is the SCR: it scans started bundles for Service-Component
// descriptors, instantiates components whose references are satisfied,
// and reacts to service arrival/departure.
type Runtime struct {
	mu         sync.Mutex
	fw         *osgi.Framework
	factories  map[string]Factory
	comps      map[string]*Component
	removeB    func()
	removeS    func()
	evaluating bool
	dirty      bool
}

// NewRuntime attaches an SCR to a framework.
func NewRuntime(fw *osgi.Framework) *Runtime {
	rt := &Runtime{
		fw:        fw,
		factories: map[string]Factory{},
		comps:     map[string]*Component{},
	}
	rt.removeB = fw.AddBundleListener(osgi.BundleListenerFunc(rt.bundleChanged))
	rt.removeS = fw.AddServiceListener(osgi.ServiceListenerFunc(rt.serviceChanged), nil)
	return rt
}

// Close detaches the runtime from framework events and deactivates all
// components.
func (rt *Runtime) Close() {
	rt.removeB()
	rt.removeS()
	rt.mu.Lock()
	comps := make([]*Component, 0, len(rt.comps))
	for _, c := range rt.comps {
		comps = append(comps, c)
	}
	rt.comps = map[string]*Component{}
	rt.mu.Unlock()
	for _, c := range comps {
		rt.deactivate(c)
	}
}

// RegisterFactory associates an implementation class name with a
// constructor, the stand-in for Java class loading.
func (rt *Runtime) RegisterFactory(implClass string, f Factory) error {
	if implClass == "" || f == nil {
		return errors.New("scr: factory needs class name and constructor")
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if _, dup := rt.factories[implClass]; dup {
		return fmt.Errorf("scr: factory for %q already registered", implClass)
	}
	rt.factories[implClass] = f
	return nil
}

// Component looks up a managed component by name.
func (rt *Runtime) Component(name string) (*Component, bool) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	c, ok := rt.comps[name]
	return c, ok
}

// Components lists managed components sorted by name.
func (rt *Runtime) Components() []*Component {
	rt.mu.Lock()
	out := make([]*Component, 0, len(rt.comps))
	for _, c := range rt.comps {
		out = append(out, c)
	}
	rt.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].desc.Name < out[j].desc.Name })
	return out
}

func (rt *Runtime) bundleChanged(ev osgi.BundleEvent) {
	switch ev.Type {
	case osgi.BundleStarted:
		rt.addBundleComponents(ev.Bundle)
	case osgi.BundleStopping, osgi.BundleStopped, osgi.BundleUninstalled:
		rt.removeBundleComponents(ev.Bundle)
	}
}

func (rt *Runtime) serviceChanged(osgi.ServiceEvent) {
	// Any registry change can satisfy or break references.
	rt.Reevaluate()
}

func (rt *Runtime) addBundleComponents(b *osgi.Bundle) {
	m := b.Manifest()
	if m == nil {
		return
	}
	for _, res := range m.ServiceComponents {
		src, ok := b.Resource(res)
		if !ok {
			continue
		}
		desc, err := ParseDescription(src)
		if err != nil {
			continue // malformed descriptors are skipped, as by real SCR
		}
		rt.mu.Lock()
		if _, dup := rt.comps[desc.Name]; dup {
			rt.mu.Unlock()
			continue
		}
		st := StateUnsatisfied
		if !desc.Enabled {
			st = StateDisabled
		}
		rt.comps[desc.Name] = &Component{desc: desc, bundle: b, state: st}
		rt.mu.Unlock()
	}
	rt.Reevaluate()
}

func (rt *Runtime) removeBundleComponents(b *osgi.Bundle) {
	rt.mu.Lock()
	var victims []*Component
	for name, c := range rt.comps {
		if c.bundle == b {
			victims = append(victims, c)
			delete(rt.comps, name)
		}
	}
	rt.mu.Unlock()
	for _, c := range victims {
		rt.deactivate(c)
	}
	rt.Reevaluate()
}

// Reevaluate re-checks reference satisfaction for every component,
// activating and deactivating as needed, until a fixed point is reached.
// Re-entrant calls (service events fired by activations in progress) are
// coalesced into an extra pass instead of recursing.
func (rt *Runtime) Reevaluate() {
	rt.mu.Lock()
	if rt.evaluating {
		rt.dirty = true
		rt.mu.Unlock()
		return
	}
	rt.evaluating = true
	rt.mu.Unlock()
	defer func() {
		rt.mu.Lock()
		rt.evaluating = false
		rt.mu.Unlock()
	}()
	for i := 0; i < 1000; i++ { // bound: each pass changes at least one state
		changed := rt.reevaluateOnce()
		rt.mu.Lock()
		dirty := rt.dirty
		rt.dirty = false
		rt.mu.Unlock()
		if !changed && !dirty {
			return
		}
	}
}

func (rt *Runtime) reevaluateOnce() (changed bool) {
	for _, c := range rt.Components() {
		rt.mu.Lock()
		state := c.state
		rt.mu.Unlock()
		switch state {
		case StateDisabled:
			continue
		case StateActive:
			if !rt.satisfied(c.desc) {
				rt.deactivate(c)
				changed = true
				continue
			}
			if rt.rebind(c) {
				changed = true
			}
		default:
			if rt.satisfied(c.desc) {
				if rt.activate(c) {
					changed = true
				}
			}
		}
	}
	return changed
}

// rebind refreshes a dynamic component's bound services in place. It
// reports whether the binding set changed.
func (rt *Runtime) rebind(c *Component) bool {
	rt.mu.Lock()
	inst := c.instance
	rt.mu.Unlock()
	rb, ok := inst.(Rebinder)
	if !ok || !allDynamic(c.desc) {
		return false
	}
	cc := rt.buildContext(c)
	if bindingsEqual(c.lastBound, cc.services) {
		return false
	}
	rt.mu.Lock()
	c.lastBound = cc.services
	rt.mu.Unlock()
	rb.Rebind(cc)
	return true
}

func allDynamic(d *Description) bool {
	for _, ref := range d.References {
		if ref.Policy != "dynamic" {
			return false
		}
	}
	return len(d.References) > 0
}

func bindingsEqual(a, b map[string][]any) bool {
	if len(a) != len(b) {
		return false
	}
	for k, av := range a {
		bv, ok := b[k]
		if !ok || len(av) != len(bv) {
			return false
		}
		for i := range av {
			if av[i] != bv[i] {
				return false
			}
		}
	}
	return true
}

// buildContext snapshots the services currently matching each reference.
func (rt *Runtime) buildContext(c *Component) *ComponentContext {
	cc := &ComponentContext{
		Description: c.desc,
		Bundle:      c.bundle,
		services:    map[string][]any{},
	}
	for _, ref := range c.desc.References {
		for _, sref := range rt.fw.ServiceReferences(ref.Interface, ref.Target) {
			if svc := rt.fw.Service(sref); svc != nil {
				cc.services[ref.Name] = append(cc.services[ref.Name], svc)
				if ref.Cardinality == Optional || ref.Cardinality == Mandatory {
					break
				}
			}
		}
	}
	return cc
}

func (rt *Runtime) satisfied(d *Description) bool {
	for _, ref := range d.References {
		if ref.Cardinality != Mandatory && ref.Cardinality != MultipleMand {
			continue
		}
		if len(rt.fw.ServiceReferences(ref.Interface, ref.Target)) == 0 {
			return false
		}
	}
	return true
}

func (rt *Runtime) activate(c *Component) bool {
	rt.mu.Lock()
	if c.state == StateActive {
		rt.mu.Unlock()
		return false
	}
	factory := rt.factories[c.desc.Implementation]
	rt.mu.Unlock()
	if factory == nil {
		return false // no code to instantiate yet
	}
	cc := rt.buildContext(c)
	inst := factory()
	if err := inst.Activate(cc); err != nil {
		return false
	}
	// Mark active before publishing provided services: registration fires
	// service events that re-enter Reevaluate.
	rt.mu.Lock()
	c.instance = inst
	c.state = StateActive
	c.lastBound = cc.services
	rt.mu.Unlock()
	var regs []*osgi.ServiceRegistration
	if len(c.desc.Provides) > 0 {
		if bctx := c.bundle.Context(); bctx != nil {
			if reg, err := bctx.RegisterService(c.desc.Provides, inst, ldap.Properties{
				"component.name": c.desc.Name,
			}); err == nil {
				regs = append(regs, reg)
			}
		}
	}
	rt.mu.Lock()
	c.regs = regs
	rt.mu.Unlock()
	return true
}

func (rt *Runtime) deactivate(c *Component) {
	rt.mu.Lock()
	inst := c.instance
	regs := c.regs
	c.instance = nil
	c.regs = nil
	c.lastBound = nil
	if c.state == StateActive || c.state == StateSatisfied {
		c.state = StateUnsatisfied
	}
	rt.mu.Unlock()
	for _, reg := range regs {
		_ = reg.Unregister() // already-gone registrations are fine
	}
	if inst != nil {
		inst.Deactivate()
	}
}
