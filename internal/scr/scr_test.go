package scr

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/manifest"
	"repro/internal/osgi"
)

const providerXML = `<?xml version="1.0"?>
<component name="provider">
  <implementation class="demo.Provider"/>
  <service><provide interface="demo.Greeter"/></service>
</component>`

const consumerXML = `<?xml version="1.0"?>
<component name="consumer">
  <implementation class="demo.Consumer"/>
  <reference name="greeter" interface="demo.Greeter" cardinality="1..1" policy="dynamic"/>
</component>`

type recordingInstance struct {
	name        string
	activated   int
	deactivated int
	lastCtx     *ComponentContext
	failOnce    bool
}

func (r *recordingInstance) Activate(cc *ComponentContext) error {
	if r.failOnce {
		r.failOnce = false
		return errors.New("refused")
	}
	r.activated++
	r.lastCtx = cc
	return nil
}

func (r *recordingInstance) Deactivate() { r.deactivated++ }

func TestParseDescription(t *testing.T) {
	d, err := ParseDescription(consumerXML)
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "consumer" || d.Implementation != "demo.Consumer" || !d.Enabled {
		t.Fatalf("desc = %+v", d)
	}
	if len(d.References) != 1 {
		t.Fatalf("refs = %v", d.References)
	}
	ref := d.References[0]
	if ref.Interface != "demo.Greeter" || ref.Cardinality != Mandatory || ref.Policy != "dynamic" {
		t.Fatalf("ref = %+v", ref)
	}
}

func TestParseDescriptionDefaults(t *testing.T) {
	d, err := ParseDescription(`<component name="x"><implementation class="c"/><reference interface="i"/></component>`)
	if err != nil {
		t.Fatal(err)
	}
	if d.References[0].Cardinality != Mandatory || d.References[0].Policy != "static" {
		t.Fatalf("defaults = %+v", d.References[0])
	}
}

func TestParseDescriptionErrors(t *testing.T) {
	cases := []string{
		`not xml at all <<<`,
		`<component><implementation class="c"/></component>`, // no name
		`<component name="x"/>`,                              // no implementation
		`<component name="x"><implementation class="c"/><service><provide/></service></component>`, // provide w/o iface
		`<component name="x"><implementation class="c"/><reference name="r"/></component>`,         // ref w/o iface
		`<component name="x"><implementation class="c"/><reference interface="i" cardinality="2..3"/></component>`,
		`<component name="x"><implementation class="c"/><reference interface="i" policy="wild"/></component>`,
		`<component name="x"><implementation class="c"/><reference interface="i" target="(((bad"/></component>`,
	}
	for i, src := range cases {
		if _, err := ParseDescription(src); err == nil {
			t.Errorf("case %d parsed", i)
		}
	}
}

func TestParseDisabledComponent(t *testing.T) {
	d, err := ParseDescription(`<component name="x" enabled="false"><implementation class="c"/></component>`)
	if err != nil {
		t.Fatal(err)
	}
	if d.Enabled {
		t.Fatal("enabled=false not honoured")
	}
}

func installDSBundle(t *testing.T, fw *osgi.Framework, name, xmlSrc string) *osgi.Bundle {
	t.Helper()
	m := manifest.New(name, manifest.MustParseVersion("1.0"))
	m.ServiceComponents = []string{"OSGI-INF/c.xml"}
	b, err := fw.Install(osgi.Definition{
		Manifest:  m,
		Resources: map[string]string{"OSGI-INF/c.xml": xmlSrc},
	})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestActivationOnSatisfaction(t *testing.T) {
	fw := osgi.NewFramework()
	rt := NewRuntime(fw)
	defer rt.Close()

	prov := &recordingInstance{name: "p"}
	cons := &recordingInstance{name: "c"}
	if err := rt.RegisterFactory("demo.Provider", func() Instance { return prov }); err != nil {
		t.Fatal(err)
	}
	if err := rt.RegisterFactory("demo.Consumer", func() Instance { return cons }); err != nil {
		t.Fatal(err)
	}

	// Consumer first: must stay unsatisfied.
	cb := installDSBundle(t, fw, "consumer.bundle", consumerXML)
	if err := cb.Start(); err != nil {
		t.Fatal(err)
	}
	c, ok := rt.Component("consumer")
	if !ok {
		t.Fatal("consumer not managed")
	}
	if c.State() != StateUnsatisfied {
		t.Fatalf("consumer state = %v", c.State())
	}
	if cons.activated != 0 {
		t.Fatal("consumer activated without provider")
	}

	// Provider arrives: both go active.
	pb := installDSBundle(t, fw, "provider.bundle", providerXML)
	if err := pb.Start(); err != nil {
		t.Fatal(err)
	}
	p, _ := rt.Component("provider")
	if p.State() != StateActive {
		t.Fatalf("provider state = %v", p.State())
	}
	if c.State() != StateActive {
		t.Fatalf("consumer state = %v", c.State())
	}
	if cons.activated != 1 {
		t.Fatalf("consumer activations = %d", cons.activated)
	}
	bound := cons.lastCtx.BoundServices("greeter")
	if len(bound) != 1 {
		t.Fatalf("bound = %v", bound)
	}
	if bound[0] != prov {
		t.Fatal("bound service is not the provider instance")
	}

	// Provider departs: consumer deactivates.
	if err := pb.Stop(); err != nil {
		t.Fatal(err)
	}
	if c.State() != StateUnsatisfied {
		t.Fatalf("consumer state after departure = %v", c.State())
	}
	if cons.deactivated != 1 {
		t.Fatalf("consumer deactivations = %d", cons.deactivated)
	}
}

func TestDisabledComponentNeverActivates(t *testing.T) {
	fw := osgi.NewFramework()
	rt := NewRuntime(fw)
	defer rt.Close()
	inst := &recordingInstance{}
	if err := rt.RegisterFactory("c", func() Instance { return inst }); err != nil {
		t.Fatal(err)
	}
	b := installDSBundle(t, fw, "b", `<component name="x" enabled="false"><implementation class="c"/></component>`)
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	comp, _ := rt.Component("x")
	if comp.State() != StateDisabled || inst.activated != 0 {
		t.Fatalf("state = %v, activations = %d", comp.State(), inst.activated)
	}
}

func TestNoFactoryNoActivation(t *testing.T) {
	fw := osgi.NewFramework()
	rt := NewRuntime(fw)
	defer rt.Close()
	b := installDSBundle(t, fw, "b", providerXML)
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	comp, _ := rt.Component("provider")
	if comp.State() == StateActive {
		t.Fatal("activated without a factory")
	}
	// Late factory registration + reevaluation picks it up.
	inst := &recordingInstance{}
	if err := rt.RegisterFactory("demo.Provider", func() Instance { return inst }); err != nil {
		t.Fatal(err)
	}
	rt.Reevaluate()
	if comp.State() != StateActive {
		t.Fatalf("state after late factory = %v", comp.State())
	}
}

func TestActivateErrorKeepsUnsatisfied(t *testing.T) {
	fw := osgi.NewFramework()
	rt := NewRuntime(fw)
	defer rt.Close()
	inst := &recordingInstance{failOnce: true}
	if err := rt.RegisterFactory("demo.Provider", func() Instance { return inst }); err != nil {
		t.Fatal(err)
	}
	b := installDSBundle(t, fw, "b", providerXML)
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	comp, _ := rt.Component("provider")
	if comp.State() == StateActive && inst.activated == 0 {
		t.Fatal("component active despite failed Activate")
	}
	// Retry succeeds.
	rt.Reevaluate()
	if comp.State() != StateActive {
		t.Fatalf("state = %v after retry", comp.State())
	}
}

func TestProvidedServiceRegistered(t *testing.T) {
	fw := osgi.NewFramework()
	rt := NewRuntime(fw)
	defer rt.Close()
	inst := &recordingInstance{}
	if err := rt.RegisterFactory("demo.Provider", func() Instance { return inst }); err != nil {
		t.Fatal(err)
	}
	b := installDSBundle(t, fw, "b", providerXML)
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	refs := fw.ServiceReferences("demo.Greeter", nil)
	if len(refs) != 1 {
		t.Fatalf("provided services = %d", len(refs))
	}
	if got := refs[0].Property("component.name"); got != "provider" {
		t.Fatalf("component.name = %v", got)
	}
}

func TestRuntimeCloseDeactivates(t *testing.T) {
	fw := osgi.NewFramework()
	rt := NewRuntime(fw)
	inst := &recordingInstance{}
	if err := rt.RegisterFactory("demo.Provider", func() Instance { return inst }); err != nil {
		t.Fatal(err)
	}
	b := installDSBundle(t, fw, "b", providerXML)
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	rt.Close()
	if inst.deactivated != 1 {
		t.Fatalf("deactivations = %d", inst.deactivated)
	}
}

func TestFactoryValidation(t *testing.T) {
	rt := NewRuntime(osgi.NewFramework())
	defer rt.Close()
	if err := rt.RegisterFactory("", nil); err == nil {
		t.Fatal("empty factory accepted")
	}
	if err := rt.RegisterFactory("c", func() Instance { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := rt.RegisterFactory("c", func() Instance { return nil }); err == nil {
		t.Fatal("duplicate factory accepted")
	}
}

func TestMultipleCardinalityBindsAll(t *testing.T) {
	fw := osgi.NewFramework()
	rt := NewRuntime(fw)
	defer rt.Close()
	// Two providers, one consumer with 1..n.
	for i := 0; i < 2; i++ {
		inst := &recordingInstance{name: fmt.Sprintf("p%d", i)}
		cls := fmt.Sprintf("demo.P%d", i)
		if err := rt.RegisterFactory(cls, func() Instance { return inst }); err != nil {
			t.Fatal(err)
		}
		xmlSrc := fmt.Sprintf(`<component name="p%d"><implementation class="%s"/><service><provide interface="demo.Greeter"/></service></component>`, i, cls)
		b := installDSBundle(t, fw, fmt.Sprintf("pb%d", i), xmlSrc)
		if err := b.Start(); err != nil {
			t.Fatal(err)
		}
	}
	cons := &recordingInstance{}
	if err := rt.RegisterFactory("demo.Consumer", func() Instance { return cons }); err != nil {
		t.Fatal(err)
	}
	xmlSrc := `<component name="consumer"><implementation class="demo.Consumer"/><reference name="all" interface="demo.Greeter" cardinality="1..n"/></component>`
	cb := installDSBundle(t, fw, "cb", xmlSrc)
	if err := cb.Start(); err != nil {
		t.Fatal(err)
	}
	if got := len(cons.lastCtx.BoundServices("all")); got != 2 {
		t.Fatalf("bound = %d, want 2", got)
	}
}

func TestComponentsSorted(t *testing.T) {
	fw := osgi.NewFramework()
	rt := NewRuntime(fw)
	defer rt.Close()
	b := installDSBundle(t, fw, "b", providerXML)
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	if got := len(rt.Components()); got != 1 {
		t.Fatalf("components = %d", got)
	}
}
