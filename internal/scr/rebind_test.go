package scr

import (
	"testing"

	"repro/internal/osgi"
)

// rebindingInstance implements Rebinder: it survives service churn.
type rebindingInstance struct {
	recordingInstance
	rebinds int
	lastN   int
}

func (r *rebindingInstance) Rebind(cc *ComponentContext) {
	r.rebinds++
	r.lastN = len(cc.BoundServices("greeter"))
}

const dynamicConsumerXML = `<component name="dynCons">
  <implementation class="demo.DynConsumer"/>
  <reference name="greeter" interface="demo.Greeter" cardinality="0..n" policy="dynamic"/>
</component>`

func TestDynamicPolicyRebindsInPlace(t *testing.T) {
	fw := osgi.NewFramework()
	rt := NewRuntime(fw)
	defer rt.Close()
	inst := &rebindingInstance{}
	if err := rt.RegisterFactory("demo.DynConsumer", func() Instance { return inst }); err != nil {
		t.Fatal(err)
	}
	cb := installDSBundle(t, fw, "dyn.bundle", dynamicConsumerXML)
	if err := cb.Start(); err != nil {
		t.Fatal(err)
	}
	// Optional reference: active immediately with zero bindings.
	comp, _ := rt.Component("dynCons")
	if comp.State() != StateActive {
		t.Fatalf("state = %v", comp.State())
	}
	if inst.activated != 1 {
		t.Fatalf("activations = %d", inst.activated)
	}

	// A provider arrives: the instance is rebound, NOT restarted.
	prov := &recordingInstance{}
	if err := rt.RegisterFactory("demo.Provider", func() Instance { return prov }); err != nil {
		t.Fatal(err)
	}
	pb := installDSBundle(t, fw, "provider.bundle", providerXML)
	if err := pb.Start(); err != nil {
		t.Fatal(err)
	}
	if inst.activated != 1 || inst.deactivated != 0 {
		t.Fatalf("dynamic component restarted: act=%d deact=%d", inst.activated, inst.deactivated)
	}
	if inst.rebinds == 0 || inst.lastN != 1 {
		t.Fatalf("rebinds=%d lastN=%d", inst.rebinds, inst.lastN)
	}

	// Provider leaves: rebound back to zero, still not restarted.
	before := inst.rebinds
	if err := pb.Stop(); err != nil {
		t.Fatal(err)
	}
	if inst.deactivated != 0 {
		t.Fatal("dynamic component deactivated on optional departure")
	}
	if inst.rebinds <= before || inst.lastN != 0 {
		t.Fatalf("rebinds=%d lastN=%d after departure", inst.rebinds, inst.lastN)
	}
}

func TestStaticPolicyStillRestarts(t *testing.T) {
	fw := osgi.NewFramework()
	rt := NewRuntime(fw)
	defer rt.Close()
	// Same consumer but static policy and mandatory cardinality: churn
	// must deactivate/reactivate, even though the instance implements
	// Rebinder.
	inst := &rebindingInstance{}
	if err := rt.RegisterFactory("demo.Consumer", func() Instance { return inst }); err != nil {
		t.Fatal(err)
	}
	prov := &recordingInstance{}
	if err := rt.RegisterFactory("demo.Provider", func() Instance { return prov }); err != nil {
		t.Fatal(err)
	}
	staticConsumer := `<component name="consumer">
	  <implementation class="demo.Consumer"/>
	  <reference name="greeter" interface="demo.Greeter" cardinality="1..1" policy="static"/>
	</component>`
	cb := installDSBundle(t, fw, "consumer.bundle", staticConsumer)
	if err := cb.Start(); err != nil {
		t.Fatal(err)
	}
	pb := installDSBundle(t, fw, "provider.bundle", providerXML)
	if err := pb.Start(); err != nil {
		t.Fatal(err)
	}
	if inst.activated != 1 {
		t.Fatalf("activations = %d", inst.activated)
	}
	if err := pb.Stop(); err != nil {
		t.Fatal(err)
	}
	if inst.deactivated != 1 {
		t.Fatalf("static component not deactivated on departure: %d", inst.deactivated)
	}
	if inst.rebinds != 0 {
		t.Fatalf("static component was rebound %d times", inst.rebinds)
	}
}
