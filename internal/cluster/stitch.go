package cluster

// Federated observability surface: the cluster's stitched Why-chains,
// the pinned stitched-trace digest, merged latency summaries, and
// flight-recorder access across node planes.

import (
	"sort"

	"repro/internal/obs"
)

// Planes returns the federation's plane registry: every node plane
// under its node name plus the cluster control plane under "cluster" —
// the map obs.StitchWhy/StitchDigest consume.
func (c *Cluster) Planes() map[string]*obs.Plane {
	planes := make(map[string]*obs.Plane, len(c.nodes)+1)
	planes["cluster"] = c.plane
	for _, n := range c.nodes {
		planes[n.Name()] = n.plane
	}
	return planes
}

// Why reconstructs the cross-node causal chain ending at a component's
// latest span, newest first. The walk starts on the component's catalog
// node (or, for names the catalog does not manage, the first node — in
// id order — whose plane knows the component, falling back to the
// cluster plane) and hops planes through the stitch table wherever a
// cause crossed the network.
func (c *Cluster) Why(component string) []obs.StitchedSpan {
	return obs.StitchWhy(c.Planes(), c.whereIs(component), component)
}

// WhyOn is Why pinned to an explicit plane ("n2", "cluster").
func (c *Cluster) WhyOn(node, component string) []obs.StitchedSpan {
	return obs.StitchWhy(c.Planes(), node, component)
}

// whereIs names the plane holding a component's latest span.
func (c *Cluster) whereIs(component string) string {
	if pl := c.placements[component]; pl != nil {
		if _, ok := c.nodes[pl.node].plane.Last(component); ok {
			return nodeName(pl.node)
		}
	}
	for _, n := range c.nodes {
		if _, ok := n.plane.Last(component); ok {
			return n.Name()
		}
	}
	return "cluster"
}

// StitchDigest folds the stitched Why-chains of every cluster-managed
// component — roots in catalog name order — into one hex SHA-256. Like
// Cluster.Digest it is byte-deterministic for a Config at any per-node
// Shards setting and Parallel on or off; unlike Digest it pins the
// *cross-node* causality the stitch table reconstructs, so a regression
// that breaks remote-parent links moves this digest even when every
// single-plane stream is intact.
func (c *Cluster) StitchDigest() string {
	planes := c.Planes()
	roots := make([]obs.StitchRoot, 0, len(c.placements))
	for _, name := range c.sortedPlacementNames() {
		roots = append(roots, obs.StitchRoot{Node: c.whereIs(name), Component: name})
	}
	return obs.StitchDigest(planes, roots)
}

// LatencyStats merges every plane's latency histograms — the cluster
// plane's migrate-e2e and revoke-propagation distributions plus each
// node's resolve/deploy/plan-apply wall distributions — into one
// summary in canonical kind order.
func (c *Cluster) LatencyStats() []obs.LatencyStat {
	planes := make([]*obs.Plane, 0, len(c.nodes)+1)
	planes = append(planes, c.plane)
	for _, n := range c.nodes {
		planes = append(planes, n.plane)
	}
	return obs.MergeLatencyStats(planes...)
}

// FlightDumps gathers every plane's retained flight-recorder dumps,
// names qualified as "node/name", in (node, capture) order.
func (c *Cluster) FlightDumps() []obs.FlightDump {
	var out []obs.FlightDump
	names := make([]string, 0, len(c.nodes)+1)
	names = append(names, "cluster")
	for _, n := range c.nodes {
		names = append(names, n.Name())
	}
	sort.Strings(names[1:]) // node names; "cluster" stays first
	planes := c.Planes()
	for _, pn := range names {
		for _, d := range planes[pn].FlightDumps() {
			d.Name = pn + "/" + d.Name
			out = append(out, d)
		}
	}
	return out
}
