package cluster

// Failure detection, bully-lite leader election, and the leader's
// duties: cluster-wide admission (placement), budget revocation routing,
// degradation-driven migration, node-loss re-placement, and post-heal
// reconciliation. All of it runs at barriers from each node's local
// knowledge (heartbeats heard, reports received), so two leaders on the
// two sides of a partition each act on their own island and the digest
// stays deterministic.

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"repro/internal/descriptor"
	"repro/internal/net"
	"repro/internal/obs"
	"repro/internal/sim"
)

// detectFailures refreshes every node's reachability set from heartbeat
// ages and re-derives its leader belief. A peer flipping to unreachable
// drops its remote provisions here (the failure detector stands in for
// the unprovision message that cannot arrive); a peer flipping back
// triggers re-advertisement of this node's exports to it.
func (c *Cluster) detectFailures(b sim.Time) {
	loss := sim.Duration(c.cfg.NodeLossAfter)
	for _, n := range c.nodes {
		for _, peer := range c.nodes {
			if peer.id == n.id {
				continue
			}
			was := n.reachable[peer.id]
			now := b.Sub(n.lastHB[peer.id]) <= loss
			if was == now {
				continue
			}
			n.reachable[peer.id] = now
			if !now {
				c.dropProvisionsFrom(b, n, peer.id)
				if n.leader == n.id {
					c.onNodeLoss(b, n, peer.id)
				}
			} else {
				c.reprovisionTo(b, n, peer.id)
			}
		}
		leader := n.id
		for id := 0; id < n.id; id++ {
			if n.reachable[id] {
				leader = id
				break
			}
		}
		n.leader = leader
	}
}

// dropProvisionsFrom withdraws every remote provision originating at a
// lost peer, so consumers cascade to UNSATISFIED instead of reading a
// frozen replica forever.
func (c *Cluster) dropProvisionsFrom(b sim.Time, n *Node, peer int) {
	suffix := "@" + nodeName(peer)
	keys := make([]expKey, 0)
	for key := range n.installed {
		if _, origin, ok := cutKey(key); ok && len(origin) > len(suffix) && origin[len(origin)-len(suffix):] == suffix {
			keys = append(keys, key)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, key := range keys {
		c.uninstallProvision(b, n, key, nodeName(peer), 0)
	}
}

func cutKey(key expKey) (topic, origin string, ok bool) {
	s := string(key)
	for i := 0; i < len(s); i++ {
		if s[i] == '|' {
			return s[:i], s[i+1:], true
		}
	}
	return s, "", false
}

// onNodeLoss is the leader's reaction to losing a member: every
// cluster-managed component placed there is re-placed onto a reachable
// node with headroom. The lost node may well still be running its copy
// on the far side of a partition — the heal-time reconciliation removes
// whichever copy the catalog no longer names.
func (c *Cluster) onNodeLoss(b sim.Time, leader *Node, lost int) {
	var stranded []string
	for _, name := range c.sortedPlacementNames() {
		if c.placements[name].node == lost {
			stranded = append(stranded, name)
		}
	}
	span := c.plane.NodeLoss(b, nodeName(lost), int64(len(stranded)),
		fmt.Sprintf("no heartbeat for %v", c.cfg.NodeLossAfter), 0)
	delete(leader.reports, lost)
	// Pick a target for every evacuee first, then ship per target: a
	// batch of two or more rides one compiled composition plan instead
	// of N migrate-add messages.
	type evacuation struct {
		names  []string
		causes []obs.SpanID
	}
	batches := map[int]*evacuation{}
	var targets []int
	for _, name := range stranded {
		pl := c.placements[name]
		target, ok := c.pickNode(leader, pl.desc, lost)
		if !ok {
			continue
		}
		pl.node = target
		c.cooldown[name] = b
		c.migStart[name] = b
		cause := c.plane.Place(b, name, nodeName(target), "re-placed after node loss", span)
		ev := batches[target]
		if ev == nil {
			ev = &evacuation{}
			batches[target] = ev
			targets = append(targets, target)
		}
		ev.names = append(ev.names, name)
		ev.causes = append(ev.causes, cause)
	}
	for _, target := range targets {
		ev := batches[target]
		if len(ev.names) == 1 {
			// A lone evacuee takes the classic per-component path.
			c.placeOn(b, leader, target, ev.names[0], ev.causes[0])
			continue
		}
		c.planOn(b, leader, target, ev.names, span)
	}
}

// planOn evacuates a batch of components as one compiled composition
// plan: the leader compiles the batch against its own view — warming
// the cluster-shared plan cache — and sends a single migrate-plan
// control message naming the batch. The receiver re-reads the
// descriptors from the shared catalog and deploys them in one pass,
// hitting the cached plan when its view matches the leader's. A batch
// that fails to compile (a typed port conflict between evacuees)
// degrades to per-component migrate-add, i.e. the event path.
func (c *Cluster) planOn(b sim.Time, leader *Node, target int, names []string, cause obs.SpanID) {
	descs := make([]*descriptor.Component, 0, len(names))
	for _, name := range names {
		if pl := c.placements[name]; pl != nil {
			descs = append(descs, pl.desc)
		}
	}
	if _, err := leader.drcr.CompilePlan(descs); err != nil {
		for _, name := range names {
			c.placeOn(b, leader, target, name, cause)
		}
		return
	}
	if target == leader.id {
		todo := descs[:0]
		for _, d := range descs {
			if _, deployed := leader.drcr.Component(d.Name); !deployed {
				todo = append(todo, d)
			}
		}
		leader.drcr.DeployAll(todo)
		return
	}
	batch := strings.Join(names, ",")
	span := c.plane.Send(b, batch, leader.Name(), nodeName(target), "migrate-plan", cause)
	c.net.Send(b, net.Message{
		Src: leader.id, Dst: target, Kind: net.Control,
		Topic: batch, Note: "migrate-plan", Cause: uint64(span),
	})
}

// pickNode chooses the reachable node with the most spare budget for a
// contract, from the leader's (possibly stale) reports; ties break to
// the lowest id. Nodes without a report yet count as empty. The excluded
// node (the one being evacuated) never wins.
func (c *Cluster) pickNode(leader *Node, desc *descriptor.Component, exclude int) (int, bool) {
	best, bestLoad := -1, 0.0
	for _, peer := range c.nodes {
		if peer.id == exclude || !leader.reachable[peer.id] && peer.id != leader.id {
			continue
		}
		load := 0.0
		if r := leader.reports[peer.id]; r != nil {
			load = r.load
		}
		if load+desc.CPUUsage > float64(c.cfg.NumCPUs) {
			continue
		}
		if best == -1 || load < bestLoad {
			best, bestLoad = peer.id, load
		}
	}
	return best, best >= 0
}

// placeOn deploys a catalog component on target: directly when the
// leader is the target, otherwise with a migrate-add control message
// that rides the network (and its latency and partitions).
func (c *Cluster) placeOn(b sim.Time, leader *Node, target int, name string, cause obs.SpanID) {
	if target == leader.id {
		if pl := c.placements[name]; pl != nil {
			if _, deployed := leader.drcr.Component(name); !deployed {
				_ = leader.drcr.Deploy(pl.desc)
			}
		}
		return
	}
	span := c.plane.Send(b, name, leader.Name(), nodeName(target), "migrate-add", cause)
	c.net.Send(b, net.Message{
		Src: leader.id, Dst: target, Kind: net.Control,
		Topic: name, Note: "migrate-add", Cause: uint64(span),
	})
}

// removeFrom mirrors placeOn for evacuations.
func (c *Cluster) removeFrom(b sim.Time, leader *Node, target int, name string, cause obs.SpanID) {
	if target == leader.id {
		_ = leader.drcr.Remove(name)
		return
	}
	span := c.plane.Send(b, name, leader.Name(), nodeName(target), "migrate-rm", cause)
	c.net.Send(b, net.Message{
		Src: leader.id, Dst: target, Kind: net.Control,
		Topic: name, Note: "migrate-rm", Cause: uint64(span),
	})
}

// leaderDuties runs once per barrier on every node that believes it
// leads: refresh its own report entry, reconcile stale copies the
// catalog no longer names, and migrate components stuck below their
// full contract toward nodes with spare budget.
func (c *Cluster) leaderDuties(b sim.Time, leader *Node) {
	leader.reports[leader.id] = localReport(b, leader)

	// Reconciliation: a report naming a component whose catalog entry
	// points elsewhere is a stale duplicate (typically a partition-era
	// re-placement); remove the copy the catalog disowned. Only acted on
	// when this leader can reach the catalog node AND holds a report
	// confirming the authoritative copy runs there — a minority-side
	// leader must not trust catalog entries written by the far side of a
	// partition it cannot see.
	ids := make([]int, 0, len(leader.reports))
	for id := range leader.reports {
		if id == leader.id || leader.reachable[id] {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	for _, id := range ids {
		names := make([]string, 0, len(leader.reports[id].comps))
		for name := range leader.reports[id].comps {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			pl := c.placements[name]
			if pl == nil || pl.node == id || !c.cooldownOver(b, name) {
				continue
			}
			if pl.node != leader.id && !leader.reachable[pl.node] {
				continue
			}
			if !c.confirmedOn(leader, pl.node, name) {
				continue
			}
			c.cooldown[name] = b
			// Split-brain guard trip: a stale partition-era duplicate is
			// being reconciled away — freeze the flight recorder around it.
			c.plane.TriggerFlight("split-brain-"+name, b)
			span := c.plane.Migrate(b, name, nodeName(id), nodeName(pl.node),
				"reconcile: catalog places it on "+nodeName(pl.node), 0)
			c.removeFrom(b, leader, id, name, span)
		}
	}

	// Degradation-driven migration: the ladder position is the placement
	// signal — a component admitted in mode > 0 wants a node where its
	// full contract fits.
	for _, id := range ids {
		r := leader.reports[id]
		names := make([]string, 0, len(r.comps))
		for name := range r.comps {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			mode := r.comps[name]
			pl := c.placements[name]
			if mode == 0 || pl == nil || pl.node != id || !c.cooldownOver(b, name) {
				continue
			}
			target, ok := c.pickNode(leader, pl.desc, id)
			if !ok {
				continue
			}
			tl := 0.0
			if tr := leader.reports[target]; tr != nil {
				tl = tr.load
			}
			// Only move when the destination genuinely has more headroom
			// than the loaded source; otherwise the ladder stays put.
			if tl+pl.desc.CPUUsage >= r.load {
				continue
			}
			pl.node = target
			c.cooldown[name] = b
			c.migStart[name] = b
			span := c.plane.Migrate(b, name, nodeName(id), nodeName(target),
				fmt.Sprintf("degraded to mode %d; spare budget on %s", mode, nodeName(target)), 0)
			c.removeFrom(b, leader, id, name, span)
			c.placeOn(b, leader, target, name, span)
		}
	}
}

// confirmedOn reports whether the leader's freshest report from a node
// lists the component as admitted there.
func (c *Cluster) confirmedOn(leader *Node, node int, name string) bool {
	if r := leader.reports[node]; r != nil {
		_, ok := r.comps[name]
		return ok
	}
	return false
}

func (c *Cluster) cooldownOver(b sim.Time, name string) bool {
	last, ok := c.cooldown[name]
	return !ok || b.Sub(last) >= sim.Duration(c.cfg.MigrateCooldown)
}

// Deploy admits a component cluster-wide: the current leader (as seen
// by node 0) places it on the reachable node with the most spare
// budget, per its aggregated global view.
func (c *Cluster) Deploy(desc *descriptor.Component) error {
	leader := c.nodes[c.nodes[0].leader]
	target, ok := c.pickNode(leader, desc, -1)
	if !ok {
		return fmt.Errorf("cluster: no node has %0.2f spare budget for %s", desc.CPUUsage, desc.Name)
	}
	return c.DeployOn(target, desc)
}

// DeployOn pins a component to an explicit node and records it in the
// placement catalog.
func (c *Cluster) DeployOn(node int, desc *descriptor.Component) error {
	if node < 0 || node >= len(c.nodes) {
		return fmt.Errorf("cluster: no node %d", node)
	}
	if _, exists := c.placements[desc.Name]; exists {
		return fmt.Errorf("cluster: %s already placed", desc.Name)
	}
	if err := c.nodes[node].drcr.Deploy(desc); err != nil {
		return err
	}
	c.placements[desc.Name] = &placement{desc: desc, node: node}
	c.plane.Place(c.now, desc.Name, nodeName(node), "deployed", 0)
	return nil
}

// DeployXML parses one descriptor and deploys it cluster-wide.
func (c *Cluster) DeployXML(src string) error {
	desc, err := descriptor.Parse(src)
	if err != nil {
		return err
	}
	return c.Deploy(desc)
}

// DeployXMLOn parses one descriptor and pins it to a node.
func (c *Cluster) DeployXMLOn(node int, src string) error {
	desc, err := descriptor.Parse(src)
	if err != nil {
		return err
	}
	return c.DeployOn(node, desc)
}

// Remove withdraws a component from the cluster and its catalog.
func (c *Cluster) Remove(name string) error {
	pl, ok := c.placements[name]
	if !ok {
		return fmt.Errorf("cluster: %s is not placed", name)
	}
	delete(c.placements, name)
	return c.nodes[pl.node].drcr.Remove(name)
}

// Migrate moves a component to an explicit node (the console's manual
// override): remove at the source, deploy at the destination, catalog
// updated, traced on the cluster plane.
func (c *Cluster) Migrate(name string, dst int) error {
	pl, ok := c.placements[name]
	if !ok {
		return fmt.Errorf("cluster: %s is not placed", name)
	}
	if dst < 0 || dst >= len(c.nodes) {
		return fmt.Errorf("cluster: no node %d", dst)
	}
	if dst == pl.node {
		return nil
	}
	src := pl.node
	if err := c.nodes[src].drcr.Remove(name); err != nil {
		return err
	}
	if err := c.nodes[dst].drcr.Deploy(pl.desc); err != nil {
		return err
	}
	pl.node = dst
	c.cooldown[name] = c.now
	c.plane.Migrate(c.now, name, nodeName(src), nodeName(dst), "manual migration", 0)
	return nil
}

// RevokeBudget routes a cluster-wide budget revocation: the leader (as
// node 0 sees it) sends the revoke over the network to wherever the
// component is placed, so it arrives with real latency — or not at all
// while a partition separates leader and component.
func (c *Cluster) RevokeBudget(name, reason string) error {
	pl, ok := c.placements[name]
	if !ok {
		return fmt.Errorf("cluster: %s is not placed", name)
	}
	leader := c.nodes[c.nodes[0].leader]
	if pl.node == leader.id {
		return leader.drcr.RevokeBudget(name, reason)
	}
	span := c.plane.Send(c.now, name, leader.Name(), nodeName(pl.node), "revoke: "+reason, 0)
	// The reason rides the wire: a probabilistic admission verdict (or
	// any other revocation cause) lands verbatim in the destination
	// node's revoke span instead of a generic "cluster revocation".
	c.net.Send(c.now, net.Message{
		Src: leader.id, Dst: pl.node, Kind: net.Control,
		Topic: name, Note: "revoke: " + reason, Cause: uint64(span),
	})
	return nil
}

// RestoreBudget routes the matching restore the same way.
func (c *Cluster) RestoreBudget(name string) error {
	pl, ok := c.placements[name]
	if !ok {
		return fmt.Errorf("cluster: %s is not placed", name)
	}
	leader := c.nodes[c.nodes[0].leader]
	if pl.node == leader.id {
		return leader.drcr.RestoreBudget(name)
	}
	span := c.plane.Send(c.now, name, leader.Name(), nodeName(pl.node), "restore", 0)
	c.net.Send(c.now, net.Message{
		Src: leader.id, Dst: pl.node, Kind: net.Control,
		Topic: name, Note: "restore", Cause: uint64(span),
	})
	return nil
}

// TriggerRemote requests one aperiodic release of a task on another
// node; the request rides the network as a Trigger message and lands in
// the destination kernel's TriggerAsync (or its dropped-trigger ledger
// when a partition or loss eats it). Safe from task bodies.
func (c *Cluster) TriggerRemote(src, dst int, task string) {
	if src < 0 || src >= len(c.nodes) || dst < 0 || dst >= len(c.nodes) {
		return
	}
	c.net.Send(c.nodes[src].kernel.Now(), net.Message{
		Src: src, Dst: dst, Kind: net.Trigger, Topic: task,
	})
}

// NodeView is one node's row in the cluster's global view.
type NodeView struct {
	ID     int
	Leader int
	// Reachable lists peers this node currently hears heartbeats from.
	Reachable []int
	// Load/Admitted/Comps come from the leader's report for this node
	// (zero when the leader holds no report — e.g. across a partition).
	Load     float64
	Admitted int
	// Comps maps component → admitted mode per the freshest report.
	Comps map[string]int
}

// ClusterView is the aggregated global view as one leader sees it.
type ClusterView struct {
	At     sim.Time
	Leader int
	Nodes  []NodeView
	// Placements is the catalog: component → intended node.
	Placements map[string]int
}

// GlobalView aggregates the cluster state from the perspective of the
// leader node 0 currently follows. After a heal it converges: every
// node agrees on the leader and the leader holds a fresh report per
// node.
func (c *Cluster) GlobalView() ClusterView {
	leader := c.nodes[c.nodes[0].leader]
	v := ClusterView{At: c.now, Leader: leader.id, Placements: map[string]int{}}
	for name, pl := range c.placements {
		v.Placements[name] = pl.node
	}
	for _, n := range c.nodes {
		nv := NodeView{ID: n.id, Leader: n.leader}
		for id, ok := range n.reachable {
			if ok && id != n.id {
				nv.Reachable = append(nv.Reachable, id)
			}
		}
		if r := leader.reports[n.id]; r != nil {
			nv.Load = r.load
			nv.Admitted = r.admitted
			nv.Comps = map[string]int{}
			for name, mode := range r.comps {
				nv.Comps[name] = mode
			}
		}
		v.Nodes = append(v.Nodes, nv)
	}
	return v
}

// Converged reports whether every node agrees on one leader, every pair
// is mutually reachable, and that leader holds a report for every node
// — the post-heal stability criterion the campaign pins.
func (c *Cluster) Converged() bool {
	leader := c.nodes[0].leader
	for _, n := range c.nodes {
		if n.leader != leader {
			return false
		}
		for id, ok := range n.reachable {
			if !ok && id != n.id {
				return false
			}
		}
	}
	for _, n := range c.nodes {
		if c.nodes[leader].reports[n.id] == nil {
			return false
		}
	}
	return true
}

// Digest folds every node's lifecycle event log and observability
// stream, the cluster control plane's stream, and the network ledger
// into one hex SHA-256. Two runs with the same Config must agree byte
// for byte, for any per-node Shards setting and Parallel on or off.
func (c *Cluster) Digest() string {
	h := sha256.New()
	for _, n := range c.nodes {
		fmt.Fprintf(h, "node %d\n", n.id)
		for _, ev := range n.drcr.Events() {
			fmt.Fprintf(h, "%d|%s|%v|%v|%s\n", ev.At, ev.Component, ev.From, ev.To, ev.Reason)
		}
		fmt.Fprintf(h, "obs %s\n", n.plane.StreamDigest())
	}
	fmt.Fprintf(h, "plane %s\n", c.plane.StreamDigest())
	for _, name := range c.sortedPlacementNames() {
		fmt.Fprintf(h, "place %s=%d\n", name, c.placements[name].node)
	}
	s := c.net.Stats()
	fmt.Fprintf(h, "net %d %d %d %d %d %d %d\n",
		s.Sent, s.Duplicated, s.Delivered, s.Dropped, s.PartitionDrops, s.LossDrops, s.Inflight)
	return hex.EncodeToString(h.Sum(nil))
}
