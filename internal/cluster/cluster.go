// Package cluster federates N DRCR nodes — each a full stack of OSGi
// framework, simulated RTAI kernel and component runtime — over the
// deterministic simulated network of package net.
//
// The cluster advances all node kernels in lockstep windows whose width
// is the network's conservative lookahead bound (the minimum one-way
// link latency): a message sent inside a window cannot be due before the
// window's closing barrier, so nodes never roll back — the same
// conservative-window discipline the sharded kernel uses for CPUs,
// lifted one level up. All federation logic (heartbeats, reports,
// provision exchange, data replication, failure detection, leader
// election, placement and migration) runs single-threaded at barriers,
// so cluster runs are byte-deterministic and digest-pinnable even when
// Config.Parallel advances node windows on real OS threads.
//
// Leadership is bully-lite: every node believes the lowest-numbered node
// it can still hear heartbeats from (itself included) is the leader.
// Non-leaders stream load/degradation reports to their leader; the
// leader aggregates them into a global view that drives cluster-wide
// admission (Deploy places components on the node with the most
// headroom), budget revocation routing, degradation-driven migration
// (a component stuck below its full contract moves to a node with spare
// budget), and node-loss re-placement. Under a partition each side
// elects its own leader and manages its own components; after the heal
// the surviving leader reconciles duplicates from stale placements.
package cluster

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/descriptor"
	"repro/internal/net"
	"repro/internal/obs"
	"repro/internal/osgi"
	"repro/internal/plan"
	"repro/internal/rtos"
	"repro/internal/sim"
)

// Config parameterises a Cluster.
type Config struct {
	// Nodes is the node count (default 2).
	Nodes int
	// NumCPUs is the simulated processor count per node (default 1).
	NumCPUs int
	// Shards is the per-node kernel shard count (default 1, sequential).
	Shards int
	// Seed drives every stream: node kernels and the network fork from it
	// (default 1).
	Seed uint64
	// Net overrides network parameters; Nodes and Seed are filled in.
	Net net.Config
	// ObsLevel is the sampling level of the per-node and cluster planes.
	ObsLevel obs.Level
	// HeartbeatEvery is the failure-detector beacon period (default 2ms).
	HeartbeatEvery time.Duration
	// ReportEvery is the load/degradation report period (default 5ms).
	ReportEvery time.Duration
	// SyncEvery is the port-data replication period (default 1ms).
	SyncEvery time.Duration
	// NodeLossAfter is the heartbeat silence after which a peer is
	// declared lost (default 6ms; must exceed HeartbeatEvery plus the
	// worst link latency or healthy peers flap).
	NodeLossAfter time.Duration
	// MigrateCooldown is the minimum interval between placement actions
	// on the same component (default 20ms), damping migration churn.
	MigrateCooldown time.Duration
	// Parallel advances node kernel windows on separate goroutines.
	// Outcomes are byte-identical to sequential: nodes only interact at
	// barriers, through the network's canonical ordering.
	Parallel bool
	// ExecJitter is passed to every node's DRCR (default 0.05).
	ExecJitter float64
}

func (c *Config) applyDefaults() {
	if c.Nodes <= 0 {
		c.Nodes = 2
	}
	if c.NumCPUs <= 0 {
		c.NumCPUs = 1
	}
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 2 * time.Millisecond
	}
	if c.ReportEvery <= 0 {
		c.ReportEvery = 5 * time.Millisecond
	}
	if c.SyncEvery <= 0 {
		c.SyncEvery = time.Millisecond
	}
	if c.NodeLossAfter <= 0 {
		c.NodeLossAfter = 6 * time.Millisecond
	}
	if c.MigrateCooldown <= 0 {
		c.MigrateCooldown = 20 * time.Millisecond
	}
}

// expKey identifies one exported provision: "topic|component@nodeN".
type expKey string

// Node is one cluster member: a complete DRCom stack plus the local
// federation state (failure detector, leader belief, replica registry).
type Node struct {
	id     int
	fw     *osgi.Framework
	kernel *rtos.Kernel
	drcr   *core.DRCR
	plane  *obs.Plane

	// Failure detector: last heartbeat heard per peer and the derived
	// reachability set; leader is the lowest reachable id.
	lastHB    []sim.Time
	reachable []bool
	leader    int

	// reports holds the freshest load report per node while this node
	// acts as a leader (its own entry is refreshed locally).
	reports map[int]*report

	// exported tracks provisions this node has advertised to peers;
	// installed tracks remote provisions applied here (guarding against
	// duplicated provision messages); replicas refcounts the SHM
	// replicas created here per topic; lastGen is the per-topic SHM
	// generation at the last data sync.
	exported  map[expKey]descriptor.Port
	installed map[expKey]descriptor.Port
	replicas  map[string]int
	lastGen   map[string]uint64

	nextHB, nextReport, nextSync sim.Time
}

// ID returns the node index.
func (n *Node) ID() int { return n.id }

// Name returns the node's display name ("n3").
func (n *Node) Name() string { return nodeName(n.id) }

// DRCR exposes the node's component runtime.
func (n *Node) DRCR() *core.DRCR { return n.drcr }

// Kernel exposes the node's simulated kernel.
func (n *Node) Kernel() *rtos.Kernel { return n.kernel }

// Framework exposes the node's OSGi framework.
func (n *Node) Framework() *osgi.Framework { return n.fw }

// Leader returns the node this node currently believes leads the
// cluster (lowest reachable id; itself while isolated).
func (n *Node) Leader() int { return n.leader }

// Plane exposes the node's observability plane.
func (n *Node) Plane() *obs.Plane { return n.plane }

func nodeName(id int) string { return fmt.Sprintf("n%d", id) }

// report is a node's load/degradation summary as its leader sees it.
type report struct {
	at       sim.Time
	load     float64
	admitted int
	// comps maps component name → admitted service mode (0 = full).
	comps map[string]int
}

// placement is the catalog entry for one cluster-managed component.
type placement struct {
	desc *descriptor.Component
	node int
}

// Cluster owns N federated nodes and the fabric between them.
type Cluster struct {
	cfg   Config
	nodes []*Node
	net   *net.Network
	plane *obs.Plane // cluster-level control-plane spans
	step  sim.Duration
	now   sim.Time

	// placements is the deployment catalog: the descriptor and intended
	// node of every cluster-managed component. Leaders consult and amend
	// it; under a partition each side amends entries for its own moves
	// and the post-heal reconciliation enforces it again.
	placements map[string]*placement
	// cooldown is the last placement action per component.
	cooldown map[string]sim.Time
	// partSpans chains each partition's heal span to its cut span.
	partSpans map[int]obs.SpanID
	// migStart records when a network migration was decided, per
	// component; the barrier sweep records the end-to-end sim latency
	// once the component is admitted on its catalog node.
	migStart map[string]sim.Time
	// planCache is shared by every node's DRCR: a composition plan the
	// leader compiles for a migration batch is found by key on the
	// receiving node and applied without recompiling.
	planCache *plan.Cache

	closed bool
}

// New boots a cluster of cfg.Nodes DRCom stacks over a fresh network.
func New(cfg Config) (*Cluster, error) {
	cfg.applyDefaults()
	root := sim.NewRand(cfg.Seed)
	ncfg := cfg.Net
	ncfg.Nodes = cfg.Nodes
	if ncfg.Seed == 0 {
		ncfg.Seed = root.Uint64()
	}
	nw := net.New(ncfg)
	c := &Cluster{
		cfg:        cfg,
		net:        nw,
		plane:      obs.NewPlane(obs.Options{Level: cfg.ObsLevel, Node: "cluster"}),
		step:       sim.Duration(nw.Lookahead()),
		placements: map[string]*placement{},
		cooldown:   map[string]sim.Time{},
		partSpans:  map[int]obs.SpanID{},
		migStart:   map[string]sim.Time{},
		planCache:  plan.NewCache(),
	}
	for i := 0; i < cfg.Nodes; i++ {
		fw := osgi.NewFramework()
		kernel := rtos.NewKernel(rtos.Config{
			NumCPUs: cfg.NumCPUs,
			Shards:  cfg.Shards,
			Seed:    root.Uint64(),
		})
		plane := obs.NewPlane(obs.Options{Level: cfg.ObsLevel, Node: nodeName(i)})
		d, err := core.New(fw, kernel, core.Options{
			Obs:        plane,
			ExecJitter: cfg.ExecJitter,
		})
		if err != nil {
			for _, n := range c.nodes {
				n.drcr.Close()
				_ = n.fw.Shutdown()
			}
			return nil, err
		}
		d.SetPlanCache(c.planCache)
		n := &Node{
			id:        i,
			fw:        fw,
			kernel:    kernel,
			drcr:      d,
			plane:     plane,
			lastHB:    make([]sim.Time, cfg.Nodes),
			reachable: make([]bool, cfg.Nodes),
			reports:   map[int]*report{},
			exported:  map[expKey]descriptor.Port{},
			installed: map[expKey]descriptor.Port{},
			replicas:  map[string]int{},
			lastGen:   map[string]uint64{},
		}
		for j := range n.reachable {
			n.reachable[j] = true
		}
		c.nodes = append(c.nodes, n)
	}
	return c, nil
}

// Nodes returns the node count.
func (c *Cluster) Nodes() int { return len(c.nodes) }

// Node returns one member.
func (c *Cluster) Node(i int) *Node { return c.nodes[i] }

// Net exposes the simulated fabric (partition scheduling, ledger).
func (c *Cluster) Net() *net.Network { return c.net }

// Plane exposes the cluster-level observability plane (Send/Recv,
// Migrate, Partition/Heal, Place, NodeLoss spans).
func (c *Cluster) Plane() *obs.Plane { return c.plane }

// Now is the cluster barrier clock.
func (c *Cluster) Now() sim.Time { return c.now }

// Step is the barrier width — the network's conservative lookahead.
func (c *Cluster) Step() time.Duration { return time.Duration(c.step) }

// RegisterBody binds a bincode to a body factory on every node, so a
// component can activate wherever placement puts it.
func (c *Cluster) RegisterBody(bincode string, f core.BodyFactory) error {
	for _, n := range c.nodes {
		if err := n.drcr.RegisterBody(bincode, f); err != nil {
			return err
		}
	}
	return nil
}

// Run advances the whole cluster by d of simulated time, in lockstep
// conservative windows. Durations that are not a multiple of Step leave
// the final window short; periodic duties use absolute deadlines, so an
// unaligned stop never skips them.
func (c *Cluster) Run(d time.Duration) error {
	if c.closed {
		return errors.New("cluster: closed")
	}
	end := c.now.Add(sim.Duration(d))
	for c.now < end {
		b := c.now.Add(c.step)
		if b > end {
			b = end
		}
		if err := c.advanceNodes(b); err != nil {
			return err
		}
		c.now = b
		c.atBarrier(b)
	}
	return nil
}

// advanceNodes moves every node kernel to the barrier instant.
func (c *Cluster) advanceNodes(b sim.Time) error {
	if !c.cfg.Parallel {
		for _, n := range c.nodes {
			if err := n.kernel.RunUntil(b); err != nil {
				return fmt.Errorf("cluster: node %d: %w", n.id, err)
			}
		}
		return nil
	}
	errs := make([]error, len(c.nodes))
	done := make(chan int, len(c.nodes))
	for i, n := range c.nodes {
		go func(i int, n *Node) {
			errs[i] = n.kernel.RunUntil(b)
			done <- i
		}(i, n)
	}
	for range c.nodes {
		<-done
	}
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("cluster: node %d: %w", i, err)
		}
	}
	return nil
}

// atBarrier runs the federation control plane at barrier instant b. The
// step order is fixed — stage outgoing traffic, advance the fabric,
// apply what arrived, then detect failures and let leaders act — so two
// runs with the same seed take identical decisions.
func (c *Cluster) atBarrier(b sim.Time) {
	// 1. Stage heartbeats and reports on their own deadlines.
	for _, n := range c.nodes {
		if b >= n.nextHB {
			n.nextHB = b.Add(sim.Duration(c.cfg.HeartbeatEvery))
			for _, peer := range c.nodes {
				if peer.id != n.id {
					c.net.Send(b, net.Message{Src: n.id, Dst: peer.id, Kind: net.Heartbeat})
				}
			}
		}
		if b >= n.nextReport {
			n.nextReport = b.Add(sim.Duration(c.cfg.ReportEvery))
			c.stageReport(b, n)
		}
	}

	// 2. Diff exported provisions and replicate port data.
	for _, n := range c.nodes {
		c.stageProvisions(b, n)
		if b >= n.nextSync {
			n.nextSync = b.Add(sim.Duration(c.cfg.SyncEvery))
			c.stageData(b, n)
		}
	}

	// 3. Advance the fabric; account lost trigger intents; trace cuts.
	deliveries, dropped, topo := c.net.Advance(b)
	for _, ev := range topo {
		if ev.Heal {
			c.plane.Heal(ev.At, ev.Cut, "link restored", c.partSpans[ev.Index])
		} else {
			c.partSpans[ev.Index] = c.plane.Partition(ev.At, ev.Cut, "links severed")
		}
	}
	for _, m := range dropped {
		if m.Kind == net.Trigger {
			// The release intent is gone; keep the destination kernel's
			// conservation ledger balanced over it.
			c.nodes[m.Dst].kernel.NoteDroppedTrigger()
		}
	}

	// 4. Apply deliveries in the fabric's canonical order.
	for _, m := range deliveries {
		c.deliver(b, m)
	}

	// 5. Failure detection and leader election, then leader duties.
	c.detectFailures(b)
	for _, n := range c.nodes {
		if n.leader == n.id {
			c.leaderDuties(b, n)
		}
	}

	// 6. Close out migrations whose component is admitted at its
	// catalog node: record the end-to-end sim latency.
	c.checkMigrations(b)
}

// checkMigrations sweeps the open migration set: a component admitted
// (ACTIVE or SUSPENDED) on its catalog node completes its migration,
// and the decision-to-admission sim time lands in the cluster plane's
// migrate-e2e histogram.
func (c *Cluster) checkMigrations(b sim.Time) {
	if len(c.migStart) == 0 {
		return
	}
	names := make([]string, 0, len(c.migStart))
	for name := range c.migStart {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pl := c.placements[name]
		if pl == nil {
			delete(c.migStart, name)
			continue
		}
		info, ok := c.nodes[pl.node].drcr.Component(name)
		if !ok || (info.State != core.Active && info.State != core.Suspended) {
			continue
		}
		c.plane.RecordLatency(obs.LatMigrate, int64(b.Sub(c.migStart[name])))
		delete(c.migStart, name)
	}
}

// Close shuts every node down.
func (c *Cluster) Close() {
	if c.closed {
		return
	}
	c.closed = true
	for _, n := range c.nodes {
		n.drcr.Close()
		_ = n.fw.Shutdown()
	}
}

// sortedPlacementNames walks the catalog deterministically.
func (c *Cluster) sortedPlacementNames() []string {
	names := make([]string, 0, len(c.placements))
	for name := range c.placements {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
