package cluster

// Barrier-staged federation traffic: load reports, provision exchange,
// port-data replication, and the delivery dispatcher. Everything here
// runs inside atBarrier, single-threaded, in node-id order.

import (
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/descriptor"
	"repro/internal/net"
	"repro/internal/obs"
	"repro/internal/rtos/ipc"
	"repro/internal/sim"
)

// admittedComps snapshots a node's admitted components (ACTIVE or
// SUSPENDED — the states whose contracts count) sorted by name.
func admittedComps(n *Node) []core.Info {
	infos := n.drcr.Components()
	out := infos[:0]
	for _, info := range infos {
		if info.State == core.Active || info.State == core.Suspended {
			out = append(out, info)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// localReport builds a node's own load summary.
func localReport(b sim.Time, n *Node) *report {
	r := &report{at: b, comps: map[string]int{}}
	view := n.drcr.GlobalView()
	for _, l := range view.CPULoad {
		r.load += l
	}
	if view.CPULoad == nil {
		for _, ct := range view.Admitted {
			r.load += ct.CPUUsage
		}
	}
	for _, info := range admittedComps(n) {
		r.admitted++
		r.comps[info.Name] = info.Mode
	}
	return r
}

// encodeReport renders the component→mode map as "a=0,b=1" (sorted).
func encodeReport(r *report) string {
	names := make([]string, 0, len(r.comps))
	for name := range r.comps {
		names = append(names, name)
	}
	sort.Strings(names)
	var sb strings.Builder
	for i, name := range names {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(name)
		sb.WriteByte('=')
		sb.WriteString(strconv.Itoa(r.comps[name]))
	}
	return sb.String()
}

func decodeReport(at sim.Time, m net.Message) *report {
	r := &report{at: at, comps: map[string]int{}}
	if len(m.Payload) >= 2 {
		r.load = float64(m.Payload[0]) / 1e6
		r.admitted = int(m.Payload[1])
	}
	if m.Note != "" {
		for _, pair := range strings.Split(m.Note, ",") {
			if eq := strings.IndexByte(pair, '='); eq > 0 {
				mode, _ := strconv.Atoi(pair[eq+1:])
				r.comps[pair[:eq]] = mode
			}
		}
	}
	return r
}

// stageReport refreshes the node's own summary and, when someone else
// leads, ships it to them; a leader's own entry never crosses the wire.
func (c *Cluster) stageReport(b sim.Time, n *Node) {
	r := localReport(b, n)
	if n.leader == n.id {
		n.reports[n.id] = r
		return
	}
	c.net.Send(b, net.Message{
		Src: n.id, Dst: n.leader, Kind: net.Report,
		Note:    encodeReport(r),
		Payload: []int64{int64(r.load * 1e6), int64(r.admitted)},
	})
}

// stageProvisions diffs the node's current export set (outports of
// admitted components) against what peers were last told, and sends
// provision on/off messages for the delta. Messages carry the port
// shape, so the receiver can index and replicate without the descriptor.
func (c *Cluster) stageProvisions(b sim.Time, n *Node) {
	current := map[expKey]descriptor.Port{}
	for _, info := range admittedComps(n) {
		pl := c.placements[info.Name]
		if pl == nil {
			continue // not cluster-managed (node-local deployment)
		}
		origin := info.Name + "@" + n.Name()
		for _, out := range pl.desc.OutPorts {
			current[expKey(out.Name+"|"+origin)] = out
		}
	}
	var added, removed []expKey
	for key := range current {
		if _, ok := n.exported[key]; !ok {
			added = append(added, key)
		}
	}
	for key := range n.exported {
		if _, ok := current[key]; !ok {
			removed = append(removed, key)
		}
	}
	sort.Slice(added, func(i, j int) bool { return added[i] < added[j] })
	sort.Slice(removed, func(i, j int) bool { return removed[i] < removed[j] })
	for _, key := range added {
		n.exported[key] = current[key]
		c.broadcastProvision(b, n, key, current[key], true)
	}
	for _, key := range removed {
		port := n.exported[key]
		delete(n.exported, key)
		c.broadcastProvision(b, n, key, port, false)
	}
}

// reprovisionTo re-advertises every current export to one peer — used
// when a peer comes back from the dead, since it dropped this node's
// provisions on loss.
func (c *Cluster) reprovisionTo(b sim.Time, n *Node, peer int) {
	keys := make([]expKey, 0, len(n.exported))
	for key := range n.exported {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, key := range keys {
		c.sendProvision(b, n, peer, key, n.exported[key], true)
	}
}

func (c *Cluster) broadcastProvision(b sim.Time, n *Node, key expKey, port descriptor.Port, on bool) {
	for _, peer := range c.nodes {
		if peer.id != n.id {
			c.sendProvision(b, n, peer.id, key, port, on)
		}
	}
}

func (c *Cluster) sendProvision(b sim.Time, n *Node, dst int, key expKey, port descriptor.Port, on bool) {
	verb := "on"
	if !on {
		verb = "off"
	}
	_, origin, _ := strings.Cut(string(key), "|")
	span := c.plane.Send(b, origin, n.Name(), nodeName(dst), "provision "+verb+" "+port.Name, 0)
	note := verb + ":" + string(port.Interface)
	// Typed ports append their contract attributes; untyped ports keep
	// the legacy two-field note byte for byte. The datatype rides last
	// because its canonical form may itself contain colons.
	if port.Version != "" || port.DataType != "" {
		note += ":" + port.Version + ":" + port.DataType
	}
	c.net.Send(b, net.Message{
		Src: n.id, Dst: dst, Kind: net.Provision,
		Topic:   string(key),
		Note:    note,
		Payload: []int64{int64(port.Type), int64(port.Size)},
		Cause:   uint64(span),
	})
}

// stageData replicates changed SHM outport contents to every peer. Only
// topics this node exports are scanned; a generation check keeps quiet
// ports off the wire. Mailbox ports do not replicate (remote releases
// travel as Trigger messages instead).
func (c *Cluster) stageData(b sim.Time, n *Node) {
	topics := map[string]bool{}
	for key, port := range n.exported {
		if topic, _, ok := strings.Cut(string(key), "|"); ok && port.Interface == descriptor.SHM {
			topics[topic] = true
		}
	}
	names := make([]string, 0, len(topics))
	for t := range topics {
		names = append(names, t)
	}
	sort.Strings(names)
	for _, topic := range names {
		shm, err := n.kernel.IPC().SHM(topic)
		if err != nil {
			continue
		}
		gen := shm.Generation()
		if gen == n.lastGen[topic] {
			continue
		}
		n.lastGen[topic] = gen
		data := shm.ReadAll()
		for _, peer := range c.nodes {
			if peer.id != n.id {
				c.net.Send(b, net.Message{
					Src: n.id, Dst: peer.id, Kind: net.Data,
					Topic: topic, Payload: data,
				})
			}
		}
	}
}

// deliver applies one arrived message on its destination node.
func (c *Cluster) deliver(b sim.Time, m net.Message) {
	n := c.nodes[m.Dst]
	switch m.Kind {
	case net.Heartbeat:
		n.lastHB[m.Src] = b
	case net.Report:
		n.reports[m.Src] = decodeReport(b, m)
	case net.Provision:
		c.deliverProvision(b, n, m)
	case net.Data:
		c.deliverData(n, m)
	case net.Trigger:
		n.kernel.TriggerAsync(m.Topic)
	case net.Control:
		c.deliverControl(b, n, m)
	}
}

// deliverProvision installs or withdraws a remote provision, managing
// the SHM replica the remote topic's data lands in. Duplicated messages
// (the network may duplicate) are absorbed by the installed set.
func (c *Cluster) deliverProvision(b sim.Time, n *Node, m net.Message) {
	key := expKey(m.Topic)
	topic, origin, ok := strings.Cut(m.Topic, "|")
	parts := strings.SplitN(m.Note, ":", 4)
	if !ok || len(parts) < 2 || len(m.Payload) < 2 {
		return
	}
	verb, iface := parts[0], parts[1]
	port := descriptor.Port{
		Name:      topic,
		Interface: descriptor.PortInterface(iface),
		Type:      ipc.ElemType(m.Payload[0]),
		Size:      int(m.Payload[1]),
		Direction: descriptor.Out,
	}
	if len(parts) == 4 {
		port.Version, port.DataType = parts[2], parts[3]
	}
	switch verb {
	case "on":
		if _, dup := n.installed[key]; dup {
			return
		}
		n.installed[key] = port
		recv := c.plane.Recv(b, origin, nodeName(m.Src), n.Name(), "provision on "+topic, obs.SpanID(m.Cause))
		// Node-local effects of the arrival chain back to the cluster
		// Recv span through the stitch table (cross-node Why).
		n.plane.SetRemoteCause(obs.Ref{Node: "cluster", ID: recv})
		defer n.plane.ClearRemoteCause()
		if port.Interface == descriptor.SHM {
			if n.replicas[topic] == 0 {
				// Replica only if no local transport already carries the
				// topic (a local provider's SHM always wins).
				if _, err := n.kernel.IPC().SHM(topic); err != nil {
					if _, err := n.kernel.IPC().CreateSHM(topic, port.Type, port.Size); err == nil {
						n.replicas[topic] = 1
					}
				}
			} else {
				n.replicas[topic]++
			}
		}
		_ = n.drcr.AddRemoteProvider(port, origin)
	case "off":
		c.uninstallProvision(b, n, key, nodeName(m.Src), obs.SpanID(m.Cause))
	}
}

// uninstallProvision withdraws one installed remote provision and drops
// the SHM replica when its last provider goes.
func (c *Cluster) uninstallProvision(b sim.Time, n *Node, key expKey, fromNode string, cause obs.SpanID) {
	port, ok := n.installed[key]
	if !ok {
		return
	}
	delete(n.installed, key)
	topic, origin, _ := strings.Cut(string(key), "|")
	recv := c.plane.Recv(b, origin, fromNode, n.Name(), "provision off "+topic, cause)
	n.plane.SetRemoteCause(obs.Ref{Node: "cluster", ID: recv})
	defer n.plane.ClearRemoteCause()
	if port.Interface == descriptor.SHM && n.replicas[topic] > 0 {
		n.replicas[topic]--
		if n.replicas[topic] == 0 {
			delete(n.replicas, topic)
			_ = n.kernel.IPC().DeleteSHM(topic)
		}
	}
	_ = n.drcr.RemoveRemoteProvider(port, origin)
}

// deliverData lands replicated port data in the topic's replica. Nodes
// with a live local provider ignore it (local data wins).
func (c *Cluster) deliverData(n *Node, m net.Message) {
	if n.replicas[m.Topic] == 0 {
		return
	}
	shm, err := n.kernel.IPC().SHM(m.Topic)
	if err != nil {
		return
	}
	data := m.Payload
	if max := shm.Len(); len(data) > max {
		data = data[:max]
	}
	_ = shm.WriteAll(data)
}

// deliverControl executes a leader command on this node. The node-local
// effect runs under an ambient remote cause naming the cluster Recv
// span, so the destination plane's spans stitch back across the network
// hop to the leader's decision.
func (c *Cluster) deliverControl(b sim.Time, n *Node, m net.Message) {
	recv := c.plane.Recv(b, m.Topic, nodeName(m.Src), n.Name(), m.Note, obs.SpanID(m.Cause))
	n.plane.SetRemoteCause(obs.Ref{Node: "cluster", ID: recv})
	defer n.plane.ClearRemoteCause()
	verb, detail := m.Note, ""
	if i := strings.Index(m.Note, ": "); i >= 0 {
		verb, detail = m.Note[:i], m.Note[i+2:]
	}
	switch verb {
	case "revoke":
		// Propagation latency: leader send instant → applied here.
		c.plane.RecordLatency(obs.LatRevoke, int64(b.Sub(m.SentAt)))
		reason := "cluster revocation"
		if detail != "" {
			reason = "cluster revocation: " + detail
		}
		_ = n.drcr.RevokeBudget(m.Topic, reason)
	case "restore":
		_ = n.drcr.RestoreBudget(m.Topic)
	case "migrate-add":
		if pl := c.placements[m.Topic]; pl != nil {
			if _, deployed := n.drcr.Component(m.Topic); !deployed {
				_ = n.drcr.Deploy(pl.desc)
			}
		}
	case "migrate-plan":
		// A batched evacuation: the topic names the batch, the shared
		// catalog still holds the descriptors, and the shared plan cache
		// holds the plan the leader compiled before sending.
		var descs []*descriptor.Component
		for _, name := range strings.Split(m.Topic, ",") {
			pl := c.placements[name]
			if pl == nil {
				continue
			}
			if _, deployed := n.drcr.Component(name); deployed {
				continue
			}
			descs = append(descs, pl.desc)
		}
		if len(descs) > 0 {
			n.drcr.DeployAll(descs)
		}
	case "migrate-rm":
		_ = n.drcr.Remove(m.Topic)
	}
}
