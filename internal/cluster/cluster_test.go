package cluster

import (
	"flag"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/descriptor"
	"repro/internal/net"
	"repro/internal/rtos"
	"repro/internal/sim"
)

const prodXML = `<component name="prod" desc="feed producer" type="periodic" cpuusage="0.1">
  <implementation bincode="demo.Prod"/>
  <periodictask frequence="1000" runoncup="0" priority="2"/>
  <outport name="feed" interface="RTAI.SHM" type="Integer" size="4"/>
</component>`

const consXML = `<component name="cons" desc="feed consumer" type="periodic" cpuusage="0.1">
  <implementation bincode="demo.Cons"/>
  <periodictask frequence="500" runoncup="0" priority="3"/>
  <inport name="feed" interface="RTAI.SHM" type="Integer" size="4"/>
</component>`

const hogXML = `<component name="hog" desc="budget filler" type="periodic" cpuusage="0.9">
  <implementation bincode="demo.Hog"/>
  <periodictask frequence="100" runoncup="0" priority="5"/>
</component>`

const flexXML = `<component name="flex" desc="degradable worker" type="periodic" cpuusage="0.3">
  <implementation bincode="demo.Flex"/>
  <periodictask frequence="500" runoncup="0" priority="4"/>
  <mode name="eco" frequence="100" cpuusage="0.05"/>
</component>`

func mkCluster(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	for _, bin := range []string{"demo.Cons", "demo.Hog", "demo.Flex"} {
		if err := c.RegisterBody(bin, func(*descriptor.Component) rtos.Body {
			return func(*rtos.JobContext) {}
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.RegisterBody("demo.Prod", func(*descriptor.Component) rtos.Body {
		return func(j *rtos.JobContext) {
			if shm, err := j.Kernel.IPC().SHM("feed"); err == nil {
				_ = shm.Set(int(j.Index%4), 100+int64(j.Index))
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRemoteWiring(t *testing.T) {
	c := mkCluster(t, Config{Nodes: 2, Seed: 3})
	if err := c.DeployXMLOn(0, prodXML); err != nil {
		t.Fatal(err)
	}
	if err := c.DeployXMLOn(1, consXML); err != nil {
		t.Fatal(err)
	}
	// Before any network exchange the consumer has no provider.
	if info, _ := c.Node(1).DRCR().Component("cons"); info.State != core.Unsatisfied {
		t.Fatalf("consumer started as %v before provision arrived", info.State)
	}
	if err := c.Run(20 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	info, ok := c.Node(1).DRCR().Component("cons")
	if !ok || info.State != core.Active {
		t.Fatalf("consumer not ACTIVE after provision exchange: %+v", info)
	}
	if got := info.Bindings["feed"]; got != "prod@n0" {
		t.Fatalf("consumer bound to %q, want prod@n0", got)
	}
	// The producer's data crossed the wire into node 1's replica.
	shm, err := c.Node(1).Kernel().IPC().SHM("feed")
	if err != nil {
		t.Fatalf("no replica on consumer node: %v", err)
	}
	var sum int64
	for _, v := range shm.ReadAll() {
		sum += v
	}
	if sum == 0 {
		t.Fatal("replica never received producer data")
	}
	// Withdrawing the producer cascades over the network.
	if err := c.Remove("prod"); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(20 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if info, _ := c.Node(1).DRCR().Component("cons"); info.State != core.Unsatisfied {
		t.Fatalf("consumer still %v after remote provider left", info.State)
	}
}

func TestLeaderElectionAndConvergence(t *testing.T) {
	c := mkCluster(t, Config{Nodes: 4, Seed: 7})
	c.Net().SchedulePartition(c.Now().Add(10*time.Millisecond), 30*time.Millisecond, 0, 1)
	if err := c.Run(25 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// Mid-partition: each side follows its own lowest id.
	if l := c.Node(2).Leader(); l != 2 {
		t.Fatalf("minority side follows %d, want 2", l)
	}
	if l := c.Node(1).Leader(); l != 0 {
		t.Fatalf("majority side follows %d, want 0", l)
	}
	if c.Converged() {
		t.Fatal("cluster claims convergence during a partition")
	}
	if err := c.Run(35 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if l := c.Node(i).Leader(); l != 0 {
			t.Fatalf("node %d follows %d after heal", i, l)
		}
	}
	if !c.Converged() {
		t.Fatal("global view did not converge after heal")
	}
}

func TestDegradationDrivenMigration(t *testing.T) {
	c := mkCluster(t, Config{Nodes: 2, Seed: 5})
	if err := c.DeployXMLOn(0, hogXML); err != nil {
		t.Fatal(err)
	}
	if err := c.DeployXMLOn(0, flexXML); err != nil {
		t.Fatal(err)
	}
	info, _ := c.Node(0).DRCR().Component("flex")
	if info.State != core.Active || info.Mode == 0 {
		t.Fatalf("flex should start degraded on the full node: %+v", info)
	}
	if err := c.Run(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if _, still := c.Node(0).DRCR().Component("flex"); still {
		t.Fatal("flex never migrated off the loaded node")
	}
	info, ok := c.Node(1).DRCR().Component("flex")
	if !ok || info.State != core.Active {
		t.Fatalf("flex not ACTIVE on the spare node: %+v", info)
	}
	if info.Mode != 0 {
		t.Fatalf("flex still degraded (mode %d) after migrating to an empty node", info.Mode)
	}
	if v := c.GlobalView(); v.Placements["flex"] != 1 {
		t.Fatalf("catalog says flex is on node %d, want 1", v.Placements["flex"])
	}
}

func TestNodeLossReplacementAndReconcile(t *testing.T) {
	c := mkCluster(t, Config{Nodes: 4, Seed: 11})
	if err := c.DeployXMLOn(3, flexXML); err != nil {
		t.Fatal(err)
	}
	c.Net().SchedulePartition(c.Now().Add(10*time.Millisecond), 40*time.Millisecond, 3)
	if err := c.Run(40 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// The majority leader declared node 3 lost and re-placed flex.
	v := c.GlobalView()
	if v.Placements["flex"] == 3 {
		t.Fatal("leader never re-placed flex off the lost node")
	}
	if info, ok := c.Node(v.Placements["flex"]).DRCR().Component("flex"); !ok || info.State != core.Active {
		t.Fatalf("replacement copy not ACTIVE on node %d: %+v", v.Placements["flex"], info)
	}
	// Node 3, isolated, still runs its own copy.
	if info, ok := c.Node(3).DRCR().Component("flex"); !ok || info.State != core.Active {
		t.Fatalf("isolated node lost its copy prematurely: %+v", info)
	}
	if err := c.Run(80 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// After the heal the reconciliation removed the stale duplicate.
	if _, still := c.Node(3).DRCR().Component("flex"); still {
		t.Fatal("stale duplicate survived reconciliation")
	}
	if info, ok := c.Node(v.Placements["flex"]).DRCR().Component("flex"); !ok || info.State != core.Active {
		t.Fatalf("surviving copy lost after heal: %+v", info)
	}
	if !c.Converged() {
		t.Fatal("cluster did not converge after heal")
	}
}

const evacSrcXML = `<component name="esrc" desc="evac source" type="periodic" cpuusage="0.1">
  <implementation bincode="demo.Cons"/>
  <periodictask frequence="500" runoncup="0" priority="2"/>
  <outport name="pipe" interface="RTAI.SHM" type="Integer" size="4"/>
</component>`

const evacMidXML = `<component name="emid" desc="evac relay" type="periodic" cpuusage="0.1">
  <implementation bincode="demo.Cons"/>
  <periodictask frequence="500" runoncup="0" priority="3"/>
  <inport name="pipe" interface="RTAI.SHM" type="Integer" size="4"/>
  <outport name="flow" interface="RTAI.SHM" type="Integer" size="4"/>
</component>`

const evacSnkXML = `<component name="esnk" desc="evac sink" type="periodic" cpuusage="0.1">
  <implementation bincode="demo.Cons"/>
  <periodictask frequence="500" runoncup="0" priority="4"/>
  <inport name="flow" interface="RTAI.SHM" type="Integer" size="4"/>
</component>`

// TestBatchedEvacuationShipsPlan pins the plan-shipping path: losing a
// node that hosts a whole wired chain must evacuate the batch as ONE
// migrate-plan message. The leader compiles the composition plan into
// the cluster-shared cache before sending; the receiver deploys the
// batch in a single pass and finds the plan by key instead of
// recompiling.
func TestBatchedEvacuationShipsPlan(t *testing.T) {
	c := mkCluster(t, Config{Nodes: 4, Seed: 19})
	// Occupy the leader so the evacuation targets a remote node — the
	// plan must actually cross the network.
	if err := c.DeployXMLOn(0, flexXML); err != nil {
		t.Fatal(err)
	}
	for _, src := range []string{evacSrcXML, evacMidXML, evacSnkXML} {
		if err := c.DeployXMLOn(3, src); err != nil {
			t.Fatal(err)
		}
	}
	c.Net().SchedulePartition(c.Now().Add(10*time.Millisecond), 40*time.Millisecond, 3)
	if err := c.Run(40 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	v := c.GlobalView()
	target := v.Placements["esrc"]
	if target == 3 || target == 0 {
		t.Fatalf("batch evacuated to node %d, want a spare remote node", target)
	}
	for _, name := range []string{"emid", "esnk"} {
		if v.Placements[name] != target {
			t.Fatalf("%s re-placed on node %d, esrc on %d: batch split", name, v.Placements[name], target)
		}
	}
	recv := c.Node(target).DRCR()
	for _, name := range []string{"esrc", "emid", "esnk"} {
		info, ok := recv.Component(name)
		if !ok || info.State != core.Active {
			t.Fatalf("%s not ACTIVE on the target node: %+v", name, info)
		}
	}
	// The chain re-wired locally in the same pass, not via remote
	// provisions.
	if info, _ := recv.Component("emid"); info.Bindings["pipe"] != "esrc" {
		t.Fatalf("emid bound to %q, want the local esrc", info.Bindings["pipe"])
	}
	// The receiver applied the leader's cached plan: a cache hit and an
	// apply on the target node, a compile on the leader.
	if snap := c.nodes[target].plane.Snapshot(); snap.Plan.Applies == 0 || snap.Plan.CacheHits == 0 {
		t.Fatalf("target node did not fast-apply the shipped plan: %+v", snap.Plan)
	}
	hits, misses, _ := c.planCache.Stats()
	if hits == 0 || misses == 0 {
		t.Fatalf("shared plan cache saw hits=%d misses=%d, want the leader's compile and the receiver's hit", hits, misses)
	}
	// After the heal, reconciliation removes the stale copies on the
	// returned node and the cluster converges as usual.
	if err := c.Run(120 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"esrc", "emid", "esnk"} {
		if _, still := c.Node(3).DRCR().Component(name); still {
			t.Fatalf("stale %s survived reconciliation on the healed node", name)
		}
	}
	if !c.Converged() {
		t.Fatal("cluster did not converge after the heal")
	}
}

func TestRevokeBudgetOverNetwork(t *testing.T) {
	c := mkCluster(t, Config{Nodes: 2, Seed: 13})
	if err := c.DeployXMLOn(1, prodXML); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(5 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := c.RevokeBudget("prod", "deadline misses"); err != nil {
		t.Fatal(err)
	}
	// The revoke rides the network: not applied yet...
	if info, _ := c.Node(1).DRCR().Component("prod"); info.Revoked {
		t.Fatal("revoke applied before the message could arrive")
	}
	if err := c.Run(5 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	info, _ := c.Node(1).DRCR().Component("prod")
	if !info.Revoked || info.State == core.Active {
		t.Fatalf("revoke never landed: %+v", info)
	}
	// The leader's reason (a guard detail, a probabilistic verdict, …)
	// must survive the network hop verbatim, not arrive as a generic
	// "cluster revocation".
	if !strings.Contains(info.LastReason, "deadline misses") {
		t.Fatalf("revocation reason lost on the wire: %q", info.LastReason)
	}
	if err := c.RestoreBudget("prod"); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(5 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if info, _ := c.Node(1).DRCR().Component("prod"); info.Revoked || info.State != core.Active {
		t.Fatalf("restore never landed: %+v", info)
	}
}

// TestTriggerConservationUnderPartition is the cross-node analogue of
// the sharded kernel's trigger-exchange conservation test: release
// intents lost to a partitioned link must still balance the destination
// kernel's sent == delivered + dropped + queued ledger.
func TestTriggerConservationUnderPartition(t *testing.T) {
	c := mkCluster(t, Config{Nodes: 2, Seed: 17})
	if err := c.RegisterBody("demo.Sink", func(*descriptor.Component) rtos.Body {
		return func(*rtos.JobContext) {}
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.DeployXMLOn(1, `<component name="sink" desc="aperiodic sink" type="aperiodic" cpuusage="0.05">
  <implementation bincode="demo.Sink"/>
  <aperiodictask runoncup="0" priority="6"/>
</component>`); err != nil {
		t.Fatal(err)
	}
	c.Net().SchedulePartition(c.Now().Add(10*time.Millisecond), 10*time.Millisecond, 0)
	sent := 0
	for i := 0; i < 30; i++ {
		c.TriggerRemote(0, 1, "sink")
		sent++
		if err := c.Run(time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	s, d, dr, q := c.Node(1).Kernel().TriggerStats()
	if s != d+dr+q {
		t.Fatalf("conservation broken: sent=%d delivered=%d dropped=%d queued=%d", s, d, dr, q)
	}
	if int(s) != sent {
		t.Fatalf("destination ledger saw %d intents, test sent %d", s, sent)
	}
	if dr == 0 {
		t.Fatal("partition dropped nothing — test window missed the cut")
	}
	if d == 0 {
		t.Fatal("no trigger ever delivered")
	}
	ns := c.Net().Stats()
	if ns.PartitionDrops == 0 {
		t.Fatal("network ledger shows no partition drops")
	}
}

func TestDigestDeterminism(t *testing.T) {
	campaign := func(cfg Config) string {
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		for _, bin := range []string{"demo.Prod", "demo.Cons", "demo.Hog", "demo.Flex"} {
			if err := c.RegisterBody(bin, func(*descriptor.Component) rtos.Body {
				return func(*rtos.JobContext) {}
			}); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.DeployXMLOn(0, prodXML); err != nil {
			t.Fatal(err)
		}
		if err := c.DeployXMLOn(2, consXML); err != nil {
			t.Fatal(err)
		}
		if err := c.DeployXMLOn(3, flexXML); err != nil {
			t.Fatal(err)
		}
		c.Net().SchedulePartition(c.Now().Add(10*time.Millisecond), 15*time.Millisecond, 2, 3)
		if err := c.Run(50 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
		return c.Digest()
	}
	base := Config{Nodes: 4, Seed: 23, Net: net.Config{DropProb: 0.05, DupProb: 0.02}}
	ref := campaign(base)
	if again := campaign(base); again != ref {
		t.Fatalf("same config, different digests:\n%s\n%s", ref, again)
	}
	for _, shards := range []int{2, 4} {
		cfg := base
		cfg.NumCPUs = 4
		cfg.Shards = shards
		refN := func() string {
			c := base
			c.NumCPUs = 4
			c.Shards = 1
			return campaign(c)
		}()
		if got := campaign(cfg); got != refN {
			t.Fatalf("Shards=%d changed the digest:\n%s\n%s", shards, refN, got)
		}
	}
	par := base
	par.Parallel = true
	if got := campaign(par); got != ref {
		t.Fatalf("Parallel changed the digest:\n%s\n%s", ref, got)
	}
}

// twoNodeSmokeDigest is the byte-pinned outcome of the CI smoke below:
// a 2-node partition/heal cycle over lossy links. Everything feeding
// the digest is simulated and seeded, so the constant holds on any
// platform; if a change legitimately alters federation behaviour,
// regenerate with:
//
//	go test -run TwoNodePartitionHealPinnedDigest ./internal/cluster/ -v -pin
const twoNodeSmokeDigest = "cf6a07282b5c6ee3d788e90e29ebc06e2677dfcacb402c2ec2e10517653f77a5"

var pinFlag = flag.Bool("pin", false, "print the smoke digest instead of asserting it")

// TestTwoNodePartitionHealPinnedDigest is the CI partition-heal smoke:
// a producer/consumer pair wired across a 2-node cluster survives a
// cut-and-heal cycle, converges, and reproduces the committed digest.
func TestTwoNodePartitionHealPinnedDigest(t *testing.T) {
	c := mkCluster(t, Config{Nodes: 2, Seed: 11,
		Net: net.Config{DropProb: 0.02, DupProb: 0.01}})
	if err := c.DeployXMLOn(0, prodXML); err != nil {
		t.Fatal(err)
	}
	if err := c.DeployXMLOn(1, consXML); err != nil {
		t.Fatal(err)
	}
	c.Net().SchedulePartition(sim.Time(0).Add(sim.Duration(20*time.Millisecond)),
		20*time.Millisecond, 1)
	if err := c.Run(80 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if !c.Converged() {
		t.Fatal("2-node cluster did not converge after the heal")
	}
	st := c.Net().Stats()
	if st.PartitionDrops == 0 {
		t.Fatal("the cut never dropped a message")
	}
	got := c.Digest()
	if *pinFlag {
		t.Logf("smoke digest: %s", got)
		return
	}
	if got != twoNodeSmokeDigest {
		t.Fatalf("partition-heal smoke digest drifted:\n  pinned %s\n  got    %s",
			twoNodeSmokeDigest, got)
	}
}
