package adapt

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/descriptor"
	"repro/internal/osgi"
	"repro/internal/policy"
	"repro/internal/rtos"
)

var noNoise = rtos.TimingModel{}

// rig builds a 1-CPU system with admission disabled, so overload is
// possible and the adaptation manager has something to fix.
func rig(t *testing.T) (*rtos.Kernel, *core.DRCR) {
	t.Helper()
	fw := osgi.NewFramework()
	k := rtos.NewKernel(rtos.Config{Timing: &noNoise, Seed: 21})
	d, err := core.New(fw, k, core.Options{
		Internal:   policy.Static{AdmitAll: true, Label: "open"},
		ExecJitter: -1, // exact budgets
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return k, d
}

func comp(t *testing.T, name string, usage float64, prio, importance int) *descriptor.Component {
	t.Helper()
	src := fmt.Sprintf(`<component name="%s" type="periodic" cpuusage="%.2f" importance="%d">
	  <implementation bincode="x"/>
	  <periodictask frequence="100" runoncup="0" priority="%d"/>
	</component>`, name, usage, importance, prio)
	c, err := descriptor.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	_, d := rig(t)
	if _, err := New(nil, &ImportanceShedding{}, time.Second); err == nil {
		t.Fatal("nil drcr accepted")
	}
	if _, err := New(d, nil, time.Second); err == nil {
		t.Fatal("nil policy accepted")
	}
	if _, err := New(d, &ImportanceShedding{}, 0); err == nil {
		t.Fatal("zero interval accepted")
	}
}

func TestShedsLeastImportantUnderOverload(t *testing.T) {
	k, d := rig(t)
	// 130% load: the lowest-priority task misses its deadlines.
	for _, c := range []*descriptor.Component{
		comp(t, "vital", 0.50, 1, 3),
		comp(t, "mid", 0.40, 2, 2),
		comp(t, "extra", 0.40, 3, 1),
	} {
		if err := d.Deploy(c); err != nil {
			t.Fatal(err)
		}
	}
	m, err := New(d, &ImportanceShedding{HealthyChecks: 1000}, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	if err := k.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	// The least-important component was shed; the important ones run.
	if info, _ := d.Component("extra"); info.State != core.Suspended {
		t.Fatalf("extra = %v, want SUSPENDED", info.State)
	}
	if info, _ := d.Component("vital"); info.State != core.Active {
		t.Fatalf("vital = %v", info.State)
	}
	if info, _ := d.Component("mid"); info.State != core.Active {
		t.Fatalf("mid = %v", info.State)
	}
	// After shedding, the remaining set is schedulable: no further misses.
	vital, _ := k.Task("vital")
	mid, _ := k.Task("mid")
	vital.ResetStats()
	mid.ResetStats()
	if err := k.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if vital.Stats().Misses != 0 || mid.Stats().Misses != 0 {
		t.Fatalf("post-shed misses: vital %d mid %d", vital.Stats().Misses, mid.Stats().Misses)
	}
	// The log names the action.
	var suspends int
	for _, a := range m.History() {
		if a.Action.Kind == ActSuspend && a.Err == nil {
			suspends++
		}
	}
	if suspends == 0 {
		t.Fatal("no suspend actions recorded")
	}
}

func TestResumesWhenHealthy(t *testing.T) {
	k, d := rig(t)
	if err := d.Deploy(comp(t, "vital", 0.50, 1, 3)); err != nil {
		t.Fatal(err)
	}
	if err := d.Deploy(comp(t, "extra", 0.30, 3, 1)); err != nil {
		t.Fatal(err)
	}
	// Transient overload: a heavy guest pushes the system to 130%.
	if err := d.Deploy(comp(t, "guest", 0.50, 2, 2)); err != nil {
		t.Fatal(err)
	}
	// HealthyChecks is longer than the observation window below, so no
	// resume can happen while the guest is still causing overload.
	m, err := New(d, &ImportanceShedding{HealthyChecks: 5}, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	if err := k.Run(400 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if info, _ := d.Component("extra"); info.State != core.Suspended {
		t.Fatalf("extra during overload = %v", info.State)
	}
	// The guest leaves; after five healthy checks the victim returns.
	if err := d.Remove("guest"); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if info, _ := d.Component("extra"); info.State != core.Active {
		t.Fatalf("extra after recovery = %v", info.State)
	}
	var resumes int
	for _, a := range m.History() {
		if a.Action.Kind == ActResume && a.Err == nil {
			resumes++
		}
	}
	if resumes != 1 {
		t.Fatalf("resumes = %d", resumes)
	}
}

// scriptedPolicy replays a fixed action list once.
type scriptedPolicy struct {
	actions []Action
	played  bool
}

func (s *scriptedPolicy) Name() string { return "scripted" }

func (s *scriptedPolicy) Decide([]Health) []Action {
	if s.played {
		return nil
	}
	s.played = true
	return s.actions
}

func TestSetPropertyAndDisableActions(t *testing.T) {
	k, d := rig(t)
	if err := d.Deploy(comp(t, "tgt", 0.10, 1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := d.Deploy(comp(t, "off", 0.10, 2, 1)); err != nil {
		t.Fatal(err)
	}
	p := &scriptedPolicy{actions: []Action{
		{Kind: ActSetProperty, Component: "tgt", Key: "rate", Value: "fast"},
		{Kind: ActDisable, Component: "off"},
		{Kind: ActSetProperty, Component: "ghost", Key: "a", Value: "b"}, // fails
		{Kind: ActionKind(99), Component: "tgt"},                         // fails
	}}
	m, err := New(d, p, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	applied := m.CheckNow()
	if len(applied) != 4 {
		t.Fatalf("applied = %d", len(applied))
	}
	if applied[0].Err != nil || applied[1].Err != nil {
		t.Fatalf("valid actions failed: %v %v", applied[0].Err, applied[1].Err)
	}
	if applied[2].Err == nil || applied[3].Err == nil {
		t.Fatal("invalid actions did not fail")
	}
	if err := k.Run(50 * time.Millisecond); err != nil { // property applied at job boundary
		t.Fatal(err)
	}
	mgmt, _ := d.Management("tgt")
	if v, _ := mgmt.Property("rate"); v != "fast" {
		t.Fatalf("rate = %q", v)
	}
	if info, _ := d.Component("off"); info.State != core.Disabled {
		t.Fatalf("off = %v", info.State)
	}
}

func TestManagerStartStopIdempotent(t *testing.T) {
	k, d := rig(t)
	m, err := New(d, &ImportanceShedding{}, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	m.Stop()
	m.Stop()
	before := k.Clock().Pending()
	if err := k.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if got := k.Clock().Pending(); got > before {
		t.Fatalf("stopped manager still scheduling: %d pending", got)
	}
	if len(m.History()) != 0 {
		t.Fatalf("history = %v", m.History())
	}
}

func TestPickVictimOrdering(t *testing.T) {
	mk := func(name string, imp int, usage float64, st core.State) Health {
		return Health{Info: core.Info{Name: name, Importance: imp, CPUUsage: usage, State: st}}
	}
	snapshot := []Health{
		mk("a", 2, 0.1, core.Active),
		mk("b", 1, 0.1, core.Active),
		mk("c", 1, 0.3, core.Active),
		mk("d", 0, 0.9, core.Suspended), // not active: never a victim
	}
	if got := pickVictim(snapshot, nil); got.Name != "c" {
		t.Fatalf("victim = %q, want c (lowest importance, biggest budget)", got.Name)
	}
	if got := pickVictim(nil, nil); got.Name != "" {
		t.Fatalf("victim of empty = %q", got.Name)
	}
}

// TestImportanceTieOrderIsDeterministic pins the full shed/restore cycle
// on importance ties: victims fall in higher-budget-then-name order, and
// recovery undoes them in exactly the reverse order.
func TestImportanceTieOrderIsDeterministic(t *testing.T) {
	mk := func(name string, usage float64, st core.State, miss uint64) Health {
		return Health{
			Info:        core.Info{Name: name, Importance: 1, CPUUsage: usage, State: st},
			MissesDelta: miss,
		}
	}
	p := &ImportanceShedding{HealthyChecks: 1}
	decide := func(snapshot []Health) []Action {
		t.Helper()
		return p.Decide(snapshot)
	}
	one := func(acts []Action, kind ActionKind, comp string) {
		t.Helper()
		if len(acts) != 1 || acts[0].Kind != kind || acts[0].Component != comp {
			t.Fatalf("actions = %v, want one %v on %s", acts, kind, comp)
		}
	}
	overloaded := []Health{
		mk("a", 0.2, core.Active, 5),
		mk("b", 0.3, core.Active, 5),
		mk("c", 0.2, core.Active, 5),
	}
	// All tie on importance: b falls first (highest budget), then the
	// a/c budget tie breaks by name.
	one(decide(overloaded), ActSuspend, "b")
	if acts := decide(overloaded); acts != nil { // settle check after a shed
		t.Fatalf("settle check acted: %v", acts)
	}
	overloaded[1].Info.State = core.Suspended
	one(decide(overloaded), ActSuspend, "a")
	decide(overloaded) // settle
	overloaded[0].Info.State = core.Suspended
	one(decide(overloaded), ActSuspend, "c")
	decide(overloaded) // settle
	healthy := []Health{
		mk("a", 0.2, core.Suspended, 0),
		mk("b", 0.3, core.Suspended, 0),
		mk("c", 0.2, core.Suspended, 0),
	}
	// Recovery reverses the shed order exactly: c, a, b.
	one(decide(healthy), ActResume, "c")
	one(decide(healthy), ActResume, "a")
	one(decide(healthy), ActResume, "b")
	if acts := decide(healthy); acts != nil {
		t.Fatalf("empty stack still acted: %v", acts)
	}
}

// TestDecidePrefersDowngradeOverSuspend pins the mode-aware shed path: a
// victim with a cheaper declared mode is downgraded (ActDowngrade), one
// at its lowest mode is suspended, and recovery issues the matching
// inverse action for each.
func TestDecidePrefersDowngradeOverSuspend(t *testing.T) {
	modes := []core.ModeInfo{{Name: "full"}, {Name: "eco"}}
	victim := Health{Info: core.Info{
		Name: "x", Importance: 1, CPUUsage: 0.4, State: core.Active, Modes: modes,
	}}
	other := Health{Info: core.Info{
		Name: "y", Importance: 2, CPUUsage: 0.4, State: core.Active,
	}, MissesDelta: 3}
	p := &ImportanceShedding{HealthyChecks: 1}
	acts := p.Decide([]Health{victim, other})
	if len(acts) != 1 || acts[0].Kind != ActDowngrade || acts[0].Component != "x" {
		t.Fatalf("actions = %v, want downgrade of x", acts)
	}
	p.Decide([]Health{victim, other}) // settle
	// Still overloaded and x now sits at its lowest mode: suspension is
	// all that is left.
	victim.Info.Mode = 1
	acts = p.Decide([]Health{victim, other})
	if len(acts) != 1 || acts[0].Kind != ActSuspend || acts[0].Component != "x" {
		t.Fatalf("actions = %v, want suspend of x at lowest mode", acts)
	}
	p.Decide([]Health{victim, other}) // settle
	victim.Info.State = core.Suspended
	healthy := []Health{victim, {Info: other.Info}}
	acts = p.Decide(healthy)
	if len(acts) != 1 || acts[0].Kind != ActResume || acts[0].Component != "x" {
		t.Fatalf("actions = %v, want resume of x first", acts)
	}
	victim.Info.State = core.Active
	healthy = []Health{victim, {Info: other.Info}}
	acts = p.Decide(healthy)
	if len(acts) != 1 || acts[0].Kind != ActPromote || acts[0].Component != "x" {
		t.Fatalf("actions = %v, want promote of x second", acts)
	}
}

// TestDecideWalksAllLaddersBeforeSuspending pins the cross-victim
// preference: while ANY active component still has a cheaper declared
// mode, shedding downgrades (the least important such component) rather
// than suspending the overall least-important one.
func TestDecideWalksAllLaddersBeforeSuspending(t *testing.T) {
	modes := []core.ModeInfo{{Name: "full"}, {Name: "eco"}}
	plain := Health{Info: core.Info{
		Name: "plain", Importance: 1, CPUUsage: 0.4, State: core.Active,
	}, MissesDelta: 3}
	laddered := Health{Info: core.Info{
		Name: "laddered", Importance: 5, CPUUsage: 0.4, State: core.Active, Modes: modes,
	}}
	p := &ImportanceShedding{HealthyChecks: 1}
	acts := p.Decide([]Health{laddered, plain})
	if len(acts) != 1 || acts[0].Kind != ActDowngrade || acts[0].Component != "laddered" {
		t.Fatalf("actions = %v, want downgrade of laddered before any suspend", acts)
	}
	p.Decide([]Health{laddered, plain}) // settle
	// Every ladder exhausted: now the least-important component falls.
	laddered.Info.Mode = 1
	acts = p.Decide([]Health{laddered, plain})
	if len(acts) != 1 || acts[0].Kind != ActSuspend || acts[0].Component != "plain" {
		t.Fatalf("actions = %v, want suspend of plain once ladders are dry", acts)
	}
}

// modeComp builds a descriptor with one cheaper declared mode.
func modeComp(t *testing.T, name string, usage float64, prio, importance int, ecoUsage float64) *descriptor.Component {
	t.Helper()
	src := fmt.Sprintf(`<component name="%s" type="periodic" cpuusage="%.2f" importance="%d">
	  <implementation bincode="x"/>
	  <periodictask frequence="100" runoncup="0" priority="%d"/>
	  <mode name="eco" frequence="50" cpuusage="%.2f"/>
	</component>`, name, usage, importance, prio, ecoUsage)
	c, err := descriptor.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestManagerDowngradesAndRepromotes runs the mode-aware policy against a
// live system: overload degrades the least-important component instead of
// suspending it (it keeps serving), and recovery releases it back to the
// full contract.
func TestManagerDowngradesAndRepromotes(t *testing.T) {
	k, d := rig(t)
	if err := d.Deploy(comp(t, "vital", 0.50, 1, 3)); err != nil {
		t.Fatal(err)
	}
	if err := d.Deploy(comp(t, "guest", 0.40, 2, 2)); err != nil {
		t.Fatal(err)
	}
	if err := d.Deploy(modeComp(t, "extra", 0.30, 3, 1, 0.05)); err != nil {
		t.Fatal(err)
	}
	m, err := New(d, &ImportanceShedding{HealthyChecks: 5}, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	// 120% load: extra is degraded, not suspended — it keeps serving.
	if err := k.Run(400 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if info, _ := d.Component("extra"); info.State != core.Active || info.ModeName != "eco" {
		t.Fatalf("extra during overload = %v mode %q, want ACTIVE in eco", info.State, info.ModeName)
	}
	for _, a := range m.History() {
		if a.Action.Kind == ActSuspend {
			t.Fatalf("suspended %s despite a cheaper mode", a.Action.Component)
		}
	}
	// The guest leaves; after the healthy window the policy releases the
	// promotion hold and the resolver restores the full contract.
	if err := d.Remove("guest"); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	info, _ := d.Component("extra")
	if info.State != core.Active || info.Mode != 0 {
		t.Fatalf("extra after recovery = %v mode %d, want ACTIVE at full contract", info.State, info.Mode)
	}
	var promotes int
	for _, a := range m.History() {
		if a.Action.Kind == ActPromote && a.Err == nil {
			promotes++
		}
	}
	if promotes != 1 {
		t.Fatalf("promotes = %d, want 1 (history %v)", promotes, m.History())
	}
}

// recorder captures snapshots without acting, for inspecting Health.
type recorder struct{ last []Health }

func (r *recorder) Name() string               { return "recorder" }
func (r *recorder) Decide(s []Health) []Action { r.last = s; return nil }

func TestHealthCarriesKernelCounters(t *testing.T) {
	k, d := rig(t)
	if err := d.Deploy(comp(t, "busy", 0.10, 1, 5)); err != nil {
		t.Fatal(err)
	}
	rec := &recorder{}
	m, err := New(d, rec, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Run(50 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	m.CheckNow()
	if len(rec.last) != 1 {
		t.Fatalf("snapshot has %d entries, want 1", len(rec.last))
	}
	h := rec.last[0]
	// 100 Hz at 10% budget: ~50 ms of run time is ~5 ms consumed.
	if h.Consumed <= 0 {
		t.Errorf("Consumed = %v, want > 0", h.Consumed)
	}
	if h.ConsumedDelta != h.Consumed {
		t.Errorf("first check ConsumedDelta = %v, want full Consumed %v", h.ConsumedDelta, h.Consumed)
	}
	if err := k.Run(20 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	m.CheckNow()
	h2 := rec.last[0]
	if h2.Consumed <= h.Consumed {
		t.Errorf("Consumed did not advance: %v -> %v", h.Consumed, h2.Consumed)
	}
	if h2.ConsumedDelta != h2.Consumed-h.Consumed {
		t.Errorf("ConsumedDelta = %v, want %v", h2.ConsumedDelta, h2.Consumed-h.Consumed)
	}
	if h2.Misses != 0 || h2.Skips != 0 {
		t.Errorf("healthy task shows misses=%d skips=%d", h2.Misses, h2.Skips)
	}
}
