// Package adapt implements adaptation managers — the external controllers
// the paper's §2.4 anticipates: "General or application specific
// adaptation managers can monitor the tasks status and adjust the
// parameter or even change the application structure according to
// current available resources and system requirements."
//
// A Manager periodically samples every component's health through the
// management services the DRCR publishes, feeds the snapshot to a
// pluggable Policy, and applies the returned actions (suspend, resume,
// set-property, disable) through the DRCR — never through component
// back-doors, so the global view stays accurate.
package adapt

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/hrc"
	"repro/internal/sim"
)

// Health is one component's snapshot at a check.
type Health struct {
	Info core.Info
	// Status is the HRC status snapshot; zero for non-active components.
	Status hrc.Status
	// MissesDelta is the number of deadline misses since the previous
	// check.
	MissesDelta uint64
	// SkipsDelta is the number of skipped releases since the previous
	// check.
	SkipsDelta uint64
	// Misses, Skips and Consumed are the live kernel task counters —
	// fresher than the HRC status snapshot, which refreshes only once per
	// job (up to one period stale). Zero for components with no task.
	Misses   uint64
	Skips    uint64
	Consumed time.Duration
	// ConsumedDelta is the CPU time the component's task consumed since
	// the previous check (zero right after the task is recreated).
	ConsumedDelta time.Duration
}

// ActionKind enumerates what a policy may ask for.
type ActionKind int

// Action kinds.
const (
	ActSuspend ActionKind = iota + 1
	ActResume
	ActSetProperty
	ActDisable
	// ActDowngrade steps the component down one declared service mode; it
	// keeps serving under the cheaper contract instead of stopping.
	ActDowngrade
	// ActPromote lifts the promotion hold a previous downgrade left, so
	// the resolver may step the component back toward its full contract.
	ActPromote
)

func (k ActionKind) String() string {
	switch k {
	case ActSuspend:
		return "suspend"
	case ActResume:
		return "resume"
	case ActSetProperty:
		return "set-property"
	case ActDisable:
		return "disable"
	case ActDowngrade:
		return "downgrade"
	case ActPromote:
		return "promote"
	default:
		return fmt.Sprintf("ActionKind(%d)", int(k))
	}
}

// Action is one adaptation step.
type Action struct {
	Kind      ActionKind
	Component string
	Key       string // for ActSetProperty
	Value     string // for ActSetProperty
	Reason    string
}

// Applied records an executed (or failed) action.
type Applied struct {
	At     sim.Time
	Action Action
	Err    error
}

// Policy decides what to do given the current health snapshot. The
// manager guarantees the snapshot is ordered by component name.
type Policy interface {
	Name() string
	Decide(snapshot []Health) []Action
}

// Manager drives a Policy on a fixed simulated-time cadence.
type Manager struct {
	drcr     *core.DRCR
	policy   Policy
	interval time.Duration

	lastMisses   map[string]uint64
	lastSkips    map[string]uint64
	lastConsumed map[string]time.Duration
	// grace suppresses miss/skip deltas for a component's next N checks
	// after a resume: the HRC status snapshot is refreshed only when the
	// task runs, so the first post-resume publication reveals stale
	// pre-suspension misses that must not be read as fresh overload.
	grace   map[string]int
	history []Applied
	tick    *sim.Event
	running bool
}

// New builds a manager; interval must be positive.
func New(d *core.DRCR, p Policy, interval time.Duration) (*Manager, error) {
	if d == nil || p == nil {
		return nil, errors.New("adapt: manager needs a DRCR and a policy")
	}
	if interval <= 0 {
		return nil, errors.New("adapt: interval must be positive")
	}
	return &Manager{
		drcr:         d,
		policy:       p,
		interval:     interval,
		lastMisses:   map[string]uint64{},
		lastSkips:    map[string]uint64{},
		lastConsumed: map[string]time.Duration{},
		grace:        map[string]int{},
	}, nil
}

// Start schedules periodic checks on the simulated clock.
func (m *Manager) Start() error {
	if m.running {
		return nil
	}
	m.running = true
	return m.schedule()
}

// Stop cancels future checks.
func (m *Manager) Stop() {
	m.running = false
	if m.tick != nil {
		m.tick.Cancel()
		m.tick = nil
	}
}

// History returns the applied-action log.
func (m *Manager) History() []Applied {
	out := make([]Applied, len(m.history))
	copy(out, m.history)
	return out
}

func (m *Manager) schedule() error {
	clock := m.drcr.Kernel().Clock()
	ev, err := clock.After(m.interval, "adapt:"+m.policy.Name(), func(sim.Time) {
		m.tick = nil
		if !m.running {
			return
		}
		m.CheckNow()
		if m.running {
			if err := m.schedule(); err != nil {
				// Virtual-time scheduling only fails on misuse; record it.
				m.history = append(m.history, Applied{
					At:  clock.Now(),
					Err: err,
				})
			}
		}
	})
	if err != nil {
		return err
	}
	m.tick = ev
	return nil
}

// CheckNow runs one evaluation cycle immediately and returns what was
// applied.
func (m *Manager) CheckNow() []Applied {
	snapshot := m.snapshot()
	actions := m.policy.Decide(snapshot)
	now := m.drcr.Kernel().Now()
	var applied []Applied
	for _, a := range actions {
		err := m.apply(a)
		rec := Applied{At: now, Action: a, Err: err}
		m.history = append(m.history, rec)
		applied = append(applied, rec)
	}
	return applied
}

func (m *Manager) snapshot() []Health {
	infos := m.drcr.Components()
	out := make([]Health, 0, len(infos))
	for _, info := range infos {
		h := Health{Info: info}
		if mgmt, ok := m.drcr.Management(info.Name); ok {
			h.Status = mgmt.Status()
		}
		if task, ok := m.drcr.Kernel().Task(info.Name); ok {
			met := task.Metrics()
			h.Misses, h.Skips, h.Consumed = met.Misses, met.Skips, met.Consumed
			// A re-admitted component starts a fresh task; counters behind
			// the baseline mean recreation, so restart the window.
			if last := m.lastConsumed[info.Name]; met.Consumed >= last {
				h.ConsumedDelta = met.Consumed - last
			}
			m.lastConsumed[info.Name] = met.Consumed
		}
		misses, skips := h.Status.Misses, h.Status.Skips
		h.MissesDelta = misses - m.lastMisses[info.Name]
		h.SkipsDelta = skips - m.lastSkips[info.Name]
		m.lastMisses[info.Name] = misses
		m.lastSkips[info.Name] = skips
		if m.grace[info.Name] > 0 {
			m.grace[info.Name]--
			h.MissesDelta, h.SkipsDelta = 0, 0
		}
		out = append(out, h)
	}
	return out
}

func (m *Manager) apply(a Action) error {
	switch a.Kind {
	case ActSuspend:
		return m.drcr.Suspend(a.Component)
	case ActResume:
		if err := m.drcr.Resume(a.Component); err != nil {
			return err
		}
		m.grace[a.Component] = 2
		return nil
	case ActDisable:
		return m.drcr.Disable(a.Component)
	case ActDowngrade:
		reason := a.Reason
		if reason == "" {
			reason = "adaptation policy"
		}
		if err := m.drcr.Downgrade(a.Component, reason); err != nil {
			return err
		}
		// The mode swap recreates the instance, so the next status snapshot
		// restarts its counters — same stale-delta hazard as a resume.
		m.grace[a.Component] = 2
		return nil
	case ActPromote:
		if err := m.drcr.AllowPromotion(a.Component); err != nil {
			return err
		}
		m.grace[a.Component] = 2
		return nil
	case ActSetProperty:
		mgmt, ok := m.drcr.Management(a.Component)
		if !ok {
			return fmt.Errorf("adapt: no management service for %s", a.Component)
		}
		return mgmt.SetProperty(a.Key, a.Value)
	default:
		return fmt.Errorf("adapt: unknown action %v", a.Kind)
	}
}

// ImportanceShedding is the built-in overload policy: when any component
// misses deadlines, shed load starting from the least important active
// component. Downgrades come before suspensions: as long as any victim
// still has a cheaper declared mode, the least important such victim is
// stepped down its ladder (it keeps serving under the degraded
// contract); only when every ladder is exhausted is the least-important
// component suspended outright (its budget stays admitted but its task
// stops consuming CPU). When the system has been healthy for
// HealthyChecks consecutive checks, the most recent victim is restored:
// resumed if it was suspended, released for re-promotion if it was
// downgraded.
type ImportanceShedding struct {
	// MissThreshold is the per-check miss count that counts as overload
	// (default 1).
	MissThreshold uint64
	// HealthyChecks is how many clean checks must pass before resuming a
	// victim (default 3).
	HealthyChecks int

	shed    []shedEntry // stack of victims, least important first
	healthy int
	settle  int // checks to skip after a shed, letting its effect land
}

// shedEntry remembers how one victim was shed, so recovery can undo it
// with the matching action.
type shedEntry struct {
	name       string
	downgraded bool
}

// Name implements Policy.
func (p *ImportanceShedding) Name() string { return "importance-shedding" }

// Decide implements Policy.
func (p *ImportanceShedding) Decide(snapshot []Health) []Action {
	missThreshold := p.MissThreshold
	if missThreshold == 0 {
		missThreshold = 1
	}
	healthyChecks := p.HealthyChecks
	if healthyChecks <= 0 {
		healthyChecks = 3
	}
	// Drop shed entries whose component no longer exists (bundle gone).
	live := map[string]bool{}
	for _, h := range snapshot {
		live[h.Info.Name] = true
	}
	kept := p.shed[:0]
	for _, e := range p.shed {
		if live[e.name] {
			kept = append(kept, e)
		}
	}
	p.shed = kept
	// After a shed, skip one evaluation: suspension lands asynchronously
	// and backlogged jobs still complete late, so the very next check
	// would misread trailing misses as continued overload.
	if p.settle > 0 {
		p.settle--
		return nil
	}
	overloaded := false
	for _, h := range snapshot {
		// Only active components count: a just-suspended victim keeps
		// reporting trailing misses until its (asynchronous) suspend
		// command is served, and those must not trigger another shed.
		if h.Info.State != core.Active {
			continue
		}
		if h.MissesDelta >= missThreshold || h.SkipsDelta >= missThreshold {
			overloaded = true
			break
		}
	}
	if overloaded {
		p.healthy = 0
		// Prefer downgrade over suspension: a victim with a cheaper
		// declared mode keeps serving while still freeing capacity, so
		// every ladder is walked down before anything is stopped.
		if victim := pickVictim(snapshot, downgradable); victim.Name != "" {
			p.settle = 1
			p.shed = append(p.shed, shedEntry{name: victim.Name, downgraded: true})
			return []Action{{
				Kind:      ActDowngrade,
				Component: victim.Name,
				Reason:    "overload: degrading least-important component",
			}}
		}
		victim := pickVictim(snapshot, nil)
		if victim.Name == "" {
			return nil
		}
		p.settle = 1
		p.shed = append(p.shed, shedEntry{name: victim.Name})
		return []Action{{
			Kind:      ActSuspend,
			Component: victim.Name,
			Reason:    "overload: shedding least-important component",
		}}
	}
	p.healthy++
	if p.healthy >= healthyChecks && len(p.shed) > 0 {
		p.healthy = 0
		// Restore the most important victim first (top of the importance
		// order, end of the shed stack by construction below).
		victim := p.shed[len(p.shed)-1]
		p.shed = p.shed[:len(p.shed)-1]
		if victim.downgraded {
			return []Action{{
				Kind:      ActPromote,
				Component: victim.name,
				Reason:    "system healthy: releasing degraded component for promotion",
			}}
		}
		return []Action{{
			Kind:      ActResume,
			Component: victim.name,
			Reason:    "system healthy: restoring shed component",
		}}
	}
	return nil
}

// downgradable reports whether a component has a cheaper declared mode
// left below its current one.
func downgradable(info core.Info) bool { return info.Mode+1 < len(info.Modes) }

// pickVictim returns the least-important active component accepted by
// the filter (nil accepts all), breaking ties by higher declared budget
// (shedding frees more CPU) then by name.
func pickVictim(snapshot []Health, filter func(core.Info) bool) core.Info {
	var cands []core.Info
	for _, h := range snapshot {
		if h.Info.State == core.Active && (filter == nil || filter(h.Info)) {
			cands = append(cands, h.Info)
		}
	}
	if len(cands) == 0 {
		return core.Info{}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Importance != cands[j].Importance {
			return cands[i].Importance < cands[j].Importance
		}
		if cands[i].CPUUsage != cands[j].CPUUsage {
			return cands[i].CPUUsage > cands[j].CPUUsage
		}
		return cands[i].Name < cands[j].Name
	})
	return cands[0]
}

// Interface-compliance check.
var _ Policy = (*ImportanceShedding)(nil)
