package net

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/sim"
)

func ms(n int64) sim.Time { return sim.Time(n * int64(time.Millisecond)) }

// drive advances the network over a barrier grid, returning everything
// it produced in order.
func drive(n *Network, step time.Duration, until sim.Time) (del, drop []Message, topo []TopoEvent) {
	for t := sim.Time(0); t <= until; t = t.Add(sim.Duration(step)) {
		d, dr, tp := n.Advance(t)
		del = append(del, d...)
		drop = append(drop, dr...)
		topo = append(topo, tp...)
	}
	return del, drop, topo
}

func TestDeliveryOrderAndLatencyBound(t *testing.T) {
	n := New(Config{Nodes: 3, Seed: 7, Latency: 500 * time.Microsecond, Jitter: 200 * time.Microsecond})
	for i := 0; i < 20; i++ {
		n.Send(ms(1), Message{Src: i % 2, Dst: 2, Kind: Data, Topic: fmt.Sprintf("t%d", i)})
	}
	del, _, _ := drive(n, 500*time.Microsecond, ms(5))
	if len(del) != 20 {
		t.Fatalf("delivered %d of 20", len(del))
	}
	look := sim.Duration(n.Lookahead())
	var prev Message
	for i, m := range del {
		if m.DeliverAt.Sub(m.SentAt) < look {
			t.Errorf("msg %d delivered after %v < lookahead %v", i, m.DeliverAt.Sub(m.SentAt), look)
		}
		if i > 0 {
			if m.DeliverAt < prev.DeliverAt {
				t.Errorf("msg %d out of time order", i)
			}
			if m.DeliverAt == prev.DeliverAt && (m.Src < prev.Src || (m.Src == prev.Src && m.Seq < prev.Seq)) {
				t.Errorf("msg %d breaks (src,seq) tiebreak", i)
			}
		}
		prev = m
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() string {
		n := New(Config{Nodes: 4, Seed: 42, DropProb: 0.2, DupProb: 0.1})
		for i := 0; i < 50; i++ {
			n.Send(ms(int64(1+i/10)), Message{Src: i % 4, Dst: (i + 1) % 4, Kind: Heartbeat, Topic: fmt.Sprint(i)})
		}
		del, drop, _ := drive(n, 500*time.Microsecond, ms(20))
		s := ""
		for _, m := range del {
			s += fmt.Sprintf("D%d:%d:%s:%d;", m.Src, m.Dst, m.Topic, m.DeliverAt)
		}
		for _, m := range drop {
			s += fmt.Sprintf("X%d:%d:%s;", m.Src, m.Dst, m.Topic)
		}
		return s
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("two identical runs diverged:\n%s\n%s", a, b)
	}
}

func TestDeterminismUnderEnqueueInterleaving(t *testing.T) {
	// The same logical sends handed to Send in a different physical order
	// (as parallel node windows would) must yield identical outcomes,
	// because ingest sorts by (SentAt, Src, Seq) and each link has its own
	// RNG. Per-source order is preserved (it is the Seq assignment order).
	type send struct {
		at sim.Time
		m  Message
	}
	var sends []send
	for i := 0; i < 30; i++ {
		sends = append(sends, send{ms(1), Message{Src: i % 3, Dst: (i + 1) % 3, Kind: Data, Topic: fmt.Sprint(i)}})
	}
	run := func(order []int) string {
		n := New(Config{Nodes: 3, Seed: 9, DropProb: 0.3, Jitter: 300 * time.Microsecond})
		for _, i := range order {
			n.Send(sends[i].at, sends[i].m)
		}
		del, drop, _ := drive(n, 500*time.Microsecond, ms(10))
		s := ""
		for _, m := range del {
			s += fmt.Sprintf("D%s@%d;", m.Topic, m.DeliverAt)
		}
		for _, m := range drop {
			s += fmt.Sprintf("X%s;", m.Topic)
		}
		return s
	}
	natural := make([]int, len(sends))
	for i := range natural {
		natural[i] = i
	}
	// Interleave sources differently while preserving per-source order:
	// all of src 0's sends, then src 1's, then src 2's.
	var grouped []int
	for src := 0; src < 3; src++ {
		for i := range sends {
			if sends[i].m.Src == src {
				grouped = append(grouped, i)
			}
		}
	}
	if a, b := run(natural), run(grouped); a != b {
		t.Fatalf("enqueue interleaving changed outcomes:\n%s\n%s", a, b)
	}
}

func TestPartitionDropsAndHeals(t *testing.T) {
	n := New(Config{Nodes: 4, Seed: 3})
	n.SchedulePartition(ms(2), 4*time.Millisecond, 0, 1)

	// In flight across the cut when it lands: dropped.
	n.Send(ms(1), Message{Src: 0, Dst: 2, Kind: Data, Topic: "cut"})
	d, dr, tp := n.Advance(ms(1))
	if len(d) != 0 || len(dr) != 0 || len(tp) != 0 {
		t.Fatalf("premature activity: %d/%d/%d", len(d), len(dr), len(tp))
	}
	d, dr, tp = n.Advance(ms(2))
	if len(tp) != 1 || tp[0].Heal || tp[0].Cut != "0,1|2,3" {
		t.Fatalf("partition event wrong: %+v", tp)
	}
	if len(dr) != 1 || dr[0].Topic != "cut" {
		t.Fatalf("in-flight message not cut: %+v", dr)
	}

	// Sends across the cut while partitioned: dropped; within a side: fine.
	n.Send(ms(2), Message{Src: 1, Dst: 3, Kind: Data, Topic: "blocked"})
	n.Send(ms(2), Message{Src: 0, Dst: 1, Kind: Data, Topic: "sameside"})
	n.Send(ms(2), Message{Src: 2, Dst: 3, Kind: Data, Topic: "otherside"})
	del, drop, _ := drive(n, time.Millisecond, ms(5))
	if len(drop) != 1 || drop[0].Topic != "blocked" {
		t.Fatalf("cross-cut send not dropped: %+v", drop)
	}
	if len(del) != 2 {
		t.Fatalf("intra-side sends lost: %+v", del)
	}
	if !n.Partitioned(0, 2) || n.Partitioned(0, 1) {
		t.Fatal("cut matrix wrong while partitioned")
	}

	// After the heal, the link carries traffic again.
	_, _, tp = n.Advance(ms(6))
	if len(tp) != 1 || !tp[0].Heal {
		t.Fatalf("heal event missing: %+v", tp)
	}
	n.Send(ms(6), Message{Src: 0, Dst: 3, Kind: Data, Topic: "healed"})
	del, drop, _ = drive(n, time.Millisecond, ms(9))
	if len(del) != 1 || del[0].Topic != "healed" || len(drop) != 0 {
		t.Fatalf("post-heal delivery failed: %+v / %+v", del, drop)
	}
}

func TestConservationLedger(t *testing.T) {
	n := New(Config{Nodes: 4, Seed: 11, DropProb: 0.25, DupProb: 0.15})
	n.SchedulePartition(ms(5), 5*time.Millisecond, 0)
	var delivered, dropped uint64
	for step := int64(0); step <= 40; step++ {
		now := sim.Time(step * int64(500*time.Microsecond))
		if step%2 == 0 {
			src := int(step) % 4
			n.Send(now, Message{Src: src, Dst: (src + 1) % 4, Kind: Report, Topic: "r"})
			n.Send(now, Message{Src: src, Dst: (src + 2) % 4, Kind: Data, Topic: "d"})
		}
		del, dr, _ := n.Advance(now)
		delivered += uint64(len(del))
		dropped += uint64(len(dr))
		s := n.Stats()
		if s.Sent+s.Duplicated != s.Delivered+s.Dropped+uint64(s.Inflight) {
			t.Fatalf("ledger broken at %v: %+v", now, s)
		}
		if s.Delivered != delivered || s.Dropped != dropped {
			t.Fatalf("ledger disagrees with returns at %v: %+v vs %d/%d", now, s, delivered, dropped)
		}
		if s.Dropped != s.PartitionDrops+s.LossDrops {
			t.Fatalf("drop split broken: %+v", s)
		}
	}
	if delivered == 0 || dropped == 0 {
		t.Fatalf("campaign too tame: delivered=%d dropped=%d", delivered, dropped)
	}
}

func TestSelfAndOutOfRangeSendsIgnored(t *testing.T) {
	n := New(Config{Nodes: 2, Seed: 1})
	n.Send(0, Message{Src: 0, Dst: 0, Kind: Data})
	n.Send(0, Message{Src: -1, Dst: 1, Kind: Data})
	n.Send(0, Message{Src: 0, Dst: 5, Kind: Data})
	if s := n.Stats(); s.Sent != 0 {
		t.Fatalf("invalid sends counted: %+v", s)
	}
}

func TestOverlappingPartitions(t *testing.T) {
	// Two overlapping cuts isolating node 0; the link stays down until the
	// *last* one heals.
	n := New(Config{Nodes: 3, Seed: 5})
	n.SchedulePartition(ms(1), 2*time.Millisecond, 0)
	n.SchedulePartition(ms(2), 3*time.Millisecond, 0)
	n.Advance(ms(2))
	if !n.Partitioned(0, 1) {
		t.Fatal("not cut during overlap")
	}
	n.Advance(ms(3)) // first heals; second still active
	if !n.Partitioned(0, 1) {
		t.Fatal("healed too early")
	}
	n.Advance(ms(5))
	if n.Partitioned(0, 1) {
		t.Fatal("still cut after both healed")
	}
}
