// Package net is a seeded, deterministic simulated network for
// federating DRCR nodes (package cluster): per-directed-link latency
// distributions, probabilistic drop and duplication, and scheduled
// partition/heal cycles, all advanced on the cluster's barrier grid in
// virtual time — the same discipline as the fault injector (package
// fault) applies to a single node.
//
// Determinism rests on three rules, mirroring the sharded kernel's
// cross-shard exchange:
//
//   - Sends enqueue per source node and are ingested only at barriers,
//     sorted by (SentAt, Src, Seq); the per-source Seq is assigned in the
//     source's own deterministic execution order, so the global ingest
//     order is independent of how the physical sends interleaved.
//   - Every latency/drop/duplication draw comes from the RNG of the
//     message's directed link, in ingest order — one deterministic stream
//     per (src,dst) pair, untouched by traffic on other links.
//   - Deliveries pop in (DeliverAt, Src, Seq) order, and the minimum
//     link latency is the cluster's conservative lookahead bound: a
//     message sent inside a window can never be due before the window's
//     closing barrier, so no node ever needs to roll back.
//
// The ledger invariant sent + duplicated == delivered + dropped +
// inflight holds at every barrier; Stats exposes it.
package net

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/sim"
)

// Config parameterises a Network.
type Config struct {
	// Nodes is the node count (required, ≥ 1).
	Nodes int
	// Seed feeds every link RNG (default 1).
	Seed uint64
	// Latency is the minimum one-way link latency — also the cluster's
	// conservative lookahead bound (default 500µs, must be > 0 after
	// defaulting).
	Latency time.Duration
	// Jitter is the width of the uniform extra latency [0, Jitter)
	// added per message (default 100µs; 0 disables).
	Jitter time.Duration
	// DropProb is the per-message loss probability on a healthy link.
	DropProb float64
	// DupProb is the per-message duplication probability; a duplicate
	// takes an independent latency draw.
	DupProb float64
}

func (c *Config) applyDefaults() {
	if c.Nodes <= 0 {
		c.Nodes = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Latency <= 0 {
		c.Latency = 500 * time.Microsecond
	}
	if c.Jitter < 0 {
		c.Jitter = 100 * time.Microsecond
	}
	if c.DropProb < 0 {
		c.DropProb = 0
	}
	if c.DupProb < 0 {
		c.DupProb = 0
	}
}

// Kind classifies a message for the receiving dispatcher.
type Kind uint8

// Message kinds the federation layer exchanges.
const (
	// Heartbeat feeds the failure detectors.
	Heartbeat Kind = iota + 1
	// Report carries a node's load/degradation summary to its leader.
	Report
	// Provision announces (or, with Note "off", withdraws) a remote
	// port provision.
	Provision
	// Data replicates port payload bytes to a topic's SHM replica.
	Data
	// Trigger requests one aperiodic release on the destination kernel.
	Trigger
	// Control carries a leader command: revoke, restore, migrate-add,
	// migrate-rm (Note selects the verb).
	Control
)

func (k Kind) String() string {
	switch k {
	case Heartbeat:
		return "hb"
	case Report:
		return "report"
	case Provision:
		return "provision"
	case Data:
		return "data"
	case Trigger:
		return "trigger"
	case Control:
		return "control"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Message is one unit in flight between nodes.
type Message struct {
	Src, Dst int
	Kind     Kind
	// Topic names the subject: a port topic, component, or task name.
	Topic string
	// Note carries the verb or detail ("off", "revoke", "migrate-add"...).
	Note string
	// Payload is port data for Data messages, report numbers otherwise.
	Payload []int64
	// SentAt / DeliverAt are assigned at enqueue / ingest.
	SentAt    sim.Time
	DeliverAt sim.Time
	// Seq is the per-source sequence number, the deterministic tiebreak.
	Seq uint64
	// Cause carries the sender's span ID so the receiver can chain its
	// Recv span to the Send (opaque to the network).
	Cause uint64
}

// TopoEvent is one partition opening or healing, returned by Advance so
// the federation layer can trace it.
type TopoEvent struct {
	At   sim.Time
	Heal bool
	// Cut renders the side membership, e.g. "0,1|2,3".
	Cut string
	// Index identifies the partition schedule entry (heal events carry
	// the index of the partition they close).
	Index int
}

// partition is one scheduled cut: links between Side and its complement
// are severed during [At, At+For).
type partition struct {
	at, until sim.Time
	side      []int
	cut       string
	applied   bool
	healed    bool
}

// Stats is the conservation ledger.
type Stats struct {
	Sent       uint64
	Duplicated uint64
	Delivered  uint64
	Dropped    uint64
	// PartitionDrops / LossDrops split Dropped by cause.
	PartitionDrops uint64
	LossDrops      uint64
	Inflight       int
}

// Network is the simulated fabric.
type Network struct {
	cfg Config

	mu      sync.Mutex
	pending [][]Message // per-src enqueue queues (thread-safe side)
	seq     []uint64

	rng      []*sim.Rand // per directed link, index src*Nodes+dst
	inflight []Message   // sorted by (DeliverAt, Src, Seq)
	parts    []partition
	cutCount [][]int // active partitions separating each pair

	stats Stats
}

// New builds a network.
func New(cfg Config) *Network {
	cfg.applyDefaults()
	n := &Network{cfg: cfg}
	n.pending = make([][]Message, cfg.Nodes)
	n.seq = make([]uint64, cfg.Nodes)
	root := sim.NewRand(cfg.Seed)
	n.rng = make([]*sim.Rand, cfg.Nodes*cfg.Nodes)
	for i := range n.rng {
		n.rng[i] = root.Fork()
	}
	n.cutCount = make([][]int, cfg.Nodes)
	for i := range n.cutCount {
		n.cutCount[i] = make([]int, cfg.Nodes)
	}
	return n
}

// Nodes returns the node count.
func (n *Network) Nodes() int { return n.cfg.Nodes }

// Lookahead is the conservative window bound: the minimum one-way
// latency. A cluster advancing its nodes in windows of at most this
// width never needs to roll a node back for a late message.
func (n *Network) Lookahead() time.Duration { return n.cfg.Latency }

// SchedulePartition cuts every link between side and its complement
// during [at, at+dur). Scheduling is idempotent bookkeeping only; the
// cut applies when Advance crosses at. Returns the partition index.
func (n *Network) SchedulePartition(at sim.Time, dur time.Duration, side ...int) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	member := make([]bool, n.cfg.Nodes)
	var in, out []string
	sorted := append([]int(nil), side...)
	sort.Ints(sorted)
	for _, s := range sorted {
		if s >= 0 && s < n.cfg.Nodes {
			member[s] = true
			in = append(in, fmt.Sprint(s))
		}
	}
	for i := 0; i < n.cfg.Nodes; i++ {
		if !member[i] {
			out = append(out, fmt.Sprint(i))
		}
	}
	p := partition{
		at:    at,
		until: at.Add(sim.Duration(dur)),
		side:  sorted,
		cut:   strings.Join(in, ",") + "|" + strings.Join(out, ","),
	}
	n.parts = append(n.parts, p)
	return len(n.parts) - 1
}

// Partitioned reports whether the link a→b is currently cut.
func (n *Network) Partitioned(a, b int) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.cutCount[a][b] > 0
}

// Send enqueues a message; Src, Dst, Kind and payload fields must be
// set by the caller, SentAt is stamped here from the supplied time.
// Safe from any goroutine (a task body running inside a node window may
// send), like Kernel.TriggerAsync.
func (n *Network) Send(at sim.Time, m Message) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if m.Src < 0 || m.Src >= n.cfg.Nodes || m.Dst < 0 || m.Dst >= n.cfg.Nodes || m.Src == m.Dst {
		return
	}
	m.SentAt = at
	m.Seq = n.seq[m.Src]
	n.seq[m.Src]++
	n.stats.Sent++
	n.pending[m.Src] = append(n.pending[m.Src], m)
}

// Advance moves the fabric to the barrier instant now: applies topology
// events due, ingests every pending send (sorted, sampled against its
// link), and returns the deliveries due at or before now in canonical
// order plus the topology events that fired. dropped lists messages the
// network lost this barrier (after sampling), so callers can account
// lost intents (e.g. Kernel.NoteDroppedTrigger).
func (n *Network) Advance(now sim.Time) (deliveries, dropped []Message, topo []TopoEvent) {
	n.mu.Lock()
	defer n.mu.Unlock()

	topo = n.advanceTopoLocked(now, &dropped)

	// Ingest sends in canonical order.
	var batch []Message
	for src := range n.pending {
		batch = append(batch, n.pending[src]...)
		n.pending[src] = n.pending[src][:0]
	}
	sort.Slice(batch, func(i, j int) bool {
		if batch[i].SentAt != batch[j].SentAt {
			return batch[i].SentAt < batch[j].SentAt
		}
		if batch[i].Src != batch[j].Src {
			return batch[i].Src < batch[j].Src
		}
		return batch[i].Seq < batch[j].Seq
	})
	for _, m := range batch {
		n.ingestLocked(now, m, &dropped, false)
	}

	// Pop deliveries due.
	cut := 0
	for cut < len(n.inflight) && n.inflight[cut].DeliverAt <= now {
		cut++
	}
	if cut > 0 {
		deliveries = append(deliveries, n.inflight[:cut]...)
		n.inflight = n.inflight[:copy(n.inflight, n.inflight[cut:])]
		n.stats.Delivered += uint64(len(deliveries))
	}
	n.stats.Inflight = len(n.inflight)
	return deliveries, dropped, topo
}

// advanceTopoLocked applies partition starts and heals due at or before
// now, in schedule order with starts before heals at equal instants
// (a zero-length partition still cuts the messages in flight across it).
func (n *Network) advanceTopoLocked(now sim.Time, dropped *[]Message) []TopoEvent {
	var evs []TopoEvent
	for i := range n.parts {
		p := &n.parts[i]
		if !p.applied && p.at <= now {
			p.applied = true
			n.adjustCutLocked(p.side, +1)
			n.dropCutInflightLocked(dropped)
			evs = append(evs, TopoEvent{At: p.at, Cut: p.cut, Index: i})
		}
	}
	for i := range n.parts {
		p := &n.parts[i]
		if p.applied && !p.healed && p.until <= now {
			p.healed = true
			n.adjustCutLocked(p.side, -1)
			evs = append(evs, TopoEvent{At: p.until, Heal: true, Cut: p.cut, Index: i})
		}
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	return evs
}

func (n *Network) adjustCutLocked(side []int, delta int) {
	member := make([]bool, n.cfg.Nodes)
	for _, s := range side {
		member[s] = true
	}
	for a := 0; a < n.cfg.Nodes; a++ {
		for b := 0; b < n.cfg.Nodes; b++ {
			if a != b && member[a] != member[b] {
				n.cutCount[a][b] += delta
			}
		}
	}
}

// dropCutInflightLocked discards in-flight messages whose link a freshly
// applied partition just severed — a cable cut takes the packets on the
// wire with it.
func (n *Network) dropCutInflightLocked(dropped *[]Message) {
	kept := n.inflight[:0]
	for _, m := range n.inflight {
		if n.cutCount[m.Src][m.Dst] > 0 {
			n.stats.Dropped++
			n.stats.PartitionDrops++
			*dropped = append(*dropped, m)
			continue
		}
		kept = append(kept, m)
	}
	n.inflight = kept
}

// ingestLocked samples one message against its directed link and either
// drops it or schedules its delivery (plus possibly a duplicate).
func (n *Network) ingestLocked(now sim.Time, m Message, dropped *[]Message, isDup bool) {
	if n.cutCount[m.Src][m.Dst] > 0 {
		n.stats.Dropped++
		n.stats.PartitionDrops++
		*dropped = append(*dropped, m)
		return
	}
	rng := n.rng[m.Src*n.cfg.Nodes+m.Dst]
	if n.cfg.DropProb > 0 && rng.Bool(n.cfg.DropProb) {
		n.stats.Dropped++
		n.stats.LossDrops++
		*dropped = append(*dropped, m)
		return
	}
	lat := sim.Duration(n.cfg.Latency)
	if n.cfg.Jitter > 0 {
		lat += sim.Duration(rng.Int63n(int64(n.cfg.Jitter)))
	}
	m.DeliverAt = m.SentAt.Add(lat)
	if m.DeliverAt <= now {
		// A send processed at the barrier that closes its window is due
		// no earlier than the next barrier (conservative bound).
		m.DeliverAt = now + 1
	}
	n.insertInflightLocked(m)
	if !isDup && n.cfg.DupProb > 0 && rng.Bool(n.cfg.DupProb) {
		n.stats.Duplicated++
		n.ingestLocked(now, m, dropped, true)
	}
}

func (n *Network) insertInflightLocked(m Message) {
	i := sort.Search(len(n.inflight), func(i int) bool {
		o := n.inflight[i]
		if o.DeliverAt != m.DeliverAt {
			return o.DeliverAt > m.DeliverAt
		}
		if o.Src != m.Src {
			return o.Src > m.Src
		}
		return o.Seq > m.Seq
	})
	n.inflight = append(n.inflight, Message{})
	copy(n.inflight[i+1:], n.inflight[i:])
	n.inflight[i] = m
}

// Stats returns the conservation ledger. At any barrier,
// Sent + Duplicated == Delivered + Dropped + Inflight + pending sends
// not yet ingested (zero at a barrier by construction).
func (n *Network) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	s := n.stats
	s.Inflight = len(n.inflight)
	for _, q := range n.pending {
		s.Inflight += len(q)
	}
	return s
}
