// Package plan compiles a bundle's parsed component descriptors — plus
// a snapshot of the DRCR's current admitted view — into a pre-validated
// composition plan: typed, versioned port contracts checked at compile
// time, a flat wiring table (provider→consumer edges resolved per mode
// ladder), a topologically ordered activation schedule that reproduces
// the worklist engine's cursor order exactly, and precomputed admission
// deltas (per-CPU budget sums).
//
// A plan is the unit the runtime fast-applies (core.ApplyPlan installs,
// wires and activates the whole DAG in one pass) and the unit the
// cluster ships between nodes for migration and evacuation. The plan
// path is a pure fast path, never a semantic fork: everything a plan
// asserts is revalidated against the live runtime before it is applied,
// and any mismatch falls back to the per-descriptor event path. The
// differential tests pin byte-identical event logs and observability
// digests between the two paths.
//
// Compilation rejects impossible compositions early — reject-at-compile
// beats deny-at-runtime. A rejection is raised only for a *typed*
// conflict: some provider speaks the consumer's topic at a compatible
// size but every such candidate fails the version-range or structural
// datatype check, so the inport can never bind while those are the only
// speakers. A merely absent provider is not an error (the component
// waits, exactly like declarative services), and untyped size mismatches
// keep their legacy wait semantics.
package plan

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/descriptor"
	"repro/internal/policy"
	"repro/internal/rtos/ipc"
)

// admitEps mirrors the float tolerance of policy.Utilization.
const admitEps = 1e-9

// Env snapshots the runtime state a plan is compiled against.
type Env struct {
	// NumCPUs is the kernel's simulated CPU count.
	NumCPUs int
	// Bound is the internal resolver's utilization bound (1.0 default).
	Bound float64
	// View is the current admitted view: name-sorted contracts plus the
	// per-CPU declared-budget accumulators.
	View policy.View
	// Providers lists every outport admitted outside the bundle — local
	// components and remote provisions — that could satisfy a bundle
	// inport.
	Providers []ExtProvider
}

// ExtProvider is one outport admitted outside the bundle.
type ExtProvider struct {
	Origin string // component name, or component@node for remote entries
	Remote bool
	Port   descriptor.Port
}

// Edge is one row of the flat wiring table: a consumer inport and the
// provider the engines would bind it to (or "" when unbound).
type Edge struct {
	Consumer string
	Inport   string
	Provider string // plan member name or external origin; "" if unbound
	External bool
	// Modes lists the consumer's service modes that require this inport
	// (a mode's drops list exempts it).
	Modes []string
}

// CPUDelta is the admission delta on one CPU for a uniform mode rung.
type CPUDelta struct {
	CPU           int
	Before, After float64
	Delta         float64
}

// Leftover is a plan member that installs but cannot activate (no
// service mode has all its required inports satisfiable).
type Leftover struct {
	Name string
	// Missing is mode 0's first unsatisfied inport once the whole
	// schedule has run — the reason string the engines would leave.
	Missing string
	// CauseIdx is the schedule index of the provider whose activation
	// seeds the component's pending span cause (-1: none).
	CauseIdx int
}

// Plan is a compiled, pre-validated composition plan.
type Plan struct {
	// Key is the descriptor-set digest the plan cache is keyed by.
	Key string
	// Components in install (manifest resource) order.
	Components []*descriptor.Component
	// Schedule is the activation order: exactly the order the worklist
	// engine's cursor admits the members at mode 0.
	Schedule []string
	// CauseIdx has one entry per Schedule entry: the schedule index of
	// the member whose activation span becomes this member's transition
	// cause (-1: no internal cause; the span chain starts fresh).
	CauseIdx []int
	// Leftovers are installed members that stay Unsatisfied.
	Leftovers []Leftover
	// Edges is the wiring table, sorted by consumer then inport.
	Edges []Edge
	// BindRows has one row per Schedule entry: the provider each of the
	// member's inports (by InPorts index) binds to at its activation
	// moment — only earlier-scheduled members and external providers are
	// live then, so a row can differ from the final Edges table. The
	// apply fast path installs these instead of re-querying the provider
	// index per inport; values are bit-identical to findProviderLocked's
	// at the same point in the schedule.
	BindRows [][]string
	// Deltas is the per-CPU admission delta of activating the schedule
	// at mode 0 against the compile-time view.
	Deltas []CPUDelta
	// RungDeltas[r] is the per-CPU budget sum the schedule would claim
	// with every member clamped to mode rung r (members with fewer
	// declared modes stay at their cheapest) — the precomputed admission
	// deltas per mode-ladder rung.
	RungDeltas [][]float64
	// Admissions records the Monte-Carlo verdict of every stochastic
	// schedule step (members with distribution-valued budgets, or
	// constant members joining a CPU that already carries one). Verdicts
	// are byte-identical to the runtime's: both sides call
	// policy.MCVerdict over the same composition. Non-empty Admissions
	// always comes with a Fallback — the event path emits the admit
	// spans the fast path cannot replicate.
	Admissions []AdmitNote
	// ExtFP fingerprints which (member, inport) pairs were satisfiable
	// by providers outside the bundle at compile time. Apply revalidates
	// it against the live indexes; a mismatch forces recompilation.
	ExtFP string
	// Fallback is non-empty when the plan compiled but cannot be
	// fast-applied (degraded-only feasibility, admission denial, ...);
	// the caller uses the per-descriptor event path instead.
	Fallback string
}

// AdmitNote is one compile-time Monte-Carlo admission verdict.
type AdmitNote struct {
	Name    string
	Verdict string
}

// PortIncompatibility is one typed port conflict: the exact port pair
// and why the provider cannot satisfy the consumer.
type PortIncompatibility struct {
	Provider     string // component name or external origin
	ProviderPort string
	Consumer     string
	ConsumerPort string
	Kind         string // "version" or "structure"
	Reason       string
}

func (e *PortIncompatibility) Error() string {
	return fmt.Sprintf("plan: %s.%s cannot satisfy %s.%s: %s (%s mismatch)",
		e.Provider, e.ProviderPort, e.Consumer, e.ConsumerPort, e.Reason, e.Kind)
}

// RejectError aggregates every typed conflict found at compile time.
type RejectError struct {
	Conflicts []*PortIncompatibility
}

func (e *RejectError) Error() string {
	if len(e.Conflicts) == 1 {
		return e.Conflicts[0].Error()
	}
	msgs := make([]string, len(e.Conflicts))
	for i, c := range e.Conflicts {
		msgs[i] = c.Error()
	}
	return fmt.Sprintf("plan: %d typed port conflicts: %s", len(e.Conflicts), strings.Join(msgs, "; "))
}

// renderDigests memoizes each descriptor's canonical-form digest by
// pointer identity. Descriptors are immutable once parsed, so the
// render — by far the most expensive part of keying — need only happen
// once per descriptor lifetime instead of on every deploy. Bounded so
// a pathological churn of fresh parses cannot grow it forever.
var renderDigests sync.Map // *descriptor.Component → [sha256.Size]byte

var renderDigestCount atomic.Int64

const renderDigestBound = 1 << 14

func contentDigest(d *descriptor.Component) [sha256.Size]byte {
	if v, ok := renderDigests.Load(d); ok {
		return v.([sha256.Size]byte)
	}
	sum := sha256.Sum256([]byte(d.Render()))
	if renderDigestCount.Add(1) > renderDigestBound {
		// Reset the memo once it hits the bound. Range+Delete instead of
		// Clear keeps the module at go1.22; entries stored concurrently
		// during the sweep may survive it, which only delays the next reset.
		renderDigests.Range(func(k, _ any) bool {
			renderDigests.Delete(k)
			return true
		})
		renderDigestCount.Store(1)
	}
	renderDigests.Store(d, sum)
	return sum
}

// KeyOf digests a descriptor set in install order. The canonical
// rendered form is hashed, so a re-parsed copy of the same descriptors
// hits the same cache slot.
func KeyOf(descs []*descriptor.Component) string {
	h := sha256.New()
	for _, d := range descs {
		sum := contentDigest(d)
		h.Write(sum[:])
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// portKey mirrors the runtime's topic identity: two ports with equal
// keys speak the same topic (§2.3) and differ at most in size and typed
// annotations.
type portKey struct {
	name  string
	iface descriptor.PortInterface
	typ   ipc.ElemType
}

func keyOf(p descriptor.Port) portKey { return portKey{p.Name, p.Interface, p.Type} }

// member is per-component compile state.
type member struct {
	desc    *descriptor.Component
	enabled bool
	// extSat[in.Name]: the inport is satisfiable by an external provider.
	extSat map[string]bool
}

// Compile builds a plan. A typed port conflict returns (*RejectError);
// every other obstacle to the fast path compiles successfully with
// Fallback set, so callers can still render the plan and route the
// deploy through the event path.
func Compile(descs []*descriptor.Component, env Env) (*Plan, error) {
	p := &Plan{Key: KeyOf(descs), Components: descs}
	if env.Bound <= 0 {
		env.Bound = 1.0
	}

	members := map[string]*member{}
	var names []string
	for _, d := range descs {
		if _, dup := members[d.Name]; dup {
			p.Fallback = fmt.Sprintf("duplicate component name %q", d.Name)
			return p, nil
		}
		members[d.Name] = &member{desc: d, enabled: d.Enabled, extSat: map[string]bool{}}
		names = append(names, d.Name)
	}
	sort.Strings(names)
	for _, d := range descs {
		if cpu := d.CPU(); cpu < 0 || cpu >= env.NumCPUs {
			p.Fallback = fmt.Sprintf("component %q pinned to cpu%d but kernel has %d CPUs", d.Name, cpu, env.NumCPUs)
			return p, nil
		}
	}

	// Internal provider index: topic → enabled members declaring an
	// outport on it, name-sorted (the engines' provider choice order).
	provIdx := map[portKey][]string{}
	for _, name := range names {
		m := members[name]
		if !m.enabled {
			continue
		}
		for _, out := range m.desc.OutPorts {
			k := keyOf(out)
			provIdx[k] = append(provIdx[k], name)
		}
	}

	// External satisfiability per (member, inport), the compatibility
	// fingerprint, and the typed-conflict check.
	extLocal := map[portKey][]ExtProvider{}
	extRemote := map[portKey][]ExtProvider{}
	for _, ep := range env.Providers {
		k := keyOf(ep.Port)
		if ep.Remote {
			extRemote[k] = append(extRemote[k], ep)
		} else {
			extLocal[k] = append(extLocal[k], ep)
		}
	}
	for _, eps := range extLocal {
		sort.Slice(eps, func(i, j int) bool { return eps[i].Origin < eps[j].Origin })
	}
	for _, eps := range extRemote {
		sort.Slice(eps, func(i, j int) bool { return eps[i].Origin < eps[j].Origin })
	}

	var reject RejectError
	var fp strings.Builder
	for _, name := range names {
		m := members[name]
		for _, in := range m.desc.InPorts {
			k := keyOf(in)
			sat := false
			for _, ep := range extLocal[k] {
				if ep.Origin != name && ep.Port.CanSatisfy(in) {
					sat = true
					break
				}
			}
			if !sat {
				for _, ep := range extRemote[k] {
					if ep.Port.CanSatisfy(in) {
						sat = true
						break
					}
				}
			}
			m.extSat[in.Name] = sat
			fmt.Fprintf(&fp, "%s/%s=%v;", name, in.Name, sat)

			// Typed-conflict scan: candidates that match the topic at a
			// compatible size but all fail the typed layer.
			if sat || !m.enabled {
				continue
			}
			var firstTyped *PortIncompatibility
			compatible := false
			consider := func(origin string, out descriptor.Port) {
				if compatible || origin == name {
					return
				}
				if out.Direction != descriptor.Out || out.Size < in.Size {
					return // untyped size mismatches keep wait semantics
				}
				if why := out.ExplainTypedMismatch(in); why != "" {
					if firstTyped == nil {
						kind := "structure"
						if strings.Contains(why, "version") {
							kind = "version"
						}
						firstTyped = &PortIncompatibility{
							Provider: origin, ProviderPort: out.Name,
							Consumer: name, ConsumerPort: in.Name,
							Kind: kind, Reason: why,
						}
					}
					return
				}
				compatible = true
			}
			for _, pn := range provIdx[k] {
				if pn == name {
					continue
				}
				pm := members[pn]
				for _, out := range pm.desc.OutPorts {
					if keyOf(out) == k {
						consider(pn, out)
					}
				}
			}
			for _, ep := range extLocal[k] {
				consider(ep.Origin, ep.Port)
			}
			for _, ep := range extRemote[k] {
				consider(ep.Origin, ep.Port)
			}
			if !compatible && firstTyped != nil {
				reject.Conflicts = append(reject.Conflicts, firstTyped)
			}
		}
	}
	sumFP := sha256.Sum256([]byte(fp.String()))
	p.ExtFP = hex.EncodeToString(sumFP[:])
	if len(reject.Conflicts) > 0 {
		return nil, &reject
	}

	p.compileSchedule(members, names, provIdx, extLocal, extRemote)
	if p.Fallback == "" {
		p.compileAdmission(members, env)
	}
	if p.Fallback == "" {
		p.compileBindings(members, extLocal, extRemote)
	}
	p.compileEdges(members, names, extLocal, extRemote)
	return p, nil
}

// compileBindings precomputes each scheduled member's activation-moment
// inport bindings. The runtime binds inports right before a component
// goes Active, when the provider index holds the pre-batch admitted set
// plus only the members scheduled earlier — so the simulation replays
// the schedule against a name-sorted index seeded with the external
// local providers, falling back to remote provisions in index order,
// exactly findProviderLocked's walk. The apply fast path installs these
// rows instead of paying an index query per inport per component.
func (p *Plan) compileBindings(members map[string]*member,
	extLocal, extRemote map[portKey][]ExtProvider) {

	type prov struct {
		origin string
		port   descriptor.Port
	}
	idx := map[portKey][]prov{}
	insert := func(k portKey, pr prov) {
		ps := idx[k]
		i := sort.Search(len(ps), func(i int) bool { return ps[i].origin >= pr.origin })
		ps = append(ps, prov{})
		copy(ps[i+1:], ps[i:])
		ps[i] = pr
		idx[k] = ps
	}
	for k, eps := range extLocal {
		for _, ep := range eps {
			insert(k, prov{ep.Origin, ep.Port})
		}
	}
	p.BindRows = make([][]string, len(p.Schedule))
	for si, name := range p.Schedule {
		m := members[name]
		row := make([]string, len(m.desc.InPorts))
		for pi, in := range m.desc.InPorts {
			k := keyOf(in)
			for _, pr := range idx[k] {
				if pr.origin != name && pr.port.CanSatisfy(in) {
					row[pi] = pr.origin
					break
				}
			}
			if row[pi] == "" {
				for _, ep := range extRemote[k] {
					if ep.Port.CanSatisfy(in) {
						row[pi] = ep.Origin
						break
					}
				}
			}
		}
		p.BindRows[si] = row
		for _, out := range m.desc.OutPorts {
			insert(keyOf(out), prov{name, out})
		}
	}
}

// satisfiedBy reports whether inport in of member name is satisfied
// given the currently-activated member set.
func satisfiedBy(name string, in descriptor.Port, members map[string]*member,
	provIdx map[portKey][]string, active map[string]bool) bool {
	if members[name].extSat[in.Name] {
		return true
	}
	for _, pn := range provIdx[keyOf(in)] {
		if pn == name || !active[pn] {
			continue
		}
		for _, out := range members[pn].desc.OutPorts {
			if out.CanSatisfy(in) {
				return true
			}
		}
	}
	return false
}

// mode0Missing returns the first mode-0 inport of name without a
// provider ("" when mode 0 is feasible), mirroring
// feasibleModesLocked's missing-name rule.
func mode0Missing(name string, members map[string]*member,
	provIdx map[portKey][]string, active map[string]bool) string {
	for _, in := range members[name].desc.InPorts {
		if !satisfiedBy(name, in, members, provIdx, active) {
			return in.Name
		}
	}
	return ""
}

// compileSchedule reproduces the worklist engine's activation order: an
// initial name-sorted round over every enabled member, a cursor that
// lets a consumer dirtied ahead of it join the current round while one
// behind it waits for the next, and cause seeding along the topic
// edges. Any member feasible only in a degraded mode (or denied — see
// compileAdmission) routes the whole plan to the event path, where
// downgrade-before-deny runs for real.
func (p *Plan) compileSchedule(members map[string]*member, names []string,
	provIdx map[portKey][]string,
	extLocal, extRemote map[portKey][]ExtProvider) {

	// Reverse edges: topic → enabled members with an inport on it,
	// name-sorted (the runtime's consIndex restricted to the bundle).
	consIdx := map[portKey][]string{}
	for _, name := range names {
		m := members[name]
		if !m.enabled {
			continue
		}
		for _, in := range m.desc.InPorts {
			k := keyOf(in)
			consIdx[k] = append(consIdx[k], name)
		}
	}

	active := map[string]bool{}
	scheduleIdx := map[string]int{}
	cause := map[string]int{} // member → schedule index of its span cause
	var round, next []string
	nextMember := map[string]bool{}
	for _, name := range names {
		if members[name].enabled {
			round = append(round, name)
		}
	}

	enqueueNext := func(name string) {
		if nextMember[name] {
			return
		}
		nextMember[name] = true
		i := sort.SearchStrings(next, name)
		next = append(next, "")
		copy(next[i+1:], next[i:])
		next[i] = name
	}
	insertTail := func(round []string, i int, name string) []string {
		tail := round[i+1:]
		j := sort.SearchStrings(tail, name)
		if j < len(tail) && tail[j] == name {
			return round
		}
		pos := i + 1 + j
		round = append(round, "")
		copy(round[pos+1:], round[pos:])
		round[pos] = name
		return round
	}

	for len(round) > 0 {
		for i := 0; i < len(round); i++ {
			name := round[i]
			if active[name] {
				continue
			}
			if mode0Missing(name, members, provIdx, active) != "" {
				continue // stays waiting; a later cascade may re-visit it
			}
			idx := len(p.Schedule)
			active[name] = true
			scheduleIdx[name] = idx
			p.Schedule = append(p.Schedule, name)
			ci := -1
			if c, ok := cause[name]; ok {
				ci = c
			}
			p.CauseIdx = append(p.CauseIdx, ci)
			// Cascade to the new provider's waiting consumers.
			for _, out := range members[name].desc.OutPorts {
				for _, cn := range consIdx[keyOf(out)] {
					if cn == name || active[cn] {
						continue
					}
					if _, seeded := cause[cn]; !seeded {
						cause[cn] = idx
					}
					if cn > name {
						round = insertTail(round, i, cn)
					} else {
						enqueueNext(cn)
					}
				}
			}
		}
		round, next = next, round[:0]
		for k := range nextMember {
			delete(nextMember, k)
		}
	}

	for _, name := range names {
		m := members[name]
		if !m.enabled || active[name] {
			continue
		}
		// Not schedulable at mode 0. If a degraded mode is feasible the
		// event path must run it (downgrade-before-deny emits its own
		// span chain); a member with no feasible mode at all just stays
		// Unsatisfied, which the fast path reproduces exactly.
		for mi := 1; mi < m.desc.NumModes(); mi++ {
			feasible := true
			for _, in := range m.desc.InPorts {
				if !m.desc.RequiresInport(mi, in.Name) {
					continue
				}
				if !satisfiedBy(name, in, members, provIdx, active) {
					feasible = false
					break
				}
			}
			if feasible {
				p.Fallback = fmt.Sprintf("component %q is feasible only in degraded mode %q", name, m.desc.ModeName(mi))
				return
			}
		}
		ci := -1
		if c, ok := cause[name]; ok {
			ci = c
		}
		p.Leftovers = append(p.Leftovers, Leftover{
			Name:     name,
			Missing:  mode0Missing(name, members, provIdx, active),
			CauseIdx: ci,
		})
	}
}

// compileAdmission dry-runs the internal utilization resolver over the
// schedule, reproducing the runtime's arithmetic exactly: the per-CPU
// accumulators are re-summed from scratch in admitted-name order after
// every activation (recomputeLoadLocked's rule), so the partial sums —
// and therefore every admit/deny verdict — are bit-for-bit the ones the
// event path computes. Any denial routes the plan to the event path.
func (p *Plan) compileAdmission(members map[string]*member, env Env) {
	admitted := make([]policy.Contract, len(env.View.Admitted))
	copy(admitted, env.View.Admitted)
	before := make([]float64, env.NumCPUs)
	load := make([]float64, env.NumCPUs)
	recompute := func() {
		for i := range load {
			load[i] = 0
		}
		for _, ct := range admitted {
			if ct.CPU >= 0 && ct.CPU < len(load) {
				load[ct.CPU] += ct.CPUUsage
			}
		}
	}
	recompute()
	copy(before, load)

	// Stochastic steps Monte-Carlo-sample the composed per-CPU load with
	// the shared policy sampler, so compile-time verdicts are
	// byte-identical to the runtime's. The flag tracks whether any
	// distribution-valued contract is in play (view or schedule prefix).
	stochastic := env.View.Stochastic
	if !stochastic {
		for _, ct := range env.View.Admitted {
			if ct.Budget != nil {
				stochastic = true
				break
			}
		}
	}
	for _, name := range p.Schedule {
		desc := members[name].desc
		cpu := desc.CPU()
		cand := policy.Contract{Name: name, CPU: cpu, CPUUsage: desc.CPUUsage,
			Budget: desc.Budget, MetP: desc.BudgetP}
		handled := false
		if stochastic || cand.Budget != nil {
			var onCPU []policy.Contract
			for _, ct := range admitted {
				if ct.CPU == cpu {
					onCPU = append(onCPU, ct)
				}
			}
			if v, ok := policy.MCVerdict(env.Bound, load[cpu], onCPU, cand); ok {
				dec := v.Decision(cpu, env.Bound)
				if cand.Budget != nil {
					// Only budget-declaring members get an admit span at
					// runtime; mirror that so notes and spans line up 1:1.
					p.Admissions = append(p.Admissions, AdmitNote{Name: name, Verdict: dec.Reason})
				}
				if !dec.Admit {
					p.Fallback = fmt.Sprintf("component %q would be denied at mode 0 (%s)", name, dec.Reason)
					return
				}
				handled = true
			}
		}
		if !handled {
			if sum := desc.CPUUsage + load[cpu]; sum > env.Bound+admitEps {
				p.Fallback = fmt.Sprintf("component %q would be denied at mode 0 (cpu%d budget %.3f exceeds bound %.3f)",
					name, cpu, sum, env.Bound)
				return
			}
		}
		if cand.Budget != nil {
			stochastic = true
		}
		i := sort.Search(len(admitted), func(i int) bool { return admitted[i].Name >= name })
		admitted = append(admitted, policy.Contract{})
		copy(admitted[i+1:], admitted[i:])
		admitted[i] = cand
		recompute()
	}
	for cpu := 0; cpu < env.NumCPUs; cpu++ {
		if load[cpu] != before[cpu] {
			p.Deltas = append(p.Deltas, CPUDelta{
				CPU: cpu, Before: before[cpu], After: load[cpu], Delta: load[cpu] - before[cpu],
			})
		}
	}

	// Per-rung budget sums: the schedule clamped to each uniform mode
	// ladder rung (members without that rung stay at their cheapest).
	maxModes := 1
	for _, name := range p.Schedule {
		if n := members[name].desc.NumModes(); n > maxModes {
			maxModes = n
		}
	}
	for r := 0; r < maxModes; r++ {
		sums := make([]float64, env.NumCPUs)
		for _, name := range p.Schedule {
			desc := members[name].desc
			rung := r
			if rung >= desc.NumModes() {
				rung = desc.NumModes() - 1
			}
			sums[desc.CPU()] += desc.ModeSpec(rung).CPUUsage
		}
		p.RungDeltas = append(p.RungDeltas, sums)
	}

	if len(p.Admissions) > 0 && p.Fallback == "" {
		// Every stochastic step admitted, but the fast path cannot
		// replicate the admit spans the event path emits per activation —
		// route the apply there; the compiled verdicts above are the ones
		// the engines will reproduce.
		p.Fallback = "stochastic budgets admit: event path carries the Monte-Carlo admit spans"
	}
}

// compileEdges fills the wiring table: for every enabled member inport,
// the provider the engines would bind once the whole schedule is active
// — plan members and already-admitted local components in one
// name-sorted order, then remote provisions in origin order.
func (p *Plan) compileEdges(members map[string]*member, names []string,
	extLocal, extRemote map[portKey][]ExtProvider) {
	scheduled := map[string]bool{}
	for _, n := range p.Schedule {
		scheduled[n] = true
	}
	for _, name := range names {
		m := members[name]
		if !m.enabled {
			continue
		}
		for _, in := range m.desc.InPorts {
			var modes []string
			for mi := 0; mi < m.desc.NumModes(); mi++ {
				if m.desc.RequiresInport(mi, in.Name) {
					modes = append(modes, m.desc.ModeName(mi))
				}
			}
			e := Edge{Consumer: name, Inport: in.Name, Modes: modes}
			k := keyOf(in)
			// Merge plan members and external local providers in name
			// order, mirroring the admitted-set scan.
			type cand struct {
				origin string
				port   descriptor.Port
				ext    bool
			}
			var cands []cand
			for _, pn := range names {
				if pn == name || !scheduled[pn] {
					continue
				}
				for _, out := range members[pn].desc.OutPorts {
					if keyOf(out) == k {
						cands = append(cands, cand{pn, out, false})
					}
				}
			}
			for _, ep := range extLocal[k] {
				if ep.Origin != name {
					cands = append(cands, cand{ep.Origin, ep.Port, true})
				}
			}
			sort.SliceStable(cands, func(i, j int) bool { return cands[i].origin < cands[j].origin })
			for _, c := range cands {
				if c.port.CanSatisfy(in) {
					e.Provider, e.External = c.origin, c.ext
					break
				}
			}
			if e.Provider == "" {
				for _, ep := range extRemote[k] {
					if ep.Port.CanSatisfy(in) {
						e.Provider, e.External = ep.Origin, true
						break
					}
				}
			}
			p.Edges = append(p.Edges, e)
		}
	}
	sort.Slice(p.Edges, func(i, j int) bool {
		if p.Edges[i].Consumer != p.Edges[j].Consumer {
			return p.Edges[i].Consumer < p.Edges[j].Consumer
		}
		return p.Edges[i].Inport < p.Edges[j].Inport
	})
}

// AdmitDryRun re-runs the admission dry-run against a live view (see
// compileAdmission); it returns "" when every scheduled member admits
// at mode 0, else the reason the fast path must not run.
func (p *Plan) AdmitDryRun(view policy.View, numCPUs int, bound float64) string {
	if bound <= 0 {
		bound = 1.0
	}
	// A view that has gained distribution-valued contracts since compile
	// time decides admission by Monte-Carlo sampling, not the constant
	// sums below; the event path must run so its verdicts (and admit
	// spans) are the ones recorded.
	stochastic := view.Stochastic
	if !stochastic {
		for _, ct := range view.Admitted {
			if ct.Budget != nil {
				stochastic = true
				break
			}
		}
	}
	if stochastic {
		return "admitted view carries stochastic budgets: the event path decides admission"
	}
	byName := map[string]*descriptor.Component{}
	for _, d := range p.Components {
		byName[d.Name] = d
	}
	// The engine re-sums every CPU's load from scratch, in admitted-name
	// order, after each admission (recomputeLoadLocked); the dry-run must
	// reproduce those float sums bit for bit. Keeping one name-ordered
	// usage list per CPU preserves exactly that addition order while
	// re-summing only the CPU an admission lands on — an insert on cpu c
	// cannot change any other CPU's element sequence.
	names := make([][]string, numCPUs)
	usages := make([][]float64, numCPUs)
	load := make([]float64, numCPUs)
	for _, ct := range view.Admitted {
		if ct.CPU >= 0 && ct.CPU < numCPUs {
			names[ct.CPU] = append(names[ct.CPU], ct.Name)
			usages[ct.CPU] = append(usages[ct.CPU], ct.CPUUsage)
		}
	}
	resum := func(cpu int) {
		s := 0.0
		for _, u := range usages[cpu] {
			s += u
		}
		load[cpu] = s
	}
	for cpu := range load {
		resum(cpu)
	}
	for _, name := range p.Schedule {
		desc := byName[name]
		cpu := desc.CPU()
		if cpu < 0 || cpu >= numCPUs {
			return fmt.Sprintf("component %q pinned to cpu%d out of range", name, cpu)
		}
		if sum := desc.CPUUsage + load[cpu]; sum > bound+admitEps {
			return fmt.Sprintf("component %q would be denied at mode 0 (cpu%d budget %.3f exceeds bound %.3f)",
				name, cpu, sum, bound)
		}
		i := sort.SearchStrings(names[cpu], name)
		names[cpu] = append(names[cpu], "")
		copy(names[cpu][i+1:], names[cpu][i:])
		names[cpu][i] = name
		usages[cpu] = append(usages[cpu], 0)
		copy(usages[cpu][i+1:], usages[cpu][i:])
		usages[cpu][i] = desc.CPUUsage
		resum(cpu)
	}
	return ""
}

// Fingerprint recomputes the external-satisfiability fingerprint
// against a live provider set; apply compares it with the compile-time
// ExtFP and recompiles on mismatch.
func Fingerprint(descs []*descriptor.Component, providers []ExtProvider) string {
	extLocal := map[portKey][]ExtProvider{}
	extRemote := map[portKey][]ExtProvider{}
	for _, ep := range providers {
		k := keyOf(ep.Port)
		if ep.Remote {
			extRemote[k] = append(extRemote[k], ep)
		} else {
			extLocal[k] = append(extLocal[k], ep)
		}
	}
	names := make([]string, 0, len(descs))
	byName := map[string]*descriptor.Component{}
	for _, d := range descs {
		names = append(names, d.Name)
		byName[d.Name] = d
	}
	sort.Strings(names)
	var fp strings.Builder
	for _, name := range names {
		for _, in := range byName[name].InPorts {
			k := keyOf(in)
			sat := false
			for _, ep := range extLocal[k] {
				if ep.Origin != name && ep.Port.CanSatisfy(in) {
					sat = true
					break
				}
			}
			if !sat {
				for _, ep := range extRemote[k] {
					if ep.Port.CanSatisfy(in) {
						sat = true
						break
					}
				}
			}
			fmt.Fprintf(&fp, "%s/%s=%v;", name, in.Name, sat)
		}
	}
	sum := sha256.Sum256([]byte(fp.String()))
	return hex.EncodeToString(sum[:])
}
