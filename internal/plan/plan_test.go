package plan

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/descriptor"
	"repro/internal/policy"
)

// xml builds a minimal periodic descriptor with SHM ports named after
// topics, the same shape the core differential tests use.
func xml(name string, cpu int, usage float64, inports, outports []string, extra string) string {
	var b strings.Builder
	fmt.Fprintf(&b, `<component name=%q type="periodic" cpuusage="%g">`+"\n", name, usage)
	fmt.Fprintf(&b, `  <implementation bincode="plan.Body"/>`+"\n")
	fmt.Fprintf(&b, `  <periodictask frequence="100" runoncup="%d" priority="5"/>`+"\n", cpu)
	for _, p := range inports {
		fmt.Fprintf(&b, `  <inport name=%q interface="RTAI.SHM" type="Integer" size="64"/>`+"\n", p)
	}
	for _, p := range outports {
		fmt.Fprintf(&b, `  <outport name=%q interface="RTAI.SHM" type="Integer" size="64"/>`+"\n", p)
	}
	b.WriteString(extra)
	b.WriteString(`</component>`)
	return b.String()
}

func mustParse(t *testing.T, src string) *descriptor.Component {
	t.Helper()
	c, err := descriptor.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func env2() Env {
	return Env{NumCPUs: 2, Bound: 1.0, View: policy.View{NumCPUs: 2}}
}

// TestCompileScheduleDiamond pins the cursor-order semantics on a
// diamond DAG: src feeds mid1/mid2, sink joins them. The worklist
// engine's first round is name-sorted, a consumer named after the
// provider joins the provider's round, one named before it waits for
// the next round — the plan must reproduce exactly that order and the
// first-provider cause chain.
func TestCompileScheduleDiamond(t *testing.T) {
	descs := []*descriptor.Component{
		mustParse(t, xml("src", 0, 0.01, nil, []string{"ta"}, "")),
		mustParse(t, xml("mid1", 0, 0.01, []string{"ta"}, []string{"tb"}, "")),
		mustParse(t, xml("mid2", 1, 0.01, []string{"ta"}, []string{"tc"}, "")),
		mustParse(t, xml("sink", 1, 0.01, []string{"tb", "tc"}, nil, "")),
	}
	p, err := Compile(descs, env2())
	if err != nil {
		t.Fatal(err)
	}
	if p.Fallback != "" {
		t.Fatalf("fallback = %q", p.Fallback)
	}
	wantSched := []string{"src", "mid1", "mid2", "sink"}
	if got := strings.Join(p.Schedule, ","); got != strings.Join(wantSched, ",") {
		t.Fatalf("schedule = %s", got)
	}
	wantCause := []int{-1, 0, 0, 1}
	for i, c := range p.CauseIdx {
		if c != wantCause[i] {
			t.Fatalf("causeIdx = %v, want %v", p.CauseIdx, wantCause)
		}
	}
	if len(p.Leftovers) != 0 {
		t.Fatalf("leftovers = %v", p.Leftovers)
	}
	// The wiring table: deterministic consumer/inport order, internal
	// providers resolved.
	var rows []string
	for _, e := range p.Edges {
		rows = append(rows, fmt.Sprintf("%s.%s<-%s", e.Consumer, e.Inport, e.Provider))
	}
	want := "mid1.ta<-src mid2.ta<-src sink.tb<-mid1 sink.tc<-mid2"
	if got := strings.Join(rows, " "); got != want {
		t.Fatalf("edges = %s", got)
	}
	// Admission deltas: 0.02 on each CPU.
	if len(p.Deltas) != 2 || p.Deltas[0].CPU != 0 || p.Deltas[1].CPU != 1 {
		t.Fatalf("deltas = %+v", p.Deltas)
	}
}

// TestCompileLeftoverAndExternal: an orphan consumer stays a leftover
// with the engines' missing-inport reason; an external provider
// satisfies another member and appears as an external edge.
func TestCompileLeftoverAndExternal(t *testing.T) {
	descs := []*descriptor.Component{
		mustParse(t, xml("cons", 0, 0.01, []string{"base"}, nil, "")),
		mustParse(t, xml("orph", 1, 0.01, []string{"nowhr"}, nil, "")),
	}
	ext := mustParse(t, xml("ext", 0, 0.01, nil, []string{"base"}, ""))
	env := env2()
	env.Providers = []ExtProvider{{Origin: "ext", Port: ext.OutPorts[0]}}
	p, err := Compile(descs, env)
	if err != nil {
		t.Fatal(err)
	}
	if p.Fallback != "" {
		t.Fatalf("fallback = %q", p.Fallback)
	}
	if len(p.Schedule) != 1 || p.Schedule[0] != "cons" {
		t.Fatalf("schedule = %v", p.Schedule)
	}
	if len(p.Leftovers) != 1 || p.Leftovers[0].Name != "orph" || p.Leftovers[0].Missing != "nowhr" {
		t.Fatalf("leftovers = %+v", p.Leftovers)
	}
	var extEdge *Edge
	for i := range p.Edges {
		if p.Edges[i].Consumer == "cons" {
			extEdge = &p.Edges[i]
		}
	}
	if extEdge == nil || extEdge.Provider != "ext" || !extEdge.External {
		t.Fatalf("external edge = %+v", extEdge)
	}
}

// TestCompileAdmissionDenyFallback: a schedule overflowing one CPU's
// budget must compile with Fallback set (the event path runs the real
// deny), never reject.
func TestCompileAdmissionDenyFallback(t *testing.T) {
	descs := []*descriptor.Component{
		mustParse(t, xml("h1", 0, 0.6, nil, nil, "")),
		mustParse(t, xml("h2", 0, 0.6, nil, nil, "")),
	}
	p, err := Compile(descs, env2())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p.Fallback, "denied at mode 0") {
		t.Fatalf("fallback = %q", p.Fallback)
	}
}

// TestCompileDegradedOnlyFallback: a member whose mode 0 is infeasible
// but whose degraded mode drops the missing inport routes the plan to
// the event path, where downgrade-before-deny runs for real.
func TestCompileDegradedOnlyFallback(t *testing.T) {
	eco := `  <mode name="eco" frequence="50" cpuusage="0.01" drops="gap"/>` + "\n"
	descs := []*descriptor.Component{
		mustParse(t, xml("degr", 0, 0.02, []string{"gap"}, nil, eco)),
	}
	p, err := Compile(descs, env2())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p.Fallback, "degraded mode") {
		t.Fatalf("fallback = %q", p.Fallback)
	}
}

// TestCompileRungDeltas: per-rung budget sums clamp members with fewer
// declared modes to their cheapest rung.
func TestCompileRungDeltas(t *testing.T) {
	eco := `  <mode name="eco" frequence="50" cpuusage="0.04"/>` + "\n"
	descs := []*descriptor.Component{
		mustParse(t, xml("flat", 0, 0.10, nil, nil, "")),
		mustParse(t, xml("lad", 0, 0.20, nil, nil, eco)),
	}
	p, err := Compile(descs, env2())
	if err != nil {
		t.Fatal(err)
	}
	if len(p.RungDeltas) != 2 {
		t.Fatalf("rungs = %d", len(p.RungDeltas))
	}
	approx := func(got, want float64) bool { return got > want-1e-12 && got < want+1e-12 }
	if got := p.RungDeltas[0][0]; !approx(got, 0.30) {
		t.Fatalf("rung 0 cpu0 = %g", got)
	}
	// Rung 1: flat stays at its only mode (0.10), lad drops to eco (0.04).
	if got := p.RungDeltas[1][0]; !approx(got, 0.14) {
		t.Fatalf("rung 1 cpu0 = %g", got)
	}
}

// TestKeyOfStableAcrossReparse: the cache key hashes the canonical
// rendered form, so a re-parsed copy lands on the same slot, and order
// matters (install order is part of plan identity).
func TestKeyOfStableAcrossReparse(t *testing.T) {
	a := xml("a", 0, 0.01, nil, []string{"t"}, "")
	b := xml("b", 1, 0.01, []string{"t"}, nil, "")
	d1 := []*descriptor.Component{mustParse(t, a), mustParse(t, b)}
	d2 := []*descriptor.Component{mustParse(t, a), mustParse(t, b)}
	if KeyOf(d1) != KeyOf(d2) {
		t.Fatal("re-parsed descriptor set changed the cache key")
	}
	if KeyOf(d1) == KeyOf([]*descriptor.Component{d1[1], d1[0]}) {
		t.Fatal("install order must be part of plan identity")
	}
}

// TestCacheStatsAndEviction exercises the bounded cache.
func TestCacheStatsAndEviction(t *testing.T) {
	c := NewCache()
	if _, ok := c.Get("absent"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(&Plan{Key: "k1"})
	if _, ok := c.Get("k1"); !ok {
		t.Fatal("miss after put")
	}
	hits, misses, size := c.Stats()
	if hits != 1 || misses != 1 || size != 1 {
		t.Fatalf("stats = %d/%d/%d", hits, misses, size)
	}
	for i := 0; i < defaultCacheSize+10; i++ {
		c.Put(&Plan{Key: fmt.Sprintf("fill%04d", i)})
	}
	if _, _, size := c.Stats(); size > defaultCacheSize {
		t.Fatalf("cache grew past its bound: %d", size)
	}
	var nilCache *Cache
	if _, ok := nilCache.Get("x"); ok {
		t.Fatal("nil cache hit")
	}
	nilCache.Put(&Plan{Key: "x"}) // must not panic
}

// TestAdmitDryRunMovedView: a plan compiled against an empty view must
// fail its dry-run once the live view is loaded past the bound.
func TestAdmitDryRunMovedView(t *testing.T) {
	descs := []*descriptor.Component{mustParse(t, xml("c", 0, 0.3, nil, nil, ""))}
	p, err := Compile(descs, env2())
	if err != nil || p.Fallback != "" {
		t.Fatalf("compile: %v %q", err, p.Fallback)
	}
	free := policy.View{NumCPUs: 2}
	if why := p.AdmitDryRun(free, 2, 1.0); why != "" {
		t.Fatalf("dry-run against free view: %s", why)
	}
	busy := policy.View{NumCPUs: 2, Admitted: []policy.Contract{
		{Name: "big", CPU: 0, CPUUsage: 0.8},
	}}
	if why := p.AdmitDryRun(busy, 2, 1.0); !strings.Contains(why, "denied") {
		t.Fatalf("dry-run against busy view = %q, want denial", why)
	}
}

// TestFingerprintTracksProviders: the external-satisfiability
// fingerprint changes when a provider that satisfies a bundle inport
// appears, and is insensitive to irrelevant providers.
func TestFingerprintTracksProviders(t *testing.T) {
	descs := []*descriptor.Component{mustParse(t, xml("c", 0, 0.01, []string{"base"}, nil, ""))}
	ext := mustParse(t, xml("ext", 0, 0.01, nil, []string{"base"}, ""))
	other := mustParse(t, xml("oth", 0, 0.01, nil, []string{"unrel"}, ""))
	none := Fingerprint(descs, nil)
	withExt := Fingerprint(descs, []ExtProvider{{Origin: "ext", Port: ext.OutPorts[0]}})
	withOther := Fingerprint(descs, []ExtProvider{{Origin: "oth", Port: other.OutPorts[0]}})
	if none == withExt {
		t.Fatal("fingerprint blind to a satisfying provider")
	}
	if none != withOther {
		t.Fatal("fingerprint sensitive to an irrelevant provider")
	}
}

// TestCompileDuplicateNameFallback: duplicate names inside one batch
// cannot be planned (the engine keeps first-wins semantics).
func TestCompileDuplicateNameFallback(t *testing.T) {
	src := xml("dup", 0, 0.01, nil, nil, "")
	descs := []*descriptor.Component{mustParse(t, src), mustParse(t, src)}
	p, err := Compile(descs, env2())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p.Fallback, "duplicate") {
		t.Fatalf("fallback = %q", p.Fallback)
	}
}
