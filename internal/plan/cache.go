package plan

import "sync"

// Cache stores compiled plans keyed by descriptor-set digest, so a
// redeploy of the same bundle — or a cluster-side install of a plan the
// leader already compiled — skips compilation. Entries are immutable
// once stored; staleness against a moved runtime view is handled by the
// consumer (fingerprint comparison plus an admission dry-run re-run),
// never by invalidation.
type Cache struct {
	mu      sync.Mutex
	m       map[string]*Plan
	hits    uint64
	misses  uint64
	maxSize int
}

// defaultCacheSize bounds a cache; at capacity an arbitrary entry is
// evicted (plans are cheap to recompile, the cache is a fast path).
const defaultCacheSize = 256

// NewCache builds an empty plan cache.
func NewCache() *Cache {
	return &Cache{m: map[string]*Plan{}, maxSize: defaultCacheSize}
}

// Get looks a plan up by descriptor-set digest.
func (c *Cache) Get(key string) (*Plan, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.m[key]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return p, ok
}

// Put stores a compiled plan under its key.
func (c *Cache) Put(p *Plan) {
	if c == nil || p == nil || p.Key == "" {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.m[p.Key]; !exists && len(c.m) >= c.maxSize {
		for k := range c.m {
			delete(c.m, k)
			break
		}
	}
	c.m[p.Key] = p
}

// Stats reports lookup counters and the current entry count.
func (c *Cache) Stats() (hits, misses uint64, size int) {
	if c == nil {
		return 0, 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, len(c.m)
}
