package bench

import (
	"strings"
	"testing"
	"time"

	"repro/internal/rtos"
	"repro/internal/workload"
)

func TestTable1Render(t *testing.T) {
	out, rows, err := Table1(3000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, label := range []string{"HRC (light)", "Pure RTAI (light)", "HRC (stress)", "Pure RTAI (stress)"} {
		if !strings.Contains(out, label) {
			t.Errorf("output missing %q:\n%s", label, out)
		}
	}
	cmp := CompareWithPaper(rows)
	if !strings.Contains(cmp, "paper AVG") || !strings.Contains(cmp, "HRC (stress)") {
		t.Errorf("comparison malformed:\n%s", cmp)
	}
}

func TestAblationIntraComm(t *testing.T) {
	rows, err := AblationIntraComm(3, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Mode != "async" || rows[1].Mode != "sync" {
		t.Fatalf("rows = %+v", rows)
	}
	// The design claim: synchronous command handling degrades worst-case
	// dispatch latency; async does not.
	if rows[1].Latency.Max <= rows[0].Latency.Max {
		t.Errorf("sync max %d not worse than async max %d",
			rows[1].Latency.Max, rows[0].Latency.Max)
	}
	out := FormatIntraComm(rows)
	if !strings.Contains(out, "async") || !strings.Contains(out, "sync") {
		t.Errorf("format:\n%s", out)
	}
}

func TestAblationAdmission(t *testing.T) {
	rows, err := AblationAdmission(3, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	on, off := rows[0], rows[1]
	if on.Admission != "enforced" || off.Admission != "disabled" {
		t.Fatalf("labels = %+v", rows)
	}
	// Admission keeps the admitted set within budget: no misses at all.
	if on.Misses != 0 {
		t.Errorf("enforced admission still missed %d deadlines", on.Misses)
	}
	if on.Active >= off.Active {
		t.Errorf("enforcement admitted %d >= unenforced %d", on.Active, off.Active)
	}
	// Without admission the oversubscribed set breaks contracts.
	if off.Misses == 0 && off.Skips == 0 {
		t.Error("disabled admission produced no contract violations")
	}
	out := FormatAdmission(rows)
	if !strings.Contains(out, "enforced") {
		t.Errorf("format:\n%s", out)
	}
}

func TestAblationResolvers(t *testing.T) {
	rows, err := AblationResolvers()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]ResolverResult{}
	for _, r := range rows {
		byName[r.Policy] = r
	}
	// Crossover: utilization and EDF admit the whole density-1.0 set; RMA
	// with rate-inverted fixed priorities must deny at least one.
	if byName["utilization"].Admitted != 3 {
		t.Errorf("utilization admitted %d", byName["utilization"].Admitted)
	}
	if byName["edf"].Admitted != 3 {
		t.Errorf("edf admitted %d", byName["edf"].Admitted)
	}
	if byName["rma"].Denied == 0 {
		t.Error("rma denied nothing on the rate-inverted set")
	}
	out := FormatResolvers(rows)
	if !strings.Contains(out, "rma") {
		t.Errorf("format:\n%s", out)
	}
}

func TestHistogramRender(t *testing.T) {
	out, err := Histogram(workload.LatencyConfig{Mode: rtos.StressLoad, Samples: 2000, Seed: 2}, 30)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "#") || !strings.Contains(out, "stress") {
		t.Errorf("histogram:\n%s", out)
	}
}
