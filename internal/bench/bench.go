// Package bench is the experiment harness: every table and figure of the
// paper's evaluation, plus the ablations DESIGN.md calls out, expressed
// as plain functions shared by `go test -bench` (bench_test.go) and the
// cmd/latbench tool. Each function returns printable rows so EXPERIMENTS.md
// can be regenerated mechanically.
package bench

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/hrc"
	"repro/internal/metrics"
	"repro/internal/osgi"
	"repro/internal/policy"
	"repro/internal/rtos"
	"repro/internal/workload"
)

// Table1 runs the four latency configurations and renders them in the
// paper's Table 1 layout.
func Table1(samples int, seed uint64) (string, []metrics.Row, error) {
	rows, err := workload.Table1(samples, seed)
	if err != nil {
		return "", nil, err
	}
	out := metrics.FormatTable("Table 1  Latency Test (light & stress) mode — ns", rows)
	return out, rows, nil
}

// PaperTable1 is the published Table 1, for side-by-side comparison.
var PaperTable1 = []metrics.Row{
	{Label: "HRC (light)", Average: -1334.9, AveDev: 3760.03, Min: -24125, Max: 21489},
	{Label: "Pure RTAI (light)", Average: -633.8, AveDev: 3682.82, Min: -25436, Max: 23798},
	{Label: "HRC (stress)", Average: -21083.74, AveDev: 338.89, Min: -23314, Max: -17956},
	{Label: "Pure RTAI (stress)", Average: -21184.52, AveDev: 385.41, Min: -25233, Max: -18834},
}

// CompareWithPaper renders measured rows against the published ones.
func CompareWithPaper(measured []metrics.Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %14s %14s | %14s %14s\n", "", "paper AVG", "paper AVEDEV", "ours AVG", "ours AVEDEV")
	for i, p := range PaperTable1 {
		if i >= len(measured) {
			break
		}
		m := measured[i]
		fmt.Fprintf(&b, "%-22s %14.2f %14.2f | %14.2f %14.2f\n",
			p.Label, p.Average, p.AveDev, m.Average, m.AveDev)
	}
	return b.String()
}

// IntraCommResult is one row of Ablation A (§3.2 design choice).
type IntraCommResult struct {
	Mode           string // "async" or "sync"
	Latency        metrics.Row
	CommandsServed uint64
}

// AblationIntraComm compares asynchronous command handling (the paper's
// design) against synchronous handling under a command storm: one
// set-property per two periods against a 1 kHz task.
func AblationIntraComm(seed uint64, commands int) ([]IntraCommResult, error) {
	run := func(syncMode bool) (IntraCommResult, error) {
		k := rtos.NewKernel(rtos.Config{Seed: seed}) // light-load noise
		c, err := hrc.New(hrc.Config{
			Kernel: k,
			Spec: rtos.TaskSpec{
				Name: "task", Type: rtos.Periodic, Priority: 1,
				Period: time.Millisecond, ExecTime: 30 * time.Microsecond,
			},
			Sync: syncMode,
		})
		if err != nil {
			return IntraCommResult{}, err
		}
		if err := c.Start(); err != nil {
			return IntraCommResult{}, err
		}
		if err := k.Run(50 * time.Millisecond); err != nil {
			return IntraCommResult{}, err
		}
		c.Task().ResetStats()
		for i := 0; i < commands; i++ {
			// Land the command just before a release so sync handling
			// collides with the RT dispatch.
			if err := k.Run(2*time.Millisecond - 3*time.Microsecond); err != nil {
				return IntraCommResult{}, err
			}
			_ = c.SetProperty("p", fmt.Sprint(i)) // drops under storm are part of the experiment
			if err := k.Run(3 * time.Microsecond); err != nil {
				return IntraCommResult{}, err
			}
		}
		mode := "async"
		if syncMode {
			mode = "sync"
		}
		row := c.Task().Stats().Latency
		row.Label = mode
		return IntraCommResult{
			Mode:           mode,
			Latency:        row,
			CommandsServed: c.Status().CommandsServed,
		}, nil
	}
	asyncRes, err := run(false)
	if err != nil {
		return nil, err
	}
	syncRes, err := run(true)
	if err != nil {
		return nil, err
	}
	return []IntraCommResult{asyncRes, syncRes}, nil
}

// AdmissionResult is one row of Ablation B (central admission on/off).
type AdmissionResult struct {
	Admission string // "enforced" or "disabled"
	Active    int
	Misses    uint64
	Skips     uint64
}

// AblationAdmission deploys an oversubscribed component set (total
// declared budget 1.4 on one CPU) with the DRCR's admission enforced and
// disabled, and counts the deadline misses that central enforcement
// prevents.
func AblationAdmission(seed uint64, runFor time.Duration) ([]AdmissionResult, error) {
	run := func(enforce bool) (AdmissionResult, error) {
		fw := osgi.NewFramework()
		k := rtos.NewKernel(rtos.Config{Seed: seed})
		// The enforced run uses a guard-banded budget ceiling (0.9), the
		// usual practice so declared budgets keep slack over release
		// jitter and execution variance.
		var internal policy.Resolver = policy.Utilization{Bound: 0.9}
		if !enforce {
			internal = policy.Static{AdmitAll: true, Label: "no-admission"}
		}
		d, err := core.New(fw, k, core.Options{Internal: internal})
		if err != nil {
			return AdmissionResult{}, err
		}
		defer d.Close()
		comps, err := workload.OversubscribedSet(14, 1.4)
		if err != nil {
			return AdmissionResult{}, err
		}
		for _, c := range comps {
			if err := d.Deploy(c); err != nil {
				return AdmissionResult{}, err
			}
		}
		if err := k.Run(runFor); err != nil {
			return AdmissionResult{}, err
		}
		res := AdmissionResult{Admission: "enforced"}
		if !enforce {
			res.Admission = "disabled"
		}
		for _, info := range d.Components() {
			if info.State == core.Active {
				res.Active++
			}
		}
		for _, t := range k.Tasks() {
			st := t.Stats()
			res.Misses += st.Misses
			res.Skips += st.Skips
		}
		return res, nil
	}
	on, err := run(true)
	if err != nil {
		return nil, err
	}
	off, err := run(false)
	if err != nil {
		return nil, err
	}
	return []AdmissionResult{on, off}, nil
}

// ResolverResult is one row of Ablation C (policy comparison).
type ResolverResult struct {
	Policy   string
	Admitted int
	Denied   int
}

// AblationResolvers admits the same tight task set under the three
// built-in policies. The set totals density 1.0 with deliberately
// rate-inverted priorities, so EDF admits everything, utilization admits
// everything, and RMA stops earlier — the crossover DESIGN.md promises.
func AblationResolvers() ([]ResolverResult, error) {
	mk := func(name string, prio int, usage float64, period time.Duration) policy.Contract {
		return policy.Contract{Name: name, CPU: 0, Priority: prio, CPUUsage: usage, Period: period}
	}
	// Rate-inverted: the long task has the top priority.
	set := []policy.Contract{
		mk("t1", 1, 0.50, 10*time.Millisecond),
		mk("t2", 2, 0.25, 4*time.Millisecond),
		mk("t3", 3, 0.25, 6*time.Millisecond),
	}
	resolvers := []policy.Resolver{policy.Utilization{}, policy.RMA{}, policy.EDF{}}
	out := make([]ResolverResult, 0, len(resolvers))
	for _, r := range resolvers {
		view := policy.View{NumCPUs: 1}
		res := ResolverResult{Policy: r.Name()}
		for _, c := range set {
			if r.Admit(view, c).Admit {
				view.Admitted = append(view.Admitted, c)
				res.Admitted++
			} else {
				res.Denied++
			}
		}
		out = append(out, res)
	}
	return out, nil
}

// FormatIntraComm renders Ablation A.
func FormatIntraComm(rows []IntraCommResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation A — intra-component command handling (latency ns under command storm)\n")
	fmt.Fprintf(&b, "%-8s %12s %12s %10s %10s %10s\n", "mode", "AVERAGE", "AVEDEV", "MIN", "MAX", "served")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %12.2f %12.2f %10d %10d %10d\n",
			r.Mode, r.Latency.Average, r.Latency.AveDev, r.Latency.Min, r.Latency.Max, r.CommandsServed)
	}
	return b.String()
}

// FormatAdmission renders Ablation B.
func FormatAdmission(rows []AdmissionResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation B — central admission control (oversubscribed set, budget 1.4)\n")
	fmt.Fprintf(&b, "%-10s %8s %10s %10s\n", "admission", "active", "misses", "skips")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %8d %10d %10d\n", r.Admission, r.Active, r.Misses, r.Skips)
	}
	return b.String()
}

// FormatResolvers renders Ablation C.
func FormatResolvers(rows []ResolverResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation C — resolving policies on a density-1.0, rate-inverted set\n")
	fmt.Fprintf(&b, "%-12s %9s %7s\n", "policy", "admitted", "denied")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %9d %7d\n", r.Policy, r.Admitted, r.Denied)
	}
	return b.String()
}

// Histogram renders the latency distribution of one configuration, the
// figure-style view of Table 1's underlying data.
func Histogram(cfg workload.LatencyConfig, bins int) (string, error) {
	res, err := workload.RunLatency(cfg)
	if err != nil {
		return "", err
	}
	h, err := metrics.NewHistogram(-30000, 30000, bins)
	if err != nil {
		return "", err
	}
	for _, s := range res.Samples {
		h.Observe(s)
	}
	return fmt.Sprintf("%s latency distribution (ns)\n%s", cfg.Label(), h.Render(60)), nil
}
