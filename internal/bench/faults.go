package bench

import (
	"fmt"
	"strings"

	"repro/internal/workload"
)

// FaultsResult is one row of Ablation E (contract guard on/off under the
// standard fault campaign).
type FaultsResult struct {
	Config     string // "guarded" or "unguarded"
	Violations int
	Revokes    int
	Restores   int
	// DispMaxAbs is the worst dispatch-latency magnitude of the dependant
	// 4 Hz task across the whole run, in ns — the containment metric.
	DispMaxAbs int64
	// DetectionMS is first violation minus fault start, in ms (-1 when
	// nothing was detected); MTTRMS is final recovery minus fault clear.
	DetectionMS float64
	MTTRMS      float64
	Recovered   bool
	Digest      string // guard trace digest (guarded row only)
}

// AblationFaults runs the §4.2 application through the standard fault
// campaign (calc's execution time inflated 4× for 400 ms) twice: once
// protected by the contract guard, once not. The guarded run detects the
// budget overrun, revokes and eventually restores calc's budget, and keeps
// the dependant's dispatch latency at its fault-free level; the unguarded
// run lets the inflated job block the dependant for ~4× the paper's 30 µs
// bound.
func AblationFaults(seed uint64) ([]FaultsResult, error) {
	row := func(guarded bool) (FaultsResult, error) {
		res, err := workload.RunFaultCampaign(workload.FaultCampaignConfig{
			Seed:    seed,
			Guarded: guarded,
		})
		if err != nil {
			return FaultsResult{}, err
		}
		out := FaultsResult{
			Config:      "unguarded",
			Violations:  len(res.Violations),
			Revokes:     res.RevokeCount,
			Restores:    res.RestoreCount,
			DispMaxAbs:  res.DispMaxAbs,
			DetectionMS: float64(res.DetectionLatency) / 1e6,
			MTTRMS:      float64(res.MTTR) / 1e6,
			Recovered:   res.MTTR > 0,
			Digest:      res.TraceDigest,
		}
		if guarded {
			out.Config = "guarded"
		}
		return out, nil
	}
	g, err := row(true)
	if err != nil {
		return nil, err
	}
	u, err := row(false)
	if err != nil {
		return nil, err
	}
	return []FaultsResult{g, u}, nil
}

// FormatFaults renders Ablation E.
func FormatFaults(rows []FaultsResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation E — fault injection & containment (calc exec ×%.0f for %v)\n",
		workload.FaultFactor, workload.FaultDuration)
	fmt.Fprintf(&b, "%-10s %10s %8s %9s %14s %10s %9s %10s\n",
		"config", "violations", "revokes", "restores", "disp max |ns|", "detect ms", "MTTR ms", "recovered")
	for _, r := range rows {
		det, mttr := "-", "-"
		if r.DetectionMS >= 0 {
			det = fmt.Sprintf("%.1f", r.DetectionMS)
		}
		if r.MTTRMS >= 0 {
			mttr = fmt.Sprintf("%.1f", r.MTTRMS)
		}
		fmt.Fprintf(&b, "%-10s %10d %8d %9d %14d %10s %9s %10v\n",
			r.Config, r.Violations, r.Revokes, r.Restores, r.DispMaxAbs, det, mttr, r.Recovered)
	}
	for _, r := range rows {
		if r.Config == "guarded" && r.Digest != "" {
			fmt.Fprintf(&b, "guarded trace digest: %s\n", r.Digest)
		}
	}
	return b.String()
}
