package bench

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/metrics"
	"repro/internal/workload"
)

// DefaultWorkers is the worker-pool size the Monte-Carlo helpers use when
// the caller passes workers <= 0: one goroutine per logical CPU.
func DefaultWorkers() int { return runtime.NumCPU() }

// forEachIndexed runs fn(0..n-1) across a pool of worker goroutines and
// blocks until all complete. Each index runs exactly once; errors are
// collected per index so the caller can report them deterministically.
func forEachIndexed(n, workers int, fn func(i int) error) []error {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			errs[i] = fn(i)
		}
		return errs
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return errs
}

// MonteCarlo draws n independent samples by calling fn with seeds
// baseSeed, baseSeed+1, … baseSeed+n-1 across a pool of worker
// goroutines. Each invocation must construct its own seeded System (a
// kernel, clock, and workload of its own), so samples share no state and
// each is individually deterministic; results are merged in seed order,
// making the output identical for any worker count — including 1 — and
// any goroutine interleave. On error the first failing seed wins.
func MonteCarlo[T any](n int, baseSeed uint64, workers int, fn func(seed uint64) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	out := make([]T, n)
	errs := forEachIndexed(n, workers, func(i int) error {
		v, err := fn(baseSeed + uint64(i))
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("bench: monte-carlo seed %d: %w", baseSeed+uint64(i), err)
		}
	}
	return out, nil
}

// MonteCarloLatency repeats the §4.2 latency experiment over `runs`
// consecutive seeds in parallel and pools every post-warm-up sample into
// one aggregate row, shrinking the seed-to-seed variance of any single
// Table 1 cell. The per-seed results come back in seed order.
func MonteCarloLatency(cfg workload.LatencyConfig, runs int, baseSeed uint64, workers int) ([]workload.LatencyResult, metrics.Row, error) {
	results, err := MonteCarlo(runs, baseSeed, workers, func(seed uint64) (workload.LatencyResult, error) {
		c := cfg
		c.Seed = seed
		return workload.RunLatency(c)
	})
	if err != nil {
		return nil, metrics.Row{}, err
	}
	var pooled metrics.Series
	for _, r := range results {
		pooled.AddAll(r.Samples)
	}
	row := pooled.Row(fmt.Sprintf("%s ×%d", cfg.Label(), runs))
	return results, row, nil
}

// Table1Parallel runs the four Table 1 configurations concurrently, each
// against its own seeded System, and returns the rows in the paper's
// fixed order. Output is byte-identical to the sequential Table1.
func Table1Parallel(samples int, seed uint64, workers int) (string, []metrics.Row, error) {
	configs := workload.Table1Configs(samples, seed)
	rows := make([]metrics.Row, len(configs))
	errs := forEachIndexed(len(configs), workers, func(i int) error {
		res, err := workload.RunLatency(configs[i])
		if err != nil {
			return fmt.Errorf("%s: %w", configs[i].Label(), err)
		}
		rows[i] = res.Row
		return nil
	})
	for _, err := range errs {
		if err != nil {
			return "", nil, fmt.Errorf("bench: table1: %w", err)
		}
	}
	out := metrics.FormatTable("Table 1  Latency Test (light & stress) mode — ns", rows)
	return out, rows, nil
}
