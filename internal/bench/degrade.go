package bench

import (
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"strings"

	"repro/internal/workload"
)

// Graceful-degradation benchmark: the seeded degradation campaign run
// twice — once with the declared mode ladders (downgrade-before-deny,
// guard step-down, supervised restart) and once with them stripped (the
// binary admit-or-deny baseline). The committed BENCH_degrade.json
// quantifies what the ladder buys: availability preserved under the same
// faults, and a bounded time back to the full contract.

// DegradeBenchConfig sizes MeasureDegrade. The zero value selects the
// reference configuration the committed baseline uses.
type DegradeBenchConfig struct {
	// Seed drives everything (default 1).
	Seed uint64
}

func (c *DegradeBenchConfig) applyDefaults() {
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// DegradeVariant is one campaign run (graceful or binary).
type DegradeVariant struct {
	Variant string `json:"variant"` // "degrade" | "binary"
	// Availability per component over the run (fraction of sim time
	// ACTIVE, possibly under a degraded contract).
	CalcAvailability float64 `json:"calc_availability"`
	DispAvailability float64 `json:"disp_availability"`
	AuxAvailability  float64 `json:"aux_availability"`
	// MeanUtil is the mean admitted budget across the run's samples.
	MeanUtil float64 `json:"mean_util"`
	// TimeToRepromoMS is calc's final re-promotion minus the fault
	// clear, in milliseconds; negative means it never happened.
	TimeToRepromoMS float64 `json:"time_to_repromo_ms"`
	Denies          int     `json:"denies"`
	Revokes         int     `json:"revokes"`
	Downgrades      uint64  `json:"downgrades"`
	Upgrades        uint64  `json:"upgrades"`
	Restarts        uint64  `json:"restarts"`
	Escalations     uint64  `json:"escalations"`
	SpanDigest      string  `json:"span_digest"`
	SpanCount       uint64  `json:"span_count"`
}

// DegradeReport is the machine-readable snapshot cmd/latbench writes to
// BENCH_degrade.json.
type DegradeReport struct {
	GoVersion string           `json:"go_version"`
	NumCPU    int              `json:"num_cpu"`
	Seed      uint64           `json:"seed"`
	Variants  []DegradeVariant `json:"variants"`
	// Repeatable confirms a second graceful run reproduced the digest.
	Repeatable bool `json:"repeatable"`
}

// MeasureDegrade runs the degradation campaign in both configurations.
func MeasureDegrade(cfg DegradeBenchConfig) (DegradeReport, error) {
	cfg.applyDefaults()
	rep := DegradeReport{
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Seed:      cfg.Seed,
	}
	var firstDigest string
	for _, binary := range []bool{false, true} {
		res, err := workload.RunDegradeCampaign(workload.DegradeConfig{Seed: cfg.Seed, Binary: binary})
		if err != nil {
			return DegradeReport{}, fmt.Errorf("bench: degrade campaign (binary=%v): %w", binary, err)
		}
		v := DegradeVariant{
			Variant:          "degrade",
			CalcAvailability: res.Availability["calc"],
			DispAvailability: res.Availability["disp"],
			AuxAvailability:  res.Availability["zaux"],
			MeanUtil:         res.MeanUtil,
			TimeToRepromoMS:  float64(res.TimeToRepromo.Nanoseconds()) / 1e6,
			Denies:           res.Denies,
			Revokes:          res.Revokes,
			Downgrades:       res.Downgrades,
			Upgrades:         res.Upgrades,
			Restarts:         res.Restarts,
			Escalations:      res.Escalations,
			SpanDigest:       res.SpanDigest,
			SpanCount:        res.SpanCount,
		}
		if binary {
			v.Variant = "binary"
		} else {
			firstDigest = res.SpanDigest
		}
		rep.Variants = append(rep.Variants, v)
	}
	again, err := workload.RunDegradeCampaign(workload.DegradeConfig{Seed: cfg.Seed})
	if err != nil {
		return DegradeReport{}, fmt.Errorf("bench: degrade campaign repeat: %w", err)
	}
	rep.Repeatable = again.SpanDigest == firstDigest
	return rep, nil
}

// Validate checks the invariants a fresh or committed report must
// satisfy; cmd/latbench runs it after writing BENCH_degrade.json, and
// the CI smoke runs it against the committed file.
func (r DegradeReport) Validate() error {
	if len(r.Variants) != 2 {
		return fmt.Errorf("degrade report: %d variants, want 2 (degrade/binary)", len(r.Variants))
	}
	byName := map[string]DegradeVariant{}
	for _, v := range r.Variants {
		if len(v.SpanDigest) != 64 || v.SpanCount == 0 {
			return fmt.Errorf("degrade report: variant %s span pin incomplete", v.Variant)
		}
		byName[v.Variant] = v
	}
	grace, ok := byName["degrade"]
	if !ok {
		return errors.New("degrade report: graceful variant missing")
	}
	binary, ok := byName["binary"]
	if !ok {
		return errors.New("degrade report: binary variant missing")
	}
	if grace.CalcAvailability != 1 || grace.DispAvailability != 1 {
		return fmt.Errorf("degrade report: graceful calc/disp availability %v/%v, want 1/1",
			grace.CalcAvailability, grace.DispAvailability)
	}
	if grace.Denies != 0 || grace.Revokes != 0 {
		return fmt.Errorf("degrade report: graceful run denied (%d) or revoked (%d)",
			grace.Denies, grace.Revokes)
	}
	if grace.Downgrades == 0 || grace.Upgrades == 0 || grace.TimeToRepromoMS <= 0 {
		return fmt.Errorf("degrade report: graceful ladder inactive: %+v", grace)
	}
	if binary.Denies == 0 || binary.Revokes == 0 {
		return fmt.Errorf("degrade report: binary baseline never denied (%d) or revoked (%d)",
			binary.Denies, binary.Revokes)
	}
	if binary.Downgrades != 0 || binary.Upgrades != 0 {
		return fmt.Errorf("degrade report: binary baseline used the mode ladder: %+v", binary)
	}
	if binary.CalcAvailability >= grace.CalcAvailability ||
		binary.AuxAvailability >= grace.AuxAvailability {
		return fmt.Errorf("degrade report: binary availability not below graceful: %+v vs %+v",
			binary, grace)
	}
	if !r.Repeatable {
		return errors.New("degrade report: span digest not repeatable across runs")
	}
	return nil
}

// Encode renders the report the way the committed BENCH_degrade.json is
// stored: two-space indentation, trailing newline, human-diffable.
func (r DegradeReport) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// FormatDegrade renders the report for terminal output.
func FormatDegrade(r DegradeReport) string {
	var b strings.Builder
	b.WriteString("Graceful degradation — same faults, with and without the mode ladder\n")
	fmt.Fprintf(&b, "%8s %6s %6s %6s %9s %7s %7s %6s %6s %6s %11s\n",
		"variant", "calc", "disp", "aux", "mean-util", "denies", "revokes", "down", "up", "rstrt", "repromo-ms")
	for _, v := range r.Variants {
		fmt.Fprintf(&b, "%8s %6.3f %6.3f %6.3f %9.3f %7d %7d %6d %6d %6d %11.1f\n",
			v.Variant, v.CalcAvailability, v.DispAvailability, v.AuxAvailability,
			v.MeanUtil, v.Denies, v.Revokes, v.Downgrades, v.Upgrades, v.Restarts,
			v.TimeToRepromoMS)
	}
	fmt.Fprintf(&b, "repeatable=%v\n", r.Repeatable)
	return b.String()
}
