package bench

import (
	"encoding/json"
	"testing"
)

func TestMeasureChurnSmall(t *testing.T) {
	rep, err := MeasureChurn(ChurnConfig{Sizes: []int{40}, Steps: 60, Seed: 5})
	if err != nil {
		t.Fatalf("MeasureChurn: %v", err)
	}
	if len(rep.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(rep.Rows))
	}
	row := rep.Rows[0]
	if !row.TraceMatch || !row.StateMatch {
		t.Errorf("engines diverged: %+v", row)
	}
	if row.Components == 0 || row.Events == 0 {
		t.Errorf("empty run: %+v", row)
	}
	if row.FullSweepNS <= 0 || row.WorklistNS <= 0 {
		t.Errorf("missing timings: %+v", row)
	}
	enc, err := rep.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	var back ChurnReport
	if err := json.Unmarshal(enc, &back); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if back.Rows[0].Components != row.Components {
		t.Errorf("round-trip mismatch: %+v", back.Rows[0])
	}
	if FormatChurn(rep) == "" {
		t.Error("FormatChurn returned empty string")
	}
}

func TestAutoSteps(t *testing.T) {
	for _, tc := range []struct{ n, want int }{
		{100, 1000}, {1000, 150}, {5000, 30}, {100000, 30},
	} {
		if got := autoSteps(tc.n); got != tc.want {
			t.Errorf("autoSteps(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}
