package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"

	"repro/internal/workload"
)

// Whole-bundle deploy benchmark: the same composition DAG deployed as N
// event-path deploys, as one batched event-path drain, and as a
// compiled plan (cold and cache-warm). Every row doubles as a
// differential test — the plan applies must reproduce the batched event
// path bit for bit, or the speedup is meaningless.

// PlanConfig sizes MeasurePlan. The zero value selects the reference
// configuration the committed BENCH_plan.json baseline uses.
type PlanConfig struct {
	// Sizes are the component-population sizes (default 100, 1000, 5000).
	Sizes []int
	// Seed for the simulated kernels (default 1).
	Seed int64
	// FanOut consumers per relay topic (default 3).
	FanOut int
	// Reps repeats each comparison, keeping the minimum wall per strategy
	// (default 3) — scheduler preemption and GC only ever add time, so the
	// minimum is the noise-robust estimator on a contended host. Parity
	// checks must hold on every rep.
	Reps int
}

func (c *PlanConfig) applyDefaults() {
	if len(c.Sizes) == 0 {
		c.Sizes = []int{100, 1000, 5000}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.FanOut <= 0 {
		c.FanOut = 3
	}
	if c.Reps <= 0 {
		c.Reps = 3
	}
}

// PlanRow compares the deploy strategies at one population size.
type PlanRow struct {
	Components int `json:"components"`
	// PerDescriptorNS times N event-path Deploy calls (the legacy loop).
	PerDescriptorNS int64 `json:"per_descriptor_ns"`
	// EventBatchNS times one DeployAll with the fast path disabled.
	EventBatchNS int64 `json:"event_batch_ns"`
	// PlanColdNS times compile + apply on an empty cache.
	PlanColdNS int64 `json:"plan_cold_ns"`
	// PlanWarmNS times the pure apply path against a warm cache — what
	// a redeploy or a cluster migration target pays.
	PlanWarmNS int64 `json:"plan_warm_ns"`
	// Speedup is per-descriptor wall over warm plan-apply wall: the
	// headline O(N·rounds) → O(plan) ratio.
	Speedup float64 `json:"speedup"`
	// BatchSpeedup is the batched event path over warm plan-apply.
	BatchSpeedup float64 `json:"batch_speedup"`
	// DigestMatch confirms event trace, obs stream (span IDs and causes
	// included), and final states agree between the batched event path
	// and both plan applies.
	DigestMatch bool `json:"digest_match"`
	// StateMatch confirms the per-descriptor loop converged to the same
	// final states.
	StateMatch bool `json:"state_match"`
	// PlanApplied / CacheHit confirm the fast path really ran and the
	// warm run really hit the cache.
	PlanApplied bool `json:"plan_applied"`
	CacheHit    bool `json:"cache_hit"`
}

// PlanReport is the machine-readable snapshot cmd/latbench writes to
// BENCH_plan.json, committed alongside BENCH_resolve.json.
type PlanReport struct {
	GoVersion string `json:"go_version"`
	NumCPU    int    `json:"num_cpu"`
	// SingleCoreHost carries the standing BENCH_shard.json caveat:
	// wall-clock numbers from a one-core container compress real
	// parallelism and should not be compared against multi-core runs.
	SingleCoreHost bool      `json:"single_core_host"`
	Seed           int64     `json:"seed"`
	FanOut         int       `json:"fan_out"`
	Reps           int       `json:"reps"`
	Rows           []PlanRow `json:"rows"`
}

// MeasurePlan runs the whole-bundle deploy comparison at every size.
func MeasurePlan(cfg PlanConfig) (PlanReport, error) {
	cfg.applyDefaults()
	rep := PlanReport{
		GoVersion:      runtime.Version(),
		NumCPU:         runtime.NumCPU(),
		SingleCoreHost: runtime.NumCPU() == 1,
		Seed:           cfg.Seed,
		FanOut:         cfg.FanOut,
		Reps:           cfg.Reps,
	}
	for _, n := range cfg.Sizes {
		st, err := workload.RunPlanDeploy(workload.PlanDeploySpec{
			Components: n, FanOut: cfg.FanOut, Seed: cfg.Seed, Reps: cfg.Reps,
		})
		if err != nil {
			return PlanReport{}, fmt.Errorf("bench: plan deploy N=%d: %w", n, err)
		}
		row := PlanRow{
			Components:      st.Components,
			PerDescriptorNS: st.PerDescriptorWall.Nanoseconds(),
			EventBatchNS:    st.EventBatchWall.Nanoseconds(),
			PlanColdNS:      st.PlanColdWall.Nanoseconds(),
			PlanWarmNS:      st.PlanWarmWall.Nanoseconds(),
			DigestMatch:     st.DigestMatch,
			StateMatch:      st.StateMatch,
			PlanApplied:     st.PlanApplied,
			CacheHit:        st.CacheHit,
		}
		if row.PlanWarmNS > 0 {
			row.Speedup = float64(row.PerDescriptorNS) / float64(row.PlanWarmNS)
			row.BatchSpeedup = float64(row.EventBatchNS) / float64(row.PlanWarmNS)
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

// Validate rejects a report whose rows are not self-consistent: every
// row must have plan-applied with matching digests, or the walls are
// timing two different behaviours.
func (r PlanReport) Validate() error {
	if len(r.Rows) == 0 {
		return fmt.Errorf("bench: plan report has no rows")
	}
	for _, row := range r.Rows {
		if !row.DigestMatch {
			return fmt.Errorf("bench: plan apply diverged from the event path at N=%d", row.Components)
		}
		if !row.StateMatch {
			return fmt.Errorf("bench: per-descriptor deploys converged differently at N=%d", row.Components)
		}
		if !row.PlanApplied || !row.CacheHit {
			return fmt.Errorf("bench: plan fast path fell back at N=%d", row.Components)
		}
	}
	return nil
}

// Encode renders the report the way the committed BENCH_plan.json is
// stored: two-space indentation, trailing newline, human-diffable.
func (r PlanReport) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// FormatPlan renders the report for terminal output alongside the JSON.
func FormatPlan(r PlanReport) string {
	var b strings.Builder
	b.WriteString("Whole-bundle deploy — event path vs compiled plan\n")
	fmt.Fprintf(&b, "%10s %12s %12s %12s %12s %9s %7s\n",
		"components", "per-desc ms", "batch ms", "plan cold", "plan warm", "speedup", "match")
	for _, row := range r.Rows {
		match := "ok"
		if !row.DigestMatch || !row.StateMatch || !row.PlanApplied || !row.CacheHit {
			match = "DIVERGE"
		}
		fmt.Fprintf(&b, "%10d %12.3f %12.3f %12.3f %12.3f %8.1fx %7s\n",
			row.Components,
			float64(row.PerDescriptorNS)/1e6, float64(row.EventBatchNS)/1e6,
			float64(row.PlanColdNS)/1e6, float64(row.PlanWarmNS)/1e6,
			row.Speedup, match)
	}
	return b.String()
}
