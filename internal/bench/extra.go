package bench

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/rtos"
)

// SchedPolicyResult is one row of Ablation D (dispatcher discipline).
type SchedPolicyResult struct {
	Policy string
	Misses uint64
	Skips  uint64
	MaxLat int64
}

// AblationSchedPolicy runs the density-1.0 rate-inverted task set under
// fixed-priority (the paper's RTAI configuration) and EDF dispatch. FP
// cannot schedule the set with its declared priorities; EDF can — the
// run-time twin of Ablation C's admission-analysis crossover.
func AblationSchedPolicy(seed uint64, runFor time.Duration) ([]SchedPolicyResult, error) {
	noNoise := rtos.TimingModel{}
	run := func(pol rtos.SchedPolicy) (SchedPolicyResult, error) {
		k := rtos.NewKernel(rtos.Config{Seed: seed, Timing: &noNoise, Policy: pol})
		long, err := k.CreateTask(rtos.TaskSpec{
			Name: "long", Type: rtos.Periodic, Period: 10 * time.Millisecond,
			Priority: 1, ExecTime: 5 * time.Millisecond,
		})
		if err != nil {
			return SchedPolicyResult{}, err
		}
		short, err := k.CreateTask(rtos.TaskSpec{
			Name: "short", Type: rtos.Periodic, Period: 4 * time.Millisecond,
			Priority: 2, ExecTime: 2 * time.Millisecond,
		})
		if err != nil {
			return SchedPolicyResult{}, err
		}
		if err := long.Start(); err != nil {
			return SchedPolicyResult{}, err
		}
		if err := short.Start(); err != nil {
			return SchedPolicyResult{}, err
		}
		if err := k.Run(runFor); err != nil {
			return SchedPolicyResult{}, err
		}
		res := SchedPolicyResult{Policy: pol.String()}
		for _, task := range k.Tasks() {
			st := task.Stats()
			res.Misses += st.Misses
			res.Skips += st.Skips
			if st.Latency.Max > res.MaxLat {
				res.MaxLat = st.Latency.Max
			}
		}
		return res, nil
	}
	fp, err := run(rtos.FixedPriority)
	if err != nil {
		return nil, err
	}
	edf, err := run(rtos.EarliestDeadlineFirst)
	if err != nil {
		return nil, err
	}
	return []SchedPolicyResult{fp, edf}, nil
}

// FormatSchedPolicy renders Ablation D.
func FormatSchedPolicy(rows []SchedPolicyResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation D — dispatcher discipline on the density-1.0, rate-inverted set\n")
	fmt.Fprintf(&b, "%-6s %8s %8s %12s\n", "policy", "misses", "skips", "max-lat-ns")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s %8d %8d %12d\n", r.Policy, r.Misses, r.Skips, r.MaxLat)
	}
	return b.String()
}

// Timeline renders a DRCR event log as an ASCII per-component lifecycle
// timeline — the §4.3 process figures the paper had no page budget for
// ("Due to page limits, the figures of the whole process could not be
// list here").
func Timeline(events []core.Event) string {
	if len(events) == 0 {
		return "(no events)\n"
	}
	// Collect component order of first appearance.
	var names []string
	seen := map[string]bool{}
	for _, ev := range events {
		if !seen[ev.Component] {
			seen[ev.Component] = true
			names = append(names, ev.Component)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-8s %-13s %-13s %s\n", "time", "component", "from", "to", "reason")
	for _, ev := range events {
		fmt.Fprintf(&b, "%-12v %-8s %-13v %-13v %s\n",
			ev.At, ev.Component, ev.From, ev.To, ev.Reason)
	}
	// Compact per-component state strips.
	b.WriteString("\nstate strips (one column per event in log order):\n")
	glyph := map[core.State]byte{
		0:                '.',
		core.Disabled:    'd',
		core.Unsatisfied: 'u',
		core.Satisfied:   's',
		core.Active:      'A',
		core.Suspended:   'P',
		core.Destroyed:   'x',
	}
	cur := map[string]core.State{}
	strips := map[string][]byte{}
	for _, ev := range events {
		cur[ev.Component] = ev.To
		for _, n := range names {
			strips[n] = append(strips[n], glyph[cur[n]])
		}
	}
	for _, n := range names {
		fmt.Fprintf(&b, "  %-8s %s\n", n, strips[n])
	}
	b.WriteString("  legend: .=absent d=DISABLED u=UNSATISFIED s=SATISFIED A=ACTIVE P=SUSPENDED x=DESTROYED\n")
	return b.String()
}
