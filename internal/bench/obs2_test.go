package bench

import (
	"encoding/json"
	"testing"
	"time"
)

func TestMeasureObs2Small(t *testing.T) {
	rep, err := MeasureObs2(Obs2Config{
		RunFor: 300 * time.Millisecond, ClusterRunFor: 80 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("MeasureObs2: %v", err)
	}
	if err := rep.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if FormatObs2(rep) == "" {
		t.Error("FormatObs2 returned empty string")
	}
	// Riding inside an ObsReport, the section must survive a JSON
	// round-trip and keep the outer Validate green.
	outer, err := MeasureObs(ObsConfig{SimSeconds: 1, ChurnComponents: 40, ChurnSteps: 60})
	if err != nil {
		t.Fatalf("MeasureObs: %v", err)
	}
	outer.Obs2 = &rep
	enc, err := outer.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	var back ObsReport
	if err := json.Unmarshal(enc, &back); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if back.Obs2 == nil {
		t.Fatal("obs2 section lost in the round-trip")
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("Validate after round-trip: %v", err)
	}
}

func TestObs2ValidateRejectsBroken(t *testing.T) {
	rep, err := MeasureObs2(Obs2Config{
		RunFor: 300 * time.Millisecond, ClusterRunFor: 80 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("MeasureObs2: %v", err)
	}
	broken := rep
	broken.Rows = append([]Obs2ShardRow(nil), rep.Rows...)
	broken.Rows[2].DigestMatch = false
	if broken.Validate() == nil {
		t.Error("Validate accepted a digest mismatch")
	}
	broken = rep
	broken.Rows = rep.Rows[:3]
	if broken.Validate() == nil {
		t.Error("Validate accepted a missing shard row")
	}
	broken = rep
	broken.AllocsPerRecord = 1.5
	if broken.Validate() == nil {
		t.Error("Validate accepted an allocating record path")
	}
	broken = rep
	broken.Cluster.Repeatable = false
	if broken.Validate() == nil {
		t.Error("Validate accepted a non-repeatable stitched digest")
	}
	broken = rep
	broken.Latency = nil
	if broken.Validate() == nil {
		t.Error("Validate accepted an empty latency summary")
	}
}
