package bench

import (
	"strings"
	"testing"
)

func TestFaultCampaignAblation(t *testing.T) {
	rows, err := AblationFaults(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	g, u := rows[0], rows[1]
	if g.Config != "guarded" || u.Config != "unguarded" {
		t.Fatalf("row order = %s, %s", g.Config, u.Config)
	}
	if g.Violations == 0 || g.Revokes == 0 || !g.Recovered {
		t.Errorf("guarded row shows no enforcement: %+v", g)
	}
	if u.Violations != 0 || u.Revokes != 0 {
		t.Errorf("unguarded row shows enforcement: %+v", u)
	}
	if g.DispMaxAbs*2 >= u.DispMaxAbs {
		t.Errorf("no containment: guarded %d ns vs unguarded %d ns", g.DispMaxAbs, u.DispMaxAbs)
	}
	out := FormatFaults(rows)
	if !strings.Contains(out, "Ablation E") || !strings.Contains(out, "guarded trace digest:") {
		t.Errorf("format missing sections:\n%s", out)
	}
}
