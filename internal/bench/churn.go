package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"

	"repro/internal/workload"
)

// Resolve-churn benchmark: replays the same seeded lifecycle storm
// (workload.RunChurn) against the reference full-sweep resolve engine and
// the incremental worklist engine, at several population sizes. Every row
// doubles as a differential test — the two engines must produce identical
// event traces and final states, or the speedup is meaningless.

// ChurnConfig sizes MeasureChurn. The zero value selects the reference
// configuration the committed BENCH_resolve.json baseline uses.
type ChurnConfig struct {
	// Sizes are the component-population sizes (default 100, 1000, 5000).
	Sizes []int
	// Steps per storm; 0 auto-scales per size so the full-sweep side
	// finishes in reasonable wall time (≈150000/N, clamped to 30..1000).
	Steps int
	// Seed for the op storm and the simulated kernel (default 1).
	Seed int64
	// FanOut consumers per relay topic (default 3).
	FanOut int
}

func (c *ChurnConfig) applyDefaults() {
	if len(c.Sizes) == 0 {
		c.Sizes = []int{100, 1000, 5000}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.FanOut <= 0 {
		c.FanOut = 3
	}
}

// autoSteps keeps the O(N²·passes) full-sweep side from dominating the
// run at large N while still giving the worklist side enough ops to time.
func autoSteps(components int) int {
	s := 150000 / components
	if s < 30 {
		s = 30
	}
	if s > 1000 {
		s = 1000
	}
	return s
}

// ChurnRow compares the two engines at one population size.
type ChurnRow struct {
	Components         int     `json:"components"`
	Steps              int     `json:"steps"`
	Events             int     `json:"events"`
	FullSweepNS        int64   `json:"full_sweep_ns"`
	WorklistNS         int64   `json:"worklist_ns"`
	FullSweepOpsPerSec float64 `json:"full_sweep_ops_per_sec"`
	WorklistOpsPerSec  float64 `json:"worklist_ops_per_sec"`
	Speedup            float64 `json:"speedup"`
	// TraceMatch / StateMatch confirm the engines replayed identically.
	TraceMatch bool `json:"trace_match"`
	StateMatch bool `json:"state_match"`
}

// ChurnReport is the machine-readable snapshot cmd/latbench writes to
// BENCH_resolve.json, committed alongside BENCH_sim.json.
type ChurnReport struct {
	GoVersion string     `json:"go_version"`
	NumCPU    int        `json:"num_cpu"`
	Seed      int64      `json:"seed"`
	FanOut    int        `json:"fan_out"`
	Rows      []ChurnRow `json:"rows"`
}

// MeasureChurn runs the storm on both engines at every configured size.
func MeasureChurn(cfg ChurnConfig) (ChurnReport, error) {
	cfg.applyDefaults()
	rep := ChurnReport{
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Seed:      cfg.Seed,
		FanOut:    cfg.FanOut,
	}
	for _, n := range cfg.Sizes {
		steps := cfg.Steps
		if steps <= 0 {
			steps = autoSteps(n)
		}
		spec := workload.ChurnSpec{
			Components: n, FanOut: cfg.FanOut, Steps: steps, Seed: cfg.Seed,
		}
		spec.FullSweep = true
		ref, err := workload.RunChurn(spec)
		if err != nil {
			return ChurnReport{}, fmt.Errorf("bench: full-sweep churn N=%d: %w", n, err)
		}
		spec.FullSweep = false
		inc, err := workload.RunChurn(spec)
		if err != nil {
			return ChurnReport{}, fmt.Errorf("bench: worklist churn N=%d: %w", n, err)
		}
		row := ChurnRow{
			Components:  ref.Components,
			Steps:       steps,
			Events:      inc.Events,
			FullSweepNS: ref.StormWall.Nanoseconds(),
			WorklistNS:  inc.StormWall.Nanoseconds(),
			TraceMatch:  ref.TraceDigest == inc.TraceDigest,
			StateMatch:  ref.StateDigest == inc.StateDigest,
		}
		if row.FullSweepNS > 0 {
			row.FullSweepOpsPerSec = float64(steps) / ref.StormWall.Seconds()
		}
		if row.WorklistNS > 0 {
			row.WorklistOpsPerSec = float64(steps) / inc.StormWall.Seconds()
			row.Speedup = float64(row.FullSweepNS) / float64(row.WorklistNS)
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

// Encode renders the report the way the committed BENCH_resolve.json is
// stored: two-space indentation, trailing newline, human-diffable.
func (r ChurnReport) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// FormatChurn renders the report for terminal output alongside the JSON.
func FormatChurn(r ChurnReport) string {
	var b strings.Builder
	b.WriteString("Resolve churn — full-sweep vs incremental worklist\n")
	fmt.Fprintf(&b, "%10s %8s %14s %14s %9s %7s\n",
		"components", "steps", "sweep ops/s", "worklist ops/s", "speedup", "match")
	for _, row := range r.Rows {
		match := "ok"
		if !row.TraceMatch || !row.StateMatch {
			match = "DIVERGE"
		}
		fmt.Fprintf(&b, "%10d %8d %14.1f %14.1f %8.1fx %7s\n",
			row.Components, row.Steps,
			row.FullSweepOpsPerSec, row.WorklistOpsPerSec, row.Speedup, match)
	}
	return b.String()
}
