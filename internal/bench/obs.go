package bench

import (
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/rtos"
	"repro/internal/workload"
)

// Observability-overhead benchmark: the same reference workloads the
// committed baselines use — the 1 kHz kernel hot path and a resolve-churn
// storm — run once per sampling level, so the committed BENCH_obs.json
// quantifies what tracing costs at off, sampled (the default), and full
// (scheduler bridge attached). The fault campaign rides along to pin the
// seeded span digest the report is validated against.

// ObsConfig sizes MeasureObs. The zero value selects the reference
// configuration the committed BENCH_obs.json baseline uses.
type ObsConfig struct {
	// SimSeconds of virtual time per kernel hot-path run (default 5).
	SimSeconds int
	// ChurnComponents / ChurnSteps size the per-level storm
	// (default 200 / 400).
	ChurnComponents int
	ChurnSteps      int
	// Seed drives everything (default 1).
	Seed uint64
}

func (c *ObsConfig) applyDefaults() {
	if c.SimSeconds <= 0 {
		c.SimSeconds = 5
	}
	if c.ChurnComponents <= 0 {
		c.ChurnComponents = 200
	}
	if c.ChurnSteps <= 0 {
		c.ChurnSteps = 400
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// ObsLevelPerf measures one sampling level against both workloads.
type ObsLevelPerf struct {
	Level string `json:"level"`
	// Kernel is the 1 kHz hot-path measurement with a plane bound at this
	// level; at full the scheduler bridge is live on every dispatch.
	Kernel KernelPerf `json:"kernel"`
	// SchedSpans counts bridged scheduler events (zero below full).
	SchedSpans uint64 `json:"sched_spans"`
	// Churn timings for the seeded storm at this level.
	ChurnWallNS int64  `json:"churn_wall_ns"`
	ChurnSpans  uint64 `json:"churn_spans"`
	// ChurnObsDigest is the engine-comparable stream digest; it must be
	// identical across levels (round/sched internals never enter it).
	ChurnObsDigest string `json:"churn_obs_digest"`
}

// ObsCampaignPin is the seeded fault campaign's span-trace fingerprint.
type ObsCampaignPin struct {
	// SpanDigest is the full causal digest (IDs and cause edges included)
	// at the default level; Repeatable confirms a second run agreed.
	SpanDigest string `json:"span_digest"`
	SpanCount  uint64 `json:"span_count"`
	Repeatable bool   `json:"repeatable"`
}

// ObsReport is the machine-readable snapshot cmd/latbench writes to
// BENCH_obs.json, committed alongside the sim and resolve baselines.
type ObsReport struct {
	GoVersion  string         `json:"go_version"`
	NumCPU     int            `json:"num_cpu"`
	SimSeconds int            `json:"sim_seconds"`
	Seed       uint64         `json:"seed"`
	Levels     []ObsLevelPerf `json:"levels"`
	Campaign   ObsCampaignPin `json:"campaign"`
	// Obs2 is the federated-observability section (-obs2): per-shard
	// emission vs funnel, latency quantiles, stitched cluster digest.
	// Omitted until cmd/latbench -obs2json has merged it in.
	Obs2 *Obs2Report `json:"obs2,omitempty"`
}

// MeasureObs runs the reference workloads at every sampling level and
// pins the campaign span digest.
func MeasureObs(cfg ObsConfig) (ObsReport, error) {
	cfg.applyDefaults()
	rep := ObsReport{
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		SimSeconds: cfg.SimSeconds,
		Seed:       cfg.Seed,
	}
	for _, level := range []obs.Level{obs.Off, obs.Sampled, obs.Full} {
		lp, err := measureObsLevel(level, cfg)
		if err != nil {
			return ObsReport{}, fmt.Errorf("bench: obs level %s: %w", level, err)
		}
		rep.Levels = append(rep.Levels, lp)
	}

	first, err := workload.RunFaultCampaign(workload.FaultCampaignConfig{Seed: cfg.Seed, Guarded: true})
	if err != nil {
		return ObsReport{}, fmt.Errorf("bench: obs campaign: %w", err)
	}
	second, err := workload.RunFaultCampaign(workload.FaultCampaignConfig{Seed: cfg.Seed, Guarded: true})
	if err != nil {
		return ObsReport{}, fmt.Errorf("bench: obs campaign repeat: %w", err)
	}
	rep.Campaign = ObsCampaignPin{
		SpanDigest: first.SpanDigest,
		SpanCount:  first.SpanCount,
		Repeatable: first.SpanDigest == second.SpanDigest,
	}
	return rep, nil
}

// measureObsLevel reruns the measureKernel workload with a plane bound at
// the given level, then the churn storm at the same level.
func measureObsLevel(level obs.Level, cfg ObsConfig) (ObsLevelPerf, error) {
	lp := ObsLevelPerf{Level: level.String()}

	k := rtos.NewKernel(rtos.Config{Seed: cfg.Seed})
	plane := obs.NewPlane(obs.Options{Level: level})
	plane.BindKernel(k)
	task, err := k.CreateTask(rtos.TaskSpec{
		Name: "tick", Type: rtos.Periodic, Period: time.Millisecond,
		ExecTime: 30 * time.Microsecond,
	})
	if err != nil {
		return ObsLevelPerf{}, err
	}
	if err := task.Start(); err != nil {
		return ObsLevelPerf{}, err
	}
	if err := k.Run(time.Second); err != nil { // warm-up: pools fill here
		return ObsLevelPerf{}, err
	}
	startEvents := k.Clock().Fired()
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	wallStart := time.Now()
	if err := k.Run(time.Duration(cfg.SimSeconds) * time.Second); err != nil {
		return ObsLevelPerf{}, err
	}
	wall := time.Since(wallStart)
	runtime.ReadMemStats(&after)
	events := k.Clock().Fired() - startEvents
	lp.Kernel = KernelPerf{
		SimSeconds: float64(cfg.SimSeconds),
		Events:     events,
		WallNS:     wall.Nanoseconds(),
	}
	if events > 0 {
		lp.Kernel.EventsPerSec = float64(events) / wall.Seconds()
		lp.Kernel.NSPerEvent = float64(wall.Nanoseconds()) / float64(events)
		lp.Kernel.AllocsPerEvent = float64(after.Mallocs-before.Mallocs) / float64(events)
		lp.Kernel.BytesPerEvent = float64(after.TotalAlloc-before.TotalAlloc) / float64(events)
	}
	lp.SchedSpans = plane.Snapshot().Sched.Events

	stats, err := workload.RunChurn(workload.ChurnSpec{
		Components: cfg.ChurnComponents, Steps: cfg.ChurnSteps,
		Seed: int64(cfg.Seed), ObsLevel: level,
	})
	if err != nil {
		return ObsLevelPerf{}, err
	}
	lp.ChurnWallNS = stats.StormWall.Nanoseconds()
	lp.ChurnSpans = stats.Spans
	lp.ChurnObsDigest = stats.ObsDigest
	return lp, nil
}

// Validate checks the structural invariants a fresh or committed report
// must satisfy; cmd/latbench runs it after writing BENCH_obs.json, and
// the CI smoke runs it against the file latbench produced.
func (r ObsReport) Validate() error {
	if len(r.Levels) != 3 {
		return fmt.Errorf("obs report: %d levels, want 3 (off/sampled/full)", len(r.Levels))
	}
	byLevel := map[string]ObsLevelPerf{}
	for _, lp := range r.Levels {
		if lp.Kernel.Events == 0 {
			return fmt.Errorf("obs report: level %s measured no kernel events", lp.Level)
		}
		byLevel[lp.Level] = lp
	}
	for _, name := range []string{"off", "sampled", "full"} {
		if _, ok := byLevel[name]; !ok {
			return fmt.Errorf("obs report: level %q missing", name)
		}
	}
	if byLevel["full"].SchedSpans == 0 {
		return errors.New("obs report: full level bridged no scheduler events")
	}
	if byLevel["off"].SchedSpans != 0 || byLevel["sampled"].SchedSpans != 0 {
		return errors.New("obs report: scheduler bridge leaked below full level")
	}
	if byLevel["off"].ChurnSpans != 0 {
		return errors.New("obs report: off level emitted churn spans")
	}
	if byLevel["sampled"].ChurnSpans == 0 || byLevel["full"].ChurnSpans <= byLevel["sampled"].ChurnSpans {
		return fmt.Errorf("obs report: churn span counts out of order: sampled %d, full %d",
			byLevel["sampled"].ChurnSpans, byLevel["full"].ChurnSpans)
	}
	if byLevel["sampled"].ChurnObsDigest != byLevel["full"].ChurnObsDigest {
		return errors.New("obs report: stream digest differs between sampled and full")
	}
	if len(r.Campaign.SpanDigest) != 64 || r.Campaign.SpanCount == 0 {
		return fmt.Errorf("obs report: campaign pin incomplete: %+v", r.Campaign)
	}
	if !r.Campaign.Repeatable {
		return errors.New("obs report: campaign span digest not repeatable across runs")
	}
	if r.Obs2 != nil {
		if err := r.Obs2.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Encode renders the report the way the committed BENCH_obs.json is
// stored: two-space indentation, trailing newline, human-diffable.
func (r ObsReport) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// FormatObs renders the report for terminal output alongside the JSON.
func FormatObs(r ObsReport) string {
	var b strings.Builder
	b.WriteString("Observability overhead — kernel hot path and resolve churn per level\n")
	fmt.Fprintf(&b, "%8s %12s %12s %11s %12s %11s\n",
		"level", "ns/event", "allocs/ev", "sched", "churn ms", "spans")
	for _, lp := range r.Levels {
		fmt.Fprintf(&b, "%8s %12.1f %12.4f %11d %12.2f %11d\n",
			lp.Level, lp.Kernel.NSPerEvent, lp.Kernel.AllocsPerEvent,
			lp.SchedSpans, float64(lp.ChurnWallNS)/1e6, lp.ChurnSpans)
	}
	fmt.Fprintf(&b, "campaign span digest %s (%d spans, repeatable=%v)\n",
		r.Campaign.SpanDigest, r.Campaign.SpanCount, r.Campaign.Repeatable)
	return b.String()
}
