package bench

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

func TestAblationSchedPolicy(t *testing.T) {
	rows, err := AblationSchedPolicy(7, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Policy != "fp" || rows[1].Policy != "edf" {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].Misses+rows[0].Skips == 0 {
		t.Error("FP dispatched the rate-inverted set cleanly; crossover premise broken")
	}
	if rows[1].Misses+rows[1].Skips != 0 {
		t.Errorf("EDF violated %d contracts", rows[1].Misses+rows[1].Skips)
	}
	out := FormatSchedPolicy(rows)
	if !strings.Contains(out, "edf") || !strings.Contains(out, "fp") {
		t.Errorf("format:\n%s", out)
	}
}

func TestTimelineRender(t *testing.T) {
	res, err := workload.RunDynamicityScenario(3)
	if err != nil {
		t.Fatal(err)
	}
	out := Timeline(res.Events)
	for _, want := range []string{"calc", "disp", "ACTIVE", "state strips", "legend"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
	// Display's strip must show the unsatisfied → active → unsatisfied →
	// active arc of §4.3.
	var dispStrip string
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "disp") && strings.Contains(line, "u") {
			dispStrip = line
		}
	}
	if !strings.Contains(dispStrip, "A") || !strings.Contains(dispStrip, "u") {
		t.Errorf("disp strip uninformative: %q", dispStrip)
	}
	if got := Timeline(nil); !strings.Contains(got, "no events") {
		t.Errorf("empty timeline = %q", got)
	}
	_ = core.Active // keep the import honest if assertions change
}
