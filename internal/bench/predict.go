package bench

import (
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"strings"

	"repro/internal/sim"
	"repro/internal/workload"
)

// Predictive-admission benchmark: the seeded execution-time drift run
// twice — once under the reactive guard (measure, confirm, step down)
// and once with the forecasting estimator on top (project the trend,
// step down before the miss). The committed BENCH_predict.json pins the
// headline claim — strictly fewer hard deadline misses at equal or
// better availability — plus byte-determinism across shard counts.

// PredictBenchConfig sizes MeasurePredict. The zero value selects the
// reference configuration the committed baseline uses.
type PredictBenchConfig struct {
	// Seed drives everything (default 1).
	Seed uint64
}

func (c *PredictBenchConfig) applyDefaults() {
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// PredictVariant is one ablation arm (reactive or predictive).
type PredictVariant struct {
	Variant string `json:"variant"` // "reactive" | "predictive"
	// HardMisses is calc's deadline misses + skipped releases across the
	// run; FirstMissMS is when the first landed (negative: never).
	HardMisses  uint64  `json:"hard_misses"`
	FirstMissMS float64 `json:"first_miss_ms"`
	// ForecastMS is when the estimator first forecast the violation
	// (negative: never — always negative in the reactive arm).
	ForecastMS float64 `json:"forecast_ms"`
	// Availability is calc's fraction of the run spent ACTIVE.
	Availability      float64 `json:"availability"`
	Downgrades        int     `json:"downgrades"`
	PredictDowngrades int     `json:"predict_downgrades"`
	Revokes           int     `json:"revokes"`
	// StreamDigest is the ID-free span-stream digest (shard-comparable);
	// ShardInvariant confirms shard counts 1 and 4 reproduced it.
	StreamDigest   string `json:"stream_digest"`
	SpanCount      uint64 `json:"span_count"`
	ShardInvariant bool   `json:"shard_invariant"`
}

// PredictReport is the machine-readable snapshot cmd/latbench writes to
// BENCH_predict.json.
type PredictReport struct {
	GoVersion string           `json:"go_version"`
	NumCPU    int              `json:"num_cpu"`
	Seed      uint64           `json:"seed"`
	Variants  []PredictVariant `json:"variants"`
	// Repeatable confirms a second predictive run reproduced the digest.
	Repeatable bool `json:"repeatable"`
}

// MeasurePredict runs the drift campaign in both guard configurations,
// then re-runs each arm at shard counts 1 and 4 to pin digest
// invariance.
func MeasurePredict(cfg PredictBenchConfig) (PredictReport, error) {
	cfg.applyDefaults()
	rep := PredictReport{
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Seed:      cfg.Seed,
	}
	ms := func(t sim.Time) float64 {
		if t == 0 {
			return -1
		}
		return float64(t) / 1e6
	}
	var predictiveDigest string
	for _, predictive := range []bool{false, true} {
		base := workload.PredictConfig{Seed: cfg.Seed, Predictive: predictive}
		res, err := workload.RunPredictCampaign(base)
		if err != nil {
			return PredictReport{}, fmt.Errorf("bench: predict campaign (predictive=%v): %w", predictive, err)
		}
		v := PredictVariant{
			Variant:           "reactive",
			HardMisses:        res.HardMisses,
			FirstMissMS:       ms(res.FirstMissAt),
			ForecastMS:        ms(res.ForecastAt),
			Availability:      res.Availability,
			Downgrades:        res.Downgrades,
			PredictDowngrades: res.PredictDowngrades,
			Revokes:           res.Revokes,
			StreamDigest:      res.StreamDigest,
			SpanCount:         res.SpanCount,
			ShardInvariant:    true,
		}
		if predictive {
			v.Variant = "predictive"
			predictiveDigest = res.StreamDigest
		}
		for _, shards := range []int{1, 4} {
			sharded := base
			sharded.Shards = shards
			again, err := workload.RunPredictCampaign(sharded)
			if err != nil {
				return PredictReport{}, fmt.Errorf("bench: predict campaign (predictive=%v, shards=%d): %w",
					predictive, shards, err)
			}
			if again.StreamDigest != res.StreamDigest || again.HardMisses != res.HardMisses {
				v.ShardInvariant = false
			}
		}
		rep.Variants = append(rep.Variants, v)
	}
	again, err := workload.RunPredictCampaign(workload.PredictConfig{Seed: cfg.Seed, Predictive: true})
	if err != nil {
		return PredictReport{}, fmt.Errorf("bench: predict campaign repeat: %w", err)
	}
	rep.Repeatable = again.StreamDigest == predictiveDigest
	return rep, nil
}

// Validate checks the invariants a fresh or committed report must
// satisfy; cmd/latbench runs it after writing BENCH_predict.json, and
// the CI smoke runs it against the committed file.
func (r PredictReport) Validate() error {
	if len(r.Variants) != 2 {
		return fmt.Errorf("predict report: %d variants, want 2 (reactive/predictive)", len(r.Variants))
	}
	byName := map[string]PredictVariant{}
	for _, v := range r.Variants {
		if len(v.StreamDigest) != 64 || v.SpanCount == 0 {
			return fmt.Errorf("predict report: variant %s span pin incomplete", v.Variant)
		}
		if !v.ShardInvariant {
			return fmt.Errorf("predict report: variant %s digests depend on the shard count", v.Variant)
		}
		byName[v.Variant] = v
	}
	reactive, ok := byName["reactive"]
	if !ok {
		return errors.New("predict report: reactive variant missing")
	}
	predictive, ok := byName["predictive"]
	if !ok {
		return errors.New("predict report: predictive variant missing")
	}
	if reactive.HardMisses == 0 {
		return errors.New("predict report: reactive baseline recorded no hard misses; the drift is not biting")
	}
	if predictive.HardMisses >= reactive.HardMisses {
		return fmt.Errorf("predict report: predictive misses %d not strictly below reactive %d",
			predictive.HardMisses, reactive.HardMisses)
	}
	if predictive.Availability < reactive.Availability {
		return fmt.Errorf("predict report: predictive availability %.4f below reactive %.4f",
			predictive.Availability, reactive.Availability)
	}
	if predictive.ForecastMS < 0 || predictive.PredictDowngrades == 0 {
		return fmt.Errorf("predict report: predictive arm never forecast: %+v", predictive)
	}
	if reactive.ForecastMS >= 0 || reactive.PredictDowngrades != 0 {
		return fmt.Errorf("predict report: reactive arm forecast: %+v", reactive)
	}
	if reactive.FirstMissMS >= 0 && predictive.ForecastMS >= reactive.FirstMissMS {
		return fmt.Errorf("predict report: forecast at %.1f ms not before the reactive first miss at %.1f ms",
			predictive.ForecastMS, reactive.FirstMissMS)
	}
	if !r.Repeatable {
		return errors.New("predict report: stream digest not repeatable across runs")
	}
	return nil
}

// Encode renders the report the way the committed BENCH_predict.json is
// stored: two-space indentation, trailing newline, human-diffable.
func (r PredictReport) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// FormatPredict renders the report for terminal output.
func FormatPredict(r PredictReport) string {
	var b strings.Builder
	b.WriteString("Predictive admission — same drift, reactive vs forecasting guard\n")
	fmt.Fprintf(&b, "%11s %7s %14s %12s %6s %5s %6s %4s %7s\n",
		"variant", "misses", "first-miss-ms", "forecast-ms", "avail", "down", "p-down", "rev", "shards")
	for _, v := range r.Variants {
		fmt.Fprintf(&b, "%11s %7d %14.1f %12.1f %6.3f %5d %6d %4d %7v\n",
			v.Variant, v.HardMisses, v.FirstMissMS, v.ForecastMS, v.Availability,
			v.Downgrades, v.PredictDowngrades, v.Revokes, v.ShardInvariant)
	}
	fmt.Fprintf(&b, "repeatable=%v\n", r.Repeatable)
	return b.String()
}
