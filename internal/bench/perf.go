package bench

import (
	"encoding/json"
	"runtime"
	"time"

	"repro/internal/metrics"
	"repro/internal/rtos"
	"repro/internal/workload"
)

// PerfReport is the machine-readable benchmark snapshot cmd/latbench
// writes to BENCH_sim.json. Successive revisions commit their baseline so
// the repository carries a performance trajectory that regressions can be
// compared against.
type PerfReport struct {
	// GoVersion and NumCPU describe the measuring environment.
	GoVersion string `json:"go_version"`
	NumCPU    int    `json:"num_cpu"`
	// Workers is the goroutine-pool size used for the Monte-Carlo part.
	Workers int `json:"workers"`
	// Shards is the kernel shard count of the hot-path run (1 = the
	// sequential engine; BENCH_shard.json carries the scaling sweep).
	Shards int `json:"shards"`
	// Kernel is the single-threaded hot-path measurement.
	Kernel KernelPerf `json:"kernel"`
	// MonteCarlo is the parallel-harness measurement.
	MonteCarlo MonteCarloPerf `json:"montecarlo"`
}

// KernelPerf measures the simulation hot path with the reference workload
// of BenchmarkKernelThroughput: a 1 kHz periodic task run for SimSeconds
// of virtual time on one OS thread.
type KernelPerf struct {
	SimSeconds     float64 `json:"sim_seconds"`
	Events         uint64  `json:"events"`
	WallNS         int64   `json:"wall_ns"`
	EventsPerSec   float64 `json:"events_per_sec"`
	NSPerEvent     float64 `json:"ns_per_event"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
	BytesPerEvent  float64 `json:"bytes_per_event"`
}

// MonteCarloPerf measures the parallel Monte-Carlo harness: Runs
// independent seeded §4.2 latency systems (HRC, light load) fanned across
// the worker pool, with every sample pooled into Aggregate.
type MonteCarloPerf struct {
	Runs          int     `json:"runs"`
	SamplesPerRun int     `json:"samples_per_run"`
	BaseSeed      uint64  `json:"base_seed"`
	WallNS        int64   `json:"wall_ns"`
	AggregateAvg  float64 `json:"aggregate_avg_ns"`
	AggregateDev  float64 `json:"aggregate_avedev_ns"`
	AggregateMin  int64   `json:"aggregate_min_ns"`
	AggregateMax  int64   `json:"aggregate_max_ns"`
	AggregateN    int     `json:"aggregate_n"`
}

// PerfConfig sizes MeasurePerf. The zero value selects the reference
// configuration the committed BENCH_sim.json baseline uses.
type PerfConfig struct {
	// SimSeconds of virtual time for the kernel hot-path run (default 20).
	SimSeconds int
	// Runs of the latency workload for the Monte-Carlo run (default 8).
	Runs int
	// SamplesPerRun per seeded system (default 10000).
	SamplesPerRun int
	// BaseSeed for the Monte-Carlo seed range (default 1).
	BaseSeed uint64
	// Workers for the goroutine pool (default runtime.NumCPU()).
	Workers int
	// Shards for the kernel hot-path run (default 1, the sequential
	// engine the baseline has always measured).
	Shards int
}

func (c *PerfConfig) applyDefaults() {
	if c.SimSeconds <= 0 {
		c.SimSeconds = 20
	}
	if c.Runs <= 0 {
		c.Runs = 8
	}
	if c.SamplesPerRun <= 0 {
		c.SamplesPerRun = 10000
	}
	if c.BaseSeed == 0 {
		c.BaseSeed = 1
	}
	if c.Workers <= 0 {
		c.Workers = DefaultWorkers()
	}
	if c.Shards <= 0 {
		c.Shards = 1
	}
}

// MeasurePerf runs both reference workloads and assembles the report.
func MeasurePerf(cfg PerfConfig) (PerfReport, error) {
	cfg.applyDefaults()
	rep := PerfReport{
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Workers:   cfg.Workers,
		Shards:    cfg.Shards,
	}
	kp, err := measureKernel(cfg.SimSeconds, cfg.Shards)
	if err != nil {
		return PerfReport{}, err
	}
	rep.Kernel = kp
	mp, err := measureMonteCarlo(cfg)
	if err != nil {
		return PerfReport{}, err
	}
	rep.MonteCarlo = mp
	return rep, nil
}

// measureKernel drives the BenchmarkKernelThroughput workload for
// simSeconds of virtual time, reading alloc counters around the run. A
// one-second warm-up fills the event and job pools first so the numbers
// reflect the allocation-free steady state.
func measureKernel(simSeconds, shards int) (KernelPerf, error) {
	k := rtos.NewKernel(rtos.Config{Seed: 1, NumCPUs: shards, Shards: shards})
	task, err := k.CreateTask(rtos.TaskSpec{
		Name: "tick", Type: rtos.Periodic, Period: time.Millisecond,
		ExecTime: 30 * time.Microsecond,
	})
	if err != nil {
		return KernelPerf{}, err
	}
	if err := task.Start(); err != nil {
		return KernelPerf{}, err
	}
	if err := k.Run(time.Second); err != nil { // warm-up: pools fill here
		return KernelPerf{}, err
	}
	startEvents := k.EventsFired()
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	wallStart := time.Now()
	if err := k.Run(time.Duration(simSeconds) * time.Second); err != nil {
		return KernelPerf{}, err
	}
	wall := time.Since(wallStart)
	runtime.ReadMemStats(&after)
	events := k.EventsFired() - startEvents
	kp := KernelPerf{
		SimSeconds: float64(simSeconds),
		Events:     events,
		WallNS:     wall.Nanoseconds(),
	}
	if events > 0 {
		kp.EventsPerSec = float64(events) / wall.Seconds()
		kp.NSPerEvent = float64(wall.Nanoseconds()) / float64(events)
		kp.AllocsPerEvent = float64(after.Mallocs-before.Mallocs) / float64(events)
		kp.BytesPerEvent = float64(after.TotalAlloc-before.TotalAlloc) / float64(events)
	}
	return kp, nil
}

func measureMonteCarlo(cfg PerfConfig) (MonteCarloPerf, error) {
	lat := workload.LatencyConfig{Hybrid: true, Samples: cfg.SamplesPerRun}
	wallStart := time.Now()
	_, row, err := MonteCarloLatency(lat, cfg.Runs, cfg.BaseSeed, cfg.Workers)
	if err != nil {
		return MonteCarloPerf{}, err
	}
	wall := time.Since(wallStart)
	return MonteCarloPerf{
		Runs:          cfg.Runs,
		SamplesPerRun: cfg.SamplesPerRun,
		BaseSeed:      cfg.BaseSeed,
		WallNS:        wall.Nanoseconds(),
		AggregateAvg:  row.Average,
		AggregateDev:  row.AveDev,
		AggregateMin:  row.Min,
		AggregateMax:  row.Max,
		AggregateN:    row.N,
	}, nil
}

// Encode renders the report the way the committed BENCH_sim.json is
// stored: two-space indentation, trailing newline, human-diffable.
func (r PerfReport) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// FormatPerf renders the report for terminal output alongside the JSON.
func FormatPerf(r PerfReport) string {
	rows := []metrics.Row{{
		Label:   "montecarlo aggregate",
		Average: r.MonteCarlo.AggregateAvg,
		AveDev:  r.MonteCarlo.AggregateDev,
		Min:     r.MonteCarlo.AggregateMin,
		Max:     r.MonteCarlo.AggregateMax,
		N:       r.MonteCarlo.AggregateN,
	}}
	return metrics.FormatTable("Monte-Carlo pooled latency — ns", rows)
}
