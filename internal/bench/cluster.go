package bench

// Cluster-scaling sweep: the federated engine measured over a ladder of
// node counts and partition rates. Each point runs the same per-node
// producer→consumer workload (producer on node i feeds a consumer on
// node i+1, so every wiring crosses the network), advancing all nodes
// in lockstep conservative windows. cmd/latbench writes the committed
// BENCH_cluster.json from this.

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/descriptor"
	"repro/internal/rtos"
	"repro/internal/sim"
)

// ClusterPoint is one rung of the sweep.
type ClusterPoint struct {
	Nodes int `json:"nodes"`
	// PartitionRate is the scheduled cuts per simulated second (each cut
	// isolates the lower half for half the cut interval).
	PartitionRate float64 `json:"partition_rate"`
	SimSeconds    float64 `json:"sim_seconds"`
	// Events sums kernel events fired across all node kernels.
	Events       uint64  `json:"events"`
	WallNS       int64   `json:"wall_ns"`
	EventsPerSec float64 `json:"events_per_sec"`
	NSPerEvent   float64 `json:"ns_per_event"`
	// Barriers is the number of lockstep windows executed.
	Barriers uint64 `json:"barriers"`
	// Sent/Delivered/Dropped are the network ledger totals.
	Sent      uint64 `json:"msgs_sent"`
	Delivered uint64 `json:"msgs_delivered"`
	Dropped   uint64 `json:"msgs_dropped"`
	// Converged reports whether the global view was stable at the end.
	Converged bool `json:"converged"`
}

// ClusterReport is the machine-readable federation scaling snapshot.
type ClusterReport struct {
	GoVersion string `json:"go_version"`
	// NumCPU is the real core count of the measuring machine; with
	// SingleCoreHost true, node windows cannot actually overlap and
	// per-node throughput is expected to fall as nodes are added.
	NumCPU         int  `json:"num_cpu"`
	SingleCoreHost bool `json:"single_core_host"`
	// CPUsPerNode is the simulated processor count of each node.
	CPUsPerNode int            `json:"cpus_per_node"`
	Points      []ClusterPoint `json:"points"`
}

// ClusterBenchConfig sizes MeasureCluster. The zero value selects the
// reference configuration committed as BENCH_cluster.json.
type ClusterBenchConfig struct {
	// SimMillis of virtual time per rung (default 500).
	SimMillis int
	// NodeCounts is the cluster-size ladder (default 1,2,4,8,16).
	NodeCounts []int
	// PartitionRates are the cut frequencies swept per node count, in
	// cuts per simulated second (default 0 and 4).
	PartitionRates []float64
	// CPUsPerNode is the per-node simulated CPU count (default 1).
	CPUsPerNode int
	// Parallel advances node windows on real threads.
	Parallel bool
}

func (c *ClusterBenchConfig) applyDefaults() {
	if c.SimMillis <= 0 {
		c.SimMillis = 500
	}
	if len(c.NodeCounts) == 0 {
		c.NodeCounts = []int{1, 2, 4, 8, 16}
	}
	if len(c.PartitionRates) == 0 {
		c.PartitionRates = []float64{0, 4}
	}
	if c.CPUsPerNode <= 0 {
		c.CPUsPerNode = 1
	}
}

// MeasureCluster runs the ladder.
func MeasureCluster(cfg ClusterBenchConfig) (ClusterReport, error) {
	cfg.applyDefaults()
	rep := ClusterReport{
		GoVersion:      runtime.Version(),
		NumCPU:         runtime.NumCPU(),
		SingleCoreHost: runtime.NumCPU() == 1,
		CPUsPerNode:    cfg.CPUsPerNode,
	}
	for _, nodes := range cfg.NodeCounts {
		for _, rate := range cfg.PartitionRates {
			pt, err := measureClusterPoint(nodes, rate, cfg)
			if err != nil {
				return ClusterReport{}, err
			}
			rep.Points = append(rep.Points, pt)
		}
	}
	return rep, nil
}

func measureClusterPoint(nodes int, rate float64, cfg ClusterBenchConfig) (ClusterPoint, error) {
	c, err := cluster.New(cluster.Config{
		Nodes:    nodes,
		NumCPUs:  cfg.CPUsPerNode,
		Seed:     1,
		Parallel: cfg.Parallel,
	})
	if err != nil {
		return ClusterPoint{}, err
	}
	defer c.Close()
	if err := c.RegisterBody("bench.cluster.Prod", func(d *descriptor.Component) rtos.Body {
		topic := d.OutPorts[0].Name
		return func(j *rtos.JobContext) {
			if shm, err := j.Kernel.IPC().SHM(topic); err == nil {
				_ = shm.Set(int(j.Index%4), int64(j.Index))
			}
		}
	}); err != nil {
		return ClusterPoint{}, err
	}
	if err := c.RegisterBody("bench.cluster.Cons", func(*descriptor.Component) rtos.Body {
		return func(*rtos.JobContext) {}
	}); err != nil {
		return ClusterPoint{}, err
	}
	for i := 0; i < nodes; i++ {
		topic := fmt.Sprintf("b%d", i)
		prod := fmt.Sprintf(`<component name="pr%d" desc="producer" type="periodic" cpuusage="0.05">
  <implementation bincode="bench.cluster.Prod"/>
  <periodictask frequence="1000" runoncup="0" priority="3"/>
  <outport name=%q interface="RTAI.SHM" type="Integer" size="4"/>
</component>`, i, topic)
		cons := fmt.Sprintf(`<component name="co%d" desc="consumer" type="periodic" cpuusage="0.05">
  <implementation bincode="bench.cluster.Cons"/>
  <periodictask frequence="500" runoncup="0" priority="4"/>
  <inport name=%q interface="RTAI.SHM" type="Integer" size="4"/>
</component>`, i, topic)
		if err := c.DeployXMLOn(i, prod); err != nil {
			return ClusterPoint{}, err
		}
		if err := c.DeployXMLOn((i+1)%nodes, cons); err != nil {
			return ClusterPoint{}, err
		}
	}
	simFor := time.Duration(cfg.SimMillis) * time.Millisecond
	const warmup = 50 * time.Millisecond
	if rate > 0 && nodes > 1 {
		interval := time.Duration(float64(time.Second) / rate)
		if interval > simFor {
			interval = simFor // at least one cut even on short rungs
		}
		side := make([]int, nodes/2)
		for i := range side {
			side[i] = i
		}
		for at := warmup + interval/2; at < warmup+simFor; at += interval {
			c.Net().SchedulePartition(sim.Time(0).Add(sim.Duration(at)), interval/2, side...)
		}
	}
	// Warm-up outside the measurement window.
	if err := c.Run(warmup); err != nil {
		return ClusterPoint{}, err
	}
	start := eventsFired(c)
	wallStart := time.Now()
	if err := c.Run(simFor); err != nil {
		return ClusterPoint{}, err
	}
	wall := time.Since(wallStart)
	events := eventsFired(c) - start
	// Unmeasured settle: convergence is judged after heartbeats and
	// reports have had time to flow again post-heal.
	if err := c.Run(warmup); err != nil {
		return ClusterPoint{}, err
	}
	pt := ClusterPoint{
		Nodes:         nodes,
		PartitionRate: rate,
		SimSeconds:    simFor.Seconds(),
		Events:        events,
		WallNS:        wall.Nanoseconds(),
		Barriers:      uint64(simFor / c.Step()),
		Converged:     c.Converged(),
	}
	if events > 0 {
		pt.EventsPerSec = float64(events) / wall.Seconds()
		pt.NSPerEvent = float64(wall.Nanoseconds()) / float64(events)
	}
	st := c.Net().Stats()
	pt.Sent, pt.Delivered, pt.Dropped = st.Sent, st.Delivered, st.Dropped
	return pt, nil
}

func eventsFired(c *cluster.Cluster) uint64 {
	var total uint64
	for i := 0; i < c.Nodes(); i++ {
		total += c.Node(i).Kernel().EventsFired()
	}
	return total
}

// Encode renders the report the way the committed BENCH_cluster.json is
// stored: two-space indentation, trailing newline, human-diffable.
func (r ClusterReport) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// FormatCluster renders the sweep as a terminal table.
func FormatCluster(r ClusterReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Cluster scaling — %d CPUs/node on %d real cores (%s)\n",
		r.CPUsPerNode, r.NumCPU, r.GoVersion)
	fmt.Fprintf(&b, "%6s %10s %14s %12s %10s %10s %10s %10s\n",
		"nodes", "cuts/sec", "events/sec", "ns/event", "sent", "delivered", "dropped", "converged")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%6d %10.1f %14.0f %12.1f %10d %10d %10d %10v\n",
			p.Nodes, p.PartitionRate, p.EventsPerSec, p.NSPerEvent, p.Sent, p.Delivered, p.Dropped, p.Converged)
	}
	return b.String()
}
