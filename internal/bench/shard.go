package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro/internal/rtos"
)

// Shard-scaling sweep: the same multi-CPU kernel workload measured at a
// ladder of shard counts, quantifying what the windowed parallel engine
// (rtos.Config.Shards) buys on the measuring machine. cmd/latbench
// writes the committed BENCH_shard.json from this.

// ShardPoint is one rung of the sweep.
type ShardPoint struct {
	Shards         int     `json:"shards"`
	SimSeconds     float64 `json:"sim_seconds"`
	Events         uint64  `json:"events"`
	WallNS         int64   `json:"wall_ns"`
	EventsPerSec   float64 `json:"events_per_sec"`
	NSPerEvent     float64 `json:"ns_per_event"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
	// Speedup is EventsPerSec relative to the 1-shard rung.
	Speedup float64 `json:"speedup"`
}

// ShardReport is the machine-readable scaling snapshot.
type ShardReport struct {
	GoVersion string `json:"go_version"`
	// NumCPU is the real core count of the measuring machine — the hard
	// ceiling on any parallel speedup. SimCPUs is the simulated CPU
	// count of the workload (one 1 kHz task per simulated CPU).
	NumCPU  int `json:"num_cpu"`
	SimCPUs int `json:"sim_cpus"`
	// SingleCoreHost makes the standing caveat machine-readable: on a
	// one-core container the parallel engine cannot beat the sequential
	// one, so speedups ≤ 1× are expected and not a regression.
	SingleCoreHost bool         `json:"single_core_host"`
	Points         []ShardPoint `json:"points"`
}

// ShardConfig sizes MeasureShardScaling. The zero value selects the
// reference configuration committed as BENCH_shard.json.
type ShardConfig struct {
	// SimSeconds of virtual time per rung (default 10).
	SimSeconds int
	// SimCPUs is the simulated CPU count (default 16).
	SimCPUs int
	// Counts is the shard ladder (default 1,2,4,8,16; clamped to SimCPUs).
	Counts []int
}

func (c *ShardConfig) applyDefaults() {
	if c.SimSeconds <= 0 {
		c.SimSeconds = 10
	}
	if c.SimCPUs <= 0 {
		c.SimCPUs = 16
	}
	if len(c.Counts) == 0 {
		c.Counts = []int{1, 2, 4, 8, 16}
	}
}

// MeasureShardScaling runs the ladder. Every rung executes the identical
// seeded workload — the scheduler traces are equal by the sharding
// determinism contract — so events vary only with the rung's engine
// bookkeeping and wall time is the only real variable.
func MeasureShardScaling(cfg ShardConfig) (ShardReport, error) {
	cfg.applyDefaults()
	rep := ShardReport{
		GoVersion:      runtime.Version(),
		NumCPU:         runtime.NumCPU(),
		SimCPUs:        cfg.SimCPUs,
		SingleCoreHost: runtime.NumCPU() == 1,
	}
	for _, n := range cfg.Counts {
		if n > cfg.SimCPUs {
			n = cfg.SimCPUs
		}
		pt, err := measureShardPoint(cfg.SimCPUs, n, cfg.SimSeconds)
		if err != nil {
			return ShardReport{}, err
		}
		if len(rep.Points) > 0 && rep.Points[0].EventsPerSec > 0 {
			pt.Speedup = pt.EventsPerSec / rep.Points[0].EventsPerSec
		} else {
			pt.Speedup = 1
		}
		rep.Points = append(rep.Points, pt)
	}
	return rep, nil
}

// measureShardPoint measures one rung: simCPUs 1 kHz periodic tasks (the
// BenchmarkKernelThroughput task replicated per CPU) run sharded for
// simSeconds of virtual time after a one-second pool warm-up.
func measureShardPoint(simCPUs, shards, simSeconds int) (ShardPoint, error) {
	k := rtos.NewKernel(rtos.Config{NumCPUs: simCPUs, Shards: shards, Seed: 1})
	for c := 0; c < simCPUs; c++ {
		task, err := k.CreateTask(rtos.TaskSpec{
			Name: fmt.Sprintf("tk%02d", c), Type: rtos.Periodic, CPU: c,
			Period: time.Millisecond, ExecTime: 30 * time.Microsecond,
		})
		if err != nil {
			return ShardPoint{}, err
		}
		if err := task.Start(); err != nil {
			return ShardPoint{}, err
		}
	}
	if err := k.Run(time.Second); err != nil { // warm-up: pools fill here
		return ShardPoint{}, err
	}
	startEvents := k.EventsFired()
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	wallStart := time.Now()
	if err := k.Run(time.Duration(simSeconds) * time.Second); err != nil {
		return ShardPoint{}, err
	}
	wall := time.Since(wallStart)
	runtime.ReadMemStats(&after)
	events := k.EventsFired() - startEvents
	pt := ShardPoint{
		Shards:     k.Shards(),
		SimSeconds: float64(simSeconds),
		Events:     events,
		WallNS:     wall.Nanoseconds(),
	}
	if events > 0 {
		pt.EventsPerSec = float64(events) / wall.Seconds()
		pt.NSPerEvent = float64(wall.Nanoseconds()) / float64(events)
		pt.AllocsPerEvent = float64(after.Mallocs-before.Mallocs) / float64(events)
	}
	return pt, nil
}

// Encode renders the report the way the committed BENCH_shard.json is
// stored: two-space indentation, trailing newline, human-diffable.
func (r ShardReport) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// FormatShard renders the sweep as a terminal table.
func FormatShard(r ShardReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Shard scaling — %d simulated CPUs on %d real cores (%s)\n",
		r.SimCPUs, r.NumCPU, r.GoVersion)
	fmt.Fprintf(&b, "%8s %14s %12s %14s %8s\n",
		"shards", "events/sec", "ns/event", "allocs/event", "speedup")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%8d %14.0f %12.1f %14.5f %7.2fx\n",
			p.Shards, p.EventsPerSec, p.NSPerEvent, p.AllocsPerEvent, p.Speedup)
	}
	return b.String()
}
