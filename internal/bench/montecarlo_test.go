package bench

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/workload"
)

// TestMonteCarloWorkerIndependence demands identical merged results for
// any worker count: the whole point of per-seed Systems is that goroutine
// interleave cannot leak into the output.
func TestMonteCarloWorkerIndependence(t *testing.T) {
	cfg := workload.LatencyConfig{Hybrid: true, Samples: 500}
	const runs = 4
	seq, seqRow, err := MonteCarloLatency(cfg, runs, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, parRow, err := MonteCarloLatency(cfg, runs, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seqRow, parRow) {
		t.Errorf("pooled row diverged:\n  workers=1 %+v\n  workers=4 %+v", seqRow, parRow)
	}
	for i := range seq {
		if !reflect.DeepEqual(seq[i].Row, par[i].Row) {
			t.Errorf("seed %d row diverged between worker counts", 1+uint64(i))
		}
	}
}

// TestMonteCarloErrorReportsFirstSeed pins deterministic error selection:
// whichever goroutine fails first in wall time, the reported seed is the
// lowest failing one.
func TestMonteCarloErrorReportsFirstSeed(t *testing.T) {
	boom := errors.New("boom")
	_, err := MonteCarlo(8, 10, 4, func(seed uint64) (int, error) {
		if seed >= 12 {
			return 0, boom
		}
		return int(seed), nil
	})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if want := "seed 12"; !strings.Contains(err.Error(), want) {
		t.Errorf("err = %q, want mention of %q", err, want)
	}
}

// TestTable1ParallelMatchesSequential checks the concurrent Table 1
// produces byte-identical output to the sequential path.
func TestTable1ParallelMatchesSequential(t *testing.T) {
	const samples = 400
	seqOut, seqRows, err := Table1(samples, 1)
	if err != nil {
		t.Fatal(err)
	}
	parOut, parRows, err := Table1Parallel(samples, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if seqOut != parOut {
		t.Errorf("rendered tables differ:\n--- sequential\n%s\n--- parallel\n%s", seqOut, parOut)
	}
	if !reflect.DeepEqual(seqRows, parRows) {
		t.Errorf("rows differ between sequential and parallel Table 1")
	}
}
