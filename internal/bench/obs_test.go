package bench

import (
	"encoding/json"
	"testing"
)

func TestMeasureObsSmall(t *testing.T) {
	rep, err := MeasureObs(ObsConfig{SimSeconds: 1, ChurnComponents: 40, ChurnSteps: 60})
	if err != nil {
		t.Fatalf("MeasureObs: %v", err)
	}
	if err := rep.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	enc, err := rep.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	var back ObsReport
	if err := json.Unmarshal(enc, &back); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("Validate after round-trip: %v", err)
	}
	if FormatObs(rep) == "" {
		t.Error("FormatObs returned empty string")
	}
}

func TestObsReportValidateRejectsBroken(t *testing.T) {
	rep, err := MeasureObs(ObsConfig{SimSeconds: 1, ChurnComponents: 40, ChurnSteps: 60})
	if err != nil {
		t.Fatalf("MeasureObs: %v", err)
	}
	broken := rep
	broken.Levels = rep.Levels[:2]
	if broken.Validate() == nil {
		t.Error("Validate accepted a report with a missing level")
	}
	broken = rep
	broken.Campaign.Repeatable = false
	if broken.Validate() == nil {
		t.Error("Validate accepted a non-repeatable campaign digest")
	}
	broken = rep
	broken.Campaign.SpanDigest = "short"
	if broken.Validate() == nil {
		t.Error("Validate accepted a malformed span digest")
	}
}
