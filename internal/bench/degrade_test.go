package bench

import (
	"encoding/json"
	"testing"
)

func TestMeasureDegrade(t *testing.T) {
	rep, err := MeasureDegrade(DegradeBenchConfig{})
	if err != nil {
		t.Fatalf("MeasureDegrade: %v", err)
	}
	if err := rep.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	enc, err := rep.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	var back DegradeReport
	if err := json.Unmarshal(enc, &back); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("Validate after round-trip: %v", err)
	}
	if FormatDegrade(rep) == "" {
		t.Error("FormatDegrade returned empty string")
	}
}

func TestDegradeReportValidateRejectsBroken(t *testing.T) {
	rep, err := MeasureDegrade(DegradeBenchConfig{})
	if err != nil {
		t.Fatalf("MeasureDegrade: %v", err)
	}
	broken := rep
	broken.Variants = rep.Variants[:1]
	if broken.Validate() == nil {
		t.Error("Validate accepted a report with a missing variant")
	}
	broken = rep
	broken.Repeatable = false
	if broken.Validate() == nil {
		t.Error("Validate accepted a non-repeatable digest")
	}
	// Swapping the availability numbers makes the binary baseline look
	// better than the graceful run — the exact regression the committed
	// report is meant to catch.
	broken = rep
	broken.Variants = append([]DegradeVariant{}, rep.Variants...)
	for i := range broken.Variants {
		if broken.Variants[i].Variant == "binary" {
			broken.Variants[i].CalcAvailability = 1
			broken.Variants[i].AuxAvailability = 1
		}
	}
	if broken.Validate() == nil {
		t.Error("Validate accepted a binary baseline with full availability")
	}
}
