package bench

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/workload"
)

// Federated-observability benchmark (the -obs2 row of BENCH_obs.json):
// per-shard span emission vs the funnel bridge at the Full level on the
// sharded fault campaign, the latency-histogram quantiles the planes
// now collect, the allocation cost of one histogram record, and the
// 8-node cluster's stitched cross-node trace digest.

// Obs2Config sizes MeasureObs2. The zero value selects the reference
// configuration the committed BENCH_obs.json baseline uses.
type Obs2Config struct {
	// Seed drives everything (default 1).
	Seed uint64
	// RunFor is the simulated length of each sharded campaign run
	// (default 600ms).
	RunFor time.Duration
	// ClusterRunFor is the simulated length of the 8-node stitched
	// campaign (default 120ms).
	ClusterRunFor time.Duration
}

func (c *Obs2Config) applyDefaults() {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.RunFor <= 0 {
		c.RunFor = 600 * time.Millisecond
	}
	if c.ClusterRunFor <= 0 {
		c.ClusterRunFor = 120 * time.Millisecond
	}
}

// Obs2ShardRow compares the two Full-level emission paths at one shard
// count on the same seeded campaign.
type Obs2ShardRow struct {
	Shards int `json:"shards"`
	// FunnelWallNS / ShardWallNS are the campaign wall times with the
	// funnel bridge forced vs the per-shard emitters.
	FunnelWallNS int64 `json:"funnel_wall_ns"`
	ShardWallNS  int64 `json:"shard_wall_ns"`
	// Speedup is funnel/shard wall; below ~1 on single-core hosts, where
	// shard goroutines serialise anyway.
	Speedup float64 `json:"speedup"`
	// DigestMatch confirms the per-shard run reproduced the funnel's
	// span digest AND stream digest byte for byte.
	DigestMatch bool   `json:"digest_match"`
	Spans       uint64 `json:"spans"`
}

// Obs2ClusterPin fingerprints the 8-node stitched campaign.
type Obs2ClusterPin struct {
	// StitchDigest pins the cross-node causal chains; Repeatable
	// confirms a second run agreed byte for byte.
	StitchDigest string `json:"stitch_digest"`
	Repeatable   bool   `json:"repeatable"`
	// Latency is the cluster-merged histogram summary (wall and
	// simulated distributions; reported, never digested).
	Latency []obs.LatencyStat `json:"latency"`
}

// Obs2Report is the federated-observability section of BENCH_obs.json.
type Obs2Report struct {
	// SingleCoreHost flags runs where runtime.NumCPU()==1: shard-emission
	// speedups are not meaningful there, only the digest matches are.
	SingleCoreHost bool           `json:"single_core_host"`
	Rows           []Obs2ShardRow `json:"rows"`
	// Latency is the fault campaign's histogram summary at the default
	// sampling level (resolve / deploy / plan-apply wall quantiles).
	Latency []obs.LatencyStat `json:"latency"`
	// AllocsPerRecord is the measured allocation cost of one
	// Plane.RecordLatency call (must be ~0).
	AllocsPerRecord float64        `json:"allocs_per_record"`
	Cluster         Obs2ClusterPin `json:"cluster"`
}

// MeasureObs2 runs the federated-observability benchmark.
func MeasureObs2(cfg Obs2Config) (Obs2Report, error) {
	cfg.applyDefaults()
	rep := Obs2Report{SingleCoreHost: runtime.NumCPU() == 1}

	base := workload.FaultCampaignConfig{
		Seed: cfg.Seed, RunFor: cfg.RunFor, Guarded: true,
		NumCPUs: 8, Replicas: 7, ObsLevel: obs.Full,
	}
	for _, shards := range []int{1, 2, 4, 8} {
		funnelCfg := base
		funnelCfg.Shards = shards
		funnelCfg.SchedFunnel = true
		funnelStart := time.Now()
		funnel, err := workload.RunFaultCampaign(funnelCfg)
		if err != nil {
			return Obs2Report{}, fmt.Errorf("bench: obs2 funnel shards=%d: %w", shards, err)
		}
		funnelWall := time.Since(funnelStart)

		shardCfg := base
		shardCfg.Shards = shards
		shardStart := time.Now()
		sharded, err := workload.RunFaultCampaign(shardCfg)
		if err != nil {
			return Obs2Report{}, fmt.Errorf("bench: obs2 per-shard shards=%d: %w", shards, err)
		}
		shardWall := time.Since(shardStart)

		row := Obs2ShardRow{
			Shards:       shards,
			FunnelWallNS: funnelWall.Nanoseconds(),
			ShardWallNS:  shardWall.Nanoseconds(),
			DigestMatch: funnel.SpanDigest == sharded.SpanDigest &&
				funnel.StreamDigest == sharded.StreamDigest,
			Spans: sharded.SpanCount,
		}
		if shardWall > 0 {
			row.Speedup = float64(funnelWall) / float64(shardWall)
		}
		rep.Rows = append(rep.Rows, row)
	}

	// Latency quantiles: one campaign at the default sampling level, the
	// configuration operators actually run.
	lat, err := workload.RunFaultCampaign(workload.FaultCampaignConfig{
		Seed: cfg.Seed, RunFor: cfg.RunFor, Guarded: true,
	})
	if err != nil {
		return Obs2Report{}, fmt.Errorf("bench: obs2 latency campaign: %w", err)
	}
	rep.Latency = lat.Obs.Latency

	// Allocation cost of one histogram record.
	p := obs.NewPlane(obs.Options{})
	p.RecordLatency(obs.LatResolve, 1) // warm (no-op: the array is inline)
	const records = 200_000
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < records; i++ {
		p.RecordLatency(obs.LatResolve, int64(i)+1)
	}
	runtime.ReadMemStats(&after)
	rep.AllocsPerRecord = float64(after.Mallocs-before.Mallocs) / float64(records)

	// The 8-node stitched campaign, twice, for the repeatability bit.
	clusterSpec := workload.ClusterSpec{
		Nodes: 8, Seed: cfg.Seed, NumCPUs: 2, RunFor: cfg.ClusterRunFor,
	}
	first, err := workload.RunClusterCampaign(clusterSpec)
	if err != nil {
		return Obs2Report{}, fmt.Errorf("bench: obs2 cluster: %w", err)
	}
	second, err := workload.RunClusterCampaign(clusterSpec)
	if err != nil {
		return Obs2Report{}, fmt.Errorf("bench: obs2 cluster repeat: %w", err)
	}
	rep.Cluster = Obs2ClusterPin{
		StitchDigest: first.StitchDigest,
		Repeatable:   first.StitchDigest == second.StitchDigest,
		Latency:      first.Latency,
	}
	return rep, nil
}

// Validate checks the structural invariants of the obs2 section.
func (r Obs2Report) Validate() error {
	if len(r.Rows) != 4 {
		return fmt.Errorf("obs2 report: %d shard rows, want 4 (1/2/4/8)", len(r.Rows))
	}
	want := []int{1, 2, 4, 8}
	for i, row := range r.Rows {
		if row.Shards != want[i] {
			return fmt.Errorf("obs2 report: row %d has shards=%d, want %d", i, row.Shards, want[i])
		}
		if !row.DigestMatch {
			return fmt.Errorf("obs2 report: shards=%d per-shard emission diverged from the funnel", row.Shards)
		}
		if row.Spans == 0 || row.FunnelWallNS <= 0 || row.ShardWallNS <= 0 {
			return fmt.Errorf("obs2 report: shards=%d row incomplete: %+v", row.Shards, row)
		}
	}
	if len(r.Latency) == 0 {
		return errors.New("obs2 report: no latency distributions recorded")
	}
	seen := map[string]bool{}
	for _, st := range r.Latency {
		if st.Count == 0 {
			return fmt.Errorf("obs2 report: latency %q listed with zero samples", st.Name)
		}
		if st.P50NS > st.P95NS || st.P95NS > st.P99NS || st.P99NS > st.MaxNS {
			return fmt.Errorf("obs2 report: latency %q quantiles out of order: %+v", st.Name, st)
		}
		seen[st.Name] = true
	}
	for _, name := range []string{"resolve", "deploy"} {
		if !seen[name] {
			return fmt.Errorf("obs2 report: latency summary missing %q", name)
		}
	}
	if r.AllocsPerRecord > 0.001 {
		return fmt.Errorf("obs2 report: histogram record path allocates (%.4f allocs/record)", r.AllocsPerRecord)
	}
	if len(r.Cluster.StitchDigest) != 64 {
		return fmt.Errorf("obs2 report: stitched digest %q is not a sha256 hex", r.Cluster.StitchDigest)
	}
	if !r.Cluster.Repeatable {
		return errors.New("obs2 report: stitched digest not repeatable across runs")
	}
	return nil
}

// FormatObs2 renders the obs2 section for terminal output.
func FormatObs2(r Obs2Report) string {
	var b strings.Builder
	b.WriteString("Federated observability — per-shard emission vs funnel at Full level\n")
	if r.SingleCoreHost {
		b.WriteString("(single-core host: digest matches are meaningful, speedups are not)\n")
	}
	fmt.Fprintf(&b, "%7s %12s %12s %8s %7s %10s\n",
		"shards", "funnel ms", "shard ms", "speedup", "match", "spans")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%7d %12.2f %12.2f %8.2f %7v %10d\n",
			row.Shards, float64(row.FunnelWallNS)/1e6, float64(row.ShardWallNS)/1e6,
			row.Speedup, row.DigestMatch, row.Spans)
	}
	b.WriteString("latency histograms (default level, fault campaign):\n")
	for _, st := range r.Latency {
		fmt.Fprintf(&b, "  %-18s n=%-6d p50 %-10v p95 %-10v p99 %-10v max %v\n",
			st.Name, st.Count, time.Duration(st.P50NS), time.Duration(st.P95NS),
			time.Duration(st.P99NS), time.Duration(st.MaxNS))
	}
	fmt.Fprintf(&b, "histogram record: %.4f allocs/record\n", r.AllocsPerRecord)
	fmt.Fprintf(&b, "cluster stitched digest %s (repeatable=%v)\n",
		r.Cluster.StitchDigest, r.Cluster.Repeatable)
	if len(r.Cluster.Latency) > 0 {
		b.WriteString("cluster latency (merged):\n")
		for _, st := range r.Cluster.Latency {
			fmt.Fprintf(&b, "  %-18s n=%-6d p50 %-10v p99 %-10v max %v\n",
				st.Name, st.Count, time.Duration(st.P50NS), time.Duration(st.P99NS),
				time.Duration(st.MaxNS))
		}
	}
	return b.String()
}
