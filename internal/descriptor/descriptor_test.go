package descriptor

import (
	"strings"
	"testing"
	"time"

	"repro/internal/rtos/ipc"
)

// figure2 is the paper's Figure 2 smart-camera descriptor, with the
// figure's typographic quotes normalised to plain XML quoting.
const figure2 = `<?xml version="1.0" encoding="UTF-8"?>
<drt:component name="camera" desc="this is a smart camera controller"
  type="periodic" enabled="true" cpuusage="0.1" xmlns:drt="urn:drcom">
  <implementation bincode="ua.pats.demo.smartcamera.RTComponent"/>
  <periodictask frequence="100" runoncup="0" priority="2"/>
  <outport name="images" interface="RTAI.SHM" type="Byte" size="400"/>
  <inport name="xysize" interface="RTAI.SHM" type="Integer" size="400"/>
  <property name="prox00" type="Integer" value="6"/>
</drt:component>`

func TestParseFigure2(t *testing.T) {
	c, err := Parse(figure2)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "camera" {
		t.Errorf("Name = %q", c.Name)
	}
	if c.Description != "this is a smart camera controller" {
		t.Errorf("Description = %q", c.Description)
	}
	if c.Kind != Periodic || !c.Enabled {
		t.Errorf("Kind/Enabled = %v/%v", c.Kind, c.Enabled)
	}
	if c.CPUUsage != 0.1 {
		t.Errorf("CPUUsage = %v", c.CPUUsage)
	}
	if c.Implementation != "ua.pats.demo.smartcamera.RTComponent" {
		t.Errorf("Implementation = %q", c.Implementation)
	}
	if c.Periodic == nil {
		t.Fatal("no periodic spec")
	}
	if c.Periodic.FrequencyHz != 100 || c.Periodic.CPU != 0 || c.Periodic.Priority != 2 {
		t.Errorf("periodic = %+v", c.Periodic)
	}
	if got := c.Periodic.Period(); got != 10*time.Millisecond {
		t.Errorf("Period = %v, want 10ms (paper: 100 Hz)", got)
	}
	if len(c.OutPorts) != 1 || len(c.InPorts) != 1 {
		t.Fatalf("ports = %d out, %d in", len(c.OutPorts), len(c.InPorts))
	}
	op := c.OutPorts[0]
	if op.Name != "images" || op.Interface != SHM || op.Type != ipc.Byte || op.Size != 400 {
		t.Errorf("outport = %+v", op)
	}
	ip := c.InPorts[0]
	if ip.Name != "xysize" || ip.Type != ipc.Integer || ip.Size != 400 {
		t.Errorf("inport = %+v", ip)
	}
	p, ok := c.Property("prox00")
	if !ok {
		t.Fatal("property prox00 missing")
	}
	if v, err := p.Int(); err != nil || v != 6 {
		t.Errorf("prox00 = %d, %v", v, err)
	}
	if c.CPU() != 0 || c.Priority() != 2 {
		t.Errorf("CPU/Priority = %d/%d", c.CPU(), c.Priority())
	}
}

func TestParseAliasSpellings(t *testing.T) {
	src := `<component name="t" type="periodic">
	  <implementation class="impl.Class"/>
	  <periodictask frequency="50" runoncpu="1" priority="3"/>
	</component>`
	c, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if c.Implementation != "impl.Class" {
		t.Errorf("class alias: %q", c.Implementation)
	}
	if c.Periodic.FrequencyHz != 50 || c.Periodic.CPU != 1 {
		t.Errorf("aliases = %+v", c.Periodic)
	}
}

func TestParseAperiodic(t *testing.T) {
	src := `<component name="ap" type="aperiodic">
	  <implementation bincode="x"/>
	  <aperiodictask runoncup="0" priority="7"/>
	</component>`
	c, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if c.Kind != Aperiodic || c.Aperiodic == nil || c.Aperiodic.Priority != 7 {
		t.Fatalf("c = %+v", c)
	}
	// aperiodictask element is optional.
	src2 := `<component name="ap2" type="aperiodic"><implementation bincode="x"/></component>`
	if _, err := Parse(src2); err != nil {
		t.Fatal(err)
	}
}

func TestParseDisabled(t *testing.T) {
	src := `<component name="d" type="aperiodic" enabled="false"><implementation bincode="x"/></component>`
	c, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if c.Enabled {
		t.Fatal("enabled=false ignored")
	}
}

func TestValidationErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string // substring of the error
	}{
		{"not xml", `<<<`, "XML"},
		{"missing name", `<component type="periodic"><implementation bincode="x"/><periodictask frequence="1"/></component>`, "missing name"},
		{"long name", `<component name="sevenchars" type="periodic"><implementation bincode="x"/><periodictask frequence="1"/></component>`, "1..6"},
		{"bad type", `<component name="c" type="sporadic"><implementation bincode="x"/></component>`, "periodic or aperiodic"},
		{"missing periodictask", `<component name="c" type="periodic"><implementation bincode="x"/></component>`, "periodictask"},
		{"bad frequency", `<component name="c" type="periodic"><implementation bincode="x"/><periodictask frequence="-5"/></component>`, "frequence"},
		{"missing impl", `<component name="c" type="periodic"><periodictask frequence="1"/></component>`, "bincode"},
		{"bad cpuusage", `<component name="c" type="periodic" cpuusage="1.5"><implementation bincode="x"/><periodictask frequence="1"/></component>`, "cpuusage"},
		{"negative cpu", `<component name="c" type="periodic"><implementation bincode="x"/><periodictask frequence="1" runoncup="-1"/></component>`, "runoncup"},
		{"negative prio", `<component name="c" type="periodic"><implementation bincode="x"/><periodictask frequence="1" priority="-2"/></component>`, "priority"},
		{"bad port iface", `<component name="c" type="aperiodic"><implementation bincode="x"/><outport name="o" interface="TCP" type="Byte" size="4"/></component>`, "RTAI.SHM or RTAI.Mailbox"},
		{"bad port type", `<component name="c" type="aperiodic"><implementation bincode="x"/><outport name="o" interface="RTAI.SHM" type="Double" size="4"/></component>`, "Integer or Byte"},
		{"bad port size", `<component name="c" type="aperiodic"><implementation bincode="x"/><outport name="o" interface="RTAI.SHM" type="Byte" size="0"/></component>`, "size"},
		{"long port name", `<component name="c" type="aperiodic"><implementation bincode="x"/><outport name="sevenchars" interface="RTAI.SHM" type="Byte" size="4"/></component>`, "1..6"},
		{"dup port", `<component name="c" type="aperiodic"><implementation bincode="x"/><outport name="p" interface="RTAI.SHM" type="Byte" size="4"/><inport name="p" interface="RTAI.SHM" type="Byte" size="4"/></component>`, "duplicate port"},
		{"dup property", `<component name="c" type="aperiodic"><implementation bincode="x"/><property name="p" value="1"/><property name="p" value="2"/></component>`, "duplicate property"},
		{"bad property type", `<component name="c" type="aperiodic"><implementation bincode="x"/><property name="p" type="Complex" value="1"/></component>`, "unknown type"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("%s: parsed successfully", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q missing %q", c.name, err, c.want)
		}
	}
}

func TestValidationErrorAggregation(t *testing.T) {
	src := `<component name="waytoolongname" type="bogus"></component>`
	_, err := Parse(src)
	ve, ok := err.(*ValidationError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if len(ve.Problems) < 3 { // name, type, implementation
		t.Fatalf("problems = %v", ve.Problems)
	}
}

func TestPortCanSatisfy(t *testing.T) {
	out := Port{Name: "img", Interface: SHM, Type: ipc.Byte, Size: 400, Direction: Out}
	cases := []struct {
		name string
		in   Port
		want bool
	}{
		{"exact", Port{Name: "img", Interface: SHM, Type: ipc.Byte, Size: 400, Direction: In}, true},
		{"smaller consumer", Port{Name: "img", Interface: SHM, Type: ipc.Byte, Size: 100, Direction: In}, true},
		{"larger consumer", Port{Name: "img", Interface: SHM, Type: ipc.Byte, Size: 500, Direction: In}, false},
		{"name mismatch", Port{Name: "pic", Interface: SHM, Type: ipc.Byte, Size: 400, Direction: In}, false},
		{"iface mismatch", Port{Name: "img", Interface: Mailbox, Type: ipc.Byte, Size: 400, Direction: In}, false},
		{"type mismatch", Port{Name: "img", Interface: SHM, Type: ipc.Integer, Size: 400, Direction: In}, false},
		{"wrong direction", Port{Name: "img", Interface: SHM, Type: ipc.Byte, Size: 400, Direction: Out}, false},
	}
	for _, c := range cases {
		if got := out.CanSatisfy(c.in); got != c.want {
			t.Errorf("%s: CanSatisfy = %v, want %v", c.name, got, c.want)
		}
	}
	in := Port{Name: "img", Interface: SHM, Type: ipc.Byte, Size: 400, Direction: In}
	if in.CanSatisfy(in) {
		t.Error("inport satisfied an inport")
	}
}

func TestPropertyAccessors(t *testing.T) {
	pi := Property{Name: "i", Type: "Integer", Value: "42"}
	if v, err := pi.Int(); err != nil || v != 42 {
		t.Errorf("Int = %d, %v", v, err)
	}
	pf := Property{Name: "f", Type: "Float", Value: "2.5"}
	if v, err := pf.Float(); err != nil || v != 2.5 {
		t.Errorf("Float = %v, %v", v, err)
	}
	pb := Property{Name: "b", Type: "Boolean", Value: "true"}
	if v, err := pb.Bool(); err != nil || !v {
		t.Errorf("Bool = %v, %v", v, err)
	}
	bad := Property{Name: "x", Type: "Integer", Value: "zz"}
	if _, err := bad.Int(); err == nil {
		t.Error("bad Int parsed")
	}
	if _, err := bad.Float(); err == nil {
		t.Error("bad Float parsed")
	}
	if _, err := bad.Bool(); err == nil {
		t.Error("bad Bool parsed")
	}
}

func TestPropertyDefaultTypeString(t *testing.T) {
	src := `<component name="c" type="aperiodic"><implementation bincode="x"/><property name="s" value="hello"/></component>`
	c, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := c.Property("s")
	if p.Type != "String" || p.Value != "hello" {
		t.Fatalf("p = %+v", p)
	}
	if _, ok := c.Property("missing"); ok {
		t.Fatal("phantom property")
	}
}

func TestParseAll(t *testing.T) {
	a := `<component name="aaa" type="aperiodic"><implementation bincode="x"/></component>`
	b := `<component name="bbb" type="aperiodic"><implementation bincode="x"/></component>`
	comps, err := ParseAll([]string{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != 2 {
		t.Fatalf("comps = %d", len(comps))
	}
	if _, err := ParseAll([]string{a, a}); err == nil {
		t.Fatal("duplicate names accepted")
	}
	if _, err := ParseAll([]string{a, "<<<"}); err == nil {
		t.Fatal("bad document accepted")
	}
}

func TestSniff(t *testing.T) {
	if err := Sniff(figure2); err != nil {
		t.Fatalf("Sniff(figure2) = %v", err)
	}
	if err := Sniff(`<other/>`); err != ErrNotDRCom {
		t.Fatalf("Sniff(other) = %v", err)
	}
	if err := Sniff(`<<<`); err == nil {
		t.Fatal("Sniff parsed garbage")
	}
}

func TestPeriodZeroFrequency(t *testing.T) {
	var p PeriodicSpec
	if p.Period() != 0 {
		t.Fatal("zero frequency period not 0")
	}
}

func TestDirectionString(t *testing.T) {
	if Out.String() != "outport" || In.String() != "inport" {
		t.Fatal("direction strings")
	}
}
