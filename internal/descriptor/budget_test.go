package descriptor

import (
	"errors"
	"strings"
	"testing"
)

func budgetXML(budget string) string {
	return `<component name="calc" type="periodic" cpuusage="0.3">
  <implementation bincode="rtai.demo.Calculation"/>
  <periodictask frequence="1000" runoncup="0" priority="1"/>
  ` + budget + `
</component>`
}

func TestParseBudget(t *testing.T) {
	c, err := Parse(budgetXML(`<budget dist="normal(0.3,0.05)" p="0.99"/>`))
	if err != nil {
		t.Fatal(err)
	}
	if c.Budget == nil || c.Budget.String() != "normal(0.3,0.05)" {
		t.Fatalf("budget = %v", c.Budget)
	}
	if c.BudgetP != 0.99 {
		t.Fatalf("p = %v, want 0.99", c.BudgetP)
	}
	if c.CPUUsage != 0.3 {
		t.Fatalf("cpuusage = %v", c.CPUUsage)
	}
}

func TestParseBudgetDefaultP(t *testing.T) {
	c, err := Parse(budgetXML(`<budget dist="lognormal(-1.2,0.4)"/>`))
	if err != nil {
		t.Fatal(err)
	}
	if c.BudgetP != 0.95 {
		t.Fatalf("absent p should default to 0.95, got %v", c.BudgetP)
	}
}

func TestParseBudgetErrors(t *testing.T) {
	cases := []struct {
		budget string
		want   string // substring of the validation problem
	}{
		{`<budget dist="weibull(1,2)"/>`, "unknown family"},
		{`<budget dist="normal(0.3)"/>`, "want normal(mu,sigma)"},
		{`<budget dist="normal(a,b)"/>`, "bad mu"},
		{`<budget dist="normal(0.3,-0.05)"/>`, "sigma must be >= 0"},
		{`<budget dist="empirical()"/>`, "at least one"},
		{`<budget dist="empirical(0.1:0)"/>`, "weight"},
		{`<budget dist="normal(0.3,0.05)" p="1.7"/>`, "probability in (0,1)"},
		{`<budget dist="normal(0.3,0.05)" p="0"/>`, "probability in (0,1)"},
		{`<budget dist="normal(0.3,0.05)" p="NaN"/>`, "probability in (0,1)"},
		{`<budget dist="normal(0.3,0.05)" p="x"/>`, "probability in (0,1)"},
		{`<budget/>`, "dist"},
	}
	for _, cse := range cases {
		_, err := Parse(budgetXML(cse.budget))
		if err == nil {
			t.Errorf("%s: want error", cse.budget)
			continue
		}
		var ve *ValidationError
		if !errors.As(err, &ve) {
			t.Errorf("%s: want *ValidationError, got %T: %v", cse.budget, err, err)
			continue
		}
		if !strings.Contains(err.Error(), cse.want) {
			t.Errorf("%s: error %q missing %q", cse.budget, err, cse.want)
		}
	}

	// A stochastic budget without the nominal cpuusage is rejected.
	src := `<component name="calc" type="periodic">
  <implementation bincode="b"/>
  <periodictask frequence="1000" runoncup="0" priority="1"/>
  <budget dist="normal(0.3,0.05)"/>
</component>`
	if _, err := Parse(src); err == nil || !strings.Contains(err.Error(), "requires a declared cpuusage") {
		t.Fatalf("budget without cpuusage: %v", err)
	}
}

func TestBudgetRenderRoundTrip(t *testing.T) {
	for _, budget := range []string{
		`<budget dist="normal(0.3,0.05)" p="0.99"/>`,
		`<budget dist="lognormal(-1.2,0.4)"/>`,
		`<budget dist="empirical(0.1:1,0.2:2,0.4:1)" p="0.97"/>`,
	} {
		c, err := Parse(budgetXML(budget))
		if err != nil {
			t.Fatal(err)
		}
		rendered := c.Render()
		if !strings.Contains(rendered, "<budget dist=") {
			t.Fatalf("render lost the budget element:\n%s", rendered)
		}
		c2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("re-parse: %v\n%s", err, rendered)
		}
		if c2.Render() != rendered {
			t.Fatalf("render not a fixed point:\n%s\nvs\n%s", rendered, c2.Render())
		}
		if c2.Budget.String() != c.Budget.String() || c2.BudgetP != c.BudgetP {
			t.Fatalf("budget changed across round trip: %v/%v vs %v/%v",
				c.Budget, c.BudgetP, c2.Budget, c2.BudgetP)
		}
	}
}
