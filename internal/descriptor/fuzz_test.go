package descriptor

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzParse drives Parse with mutated descriptor XML, seeded from the
// shipped example descriptors. Two properties are checked: Parse never
// panics, and every descriptor it accepts survives a Render round trip
// (re-parses cleanly and renders to the same normal form).
func FuzzParse(f *testing.F) {
	seeds, err := filepath.Glob(filepath.Join("..", "..", "examples", "descriptors", "*.xml"))
	if err != nil || len(seeds) == 0 {
		f.Fatalf("no seed descriptors found: %v", err)
	}
	for _, path := range seeds {
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(data))
	}
	f.Add(multiMode)
	f.Add(figure2)
	f.Add(`<component name="x" type="aperiodic"><implementation bincode="b"/></component>`)
	f.Fuzz(func(t *testing.T, src string) {
		c, err := Parse(src)
		if err != nil {
			return
		}
		rendered := c.Render()
		c2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("accepted descriptor does not re-parse: %v\noriginal:\n%s\nrendered:\n%s", err, src, rendered)
		}
		if again := c2.Render(); again != rendered {
			t.Fatalf("render is not a fixed point:\nfirst:\n%s\nsecond:\n%s", rendered, again)
		}
	})
}
