package descriptor

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzParse drives Parse with mutated descriptor XML, seeded from the
// shipped example descriptors. Two properties are checked: Parse never
// panics, and every descriptor it accepts survives a Render round trip
// (re-parses cleanly and renders to the same normal form).
func FuzzParse(f *testing.F) {
	seeds, err := filepath.Glob(filepath.Join("..", "..", "examples", "descriptors", "*.xml"))
	if err != nil || len(seeds) == 0 {
		f.Fatalf("no seed descriptors found: %v", err)
	}
	for _, path := range seeds {
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(data))
	}
	f.Add(multiMode)
	f.Add(figure2)
	f.Add(`<component name="x" type="aperiodic"><implementation bincode="b"/></component>`)
	// Typed, versioned port contracts: the version/datatype attributes
	// of typing.go, in both the concrete-version (outport) and
	// range (inport) spellings, with structural payload types.
	f.Add(`<component name="tprov" type="periodic" cpuusage="0.2">
  <implementation bincode="t.Prov"/>
  <periodictask frequence="100" runoncup="0" priority="2"/>
  <outport name="feed" interface="RTAI.SHM" type="Integer" size="8" version="1.2" datatype="struct{seq:int32,val:int32[4]}"/>
</component>`)
	f.Add(`<component name="tcons" type="periodic" cpuusage="0.2">
  <implementation bincode="t.Cons"/>
  <periodictask frequence="100" runoncup="0" priority="2"/>
  <inport name="feed" interface="RTAI.SHM" type="Integer" size="8" version="[1.0,2.0)" datatype="struct{seq:int32}"/>
</component>`)
	f.Add(`<component name="tbyte" type="aperiodic">
  <implementation bincode="t.Byte"/>
  <inport name="blob" interface="RTAI.Mailbox" type="Byte" size="64" version="1.0.0" datatype="byte[16][2]"/>
</component>`)
	// Stochastic contracts: the <budget> distribution grammar in every
	// family, plus malformed dist strings and out-of-range p values the
	// parser must reject with typed errors (never a panic).
	f.Add(`<component name="snorm" type="periodic" cpuusage="0.3">
  <implementation bincode="s.Norm"/>
  <periodictask frequence="1000" runoncup="0" priority="1"/>
  <budget dist="normal(0.3,0.05)" p="0.99"/>
</component>`)
	f.Add(`<component name="slogn" type="periodic" cpuusage="0.3">
  <implementation bincode="s.LogN"/>
  <periodictask frequence="1000" runoncup="0" priority="1"/>
  <budget dist="lognormal(-1.2,0.4)"/>
</component>`)
	f.Add(`<component name="semp" type="aperiodic" cpuusage="0.2">
  <implementation bincode="s.Emp"/>
  <budget dist="empirical(0.1:1,0.2:2,0.4:1)" p="0.95"/>
</component>`)
	f.Add(`<component name="sbad1" type="periodic" cpuusage="0.3">
  <implementation bincode="s.Bad"/>
  <periodictask frequence="1000" runoncup="0" priority="1"/>
  <budget dist="weibull(1,2)" p="0.99"/>
</component>`)
	f.Add(`<component name="sbad2" type="periodic" cpuusage="0.3">
  <implementation bincode="s.Bad"/>
  <periodictask frequence="1000" runoncup="0" priority="1"/>
  <budget dist="normal(0.3,-0.05)" p="0.99"/>
</component>`)
	f.Add(`<component name="sbad3" type="periodic" cpuusage="0.3">
  <implementation bincode="s.Bad"/>
  <periodictask frequence="1000" runoncup="0" priority="1"/>
  <budget dist="normal(0.3,0.05)" p="1.7"/>
</component>`)
	f.Add(`<component name="sbad4" type="periodic" cpuusage="0.3">
  <implementation bincode="s.Bad"/>
  <periodictask frequence="1000" runoncup="0" priority="1"/>
  <budget dist="empirical(0.1:0,:)" p="0"/>
</component>`)
	f.Add(`<component name="sbad5" type="periodic">
  <implementation bincode="s.Bad"/>
  <periodictask frequence="1000" runoncup="0" priority="1"/>
  <budget dist="normal(0.3,0.05)" p="NaN"/>
</component>`)
	f.Fuzz(func(t *testing.T, src string) {
		c, err := Parse(src)
		if err != nil {
			return
		}
		rendered := c.Render()
		c2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("accepted descriptor does not re-parse: %v\noriginal:\n%s\nrendered:\n%s", err, src, rendered)
		}
		if again := c2.Render(); again != rendered {
			t.Fatalf("render is not a fixed point:\nfirst:\n%s\nsecond:\n%s", rendered, again)
		}
	})
}
