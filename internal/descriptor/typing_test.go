package descriptor

import (
	"strings"
	"testing"

	"repro/internal/rtos/ipc"
)

func TestParseDataTypeCanonical(t *testing.T) {
	cases := []struct {
		in, want string // want=="" means parse error expected
	}{
		{"int32", "int32"},
		{"byte", "byte"},
		{" int32 [ 4 ] ", "int32[4]"},
		{"int32[4][2]", "int32[4][2]"},
		{"struct{b:int32,a:int32}", "struct{a:int32,b:int32}"},
		{"struct{ x : byte[3] , a : struct{ z:byte } }", "struct{a:struct{z:byte},x:byte[3]}"},
		{"", ""},
		{"int64", ""},
		{"int32[0]", ""},
		{"int32[-1]", ""},
		{"struct{}", ""},
		{"struct{a:int32,a:byte}", ""},
		{"struct{a:int32", ""},
		{"int32 junk", ""},
		{strings.Repeat("struct{a:", 40) + "int32" + strings.Repeat("}", 40), ""},
	}
	for _, c := range cases {
		dt, err := parseDataType(c.in)
		if c.want == "" {
			if err == nil {
				t.Errorf("parseDataType(%q) accepted, want error (got %s)", c.in, dt)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseDataType(%q): %v", c.in, err)
			continue
		}
		if got := dt.String(); got != c.want {
			t.Errorf("parseDataType(%q) = %s, want %s", c.in, got, c.want)
		}
		// Canonical form is a fixed point.
		dt2, err := parseDataType(c.want)
		if err != nil {
			t.Errorf("canonical %q does not re-parse: %v", c.want, err)
		} else if again := dt2.String(); again != c.want {
			t.Errorf("canonical %q is not a fixed point: got %q", c.want, again)
		}
	}
}

func TestDataTypeFlatten(t *testing.T) {
	cases := []struct {
		in    string
		typ   ipc.ElemType
		count int
		bad   bool
	}{
		{"int32", ipc.Integer, 1, false},
		{"byte[8]", ipc.Byte, 8, false},
		{"struct{a:int32,b:int32[3]}", ipc.Integer, 4, false},
		{"struct{a:int32,b:byte}", 0, 0, true},
		{"struct{a:byte[2]}[5]", ipc.Byte, 10, false},
	}
	for _, c := range cases {
		dt, err := parseDataType(c.in)
		if err != nil {
			t.Fatalf("parseDataType(%q): %v", c.in, err)
		}
		et, n, err := dt.flatten()
		if c.bad {
			if err == nil {
				t.Errorf("flatten(%q) accepted, want mixed-element error", c.in)
			}
			continue
		}
		if err != nil || et != c.typ || n != c.count {
			t.Errorf("flatten(%q) = (%v, %d, %v), want (%v, %d, nil)", c.in, et, n, err, c.typ, c.count)
		}
	}
}

func TestTypedCompatibility(t *testing.T) {
	out := func(ver, dt string) Port {
		return Port{Name: "p", Interface: SHM, Type: ipc.Integer, Size: 8,
			Direction: Out, Version: ver, DataType: dt}
	}
	in := func(ver, dt string) Port {
		return Port{Name: "p", Interface: SHM, Type: ipc.Integer, Size: 8,
			Direction: In, Version: ver, DataType: dt}
	}
	cases := []struct {
		prov, cons Port
		ok         bool
		reason     string // substring the mismatch text must contain
	}{
		// Untyped consumers accept anything (back-compat).
		{out("", ""), in("", ""), true, ""},
		{out("2.0.0", "int32[8]"), in("", ""), true, ""},
		// Version range checks.
		{out("1.2.0", ""), in("[1.0.0,2.0.0)", ""), true, ""},
		{out("2.0.0", ""), in("[1.0.0,2.0.0)", ""), false, "outside required range"},
		{out("1.2.0", ""), in("1.3.0", ""), false, "outside required range"},
		{out("1.3.0", ""), in("1.3.0", ""), true, ""},
		{out("", ""), in("1.0.0", ""), false, "declares no version"},
		// Structural checks: width subtyping, array covariance.
		{out("", "struct{a:int32,b:int32[4]}"), in("", "struct{a:int32}"), true, ""},
		{out("", "struct{a:int32}"), in("", "struct{a:int32,b:int32}"), false, "structurally satisfy"},
		{out("", "int32[8]"), in("", "int32[4]"), true, ""},
		{out("", "int32[4]"), in("", "int32[8]"), false, "structurally satisfy"},
		{out("", ""), in("", "int32"), false, "declares none"},
		// Both layers must pass.
		{out("1.2.0", "int32[8]"), in("1.0", "int32[4]"), true, ""},
		{out("0.9.0", "int32[8]"), in("1.0", "int32[4]"), false, "outside required range"},
	}
	for i, c := range cases {
		got := c.prov.CanSatisfy(c.cons)
		if got != c.ok {
			t.Errorf("case %d: CanSatisfy = %v, want %v", i, got, c.ok)
		}
		why := c.prov.ExplainTypedMismatch(c.cons)
		if c.ok && why != "" {
			t.Errorf("case %d: unexpected mismatch reason %q", i, why)
		}
		if !c.ok && !strings.Contains(why, c.reason) {
			t.Errorf("case %d: reason %q does not mention %q", i, why, c.reason)
		}
	}
}

func TestParseTypedPorts(t *testing.T) {
	src := `<component name="tp" type="aperiodic">
  <implementation bincode="t.P"/>
  <outport name="feed" interface="RTAI.SHM" type="Integer" size="8" version="1.2" datatype="struct{v:int32[4],s:int32}"/>
  <inport name="ctl" interface="RTAI.Mailbox" type="Byte" size="16" version="[1.0,2.0)" datatype="byte[4]"/>
</component>`
	c, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.OutPorts[0].Version; got != "1.2.0" {
		t.Errorf("outport version canonicalised to %q, want 1.2.0", got)
	}
	if got := c.OutPorts[0].DataType; got != "struct{s:int32,v:int32[4]}" {
		t.Errorf("outport datatype canonicalised to %q", got)
	}
	if got := c.InPorts[0].Version; got != "[1.0.0,2.0.0)" {
		t.Errorf("inport version canonicalised to %q, want [1.0.0,2.0.0)", got)
	}

	for _, bad := range []string{
		// datatype element kind disagrees with port type
		`<component name="tp" type="aperiodic"><implementation bincode="b"/>
  <outport name="o" interface="RTAI.SHM" type="Integer" size="8" datatype="byte[4]"/></component>`,
		// datatype does not fit in the declared size
		`<component name="tp" type="aperiodic"><implementation bincode="b"/>
  <outport name="o" interface="RTAI.SHM" type="Integer" size="2" datatype="int32[4]"/></component>`,
		// malformed version
		`<component name="tp" type="aperiodic"><implementation bincode="b"/>
  <outport name="o" interface="RTAI.SHM" type="Integer" size="2" version="fish"/></component>`,
		// outports declare concrete versions, not ranges
		`<component name="tp" type="aperiodic"><implementation bincode="b"/>
  <outport name="o" interface="RTAI.SHM" type="Integer" size="2" version="[1.0,2.0)"/></component>`,
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse accepted invalid typed port:\n%s", bad)
		}
	}
}
