// Package descriptor implements the DRCom component description of the
// paper's §2.3: an XML document declaring a component's real-time
// contract (task type, priority, frequency, CPU affinity, CPU budget),
// its communication ports, and its configuration properties.
//
// The schema follows the paper's Figure 2 verbatim, including its
// spellings ("frequence", "runoncup", "bincode"); the conventional
// spellings are accepted as aliases.
package descriptor

import (
	"encoding/xml"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/manifest"
	"repro/internal/policy"
	"repro/internal/rtos/ipc"
)

// TaskKind is the declared task type.
type TaskKind string

// Task kinds.
const (
	Periodic  TaskKind = "periodic"
	Aperiodic TaskKind = "aperiodic"
)

// PortInterface is the transport a port maps to.
type PortInterface string

// Supported port interfaces (paper §2.3: "only the RTAI.SHM and
// RTAI.Mailbox are supported").
const (
	SHM     PortInterface = "RTAI.SHM"
	Mailbox PortInterface = "RTAI.Mailbox"
)

// Direction tells producer ports from consumer ports.
type Direction int

// Port directions.
const (
	Out Direction = iota + 1
	In
)

func (d Direction) String() string {
	if d == Out {
		return "outport"
	}
	return "inport"
}

// Port is one communication endpoint.
type Port struct {
	Name      string
	Interface PortInterface
	Type      ipc.ElemType
	Size      int // element count; byte size is Size*Type.Size()
	Direction Direction
	// Version is the typed-contract version annotation in canonical
	// form: a concrete version on an outport ("1.2.0"), an accepted
	// version range on an inport ("1.2.0", "[1.0.0,2.0.0)"). Empty
	// means unversioned — the paper's bare string matching.
	Version string
	// DataType is the structural payload type in canonical form (see
	// typing.go for the grammar). Empty means unchecked.
	DataType string
}

// CanSatisfy reports whether this outport satisfies the given inport:
// same port name, same transport, same element type, and at least the
// required size (paper §2.3: name+interface+type+size determine
// compatibility), plus the typed version/datatype rules of typing.go
// when the ports carry annotations.
func (p Port) CanSatisfy(in Port) bool {
	return p.Direction == Out && in.Direction == In &&
		p.Name == in.Name &&
		p.Interface == in.Interface &&
		p.Type == in.Type &&
		p.Size >= in.Size &&
		p.typedOK(in)
}

// Property is one configuration property.
type Property struct {
	Name  string
	Type  string // Integer, Float, String, Boolean
	Value string
}

// Int returns the property as an integer.
func (p Property) Int() (int, error) {
	v, err := strconv.Atoi(strings.TrimSpace(p.Value))
	if err != nil {
		return 0, fmt.Errorf("descriptor: property %s: %w", p.Name, err)
	}
	return v, nil
}

// Float returns the property as a float.
func (p Property) Float() (float64, error) {
	v, err := strconv.ParseFloat(strings.TrimSpace(p.Value), 64)
	if err != nil {
		return 0, fmt.Errorf("descriptor: property %s: %w", p.Name, err)
	}
	return v, nil
}

// Bool returns the property as a boolean.
func (p Property) Bool() (bool, error) {
	v, err := strconv.ParseBool(strings.TrimSpace(p.Value))
	if err != nil {
		return false, fmt.Errorf("descriptor: property %s: %w", p.Name, err)
	}
	return v, nil
}

// PeriodicSpec carries the periodictask element.
type PeriodicSpec struct {
	// FrequencyHz is the release rate (the descriptor's "frequence").
	FrequencyHz float64
	// CPU is the processor affinity (the descriptor's "runoncup").
	CPU int
	// Priority is the RT priority; lower is more urgent.
	Priority int
}

// Period converts the frequency to a release period.
func (p PeriodicSpec) Period() time.Duration {
	if p.FrequencyHz <= 0 {
		return 0
	}
	return time.Duration(float64(time.Second) / p.FrequencyHz)
}

// AperiodicSpec carries the aperiodictask element.
type AperiodicSpec struct {
	CPU      int
	Priority int
}

// Mode is one declared degraded service mode. The component's base
// contract (its cpuusage / frequence attributes) is mode 0, the full
// contract; each <mode> element appends a cheaper fallback the DRCR may
// admit when the full contract does not fit ("downgrade-before-deny")
// or step down to when the contract guard observes violations.
// Validation enforces monotonically decreasing cost across the list.
type Mode struct {
	// Name labels the mode ("eco", "min", ...); unique per component.
	Name string
	// FrequencyHz overrides the periodic release rate in this mode;
	// 0 inherits the base rate.
	FrequencyHz float64
	// CPUUsage is the mode's declared CPU budget fraction; must be
	// strictly below the previous mode's budget.
	CPUUsage float64
	// Drops lists inports the component does not require in this mode —
	// optional inputs it can serve without. Outports are never dropped,
	// so dependants stay satisfied across a downgrade.
	Drops []string
}

// Period converts the mode's resolved frequency to a release period
// (0 for aperiodic components). Meaningful on ModeSpec results, where
// an inherited frequency has been filled in.
func (m Mode) Period() time.Duration {
	return PeriodicSpec{FrequencyHz: m.FrequencyHz}.Period()
}

// FullModeName labels mode 0, the base contract.
const FullModeName = "full"

// NumModes is the number of service modes: 1 (the base contract) plus
// one per declared <mode> element.
func (c *Component) NumModes() int { return 1 + len(c.Modes) }

// ModeName returns the label of mode i (mode 0 is "full").
func (c *Component) ModeName(i int) string {
	if i <= 0 || i > len(c.Modes) {
		return FullModeName
	}
	return c.Modes[i-1].Name
}

// ModeSpec returns the effective contract parameters of mode i with
// inherited fields resolved: mode 0 is the base contract, later modes
// fill FrequencyHz from the base rate when they do not override it.
func (c *Component) ModeSpec(i int) Mode {
	base := Mode{Name: FullModeName, CPUUsage: c.CPUUsage}
	if c.Periodic != nil {
		base.FrequencyHz = c.Periodic.FrequencyHz
	}
	if i <= 0 || i > len(c.Modes) {
		return base
	}
	m := c.Modes[i-1]
	if m.FrequencyHz <= 0 {
		m.FrequencyHz = base.FrequencyHz
	}
	return m
}

// RequiresInport reports whether the named inport is required in mode i
// (a mode's Drops list exempts it).
func (c *Component) RequiresInport(mode int, name string) bool {
	if mode <= 0 || mode > len(c.Modes) {
		return true
	}
	for _, d := range c.Modes[mode-1].Drops {
		if d == name {
			return false
		}
	}
	return true
}

// Component is a parsed, validated DRCom descriptor.
type Component struct {
	// Name is globally unique and doubles as the RT task name, hence the
	// RTAI six-character limit (paper §2.3).
	Name        string
	Description string
	Kind        TaskKind
	// Enabled controls whether the component activates when its bundle
	// starts (default true; see enableRTComponent in the paper).
	Enabled bool
	// CPUUsage is the declared CPU budget fraction this component claims
	// to guarantee its real-time characteristics.
	CPUUsage float64
	// Importance ranks components for adaptation decisions (higher =
	// more important; default 0). This is a DRCom extension in the
	// direction of the paper's §6 "more powerful component description
	// language": adaptation managers use it to pick victims under
	// overload.
	Importance int
	// Budget, when non-nil, refines CPUUsage into a distribution-valued
	// stochastic contract (the optional <budget dist="normal(mu,sigma)"
	// p="0.99"/> element): admission then asks that the composed load on
	// the component's CPU stay under the bound with probability ≥
	// BudgetP, instead of comparing constants. CPUUsage stays the
	// declared nominal fraction.
	Budget *policy.Dist
	// BudgetP is the declared deadline-met probability in (0,1);
	// policy.DefaultMetP when the budget element omits the p attribute.
	// Zero when Budget is nil.
	BudgetP        float64
	Implementation string // the "bincode" implementation class
	Periodic       *PeriodicSpec
	Aperiodic      *AperiodicSpec
	InPorts        []Port
	OutPorts       []Port
	Properties     []Property
	// Modes are the declared degraded service modes, cheapest last; the
	// base contract above is mode 0. Empty for single-mode components.
	Modes []Mode
}

// Property looks up a property by name.
func (c *Component) Property(name string) (Property, bool) {
	for _, p := range c.Properties {
		if p.Name == name {
			return p, true
		}
	}
	return Property{}, false
}

// CPU returns the component's processor affinity.
func (c *Component) CPU() int {
	switch {
	case c.Periodic != nil:
		return c.Periodic.CPU
	case c.Aperiodic != nil:
		return c.Aperiodic.CPU
	default:
		return 0
	}
}

// Priority returns the component's declared RT priority.
func (c *Component) Priority() int {
	switch {
	case c.Periodic != nil:
		return c.Periodic.Priority
	case c.Aperiodic != nil:
		return c.Aperiodic.Priority
	default:
		return 0
	}
}

// xml wire format ---------------------------------------------------------

type xmlPort struct {
	Name      string `xml:"name,attr"`
	Interface string `xml:"interface,attr"`
	Type      string `xml:"type,attr"`
	Size      string `xml:"size,attr"`
	Version   string `xml:"version,attr"`
	DataType  string `xml:"datatype,attr"`
}

type xmlComponent struct {
	XMLName    xml.Name `xml:"component"`
	Name       string   `xml:"name,attr"`
	Desc       string   `xml:"desc,attr"`
	Type       string   `xml:"type,attr"`
	Enabled    string   `xml:"enabled,attr"`
	CPUUsage   string   `xml:"cpuusage,attr"`
	Importance string   `xml:"importance,attr"`

	Implementation struct {
		Bincode string `xml:"bincode,attr"`
		Class   string `xml:"class,attr"` // conventional alias
	} `xml:"implementation"`

	PeriodicTask *struct {
		Frequence string `xml:"frequence,attr"`
		Frequency string `xml:"frequency,attr"` // alias
		RunOnCup  string `xml:"runoncup,attr"`
		RunOnCPU  string `xml:"runoncpu,attr"` // alias
		Priority  string `xml:"priority,attr"`
	} `xml:"periodictask"`

	AperiodicTask *struct {
		RunOnCup string `xml:"runoncup,attr"`
		RunOnCPU string `xml:"runoncpu,attr"`
		Priority string `xml:"priority,attr"`
	} `xml:"aperiodictask"`

	Budget *struct {
		Dist string `xml:"dist,attr"`
		P    string `xml:"p,attr"`
	} `xml:"budget"`

	OutPorts []xmlPort `xml:"outport"`
	InPorts  []xmlPort `xml:"inport"`

	Modes []struct {
		Name      string `xml:"name,attr"`
		Frequence string `xml:"frequence,attr"`
		Frequency string `xml:"frequency,attr"` // alias
		CPUUsage  string `xml:"cpuusage,attr"`
		Drops     string `xml:"drops,attr"` // space-separated inport names
	} `xml:"mode"`

	Properties []struct {
		Name  string `xml:"name,attr"`
		Type  string `xml:"type,attr"`
		Value string `xml:"value,attr"`
	} `xml:"property"`
}

// ValidationError aggregates everything wrong with a descriptor.
type ValidationError struct {
	Component string
	Problems  []string
}

func (e *ValidationError) Error() string {
	return fmt.Sprintf("descriptor: component %q invalid: %s",
		e.Component, strings.Join(e.Problems, "; "))
}

// Parse reads and validates one DRCom component descriptor.
func Parse(src string) (*Component, error) {
	var xc xmlComponent
	if err := xml.Unmarshal([]byte(src), &xc); err != nil {
		return nil, fmt.Errorf("descriptor: XML: %w", err)
	}
	c := &Component{
		Name:        strings.TrimSpace(xc.Name),
		Description: xc.Desc,
		Kind:        TaskKind(strings.ToLower(strings.TrimSpace(xc.Type))),
		Enabled:     xc.Enabled != "false",
	}
	var problems []string
	addf := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}

	if c.Name == "" {
		addf("missing name")
	} else if !ipc.ValidName(c.Name) {
		addf("name %q must be 1..%d characters (RTAI task name)", c.Name, ipc.MaxNameLen)
	}

	if xc.CPUUsage != "" {
		u, err := strconv.ParseFloat(xc.CPUUsage, 64)
		if err != nil || u < 0 || u > 1 {
			addf("cpuusage %q must be a fraction in [0,1]", xc.CPUUsage)
		} else {
			c.CPUUsage = u
		}
	}

	if xc.Importance != "" {
		n, err := strconv.Atoi(strings.TrimSpace(xc.Importance))
		if err != nil || n < 0 {
			addf("importance %q must be a non-negative integer", xc.Importance)
		} else {
			c.Importance = n
		}
	}

	c.Implementation = firstNonEmpty(xc.Implementation.Bincode, xc.Implementation.Class)
	if c.Implementation == "" {
		addf("missing implementation bincode")
	}

	switch c.Kind {
	case Periodic:
		if xc.PeriodicTask == nil {
			addf("periodic component needs a periodictask element")
		} else {
			spec := &PeriodicSpec{}
			freq := firstNonEmpty(xc.PeriodicTask.Frequence, xc.PeriodicTask.Frequency)
			f, err := strconv.ParseFloat(strings.TrimSpace(freq), 64)
			if err != nil || f <= 0 {
				addf("periodictask frequence %q must be a positive number", freq)
			} else {
				spec.FrequencyHz = f
			}
			spec.CPU, spec.Priority = parseCPUPrio(
				firstNonEmpty(xc.PeriodicTask.RunOnCup, xc.PeriodicTask.RunOnCPU),
				xc.PeriodicTask.Priority, addf)
			c.Periodic = spec
		}
	case Aperiodic:
		spec := &AperiodicSpec{}
		if xc.AperiodicTask != nil {
			spec.CPU, spec.Priority = parseCPUPrio(
				firstNonEmpty(xc.AperiodicTask.RunOnCup, xc.AperiodicTask.RunOnCPU),
				xc.AperiodicTask.Priority, addf)
		}
		c.Aperiodic = spec
	default:
		addf("type %q must be periodic or aperiodic", xc.Type)
	}

	if xc.Budget != nil {
		d, err := policy.ParseDist(xc.Budget.Dist)
		if err != nil {
			addf("budget %v", err)
		} else {
			c.Budget = d
		}
		c.BudgetP = policy.DefaultMetP
		if ps := strings.TrimSpace(xc.Budget.P); ps != "" {
			p, err := strconv.ParseFloat(ps, 64)
			if err != nil || !(p > 0 && p < 1) {
				addf("budget p %q must be a probability in (0,1)", xc.Budget.P)
			} else {
				c.BudgetP = p
			}
		}
		if c.CPUUsage <= 0 {
			addf("budget requires a declared cpuusage (the nominal fraction the load accumulators track)")
		}
	}

	seenPorts := map[string]bool{}
	for _, xp := range xc.OutPorts {
		if p, ok := parsePort(xp, Out, seenPorts, addf); ok {
			c.OutPorts = append(c.OutPorts, p)
		}
	}
	for _, xp := range xc.InPorts {
		if p, ok := parsePort(xp, In, seenPorts, addf); ok {
			c.InPorts = append(c.InPorts, p)
		}
	}

	prevCost := c.CPUUsage
	seenModes := map[string]bool{FullModeName: true}
	for i, xm := range xc.Modes {
		m := Mode{Name: strings.TrimSpace(xm.Name)}
		if m.Name == "" {
			addf("mode %d missing name", i+1)
		} else if seenModes[m.Name] {
			addf("duplicate mode name %q", m.Name)
		} else {
			seenModes[m.Name] = true
		}
		if freq := firstNonEmpty(xm.Frequence, xm.Frequency); freq != "" {
			if c.Kind != Periodic {
				addf("mode %q sets frequence on a non-periodic component", m.Name)
			} else if f, err := strconv.ParseFloat(freq, 64); err != nil || f <= 0 {
				addf("mode %q frequence %q must be a positive number", m.Name, freq)
			} else {
				m.FrequencyHz = f
			}
		}
		u, err := strconv.ParseFloat(strings.TrimSpace(xm.CPUUsage), 64)
		switch {
		case err != nil || u <= 0 || u > 1:
			addf("mode %q cpuusage %q must be a fraction in (0,1]", m.Name, xm.CPUUsage)
		case u >= prevCost:
			addf("mode %q cpuusage %g must be below the preceding mode's %g (monotonically decreasing cost)",
				m.Name, u, prevCost)
		default:
			m.CPUUsage = u
			prevCost = u
		}
		for _, d := range strings.Fields(xm.Drops) {
			declared := false
			for _, in := range c.InPorts {
				if in.Name == d {
					declared = true
					break
				}
			}
			if !declared {
				addf("mode %q drops unknown inport %q", m.Name, d)
				continue
			}
			m.Drops = append(m.Drops, d)
		}
		c.Modes = append(c.Modes, m)
	}

	seenProps := map[string]bool{}
	for _, xp := range xc.Properties {
		if xp.Name == "" {
			addf("property without name")
			continue
		}
		if seenProps[xp.Name] {
			addf("duplicate property %q", xp.Name)
			continue
		}
		seenProps[xp.Name] = true
		typ := xp.Type
		if typ == "" {
			typ = "String"
		}
		switch typ {
		case "Integer", "Float", "String", "Boolean":
		default:
			addf("property %q has unknown type %q", xp.Name, xp.Type)
			continue
		}
		c.Properties = append(c.Properties, Property{Name: xp.Name, Type: typ, Value: xp.Value})
	}

	if len(problems) > 0 {
		return nil, &ValidationError{Component: c.Name, Problems: problems}
	}
	return c, nil
}

// ParseAll parses a set of descriptor documents, failing on the first
// error or duplicate component name.
func ParseAll(srcs []string) ([]*Component, error) {
	seen := map[string]bool{}
	out := make([]*Component, 0, len(srcs))
	for i, src := range srcs {
		c, err := Parse(src)
		if err != nil {
			return nil, fmt.Errorf("descriptor %d: %w", i, err)
		}
		if seen[c.Name] {
			return nil, fmt.Errorf("descriptor: duplicate component name %q", c.Name)
		}
		seen[c.Name] = true
		out = append(out, c)
	}
	return out, nil
}

func parseCPUPrio(cpuStr, prioStr string, addf func(string, ...any)) (cpuID, prio int) {
	if cpuStr != "" {
		v, err := strconv.Atoi(strings.TrimSpace(cpuStr))
		if err != nil || v < 0 {
			addf("runoncup %q must be a non-negative integer", cpuStr)
		} else {
			cpuID = v
		}
	}
	if prioStr != "" {
		v, err := strconv.Atoi(strings.TrimSpace(prioStr))
		if err != nil || v < 0 {
			addf("priority %q must be a non-negative integer", prioStr)
		} else {
			prio = v
		}
	}
	return cpuID, prio
}

func parsePort(xp xmlPort, dir Direction, seen map[string]bool, addf func(string, ...any)) (Port, bool) {
	ok := true
	p := Port{Name: xp.Name, Direction: dir}
	if xp.Name == "" {
		addf("%v without name", dir)
		ok = false
	} else if !ipc.ValidName(xp.Name) {
		addf("%v name %q must be 1..%d characters", dir, xp.Name, ipc.MaxNameLen)
		ok = false
	} else if seen[xp.Name] {
		addf("duplicate port name %q", xp.Name)
		ok = false
	} else {
		seen[xp.Name] = true
	}
	switch PortInterface(xp.Interface) {
	case SHM, Mailbox:
		p.Interface = PortInterface(xp.Interface)
	default:
		addf("port %q interface %q must be RTAI.SHM or RTAI.Mailbox", xp.Name, xp.Interface)
		ok = false
	}
	if t, err := ipc.ParseElemType(strings.TrimSpace(xp.Type)); err != nil {
		addf("port %q type %q must be Integer or Byte", xp.Name, xp.Type)
		ok = false
	} else {
		p.Type = t
	}
	if n, err := strconv.Atoi(strings.TrimSpace(xp.Size)); err != nil || n <= 0 {
		addf("port %q size %q must be a positive integer", xp.Name, xp.Size)
		ok = false
	} else {
		p.Size = n
	}
	if v := strings.TrimSpace(xp.Version); v != "" {
		if dir == Out {
			ver, err := manifest.ParseVersion(v)
			if err != nil {
				addf("outport %q version %q must be a version (major[.minor[.micro]]): %v", xp.Name, xp.Version, err)
				ok = false
			} else {
				p.Version = ver.String()
			}
		} else {
			rng, err := manifest.ParseRange(v)
			if err != nil {
				addf("inport %q version %q must be a version range: %v", xp.Name, xp.Version, err)
				ok = false
			} else {
				p.Version = rng.String()
			}
		}
	}
	if dtSrc := strings.TrimSpace(xp.DataType); dtSrc != "" {
		dt, err := parseDataType(dtSrc)
		if err != nil {
			addf("port %q datatype %q invalid: %v", xp.Name, xp.DataType, err)
			ok = false
		} else {
			et, n, err := dt.flatten()
			switch {
			case err != nil:
				addf("port %q datatype %q invalid: %v", xp.Name, xp.DataType, err)
				ok = false
			case p.Type != 0 && et != 0 && et != p.Type:
				addf("port %q datatype %q flattens to %v elements but the port type is %v", xp.Name, xp.DataType, et, p.Type)
				ok = false
			case p.Size != 0 && n > p.Size:
				addf("port %q datatype %q needs %d elements but the port size is %d", xp.Name, xp.DataType, n, p.Size)
				ok = false
			default:
				p.DataType = dt.String()
			}
		}
	}
	return p, ok
}

func firstNonEmpty(ss ...string) string {
	for _, s := range ss {
		if strings.TrimSpace(s) != "" {
			return strings.TrimSpace(s)
		}
	}
	return ""
}

// ErrNotDRCom is returned by Sniff for XML that is not a DRCom component.
var ErrNotDRCom = errors.New("descriptor: not a DRCom component document")

// Sniff reports whether src looks like a DRCom component descriptor
// (root element "component"), without full validation.
func Sniff(src string) error {
	var probe struct {
		XMLName xml.Name
	}
	if err := xml.Unmarshal([]byte(src), &probe); err != nil {
		return fmt.Errorf("descriptor: XML: %w", err)
	}
	if probe.XMLName.Local != "component" {
		return ErrNotDRCom
	}
	return nil
}
