package descriptor

import (
	"fmt"
	"reflect"
	"testing"
	"testing/quick"
)

func TestRenderRoundTripFigure2(t *testing.T) {
	c, err := Parse(figure2)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(c.Render())
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, c.Render())
	}
	if !reflect.DeepEqual(c, back) {
		t.Fatalf("round trip changed component:\n%+v\nvs\n%+v", c, back)
	}
}

func TestRenderRoundTripAperiodic(t *testing.T) {
	src := `<component name="ap" type="aperiodic" enabled="false" importance="4">
	  <implementation bincode="x.Y"/>
	  <aperiodictask runoncup="1" priority="7"/>
	  <outport name="out" interface="RTAI.Mailbox" type="Byte" size="8"/>
	  <property name="note" value="hello &quot;world&quot;"/>
	</component>`
	c, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(c.Render())
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, c.Render())
	}
	if !reflect.DeepEqual(c, back) {
		t.Fatalf("round trip changed component:\n%+v\nvs\n%+v", c, back)
	}
}

// Property: any component generated over the schema's value space
// survives a Render/Parse round trip unchanged.
func TestRenderRoundTripProperty(t *testing.T) {
	prop := func(nameSeed uint16, periodic bool, freq uint8, cpuID, prio uint8,
		usagePct uint8, importance uint8, nPorts uint8, propVal uint16) bool {
		name := fmt.Sprintf("c%04x", nameSeed) // 5 chars, within the 6-char limit
		src := fmt.Sprintf(`<component name=%q type=%q cpuusage="%g" importance="%d">
		  <implementation bincode="gen.Impl"/>`,
			name, map[bool]string{true: "periodic", false: "aperiodic"}[periodic],
			float64(usagePct%100)/100, importance%50)
		if periodic {
			src += fmt.Sprintf(`<periodictask frequence="%d" runoncup="%d" priority="%d"/>`,
				int(freq)+1, cpuID%4, prio%32)
		} else {
			src += fmt.Sprintf(`<aperiodictask runoncup="%d" priority="%d"/>`, cpuID%4, prio%32)
		}
		for i := 0; i < int(nPorts%3); i++ {
			src += fmt.Sprintf(`<outport name="o%d" interface="RTAI.SHM" type="Integer" size="%d"/>`, i, i+1)
			src += fmt.Sprintf(`<inport name="i%d" interface="RTAI.Mailbox" type="Byte" size="%d"/>`, i, i+2)
		}
		src += fmt.Sprintf(`<property name="v" type="Integer" value="%d"/></component>`, propVal)
		c, err := Parse(src)
		if err != nil {
			return false
		}
		back, err := Parse(c.Render())
		if err != nil {
			return false
		}
		return reflect.DeepEqual(c, back)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
