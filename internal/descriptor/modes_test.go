package descriptor

import (
	"strings"
	"testing"
	"time"
)

// multiMode declares two degraded fallbacks below the base contract:
// "eco" quarters the rate and budget, "min" additionally sheds the
// optional tuning inport.
const multiMode = `<?xml version="1.0" encoding="UTF-8"?>
<drt:component name="calc" type="periodic" cpuusage="0.08" xmlns:drt="urn:drcom">
  <implementation bincode="demo.calc"/>
  <periodictask frequence="1000" runoncup="0" priority="1"/>
  <outport name="lat" interface="RTAI.SHM" type="Integer" size="100"/>
  <inport name="tune" interface="RTAI.SHM" type="Integer" size="10"/>
  <mode name="eco" frequence="250" cpuusage="0.04"/>
  <mode name="min" frequence="100" cpuusage="0.01" drops="tune"/>
</drt:component>`

func TestParseModes(t *testing.T) {
	c, err := Parse(multiMode)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumModes() != 3 {
		t.Fatalf("NumModes = %d, want 3", c.NumModes())
	}
	if c.ModeName(0) != FullModeName || c.ModeName(1) != "eco" || c.ModeName(2) != "min" {
		t.Errorf("mode names = %q %q %q", c.ModeName(0), c.ModeName(1), c.ModeName(2))
	}
	full := c.ModeSpec(0)
	if full.FrequencyHz != 1000 || full.CPUUsage != 0.08 {
		t.Errorf("mode 0 spec = %+v", full)
	}
	eco := c.ModeSpec(1)
	if eco.FrequencyHz != 250 || eco.CPUUsage != 0.04 || len(eco.Drops) != 0 {
		t.Errorf("eco spec = %+v", eco)
	}
	min := c.ModeSpec(2)
	if min.FrequencyHz != 100 || min.CPUUsage != 0.01 {
		t.Errorf("min spec = %+v", min)
	}
	if !c.RequiresInport(0, "tune") || !c.RequiresInport(1, "tune") {
		t.Error("tune must be required in modes 0 and 1")
	}
	if c.RequiresInport(2, "tune") {
		t.Error("mode min drops tune, RequiresInport says required")
	}
	if p := min.Period(); p != 10*time.Millisecond {
		t.Errorf("min period = %v, want 10ms", p)
	}
}

func TestModeSpecInheritsFrequency(t *testing.T) {
	src := strings.Replace(multiMode, ` frequence="250"`, "", 1)
	c, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.ModeSpec(1).FrequencyHz; got != 1000 {
		t.Errorf("eco inherited frequency = %g, want base 1000", got)
	}
}

func TestModeValidation(t *testing.T) {
	cases := []struct {
		name, mangle, with, wantErr string
	}{
		{"cost must decrease", `cpuusage="0.04"`, `cpuusage="0.08"`, "monotonically decreasing"},
		{"cost equal is not decreasing", `cpuusage="0.01" drops="tune"`, `cpuusage="0.04"`, "monotonically decreasing"},
		{"duplicate mode name", `name="min"`, `name="eco"`, "duplicate mode name"},
		{"reserved mode name", `name="eco"`, `name="full"`, "duplicate mode name"},
		{"unknown dropped inport", `drops="tune"`, `drops="nope"`, "unknown inport"},
		{"bad cpuusage", `cpuusage="0.04"`, `cpuusage="zero"`, "fraction"},
		{"missing mode name", `name="eco"`, `name=""`, "missing name"},
		{"bad frequency", `frequence="250"`, `frequence="-1"`, "positive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src := strings.Replace(multiMode, tc.mangle, tc.with, 1)
			if src == multiMode {
				t.Fatalf("mangle %q not applied", tc.mangle)
			}
			_, err := Parse(src)
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("Parse = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

func TestModeFrequencyRejectedOnAperiodic(t *testing.T) {
	src := `<component name="ap" type="aperiodic" cpuusage="0.1">
  <implementation bincode="demo.ap"/>
  <mode name="eco" frequence="10" cpuusage="0.05"/>
</component>`
	_, err := Parse(src)
	if err == nil || !strings.Contains(err.Error(), "non-periodic") {
		t.Errorf("Parse = %v, want frequence-on-aperiodic error", err)
	}
}

func TestModesRenderRoundTrip(t *testing.T) {
	c, err := Parse(multiMode)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Parse(c.Render())
	if err != nil {
		t.Fatalf("re-parse rendered descriptor: %v\n%s", err, c.Render())
	}
	if c2.Render() != c.Render() {
		t.Errorf("render round trip diverged:\n%s\nvs\n%s", c.Render(), c2.Render())
	}
	if len(c2.Modes) != 2 || c2.Modes[1].Drops[0] != "tune" {
		t.Errorf("round-tripped modes = %+v", c2.Modes)
	}
}

// Single-mode components keep the degenerate accessors: exactly one
// mode, named "full", carrying the base contract — the admission path
// relies on this to stay byte-identical for mode-less descriptors.
func TestSingleModeAccessors(t *testing.T) {
	c, err := Parse(figure2)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumModes() != 1 {
		t.Fatalf("NumModes = %d, want 1", c.NumModes())
	}
	if c.ModeName(0) != FullModeName || c.ModeSpec(0).CPUUsage != c.CPUUsage {
		t.Errorf("mode 0 = %q %+v", c.ModeName(0), c.ModeSpec(0))
	}
	if !c.RequiresInport(0, "xysize") {
		t.Error("base mode must require every inport")
	}
}
