package descriptor

import (
	"encoding/xml"
	"fmt"
	"strings"
)

// attr renders an XML-escaped attribute value in double quotes.
func attr(v string) string {
	var b strings.Builder
	_ = xml.EscapeText(&b, []byte(v))
	// EscapeText leaves double quotes alone; escape them for attribute
	// context.
	return `"` + strings.ReplaceAll(b.String(), `"`, "&#34;") + `"`
}

// typedAttrs renders the optional version/datatype attributes of a
// typed port ("" for untyped ports, keeping legacy output verbatim).
func typedAttrs(p Port) string {
	var b strings.Builder
	if p.Version != "" {
		fmt.Fprintf(&b, ` version=%s`, attr(p.Version))
	}
	if p.DataType != "" {
		fmt.Fprintf(&b, ` datatype=%s`, attr(p.DataType))
	}
	return b.String()
}

// Render writes the component back out as descriptor XML in the paper's
// Figure 2 schema. Parse(Render(c)) yields a component equal to c, which
// the tests pin as a property; tools use Render to normalise hand-written
// descriptors.
func (c *Component) Render() string {
	var b strings.Builder
	b.WriteString(`<?xml version="1.0" encoding="UTF-8"?>` + "\n")
	fmt.Fprintf(&b, `<drt:component name=%s`, attr(c.Name))
	if c.Description != "" {
		fmt.Fprintf(&b, ` desc=%s`, attr(c.Description))
	}
	fmt.Fprintf(&b, ` type=%s`, attr(string(c.Kind)))
	if !c.Enabled {
		b.WriteString(` enabled="false"`)
	}
	if c.CPUUsage != 0 {
		fmt.Fprintf(&b, ` cpuusage="%g"`, c.CPUUsage)
	}
	if c.Importance != 0 {
		fmt.Fprintf(&b, ` importance="%d"`, c.Importance)
	}
	b.WriteString(` xmlns:drt="urn:drcom">` + "\n")

	fmt.Fprintf(&b, "  <implementation bincode=%s/>\n", attr(c.Implementation))
	if c.Periodic != nil {
		fmt.Fprintf(&b, `  <periodictask frequence="%g" runoncup="%d" priority="%d"/>`+"\n",
			c.Periodic.FrequencyHz, c.Periodic.CPU, c.Periodic.Priority)
	}
	if c.Aperiodic != nil && (c.Aperiodic.CPU != 0 || c.Aperiodic.Priority != 0) {
		fmt.Fprintf(&b, `  <aperiodictask runoncup="%d" priority="%d"/>`+"\n",
			c.Aperiodic.CPU, c.Aperiodic.Priority)
	}
	if c.Budget != nil {
		fmt.Fprintf(&b, `  <budget dist=%s p="%g"/>`+"\n", attr(c.Budget.String()), c.BudgetP)
	}
	for _, p := range c.OutPorts {
		fmt.Fprintf(&b, `  <outport name=%s interface=%s type=%s size="%d"%s/>`+"\n",
			attr(p.Name), attr(string(p.Interface)), attr(p.Type.String()), p.Size, typedAttrs(p))
	}
	for _, p := range c.InPorts {
		fmt.Fprintf(&b, `  <inport name=%s interface=%s type=%s size="%d"%s/>`+"\n",
			attr(p.Name), attr(string(p.Interface)), attr(p.Type.String()), p.Size, typedAttrs(p))
	}
	for _, m := range c.Modes {
		fmt.Fprintf(&b, `  <mode name=%s`, attr(m.Name))
		if m.FrequencyHz != 0 {
			fmt.Fprintf(&b, ` frequence="%g"`, m.FrequencyHz)
		}
		fmt.Fprintf(&b, ` cpuusage="%g"`, m.CPUUsage)
		if len(m.Drops) != 0 {
			fmt.Fprintf(&b, ` drops=%s`, attr(strings.Join(m.Drops, " ")))
		}
		b.WriteString("/>\n")
	}
	for _, p := range c.Properties {
		fmt.Fprintf(&b, `  <property name=%s type=%s value=%s/>`+"\n",
			attr(p.Name), attr(p.Type), attr(p.Value))
	}
	b.WriteString("</drt:component>\n")
	return b.String()
}
