// Typed, versioned port contracts. Ports optionally carry two extra
// attributes beyond the paper's name/interface/type/size quadruple:
//
//   - version:  on an outport, the concrete contract version the
//     provider implements ("1.2.0"); on an inport, an OSGi version
//     range the consumer accepts ("1.2" == [1.2.0,∞), "[1.0,2.0)").
//
//   - datatype: a structural description of the payload carried in the
//     port's buffer, in a small grammar:
//
//     T := int32 | byte | T[n] | struct{field:T,field:T,...}
//
// Both attributes are optional and default to today's bare string
// matching, so descriptors without them behave exactly as before.
//
// Compatibility is checked with explicit variance rules:
//
//   - versions: the provider's concrete version must lie in the
//     consumer's accepted range. A consumer that declares a range
//     rejects providers that declare no version (an unversioned
//     provider promises nothing); a provider version with no consumer
//     range always passes.
//   - datatypes: structural subtyping, provider ⊑ requirement.
//     Primitives are invariant; arrays are covariant in length (a
//     longer provider array satisfies a shorter requirement); records
//     use width subtyping (the provider may carry extra fields, and
//     each required field must be structurally satisfied). A consumer
//     requirement rejects providers that declare no datatype.
//
// The flattened primitive shape of a datatype must agree with the
// port's element type and fit in its declared size, which Parse
// enforces, so the structural layer refines — never contradicts — the
// transport layer.
package descriptor

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/manifest"
	"repro/internal/rtos/ipc"
)

// dtKind discriminates dataType nodes.
type dtKind int

const (
	dtInt32 dtKind = iota + 1
	dtByte
	dtArray
	dtStruct
)

// dataType is a parsed structural payload type.
type dataType struct {
	kind   dtKind
	elem   *dataType // array element
	length int       // array length
	fields []dtField // struct fields, name-sorted
}

type dtField struct {
	name string
	typ  *dataType
}

// maxDTDepth bounds type-constructor nesting so hostile descriptors
// cannot stack-overflow the recursive checks.
const maxDTDepth = 32

// String renders the canonical form: no whitespace, struct fields
// name-sorted. Parse(String(t)) == t, which the fuzz target pins via
// the descriptor Render round trip.
func (t *dataType) String() string {
	var b strings.Builder
	t.render(&b)
	return b.String()
}

func (t *dataType) render(b *strings.Builder) {
	switch t.kind {
	case dtInt32:
		b.WriteString("int32")
	case dtByte:
		b.WriteString("byte")
	case dtArray:
		t.elem.render(b)
		fmt.Fprintf(b, "[%d]", t.length)
	case dtStruct:
		b.WriteString("struct{")
		for i, f := range t.fields {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(f.name)
			b.WriteByte(':')
			f.typ.render(b)
		}
		b.WriteByte('}')
	}
}

// flatten returns the primitive element kind and count of the type
// (what the port buffer must hold). Mixed-primitive types are invalid:
// a port buffer has a single element type.
func (t *dataType) flatten() (ipc.ElemType, int, error) {
	switch t.kind {
	case dtInt32:
		return ipc.Integer, 1, nil
	case dtByte:
		return ipc.Byte, 1, nil
	case dtArray:
		et, n, err := t.elem.flatten()
		return et, n * t.length, err
	case dtStruct:
		var et ipc.ElemType
		total := 0
		for _, f := range t.fields {
			ft, n, err := f.typ.flatten()
			if err != nil {
				return 0, 0, err
			}
			if et == 0 {
				et = ft
			} else if et != ft {
				return 0, 0, fmt.Errorf("mixes %v and %v elements", et, ft)
			}
			total += n
		}
		return et, total, nil
	}
	return 0, 0, fmt.Errorf("invalid datatype node")
}

// satisfies reports whether a provider of type t structurally
// satisfies requirement req (see the package comment for the variance
// rules).
func (t *dataType) satisfies(req *dataType) bool {
	if t.kind != req.kind {
		return false
	}
	switch req.kind {
	case dtInt32, dtByte:
		return true
	case dtArray:
		return t.length >= req.length && t.elem.satisfies(req.elem)
	case dtStruct:
		for _, rf := range req.fields {
			var pf *dataType
			for i := range t.fields {
				if t.fields[i].name == rf.name {
					pf = t.fields[i].typ
					break
				}
			}
			if pf == nil || !pf.satisfies(rf.typ) {
				return false
			}
		}
		return true
	}
	return false
}

// dtParser is a recursive-descent parser over the datatype grammar.
// Whitespace is tolerated between tokens and erased by canonicalising.
type dtParser struct {
	s   string
	pos int
}

func parseDataType(s string) (*dataType, error) {
	p := &dtParser{s: s}
	t, err := p.parseType(0)
	if err != nil {
		return nil, err
	}
	p.skipWS()
	if p.pos != len(p.s) {
		return nil, fmt.Errorf("trailing input at offset %d", p.pos)
	}
	return t, nil
}

func (p *dtParser) skipWS() {
	for p.pos < len(p.s) {
		switch p.s[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *dtParser) ident() string {
	start := p.pos
	for p.pos < len(p.s) {
		c := p.s[p.pos]
		if c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(p.pos > start && c >= '0' && c <= '9') {
			p.pos++
			continue
		}
		break
	}
	return p.s[start:p.pos]
}

func (p *dtParser) expect(c byte) error {
	p.skipWS()
	if p.pos >= len(p.s) || p.s[p.pos] != c {
		return fmt.Errorf("expected %q at offset %d", string(c), p.pos)
	}
	p.pos++
	return nil
}

func (p *dtParser) parseType(depth int) (*dataType, error) {
	if depth > maxDTDepth {
		return nil, fmt.Errorf("nesting deeper than %d", maxDTDepth)
	}
	p.skipWS()
	var base *dataType
	switch id := p.ident(); id {
	case "int32":
		base = &dataType{kind: dtInt32}
	case "byte":
		base = &dataType{kind: dtByte}
	case "struct":
		if err := p.expect('{'); err != nil {
			return nil, err
		}
		st := &dataType{kind: dtStruct}
		seen := map[string]bool{}
		for {
			p.skipWS()
			name := p.ident()
			if name == "" {
				return nil, fmt.Errorf("expected field name at offset %d", p.pos)
			}
			if seen[name] {
				return nil, fmt.Errorf("duplicate field %q", name)
			}
			seen[name] = true
			if err := p.expect(':'); err != nil {
				return nil, err
			}
			ft, err := p.parseType(depth + 1)
			if err != nil {
				return nil, err
			}
			st.fields = append(st.fields, dtField{name: name, typ: ft})
			p.skipWS()
			if p.pos < len(p.s) && p.s[p.pos] == ',' {
				p.pos++
				continue
			}
			break
		}
		if err := p.expect('}'); err != nil {
			return nil, err
		}
		sort.Slice(st.fields, func(i, j int) bool {
			return st.fields[i].name < st.fields[j].name
		})
		base = st
	case "":
		return nil, fmt.Errorf("expected a type at offset %d", p.pos)
	default:
		return nil, fmt.Errorf("unknown type %q (want int32, byte, T[n], or struct{...})", id)
	}
	// Array suffixes wrap left to right: int32[4][2] is two rows of
	// four int32s.
	arrDepth := depth
	for {
		p.skipWS()
		if p.pos >= len(p.s) || p.s[p.pos] != '[' {
			return base, nil
		}
		arrDepth++
		if arrDepth > maxDTDepth {
			return nil, fmt.Errorf("nesting deeper than %d", maxDTDepth)
		}
		p.pos++
		p.skipWS()
		start := p.pos
		for p.pos < len(p.s) && p.s[p.pos] >= '0' && p.s[p.pos] <= '9' {
			p.pos++
		}
		n, err := strconv.Atoi(p.s[start:p.pos])
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("array length at offset %d must be a positive integer", start)
		}
		if err := p.expect(']'); err != nil {
			return nil, err
		}
		base = &dataType{kind: dtArray, elem: base, length: n}
	}
}

// ExplainTypedMismatch checks the version/datatype annotations of a
// provider outport p against consumer inport in and returns "" when
// they are compatible, else a human-readable reason naming the exact
// incompatibility (version range vs. structural mismatch). It only
// judges the typed layer — callers check the base name/interface/
// type/size match separately.
func (p Port) ExplainTypedMismatch(in Port) string {
	if in.Version == "" && in.DataType == "" {
		return "" // consumer requires nothing beyond the base contract
	}
	if in.Version != "" {
		if p.Version == "" {
			return fmt.Sprintf("consumer requires version %s but provider declares no version", in.Version)
		}
		rng, err := manifest.ParseRange(in.Version)
		if err != nil {
			return fmt.Sprintf("consumer version range %q invalid: %v", in.Version, err)
		}
		ver, err := manifest.ParseVersion(p.Version)
		if err != nil {
			return fmt.Sprintf("provider version %q invalid: %v", p.Version, err)
		}
		if !rng.Contains(ver) {
			return fmt.Sprintf("provider version %s outside required range %s", p.Version, in.Version)
		}
	}
	if in.DataType != "" {
		if p.DataType == "" {
			return fmt.Sprintf("consumer requires datatype %s but provider declares none", in.DataType)
		}
		req, err := parseDataType(in.DataType)
		if err != nil {
			return fmt.Sprintf("consumer datatype %q invalid: %v", in.DataType, err)
		}
		prov, err := parseDataType(p.DataType)
		if err != nil {
			return fmt.Sprintf("provider datatype %q invalid: %v", p.DataType, err)
		}
		if !prov.satisfies(req) {
			return fmt.Sprintf("provider datatype %s does not structurally satisfy %s", p.DataType, in.DataType)
		}
	}
	return ""
}

// typedOK is the boolean form used on the CanSatisfy hot path. Ports
// without annotations short-circuit to true at zero cost.
func (p Port) typedOK(in Port) bool {
	if in.Version == "" && in.DataType == "" {
		return true
	}
	return p.ExplainTypedMismatch(in) == ""
}
