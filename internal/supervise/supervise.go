// Package supervise implements the restart plane: a supervisor that
// watches the DRCR for crashed components and brings them back through
// the normal admission path, under a per-component restart budget with
// deterministic exponential backoff, escalating from the component to
// its bundle when restarts alone do not hold.
//
// The paper's runtime (§2.2) reacts to departures by re-resolving the
// survivors; nothing brings a failed component back. The supervisor
// closes that loop for the fault campaigns: a crash (core.Crash, fault
// kind Crash) lands the component DISABLED, the supervisor re-enables it
// after a backoff on the simulated clock, and the DRCR's ordinary
// resolution decides — possibly in a degraded mode — whether it may run
// again. A restart storm inside the budget window escalates: the whole
// bundle is stopped and restarted, re-deploying its components from
// their descriptors; components with no bundle are given up on instead.
package supervise

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/osgi"
	"repro/internal/sim"
)

// Options parameterise the supervisor; the zero value uses the defaults
// below. SetPolicy overrides them per component.
type Options struct {
	// MaxRestarts is the restart budget inside a Window: the crash that
	// would exceed it escalates instead of restarting (default 3).
	MaxRestarts int
	// Window is the sliding simulated-time window the budget counts in
	// (default 2s).
	Window time.Duration
	// Backoff is the delay before the first restart; each further strike
	// inside the window doubles it (default 20ms).
	Backoff time.Duration
	// NoEscalation disables the bundle-restart escalation: an exhausted
	// budget gives the component up instead.
	NoEscalation bool
}

func (o *Options) applyDefaults() {
	if o.MaxRestarts <= 0 {
		o.MaxRestarts = 3
	}
	if o.Window <= 0 {
		o.Window = 2 * time.Second
	}
	if o.Backoff <= 0 {
		o.Backoff = 20 * time.Millisecond
	}
}

// Record is one supervisor decision, for the deterministic trace.
type Record struct {
	At        sim.Time
	Action    string // "restart", "escalate", "give-up"
	Component string
	Detail    string
}

// record is the per-component supervision state.
type record struct {
	strikes []sim.Time // crash/violation strike times inside the window
	count   int64      // lifetime restarts issued
	gaveUp  bool
}

// Supervisor watches one DRCR.
type Supervisor struct {
	d    *core.DRCR
	fw   *osgi.Framework
	opts Options

	mu        sync.Mutex
	overrides map[string]Options
	recs      map[string]*record
	trace     []Record
	pending   map[string]*sim.Event
	running   bool
	remove    func()
}

// New builds a supervisor over a DRCR and its owning framework.
func New(d *core.DRCR, opts Options) (*Supervisor, error) {
	if d == nil {
		return nil, errors.New("supervise: supervisor needs a DRCR")
	}
	opts.applyDefaults()
	return &Supervisor{
		d:         d,
		fw:        d.Framework(),
		opts:      opts,
		overrides: map[string]Options{},
		recs:      map[string]*record{},
		pending:   map[string]*sim.Event{},
	}, nil
}

// SetPolicy overrides the restart policy for one component.
func (s *Supervisor) SetPolicy(component string, opts Options) {
	opts.applyDefaults()
	s.mu.Lock()
	s.overrides[component] = opts
	s.mu.Unlock()
}

// Start subscribes to DRCR lifecycle events.
func (s *Supervisor) Start() {
	s.mu.Lock()
	if s.running {
		s.mu.Unlock()
		return
	}
	s.running = true
	s.mu.Unlock()
	s.remove = s.d.AddListener(s.onEvent)
}

// Stop unsubscribes and cancels scheduled restarts.
func (s *Supervisor) Stop() {
	s.mu.Lock()
	if !s.running {
		s.mu.Unlock()
		return
	}
	s.running = false
	remove := s.remove
	s.remove = nil
	for name, ev := range s.pending {
		ev.Cancel()
		delete(s.pending, name)
	}
	s.mu.Unlock()
	if remove != nil {
		remove()
	}
}

// Trace returns a copy of the decision trace.
func (s *Supervisor) Trace() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Record, len(s.trace))
	copy(out, s.trace)
	return out
}

// Restarts returns the lifetime restart count for a component.
func (s *Supervisor) Restarts(component string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r := s.recs[component]; r != nil {
		return r.count
	}
	return 0
}

// NoteViolation feeds an external strike (e.g. a guard violation the
// caller wants supervised) into the component's budget window: enough of
// them escalate exactly like crashes, without a restart being issued.
func (s *Supervisor) NoteViolation(component string) {
	now := s.d.Kernel().Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.running {
		return
	}
	r := s.rec(component)
	if r.gaveUp {
		return
	}
	opts := s.policy(component)
	s.pruneLocked(r, now, opts.Window)
	r.strikes = append(r.strikes, now)
	if len(r.strikes) > opts.MaxRestarts {
		s.escalateLocked(component, now, opts,
			fmt.Sprintf("%d strikes within %v", len(r.strikes), opts.Window))
	}
}

func (s *Supervisor) rec(component string) *record {
	r := s.recs[component]
	if r == nil {
		r = &record{}
		s.recs[component] = r
	}
	return r
}

func (s *Supervisor) policy(component string) Options {
	if o, ok := s.overrides[component]; ok {
		return o
	}
	return s.opts
}

func (s *Supervisor) pruneLocked(r *record, now sim.Time, window time.Duration) {
	cut := 0
	for cut < len(r.strikes) && now.Sub(r.strikes[cut]) > window {
		cut++
	}
	r.strikes = r.strikes[cut:]
}

// onEvent reacts to crash transitions: a component dropping to DISABLED
// with a crash reason is scheduled for restart or escalated.
func (s *Supervisor) onEvent(e core.Event) {
	if e.To != core.Disabled || !strings.HasPrefix(e.Reason, "crashed") {
		return
	}
	now := s.d.Kernel().Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.running {
		return
	}
	name := e.Component
	r := s.rec(name)
	if r.gaveUp {
		return
	}
	opts := s.policy(name)
	s.pruneLocked(r, now, opts.Window)
	r.strikes = append(r.strikes, now)
	if len(r.strikes) > opts.MaxRestarts {
		s.escalateLocked(name, now, opts,
			fmt.Sprintf("restart budget exhausted: %d crashes within %v", len(r.strikes), opts.Window))
		return
	}
	// Deterministic exponential backoff: the nth strike inside the window
	// waits 2^(n-1) × Backoff before re-entering admission.
	delay := opts.Backoff << (len(r.strikes) - 1)
	s.scheduleLocked(name, delay, e.Reason)
}

func (s *Supervisor) scheduleLocked(name string, delay time.Duration, why string) {
	clock := s.d.Kernel().Clock()
	ev, err := clock.After(delay, "supervise:restart:"+name, func(at sim.Time) {
		s.mu.Lock()
		if !s.running {
			s.mu.Unlock()
			return
		}
		delete(s.pending, name)
		r := s.rec(name)
		r.count++
		n := r.count
		s.trace = append(s.trace, Record{At: at, Action: "restart", Component: name,
			Detail: fmt.Sprintf("restart #%d after %v (%s)", n, delay, why)})
		s.mu.Unlock()
		plane := s.d.Obs()
		// The restart chains to the open fault on the component (the
		// injected crash), and the re-admission chains to the restart.
		id := plane.Restart(at, name, n, "supervised restart after crash", plane.OpenCause(name))
		plane.PushCause(id)
		_ = s.d.Enable(name)
		plane.PopCause()
	})
	if err != nil {
		s.trace = append(s.trace, Record{At: s.d.Kernel().Now(), Action: "error", Component: name, Detail: err.Error()})
		return
	}
	s.pending[name] = ev
}

// escalateLocked moves up one supervision level: restart the component's
// whole bundle (re-deploying every component it declares), or give the
// component up when it has no bundle or escalation is disabled. Called
// with s.mu held.
func (s *Supervisor) escalateLocked(name string, now sim.Time, opts Options, why string) {
	r := s.rec(name)
	r.gaveUp = true // one escalation per component; the fresh deploy starts clean
	plane := s.d.Obs()
	info, ok := s.d.Component(name)
	if !ok || opts.NoEscalation || info.Bundle == "" {
		s.trace = append(s.trace, Record{At: now, Action: "give-up", Component: name, Detail: why})
		plane.Escalate(now, name, "", "gave up: "+why, plane.OpenCause(name))
		return
	}
	bundleName := info.Bundle
	s.trace = append(s.trace, Record{At: now, Action: "escalate", Component: name,
		Detail: "restart bundle " + bundleName + ": " + why})
	id := plane.Escalate(now, name, bundleName, why, plane.OpenCause(name))
	// The bundle bounce runs off the clock, not inside the event dispatch
	// that delivered the crash: stopping a bundle destroys components and
	// re-enters resolution.
	clock := s.d.Kernel().Clock()
	ev, err := clock.After(opts.Backoff, "supervise:escalate:"+bundleName, func(at sim.Time) {
		s.mu.Lock()
		delete(s.pending, name)
		running := s.running
		s.mu.Unlock()
		if !running {
			return
		}
		b := s.fw.BundleByName(bundleName)
		if b == nil {
			return
		}
		plane.PushCause(id)
		_ = b.Stop()
		_ = b.Start()
		plane.PopCause()
	})
	if err != nil {
		s.trace = append(s.trace, Record{At: now, Action: "error", Component: name, Detail: err.Error()})
		return
	}
	s.pending[name] = ev
}
