package supervise

import (
	"testing"
	"time"

	"repro/internal/contract"
	"repro/internal/core"
	"repro/internal/descriptor"
	"repro/internal/manifest"
	"repro/internal/obs"
	"repro/internal/osgi"
	"repro/internal/rtos"
	"repro/internal/sim"
)

const crasheeXML = `<component name="crash" type="periodic" cpuusage="0.02">
  <implementation bincode="demo.Crashee"/>
  <periodictask frequence="100" runoncup="0" priority="2"/>
</component>`

const bystanderXML = `<component name="byst" type="periodic" cpuusage="0.02">
  <implementation bincode="demo.Bystander"/>
  <periodictask frequence="100" runoncup="0" priority="3"/>
</component>`

func rig(t *testing.T) (*osgi.Framework, *rtos.Kernel, *core.DRCR) {
	t.Helper()
	fw := osgi.NewFramework()
	k := rtos.NewKernel(rtos.Config{Seed: 11})
	d, err := core.New(fw, k, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return fw, k, d
}

func installBundle(t *testing.T, fw *osgi.Framework, name, res, xml string) *osgi.Bundle {
	t.Helper()
	m := manifest.New(name, manifest.MustParseVersion("1.0"))
	m.DRComComponents = []string{res}
	b, err := fw.Install(osgi.Definition{
		Manifest:  m,
		Resources: map[string]string{res: xml},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	return b
}

func mustParse(t *testing.T, src string) *descriptor.Component {
	t.Helper()
	c, err := descriptor.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func crashAt(t *testing.T, k *rtos.Kernel, d *core.DRCR, name string, at time.Duration) {
	t.Helper()
	_, err := k.Clock().After(at, "test:crash:"+name, func(sim.Time) {
		_ = d.Crash(name, "test fault")
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSupervisedRestart pins the basic loop: a crash lands the component
// DISABLED, the supervisor re-enables it after the backoff, and normal
// admission brings it back ACTIVE.
func TestSupervisedRestart(t *testing.T) {
	fw, k, d := rig(t)
	installBundle(t, fw, "demo.crash", "OSGI-INF/crash.xml", crasheeXML)
	s, err := New(d, Options{Backoff: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	t.Cleanup(s.Stop)

	crashAt(t, k, d, "crash", 50*time.Millisecond)
	if err := k.Run(60 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if info, _ := d.Component("crash"); info.State != core.Disabled {
		t.Fatalf("crash = %v right after the fault, want DISABLED", info.State)
	}
	if err := k.Run(20 * time.Millisecond); err != nil { // backoff served at 70ms
		t.Fatal(err)
	}
	if info, _ := d.Component("crash"); info.State != core.Active {
		t.Fatalf("crash = %v after supervised restart, want ACTIVE", info.State)
	}
	if n := s.Restarts("crash"); n != 1 {
		t.Fatalf("restart count = %d, want 1", n)
	}
	snap := d.Obs().Snapshot()
	if snap.Supervise.Restarts != 1 || snap.Supervise.Escalations != 0 {
		t.Fatalf("supervise counters = %+v, want 1 restart, 0 escalations", snap.Supervise)
	}
}

// TestRestartStormEscalates pins escalation: four crashes inside the
// window exhaust the budget of 3, the supervisor bounces the whole
// bundle, the component comes back through a fresh deploy, and a
// bystander in another bundle rides it out untouched.
func TestRestartStormEscalates(t *testing.T) {
	fw, k, d := rig(t)
	installBundle(t, fw, "demo.crash", "OSGI-INF/crash.xml", crasheeXML)
	installBundle(t, fw, "demo.byst", "OSGI-INF/byst.xml", bystanderXML)

	g, err := contract.New(d, contract.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Stop)

	s, err := New(d, Options{MaxRestarts: 3, Window: 2 * time.Second, Backoff: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	t.Cleanup(s.Stop)

	for _, at := range []time.Duration{100, 200, 300, 400} {
		crashAt(t, k, d, "crash", at*time.Millisecond)
	}
	if err := k.Run(600 * time.Millisecond); err != nil {
		t.Fatal(err)
	}

	var restarts, escalates int
	for _, r := range s.Trace() {
		switch r.Action {
		case "restart":
			restarts++
		case "escalate":
			escalates++
		}
	}
	if restarts != 3 || escalates != 1 {
		t.Fatalf("restarts=%d escalates=%d, want 3 and 1 (trace %v)", restarts, escalates, s.Trace())
	}
	if info, ok := d.Component("crash"); !ok || info.State != core.Active {
		t.Fatalf("crash = %+v after bundle escalation, want ACTIVE via fresh deploy", info)
	}
	if info, _ := d.Component("byst"); info.State != core.Active {
		t.Fatalf("bystander = %v, want ACTIVE throughout", info.State)
	}
	if vs := g.Violations(); len(vs) != 0 {
		t.Fatalf("bystander guard violations = %v, want none", vs)
	}
	snap := d.Obs().Snapshot()
	if snap.Supervise.Restarts != 3 || snap.Supervise.Escalations != 1 {
		t.Fatalf("supervise counters = %+v, want 3 restarts, 1 escalation", snap.Supervise)
	}
	found := false
	for _, sp := range d.Obs().Spans() {
		if sp.Kind == obs.KindEscalate && sp.Component == "crash" && sp.To == "demo.crash" {
			found = true
		}
	}
	if !found {
		t.Fatal("no escalate span naming the bundle")
	}

	// After escalation the component is given up: another crash stays down.
	crashAt(t, k, d, "crash", 50*time.Millisecond) // relative to now (600ms)
	if err := k.Run(200 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if info, _ := d.Component("crash"); info.State != core.Disabled {
		t.Fatalf("crash = %v after post-escalation crash, want DISABLED (given up)", info.State)
	}
}

// TestGiveUpWithoutBundle pins the no-bundle path: a directly-deployed
// component cannot escalate, so an exhausted budget gives it up.
func TestGiveUpWithoutBundle(t *testing.T) {
	_, k, d := rig(t)
	desc := mustParse(t, crasheeXML)
	if err := d.Deploy(desc); err != nil {
		t.Fatal(err)
	}
	s, err := New(d, Options{MaxRestarts: 1, Backoff: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	t.Cleanup(s.Stop)

	crashAt(t, k, d, "crash", 20*time.Millisecond)
	crashAt(t, k, d, "crash", 60*time.Millisecond)
	if err := k.Run(200 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	var gaveUp bool
	for _, r := range s.Trace() {
		if r.Action == "give-up" {
			gaveUp = true
		}
	}
	if !gaveUp {
		t.Fatalf("no give-up record: %v", s.Trace())
	}
	if info, _ := d.Component("crash"); info.State != core.Disabled {
		t.Fatalf("crash = %v, want DISABLED after give-up", info.State)
	}
}
