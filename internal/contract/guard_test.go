package contract

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/descriptor"
	"repro/internal/osgi"
	"repro/internal/rtos"
)

const calcXML = `<component name="calc" desc="computing job" type="periodic" cpuusage="0.05">
  <implementation bincode="demo.Calculation"/>
  <periodictask frequence="1000" runoncup="0" priority="1"/>
  <outport name="lat" interface="RTAI.SHM" type="Integer" size="100"/>
  <property name="drcom.exectime.us" type="Integer" value="30"/>
</component>`

func rig(t *testing.T) (*rtos.Kernel, *core.DRCR) {
	t.Helper()
	fw := osgi.NewFramework()
	k := rtos.NewKernel(rtos.Config{Seed: 5})
	d, err := core.New(fw, k, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	err = d.RegisterBody("demo.Calculation", func(*descriptor.Component) rtos.Body {
		return func(j *rtos.JobContext) {
			if shm, err := j.Kernel.IPC().SHM("lat"); err == nil {
				_ = shm.Set(0, int64(j.Index))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	desc, err := descriptor.Parse(calcXML)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Deploy(desc); err != nil {
		t.Fatal(err)
	}
	return k, d
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, Options{}); err == nil {
		t.Fatal("nil DRCR accepted")
	}
}

func TestHealthyComponentStaysClean(t *testing.T) {
	k, d := rig(t)
	g, err := New(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Start(); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if vs := g.Violations(); len(vs) != 0 {
		t.Errorf("healthy run produced violations: %v", vs)
	}
	if tr := g.Trace(); len(tr) != 0 {
		t.Errorf("healthy run produced trace records: %v", tr)
	}
	g.Stop()
}

func TestObserveModeRecordsWithoutRevoking(t *testing.T) {
	k, d := rig(t)
	g, err := New(d, Options{Observe: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Start(); err != nil {
		t.Fatal(err)
	}
	task, ok := k.Task("calc")
	if !ok {
		t.Fatal("calc task missing")
	}
	task.SetExecScale(4) // 30 µs -> 120 µs per 1 ms period: 12% vs 5% declared
	if err := k.Run(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(g.Violations()) == 0 {
		t.Fatal("observe mode detected nothing")
	}
	if v := g.Violations()[0]; v.Kind != BudgetOverrun || v.Component != "calc" {
		t.Errorf("first violation = %v, want calc budget-overrun", v)
	}
	for _, r := range g.Trace() {
		if r.Action == "revoke" {
			t.Fatalf("observe mode revoked a budget: %v", r)
		}
	}
	if info, _ := d.Component("calc"); info.State != core.Active {
		t.Errorf("observe mode changed calc state to %v", info.State)
	}
}

func TestEnforcingGuardRevokesAndRestores(t *testing.T) {
	k, d := rig(t)
	g, err := New(d, Options{Quarantine: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Start(); err != nil {
		t.Fatal(err)
	}
	task, _ := k.Task("calc")
	task.SetExecScale(4)
	// Two over-budget windows trigger the violation; the scale dies with
	// the revoked task, so the re-admitted instance is healthy again.
	if err := k.Run(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	var revoked, restored bool
	for _, r := range g.Trace() {
		switch r.Action {
		case "revoke":
			revoked = true
		case "restore":
			restored = true
		}
	}
	if !revoked || !restored {
		t.Fatalf("revoked=%v restored=%v, want both (trace %v)", revoked, restored, g.Trace())
	}
	if info, _ := d.Component("calc"); info.State != core.Active || info.Revoked {
		t.Errorf("calc = %v revoked=%v at end, want ACTIVE and clear", info.State, info.Revoked)
	}
	if g.TraceDigest() == "" {
		t.Error("empty trace digest")
	}
}

func TestDigestIsOrderSensitive(t *testing.T) {
	_, d := rig(t)
	g, _ := New(d, Options{})
	empty := g.TraceDigest()
	g.record(0, "violation", "calc", "x")
	one := g.TraceDigest()
	if empty == one {
		t.Error("digest unchanged after a record")
	}
}
