package contract

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/descriptor"
	"repro/internal/osgi"
	"repro/internal/rtos"
)

const calcXML = `<component name="calc" desc="computing job" type="periodic" cpuusage="0.05">
  <implementation bincode="demo.Calculation"/>
  <periodictask frequence="1000" runoncup="0" priority="1"/>
  <outport name="lat" interface="RTAI.SHM" type="Integer" size="100"/>
  <property name="drcom.exectime.us" type="Integer" value="30"/>
</component>`

func rig(t *testing.T) (*rtos.Kernel, *core.DRCR) {
	t.Helper()
	fw := osgi.NewFramework()
	k := rtos.NewKernel(rtos.Config{Seed: 5})
	d, err := core.New(fw, k, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	err = d.RegisterBody("demo.Calculation", func(*descriptor.Component) rtos.Body {
		return func(j *rtos.JobContext) {
			if shm, err := j.Kernel.IPC().SHM("lat"); err == nil {
				_ = shm.Set(0, int64(j.Index))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	desc, err := descriptor.Parse(calcXML)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Deploy(desc); err != nil {
		t.Fatal(err)
	}
	return k, d
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, Options{}); err == nil {
		t.Fatal("nil DRCR accepted")
	}
}

func TestHealthyComponentStaysClean(t *testing.T) {
	k, d := rig(t)
	g, err := New(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Start(); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if vs := g.Violations(); len(vs) != 0 {
		t.Errorf("healthy run produced violations: %v", vs)
	}
	if tr := g.Trace(); len(tr) != 0 {
		t.Errorf("healthy run produced trace records: %v", tr)
	}
	g.Stop()
}

func TestObserveModeRecordsWithoutRevoking(t *testing.T) {
	k, d := rig(t)
	g, err := New(d, Options{Observe: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Start(); err != nil {
		t.Fatal(err)
	}
	task, ok := k.Task("calc")
	if !ok {
		t.Fatal("calc task missing")
	}
	task.SetExecScale(4) // 30 µs -> 120 µs per 1 ms period: 12% vs 5% declared
	if err := k.Run(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(g.Violations()) == 0 {
		t.Fatal("observe mode detected nothing")
	}
	if v := g.Violations()[0]; v.Kind != BudgetOverrun || v.Component != "calc" {
		t.Errorf("first violation = %v, want calc budget-overrun", v)
	}
	for _, r := range g.Trace() {
		if r.Action == "revoke" {
			t.Fatalf("observe mode revoked a budget: %v", r)
		}
	}
	if info, _ := d.Component("calc"); info.State != core.Active {
		t.Errorf("observe mode changed calc state to %v", info.State)
	}
}

func TestEnforcingGuardRevokesAndRestores(t *testing.T) {
	k, d := rig(t)
	g, err := New(d, Options{Quarantine: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Start(); err != nil {
		t.Fatal(err)
	}
	task, _ := k.Task("calc")
	task.SetExecScale(4)
	// Two over-budget windows trigger the violation; the scale dies with
	// the revoked task, so the re-admitted instance is healthy again.
	if err := k.Run(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	var revoked, restored bool
	for _, r := range g.Trace() {
		switch r.Action {
		case "revoke":
			revoked = true
		case "restore":
			restored = true
		}
	}
	if !revoked || !restored {
		t.Fatalf("revoked=%v restored=%v, want both (trace %v)", revoked, restored, g.Trace())
	}
	if info, _ := d.Component("calc"); info.State != core.Active || info.Revoked {
		t.Errorf("calc = %v revoked=%v at end, want ACTIVE and clear", info.State, info.Revoked)
	}
	if g.TraceDigest() == "" {
		t.Error("empty trace digest")
	}
}

func TestDigestIsOrderSensitive(t *testing.T) {
	_, d := rig(t)
	g, _ := New(d, Options{})
	empty := g.TraceDigest()
	g.record(0, "violation", "calc", "x")
	one := g.TraceDigest()
	if empty == one {
		t.Error("digest unchanged after a record")
	}
}

// calcDegradeXML declares a cheaper "eco" fallback the guard can step a
// violating calc down to. The pinned exec time (30 µs) is mode-invariant:
// degrading changes the contract, not the work, so the 4× inflated cost
// (120 µs) violates the full contract (12% vs 5%×1.5) but fits eco
// (120 µs / 4 ms = 3% vs 4%×1.5).
const calcDegradeXML = `<component name="calc" desc="computing job" type="periodic" cpuusage="0.05">
  <implementation bincode="demo.Calculation"/>
  <periodictask frequence="1000" runoncup="0" priority="1"/>
  <outport name="lat" interface="RTAI.SHM" type="Integer" size="100"/>
  <mode name="eco" frequence="250" cpuusage="0.04"/>
  <property name="drcom.exectime.us" type="Integer" value="30"/>
</component>`

// degradeRig deploys the multi-mode calc and re-applies the exec-time
// inflation whenever a fresh instance comes up (the fault injector does
// the same for injected faults), so the overload persists across mode
// swaps and re-admissions.
func degradeRig(t *testing.T, xml string) (*rtos.Kernel, *core.DRCR) {
	t.Helper()
	fw := osgi.NewFramework()
	k := rtos.NewKernel(rtos.Config{Seed: 5})
	d, err := core.New(fw, k, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	err = d.RegisterBody("demo.Calculation", func(*descriptor.Component) rtos.Body {
		return func(j *rtos.JobContext) {
			if shm, err := j.Kernel.IPC().SHM("lat"); err == nil {
				_ = shm.Set(0, int64(j.Index))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	d.AddListener(func(e core.Event) {
		if e.Component == "calc" && e.To == core.Active {
			if task, ok := k.Task("calc"); ok {
				task.SetExecScale(4)
			}
		}
	})
	desc, err := descriptor.Parse(xml)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Deploy(desc); err != nil {
		t.Fatal(err)
	}
	return k, d
}

// TestGuardDowngradesBeforeRevoking pins the graceful-degradation
// enforcement ladder: a violating component with a declared fallback is
// stepped down (staying ACTIVE), the doubling backoff gates each
// re-promotion, and revocation never fires while a cheaper mode absorbs
// the overload.
func TestGuardDowngradesBeforeRevoking(t *testing.T) {
	k, d := degradeRig(t, calcDegradeXML)
	// HealthyReset is effectively disabled so the doubling backoff is
	// visible across promote/violate cycles (clean eco checks would
	// otherwise clear it, by design).
	g, err := New(d, Options{HealthyReset: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Start(); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	var downgrades, releases, revokes int
	for _, r := range g.Trace() {
		switch r.Action {
		case "downgrade":
			downgrades++
		case "release":
			releases++
		case "revoke":
			revokes++
		}
	}
	if downgrades < 2 {
		t.Errorf("downgrades = %d, want >= 2 (violate, promote after hold, violate again)", downgrades)
	}
	if releases < 1 {
		t.Errorf("releases = %d, want >= 1 (backoff hold must expire)", releases)
	}
	if revokes != 0 {
		t.Errorf("revokes = %d, want 0 while a cheaper mode absorbs the overload", revokes)
	}
	info, _ := d.Component("calc")
	if info.State != core.Active {
		t.Errorf("calc state = %v, want ACTIVE throughout (availability preserved)", info.State)
	}
	snap := d.Obs().Snapshot()
	if snap.Degrade.Downgrades == 0 || snap.Degrade.Upgrades == 0 {
		t.Errorf("degrade counters = %+v, want both downgrades and upgrades", snap.Degrade)
	}
	// Each successive downgrade serves a longer hold than the one before.
	var holdStarts []int64
	for _, r := range g.Trace() {
		if r.Action == "downgrade" {
			holdStarts = append(holdStarts, int64(r.At))
		}
	}
	for i := 2; i < len(holdStarts); i++ {
		if holdStarts[i]-holdStarts[i-1] <= holdStarts[i-1]-holdStarts[i-2] {
			t.Errorf("downgrade intervals not growing: %v", holdStarts)
			break
		}
	}
}

// TestGuardQuarantinesAtLowestMode pins the last-resort path: when even
// the cheapest declared mode violates, the guard falls back to
// revocation and quarantine.
func TestGuardQuarantinesAtLowestMode(t *testing.T) {
	const tightXML = `<component name="calc" desc="computing job" type="periodic" cpuusage="0.05">
  <implementation bincode="demo.Calculation"/>
  <periodictask frequence="1000" runoncup="0" priority="1"/>
  <outport name="lat" interface="RTAI.SHM" type="Integer" size="100"/>
  <mode name="eco" frequence="250" cpuusage="0.01"/>
  <property name="drcom.exectime.us" type="Integer" value="30"/>
</component>`
	k, d := degradeRig(t, tightXML)
	g, err := New(d, Options{Quarantine: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Start(); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(200 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	var sawDowngrade, sawRevoke bool
	for _, r := range g.Trace() {
		if r.Action == "downgrade" {
			sawDowngrade = true
		}
		if r.Action == "revoke" {
			if !sawDowngrade {
				t.Fatal("revoked before trying the cheaper mode")
			}
			sawRevoke = true
		}
	}
	if !sawDowngrade || !sawRevoke {
		t.Fatalf("downgrade=%v revoke=%v, want the full ladder (trace %v)",
			sawDowngrade, sawRevoke, g.Trace())
	}
}
