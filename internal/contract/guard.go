package contract

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/descriptor"
	"repro/internal/obs"
	"repro/internal/rtos"
	"repro/internal/sim"
)

// Options parameterise a Guard. The zero value enforces with the
// defaults below; set Observe to record violations without acting.
type Options struct {
	// Interval is the monitoring cadence on the simulated clock
	// (default 10 ms).
	Interval time.Duration
	// OverrunFactor is the tolerance on the declared budget: measured
	// windowed utilization above cpuusage×factor counts as over budget
	// (default 1.5, absorbing execution jitter and accounting granularity).
	OverrunFactor float64
	// OverrunChecks is how many consecutive over-budget windows make a
	// BudgetOverrun violation (default 2, so a single preemption-skewed
	// window is forgiven).
	OverrunChecks int
	// MissThreshold is the per-window miss+skip count that makes a
	// DeadlineMiss violation (default 1).
	MissThreshold uint64
	// StaleFactor flags a declared SHM outport as stale when it has not
	// been written for factor×period (default 4 periods).
	StaleFactor float64
	// Quarantine is how many checks a revoked component sits out before
	// the guard restores its budget and lets the DRCR try re-admission
	// (default 8).
	Quarantine int
	// BackoffFactor multiplies the quarantine each time the same
	// component violates again after a restore (default 2, capped at
	// 16× the base quarantine); HealthyReset clean checks reset it.
	BackoffFactor int
	// HealthyReset is how many consecutive clean checks clear a
	// component's accumulated backoff (default 16).
	HealthyReset int
	// Observe makes the guard record violations without revoking budgets
	// (monitoring-only mode, the ablation baseline).
	Observe bool
	// Predict enables the forecasting estimator: a component that
	// declares a distribution-valued budget gets a windowed
	// mean/variance + log2-histogram-tail estimator over its measured
	// utilization; when the projected miss probability over the next
	// PredictLead windows exceeds its allowance (1 − declared p), the
	// guard steps it down its mode ladder before the hard miss.
	Predict bool
	// PredictWindow is how many check windows the estimator remembers
	// (default 12).
	PredictWindow int
	// PredictLead is how many windows ahead the utilization trend is
	// projected (default 4).
	PredictLead int
	// RearmBand is the forecast hysteresis: after a forecast fires, the
	// estimator stays disarmed until the miss probability drops below
	// allowance×band (default 0.5), so a hovering forecast cannot flap.
	RearmBand float64
}

func (o *Options) applyDefaults() {
	if o.Interval <= 0 {
		o.Interval = 10 * time.Millisecond
	}
	if o.OverrunFactor <= 0 {
		o.OverrunFactor = 1.5
	}
	if o.OverrunChecks <= 0 {
		o.OverrunChecks = 2
	}
	if o.MissThreshold == 0 {
		o.MissThreshold = 1
	}
	if o.StaleFactor <= 0 {
		o.StaleFactor = 4
	}
	if o.Quarantine <= 0 {
		o.Quarantine = 8
	}
	if o.BackoffFactor <= 0 {
		o.BackoffFactor = 2
	}
	if o.HealthyReset <= 0 {
		o.HealthyReset = 16
	}
	if o.PredictWindow <= 0 {
		o.PredictWindow = 12
	}
	if o.PredictLead <= 0 {
		o.PredictLead = 4
	}
	if o.RearmBand <= 0 || o.RearmBand >= 1 {
		o.RearmBand = 0.5
	}
}

// maxBackoff caps the quarantine growth at 16× the base quarantine.
const maxBackoff = 16

// monitor is the per-component watch state.
type monitor struct {
	lastConsumed time.Duration
	lastMisses   uint64
	lastSkips    uint64
	overWindows  int
	ports        map[string]*portState
	quarantine   int // checks left before restore, while revoked by us
	modeHold     int // checks left before promotion is allowed again
	backoff      int // quarantine/hold multiplier for the next enforcement
	healthy      int
	revokedByUs  bool
	// quarSpan is the quarantine span opened at revocation; the eventual
	// restore chains to it.
	quarSpan obs.SpanID
	// lastUtil is the utilization measured over the last check window;
	// utilValid is false right after a counter reset.
	lastUtil  float64
	utilValid bool
	// pred is the forecasting estimator, created lazily for
	// budget-declaring components when Options.Predict is on; a
	// downgrade or revocation swaps the task, so the estimator restarts
	// with it.
	pred *predictor
}

type portState struct {
	gen        uint64
	lastChange sim.Time
}

// Guard drives the per-component contract monitors on a fixed
// simulated-time cadence and feeds violations into the DRCR.
type Guard struct {
	d    *core.DRCR
	opts Options

	mons       map[string]*monitor
	forecasts  map[string]Forecast
	violations []Violation
	trace      []Record
	listeners  []func(Violation)

	tick    *sim.Event
	running bool
}

// New builds a guard over a DRCR.
func New(d *core.DRCR, opts Options) (*Guard, error) {
	if d == nil {
		return nil, errors.New("contract: guard needs a DRCR")
	}
	opts.applyDefaults()
	return &Guard{d: d, opts: opts, mons: map[string]*monitor{}}, nil
}

// Start schedules periodic checks on the simulated clock.
func (g *Guard) Start() error {
	if g.running {
		return nil
	}
	g.running = true
	return g.schedule()
}

// Stop cancels future checks.
func (g *Guard) Stop() {
	g.running = false
	if g.tick != nil {
		g.tick.Cancel()
		g.tick = nil
	}
}

// AddListener subscribes to violations as they are detected.
func (g *Guard) AddListener(f func(Violation)) {
	if f != nil {
		g.listeners = append(g.listeners, f)
	}
}

// Violations returns a copy of every violation detected so far.
func (g *Guard) Violations() []Violation {
	out := make([]Violation, len(g.violations))
	copy(out, g.violations)
	return out
}

// Trace returns a copy of the enforcement trace (violations, revocations,
// restores, in order).
func (g *Guard) Trace() []Record {
	out := make([]Record, len(g.trace))
	copy(out, g.trace)
	return out
}

// TraceDigest is the hex SHA-256 of the formatted enforcement trace; two
// runs of the same seed and fault script must agree byte for byte.
func (g *Guard) TraceDigest() string {
	var b strings.Builder
	for _, r := range g.trace {
		fmt.Fprintf(&b, "%d %s %s %s\n", int64(r.At), r.Action, r.Component, r.Detail)
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}

func (g *Guard) schedule() error {
	clock := g.d.Kernel().Clock()
	ev, err := clock.After(g.opts.Interval, "guard:check", func(sim.Time) {
		g.tick = nil
		if !g.running {
			return
		}
		g.CheckNow()
		if g.running {
			if err := g.schedule(); err != nil {
				// Virtual-time scheduling fails only on misuse; record it.
				g.trace = append(g.trace, Record{
					At: clock.Now(), Action: "error", Detail: err.Error(),
				})
			}
		}
	})
	if err != nil {
		return err
	}
	g.tick = ev
	return nil
}

// action is one enforcement decision collected during the detection
// sweep and applied after it, so simultaneous violations in one window
// step down in deterministic name order (like re-promotion) instead of
// whatever order detection happened to interleave enforcement in.
type action struct {
	name     string
	reason   string
	cause    obs.SpanID
	forecast bool // predictive step-down: only ever spends ladder rungs
}

// CheckNow runs one monitoring pass immediately and returns the
// violations it detected.
func (g *Guard) CheckNow() []Violation {
	k := g.d.Kernel()
	now := k.Now()
	var fired []Violation
	var acts []action
	for _, info := range g.d.Components() {
		m := g.mons[info.Name]
		if m == nil {
			m = &monitor{ports: map[string]*portState{}, backoff: 1}
			g.mons[info.Name] = m
		}
		if info.Revoked && m.revokedByUs {
			m.quarantine--
			if m.quarantine <= 0 {
				m.revokedByUs = false
				// The instance was torn down at revocation; a re-admitted
				// component starts a fresh task, so baselines restart too.
				m.lastConsumed, m.lastMisses, m.lastSkips = 0, 0, 0
				m.overWindows, m.healthy = 0, 0
				m.ports = map[string]*portState{}
				g.record(now, "restore", info.Name, "quarantine served; budget restored")
				// The restore (and the re-admission it triggers) chains to
				// the quarantine span opened at revocation.
				plane := g.d.Obs()
				plane.PushCause(m.quarSpan)
				_ = g.d.RestoreBudget(info.Name)
				plane.PopCause()
				m.quarSpan = 0
			}
			continue
		}
		if info.State != core.Active {
			continue
		}
		// Serve the downgrade hold: once it expires, the DRCR may promote
		// the component back toward its full contract on the next pass. A
		// repeat violation below re-arms it with a doubled backoff.
		if m.modeHold > 0 {
			m.modeHold--
			if m.modeHold <= 0 {
				g.record(now, "release", info.Name, "downgrade hold served; promotion allowed")
				_ = g.d.AllowPromotion(info.Name)
			}
		}
		task, ok := k.Task(info.Name)
		if !ok {
			continue
		}
		vs := g.checkActive(now, info, m, task)
		plane := g.d.Obs()
		var firstVid obs.SpanID
		for _, v := range vs {
			// Tie the violation to the open fault on the component (or on
			// the stalled port — SHM faults target ports by name), so `why`
			// can walk from the consequence back to the injected cause.
			cause := plane.OpenCause(v.Component)
			if cause == 0 && v.Port != "" {
				cause = plane.OpenCause(v.Port)
			}
			vid := plane.Violation(now, v.Component, v.Kind.String(), v.Detail, cause)
			if firstVid == 0 {
				firstVid = vid
			}
			g.violations = append(g.violations, v)
			g.record(now, "violation", v.Component, fmt.Sprintf("%v measured=%.4f limit=%.4f %s", v.Kind, v.Measured, v.Limit, v.Detail))
			for _, l := range g.listeners {
				l(v)
			}
		}
		fired = append(fired, vs...)
		if len(vs) > 0 {
			if !g.opts.Observe {
				acts = append(acts, action{
					name:   info.Name,
					reason: fmt.Sprintf("%v: %s", vs[0].Kind, vs[0].Detail),
					cause:  firstVid,
				})
			}
			continue
		}
		if a, ok := g.predictStep(now, info, m); ok {
			acts = append(acts, a)
			continue
		}
		m.healthy++
		if m.healthy >= g.opts.HealthyReset {
			m.backoff = 1
		}
	}
	// Enforce after the sweep. Components() is name-sorted and each
	// component contributes at most one action, so the collection order
	// IS name order: simultaneous violations step down deterministically.
	for _, a := range acts {
		g.enforce(now, a)
	}
	return fired
}

// enforce applies one collected enforcement action: graceful degradation
// first — a component with a cheaper declared mode steps down and stays
// available; only a violation in its last mode escalates to revocation.
// The hold before re-promotion reuses the quarantine backoff.
func (g *Guard) enforce(now sim.Time, a action) {
	info, ok := g.d.Component(a.name)
	if !ok || info.State != core.Active {
		return
	}
	m := g.mons[a.name]
	if m == nil {
		return
	}
	plane := g.d.Obs()
	if info.Mode+1 < len(info.Modes) {
		m.modeHold = g.opts.Quarantine * m.backoff
		g.bumpBackoff(m)
		m.healthy = 0
		m.overWindows = 0
		// The swap recreates the task and its counters; restart the
		// measurement window (and the estimator with it).
		m.lastConsumed, m.lastMisses, m.lastSkips = 0, 0, 0
		m.ports = map[string]*portState{}
		m.pred = nil
		m.utilValid = false
		verb := "downgrade"
		if a.forecast {
			verb = "predict-downgrade"
		}
		g.record(now, verb, a.name, a.reason)
		plane.PushCause(a.cause)
		_ = g.d.Downgrade(a.name, a.reason)
		plane.PopCause()
		return
	}
	if a.forecast {
		// A forecast never revokes: prediction only spends ladder rungs,
		// the reactive path keeps the last-mode escalation.
		return
	}
	m.revokedByUs = true
	m.quarantine = g.opts.Quarantine * m.backoff
	g.bumpBackoff(m)
	m.healthy = 0
	m.overWindows = 0
	g.record(now, "revoke", a.name, a.reason)
	// The revocation and its cascade chain to the violation.
	plane.PushCause(a.cause)
	_ = g.d.RevokeBudget(a.name, a.reason)
	m.quarSpan = plane.Quarantine(now, a.name, int64(m.quarantine), 0)
	plane.PopCause()
}

func (g *Guard) bumpBackoff(m *monitor) {
	if m.backoff < maxBackoff {
		m.backoff *= g.opts.BackoffFactor
		if m.backoff > maxBackoff {
			m.backoff = maxBackoff
		}
	}
}

// checkActive evaluates one active component's measured behaviour against
// its declared contract and updates the monitor baselines.
func (g *Guard) checkActive(now sim.Time, info core.Info, m *monitor, task *rtos.Task) []Violation {
	var vs []Violation
	met := task.Metrics()

	// Re-admission recreates the task, resetting kernel counters; when the
	// live counters run behind our baselines, restart the window instead of
	// reading a bogus negative delta.
	if met.Consumed < m.lastConsumed || met.Misses < m.lastMisses || met.Skips < m.lastSkips {
		m.lastConsumed, m.lastMisses, m.lastSkips = met.Consumed, met.Misses, met.Skips
		m.overWindows = 0
		m.utilValid = false
		return nil
	}

	consumedDelta := met.Consumed - m.lastConsumed
	missDelta := (met.Misses - m.lastMisses) + (met.Skips - m.lastSkips)
	m.lastConsumed, m.lastMisses, m.lastSkips = met.Consumed, met.Misses, met.Skips

	// Budget: windowed utilization over the check interval vs declared
	// cpuusage, with tolerance for jitter and accounting granularity.
	if info.CPUUsage > 0 {
		util := float64(consumedDelta) / float64(g.opts.Interval)
		m.lastUtil, m.utilValid = util, true
		limit := info.CPUUsage * g.opts.OverrunFactor
		if util > limit {
			m.overWindows++
			if m.overWindows >= g.opts.OverrunChecks {
				vs = append(vs, Violation{
					At: now, Component: info.Name, Kind: BudgetOverrun,
					Measured: util, Limit: limit,
					Detail: fmt.Sprintf("utilization %.4f over %d windows (declared cpuusage %.4f)", util, m.overWindows, info.CPUUsage),
				})
			}
		} else {
			m.overWindows = 0
		}
	}

	// Deadlines: misses and skipped releases during the window.
	if missDelta >= g.opts.MissThreshold {
		vs = append(vs, Violation{
			At: now, Component: info.Name, Kind: DeadlineMiss,
			Measured: float64(missDelta), Limit: float64(g.opts.MissThreshold),
			Detail: fmt.Sprintf("%d deadline misses/skips in window", missDelta),
		})
	}

	// Port freshness: a periodic component's declared SHM outports must
	// advance their write generation; stalling past StaleFactor periods
	// breaks the contract dependants resolved against.
	if period := task.Spec().Period; period > 0 {
		staleAfter := time.Duration(g.opts.StaleFactor * float64(period))
		for _, p := range info.OutPorts {
			if p.Interface != string(descriptor.SHM) {
				continue
			}
			seg, err := g.d.Kernel().IPC().SHM(p.Name)
			if err != nil {
				continue
			}
			ps := m.ports[p.Name]
			gen := seg.Generation()
			if ps == nil {
				m.ports[p.Name] = &portState{gen: gen, lastChange: now}
				continue
			}
			if gen != ps.gen {
				ps.gen = gen
				ps.lastChange = now
				continue
			}
			if age := now.Sub(ps.lastChange); age > staleAfter {
				vs = append(vs, Violation{
					At: now, Component: info.Name, Kind: PortStale,
					Measured: age.Seconds(), Limit: staleAfter.Seconds(),
					Detail: fmt.Sprintf("outport %q unchanged for %v (period %v)", p.Name, age, period),
					Port:   p.Name,
				})
				ps.lastChange = now // one violation per stall window
			}
		}
	}
	return vs
}

func (g *Guard) record(at sim.Time, action, component, detail string) {
	g.trace = append(g.trace, Record{At: at, Action: action, Component: component, Detail: detail})
}
