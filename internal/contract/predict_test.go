package contract

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/descriptor"
	"repro/internal/obs"
	"repro/internal/osgi"
	"repro/internal/rtos"
	"repro/internal/sim"
)

// pairXML builds two identical degradable components so a single
// inflation makes them violate in the same check window.
func pairXML(name string) string {
	return fmt.Sprintf(`<component name="%s" type="periodic" cpuusage="0.05">
  <implementation bincode="demo.Noop"/>
  <periodictask frequence="1000" runoncup="0" priority="1"/>
  <mode name="eco" frequence="250" cpuusage="0.04"/>
  <property name="drcom.exectime.us" type="Integer" value="30"/>
</component>`, name)
}

// TestSimultaneousStepDownNameOrdered pins satellite #2: when two
// components violate in the same window, the guard collects both and
// steps them down in name order — the trace shows both violations first,
// then the downgrades alphabetically at the same instant.
func TestSimultaneousStepDownNameOrdered(t *testing.T) {
	fw := osgi.NewFramework()
	k := rtos.NewKernel(rtos.Config{NumCPUs: 2, Seed: 5})
	d, err := core.New(fw, k, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	if err := d.RegisterBody("demo.Noop", func(*descriptor.Component) rtos.Body {
		return func(*rtos.JobContext) {}
	}); err != nil {
		t.Fatal(err)
	}
	inflate := func(e core.Event) {
		if e.To == core.Active {
			if task, ok := k.Task(e.Component); ok {
				task.SetExecScale(4)
			}
		}
	}
	d.AddListener(inflate)
	// Deploy in reverse alphabetical order so any insertion-order
	// dependence would surface as beta-before-alpha.
	for _, src := range []string{pairXML("beta"), pairXML("alpha")} {
		desc, err := descriptor.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Deploy(desc); err != nil {
			t.Fatal(err)
		}
	}
	g, err := New(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Start(); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	var downs []Record
	for _, r := range g.Trace() {
		if r.Action == "downgrade" {
			downs = append(downs, r)
		}
	}
	if len(downs) < 2 {
		t.Fatalf("downgrades = %v, want both components stepped down", downs)
	}
	if downs[0].Component != "alpha" || downs[1].Component != "beta" {
		t.Fatalf("step-down order = [%s %s], want name order [alpha beta]",
			downs[0].Component, downs[1].Component)
	}
	if downs[0].At != downs[1].At {
		t.Fatalf("expected simultaneous downgrades, got %v and %v", downs[0].At, downs[1].At)
	}
}

// predictCalcXML declares a stochastic budget and an eco fallback. Exec
// sits at 55% of the period, the reactive limit at 82.5% (×1.5), and the
// 5% per-release exec jitter makes hard misses set in around 88–95%: a
// steep drift crosses limit and miss onset within a couple of check
// windows — too fast for the two-window reactive confirmation, but the
// trend projection sees it PredictLead windows out.
const predictCalcXML = `<component name="calc" type="periodic" cpuusage="0.55">
  <implementation bincode="demo.Noop"/>
  <periodictask frequence="1000" runoncup="0" priority="1"/>
  <budget dist="normal(0.55,0.03)" p="0.97"/>
  <mode name="eco" frequence="250" cpuusage="0.25"/>
  <property name="drcom.exectime.us" type="Integer" value="550"/>
</component>`

func predictRig(t *testing.T, seed uint64) (*rtos.Kernel, *core.DRCR) {
	t.Helper()
	fw := osgi.NewFramework()
	k := rtos.NewKernel(rtos.Config{Seed: seed})
	d, err := core.New(fw, k, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	if err := d.RegisterBody("demo.Noop", func(*descriptor.Component) rtos.Body {
		return func(*rtos.JobContext) {}
	}); err != nil {
		t.Fatal(err)
	}
	desc, err := descriptor.Parse(predictCalcXML)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Deploy(desc); err != nil {
		t.Fatal(err)
	}
	return k, d
}

// rampScale schedules a linear exec-scale ramp on the sim clock: from 1
// up to factor, in 10 ms steps over window, starting at from.
func rampScale(t *testing.T, k *rtos.Kernel, name string, from, window time.Duration, factor float64) {
	t.Helper()
	steps := int(window / (10 * time.Millisecond))
	for i := 0; i < steps; i++ {
		scale := 1 + (factor-1)*float64(i+1)/float64(steps)
		_, err := k.Clock().After(from+time.Duration(i)*10*time.Millisecond, "test:ramp",
			func(sim.Time) {
				if task, ok := k.Task(name); ok {
					task.SetExecScale(scale)
				}
			})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestPredictiveDowngradeBeforeMiss drives a slow execution drift into a
// budget-declaring component: the forecast must fire and step it down to
// eco before the kernel records a single deadline miss.
func TestPredictiveDowngradeBeforeMiss(t *testing.T) {
	k, d := predictRig(t, 5)
	// Quarantine 64 holds the step-down past the end of the run: the
	// final-state assertion below wants calc still parked in eco.
	g, err := New(d, Options{Predict: true, Quarantine: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Start(); err != nil {
		t.Fatal(err)
	}
	rampScale(t, k, "calc", 500*time.Millisecond, 150*time.Millisecond, 2.2)
	if err := k.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	var sawForecast, sawPredictDown bool
	for _, r := range g.Trace() {
		switch r.Action {
		case "forecast":
			sawForecast = true
			if !strings.Contains(r.Detail, "forecast P(miss)=") {
				t.Errorf("forecast detail %q", r.Detail)
			}
		case "predict-downgrade":
			sawPredictDown = true
		}
	}
	if !sawForecast || !sawPredictDown {
		t.Fatalf("trace missing forecast/predict-downgrade: %v", g.Trace())
	}
	if task, ok := k.Task("calc"); ok {
		if m := task.Metrics(); m.Misses > 0 || m.Skips > 0 {
			t.Errorf("hard misses despite predictive downgrade: %+v", m)
		}
	}
	info, _ := d.Component("calc")
	if info.State != core.Active || info.Mode == 0 {
		t.Errorf("calc = %v mode %d, want ACTIVE in a degraded mode", info.State, info.Mode)
	}
	var forecastSpans int
	for _, s := range d.Obs().Spans() {
		if s.Kind == obs.KindForecast && s.Component == "calc" {
			forecastSpans++
		}
	}
	if forecastSpans == 0 {
		t.Error("no KindForecast span emitted")
	}
}

// TestStationaryWorkloadNeverForecastDowngrades pins the hysteresis /
// false-positive side of satellite #4: with no drift, across seeds, the
// estimator must stay quiet for the whole run.
func TestStationaryWorkloadNeverForecastDowngrades(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		k, d := predictRig(t, seed)
		g, err := New(d, Options{Predict: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Start(); err != nil {
			t.Fatal(err)
		}
		if err := k.Run(2 * time.Second); err != nil {
			t.Fatal(err)
		}
		for _, r := range g.Trace() {
			if r.Action == "forecast" || r.Action == "predict-downgrade" {
				t.Fatalf("seed %d: stationary workload triggered %s: %s", seed, r.Action, r.Detail)
			}
		}
		fs := g.Forecasts()
		if len(fs) != 1 || fs[0].Component != "calc" {
			t.Fatalf("seed %d: forecasts = %+v", seed, fs)
		}
		if f := fs[0]; !f.Armed || f.PMiss > f.Allowed {
			t.Fatalf("seed %d: estimator state %+v, want armed and quiet", seed, f)
		}
		g.Stop()
	}
}
