package contract

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// The predictive guard: instead of waiting for a measured overrun, each
// budget-declaring component gets an online estimator over its windowed
// utilization. A least-squares trend projected PredictLead windows ahead
// plus the window's spread gives a Gaussian estimate of the probability
// that the next windows exceed the enforcement limit; a log2 histogram of
// every utilization sample adds a distribution-free tail term for spiky
// workloads the Gaussian underestimates. When the blended miss
// probability exceeds the component's declared allowance (1 − p), the
// guard steps it down its mode ladder BEFORE the first hard miss, with
// hysteresis so a forecast hovering at the threshold cannot flap.

// minForecastSamples is how many windows the estimator needs before it
// emits a forecast; below this the trend is noise.
const minForecastSamples = 4

// sigmaFloor keeps the Gaussian term defined on perfectly flat windows.
const sigmaFloor = 1e-4

// predictor is the per-component forecasting state. It is keyed to the
// mode it was built in: utilizations measured under different modes have
// different periods and declared budgets, so a mode change (down OR back
// up) resets the window and the histogram.
type predictor struct {
	utils []float64        // ring of windowed utilizations, oldest first
	hist  metrics.Log2Hist // utilization samples this mode, in basis points
	armed bool
	mode  int // the component mode the samples were measured under
}

// Forecast is one component's predicted miss probability and the
// estimator state behind it (exposed to the console).
type Forecast struct {
	At        sim.Time
	Component string
	PMiss     float64 // blended P(miss) over the next PredictLead windows
	Allowed   float64 // allowance: 1 − declared p
	Projected float64 // trend-projected utilization at the lead horizon
	Limit     float64 // enforcement limit (cpuusage × OverrunFactor)
	Sigma     float64 // residual spread of the utilization window
	Armed     bool    // false while hysteresis holds the trigger down
	Samples   int     // windows seen by the estimator
}

// Forecasts returns the latest forecast per component, name-sorted.
func (g *Guard) Forecasts() []Forecast {
	out := make([]Forecast, 0, len(g.forecasts))
	for _, f := range g.forecasts {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Component < out[j].Component })
	return out
}

// predictStep feeds one measured window into the component's estimator
// and returns a step-down action when the forecast crosses the
// allowance. Runs only for active, budget-declaring components on a
// clean window (a reactive violation in the same window wins).
func (g *Guard) predictStep(now sim.Time, info core.Info, m *monitor) (action, bool) {
	if !g.opts.Predict || info.BudgetDist == "" || !m.utilValid || info.CPUUsage <= 0 {
		return action{}, false
	}
	if m.pred == nil || m.pred.mode != info.Mode {
		m.pred = &predictor{armed: true, mode: info.Mode}
	}
	p := m.pred
	p.utils = append(p.utils, m.lastUtil)
	if len(p.utils) > g.opts.PredictWindow {
		copy(p.utils, p.utils[1:])
		p.utils = p.utils[:len(p.utils)-1]
	}
	p.hist.Observe(int64(m.lastUtil * 1e4))

	f := Forecast{
		At:        now,
		Component: info.Name,
		Allowed:   1 - info.BudgetP,
		Limit:     info.CPUUsage * g.opts.OverrunFactor,
		Armed:     p.armed,
		Samples:   len(p.utils),
	}
	if g.forecasts == nil {
		g.forecasts = map[string]Forecast{}
	}
	if len(p.utils) < minForecastSamples {
		g.forecasts[info.Name] = f
		return action{}, false
	}

	proj, sigma := projectTrend(p.utils, g.opts.PredictLead)
	f.Projected = proj
	f.Sigma = sigma
	// Gaussian term: P(utilization at the lead horizon exceeds the limit).
	pGauss := 0.5 * math.Erfc((f.Limit-proj)/(sigma*math.Sqrt2))
	// Distribution-free tail: the observed fraction of samples in
	// histogram buckets entirely above the limit (underestimates, never
	// false-alarms).
	f.PMiss = math.Max(pGauss, tailFraction(&p.hist, int64(f.Limit*1e4)))

	if !p.armed {
		// Hysteresis: re-arm only once the forecast has dropped well
		// below the allowance.
		if f.PMiss < f.Allowed*g.opts.RearmBand {
			p.armed = true
			f.Armed = true
		}
		g.forecasts[info.Name] = f
		return action{}, false
	}
	g.forecasts[info.Name] = f
	if f.PMiss <= f.Allowed || info.Mode+1 >= len(info.Modes) {
		return action{}, false
	}
	p.armed = false
	detail := fmt.Sprintf("forecast P(miss)=%.3f > %.3f over next %d windows (projected util %.4f, limit %.4f)",
		f.PMiss, f.Allowed, g.opts.PredictLead, proj, f.Limit)
	plane := g.d.Obs()
	// Chain the forecast to the open fault on the component (if any), and
	// the downgrade to the forecast: inject → forecast → downgrade.
	span := plane.Forecast(now, info.Name, detail, plane.OpenCause(info.Name))
	g.record(now, "forecast", info.Name, detail)
	return action{name: info.Name, reason: detail, cause: span, forecast: true}, true
}

// projectTrend fits a least-squares line through the utilization window
// and returns its value lead steps past the newest sample, plus the
// residual standard deviation (floored).
func projectTrend(utils []float64, lead int) (proj, sigma float64) {
	n := float64(len(utils))
	var sx, sy, sxx, sxy float64
	for i, u := range utils {
		x := float64(i)
		sx += x
		sy += u
		sxx += x * x
		sxy += x * u
	}
	den := n*sxx - sx*sx
	var a, b float64 // intercept, slope
	if den != 0 {
		b = (n*sxy - sx*sy) / den
		a = (sy - b*sx) / n
	} else {
		a = sy / n
	}
	proj = a + b*(n-1+float64(lead))
	var ss float64
	for i, u := range utils {
		r := u - (a + b*float64(i))
		ss += r * r
	}
	sigma = math.Sqrt(ss / n)
	if sigma < sigmaFloor {
		sigma = sigmaFloor
	}
	return proj, sigma
}

// tailFraction is the fraction of observed samples in buckets whose
// entire range lies above the limit.
func tailFraction(h *metrics.Log2Hist, limit int64) float64 {
	total := h.Count()
	if total == 0 {
		return 0
	}
	var above uint64
	for b := 0; b < h.NumBuckets(); b++ {
		lo, _ := h.BucketRange(b)
		if lo >= limit {
			above += h.Bucket(b)
		}
	}
	return float64(above) / float64(total)
}
