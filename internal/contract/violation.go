// Package contract implements runtime contract enforcement for DRCom
// components: per-component monitors that watch the kernel's actual
// accounting against the contract each descriptor declared, and a guard
// that reports typed violations to the DRCR so the system reacts through
// its ordinary adaptation pipeline (budget revocation, cascade,
// re-admission).
//
// The paper promises that DRCR adapts to run-time change "without
// impairing the contracts of components that remain active"; this package
// supplies the missing enforcement half of that promise. A component that
// breaks its declared budget, misses deadlines, or stops refreshing its
// outports is suspended and its budget revoked, dependants cascade
// through resolution exactly as if the offending bundle had stopped, and
// — once the component behaves again — the guard restores the budget and
// the DRCR re-admits the whole dependent closure in dependency order.
//
// Everything runs on the simulated clock: same seed, same fault script,
// byte-identical violation and recovery trace.
package contract

import (
	"fmt"

	"repro/internal/sim"
)

// Kind classifies a contract violation.
type Kind int

// Violation kinds.
const (
	// BudgetOverrun: measured CPU consumption over a window exceeded the
	// declared cpuusage budget by more than the tolerance.
	BudgetOverrun Kind = iota + 1
	// DeadlineMiss: the task missed deadlines (or skipped releases) during
	// the window.
	DeadlineMiss
	// PortStale: a declared SHM outport was not refreshed for several
	// periods while the component claimed to be running.
	PortStale
)

func (k Kind) String() string {
	switch k {
	case BudgetOverrun:
		return "budget-overrun"
	case DeadlineMiss:
		return "deadline-miss"
	case PortStale:
		return "port-stale"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Violation is one detected breach of a component's declared contract.
type Violation struct {
	At        sim.Time
	Component string
	Kind      Kind
	// Measured and Limit quantify the breach in the kind's natural unit:
	// utilization fraction for BudgetOverrun, miss+skip count for
	// DeadlineMiss, seconds-since-refresh for PortStale.
	Measured float64
	Limit    float64
	Detail   string
	// Port names the stalled outport for PortStale violations; empty for
	// other kinds. Faults target ports by name, so the observability
	// plane uses it to tie the violation back to the fault that opened it.
	Port string
}

func (v Violation) String() string {
	return fmt.Sprintf("[%v] %s %v measured=%.4f limit=%.4f (%s)",
		v.At, v.Component, v.Kind, v.Measured, v.Limit, v.Detail)
}

// Record is one entry of the guard's enforcement trace: a violation, a
// budget revocation, or a budget restore, in the order they happened.
type Record struct {
	At        sim.Time
	Action    string // "violation" | "revoke" | "restore"
	Component string
	Detail    string
}

func (r Record) String() string {
	return fmt.Sprintf("[%v] %s %s: %s", r.At, r.Action, r.Component, r.Detail)
}
