package rtos

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"
)

// TestSchedulerConservation is the kernel's bookkeeping property: for any
// task set and scheduling policy,
//
//  1. per-CPU busy time never exceeds elapsed time;
//  2. busy time equals the execution charged to completed jobs plus work
//     still in flight;
//  3. response time of every job is at least its execution time.
func TestSchedulerConservation(t *testing.T) {
	prop := func(seeds [4]uint8, edf bool, quantumOn bool) bool {
		pol := FixedPriority
		if edf {
			pol = EarliestDeadlineFirst
		}
		quantum := time.Duration(-1)
		if quantumOn {
			quantum = 50 * time.Microsecond
		}
		k := NewKernel(Config{Timing: &noNoise, Seed: 1, Policy: pol, Quantum: quantum})
		var tasks []*Task
		for i, s := range seeds {
			exec := time.Duration(int(s%40)+1) * 10 * time.Microsecond // 10µs..400µs
			period := time.Duration(int(s%5)+1) * time.Millisecond
			task, err := k.CreateTask(TaskSpec{
				Name:     fmt.Sprintf("t%d", i),
				Type:     Periodic,
				Period:   period,
				Priority: int(s % 3), // collisions on purpose
				ExecTime: exec,
			})
			if err != nil {
				return false
			}
			if err := task.Start(); err != nil {
				return false
			}
			tasks = append(tasks, task)
		}
		const window = 100 * time.Millisecond
		if err := k.Run(window); err != nil {
			return false
		}
		busy, err := k.BusyTime(0)
		if err != nil {
			return false
		}
		if busy > window {
			t.Logf("busy %v > window %v", busy, window)
			return false
		}
		// Charged work: completed jobs × exec (exact, jitter disabled).
		var charged time.Duration
		for _, task := range tasks {
			st := task.Stats()
			charged += time.Duration(st.Jobs) * task.Spec().ExecTime
			if st.Jobs > 0 && st.Response.Min < int64(task.Spec().ExecTime) {
				t.Logf("%s response %d < exec %v", task.Name(), st.Response.Min, task.Spec().ExecTime)
				return false
			}
		}
		// busy may exceed charged by at most the in-flight job's partial
		// execution (bounded by the largest exec time).
		slack := busy - charged
		if slack < 0 || slack > 400*time.Microsecond {
			t.Logf("conservation broken: busy %v charged %v", busy, charged)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestNoLostJobsProperty: over a clean window, jobs completed + skips
// equals releases that occurred (no job vanishes in the scheduler).
func TestNoLostJobsProperty(t *testing.T) {
	prop := func(execRaw, periodRaw uint8, edf bool) bool {
		pol := FixedPriority
		if edf {
			pol = EarliestDeadlineFirst
		}
		k := NewKernel(Config{Timing: &noNoise, Seed: 3, Policy: pol})
		period := time.Duration(int(periodRaw%9)+1) * time.Millisecond
		exec := period * time.Duration(int(execRaw%10)+1) / 12 // up to ~92%
		task, err := k.CreateTask(TaskSpec{
			Name: "only", Type: Periodic, Period: period, ExecTime: exec,
		})
		if err != nil {
			return false
		}
		if err := task.Start(); err != nil {
			return false
		}
		// Run an exact number of periods plus the final job's drain time.
		const releases = 50
		if err := k.Run(time.Duration(releases-1)*period + exec + time.Microsecond); err != nil {
			return false
		}
		st := task.Stats()
		return st.Jobs+st.Skips == releases
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
