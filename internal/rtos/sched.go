package rtos

import (
	"container/heap"

	"repro/internal/sim"
)

// readyQueue is a priority heap of runnable jobs. Under fixed priority it
// orders by (priority, seq): lower priority value first, FIFO within a
// level, and re-enqueueing a job assigns a fresh seq, which yields
// round-robin rotation among equal priorities when the quantum expires.
// Under EDF it orders by (absolute deadline, seq).
type readyQueue struct {
	items []*job
	edf   bool
}

func (q *readyQueue) Len() int { return len(q.items) }

func (q *readyQueue) Less(i, j int) bool {
	a, b := q.items[i], q.items[j]
	if q.edf {
		if a.absDeadline != b.absDeadline {
			return a.absDeadline < b.absDeadline
		}
		return a.seq < b.seq
	}
	if a.task.spec.Priority != b.task.spec.Priority {
		return a.task.spec.Priority < b.task.spec.Priority
	}
	return a.seq < b.seq
}

func (q *readyQueue) Swap(i, j int) {
	q.items[i], q.items[j] = q.items[j], q.items[i]
	q.items[i].heapIdx = i
	q.items[j].heapIdx = j
}

func (q *readyQueue) Push(x any) {
	it := x.(*job)
	it.heapIdx = len(q.items)
	q.items = append(q.items, it)
}

func (q *readyQueue) Pop() any {
	old := q.items
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	it.heapIdx = -1
	q.items = old[:n-1]
	return it
}

func (q *readyQueue) push(j *job) {
	j.queued = true
	heap.Push(q, j)
}

func (q *readyQueue) pop() *job {
	if len(q.items) == 0 {
		return nil
	}
	j := heap.Pop(q).(*job)
	j.queued = false
	return j
}

func (q *readyQueue) peek() *job {
	if len(q.items) == 0 {
		return nil
	}
	return q.items[0]
}

// remove withdraws a specific job (used by Suspend) through its stored
// heap index — O(log n) instead of a linear scan of the ready queue.
func (q *readyQueue) remove(j *job) {
	if !j.queued || j.heapIdx < 0 || j.heapIdx >= len(q.items) || q.items[j.heapIdx] != j {
		return
	}
	heap.Remove(q, j.heapIdx)
	j.queued = false
}

// cpu is one simulated processor with its own run queue. clk and sh are
// the clock and shard the CPU's event processing runs on (the kernel's
// own clock and single shard in the sequential engine).
type cpu struct {
	id         int
	clk        *sim.Clock
	sh         *kshard
	ready      readyQueue
	running    *job
	sliceStart sim.Time
	complEv    *sim.Event
	quantEv    *sim.Event
	nextSeq    uint64

	// completeFn and quantumFn are the slice-event handlers, bound once at
	// kernel construction so arming a slice allocates no closure.
	completeFn sim.Handler
	quantumFn  sim.Handler

	busy sim.Duration // accumulated execution time, for utilization reports
}

// enqueue admits a job and preempts the running job if the newcomer is
// strictly more urgent.
func (c *cpu) enqueue(k *Kernel, j *job, now sim.Time) {
	j.seq = c.nextSeq
	c.nextSeq++
	c.ready.push(j)
	if c.running == nil {
		c.dispatch(k, now)
		return
	}
	if c.ready.edf {
		if j.absDeadline < c.running.absDeadline {
			c.preemptRunning(k, now)
			c.dispatch(k, now)
		}
		return // no quantum rotation under EDF
	}
	if j.task.spec.Priority < c.running.task.spec.Priority {
		c.preemptRunning(k, now)
		c.dispatch(k, now)
		return
	}
	// An equal-priority arrival starts round-robin rotation if the
	// current slice has no quantum armed yet.
	if k.quantum > 0 && c.quantEv == nil && j.task.spec.Priority == c.running.task.spec.Priority {
		c.armQuantum(k, now)
	}
}

// dispatch starts the most urgent ready job if the CPU is idle.
func (c *cpu) dispatch(k *Kernel, now sim.Time) {
	if c.running != nil {
		return
	}
	j := c.ready.pop()
	if j == nil {
		return
	}
	c.running = j
	c.sliceStart = now
	k.traceOn(c.sh, now, TraceDispatch, j.task.spec.Name, c.id)
	if !j.dispatched {
		j.dispatched = true
		j.dispatchTime = now
		t := j.task
		t.latency.Add(int64(now.Sub(j.nominal)))
		if t.spec.Body != nil {
			t.spec.Body(&JobContext{
				Kernel:  k,
				Task:    t,
				Now:     now,
				Nominal: j.nominal,
				Index:   t.jobsDone + t.skips, // monotone job index
			})
		}
	}
	c.scheduleSlice(k, now)
}

// scheduleSlice arms the completion event and, if round-robin applies,
// the quantum event.
func (c *cpu) scheduleSlice(k *Kernel, now sim.Time) {
	j := c.running
	complAt := now.Add(j.remaining)
	ev, err := c.clk.Schedule(complAt, j.task.completeLabel, c.completeFn)
	if err != nil {
		panic(err) // virtual-time scheduling cannot fail here
	}
	c.complEv = ev
	if k.quantum > 0 && !c.ready.edf {
		if next := c.ready.peek(); next != nil && next.task.spec.Priority == j.task.spec.Priority {
			c.armQuantum(k, now)
		}
	}
}

// armQuantum schedules the end of the running job's time slice, measured
// from the start of the current slice. If the job completes first, the
// completion event cancels the quantum.
func (c *cpu) armQuantum(k *Kernel, now sim.Time) {
	j := c.running
	if j == nil || c.quantEv != nil {
		return
	}
	at := c.sliceStart.Add(k.quantum)
	if at >= c.sliceStart.Add(j.remaining) {
		return // completion arrives first; no rotation needed
	}
	if at < now {
		at = now
	}
	qev, err := c.clk.Schedule(at, j.task.quantumLabel, c.quantumFn)
	if err != nil {
		panic(err)
	}
	c.quantEv = qev
}

// preemptRunning stops the current job, accounting consumed time, and
// returns it to the ready queue.
func (c *cpu) preemptRunning(k *Kernel, now sim.Time) {
	j := c.running
	if j == nil {
		return
	}
	k.traceOn(c.sh, now, TracePreempt, j.task.spec.Name, c.id)
	elapsed := now.Sub(c.sliceStart)
	j.remaining -= elapsed
	if j.remaining < 0 {
		j.remaining = 0
	}
	c.busy += elapsed
	j.task.consumed += elapsed
	c.cancelSliceEvents()
	c.running = nil
	j.seq = c.nextSeq
	c.nextSeq++
	c.ready.push(j)
}

// rotate ends the running job's quantum, moving it behind its
// equal-priority peers.
func (c *cpu) rotate(k *Kernel, now sim.Time) {
	j := c.running
	if j == nil {
		return
	}
	elapsed := now.Sub(c.sliceStart)
	j.remaining -= elapsed
	if j.remaining < 0 {
		j.remaining = 0
	}
	c.busy += elapsed
	j.task.consumed += elapsed
	c.cancelSliceEvents()
	c.running = nil
	if j.remaining > 0 {
		k.traceOn(c.sh, now, TraceRotate, j.task.spec.Name, c.id)
		j.seq = c.nextSeq
		c.nextSeq++
		c.ready.push(j)
	} else {
		c.finishJob(k, j, now)
		c.sh.recycleJob(j)
	}
	c.dispatch(k, now)
}

// complete finishes the running job.
func (c *cpu) complete(k *Kernel, now sim.Time) {
	j := c.running
	if j == nil {
		return
	}
	c.busy += now.Sub(c.sliceStart)
	j.task.consumed += now.Sub(c.sliceStart)
	c.cancelSliceEvents()
	c.running = nil
	j.remaining = 0
	c.finishJob(k, j, now)
	c.sh.recycleJob(j)
	c.dispatch(k, now)
}

func (c *cpu) finishJob(k *Kernel, j *job, now sim.Time) {
	t := j.task
	if t.state == TaskDeleted {
		return
	}
	k.traceOn(c.sh, now, TraceComplete, t.spec.Name, c.id)
	t.response.Add(int64(now.Sub(j.nominal)))
	t.jobsDone++
	if d := t.deadline(); d > 0 && now > j.nominal.Add(d) {
		t.misses++
	}
	if t.pending == j {
		t.pending = nil
	}
}

func (c *cpu) cancelSliceEvents() {
	if c.complEv != nil {
		c.complEv.Cancel()
		c.complEv = nil
	}
	if c.quantEv != nil {
		c.quantEv.Cancel()
		c.quantEv = nil
	}
}
