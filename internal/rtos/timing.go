package rtos

import (
	"time"

	"repro/internal/sim"
)

// LoadMode captures the two system-load environments of the paper's
// evaluation (§4.4): an otherwise idle machine ("light") and a machine
// whose non-real-time side runs at ~100% CPU ("stress").
type LoadMode int

// Load modes.
const (
	LightLoad LoadMode = iota + 1
	StressLoad
)

func (m LoadMode) String() string {
	switch m {
	case LightLoad:
		return "light"
	case StressLoad:
		return "stress"
	default:
		return "unknown"
	}
}

// TimingModel reproduces the *shape* of RTAI periodic-timer behaviour on
// the paper's testbed (HP nc6400, RTAI 3.5 dual kernel, hardware timer in
// periodic mode). The paper's Table 1 shows two regimes:
//
//   - Light load: scheduling latency centred near zero (mean ≈ −1 µs)
//     with a wide spread (AVEDEV ≈ 3.7 µs, min/max ≈ ±25 µs). On an idle
//     laptop the CPU drops into power-saving states between 1 kHz jobs;
//     wake-up cost and periodic-mode rounding scatter dispatch both early
//     and late around the nominal release.
//
//   - Stress load: mean strongly negative (≈ −21 µs) with a *tight*
//     spread (AVEDEV ≈ 0.35 µs). A fully busy CPU never idles, so jitter
//     collapses; what remains is the systematic early-fire offset of the
//     periodic-mode timer calibration, which the RTAI latency test
//     reports as negative latency.
//
// The model is therefore: latency_offset = Offset + N(0, Sigma) +
// occasional two-sided excursions of scale ExcursionScale with
// probability ExcursionProb. All values are added to the nominal release
// time before scheduling; queueing delay behind higher-priority tasks is
// then produced mechanically by the scheduler.
//
// Absolute constants were calibrated against the paper's Table 1 and are
// documented per mode below; the comparative claims (HRC ≈ pure RTAI,
// light vs stress regime change) emerge from the simulation itself.
type TimingModel struct {
	// Offset is the systematic timer calibration drift applied to every
	// release (negative = fires early).
	Offset time.Duration
	// Sigma is the standard deviation of per-release Gaussian noise.
	Sigma time.Duration
	// ExcursionProb is the per-release probability of a large two-sided
	// excursion (deep idle-state wakeup, SMI, cache refill burst).
	ExcursionProb float64
	// ExcursionScale is the magnitude scale of excursions; the excursion
	// is uniform in ±[0.5,1.0]·ExcursionScale.
	ExcursionScale time.Duration
}

// LightTiming is the calibrated light-load model: near-zero mean, wide
// spread (idle-state wakeups dominate).
func LightTiming() TimingModel {
	return TimingModel{
		Offset:         -600 * time.Nanosecond,
		Sigma:          3800 * time.Nanosecond,
		ExcursionProb:  0.012,
		ExcursionScale: 22 * time.Microsecond,
	}
}

// StressTiming is the calibrated stress-load model: strongly negative
// mean from periodic-timer calibration, tight spread (CPU never idles).
func StressTiming() TimingModel {
	return TimingModel{
		Offset:         -21200 * time.Nanosecond,
		Sigma:          420 * time.Nanosecond,
		ExcursionProb:  0.0008,
		ExcursionScale: 3500 * time.Nanosecond,
	}
}

// TimingForMode returns the calibrated model for a load mode.
func TimingForMode(m LoadMode) TimingModel {
	if m == StressLoad {
		return StressTiming()
	}
	return LightTiming()
}

// SampleOffset draws one release-time perturbation.
func (tm TimingModel) SampleOffset(r *sim.Rand) time.Duration {
	d := tm.Offset + time.Duration(float64(tm.Sigma)*r.NormFloat64())
	if tm.ExcursionProb > 0 && r.Bool(tm.ExcursionProb) {
		mag := 0.5 + 0.5*r.Float64()
		exc := time.Duration(mag * float64(tm.ExcursionScale))
		if r.Bool(0.5) {
			exc = -exc
		}
		d += exc
	}
	return d
}
