package rtos

import (
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
)

// TestTraceEventKindStringExhaustive walks every defined kind and
// asserts the static name table covers it; a new kind added without a
// name falls through to the numeric fallback and fails here.
func TestTraceEventKindStringExhaustive(t *testing.T) {
	kinds := []TraceEventKind{
		TraceRelease, TraceDispatch, TracePreempt,
		TraceRotate, TraceComplete, TraceSkip,
	}
	if len(kinds) != len(traceEventNames)-1 {
		t.Fatalf("name table has %d entries for %d kinds — keep them in sync",
			len(traceEventNames)-1, len(kinds))
	}
	seen := map[string]TraceEventKind{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || strings.HasPrefix(s, "TraceEventKind(") {
			t.Errorf("kind %d missing from name table (got %q)", int(k), s)
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("kinds %d and %d share name %q", int(prev), int(k), s)
		}
		seen[s] = k
	}
	if got := TraceEventKind(0).String(); got != "TraceEventKind(0)" {
		t.Errorf("zero kind: got %q", got)
	}
	if got := TraceEventKind(99).String(); got != "TraceEventKind(99)" {
		t.Errorf("out-of-range kind: got %q", got)
	}
}

// TestTraceEventKindStringAllocs pins the hot-path property that
// motivated the static table: stringifying a defined kind allocates
// nothing.
func TestTraceEventKindStringAllocs(t *testing.T) {
	allocs := testing.AllocsPerRun(100, func() {
		_ = TraceDispatch.String()
		_ = TraceRelease.String()
	})
	if allocs != 0 {
		t.Fatalf("TraceEventKind.String allocates %.1f per run", allocs)
	}
}

// TestTraceSinkForwarding checks the live sink sees the same events the
// buffering tracer records.
func TestTraceSinkForwarding(t *testing.T) {
	k := NewKernel(Config{Seed: 7})
	tr := k.StartTrace(0)
	var sunk []TraceEvent
	k.SetTraceSink(func(at sim.Time, kind TraceEventKind, task string, cpu int) {
		sunk = append(sunk, TraceEvent{At: at, Kind: kind, Task: task, CPU: cpu})
	})
	task, err := k.CreateTask(TaskSpec{
		Name: "t", Type: Periodic, Period: time.Millisecond,
		Priority: 1, ExecTime: 100 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := task.Start(); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(10 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	got := tr.Events()
	if len(got) == 0 {
		t.Fatal("tracer recorded nothing")
	}
	if len(sunk) != len(got) {
		t.Fatalf("sink saw %d events, tracer %d", len(sunk), len(got))
	}
	for i := range got {
		if sunk[i] != got[i] {
			t.Fatalf("event %d: sink %+v, tracer %+v", i, sunk[i], got[i])
		}
	}
	k.SetTraceSink(nil) // detaching must not panic future traces
	if err := k.Run(time.Millisecond); err != nil {
		t.Fatal(err)
	}
}
