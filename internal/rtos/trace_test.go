package rtos

import (
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
)

func TestTraceRecordsSchedulerEvents(t *testing.T) {
	k := exactKernel(1)
	tr := k.StartTrace(0)
	hi, _ := k.CreateTask(TaskSpec{
		Name: "hi", Type: Periodic, Period: 10 * time.Millisecond,
		Phase: time.Millisecond, Priority: 1, ExecTime: 500 * time.Microsecond,
	})
	lo, _ := k.CreateTask(TaskSpec{
		Name: "lo", Type: Periodic, Period: 10 * time.Millisecond,
		Priority: 2, ExecTime: 2 * time.Millisecond,
	})
	if err := hi.Start(); err != nil {
		t.Fatal(err)
	}
	if err := lo.Start(); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(5 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	kinds := map[TraceEventKind]int{}
	for _, ev := range tr.Events() {
		kinds[ev.Kind]++
	}
	// lo starts at 0, hi arrives at 1ms and preempts it.
	if kinds[TraceRelease] < 2 || kinds[TraceDispatch] < 3 || kinds[TracePreempt] < 1 || kinds[TraceComplete] < 2 {
		t.Fatalf("kinds = %v", kinds)
	}
	// Events are time-ordered.
	evs := tr.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatalf("trace out of order at %d", i)
		}
	}
}

func TestTraceSkipRecorded(t *testing.T) {
	k := exactKernel(1)
	tr := k.StartTrace(0)
	hog, _ := k.CreateTask(TaskSpec{Name: "hog", Type: Periodic, Period: time.Millisecond, Priority: 0, ExecTime: 900 * time.Microsecond})
	starve, _ := k.CreateTask(TaskSpec{Name: "starve", Type: Periodic, Period: time.Millisecond, Priority: 1, ExecTime: 500 * time.Microsecond})
	if err := hog.Start(); err != nil {
		t.Fatal(err)
	}
	if err := starve.Start(); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(50 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	var skips int
	for _, ev := range tr.Events() {
		if ev.Kind == TraceSkip && ev.Task == "starve" {
			skips++
		}
	}
	if skips == 0 {
		t.Fatal("no skip events in overload trace")
	}
}

func TestTraceLimitAndStop(t *testing.T) {
	k := exactKernel(1)
	tr := k.StartTrace(5)
	task, _ := k.CreateTask(TaskSpec{Name: "x", Type: Periodic, Period: time.Millisecond, ExecTime: time.Microsecond})
	if err := task.Start(); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(20 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if got := len(tr.Events()); got != 5 {
		t.Fatalf("limited trace = %d events", got)
	}
	k.StopTrace()
	before := len(tr.Events())
	if err := k.Run(10 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(tr.Events()) != before {
		t.Fatal("stopped trace kept recording")
	}
}

func TestGanttRender(t *testing.T) {
	k := exactKernel(1)
	tr := k.StartTrace(0)
	a, _ := k.CreateTask(TaskSpec{Name: "taskA", Type: Periodic, Period: 4 * time.Millisecond, Priority: 1, ExecTime: time.Millisecond})
	b, _ := k.CreateTask(TaskSpec{Name: "taskB", Type: Periodic, Period: 4 * time.Millisecond, Priority: 2, ExecTime: 2 * time.Millisecond})
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(8 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	out := tr.Gantt(0, sim.Time(8*time.Millisecond), 64)
	if !strings.Contains(out, "taskA") || !strings.Contains(out, "taskB") {
		t.Fatalf("gantt missing rows:\n%s", out)
	}
	if !strings.Contains(out, "#") {
		t.Fatalf("gantt has no execution marks:\n%s", out)
	}
	// taskB waits while taskA runs: there must be '.' somewhere in B's row.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "taskB") && !strings.Contains(line, ".") {
			t.Fatalf("taskB row shows no waiting:\n%s", out)
		}
	}
	if got := tr.Gantt(10, 10, 20); !strings.Contains(got, "empty window") {
		t.Fatalf("empty window = %q", got)
	}
	// Default column count path.
	if tr.Gantt(0, sim.Time(time.Millisecond), 0) == "" {
		t.Fatal("default columns render empty")
	}
}
