package rtos

import (
	"testing"
	"time"
)

// TestDispatchCycleAllocFree proves a full periodic dispatch cycle —
// release, dispatch, completion, next-release arming — allocates nothing
// once the event and job pools are warm and the stats buffers are
// reserved. This pins the steady-state allocation-free property the
// throughput benchmarks measure.
func TestDispatchCycleAllocFree(t *testing.T) {
	k := NewKernel(Config{Seed: 1})
	task, err := k.CreateTask(TaskSpec{
		Name: "tick", Type: Periodic, Period: time.Millisecond,
		ExecTime: 30 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := task.Start(); err != nil {
		t.Fatal(err)
	}
	// Warm-up: fills the Event and job free lists and the heap's backing
	// array; then reserve room for the measured jobs' samples.
	if err := k.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	task.ReserveStats(2000)

	allocs := testing.AllocsPerRun(500, func() {
		if err := k.Run(time.Millisecond); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("periodic dispatch cycle allocated %.2f objects per period, want 0", allocs)
	}
}
