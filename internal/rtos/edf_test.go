package rtos

import (
	"testing"
	"time"
)

func edfKernel() *Kernel {
	return NewKernel(Config{Timing: &noNoise, Seed: 4, Policy: EarliestDeadlineFirst})
}

func TestSchedPolicyString(t *testing.T) {
	if FixedPriority.String() != "fp" || EarliestDeadlineFirst.String() != "edf" {
		t.Fatal("policy strings")
	}
}

func TestEDFMeetsDeadlinesWhereFPFails(t *testing.T) {
	// Density exactly 1.0 with rate-inverted priorities: C1=5,T1=10 at
	// declared prio 1; C2=2,T2=4 at prio 2. Under FP the short task waits
	// behind the long one (R2 = 7 > 4). Under EDF the set is schedulable.
	build := func(k *Kernel) (long, short *Task) {
		var err error
		long, err = k.CreateTask(TaskSpec{
			Name: "long", Type: Periodic, Period: 10 * time.Millisecond,
			Priority: 1, ExecTime: 5 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		short, err = k.CreateTask(TaskSpec{
			Name: "short", Type: Periodic, Period: 4 * time.Millisecond,
			Priority: 2, ExecTime: 2 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := long.Start(); err != nil {
			t.Fatal(err)
		}
		if err := short.Start(); err != nil {
			t.Fatal(err)
		}
		return long, short
	}

	fp := NewKernel(Config{Timing: &noNoise, Seed: 4})
	_, shortFP := build(fp)
	if err := fp.Run(200 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if got := shortFP.Stats().Misses + shortFP.Stats().Skips; got == 0 {
		t.Fatal("FP met all deadlines on the rate-inverted set; test premise broken")
	}

	edf := edfKernel()
	longEDF, shortEDF := build(edf)
	if err := edf.Run(200 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if got := shortEDF.Stats().Misses + shortEDF.Stats().Skips; got != 0 {
		t.Fatalf("EDF short task violated %d contracts", got)
	}
	if got := longEDF.Stats().Misses + longEDF.Stats().Skips; got != 0 {
		t.Fatalf("EDF long task violated %d contracts", got)
	}
}

func TestEDFPreemptsByDeadline(t *testing.T) {
	k := edfKernel()
	// Task with a late deadline starts first; a tighter-deadline arrival
	// must preempt it regardless of declared priorities.
	loose, err := k.CreateTask(TaskSpec{
		Name: "loose", Type: Periodic, Period: 100 * time.Millisecond,
		Priority: 0, ExecTime: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := k.CreateTask(TaskSpec{
		Name: "tight", Type: Periodic, Period: 5 * time.Millisecond,
		Phase: time.Millisecond, Priority: 9, ExecTime: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := loose.Start(); err != nil {
		t.Fatal(err)
	}
	if err := tight.Start(); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(50 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// tight's first release at 1ms lands mid-loose-job; EDF must dispatch
	// it immediately (latency 0), priorities notwithstanding.
	if got := tight.Stats().Latency.Max; got != 0 {
		t.Fatalf("tight latency = %d, want 0 under EDF", got)
	}
}

func TestEDFNoQuantumRotation(t *testing.T) {
	k := NewKernel(Config{Timing: &noNoise, Seed: 4, Policy: EarliestDeadlineFirst, Quantum: 50 * time.Microsecond})
	// Two tasks with identical deadlines: FIFO by release order, no RR.
	a, _ := k.CreateTask(TaskSpec{Name: "a", Type: Periodic, Period: 10 * time.Millisecond, ExecTime: 300 * time.Microsecond})
	b, _ := k.CreateTask(TaskSpec{Name: "b", Type: Periodic, Period: 10 * time.Millisecond, ExecTime: 300 * time.Microsecond})
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(5 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if got := b.Stats().Latency.Max; got != int64(300*time.Microsecond) {
		t.Fatalf("b latency = %d, want a's full job (no EDF rotation)", got)
	}
}

func TestEDFDeterminism(t *testing.T) {
	run := func() []int64 {
		k := NewKernel(Config{Seed: 77, Policy: EarliestDeadlineFirst})
		task, err := k.CreateTask(TaskSpec{Name: "d", Type: Periodic, Period: time.Millisecond, ExecTime: 100 * time.Microsecond, ExecJitter: 0.1})
		if err != nil {
			t.Fatal(err)
		}
		if err := task.Start(); err != nil {
			t.Fatal(err)
		}
		if err := k.Run(100 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
		return task.LatencySamples()
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("EDF runs diverged at %d", i)
		}
	}
}
