package rtos

import (
	"errors"
	"testing"
	"time"

	"repro/internal/rtos/ipc"
)

// noNoise is a timing model with zero drift, for exact-latency tests.
var noNoise = TimingModel{}

func exactKernel(numCPU int) *Kernel {
	return NewKernel(Config{NumCPUs: numCPU, Timing: &noNoise, Seed: 7})
}

func TestTaskSpecValidation(t *testing.T) {
	k := exactKernel(1)
	base := TaskSpec{Name: "good", Type: Periodic, Period: time.Millisecond, ExecTime: 10 * time.Microsecond}
	if _, err := k.CreateTask(base); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*TaskSpec)
	}{
		{"empty name", func(s *TaskSpec) { s.Name = "" }},
		{"long name", func(s *TaskSpec) { s.Name = "sevench" }},
		{"bad type", func(s *TaskSpec) { s.Type = 0 }},
		{"bad cpu", func(s *TaskSpec) { s.CPU = 1 }},
		{"negative cpu", func(s *TaskSpec) { s.CPU = -1 }},
		{"negative prio", func(s *TaskSpec) { s.Priority = -1 }},
		{"zero period", func(s *TaskSpec) { s.Period = 0 }},
		{"negative exec", func(s *TaskSpec) { s.ExecTime = -1 }},
		{"bad jitter", func(s *TaskSpec) { s.ExecJitter = 1.5 }},
		{"exec exceeds period", func(s *TaskSpec) { s.ExecTime = 2 * time.Millisecond }},
	}
	for _, c := range cases {
		spec := base
		spec.Name = "x"
		c.mutate(&spec)
		if _, err := k.CreateTask(spec); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	// Duplicate name.
	if _, err := k.CreateTask(base); err == nil {
		t.Error("duplicate name accepted")
	}
}

func TestPeriodicExactReleases(t *testing.T) {
	k := exactKernel(1)
	var dispatches []int64
	task, err := k.CreateTask(TaskSpec{
		Name: "tick", Type: Periodic, Period: time.Millisecond,
		ExecTime: 50 * time.Microsecond,
		Body: func(j *JobContext) {
			dispatches = append(dispatches, int64(j.Now))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := task.Start(); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(10*time.Millisecond + 100*time.Microsecond); err != nil {
		t.Fatal(err)
	}
	if len(dispatches) != 11 { // t = 0,1ms,...,10ms
		t.Fatalf("dispatches = %d, want 11", len(dispatches))
	}
	for i, d := range dispatches {
		if d != int64(i)*int64(time.Millisecond) {
			t.Fatalf("dispatch %d at %d, want exact period grid", i, d)
		}
	}
	st := task.Stats()
	if st.Jobs != 11 || st.Misses != 0 || st.Skips != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Latency.Average != 0 || st.Latency.Max != 0 {
		t.Fatalf("noise-free latency = %+v", st.Latency)
	}
	// Response = exec time exactly.
	if st.Response.Average != float64(50*time.Microsecond) {
		t.Fatalf("response avg = %v", st.Response.Average)
	}
}

func TestPhaseDelaysFirstRelease(t *testing.T) {
	k := exactKernel(1)
	var first int64 = -1
	task, _ := k.CreateTask(TaskSpec{
		Name: "ph", Type: Periodic, Period: time.Millisecond, Phase: 300 * time.Microsecond,
		ExecTime: time.Microsecond,
		Body: func(j *JobContext) {
			if first < 0 {
				first = int64(j.Now)
			}
		},
	})
	if err := task.Start(); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(2 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if first != int64(300*time.Microsecond) {
		t.Fatalf("first dispatch at %d", first)
	}
}

func TestPreemptionByHigherPriority(t *testing.T) {
	k := exactKernel(1)
	// Low-priority hog: released at 0, runs 500µs.
	hog, _ := k.CreateTask(TaskSpec{
		Name: "hog", Type: Periodic, Period: 10 * time.Millisecond,
		Priority: 5, ExecTime: 500 * time.Microsecond,
	})
	// High-priority task released at 100µs (phase).
	urgent, _ := k.CreateTask(TaskSpec{
		Name: "urgent", Type: Periodic, Period: 10 * time.Millisecond,
		Phase: 100 * time.Microsecond, Priority: 1, ExecTime: 50 * time.Microsecond,
	})
	if err := hog.Start(); err != nil {
		t.Fatal(err)
	}
	if err := urgent.Start(); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(5 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	us := urgent.Stats()
	if us.Latency.Max != 0 {
		t.Fatalf("urgent latency max = %d, want 0 (immediate preemption)", us.Latency.Max)
	}
	hs := hog.Stats()
	// Hog's response = 500µs own work + 50µs stolen by urgent.
	if hs.Response.Max != int64(550*time.Microsecond) {
		t.Fatalf("hog response max = %d, want 550µs", hs.Response.Max)
	}
	if hs.Jobs == 0 || hs.Misses != 0 {
		t.Fatalf("hog stats = %+v", hs)
	}
}

func TestLowerPriorityWaits(t *testing.T) {
	k := exactKernel(1)
	// Both released at t=0; high runs first, low waits.
	high, _ := k.CreateTask(TaskSpec{
		Name: "high", Type: Periodic, Period: 10 * time.Millisecond,
		Priority: 1, ExecTime: 200 * time.Microsecond,
	})
	low, _ := k.CreateTask(TaskSpec{
		Name: "low", Type: Periodic, Period: 10 * time.Millisecond,
		Priority: 2, ExecTime: 100 * time.Microsecond,
	})
	if err := high.Start(); err != nil {
		t.Fatal(err)
	}
	if err := low.Start(); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(5 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	ls := low.Stats()
	if ls.Latency.Max != int64(200*time.Microsecond) {
		t.Fatalf("low latency = %d, want 200µs queueing delay", ls.Latency.Max)
	}
}

func TestRoundRobinAmongEqualPriority(t *testing.T) {
	k := NewKernel(Config{Timing: &noNoise, Quantum: 100 * time.Microsecond, Seed: 3})
	var order []string
	mk := func(name string) {
		task, err := k.CreateTask(TaskSpec{
			Name: name, Type: Periodic, Period: 10 * time.Millisecond,
			Priority: 2, ExecTime: 250 * time.Microsecond,
			Body: func(j *JobContext) { order = append(order, name) },
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := task.Start(); err != nil {
			t.Fatal(err)
		}
	}
	mk("aaa")
	mk("bbb")
	if err := k.Run(2 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// Both dispatched in the first millisecond; RR means bbb starts before
	// aaa finishes its full 250µs.
	if len(order) != 2 {
		t.Fatalf("order = %v", order)
	}
	// aaa completes at 100+100+50+(rotations) — verify interleaving via
	// completion times: with RR both finish within 500µs total work.
	as, bs := mustTask(t, k, "aaa").Stats(), mustTask(t, k, "bbb").Stats()
	if as.Jobs != 1 || bs.Jobs != 1 {
		t.Fatalf("jobs = %d/%d", as.Jobs, bs.Jobs)
	}
	// bbb's first dispatch happened at the first quantum boundary, not
	// after aaa's full job.
	if bs.Latency.Max != int64(100*time.Microsecond) {
		t.Fatalf("bbb latency = %d, want one quantum (100µs)", bs.Latency.Max)
	}
	// With RR, aaa finishes at 450µs (250 own + 200 of bbb interleaved).
	if as.Response.Max != int64(450*time.Microsecond) {
		t.Fatalf("aaa response = %d, want 450µs", as.Response.Max)
	}
}

func TestFIFOWhenQuantumDisabled(t *testing.T) {
	k := NewKernel(Config{Timing: &noNoise, Quantum: -1, Seed: 3})
	a, _ := k.CreateTask(TaskSpec{Name: "a", Type: Periodic, Period: 10 * time.Millisecond, Priority: 2, ExecTime: 250 * time.Microsecond})
	b, _ := k.CreateTask(TaskSpec{Name: "b", Type: Periodic, Period: 10 * time.Millisecond, Priority: 2, ExecTime: 250 * time.Microsecond})
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(2 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if got := b.Stats().Latency.Max; got != int64(250*time.Microsecond) {
		t.Fatalf("b latency = %d, want full 250µs of a (FIFO)", got)
	}
}

func TestOverloadCausesMissesAndSkips(t *testing.T) {
	k := exactKernel(1)
	// 110% utilization: misses then skips must appear on the low task.
	hi, _ := k.CreateTask(TaskSpec{Name: "hi", Type: Periodic, Period: time.Millisecond, Priority: 1, ExecTime: 900 * time.Microsecond})
	lo, _ := k.CreateTask(TaskSpec{Name: "lo", Type: Periodic, Period: time.Millisecond, Priority: 2, ExecTime: 200 * time.Microsecond})
	if err := hi.Start(); err != nil {
		t.Fatal(err)
	}
	if err := lo.Start(); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	his, los := hi.Stats(), lo.Stats()
	if his.Misses != 0 {
		t.Fatalf("high-priority task missed %d deadlines", his.Misses)
	}
	if los.Misses == 0 {
		t.Fatal("overloaded low task missed no deadlines")
	}
	if los.Skips == 0 {
		t.Fatal("overloaded low task skipped no releases")
	}
}

func TestSuspendResume(t *testing.T) {
	k := exactKernel(1)
	task, _ := k.CreateTask(TaskSpec{Name: "sr", Type: Periodic, Period: time.Millisecond, ExecTime: 10 * time.Microsecond})
	if err := task.Start(); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(5 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := task.Suspend(); err != nil {
		t.Fatal(err)
	}
	if task.State() != TaskSuspended {
		t.Fatalf("state = %v", task.State())
	}
	// A job already running at suspension time completes (RTAI stops a
	// task at its next scheduling point); let it drain before counting.
	if err := k.Run(time.Millisecond); err != nil {
		t.Fatal(err)
	}
	jobsBefore := task.Stats().Jobs
	if err := k.Run(10 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if got := task.Stats().Jobs; got != jobsBefore {
		t.Fatalf("suspended task ran: %d -> %d jobs", jobsBefore, got)
	}
	if err := task.Resume(); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(10 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if got := task.Stats().Jobs; got <= jobsBefore {
		t.Fatal("resumed task did not run")
	}
	// Releases realigned to the period grid: latency still exact zero.
	if task.Stats().Latency.Max != 0 {
		t.Fatalf("post-resume latency = %+v", task.Stats().Latency)
	}
	// Idempotent operations.
	if err := task.Resume(); err != nil {
		t.Fatal(err)
	}
	if err := task.Suspend(); err != nil {
		t.Fatal(err)
	}
	if err := task.Suspend(); err != nil {
		t.Fatal(err)
	}
}

func TestAperiodicTrigger(t *testing.T) {
	k := exactKernel(1)
	var ran int
	task, _ := k.CreateTask(TaskSpec{
		Name: "ap", Type: Aperiodic, Priority: 1, ExecTime: 20 * time.Microsecond,
		Body: func(j *JobContext) { ran++ },
	})
	if err := task.Trigger(); err == nil {
		t.Fatal("Trigger before Start accepted")
	}
	if err := task.Start(); err != nil {
		t.Fatal(err)
	}
	if err := task.Trigger(); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if ran != 1 {
		t.Fatalf("ran = %d", ran)
	}
	if task.Stats().Jobs != 1 {
		t.Fatalf("jobs = %d", task.Stats().Jobs)
	}
}

func TestTriggerOnPeriodicRejected(t *testing.T) {
	k := exactKernel(1)
	task, _ := k.CreateTask(TaskSpec{Name: "p", Type: Periodic, Period: time.Millisecond, ExecTime: time.Microsecond})
	if err := task.Start(); err != nil {
		t.Fatal(err)
	}
	if err := task.Trigger(); err == nil {
		t.Fatal("Trigger on periodic task accepted")
	}
}

func TestDeleteTask(t *testing.T) {
	k := exactKernel(1)
	task, _ := k.CreateTask(TaskSpec{Name: "del", Type: Periodic, Period: time.Millisecond, ExecTime: time.Microsecond})
	if err := task.Start(); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(3 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := task.Delete(); err != nil {
		t.Fatal(err)
	}
	if task.State() != TaskDeleted {
		t.Fatalf("state = %v", task.State())
	}
	if _, ok := k.Task("del"); ok {
		t.Fatal("deleted task still registered")
	}
	if err := task.Start(); !errors.Is(err, ErrTaskDeleted) {
		t.Fatalf("Start on deleted: %v", err)
	}
	if err := task.Delete(); !errors.Is(err, ErrTaskDeleted) {
		t.Fatalf("double delete: %v", err)
	}
	// The name can be reused.
	if _, err := k.CreateTask(TaskSpec{Name: "del", Type: Periodic, Period: time.Millisecond, ExecTime: time.Microsecond}); err != nil {
		t.Fatal(err)
	}
}

func TestMultiCPUIsolation(t *testing.T) {
	k := exactKernel(2)
	// CPU 0 hog at high priority; CPU 1 task must be unaffected.
	hog, _ := k.CreateTask(TaskSpec{Name: "hog", Type: Periodic, Period: time.Millisecond, CPU: 0, Priority: 0, ExecTime: 900 * time.Microsecond})
	other, _ := k.CreateTask(TaskSpec{Name: "other", Type: Periodic, Period: time.Millisecond, CPU: 1, Priority: 5, ExecTime: 100 * time.Microsecond})
	if err := hog.Start(); err != nil {
		t.Fatal(err)
	}
	if err := other.Start(); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(50 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if got := other.Stats().Latency.Max; got != 0 {
		t.Fatalf("cross-CPU interference: latency %d", got)
	}
	u0, u1 := k.Utilization(0), k.Utilization(1)
	if u0 < 0.89 || u0 > 0.91 {
		t.Fatalf("cpu0 utilization = %v", u0)
	}
	if u1 < 0.09 || u1 > 0.11 {
		t.Fatalf("cpu1 utilization = %v", u1)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []int64 {
		k := NewKernel(Config{Seed: 42, Mode: LightLoad})
		task, err := k.CreateTask(TaskSpec{Name: "d", Type: Periodic, Period: time.Millisecond, ExecTime: 30 * time.Microsecond, ExecJitter: 0.1})
		if err != nil {
			t.Fatal(err)
		}
		if err := task.Start(); err != nil {
			t.Fatal(err)
		}
		if err := k.Run(200 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
		return task.LatencySamples()
	}
	a, b := run(), run()
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("lengths %d/%d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestLoadModeRegimes(t *testing.T) {
	measure := func(mode LoadMode) (mean, avedev float64) {
		k := NewKernel(Config{Seed: 11, Mode: mode})
		task, err := k.CreateTask(TaskSpec{Name: "lat", Type: Periodic, Period: time.Millisecond, ExecTime: 20 * time.Microsecond})
		if err != nil {
			t.Fatal(err)
		}
		if err := task.Start(); err != nil {
			t.Fatal(err)
		}
		if err := k.Run(5 * time.Second); err != nil {
			t.Fatal(err)
		}
		row := task.Stats().Latency
		return row.Average, row.AveDev
	}
	lightMean, lightDev := measure(LightLoad)
	stressMean, stressDev := measure(StressLoad)
	// Paper Table 1 shape: light near zero with wide spread; stress ~-21µs
	// with tight spread.
	if lightMean < -4000 || lightMean > 2000 {
		t.Fatalf("light mean = %v ns, want near zero", lightMean)
	}
	if stressMean > -18000 || stressMean < -25000 {
		t.Fatalf("stress mean = %v ns, want ≈ -21µs", stressMean)
	}
	if lightDev < 4*stressDev {
		t.Fatalf("spread regime wrong: light %v vs stress %v", lightDev, stressDev)
	}
}

func TestSetLoadModeSwitchesAtRuntime(t *testing.T) {
	k := NewKernel(Config{Seed: 5, Mode: LightLoad})
	task, _ := k.CreateTask(TaskSpec{Name: "sw", Type: Periodic, Period: time.Millisecond, ExecTime: 10 * time.Microsecond})
	if err := task.Start(); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	task.ResetStats()
	k.SetLoadMode(StressLoad)
	if k.Mode() != StressLoad {
		t.Fatal("mode not switched")
	}
	if err := k.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if mean := task.Stats().Latency.Average; mean > -15000 {
		t.Fatalf("post-switch mean = %v, want stress regime", mean)
	}
}

func TestKernelIPCIntegration(t *testing.T) {
	k := exactKernel(1)
	shm, err := k.IPC().CreateSHM("data", ipc.Integer, 8)
	if err != nil {
		t.Fatal(err)
	}
	producer, _ := k.CreateTask(TaskSpec{
		Name: "prod", Type: Periodic, Period: time.Millisecond, Priority: 1,
		ExecTime: 10 * time.Microsecond,
		Body: func(j *JobContext) {
			s, err := j.Kernel.IPC().SHM("data")
			if err != nil {
				t.Errorf("producer SHM lookup: %v", err)
				return
			}
			if err := s.Set(0, int64(j.Index)); err != nil {
				t.Errorf("producer Set: %v", err)
			}
		},
	})
	var seen []int64
	consumer, _ := k.CreateTask(TaskSpec{
		Name: "cons", Type: Periodic, Period: 4 * time.Millisecond, Priority: 2,
		ExecTime: 10 * time.Microsecond,
		Body: func(j *JobContext) {
			v, err := shm.Get(0)
			if err != nil {
				t.Errorf("consumer Get: %v", err)
				return
			}
			seen = append(seen, v)
		},
	})
	if err := producer.Start(); err != nil {
		t.Fatal(err)
	}
	if err := consumer.Start(); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(20 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(seen) < 5 {
		t.Fatalf("consumer saw %d values", len(seen))
	}
	for i := 1; i < len(seen); i++ {
		if seen[i] < seen[i-1] {
			t.Fatalf("non-monotone data: %v", seen)
		}
	}
}

func TestTasksSortedAndLookup(t *testing.T) {
	k := exactKernel(1)
	for _, n := range []string{"zeta", "alpha", "mid"} {
		if _, err := k.CreateTask(TaskSpec{Name: n, Type: Aperiodic, ExecTime: time.Microsecond}); err != nil {
			t.Fatal(err)
		}
	}
	ts := k.Tasks()
	if len(ts) != 3 || ts[0].Name() != "alpha" || ts[2].Name() != "zeta" {
		t.Fatalf("Tasks = %v", ts)
	}
	if _, ok := k.Task("mid"); !ok {
		t.Fatal("lookup failed")
	}
	if _, ok := k.Task("nope"); ok {
		t.Fatal("phantom task")
	}
}

func TestBusyTimeAccounting(t *testing.T) {
	k := exactKernel(1)
	task, _ := k.CreateTask(TaskSpec{Name: "b", Type: Periodic, Period: time.Millisecond, ExecTime: 100 * time.Microsecond})
	if err := task.Start(); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(10*time.Millisecond + 200*time.Microsecond); err != nil {
		t.Fatal(err)
	}
	busy, err := k.BusyTime(0)
	if err != nil {
		t.Fatal(err)
	}
	if busy != 11*100*time.Microsecond {
		t.Fatalf("busy = %v, want 1.1ms", busy)
	}
	if _, err := k.BusyTime(9); err == nil {
		t.Fatal("bad cpu accepted")
	}
}

func TestResetStats(t *testing.T) {
	k := exactKernel(1)
	task, _ := k.CreateTask(TaskSpec{Name: "r", Type: Periodic, Period: time.Millisecond, ExecTime: time.Microsecond})
	if err := task.Start(); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(5 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if task.Stats().Jobs == 0 {
		t.Fatal("no jobs before reset")
	}
	task.ResetStats()
	st := task.Stats()
	if st.Jobs != 0 || st.Latency.N != 0 {
		t.Fatalf("stats after reset = %+v", st)
	}
}

func TestConfigDefaults(t *testing.T) {
	k := NewKernel(Config{})
	if k.NumCPUs() != 1 {
		t.Fatalf("NumCPUs = %d", k.NumCPUs())
	}
	if k.Mode() != LightLoad {
		t.Fatalf("Mode = %v", k.Mode())
	}
	if k.quantum != 100*time.Microsecond {
		t.Fatalf("quantum = %v", k.quantum)
	}
}

func mustTask(t *testing.T, k *Kernel, name string) *Task {
	t.Helper()
	task, ok := k.Task(name)
	if !ok {
		t.Fatalf("task %s missing", name)
	}
	return task
}
