package ipc

import "testing"

func TestMailboxFaultModes(t *testing.T) {
	var r Registry
	m, err := r.CreateMailbox("box", 4)
	if err != nil {
		t.Fatal(err)
	}
	if m.Fault() != MailboxHealthy {
		t.Fatalf("new mailbox fault = %v, want healthy", m.Fault())
	}

	m.SetFault(MailboxDropAll)
	if err := m.Send([]byte{1}); err != nil {
		t.Fatal(err)
	}
	if m.Len() != 0 {
		t.Errorf("drop-all mailbox holds %d messages, want 0", m.Len())
	}
	_, _, dropped := m.Stats()
	if dropped != 1 {
		t.Errorf("dropped = %d, want 1", dropped)
	}

	m.SetFault(MailboxDuplicate)
	if err := m.Send([]byte{2}); err != nil {
		t.Fatal(err)
	}
	if m.Len() != 2 {
		t.Errorf("duplicate mailbox holds %d messages, want 2", m.Len())
	}
	a, _ := m.Receive()
	b, _ := m.Receive()
	if len(a) != 1 || len(b) != 1 || a[0] != 2 || b[0] != 2 {
		t.Errorf("duplicate copies = %v, %v, want [2], [2]", a, b)
	}

	m.SetFault(MailboxHealthy)
	if err := m.Send([]byte{3}); err != nil {
		t.Fatal(err)
	}
	if m.Len() != 1 {
		t.Errorf("healed mailbox holds %d messages, want 1", m.Len())
	}
}

func TestMailboxDuplicateRespectsCapacity(t *testing.T) {
	var r Registry
	m, err := r.CreateMailbox("box", 1)
	if err != nil {
		t.Fatal(err)
	}
	m.SetFault(MailboxDuplicate)
	if err := m.Send([]byte{1}); err != nil {
		t.Fatal(err)
	}
	// The original fits; the duplicate must not overflow the capacity.
	if m.Len() != 1 {
		t.Errorf("mailbox holds %d messages, want 1 (cap)", m.Len())
	}
}

func TestSHMFreeze(t *testing.T) {
	var r Registry
	s, err := r.CreateSHM("seg", Integer, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Set(0, 7); err != nil {
		t.Fatal(err)
	}
	gen := s.Generation()

	s.SetFrozen(true)
	if !s.Frozen() {
		t.Fatal("Frozen() = false after SetFrozen(true)")
	}
	if err := s.Set(0, 9); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Get(0); v != 7 {
		t.Errorf("frozen segment value = %d, want 7 (write ignored)", v)
	}
	if s.Generation() != gen {
		t.Errorf("frozen segment generation advanced: %d -> %d", gen, s.Generation())
	}

	s.SetFrozen(false)
	if err := s.Set(0, 9); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Get(0); v != 9 {
		t.Errorf("thawed segment value = %d, want 9", v)
	}
	if s.Generation() == gen {
		t.Error("thawed segment generation did not advance")
	}
}
