// Package ipc implements the RTAI-style inter-process communication
// objects DRCom ports map onto: named typed shared-memory segments
// (RTAI.SHM) and bounded asynchronous mailboxes (RTAI.Mailbox).
//
// Names follow the RTAI nam2num convention the paper inherits: one to six
// characters. All objects live in a Registry owned by the simulated
// kernel; operations are non-blocking, matching the paper's requirement
// that real-time code never waits on the management plane.
package ipc

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// MaxNameLen is the RTAI six-character object name limit.
const MaxNameLen = 6

// ElemType is the element type of a typed SHM segment or mailbox slot.
type ElemType int

// Supported element types (the paper's descriptor schema allows Integer
// and Byte).
const (
	Integer ElemType = iota + 1 // 4 bytes
	Byte                        // 1 byte
)

// Size returns the element size in bytes.
func (t ElemType) Size() int {
	switch t {
	case Integer:
		return 4
	case Byte:
		return 1
	default:
		return 0
	}
}

func (t ElemType) String() string {
	switch t {
	case Integer:
		return "Integer"
	case Byte:
		return "Byte"
	default:
		return fmt.Sprintf("ElemType(%d)", int(t))
	}
}

// ParseElemType parses the descriptor spelling of an element type.
func ParseElemType(s string) (ElemType, error) {
	switch s {
	case "Integer", "integer", "INTEGER":
		return Integer, nil
	case "Byte", "byte", "BYTE":
		return Byte, nil
	default:
		return 0, fmt.Errorf("ipc: unknown element type %q", s)
	}
}

// Common errors.
var (
	ErrBadName   = errors.New("ipc: name must be 1..6 characters")
	ErrExists    = errors.New("ipc: object already exists")
	ErrNotFound  = errors.New("ipc: object not found")
	ErrFull      = errors.New("ipc: mailbox full")
	ErrEmpty     = errors.New("ipc: mailbox empty")
	ErrBadBounds = errors.New("ipc: index out of bounds")
)

// ValidName reports whether s is a legal RTAI object name.
func ValidName(s string) bool {
	return len(s) >= 1 && len(s) <= MaxNameLen
}

// SHM is a named, typed shared-memory segment. Reads and writes are
// non-blocking; concurrent access is serialised internally (the simulated
// kernel is single-threaded, but examples may touch segments from test
// goroutines).
type SHM struct {
	name   string
	typ    ElemType
	mu     sync.Mutex
	words  []int64 // one logical cell per element regardless of ElemType
	gen    uint64  // bumped on every write, for freshness checks
	frozen bool    // fault injection: writes silently ignored (see faults.go)
}

// Name returns the segment name.
func (s *SHM) Name() string { return s.name }

// Type returns the element type.
func (s *SHM) Type() ElemType { return s.typ }

// Len returns the number of elements.
func (s *SHM) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.words)
}

// SizeBytes returns the segment size in bytes, ElemType-scaled; this is
// the unit the descriptor "size" attribute uses for compatibility checks.
func (s *SHM) SizeBytes() int {
	return s.Len() * s.typ.Size()
}

// Set writes one element.
func (s *SHM) Set(i int, v int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if i < 0 || i >= len(s.words) {
		return ErrBadBounds
	}
	if s.frozen {
		return nil // staleness fault: the write is silently lost
	}
	s.words[i] = clampElem(s.typ, v)
	s.gen++
	return nil
}

// Get reads one element.
func (s *SHM) Get(i int) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if i < 0 || i >= len(s.words) {
		return 0, ErrBadBounds
	}
	return s.words[i], nil
}

// WriteAll replaces the segment contents; vs longer than the segment is an
// error, shorter writes leave the tail untouched.
func (s *SHM) WriteAll(vs []int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(vs) > len(s.words) {
		return ErrBadBounds
	}
	if s.frozen {
		return nil // staleness fault: the write is silently lost
	}
	for i, v := range vs {
		s.words[i] = clampElem(s.typ, v)
	}
	s.gen++
	return nil
}

// ReadAll returns a copy of the segment contents.
func (s *SHM) ReadAll() []int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]int64, len(s.words))
	copy(out, s.words)
	return out
}

// Generation returns the write counter; consumers can detect fresh data
// without blocking, the way the paper's display task polls the calc
// task's output.
func (s *SHM) Generation() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gen
}

func clampElem(t ElemType, v int64) int64 {
	switch t {
	case Byte:
		return int64(uint8(v))
	case Integer:
		return int64(int32(v))
	default:
		return v
	}
}

// Mailbox is a named bounded FIFO of byte-slice messages with
// non-blocking send and receive, the RTAI mailbox the paper uses for the
// management command channel.
type Mailbox struct {
	name string
	mu   sync.Mutex
	cap  int
	q    [][]byte

	sent     uint64
	received uint64
	dropped  uint64

	fault MailboxFault // fault injection: delivery mode (see faults.go)
}

// Name returns the mailbox name.
func (m *Mailbox) Name() string { return m.name }

// Cap returns the capacity in messages.
func (m *Mailbox) Cap() int { return m.cap }

// Len returns the number of queued messages.
func (m *Mailbox) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.q)
}

// Send enqueues a message without blocking; ErrFull if at capacity. The
// message is copied.
func (m *Mailbox) Send(msg []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.fault == MailboxDropAll {
		m.dropped++
		return nil // silent-loss fault: the sender believes it succeeded
	}
	if len(m.q) >= m.cap {
		m.dropped++
		return ErrFull
	}
	cp := make([]byte, len(msg))
	copy(cp, msg)
	m.q = append(m.q, cp)
	m.sent++
	if m.fault == MailboxDuplicate && len(m.q) < m.cap {
		dup := make([]byte, len(msg))
		copy(dup, msg)
		m.q = append(m.q, dup)
		m.sent++
	}
	return nil
}

// Receive dequeues the oldest message without blocking; ErrEmpty if none.
func (m *Mailbox) Receive() ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.q) == 0 {
		return nil, ErrEmpty
	}
	msg := m.q[0]
	m.q = m.q[1:]
	m.received++
	return msg, nil
}

// Stats reports lifetime counters: messages sent, received and dropped
// (send attempts against a full box).
func (m *Mailbox) Stats() (sent, received, dropped uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sent, m.received, m.dropped
}

// Registry is the kernel's table of named IPC objects. The zero value is
// ready to use.
type Registry struct {
	mu    sync.Mutex
	shms  map[string]*SHM
	boxes map[string]*Mailbox
	sems  map[string]*Semaphore
}

// CreateSHM allocates a named segment of n elements of type t.
func (r *Registry) CreateSHM(name string, t ElemType, n int) (*SHM, error) {
	if !ValidName(name) {
		return nil, fmt.Errorf("%w: %q", ErrBadName, name)
	}
	if t.Size() == 0 {
		return nil, fmt.Errorf("ipc: bad element type %v", t)
	}
	if n <= 0 {
		return nil, fmt.Errorf("ipc: segment size %d must be positive", n)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.shms == nil {
		r.shms = map[string]*SHM{}
	}
	if _, dup := r.shms[name]; dup {
		return nil, fmt.Errorf("%w: shm %q", ErrExists, name)
	}
	s := &SHM{name: name, typ: t, words: make([]int64, n)}
	r.shms[name] = s
	return s, nil
}

// SHM looks up a segment by name.
func (r *Registry) SHM(name string) (*SHM, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.shms[name]
	if !ok {
		return nil, fmt.Errorf("%w: shm %q", ErrNotFound, name)
	}
	return s, nil
}

// DeleteSHM removes a segment.
func (r *Registry) DeleteSHM(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.shms[name]; !ok {
		return fmt.Errorf("%w: shm %q", ErrNotFound, name)
	}
	delete(r.shms, name)
	return nil
}

// CreateMailbox allocates a named mailbox holding up to capacity messages.
func (r *Registry) CreateMailbox(name string, capacity int) (*Mailbox, error) {
	if !ValidName(name) {
		return nil, fmt.Errorf("%w: %q", ErrBadName, name)
	}
	if capacity <= 0 {
		return nil, fmt.Errorf("ipc: mailbox capacity %d must be positive", capacity)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.boxes == nil {
		r.boxes = map[string]*Mailbox{}
	}
	if _, dup := r.boxes[name]; dup {
		return nil, fmt.Errorf("%w: mailbox %q", ErrExists, name)
	}
	m := &Mailbox{name: name, cap: capacity}
	r.boxes[name] = m
	return m, nil
}

// Mailbox looks up a mailbox by name.
func (r *Registry) Mailbox(name string) (*Mailbox, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.boxes[name]
	if !ok {
		return nil, fmt.Errorf("%w: mailbox %q", ErrNotFound, name)
	}
	return m, nil
}

// DeleteMailbox removes a mailbox.
func (r *Registry) DeleteMailbox(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.boxes[name]; !ok {
		return fmt.Errorf("%w: mailbox %q", ErrNotFound, name)
	}
	delete(r.boxes, name)
	return nil
}

// Names lists all object names, SHM first then mailboxes, each sorted.
func (r *Registry) Names() (shms, boxes []string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for n := range r.shms {
		shms = append(shms, n)
	}
	for n := range r.boxes {
		boxes = append(boxes, n)
	}
	sort.Strings(shms)
	sort.Strings(boxes)
	return shms, boxes
}
