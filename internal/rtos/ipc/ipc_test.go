package ipc

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestValidName(t *testing.T) {
	cases := []struct {
		name string
		want bool
	}{
		{"a", true}, {"camera", true}, {"abcdef", true},
		{"", false}, {"toolong", false},
	}
	for _, c := range cases {
		if got := ValidName(c.name); got != c.want {
			t.Errorf("ValidName(%q) = %v", c.name, got)
		}
	}
}

func TestElemType(t *testing.T) {
	if Integer.Size() != 4 || Byte.Size() != 1 {
		t.Fatal("element sizes wrong")
	}
	if Integer.String() != "Integer" || Byte.String() != "Byte" {
		t.Fatal("element strings wrong")
	}
	if ElemType(0).Size() != 0 {
		t.Fatal("invalid type has size")
	}
	for _, s := range []string{"Integer", "integer", "Byte", "BYTE"} {
		if _, err := ParseElemType(s); err != nil {
			t.Errorf("ParseElemType(%q): %v", s, err)
		}
	}
	if _, err := ParseElemType("Float"); err == nil {
		t.Error("ParseElemType(Float) succeeded")
	}
}

func TestSHMCreateLookupDelete(t *testing.T) {
	var r Registry
	s, err := r.CreateSHM("images", Byte, 400)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "images" || s.Type() != Byte || s.Len() != 400 {
		t.Fatalf("segment = %s %v %d", s.Name(), s.Type(), s.Len())
	}
	if s.SizeBytes() != 400 {
		t.Fatalf("SizeBytes = %d", s.SizeBytes())
	}
	got, err := r.SHM("images")
	if err != nil || got != s {
		t.Fatalf("lookup = %v, %v", got, err)
	}
	if _, err := r.CreateSHM("images", Byte, 1); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate create: %v", err)
	}
	if err := r.DeleteSHM("images"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.SHM("images"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("lookup after delete: %v", err)
	}
	if err := r.DeleteSHM("images"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}
}

func TestSHMCreateValidation(t *testing.T) {
	var r Registry
	if _, err := r.CreateSHM("toolong7", Byte, 1); !errors.Is(err, ErrBadName) {
		t.Fatalf("long name: %v", err)
	}
	if _, err := r.CreateSHM("ok", ElemType(99), 1); err == nil {
		t.Fatal("bad type accepted")
	}
	if _, err := r.CreateSHM("ok", Byte, 0); err == nil {
		t.Fatal("zero size accepted")
	}
}

func TestSHMIntegerSizeBytes(t *testing.T) {
	var r Registry
	s, err := r.CreateSHM("xysize", Integer, 100)
	if err != nil {
		t.Fatal(err)
	}
	if s.SizeBytes() != 400 {
		t.Fatalf("SizeBytes = %d, want 400", s.SizeBytes())
	}
}

func TestSHMReadWrite(t *testing.T) {
	var r Registry
	s, _ := r.CreateSHM("data", Integer, 4)
	if err := s.Set(0, 42); err != nil {
		t.Fatal(err)
	}
	if v, err := s.Get(0); err != nil || v != 42 {
		t.Fatalf("Get = %d, %v", v, err)
	}
	if err := s.Set(4, 1); !errors.Is(err, ErrBadBounds) {
		t.Fatalf("oob Set: %v", err)
	}
	if _, err := s.Get(-1); !errors.Is(err, ErrBadBounds) {
		t.Fatalf("oob Get: %v", err)
	}
	if err := s.WriteAll([]int64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	got := s.ReadAll()
	if got[0] != 1 || got[1] != 2 || got[2] != 3 || got[3] != 0 {
		t.Fatalf("ReadAll = %v", got)
	}
	if err := s.WriteAll(make([]int64, 5)); !errors.Is(err, ErrBadBounds) {
		t.Fatalf("oversize WriteAll: %v", err)
	}
	// ReadAll returns a copy.
	got[0] = 99
	if v, _ := s.Get(0); v != 1 {
		t.Fatal("ReadAll aliased storage")
	}
}

func TestSHMGeneration(t *testing.T) {
	var r Registry
	s, _ := r.CreateSHM("g", Byte, 1)
	g0 := s.Generation()
	if err := s.Set(0, 1); err != nil {
		t.Fatal(err)
	}
	if s.Generation() != g0+1 {
		t.Fatal("generation not bumped by Set")
	}
	if err := s.WriteAll([]int64{2}); err != nil {
		t.Fatal(err)
	}
	if s.Generation() != g0+2 {
		t.Fatal("generation not bumped by WriteAll")
	}
}

func TestSHMClamping(t *testing.T) {
	var r Registry
	b, _ := r.CreateSHM("bytes", Byte, 1)
	if err := b.Set(0, 300); err != nil {
		t.Fatal(err)
	}
	if v, _ := b.Get(0); v != 44 { // 300 mod 256
		t.Fatalf("byte clamp = %d, want 44", v)
	}
	i, _ := r.CreateSHM("ints", Integer, 1)
	if err := i.Set(0, int64(1)<<40); err != nil {
		t.Fatal(err)
	}
	if v, _ := i.Get(0); v != 0 {
		t.Fatalf("int32 clamp = %d, want 0", v)
	}
}

func TestMailboxFIFO(t *testing.T) {
	var r Registry
	m, err := r.CreateMailbox("cmds", 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "cmds" || m.Cap() != 2 {
		t.Fatalf("box = %s/%d", m.Name(), m.Cap())
	}
	if err := m.Send([]byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := m.Send([]byte("two")); err != nil {
		t.Fatal(err)
	}
	if err := m.Send([]byte("three")); !errors.Is(err, ErrFull) {
		t.Fatalf("overfull Send: %v", err)
	}
	got, err := m.Receive()
	if err != nil || string(got) != "one" {
		t.Fatalf("Receive = %q, %v", got, err)
	}
	got, _ = m.Receive()
	if string(got) != "two" {
		t.Fatalf("Receive2 = %q", got)
	}
	if _, err := m.Receive(); !errors.Is(err, ErrEmpty) {
		t.Fatalf("empty Receive: %v", err)
	}
	sent, received, dropped := m.Stats()
	if sent != 2 || received != 2 || dropped != 1 {
		t.Fatalf("stats = %d/%d/%d", sent, received, dropped)
	}
}

func TestMailboxMessageCopied(t *testing.T) {
	var r Registry
	m, _ := r.CreateMailbox("c", 1)
	buf := []byte("abc")
	if err := m.Send(buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 'z'
	got, _ := m.Receive()
	if string(got) != "abc" {
		t.Fatalf("message aliased sender buffer: %q", got)
	}
}

func TestMailboxValidation(t *testing.T) {
	var r Registry
	if _, err := r.CreateMailbox("", 1); !errors.Is(err, ErrBadName) {
		t.Fatalf("empty name: %v", err)
	}
	if _, err := r.CreateMailbox("x", 0); err == nil {
		t.Fatal("zero capacity accepted")
	}
	if _, err := r.CreateMailbox("x", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := r.CreateMailbox("x", 1); !errors.Is(err, ErrExists) {
		t.Fatalf("dup: %v", err)
	}
	if err := r.DeleteMailbox("x"); err != nil {
		t.Fatal(err)
	}
	if err := r.DeleteMailbox("x"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}
	if _, err := r.Mailbox("x"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("lookup: %v", err)
	}
}

func TestRegistryNames(t *testing.T) {
	var r Registry
	if _, err := r.CreateSHM("bbb", Byte, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := r.CreateSHM("aaa", Byte, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := r.CreateMailbox("mmm", 1); err != nil {
		t.Fatal(err)
	}
	shms, boxes := r.Names()
	if len(shms) != 2 || shms[0] != "aaa" || shms[1] != "bbb" {
		t.Fatalf("shms = %v", shms)
	}
	if len(boxes) != 1 || boxes[0] != "mmm" {
		t.Fatalf("boxes = %v", boxes)
	}
}

// Property: mailbox never exceeds its capacity and preserves FIFO order.
func TestMailboxProperty(t *testing.T) {
	prop := func(ops []bool) bool {
		var r Registry
		m, err := r.CreateMailbox("p", 4)
		if err != nil {
			return false
		}
		next := byte(0)
		var expect []byte
		for _, isSend := range ops {
			if isSend {
				if err := m.Send([]byte{next}); err == nil {
					expect = append(expect, next)
				} else if len(expect) != 4 {
					return false // ErrFull only at capacity
				}
				next++
			} else {
				got, err := m.Receive()
				if err != nil {
					if len(expect) != 0 {
						return false
					}
					continue
				}
				if len(expect) == 0 || got[0] != expect[0] {
					return false
				}
				expect = expect[1:]
			}
			if m.Len() != len(expect) || m.Len() > 4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
