package ipc

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestSemaphoreLifecycle(t *testing.T) {
	var r Registry
	s, err := r.CreateSemaphore("mutex", 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "mutex" || s.Value() != 1 {
		t.Fatalf("sem = %s/%d", s.Name(), s.Value())
	}
	got, err := r.Semaphore("mutex")
	if err != nil || got != s {
		t.Fatalf("lookup = %v, %v", got, err)
	}
	if _, err := r.CreateSemaphore("mutex", 1); !errors.Is(err, ErrExists) {
		t.Fatalf("dup: %v", err)
	}
	if err := r.DeleteSemaphore("mutex"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Semaphore("mutex"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("after delete: %v", err)
	}
	if err := r.DeleteSemaphore("mutex"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}
}

func TestSemaphoreValidation(t *testing.T) {
	var r Registry
	if _, err := r.CreateSemaphore("toolong7", 1); !errors.Is(err, ErrBadName) {
		t.Fatalf("name: %v", err)
	}
	if _, err := r.CreateSemaphore("s", 0); err == nil {
		t.Fatal("zero count accepted")
	}
}

func TestSemaphoreTryAcquireRelease(t *testing.T) {
	var r Registry
	s, _ := r.CreateSemaphore("pool", 2)
	if !s.TryAcquire() || !s.TryAcquire() {
		t.Fatal("initial acquires failed")
	}
	if s.TryAcquire() {
		t.Fatal("over-acquire succeeded")
	}
	if s.Value() != 0 {
		t.Fatalf("value = %d", s.Value())
	}
	s.Release()
	if !s.TryAcquire() {
		t.Fatal("acquire after release failed")
	}
	acq, cont := s.Stats()
	if acq != 3 || cont != 1 {
		t.Fatalf("stats = %d/%d", acq, cont)
	}
}

func TestSemaphoreReleaseCapped(t *testing.T) {
	var r Registry
	s, _ := r.CreateSemaphore("bin", 1)
	s.Release()
	s.Release() // double release must not mint permits
	if s.Value() != 1 {
		t.Fatalf("value = %d, want capped at 1", s.Value())
	}
}

// Property: the count never leaves [0, max] under any operation sequence.
func TestSemaphoreBoundsProperty(t *testing.T) {
	prop := func(ops []bool, max uint8) bool {
		m := int(max%4) + 1
		var r Registry
		s, err := r.CreateSemaphore("p", m)
		if err != nil {
			return false
		}
		for _, acquire := range ops {
			if acquire {
				s.TryAcquire()
			} else {
				s.Release()
			}
			if v := s.Value(); v < 0 || v > m {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
