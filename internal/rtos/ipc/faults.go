package ipc

// Deterministic IPC fault modes, the hooks the fault injector (package
// fault) flips during a campaign. All objects default to healthy; fault
// state is plain data, so two runs applying the same mode at the same
// virtual instant behave byte-for-byte identically.

// MailboxFault selects a delivery fault on a mailbox.
type MailboxFault int

// Mailbox fault modes.
const (
	// MailboxHealthy delivers normally.
	MailboxHealthy MailboxFault = iota
	// MailboxDropAll makes Send report success while discarding the
	// message — the silent message-loss fault.
	MailboxDropAll
	// MailboxDuplicate enqueues every sent message twice (capacity
	// permitting) — the duplicate-delivery fault.
	MailboxDuplicate
)

func (f MailboxFault) String() string {
	switch f {
	case MailboxHealthy:
		return "healthy"
	case MailboxDropAll:
		return "drop-all"
	case MailboxDuplicate:
		return "duplicate"
	default:
		return "MailboxFault(?)"
	}
}

// SetFault switches the mailbox delivery fault mode.
func (m *Mailbox) SetFault(f MailboxFault) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.fault = f
}

// Fault reports the current delivery fault mode.
func (m *Mailbox) Fault() MailboxFault {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.fault
}

// SetFrozen freezes or thaws the segment. A frozen segment silently
// ignores writes (the generation counter stays put), so consumers keep
// reading stale data — the port-staleness fault a freshness monitor must
// catch.
func (s *SHM) SetFrozen(frozen bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.frozen = frozen
}

// Frozen reports whether the segment currently ignores writes.
func (s *SHM) Frozen() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.frozen
}
