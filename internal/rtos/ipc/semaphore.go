package ipc

import (
	"fmt"
	"sync"
)

// Semaphore is a named counting semaphore with non-blocking operations,
// the RTAI rt_sem analogue. Real-time code must never block on the
// management plane (paper §3.2), so acquisition is try-style: a task
// that fails to acquire skips the guarded work in this job and retries
// next period.
type Semaphore struct {
	name string
	mu   sync.Mutex
	cnt  int
	max  int

	acquired  uint64
	contended uint64
}

// Name returns the semaphore name.
func (s *Semaphore) Name() string { return s.name }

// Value returns the current count.
func (s *Semaphore) Value() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cnt
}

// TryAcquire takes one unit if available, without blocking.
func (s *Semaphore) TryAcquire() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cnt <= 0 {
		s.contended++
		return false
	}
	s.cnt--
	s.acquired++
	return true
}

// Release returns one unit; counts are capped at the initial value so a
// double release cannot mint permits.
func (s *Semaphore) Release() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cnt < s.max {
		s.cnt++
	}
}

// Stats reports successful acquisitions and contended (failed) attempts.
func (s *Semaphore) Stats() (acquired, contended uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.acquired, s.contended
}

// CreateSemaphore allocates a named semaphore with the given initial
// (and maximum) count.
func (r *Registry) CreateSemaphore(name string, count int) (*Semaphore, error) {
	if !ValidName(name) {
		return nil, fmt.Errorf("%w: %q", ErrBadName, name)
	}
	if count <= 0 {
		return nil, fmt.Errorf("ipc: semaphore count %d must be positive", count)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.sems == nil {
		r.sems = map[string]*Semaphore{}
	}
	if _, dup := r.sems[name]; dup {
		return nil, fmt.Errorf("%w: semaphore %q", ErrExists, name)
	}
	s := &Semaphore{name: name, cnt: count, max: count}
	r.sems[name] = s
	return s, nil
}

// Semaphore looks up a semaphore by name.
func (r *Registry) Semaphore(name string) (*Semaphore, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.sems[name]
	if !ok {
		return nil, fmt.Errorf("%w: semaphore %q", ErrNotFound, name)
	}
	return s, nil
}

// DeleteSemaphore removes a semaphore.
func (r *Registry) DeleteSemaphore(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.sems[name]; !ok {
		return fmt.Errorf("%w: semaphore %q", ErrNotFound, name)
	}
	delete(r.sems, name)
	return nil
}
