package rtos

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// TaskType distinguishes periodic from aperiodic (event-triggered) tasks,
// matching the descriptor "type" attribute.
type TaskType int

// Task types.
const (
	Periodic TaskType = iota + 1
	Aperiodic
)

func (t TaskType) String() string {
	switch t {
	case Periodic:
		return "periodic"
	case Aperiodic:
		return "aperiodic"
	default:
		return fmt.Sprintf("TaskType(%d)", int(t))
	}
}

// TaskState is the RT-side task state.
type TaskState int

// Task states.
const (
	TaskCreated TaskState = iota + 1
	TaskActive
	TaskSuspended
	TaskDeleted
)

func (s TaskState) String() string {
	switch s {
	case TaskCreated:
		return "created"
	case TaskActive:
		return "active"
	case TaskSuspended:
		return "suspended"
	case TaskDeleted:
		return "deleted"
	default:
		return fmt.Sprintf("TaskState(%d)", int(s))
	}
}

// Body is a task's functional routine, invoked once per job at first
// dispatch. The simulated execution cost is governed by TaskSpec, not by
// the wall-clock cost of the callback.
type Body func(job *JobContext)

// JobContext is what a task body sees for one job.
type JobContext struct {
	Kernel  *Kernel
	Task    *Task
	Now     sim.Time // dispatch time
	Nominal sim.Time // ideal release time
	Index   uint64   // job sequence number, from 0
}

// TaskSpec describes a real-time task, mirroring the real-time contract
// fields of a DRCom descriptor.
type TaskSpec struct {
	// Name is the RTAI task name, 1..6 characters, unique in the kernel.
	Name string
	// Type selects periodic or aperiodic release.
	Type TaskType
	// CPU pins the task to a processor (the descriptor's runoncup).
	CPU int
	// Priority orders dispatch; lower values are more urgent (RTAI
	// convention). Must be >= 0.
	Priority int
	// Period is the release period for periodic tasks.
	Period time.Duration
	// Phase delays the first release.
	Phase time.Duration
	// Deadline is the relative deadline; 0 means implicit (= Period).
	Deadline time.Duration
	// ExecTime is the mean simulated execution cost per job.
	ExecTime time.Duration
	// ExecJitter is the fractional standard deviation of the execution
	// cost (0.05 = 5%).
	ExecJitter float64
	// Overhead is additional per-job cost charged by wrappers (the HRC
	// management poll); kept separate so ablations can report it.
	Overhead time.Duration
	// Body is the functional routine; may be nil for pure load tasks.
	Body Body
}

func (s TaskSpec) validate(numCPU int) error {
	if len(s.Name) < 1 || len(s.Name) > 6 {
		return fmt.Errorf("rtos: task name %q must be 1..6 characters (RTAI nam2num)", s.Name)
	}
	if s.Type != Periodic && s.Type != Aperiodic {
		return fmt.Errorf("rtos: task %s: bad type %v", s.Name, s.Type)
	}
	if s.CPU < 0 || s.CPU >= numCPU {
		return fmt.Errorf("rtos: task %s: cpu %d out of range [0,%d)", s.Name, s.CPU, numCPU)
	}
	if s.Priority < 0 {
		return fmt.Errorf("rtos: task %s: negative priority %d", s.Name, s.Priority)
	}
	if s.Type == Periodic && s.Period <= 0 {
		return fmt.Errorf("rtos: task %s: periodic task needs positive period", s.Name)
	}
	if s.ExecTime < 0 || s.Overhead < 0 || s.Phase < 0 || s.Deadline < 0 {
		return fmt.Errorf("rtos: task %s: negative durations", s.Name)
	}
	if s.ExecJitter < 0 || s.ExecJitter > 1 {
		return fmt.Errorf("rtos: task %s: exec jitter %v out of [0,1]", s.Name, s.ExecJitter)
	}
	if s.Type == Periodic && s.ExecTime+s.Overhead > s.Period {
		return fmt.Errorf("rtos: task %s: execution %v exceeds period %v",
			s.Name, s.ExecTime+s.Overhead, s.Period)
	}
	return nil
}

// job is one release of a task. Jobs are pooled per shard
// (kshard.allocJob/recycleJob); a finished job's struct is reused by a
// later release on the same shard.
type job struct {
	task         *Task
	nominal      sim.Time
	absDeadline  sim.Time // nominal + relative deadline; Infinity if none
	exec         time.Duration
	remaining    time.Duration
	dispatched   bool
	dispatchTime sim.Time
	seq          uint64 // ready-queue ordering within a priority level
	queued       bool
	heapIdx      int  // position in the ready queue while queued
	nextFree     *job // free-list link while recycled
}

// Task is a created RT task.
type Task struct {
	k     *Kernel
	sh    *kshard    // shard owning the task's CPU
	clk   *sim.Clock // the shard's clock; all task events schedule here
	spec  TaskSpec
	state TaskState

	releases  uint64 // periodic release counter (index of next release)
	nextRelEv *sim.Event
	pending   *job // released but not yet completed job

	// Hot-path material precomputed at creation: the diagnostic labels the
	// dispatcher stamps on events every slice, the release handler closure,
	// and the nominal time of the release it will fire for.
	releaseLabel  string
	completeLabel string
	quantumLabel  string
	releaseFn     sim.Handler
	nextNominal   sim.Time

	rng *sim.Rand

	latency  metrics.Series // first-dispatch latency vs nominal release
	response metrics.Series // completion time vs nominal release
	jobsDone uint64
	misses   uint64       // completions past the deadline
	skips    uint64       // releases dropped because the previous job still ran
	consumed sim.Duration // lifetime execution time charged to this task's jobs

	// Fault-injection hooks (package fault): a runtime multiplier on the
	// sampled execution cost and a wedged-task flag. Both default to the
	// healthy behaviour and never perturb the random streams.
	execScale float64 // 0 or 1 = nominal
	stalled   bool
}

// TaskStats is a snapshot of a task's runtime counters.
type TaskStats struct {
	Name     string
	State    TaskState
	Jobs     uint64
	Misses   uint64
	Skips    uint64
	Latency  metrics.Row
	Response metrics.Row
}

// Name returns the task name.
func (t *Task) Name() string { return t.spec.Name }

// Spec returns the task's specification.
func (t *Task) Spec() TaskSpec { return t.spec }

// State returns the task state.
func (t *Task) State() TaskState { return t.state }

// Utilization returns the task's CPU demand fraction (periodic tasks).
func (t *Task) Utilization() float64 {
	if t.spec.Type != Periodic || t.spec.Period <= 0 {
		return 0
	}
	return float64(t.spec.ExecTime+t.spec.Overhead) / float64(t.spec.Period)
}

// Stats snapshots the task counters and latency statistics.
func (t *Task) Stats() TaskStats {
	return TaskStats{
		Name:     t.spec.Name,
		State:    t.state,
		Jobs:     t.jobsDone,
		Misses:   t.misses,
		Skips:    t.skips,
		Latency:  t.latency.Row(t.spec.Name),
		Response: t.response.Row(t.spec.Name),
	}
}

// Counters returns the raw job counters without computing latency
// statistics; unlike Stats it is O(1) and safe to call once per job.
func (t *Task) Counters() (jobs, misses, skips uint64) {
	return t.jobsDone, t.misses, t.skips
}

// TaskMetrics is the O(1) live accounting snapshot runtime contract
// monitors read every check: job/miss/skip counters plus the execution
// time the kernel has actually charged to the task — the measured side of
// the declared cpuusage budget.
type TaskMetrics struct {
	Jobs     uint64
	Misses   uint64
	Skips    uint64
	Consumed time.Duration // lifetime execution time consumed by this task's jobs
}

// Metrics returns the live counter snapshot without computing latency
// statistics. Unlike the HRC status snapshot (refreshed once per job) it
// is current as of the instant of the call.
func (t *Task) Metrics() TaskMetrics {
	return TaskMetrics{Jobs: t.jobsDone, Misses: t.misses, Skips: t.skips, Consumed: t.consumed}
}

// ConsumedCPU reports the total execution time the kernel has charged to
// this task's jobs, including partial slices of preempted jobs.
func (t *Task) ConsumedCPU() time.Duration { return t.consumed }

// SetExecScale multiplies the sampled execution cost of future jobs by f,
// the fault injector's budget-overrun perturbation. Values <= 0 or 1
// restore the nominal cost. The jitter stream is drawn exactly as in the
// healthy path, so a scaled run stays deterministic for its seed.
func (t *Task) SetExecScale(f float64) {
	if f <= 0 {
		f = 1
	}
	t.execScale = f
}

// ExecScale reports the current execution-cost multiplier (1 = nominal).
func (t *Task) ExecScale() float64 {
	if t.execScale <= 0 {
		return 1
	}
	return t.execScale
}

// SetStalled wedges or heals the task. A stalled task's jobs run for
// twice the task period (periodic) or one millisecond (aperiodic)
// regardless of the declared cost, provoking the deadline-miss storm and
// release skips of a stuck component.
func (t *Task) SetStalled(stalled bool) { t.stalled = stalled }

// Stalled reports whether the task is currently wedged.
func (t *Task) Stalled() bool { return t.stalled }

// LatencySamples returns a copy of the recorded dispatch-latency samples
// in nanoseconds (negative = dispatched before nominal release).
func (t *Task) LatencySamples() []int64 { return t.latency.Samples() }

// ResetStats clears latency/response history and counters, keeping the
// task running; the benchmark harness uses it to discard warm-up samples.
func (t *Task) ResetStats() {
	t.latency.Reset()
	t.response.Reset()
	t.jobsDone, t.misses, t.skips = 0, 0, 0
}

// ReserveStats pre-sizes the latency and response sample buffers for n
// further jobs, so a warmed-up dispatch cycle records its statistics
// without allocating.
func (t *Task) ReserveStats(n int) {
	t.latency.Reserve(n)
	t.response.Reserve(n)
}

// ErrTaskDeleted is returned for operations on a deleted task.
var ErrTaskDeleted = errors.New("rtos: task deleted")

// Start activates the task: periodic tasks begin releasing at their
// phase; aperiodic tasks await Trigger.
func (t *Task) Start() error {
	switch t.state {
	case TaskDeleted:
		return ErrTaskDeleted
	case TaskActive:
		return nil
	}
	t.state = TaskActive
	if t.spec.Type == Periodic {
		return t.scheduleNextRelease()
	}
	return nil
}

// Suspend halts future releases. A queued-but-undispatched job is
// withdrawn; a running job completes (RTAI semantics at the next
// scheduling point).
func (t *Task) Suspend() error {
	switch t.state {
	case TaskDeleted:
		return ErrTaskDeleted
	case TaskSuspended, TaskCreated:
		return nil
	}
	t.state = TaskSuspended
	if t.nextRelEv != nil {
		t.nextRelEv.Cancel()
		t.nextRelEv = nil
	}
	if t.pending != nil && !t.pending.dispatched {
		j := t.pending
		t.k.cpus[t.spec.CPU].ready.remove(j)
		t.pending = nil
		if !j.queued {
			t.sh.recycleJob(j)
		}
	}
	return nil
}

// Resume reactivates a suspended task; periodic releases realign to the
// next period boundary.
func (t *Task) Resume() error {
	switch t.state {
	case TaskDeleted:
		return ErrTaskDeleted
	case TaskActive:
		return nil
	case TaskCreated:
		return t.Start()
	}
	t.state = TaskActive
	if t.spec.Type == Periodic {
		now := t.clk.Now()
		period := sim.Time(t.spec.Period)
		phase := sim.Time(t.spec.Phase)
		if now > phase {
			k := uint64((now-phase)/period) + 1
			if t.releases < k {
				t.releases = k
			}
		}
		return t.scheduleNextRelease()
	}
	return nil
}

// Trigger releases one job of an aperiodic task immediately.
func (t *Task) Trigger() error {
	if t.state == TaskDeleted {
		return ErrTaskDeleted
	}
	if t.spec.Type != Aperiodic {
		return fmt.Errorf("rtos: task %s is periodic; Trigger is for aperiodic tasks", t.spec.Name)
	}
	if t.state != TaskActive {
		return fmt.Errorf("rtos: task %s not active", t.spec.Name)
	}
	now := t.clk.Now()
	t.release(now, now)
	return nil
}

// Delete suspends and removes the task from the kernel.
func (t *Task) Delete() error {
	if t.state == TaskDeleted {
		return ErrTaskDeleted
	}
	if err := t.Suspend(); err != nil && !errors.Is(err, ErrTaskDeleted) {
		return err
	}
	// A still-running job is detached from its task.
	c := t.k.cpus[t.spec.CPU]
	if c.running != nil && c.running.task == t {
		t.pending = nil
	}
	t.state = TaskDeleted
	delete(t.k.tasks, t.spec.Name)
	return nil
}

// scheduleNextRelease queues the release event for index t.releases. The
// handler is the closure bound at creation; only one release event is ever
// outstanding per task, so the nominal time rides on the task itself.
func (t *Task) scheduleNextRelease() error {
	nominal := sim.Time(t.spec.Phase) + sim.Time(t.releases)*sim.Time(t.spec.Period)
	actual := nominal.Add(t.k.timing.SampleOffset(t.rng))
	now := t.clk.Now()
	if actual < now {
		actual = now
	}
	t.nextNominal = nominal
	ev, err := t.clk.Schedule(actual, t.releaseLabel, t.releaseFn)
	if err != nil {
		return err
	}
	t.nextRelEv = ev
	return nil
}

// fireRelease is the body of the task's release event.
func (t *Task) fireRelease(fireAt sim.Time) {
	t.nextRelEv = nil
	if t.state != TaskActive {
		return
	}
	t.release(fireAt, t.nextNominal)
	t.releases++
	if err := t.scheduleNextRelease(); err != nil {
		// Scheduling in virtual time only fails on programmer error;
		// surface it loudly in simulation.
		panic(err)
	}
}

// release creates a job and hands it to the scheduler.
func (t *Task) release(now, nominal sim.Time) {
	if t.pending != nil {
		// A job whose completion event is due exactly now is complete by
		// now: process it first so a busy period that ends precisely at
		// the next release (density exactly 1.0) is not misread as an
		// overrun.
		c := t.k.cpus[t.spec.CPU]
		if c.running == t.pending && c.complEv != nil && c.complEv.Time() == now {
			c.complete(t.k, now)
		}
	}
	if t.pending != nil {
		// Previous job still in flight: the release is skipped, the
		// "task skipping" failure mode the paper warns about.
		t.skips++
		t.k.traceOn(t.sh, now, TraceSkip, t.spec.Name, t.spec.CPU)
		return
	}
	exec := t.sampleExec()
	absDeadline := sim.Infinity
	if d := t.deadline(); d > 0 {
		absDeadline = nominal.Add(d)
	}
	j := t.sh.allocJob()
	*j = job{task: t, nominal: nominal, absDeadline: absDeadline, exec: exec, remaining: exec}
	t.pending = j
	t.k.traceOn(t.sh, now, TraceRelease, t.spec.Name, t.spec.CPU)
	t.k.cpus[t.spec.CPU].enqueue(t.k, j, now)
}

func (t *Task) sampleExec() time.Duration {
	exec := t.spec.ExecTime
	if t.spec.ExecJitter > 0 && exec > 0 {
		f := 1 + t.spec.ExecJitter*t.rng.NormFloat64()
		if f < 0.1 {
			f = 0.1
		}
		exec = time.Duration(float64(exec) * f)
	}
	if t.stalled {
		// Wedged: the job occupies the CPU far past its deadline. The
		// jitter draw above still happened, so healing the task leaves the
		// random stream exactly where a healthy run would have it.
		if t.spec.Type == Periodic {
			return 2 * t.spec.Period
		}
		return time.Millisecond
	}
	if t.execScale > 0 && t.execScale != 1 {
		exec = time.Duration(float64(exec) * t.execScale)
	}
	exec += t.spec.Overhead
	if exec <= 0 {
		exec = time.Nanosecond // a job always occupies the CPU measurably
	}
	return exec
}

func (t *Task) deadline() time.Duration {
	if t.spec.Deadline > 0 {
		return t.spec.Deadline
	}
	if t.spec.Type == Periodic {
		return t.spec.Period
	}
	return 0
}
