// Package rtos is a deterministic discrete-event simulation of the RTAI
// real-time kernel the paper runs on: per-CPU fixed-priority preemptive
// scheduling with a round-robin quantum among equal priorities (the
// paper's test scheduler), periodic and aperiodic tasks, nam2num-style
// six-character task names, SHM and mailbox IPC, and a calibrated
// periodic-timer noise model reproducing the light/stress regimes of the
// paper's Table 1.
//
// The simulation runs in virtual time (package sim); given the same seed
// it is reproducible bit-for-bit.
package rtos

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/rtos/ipc"
	"repro/internal/sim"
)

// SchedPolicy selects the dispatcher's ordering discipline.
type SchedPolicy int

// Scheduling policies.
const (
	// FixedPriority is RTAI's native discipline (with round-robin among
	// equal priorities), the paper's test configuration.
	FixedPriority SchedPolicy = iota
	// EarliestDeadlineFirst dispatches by absolute deadline; an
	// alternative the framework's pluggable design anticipates.
	EarliestDeadlineFirst
)

func (p SchedPolicy) String() string {
	if p == EarliestDeadlineFirst {
		return "edf"
	}
	return "fp"
}

// Config parameterises a kernel.
type Config struct {
	// NumCPUs is the processor count; the paper's testbed is a dual-core
	// T5500. Default 1.
	NumCPUs int
	// Quantum is the round-robin slice for equal-priority tasks. Zero
	// selects the 100µs default; a negative value disables rotation
	// (FIFO within a priority level).
	Quantum time.Duration
	// Seed feeds all pseudo-random streams. Default 1.
	Seed uint64
	// Mode selects the calibrated timing model; default LightLoad.
	Mode LoadMode
	// Timing overrides the mode-derived timing model when non-nil.
	Timing *TimingModel
	// Policy selects the scheduling discipline; default FixedPriority.
	Policy SchedPolicy
	// Shards partitions the simulated CPUs across real OS threads: shard
	// s owns the CPUs with id ≡ s (mod Shards), each with its own event
	// clock, job pool and trace buffer, advancing in conservative
	// lookahead windows bounded by the next control-plane event (see
	// shard.go). 0 or 1 selects the sequential engine; values above
	// NumCPUs are clamped to NumCPUs.
	Shards int
	// Lookahead bounds the width of a sharded execution window, and with
	// it the worst-case latency of cross-shard TriggerAsync delivery.
	// Zero selects 1ms. Ignored by the sequential engine.
	Lookahead time.Duration
}

func (c *Config) applyDefaults() {
	if c.NumCPUs <= 0 {
		c.NumCPUs = 1
	}
	switch {
	case c.Quantum == 0:
		c.Quantum = 100 * time.Microsecond
	case c.Quantum < 0:
		c.Quantum = 0 // FIFO within priority
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Mode != LightLoad && c.Mode != StressLoad {
		c.Mode = LightLoad
	}
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.Shards > c.NumCPUs {
		c.Shards = c.NumCPUs
	}
	if c.Lookahead <= 0 {
		c.Lookahead = time.Millisecond
	}
}

// Kernel is the simulated RTAI instance. Its management surface is not
// safe for concurrent use: the control plane is single-threaded by
// design, like the event loop of the real scheduler. With Config.Shards
// above one, Run internally executes the per-CPU schedules on parallel
// shard clocks between control-plane barriers; the only kernel APIs a
// task body may then touch from its shard are its own task, the IPC
// registry (whose objects are individually locked), and TriggerAsync.
type Kernel struct {
	clock   *sim.Clock // control clock; also shard 0's clock when Shards == 1
	cfg     Config
	mode    LoadMode
	timing  TimingModel
	rng     *sim.Rand
	quantum sim.Duration
	policy  SchedPolicy
	cpus    []*cpu
	tasks   map[string]*Task
	reg     ipc.Registry
	tracer  *Tracer
	sink    TraceSink

	// Per-shard live sinks (see SetShardTraceSinks): shardSinks[i] runs
	// on shard i's goroutine during a window; shardMerge runs at every
	// barrier, after the window joined, on the control goroutine.
	shardSinks []TraceSink
	shardMerge func()

	// Sharded-engine state (see shard.go). With one shard the window
	// loop is bypassed entirely and Run drives k.clock directly.
	shards     []*kshard
	lookahead  sim.Duration
	winRunning bool
	winWG      sync.WaitGroup
	mergeBuf   []TraceEvent

	// xs is the cross-shard trigger exchange: requests queue under mu
	// and are delivered, sorted by task name, at the next barrier.
	xs struct {
		mu        sync.Mutex
		pending   []string
		batch     []string
		sent      uint64
		delivered uint64
		dropped   uint64
	}
}

// NewKernel boots a kernel with the given configuration.
func NewKernel(cfg Config) *Kernel {
	cfg.applyDefaults()
	k := &Kernel{
		clock:   sim.NewClock(),
		cfg:     cfg,
		mode:    cfg.Mode,
		rng:     sim.NewRand(cfg.Seed),
		quantum: cfg.Quantum,
		policy:  cfg.Policy,
		tasks:   map[string]*Task{},
	}
	if cfg.Timing != nil {
		k.timing = *cfg.Timing
	} else {
		k.timing = TimingForMode(cfg.Mode)
	}
	k.lookahead = sim.Duration(cfg.Lookahead)
	k.shards = make([]*kshard, cfg.Shards)
	for s := range k.shards {
		sh := &kshard{id: s}
		if cfg.Shards == 1 {
			// Sequential engine: one clock carries task and control
			// events alike, byte-identical to the pre-sharding kernel.
			sh.clk = k.clock
		} else {
			sh.clk = sim.NewClock()
		}
		sh.runFn = func() {
			sh.runWindow()
			k.winWG.Done()
		}
		k.shards[s] = sh
	}
	k.cpus = make([]*cpu, cfg.NumCPUs)
	for i := range k.cpus {
		c := &cpu{id: i}
		c.ready.edf = cfg.Policy == EarliestDeadlineFirst
		c.sh = k.shards[i%cfg.Shards]
		c.clk = c.sh.clk
		c.sh.cpus = append(c.sh.cpus, c)
		// Bind the slice-event handlers once; the dispatcher re-arms them
		// every slice without allocating fresh closures.
		c.completeFn = func(at sim.Time) {
			c.complEv = nil
			c.complete(k, at)
		}
		c.quantumFn = func(at sim.Time) {
			c.quantEv = nil
			c.rotate(k, at)
		}
		k.cpus[i] = c
	}
	return k
}

// Clock exposes the kernel's virtual clock — the control clock of a
// sharded kernel. Management-plane code (guards, injectors, samplers)
// must schedule here: control events double as the conservative barriers
// shard clocks synchronise on.
func (k *Kernel) Clock() *sim.Clock { return k.clock }

// Now returns the current virtual time of the control clock.
func (k *Kernel) Now() sim.Time { return k.clock.Now() }

// NumCPUs returns the processor count.
func (k *Kernel) NumCPUs() int { return len(k.cpus) }

// Mode returns the current load mode.
func (k *Kernel) Mode() LoadMode { return k.mode }

// Policy returns the scheduling discipline.
func (k *Kernel) Policy() SchedPolicy { return k.policy }

// SetLoadMode switches the load regime (and its calibrated timing model)
// at run time; in the paper this is the difference between an idle
// machine and stress commands saturating the Linux side.
func (k *Kernel) SetLoadMode(m LoadMode) {
	k.mode = m
	k.timing = TimingForMode(m)
}

// SetTimingModel installs an explicit timing model.
func (k *Kernel) SetTimingModel(tm TimingModel) { k.timing = tm }

// IPC returns the kernel's IPC registry (SHM segments and mailboxes).
func (k *Kernel) IPC() *ipc.Registry { return &k.reg }

// CreateTask registers a task; it starts in TaskCreated and does not run
// until Start.
func (k *Kernel) CreateTask(spec TaskSpec) (*Task, error) {
	if err := spec.validate(len(k.cpus)); err != nil {
		return nil, err
	}
	if _, dup := k.tasks[spec.Name]; dup {
		return nil, fmt.Errorf("rtos: task %q already exists", spec.Name)
	}
	t := &Task{
		k:     k,
		sh:    k.cpus[spec.CPU].sh,
		clk:   k.cpus[spec.CPU].clk,
		spec:  spec,
		state: TaskCreated,
		rng:   k.rng.Fork(),

		releaseLabel:  "release:" + spec.Name,
		completeLabel: "complete:" + spec.Name,
		quantumLabel:  "quantum:" + spec.Name,
	}
	t.releaseFn = t.fireRelease
	k.tasks[spec.Name] = t
	return t, nil
}

// Task looks up a live task by name.
func (k *Kernel) Task(name string) (*Task, bool) {
	t, ok := k.tasks[name]
	return t, ok
}

// Tasks returns all live tasks sorted by name.
func (k *Kernel) Tasks() []*Task {
	out := make([]*Task, 0, len(k.tasks))
	for _, t := range k.tasks {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].spec.Name < out[j].spec.Name })
	return out
}

// Utilization reports the summed CPU demand of active periodic tasks on
// the given processor. The sum runs in task-name order: floating-point
// addition is order-sensitive, and map range order would otherwise leak
// nondeterminism into any digest or admission decision fed by it.
func (k *Kernel) Utilization(cpuID int) float64 {
	names := make([]string, 0, len(k.tasks))
	for name, t := range k.tasks {
		if t.spec.CPU == cpuID && t.state == TaskActive {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	var u float64
	for _, name := range names {
		u += k.tasks[name].Utilization()
	}
	return u
}

// BusyTime reports the execution time a CPU has consumed so far.
func (k *Kernel) BusyTime(cpuID int) (time.Duration, error) {
	if cpuID < 0 || cpuID >= len(k.cpus) {
		return 0, fmt.Errorf("rtos: cpu %d out of range", cpuID)
	}
	return k.cpus[cpuID].busy, nil
}

// Run advances virtual time by d, executing all releases, dispatches and
// completions that fall in the window. A sharded kernel runs its shards
// in parallel between control-plane barriers (see shard.go).
func (k *Kernel) Run(d time.Duration) error {
	if len(k.shards) == 1 {
		return k.clock.RunFor(d)
	}
	return k.runWindows(k.clock.Now().Add(d))
}

// RunUntil advances virtual time to the absolute instant at.
func (k *Kernel) RunUntil(at sim.Time) error {
	if len(k.shards) == 1 {
		return k.clock.RunUntil(at)
	}
	return k.runWindows(at)
}
