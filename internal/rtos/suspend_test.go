package rtos

import (
	"fmt"
	"testing"
	"time"
)

// TestSuspendUnderContention withdraws queued jobs from the middle of a
// deep, equal-priority ready queue — the case readyQueue.remove serves
// through the stored heap index. The heap must stay intact: untouched
// tasks keep completing on schedule, suspended tasks stop instantly, and
// resuming realigns them to the next period boundary.
func TestSuspendUnderContention(t *testing.T) {
	// Rotation off: jobs behind the queue head stay undispatched, so
	// Suspend must withdraw them rather than let them finish.
	k := NewKernel(Config{Seed: 3, Quantum: -1})
	const n = 20
	tasks := make([]*Task, n)
	for i := range tasks {
		task, err := k.CreateTask(TaskSpec{
			Name: fmt.Sprintf("w%02d", i), Type: Periodic, Priority: 5,
			Period: 10 * time.Millisecond, ExecTime: 400 * time.Microsecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := task.Start(); err != nil {
			t.Fatal(err)
		}
		tasks[i] = task
	}
	// Advance into the first release burst: one job is running, nineteen
	// more sit in the ready queue at the same priority.
	if err := k.Run(time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// Withdraw every other task from the middle of the queue.
	suspended := map[int]bool{}
	for i := 3; i < n; i += 2 {
		if err := tasks[i].Suspend(); err != nil {
			t.Fatal(err)
		}
		suspended[i] = true
	}
	baseline := make([]uint64, n)
	for i, task := range tasks {
		baseline[i] = task.Stats().Jobs
	}
	// Run through the rest of the hyperperiod plus two more.
	if err := k.Run(29 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	for i, task := range tasks {
		st := task.Stats()
		got := st.Jobs - baseline[i]
		if suspended[i] {
			if got != 0 {
				t.Errorf("%s: %d jobs completed while suspended, want 0", st.Name, got)
			}
			continue
		}
		// At least the 10 ms and 20 ms releases must have completed for
		// every live task (the 30 ms release may still be in flight at
		// the window edge) — a corrupted ready queue would starve some.
		if got < 2 {
			t.Errorf("%s: only %d jobs completed after suspensions, want >= 2", st.Name, got)
		}
	}
	// Resume everyone; the next boundary is 40 ms and all must run again.
	for i := range suspended {
		if err := tasks[i].Resume(); err != nil {
			t.Fatal(err)
		}
	}
	resumeBase := make([]uint64, n)
	for i, task := range tasks {
		resumeBase[i] = task.Stats().Jobs
	}
	// The realigned release lands at 40 ms; all 20 jobs of that burst
	// (8 ms of demand) complete by ~48 ms, before the 50 ms releases can
	// finish, so each resumed task counts exactly one completion.
	if err := k.Run(20 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	for i, task := range tasks {
		st := task.Stats()
		got := st.Jobs - resumeBase[i]
		if suspended[i] {
			if got != 1 {
				t.Errorf("%s: %d jobs after resume, want exactly 1", st.Name, got)
			}
		} else if got < 1 {
			t.Errorf("%s: no jobs while resumed peers ran", st.Name)
		}
	}
}

// TestSuspendRunningJobCompletes pins the other half of the RTAI
// semantics: suspending the task whose job is currently executing lets
// that job finish at the next scheduling point instead of withdrawing it.
func TestSuspendRunningJobCompletes(t *testing.T) {
	k := NewKernel(Config{Seed: 1})
	task, err := k.CreateTask(TaskSpec{
		Name: "runner", Type: Periodic, Priority: 1,
		Period: 10 * time.Millisecond, ExecTime: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := task.Start(); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(time.Millisecond); err != nil { // job is mid-execution
		t.Fatal(err)
	}
	if err := task.Suspend(); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(19 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if got := task.Stats().Jobs; got != 1 {
		t.Errorf("running job: %d completions after suspend, want exactly 1", got)
	}
}
