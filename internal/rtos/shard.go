package rtos

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Sharded execution: the simulated CPUs are partitioned across shards,
// each with its own event clock, timer queue, job pool and trace buffer,
// so independent per-CPU schedules advance on real OS threads in
// parallel. Correctness rests on two properties of the kernel design:
//
//   - Per-CPU schedules are independent. Every release, quantum and
//     completion event of a task is keyed to its pinned CPU, each task
//     draws timing noise from its own RNG forked at creation, and ready
//     queues are per-CPU — so the event subsequence of one CPU never
//     depends on when another CPU's events fire.
//
//   - All coupling goes through the control plane. Management code
//     (guards, fault injectors, supervisors, samplers, the DRCR) always
//     schedules on Kernel.Clock() — the control clock — and cross-shard
//     releases go through TriggerAsync. Both are realised as
//     conservative barriers: a shard may only advance past a control
//     instant after its events fired, and control events only fire once
//     every shard has caught up to strictly before them.
//
// Together these make the sharded schedule equal, CPU by CPU, to the
// sequential one: merging the per-shard trace buffers in canonical
// (At, CPU) order reproduces the sequential trace byte for byte (after
// the same canonicalisation), at every shard count.
//
// Ties between a shard event and a control event due at the same instant
// resolve control-first: the control event was necessarily scheduled no
// later (management code runs only at barriers), so in a sequential run
// its queue sequence number is almost always lower too. The seeded
// differential campaigns pin this equivalence.

// kshard is one execution shard: a subset of the simulated CPUs plus the
// isolated mutable state their event processing touches.
type kshard struct {
	id   int
	clk  *sim.Clock
	cpus []*cpu

	// freeJobs is the shard-local job pool; steady-state release →
	// dispatch → complete cycles allocate nothing and never contend.
	freeJobs *job

	// buf collects the window's scheduler trace events (sharded mode
	// only); the barrier merges all shard buffers in canonical order.
	buf []TraceEvent

	// Window plumbing: runFn is bound once at kernel construction so a
	// window launch spawns no closures; winB/winIncl are its inputs and
	// winErr its result, all owned by the coordinator between windows.
	runFn   func()
	winB    sim.Time
	winIncl bool
	winErr  error
}

// allocJob takes a job from the shard's free list.
func (sh *kshard) allocJob() *job {
	if j := sh.freeJobs; j != nil {
		sh.freeJobs = j.nextFree
		j.nextFree = nil
		return j
	}
	return &job{}
}

// recycleJob returns a finished (or withdrawn) job to the shard's free
// list. The caller must guarantee no live reference remains: not
// running, not in a ready queue, and not a task's pending job.
func (sh *kshard) recycleJob(j *job) {
	*j = job{nextFree: sh.freeJobs}
	sh.freeJobs = j
}

// runWindow advances the shard clock to the window horizon winB —
// inclusively when the horizon is the run deadline itself, otherwise
// firing only events strictly before it.
func (sh *kshard) runWindow() {
	if sh.winIncl {
		sh.winErr = sh.clk.RunUntil(sh.winB)
	} else {
		sh.winErr = sh.clk.RunBefore(sh.winB)
	}
}

// runWindows drives the sharded engine to the deadline in conservative
// lookahead windows. Each iteration either fires the next control
// event(s) — with every shard first brought up to that instant — or runs
// all shards in parallel up to the horizon
//
//	B = min(earliest shard event + lookahead, next control event, deadline),
//
// then merges trace buffers and delivers cross-shard triggers at the
// barrier.
func (k *Kernel) runWindows(deadline sim.Time) error {
	if k.winRunning {
		return sim.ErrReentrantRun
	}
	if deadline < k.clock.Now() {
		return fmt.Errorf("rtos: deadline %v before now %v", deadline, k.clock.Now())
	}
	k.winRunning = true
	defer func() { k.winRunning = false }()
	for {
		tc := k.clock.NextEventTime()
		ts := sim.Infinity
		for _, sh := range k.shards {
			if t := sh.clk.NextEventTime(); t < ts {
				ts = t
			}
		}
		if tc > deadline && ts > deadline {
			// Nothing left inside the run: bring every clock to the
			// deadline (fires nothing) and stop.
			for _, sh := range k.shards {
				if err := sh.clk.RunUntil(deadline); err != nil {
					return err
				}
			}
			return k.clock.RunUntil(deadline)
		}
		if tc <= ts {
			// A control event is next; ties resolve control-first. Shards
			// advance to the instant without firing anything due exactly
			// there, then the control clock drains everything at tc.
			for _, sh := range k.shards {
				if err := sh.clk.RunBefore(tc); err != nil {
					return err
				}
			}
			if err := k.clock.RunUntil(tc); err != nil {
				return err
			}
			k.deliverTriggers()
			continue
		}
		b := ts.Add(k.lookahead)
		if tc < b {
			b = tc
		}
		inclusive := false
		if b >= deadline {
			b = deadline
			// Events due exactly at the deadline fire (sequential
			// RunUntil semantics) — unless a control event is also due
			// there, which the next iteration serves first.
			inclusive = tc > deadline
		}
		if err := k.launchWindow(b, inclusive); err != nil {
			return err
		}
		k.mergeWindow()
		if err := k.clock.RunUntil(b); err != nil {
			return err
		}
		k.deliverTriggers()
	}
}

// launchWindow runs every shard up to horizon b. Windows where at most
// one shard has due work execute inline; otherwise one goroutine per
// shard runs the window in parallel.
func (k *Kernel) launchWindow(b sim.Time, inclusive bool) error {
	busy := 0
	for _, sh := range k.shards {
		sh.winB, sh.winIncl, sh.winErr = b, inclusive, nil
		if t := sh.clk.NextEventTime(); t < b || (inclusive && t == b) {
			busy++
		}
	}
	if busy <= 1 {
		for _, sh := range k.shards {
			sh.runWindow()
		}
	} else {
		k.winWG.Add(len(k.shards))
		for _, sh := range k.shards {
			go sh.runFn()
		}
		k.winWG.Wait()
	}
	for _, sh := range k.shards {
		if sh.winErr != nil {
			return sh.winErr
		}
	}
	return nil
}

// mergeWindow folds the shards' window trace buffers into the live sink
// and tracer in canonical (At, CPU) order. Each CPU's events arrive
// chronologically ordered within its shard's buffer and a CPU lives on
// exactly one shard, so a stable sort yields the engine-independent
// canonical order (see CanonicalizeTrace).
func (k *Kernel) mergeWindow() {
	if k.shardMerge != nil {
		k.shardMerge()
	}
	if k.sink == nil && k.tracer == nil {
		return // shards recorded nothing
	}
	buf := k.mergeBuf[:0]
	for _, sh := range k.shards {
		buf = append(buf, sh.buf...)
		sh.buf = sh.buf[:0]
	}
	CanonicalizeTrace(buf)
	for i := range buf {
		k.trace(buf[i].At, buf[i].Kind, buf[i].Task, buf[i].CPU)
	}
	k.mergeBuf = buf
}

// TriggerAsync requests one job release of an aperiodic task by name.
// Unlike Task.Trigger it may be called from any goroutine — including a
// task body executing on another shard — making it the cross-shard event
// channel: the release is delivered at the next conservative barrier. A
// sequential kernel delivers immediately (it is single-threaded by
// contract). Deliveries within one barrier are applied in task-name
// order, so the resulting schedule is deterministic regardless of how
// the physical sends interleaved. Requests whose target is missing,
// periodic, or not active are counted as dropped; TriggerStats exposes
// the conservation ledger.
func (k *Kernel) TriggerAsync(name string) {
	if len(k.shards) == 1 {
		k.xs.sent++
		if t, ok := k.tasks[name]; ok && t.Trigger() == nil {
			k.xs.delivered++
		} else {
			k.xs.dropped++
		}
		return
	}
	k.xs.mu.Lock()
	k.xs.sent++
	k.xs.pending = append(k.xs.pending, name)
	k.xs.mu.Unlock()
}

// deliverTriggers applies all queued cross-shard trigger requests at a
// barrier. Delivery happens outside the queue lock: releasing a job
// dispatches it, and the task body may itself call TriggerAsync.
func (k *Kernel) deliverTriggers() {
	if len(k.shards) == 1 {
		return
	}
	k.xs.mu.Lock()
	batch := append(k.xs.batch[:0], k.xs.pending...)
	k.xs.pending = k.xs.pending[:0]
	k.xs.mu.Unlock()
	if len(batch) == 0 {
		k.xs.batch = batch
		return
	}
	sort.Strings(batch)
	var delivered, dropped uint64
	for _, name := range batch {
		if t, ok := k.tasks[name]; ok && t.Trigger() == nil {
			delivered++
		} else {
			dropped++
		}
	}
	k.xs.mu.Lock()
	k.xs.delivered += delivered
	k.xs.dropped += dropped
	k.xs.mu.Unlock()
	k.xs.batch = batch[:0]
}

// NoteDroppedTrigger records a trigger request that was lost before
// reaching the kernel — a release intent dropped by an external delivery
// fabric (a partitioned or lossy simulated network link) rather than by
// shard backpressure or a missing target. It counts as sent and dropped,
// so the conservation ledger still balances over the sender's intents:
// sent == delivered + dropped + queued regardless of where the loss
// happened. Safe from any goroutine, like TriggerAsync.
func (k *Kernel) NoteDroppedTrigger() {
	k.xs.mu.Lock()
	k.xs.sent++
	k.xs.dropped++
	k.xs.mu.Unlock()
}

// TriggerStats reports the cross-shard trigger conservation ledger:
// every request is eventually delivered, dropped, or still queued for
// the next barrier — sent == delivered + dropped + queued always holds
// at a barrier.
func (k *Kernel) TriggerStats() (sent, delivered, dropped, queued uint64) {
	k.xs.mu.Lock()
	defer k.xs.mu.Unlock()
	return k.xs.sent, k.xs.delivered, k.xs.dropped, uint64(len(k.xs.pending))
}

// Shards reports the configured shard count (1 = sequential engine).
func (k *Kernel) Shards() int { return len(k.shards) }

// ShardOf reports which shard owns a simulated CPU.
func (k *Kernel) ShardOf(cpuID int) int { return cpuID % len(k.shards) }

// EventsFired is the total number of simulation events executed across
// the control clock and every shard clock. For a sequential kernel it
// equals Clock().Fired().
func (k *Kernel) EventsFired() uint64 {
	n := k.clock.Fired()
	if len(k.shards) > 1 {
		for _, sh := range k.shards {
			n += sh.clk.Fired()
		}
	}
	return n
}
