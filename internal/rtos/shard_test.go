package rtos

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"
	"time"

	"repro/internal/sim"
)

// buildShardWorkload populates a kernel with a deliberately tangled
// multi-CPU schedule: per CPU two equal-priority tasks (exercising
// quantum rotation), a higher-priority preemptor, and an aperiodic task
// the control plane triggers on a period that beats against the task
// periods. Execution jitter keeps release instants irregular.
func buildShardWorkload(t testing.TB, k *Kernel) {
	t.Helper()
	mk := func(spec TaskSpec) *Task {
		task, err := k.CreateTask(spec)
		if err != nil {
			t.Fatal(err)
		}
		if err := task.Start(); err != nil {
			t.Fatal(err)
		}
		return task
	}
	for c := 0; c < k.NumCPUs(); c++ {
		mk(TaskSpec{Name: fmt.Sprintf("pa%d", c), Type: Periodic, CPU: c, Priority: 5,
			Period: time.Millisecond, ExecTime: 220 * time.Microsecond, ExecJitter: 0.05})
		mk(TaskSpec{Name: fmt.Sprintf("pb%d", c), Type: Periodic, CPU: c, Priority: 5,
			Period: 1300 * time.Microsecond, Phase: 150 * time.Microsecond,
			ExecTime: 340 * time.Microsecond, ExecJitter: 0.08})
		mk(TaskSpec{Name: fmt.Sprintf("hi%d", c), Type: Periodic, CPU: c, Priority: 1,
			Period: 700 * time.Microsecond, ExecTime: 60 * time.Microsecond, ExecJitter: 0.03})
		mk(TaskSpec{Name: fmt.Sprintf("ap%d", c), Type: Aperiodic, CPU: c, Priority: 3,
			ExecTime: 90 * time.Microsecond, ExecJitter: 0.04})
	}
	// Control-plane metronome: every 811µs trigger the next aperiodic
	// task round-robin. Runs on the control clock in both engines.
	i := 0
	var fire sim.Handler
	fire = func(now sim.Time) {
		name := fmt.Sprintf("ap%d", i%k.NumCPUs())
		i++
		if task, ok := k.Task(name); ok {
			_ = task.Trigger()
		}
		if _, err := k.Clock().After(811*time.Microsecond, "test:metronome", fire); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := k.Clock().After(811*time.Microsecond, "test:metronome", fire); err != nil {
		t.Fatal(err)
	}
}

// runShardWorkload executes the reference workload at the given shard
// count and digests the canonical scheduler trace and per-task stats.
func runShardWorkload(t testing.TB, shards int) (traceDigest, statsDigest string, fired uint64) {
	t.Helper()
	k := NewKernel(Config{NumCPUs: 8, Shards: shards, Seed: 42})
	var evs []TraceEvent
	k.SetTraceSink(func(at sim.Time, kind TraceEventKind, task string, cpu int) {
		evs = append(evs, TraceEvent{At: at, Kind: kind, Task: task, CPU: cpu})
	})
	buildShardWorkload(t, k)
	if err := k.Run(200 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	CanonicalizeTrace(evs)
	th := sha256.New()
	for _, ev := range evs {
		fmt.Fprintf(th, "%d|%d|%s|%d\n", int64(ev.At), ev.Kind, ev.Task, ev.CPU)
	}
	sh := sha256.New()
	for _, task := range k.Tasks() {
		jobs, misses, skips := task.Counters()
		fmt.Fprintf(sh, "%s|%d|%d|%d|%d\n", task.Name(), jobs, misses, skips, task.ConsumedCPU())
		for _, s := range task.LatencySamples() {
			fmt.Fprintf(sh, "%d,", s)
		}
		sh.Write([]byte("\n"))
	}
	return hex.EncodeToString(th.Sum(nil)), hex.EncodeToString(sh.Sum(nil)), k.EventsFired()
}

// TestShardedDifferential pins the tentpole equivalence: the canonical
// scheduler trace, every task's counters and latency samples, and the
// total event count are byte-identical between the sequential engine and
// the sharded engine at 2, 4 and 8 shards.
func TestShardedDifferential(t *testing.T) {
	refTrace, refStats, refFired := runShardWorkload(t, 1)
	for _, shards := range []int{2, 4, 8} {
		traceD, statsD, fired := runShardWorkload(t, shards)
		if traceD != refTrace {
			t.Errorf("shards=%d: canonical trace digest %s != sequential %s", shards, traceD, refTrace)
		}
		if statsD != refStats {
			t.Errorf("shards=%d: task stats digest %s != sequential %s", shards, statsD, refStats)
		}
		if fired != refFired {
			t.Errorf("shards=%d: fired %d events, sequential fired %d", shards, fired, refFired)
		}
	}
}

// TestShardConfig pins shard-count clamping and the CPU→shard map.
func TestShardConfig(t *testing.T) {
	k := NewKernel(Config{NumCPUs: 4, Shards: 16})
	if got := k.Shards(); got != 4 {
		t.Fatalf("Shards() = %d, want clamp to NumCPUs 4", got)
	}
	for c := 0; c < 4; c++ {
		if got := k.ShardOf(c); got != c%4 {
			t.Fatalf("ShardOf(%d) = %d, want %d", c, got, c%4)
		}
	}
	if k := NewKernel(Config{NumCPUs: 4}); k.Shards() != 1 {
		t.Fatalf("default Shards = %d, want 1", k.Shards())
	}
}

// TestTriggerAsyncConservation exercises the cross-shard trigger
// exchange from task bodies running concurrently on 4 shards and checks
// the conservation ledger: every request is delivered, dropped, or still
// queued — none are lost or duplicated.
func TestTriggerAsyncConservation(t *testing.T) {
	k := NewKernel(Config{NumCPUs: 4, Shards: 4, Seed: 7})
	var started []*Task
	for c := 0; c < 4; c++ {
		ap, err := k.CreateTask(TaskSpec{Name: fmt.Sprintf("ap%d", c), Type: Aperiodic, CPU: c,
			Priority: 3, ExecTime: 50 * time.Microsecond})
		if err != nil {
			t.Fatal(err)
		}
		started = append(started, ap)
		cpu := c
		n := 0
		ping, err := k.CreateTask(TaskSpec{Name: fmt.Sprintf("pg%d", c), Type: Periodic, CPU: c,
			Priority: 5, Period: time.Millisecond, ExecTime: 100 * time.Microsecond, ExecJitter: 0.05,
			Body: func(j *JobContext) {
				// Fan a release to the next shard's aperiodic task, plus a
				// deliberate miss every fourth job.
				j.Kernel.TriggerAsync(fmt.Sprintf("ap%d", (cpu+1)%4))
				if n%4 == 0 {
					j.Kernel.TriggerAsync("nosuch")
				}
				n++
			}})
		if err != nil {
			t.Fatal(err)
		}
		started = append(started, ping)
	}
	for _, task := range started {
		if err := task.Start(); err != nil {
			t.Fatal(err)
		}
	}
	if err := k.Run(500 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	sent, delivered, dropped, queued := k.TriggerStats()
	if sent != delivered+dropped+queued {
		t.Fatalf("conservation violated: sent %d != delivered %d + dropped %d + queued %d",
			sent, delivered, dropped, queued)
	}
	if queued != 0 {
		t.Errorf("queued = %d after run completed, want 0", queued)
	}
	if delivered == 0 || dropped == 0 {
		t.Errorf("want both deliveries and drops, got delivered=%d dropped=%d", delivered, dropped)
	}
	for c := 0; c < 4; c++ {
		task, _ := k.Task(fmt.Sprintf("ap%d", c))
		if jobs, _, _ := task.Counters(); jobs == 0 {
			t.Errorf("ap%d never ran despite cross-shard triggers", c)
		}
	}
}

// TestShardedDispatchAllocFree guards the per-shard hot path: once pools
// are warm, the windowed parallel engine stays within the 0.001
// allocations-per-event budget (goroutine recycling and the window
// machinery included).
func TestShardedDispatchAllocFree(t *testing.T) {
	k := NewKernel(Config{NumCPUs: 4, Shards: 2, Seed: 1})
	for c := 0; c < 4; c++ {
		task, err := k.CreateTask(TaskSpec{Name: fmt.Sprintf("tk%d", c), Type: Periodic, CPU: c,
			Priority: 5, Period: time.Millisecond, ExecTime: 200 * time.Microsecond, ExecJitter: 0.05})
		if err != nil {
			t.Fatal(err)
		}
		if err := task.Start(); err != nil {
			t.Fatal(err)
		}
		task.ReserveStats(300000)
	}
	if err := k.Run(time.Second); err != nil { // warm pools
		t.Fatal(err)
	}
	before := k.EventsFired()
	const runs, window = 200, 10 * time.Millisecond
	allocs := testing.AllocsPerRun(runs, func() {
		if err := k.Run(window); err != nil {
			t.Fatal(err)
		}
	})
	events := float64(k.EventsFired()-before) / float64(runs+1)
	if events == 0 {
		t.Fatal("no events fired during measurement")
	}
	if perEvent := allocs / events; perEvent > 0.001 {
		t.Fatalf("sharded hot path: %.4f allocs/event (%.1f allocs per %v window, %.0f events), want <= 0.001",
			perEvent, allocs, window, events)
	}
}
