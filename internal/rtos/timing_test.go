package rtos

import (
	"math"
	"testing"
	"time"

	"repro/internal/sim"
)

func TestLoadModeString(t *testing.T) {
	if LightLoad.String() != "light" || StressLoad.String() != "stress" {
		t.Fatal("mode strings")
	}
	if LoadMode(0).String() != "unknown" {
		t.Fatal("unknown mode string")
	}
}

func TestTimingForMode(t *testing.T) {
	if TimingForMode(LightLoad) != LightTiming() {
		t.Fatal("light model mismatch")
	}
	if TimingForMode(StressLoad) != StressTiming() {
		t.Fatal("stress model mismatch")
	}
	// Anything else defaults to light.
	if TimingForMode(LoadMode(9)) != LightTiming() {
		t.Fatal("default model mismatch")
	}
}

// TestTimingModelMoments verifies the calibrated models statistically
// against the Table 1 regimes they were fitted to.
func TestTimingModelMoments(t *testing.T) {
	const n = 200000
	sample := func(tm TimingModel) (mean, avedev float64, minV, maxV time.Duration) {
		r := sim.NewRand(123)
		var sum float64
		vals := make([]time.Duration, n)
		for i := 0; i < n; i++ {
			v := tm.SampleOffset(r)
			vals[i] = v
			sum += float64(v)
		}
		mean = sum / n
		for i, v := range vals {
			avedev += math.Abs(float64(v) - mean)
			if i == 0 || v < minV {
				minV = v
			}
			if i == 0 || v > maxV {
				maxV = v
			}
		}
		avedev /= n
		return mean, avedev, minV, maxV
	}

	lm, ld, lmin, lmax := sample(LightTiming())
	if lm < -2500 || lm > 1500 {
		t.Errorf("light mean = %v ns", lm)
	}
	if ld < 2000 || ld > 5500 {
		t.Errorf("light avedev = %v ns", ld)
	}
	// Paper light min/max reach ≈ ±25µs; excursions must produce tails
	// beyond 3σ of the base Gaussian.
	if lmin > -12000*time.Nanosecond || lmax < 12000*time.Nanosecond {
		t.Errorf("light tails too tight: %v / %v", lmin, lmax)
	}

	sm, sd, _, smax := sample(StressTiming())
	if sm > -19000 || sm < -23500 {
		t.Errorf("stress mean = %v ns", sm)
	}
	if sd > 1200 {
		t.Errorf("stress avedev = %v ns", sd)
	}
	if smax > 0 {
		t.Errorf("stress max = %v, should remain negative", smax)
	}
	// Regime relation: stress spread is much tighter than light.
	if ld < 3*sd {
		t.Errorf("light/stress spread ratio too small: %v vs %v", ld, sd)
	}
}

func TestZeroTimingModelIsExact(t *testing.T) {
	var tm TimingModel
	r := sim.NewRand(1)
	for i := 0; i < 100; i++ {
		if got := tm.SampleOffset(r); got != 0 {
			t.Fatalf("zero model sampled %v", got)
		}
	}
}

func TestAperiodicLatencyImmediate(t *testing.T) {
	k := NewKernel(Config{Timing: &TimingModel{}, Seed: 2})
	task, err := k.CreateTask(TaskSpec{Name: "ap", Type: Aperiodic, Priority: 0, ExecTime: 5 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := task.Start(); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := task.Trigger(); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(time.Millisecond); err != nil {
		t.Fatal(err)
	}
	st := task.Stats()
	if st.Jobs != 1 || st.Latency.Max != 0 {
		t.Fatalf("aperiodic stats = %+v", st)
	}
}

func TestDeleteWhileJobRunning(t *testing.T) {
	k := NewKernel(Config{Timing: &TimingModel{}, Seed: 2})
	task, err := k.CreateTask(TaskSpec{
		Name: "dw", Type: Periodic, Period: time.Millisecond,
		ExecTime: 500 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := task.Start(); err != nil {
		t.Fatal(err)
	}
	// Stop mid-job: at 200µs the first job is running.
	if err := k.Run(200 * time.Microsecond); err != nil {
		t.Fatal(err)
	}
	if err := task.Delete(); err != nil {
		t.Fatal(err)
	}
	// The rest of the simulation must not crash or revive the task.
	if err := k.Run(10 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if task.Stats().Jobs != 0 {
		t.Fatalf("deleted task completed %d jobs", task.Stats().Jobs)
	}
}

func TestQuantumDoesNotRotateAcrossPriorities(t *testing.T) {
	k := NewKernel(Config{Timing: &TimingModel{}, Quantum: 50 * time.Microsecond, Seed: 2})
	hi, _ := k.CreateTask(TaskSpec{Name: "hi", Type: Periodic, Period: 10 * time.Millisecond, Priority: 1, ExecTime: 300 * time.Microsecond})
	lo, _ := k.CreateTask(TaskSpec{Name: "lo", Type: Periodic, Period: 10 * time.Millisecond, Priority: 2, ExecTime: 300 * time.Microsecond})
	if err := hi.Start(); err != nil {
		t.Fatal(err)
	}
	if err := lo.Start(); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(5 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// lo must wait for hi's complete job despite the quantum.
	if got := lo.Stats().Latency.Max; got != int64(300*time.Microsecond) {
		t.Fatalf("lo latency = %d, want full 300µs (no cross-priority rotation)", got)
	}
}

func TestRunUntilAbsolute(t *testing.T) {
	k := NewKernel(Config{Timing: &TimingModel{}, Seed: 2})
	task, _ := k.CreateTask(TaskSpec{Name: "x", Type: Periodic, Period: time.Millisecond, ExecTime: time.Microsecond})
	if err := task.Start(); err != nil {
		t.Fatal(err)
	}
	if err := k.RunUntil(sim.Time(3500 * time.Microsecond)); err != nil {
		t.Fatal(err)
	}
	if k.Now() != sim.Time(3500*time.Microsecond) {
		t.Fatalf("Now = %v", k.Now())
	}
	if got := task.Stats().Jobs; got != 4 { // 0,1,2,3 ms
		t.Fatalf("jobs = %d", got)
	}
}

func TestTaskTypeAndStateStrings(t *testing.T) {
	if Periodic.String() != "periodic" || Aperiodic.String() != "aperiodic" {
		t.Fatal("task type strings")
	}
	if TaskCreated.String() != "created" || TaskDeleted.String() != "deleted" {
		t.Fatal("task state strings")
	}
	if TaskType(9).String() == "" || TaskState(9).String() == "" {
		t.Fatal("unknown strings empty")
	}
}

func TestUtilizationAccessors(t *testing.T) {
	k := NewKernel(Config{Timing: &TimingModel{}, Seed: 2})
	task, _ := k.CreateTask(TaskSpec{
		Name: "u", Type: Periodic, Period: 10 * time.Millisecond,
		ExecTime: time.Millisecond, Overhead: time.Millisecond,
	})
	if got := task.Utilization(); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("utilization = %v (exec+overhead over period)", got)
	}
	ap, _ := k.CreateTask(TaskSpec{Name: "ap", Type: Aperiodic, ExecTime: time.Millisecond})
	if ap.Utilization() != 0 {
		t.Fatal("aperiodic utilization not 0")
	}
	if err := task.Start(); err != nil {
		t.Fatal(err)
	}
	if got := k.Utilization(0); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("kernel utilization = %v", got)
	}
}
