package rtos

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/sim"
)

// TraceEventKind enumerates scheduler trace events.
type TraceEventKind int

// Trace event kinds.
const (
	TraceRelease TraceEventKind = iota + 1
	TraceDispatch
	TracePreempt
	TraceRotate
	TraceComplete
	TraceSkip
)

// traceEventNames is the static name table; String is called on the
// dispatch hot path when a trace sink is attached, so it must not
// allocate for any defined kind.
var traceEventNames = [...]string{
	TraceRelease:  "release",
	TraceDispatch: "dispatch",
	TracePreempt:  "preempt",
	TraceRotate:   "rotate",
	TraceComplete: "complete",
	TraceSkip:     "skip",
}

func (k TraceEventKind) String() string {
	if k > 0 && int(k) < len(traceEventNames) {
		return traceEventNames[k]
	}
	return "TraceEventKind(" + strconv.Itoa(int(k)) + ")"
}

// TraceEvent is one scheduler occurrence.
type TraceEvent struct {
	At   sim.Time
	Kind TraceEventKind
	Task string
	CPU  int
}

// Tracer records scheduler events while attached to a kernel. Use it to
// inspect or visualise what the dispatcher did — the RTAI /proc trace
// analogue.
type Tracer struct {
	events []TraceEvent
	limit  int
}

// StartTrace attaches a tracer recording at most limit events (0 means
// 100000). Only one tracer can be attached; starting a new one replaces
// the old.
func (k *Kernel) StartTrace(limit int) *Tracer {
	if limit <= 0 {
		limit = 100000
	}
	tr := &Tracer{limit: limit}
	k.tracer = tr
	return tr
}

// StopTrace detaches the tracer.
func (k *Kernel) StopTrace() { k.tracer = nil }

// TraceSink receives every scheduler trace event as it happens. It lets
// an external observer (the obs plane) fold scheduler activity into its
// own stream without rtos importing it. The sink runs on the dispatch
// hot path and must not allocate.
type TraceSink func(at sim.Time, kind TraceEventKind, task string, cpu int)

// SetTraceSink installs (or, with nil, removes) the live trace sink.
// The sink is independent of StartTrace's buffering Tracer; both can be
// attached at once.
func (k *Kernel) SetTraceSink(sink TraceSink) { k.sink = sink }

// SetShardTraceSinks installs per-shard live trace sinks plus a barrier
// merge hook, or removes both with (nil, nil). sinks must have exactly
// Shards() entries: sinks[i] receives shard i's scheduler events from
// shard i's goroutine while a window runs — each sink owns its shard's
// buffer and needs no locking — and merge runs on the control goroutine
// at every window barrier (after all shards joined), where the consumer
// folds its per-shard buffers together in canonical (At, CPU, seq)
// order. On a sequential kernel (Shards() == 1) there are no window
// barriers, so merge never runs; sinks[0] still receives every event
// inline, but consumers should prefer SetTraceSink there.
func (k *Kernel) SetShardTraceSinks(sinks []TraceSink, merge func()) {
	if sinks != nil && len(sinks) != len(k.shards) {
		panic("rtos: SetShardTraceSinks needs exactly Shards() sinks")
	}
	k.shardSinks = sinks
	k.shardMerge = merge
}

func (k *Kernel) trace(at sim.Time, kind TraceEventKind, task string, cpuID int) {
	if k.sink != nil {
		k.sink(at, kind, task, cpuID)
	}
	tr := k.tracer
	if tr == nil || len(tr.events) >= tr.limit {
		return
	}
	tr.events = append(tr.events, TraceEvent{At: at, Kind: kind, Task: task, CPU: cpuID})
}

// traceOn records one scheduler event originating on shard sh. The
// sequential engine feeds the live sink and tracer directly; the sharded
// engine appends to the shard's window buffer, which the next barrier
// merges into the sink in canonical order (see Kernel.mergeWindow).
func (k *Kernel) traceOn(sh *kshard, at sim.Time, kind TraceEventKind, task string, cpuID int) {
	if k.shardSinks != nil {
		k.shardSinks[sh.id](at, kind, task, cpuID)
	}
	if len(k.shards) <= 1 {
		k.trace(at, kind, task, cpuID)
		return
	}
	if k.sink == nil && k.tracer == nil {
		return
	}
	sh.buf = append(sh.buf, TraceEvent{At: at, Kind: kind, Task: task, CPU: cpuID})
}

// CanonicalizeTrace stable-sorts a scheduler trace into the canonical
// (At, CPU) order, preserving each CPU's relative event order. Because
// per-CPU schedules are engine-independent, a canonicalised sequential
// trace equals the merged trace of a sharded run at any shard count —
// the equivalence the differential tests pin.
func CanonicalizeTrace(evs []TraceEvent) {
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].At != evs[j].At {
			return evs[i].At < evs[j].At
		}
		return evs[i].CPU < evs[j].CPU
	})
}

// Events returns the recorded events in order.
func (t *Tracer) Events() []TraceEvent {
	out := make([]TraceEvent, len(t.events))
	copy(out, t.events)
	return out
}

// Gantt renders the trace as an ASCII Gantt chart over [from, to) with
// the given column resolution. Each task gets a row; '#' marks execution,
// '.' marks released-but-waiting time, '*' marks a skipped release.
func (t *Tracer) Gantt(from, to sim.Time, cols int) string {
	if cols <= 0 {
		cols = 80
	}
	if to <= from {
		return "(empty window)\n"
	}
	span := to.Sub(from)
	colOf := func(at sim.Time) int {
		if at < from {
			return 0
		}
		c := int(int64(at.Sub(from)) * int64(cols) / int64(span))
		if c >= cols {
			c = cols - 1
		}
		return c
	}
	type rowState struct {
		cells   []byte
		running bool
		waiting bool
		lastCol int
	}
	rows := map[string]*rowState{}
	names := []string{}
	rowFor := func(task string) *rowState {
		r, ok := rows[task]
		if !ok {
			cells := make([]byte, cols)
			for i := range cells {
				cells[i] = ' '
			}
			r = &rowState{cells: cells}
			rows[task] = r
			names = append(names, task)
		}
		return r
	}
	fill := func(r *rowState, upto int) {
		ch := byte(' ')
		if r.running {
			ch = '#'
		} else if r.waiting {
			ch = '.'
		}
		if ch == ' ' {
			r.lastCol = upto
			return
		}
		for i := r.lastCol; i <= upto && i < len(r.cells); i++ {
			if r.cells[i] == ' ' || (ch == '#' && r.cells[i] == '.') {
				r.cells[i] = ch
			}
		}
		r.lastCol = upto
	}
	for _, ev := range t.events {
		if ev.At < from || ev.At >= to {
			continue
		}
		col := colOf(ev.At)
		r := rowFor(ev.Task)
		fill(r, col)
		switch ev.Kind {
		case TraceRelease:
			r.waiting = true
		case TraceDispatch:
			r.waiting, r.running = false, true
		case TracePreempt, TraceRotate:
			r.running, r.waiting = false, true
		case TraceComplete:
			r.running, r.waiting = false, false
		case TraceSkip:
			if col < len(r.cells) {
				r.cells[col] = '*'
			}
		}
		r.lastCol = col
	}
	// Extend final states to the window edge.
	for _, r := range rows {
		fill(r, cols-1)
	}
	sort.Strings(names)
	var b strings.Builder
	fmt.Fprintf(&b, "gantt %v .. %v (%v/col)\n", from, to, time.Duration(int64(span)/int64(cols)))
	for _, n := range names {
		fmt.Fprintf(&b, "%-8s |%s|\n", n, rows[n].cells)
	}
	b.WriteString("legend: #=running .=ready/waiting *=release skipped\n")
	return b.String()
}
