package ldap

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParseValid(t *testing.T) {
	cases := []string{
		"(a=1)",
		"(objectClass=drcom.Management)",
		"(&(a=1)(b=2))",
		"(|(a=1)(b=2)(c=3))",
		"(!(enabled=false))",
		"(cn=*)",
		"(cn=ab*)",
		"(cn=*ab)",
		"(cn=a*b*c)",
		"(ranking>=5)",
		"(ranking<=5)",
		"(name~=Smart Camera)",
		"(&(|(a=1)(b=2))(!(c=3)))",
		"( a = 1 )",
		`(path=C:\\temp)`,
		`(desc=open \(paren\))`,
		`(glob=literal\*star)`,
	}
	for _, src := range cases {
		if _, err := Parse(src); err != nil {
			t.Errorf("Parse(%q) failed: %v", src, err)
		}
	}
}

func TestParseInvalid(t *testing.T) {
	cases := []string{
		"",
		"   ",
		"a=1",
		"(a=1",
		"(a=1))",
		"((a=1)",
		"(=1)",
		"(a)",
		"(a>1)", // bare > is not RFC 1960
		"(a<1)",
		"(&)",
		"(|)",
		"(!)",
		"(a=1)(b=2)",
		"(a=un(escaped)",
		`(a=\)`,
		"(a>=*)", // wildcard with ordering operator
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) unexpectedly succeeded", src)
		}
	}
}

func TestSyntaxErrorMessage(t *testing.T) {
	_, err := Parse("(a=1")
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("error type %T, want *SyntaxError", err)
	}
	if !strings.Contains(se.Error(), "(a=1") {
		t.Fatalf("error %q does not cite input", se.Error())
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse of invalid filter did not panic")
		}
	}()
	MustParse("(((")
}

func TestOpString(t *testing.T) {
	for _, o := range []Op{OpAnd, OpOr, OpNot, OpEqual, OpApprox, OpGreaterEq, OpLessEq, OpPresent, OpSubstring} {
		if strings.HasPrefix(o.String(), "Op(") {
			t.Errorf("missing String for op %d", int(o))
		}
	}
	if Op(99).String() != "Op(99)" {
		t.Error("unknown op String")
	}
}

func TestNilFilterMatchesAll(t *testing.T) {
	var f *Filter
	if !f.Matches(Properties{"a": 1}) {
		t.Fatal("nil filter did not match")
	}
}

func TestMatchBasics(t *testing.T) {
	props := Properties{
		"objectClass": "drcom.Management",
		"name":        "camera",
		"priority":    2,
		"cpuusage":    0.1,
		"enabled":     true,
		"tags":        []string{"rt", "video"},
	}
	cases := []struct {
		src  string
		want bool
	}{
		{"(objectClass=drcom.Management)", true},
		{"(objectClass=other)", false},
		{"(name=camera)", true},
		{"(NAME=camera)", true}, // case-insensitive attribute
		{"(name=Camera)", false},
		{"(name~=CAMERA)", true},
		{"(name~= ca mera )", true},
		{"(priority=2)", true},
		{"(priority=3)", false},
		{"(priority>=2)", true},
		{"(priority>=3)", false},
		{"(priority<=2)", true},
		{"(priority<=1)", false},
		{"(cpuusage=0.1)", true},
		{"(cpuusage<=0.5)", true},
		{"(cpuusage>=0.5)", false},
		{"(enabled=true)", true},
		{"(enabled=false)", false},
		{"(missing=1)", false},
		{"(name=*)", true},
		{"(missing=*)", false},
		{"(name=cam*)", true},
		{"(name=*era)", true},
		{"(name=c*m*a)", true},
		{"(name=x*)", false},
		{"(tags=rt)", true},
		{"(tags=video)", true},
		{"(tags=audio)", false},
		{"(&(name=camera)(priority>=1))", true},
		{"(&(name=camera)(priority>=9))", false},
		{"(|(name=nope)(priority=2))", true},
		{"(!(name=nope))", true},
		{"(!(name=camera))", false},
	}
	for _, c := range cases {
		f, err := Parse(c.src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.src, err)
		}
		if got := f.Matches(props); got != c.want {
			t.Errorf("%q matches = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestMatchEscapedLiterals(t *testing.T) {
	props := Properties{"glob": "a*b", "paren": "x(y)z"}
	if !MustParse(`(glob=a\*b)`).Matches(props) {
		t.Fatal("escaped star literal did not match")
	}
	if MustParse(`(glob=a\*c)`).Matches(props) {
		t.Fatal("wrong escaped literal matched")
	}
	if !MustParse(`(paren=x\(y\)z)`).Matches(props) {
		t.Fatal("escaped parens did not match")
	}
	if !MustParse(`(glob=*\**)`).Matches(props) {
		t.Fatal("substring with escaped star did not match")
	}
}

func TestMatchNumericTypes(t *testing.T) {
	props := Properties{
		"i32": int32(7),
		"i64": int64(-3),
		"u":   uint(4),
		"f32": float32(1.5),
		"ints": []int{
			1, 5, 9,
		},
	}
	cases := []struct {
		src  string
		want bool
	}{
		{"(i32=7)", true},
		{"(i32>=6)", true},
		{"(i64=-3)", true},
		{"(i64<=-3)", true},
		{"(u=4)", true},
		{"(f32=1.5)", true},
		{"(f32>=1.4)", true},
		{"(ints=5)", true},
		{"(ints=6)", false},
		{"(ints>=9)", true},
		{"(i32>=6.5)", true}, // float literal vs int value
	}
	for _, c := range cases {
		if got := MustParse(c.src).Matches(props); got != c.want {
			t.Errorf("%q = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestOrderOnStrings(t *testing.T) {
	props := Properties{"v": "m"}
	if !MustParse("(v>=a)").Matches(props) {
		t.Fatal("string >= failed")
	}
	if MustParse("(v>=z)").Matches(props) {
		t.Fatal("string >= matched wrongly")
	}
}

func TestOrderOnBoolFails(t *testing.T) {
	props := Properties{"b": true}
	if MustParse("(b>=true)").Matches(props) {
		t.Fatal("ordering on bool matched")
	}
}

func TestFilterStringRoundTrip(t *testing.T) {
	src := "(&(a=1)(b=2))"
	f := MustParse(src)
	if f.String() != src {
		t.Fatalf("String = %q, want %q", f.String(), src)
	}
	if f.Op() != OpAnd {
		t.Fatalf("Op = %v", f.Op())
	}
}

func TestSubstringMatchTable(t *testing.T) {
	cases := []struct {
		pattern string
		s       string
		want    bool
	}{
		{"a*", "abc", true},
		{"a*", "xbc", false},
		{"*c", "abc", true},
		{"*c", "abx", false},
		{"a*c", "abc", true},
		{"a*c", "ac", true},
		{"a*c", "abx", false},
		{"*b*", "abc", true},
		{"*b*", "axc", false},
		{"a*b*c", "aXbYc", true},
		{"a*b*c", "acb", false},
		{"**", "anything", true},
	}
	for _, c := range cases {
		f := MustParse("(v=" + c.pattern + ")")
		got := f.Matches(Properties{"v": c.s})
		if got != c.want {
			t.Errorf("pattern %q vs %q = %v, want %v", c.pattern, c.s, got, c.want)
		}
	}
}

// Property: a parsed filter's String re-parses to a filter with identical
// match behaviour on a fixed probe set.
func TestParseStringStable(t *testing.T) {
	probes := []Properties{
		{"a": "x"}, {"a": "1", "b": "2"}, {"c": 3}, {},
	}
	seeds := []string{
		"(a=x)", "(&(a=1)(b=2))", "(|(a=*)(c>=2))", "(!(a=x))", "(a=x*y)",
	}
	for _, src := range seeds {
		f1 := MustParse(src)
		f2, err := Parse(f1.String())
		if err != nil {
			t.Fatalf("reparse of %q: %v", f1.String(), err)
		}
		for _, p := range probes {
			if f1.Matches(p) != f2.Matches(p) {
				t.Fatalf("filter %q: reparse changed semantics on %v", src, p)
			}
		}
	}
}

// Property: matching never panics on arbitrary string props.
func TestMatchNeverPanics(t *testing.T) {
	f := MustParse("(&(a=*x*)(n>=10)(!(b~=Y)))")
	prop := func(a, b string, n int16) bool {
		props := Properties{"a": a, "b": b, "n": int(n)}
		_ = f.Matches(props)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: Parse never panics on arbitrary input; it either returns a
// filter or an error.
func TestParseNeverPanics(t *testing.T) {
	prop := func(s string) bool {
		f, err := Parse(s)
		if err != nil {
			return f == nil
		}
		// Whatever parsed must also match safely.
		_ = f.Matches(Properties{"a": "b", "n": 1})
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: parseable filters built from random pieces round-trip through
// String with stable semantics.
func TestStructuredFilterNeverPanics(t *testing.T) {
	prop := func(attr string, val string, op uint8) bool {
		if attr == "" {
			return true
		}
		ops := []string{"=", "~=", ">=", "<="}
		src := "(" + attr + ops[int(op)%len(ops)] + val + ")"
		f, err := Parse(src)
		if err != nil {
			return true // plenty of random strings are invalid; fine
		}
		_ = f.Matches(Properties{attr: val})
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
