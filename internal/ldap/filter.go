// Package ldap implements RFC 1960 string filters as used by the OSGi
// service registry: (&(objectClass=foo)(ranking>=5)), (|(a=1)(b=*x*)),
// (!(enabled=false)), presence (attr=*) and substring matches.
//
// Matching is performed against property maps of the kinds OSGi allows:
// strings, booleans, signed integers, floats, and slices of those (a slice
// matches if any element matches). Attribute names are case-insensitive,
// as in the OSGi specification.
package ldap

import (
	"errors"
	"fmt"
	"strings"
)

// Op identifies a filter node kind.
type Op int

// Filter node kinds.
const (
	OpAnd Op = iota + 1
	OpOr
	OpNot
	OpEqual
	OpApprox
	OpGreaterEq
	OpLessEq
	OpPresent
	OpSubstring
)

func (o Op) String() string {
	switch o {
	case OpAnd:
		return "&"
	case OpOr:
		return "|"
	case OpNot:
		return "!"
	case OpEqual:
		return "="
	case OpApprox:
		return "~="
	case OpGreaterEq:
		return ">="
	case OpLessEq:
		return "<="
	case OpPresent:
		return "=*"
	case OpSubstring:
		return "=sub"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Filter is a parsed RFC 1960 filter. Filters are immutable once parsed
// and safe for concurrent use.
type Filter struct {
	op       Op
	children []*Filter // for And/Or/Not
	attr     string    // lower-cased attribute name
	value    string    // literal for comparisons
	subParts []string  // for substring: parts between '*'s; "" at ends means open
	src      string
}

// String returns the canonical source text of the filter.
func (f *Filter) String() string { return f.src }

// Op reports the node kind at the root of the filter.
func (f *Filter) Op() Op { return f.op }

// ErrEmptyFilter is returned when the input is empty or blank.
var ErrEmptyFilter = errors.New("ldap: empty filter")

// SyntaxError describes a malformed filter string.
type SyntaxError struct {
	Input string
	Pos   int
	Msg   string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("ldap: %s at position %d in %q", e.Msg, e.Pos, e.Input)
}

// Parse parses an RFC 1960 filter string.
func Parse(s string) (*Filter, error) {
	trimmed := strings.TrimSpace(s)
	if trimmed == "" {
		return nil, ErrEmptyFilter
	}
	p := &parser{in: trimmed}
	f, err := p.parseFilter()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.in) {
		return nil, p.errorf("trailing characters")
	}
	return f, nil
}

// MustParse parses a filter known to be valid at compile time; it panics on
// error and is intended for package-level constants in tests and tools.
func MustParse(s string) *Filter {
	f, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return f
}

type parser struct {
	in  string
	pos int
}

func (p *parser) errorf(format string, args ...any) error {
	return &SyntaxError{Input: p.in, Pos: p.pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) skipSpace() {
	for p.pos < len(p.in) && (p.in[p.pos] == ' ' || p.in[p.pos] == '\t') {
		p.pos++
	}
}

func (p *parser) expect(c byte) error {
	if p.pos >= len(p.in) || p.in[p.pos] != c {
		return p.errorf("expected %q", string(c))
	}
	p.pos++
	return nil
}

func (p *parser) parseFilter() (*Filter, error) {
	p.skipSpace()
	start := p.pos
	if err := p.expect('('); err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos >= len(p.in) {
		return nil, p.errorf("unterminated filter")
	}
	var f *Filter
	var err error
	switch p.in[p.pos] {
	case '&':
		p.pos++
		f, err = p.parseComposite(OpAnd)
	case '|':
		p.pos++
		f, err = p.parseComposite(OpOr)
	case '!':
		p.pos++
		var inner *Filter
		inner, err = p.parseFilter()
		if err == nil {
			f = &Filter{op: OpNot, children: []*Filter{inner}}
		}
	default:
		f, err = p.parseSimple()
	}
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if err := p.expect(')'); err != nil {
		return nil, err
	}
	f.src = p.in[start:p.pos]
	return f, nil
}

func (p *parser) parseComposite(op Op) (*Filter, error) {
	var kids []*Filter
	for {
		p.skipSpace()
		if p.pos < len(p.in) && p.in[p.pos] == ')' {
			break
		}
		k, err := p.parseFilter()
		if err != nil {
			return nil, err
		}
		kids = append(kids, k)
	}
	if len(kids) == 0 {
		return nil, p.errorf("composite %v with no operands", op)
	}
	return &Filter{op: op, children: kids}, nil
}

// parseSimple handles attr=value, attr~=value, attr>=value, attr<=value,
// attr=*, and attr=*sub*strings*.
func (p *parser) parseSimple() (*Filter, error) {
	attrStart := p.pos
	for p.pos < len(p.in) && !strings.ContainsRune("=<>~()", rune(p.in[p.pos])) {
		p.pos++
	}
	attr := strings.TrimSpace(p.in[attrStart:p.pos])
	if attr == "" {
		return nil, p.errorf("missing attribute name")
	}
	if p.pos >= len(p.in) {
		return nil, p.errorf("missing operator")
	}
	var op Op
	switch p.in[p.pos] {
	case '=':
		op = OpEqual
		p.pos++
	case '~':
		op = OpApprox
		p.pos++
		if err := p.expect('='); err != nil {
			return nil, err
		}
	case '>':
		op = OpGreaterEq
		p.pos++
		if err := p.expect('='); err != nil {
			return nil, err
		}
	case '<':
		op = OpLessEq
		p.pos++
		if err := p.expect('='); err != nil {
			return nil, err
		}
	default:
		return nil, p.errorf("bad operator %q", string(p.in[p.pos]))
	}
	value, hasStar, err := p.parseValue()
	if err != nil {
		return nil, err
	}
	lattr := strings.ToLower(attr)
	if op == OpEqual && hasStar {
		if value == "*" {
			return &Filter{op: OpPresent, attr: lattr}, nil
		}
		return &Filter{op: OpSubstring, attr: lattr, subParts: splitSub(value)}, nil
	}
	if hasStar {
		return nil, p.errorf("wildcard not allowed with %v", op)
	}
	return &Filter{op: op, attr: lattr, value: value}, nil
}

// parseValue reads a value up to the closing ')', honouring backslash
// escapes per RFC 1960 (\(, \), \*, \\). It reports whether an unescaped
// '*' occurred; the returned string keeps unescaped '*' characters and
// substitutes \x01 for escaped '*' so splitSub can tell them apart, then
// restores them.
func (p *parser) parseValue() (string, bool, error) {
	var b strings.Builder
	hasStar := false
	for p.pos < len(p.in) {
		c := p.in[p.pos]
		switch c {
		case ')':
			return b.String(), hasStar, nil
		case '(':
			return "", false, p.errorf("unescaped '(' in value")
		case '\\':
			p.pos++
			if p.pos >= len(p.in) {
				return "", false, p.errorf("dangling escape")
			}
			esc := p.in[p.pos]
			if esc == '*' {
				b.WriteByte(escapedStar)
			} else {
				b.WriteByte(esc)
			}
			p.pos++
		case '*':
			hasStar = true
			b.WriteByte(c)
			p.pos++
		default:
			b.WriteByte(c)
			p.pos++
		}
	}
	return "", false, p.errorf("unterminated value")
}

// escapedStar is an in-band marker for a literal '*' that was escaped in
// the source; it cannot collide with filter text because control bytes are
// not meaningful in RFC 1960 values.
const escapedStar = '\x01'

func unescapeStars(s string) string {
	return strings.ReplaceAll(s, string(rune(escapedStar)), "*")
}

// splitSub splits a substring pattern on unescaped '*'s. The resulting
// slice alternates fixed parts; empty leading/trailing entries mean the
// match is open at that end.
func splitSub(pattern string) []string {
	parts := strings.Split(pattern, "*")
	for i, p := range parts {
		parts[i] = unescapeStars(p)
	}
	return parts
}
