package ldap

import (
	"strconv"
	"strings"
)

// Properties is a case-insensitive-keyed property map in the OSGi style.
// Keys are looked up with case folding; values may be string, bool, int,
// int32, int64, float32, float64, or slices of those.
type Properties map[string]any

// get performs a case-insensitive lookup.
func (p Properties) get(key string) (any, bool) {
	if v, ok := p[key]; ok {
		return v, true
	}
	for k, v := range p {
		if strings.EqualFold(k, key) {
			return v, true
		}
	}
	return nil, false
}

// Matches evaluates the filter against props. A nil filter matches
// everything (OSGi convention for "no filter").
func (f *Filter) Matches(props Properties) bool {
	if f == nil {
		return true
	}
	switch f.op {
	case OpAnd:
		for _, k := range f.children {
			if !k.Matches(props) {
				return false
			}
		}
		return true
	case OpOr:
		for _, k := range f.children {
			if k.Matches(props) {
				return true
			}
		}
		return false
	case OpNot:
		return !f.children[0].Matches(props)
	case OpPresent:
		_, ok := props.get(f.attr)
		return ok
	default:
		v, ok := props.get(f.attr)
		if !ok {
			return false
		}
		return matchValue(f, v)
	}
}

// matchValue applies a leaf comparison to a single value, distributing
// over slices (any element may match).
func matchValue(f *Filter, v any) bool {
	switch vv := v.(type) {
	case []string:
		for _, e := range vv {
			if matchScalar(f, e) {
				return true
			}
		}
		return false
	case []int:
		for _, e := range vv {
			if matchScalar(f, e) {
				return true
			}
		}
		return false
	case []any:
		for _, e := range vv {
			if matchScalar(f, e) {
				return true
			}
		}
		return false
	default:
		return matchScalar(f, v)
	}
}

func matchScalar(f *Filter, v any) bool {
	switch f.op {
	case OpSubstring:
		s, ok := stringOf(v)
		if !ok {
			return false
		}
		return substringMatch(f.subParts, s)
	case OpEqual, OpApprox:
		return compareEqual(f, v)
	case OpGreaterEq:
		c, ok := compareOrder(f, v)
		return ok && c >= 0
	case OpLessEq:
		c, ok := compareOrder(f, v)
		return ok && c <= 0
	default:
		return false
	}
}

func stringOf(v any) (string, bool) {
	s, ok := v.(string)
	return s, ok
}

// compareEqual compares the filter literal to v using v's native type.
// OpApprox additionally folds case and strips whitespace for strings.
func compareEqual(f *Filter, v any) bool {
	lit := unescapeStars(f.value)
	switch vv := v.(type) {
	case string:
		if f.op == OpApprox {
			return foldApprox(vv) == foldApprox(lit)
		}
		return vv == lit
	case bool:
		b, err := strconv.ParseBool(strings.TrimSpace(lit))
		return err == nil && b == vv
	case int:
		return intEq(int64(vv), lit)
	case int32:
		return intEq(int64(vv), lit)
	case int64:
		return intEq(vv, lit)
	case uint:
		return intEq(int64(vv), lit)
	case float32:
		return floatEq(float64(vv), lit)
	case float64:
		return floatEq(vv, lit)
	default:
		return false
	}
}

func intEq(v int64, lit string) bool {
	n, err := strconv.ParseInt(strings.TrimSpace(lit), 10, 64)
	return err == nil && n == v
}

func floatEq(v float64, lit string) bool {
	fl, err := strconv.ParseFloat(strings.TrimSpace(lit), 64)
	return err == nil && fl == v
}

func foldApprox(s string) string {
	return strings.ToLower(strings.Join(strings.Fields(s), ""))
}

// compareOrder returns sign(v - literal) when both sides are comparable.
func compareOrder(f *Filter, v any) (int, bool) {
	lit := strings.TrimSpace(unescapeStars(f.value))
	switch vv := v.(type) {
	case string:
		return strings.Compare(vv, lit), true
	case bool:
		return 0, false
	case int:
		return intCmp(int64(vv), lit)
	case int32:
		return intCmp(int64(vv), lit)
	case int64:
		return intCmp(vv, lit)
	case uint:
		return intCmp(int64(vv), lit)
	case float32:
		return floatCmp(float64(vv), lit)
	case float64:
		return floatCmp(vv, lit)
	default:
		return 0, false
	}
}

func intCmp(v int64, lit string) (int, bool) {
	n, err := strconv.ParseInt(lit, 10, 64)
	if err != nil {
		// Allow float literals against int values.
		fl, ferr := strconv.ParseFloat(lit, 64)
		if ferr != nil {
			return 0, false
		}
		return cmpFloat(float64(v), fl), true
	}
	return cmpInt(v, n), true
}

func floatCmp(v float64, lit string) (int, bool) {
	fl, err := strconv.ParseFloat(lit, 64)
	if err != nil {
		return 0, false
	}
	return cmpFloat(v, fl), true
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// substringMatch checks s against the alternating fixed parts of a
// substring pattern ("ab*cd*" → ["ab","cd",""]).
func substringMatch(parts []string, s string) bool {
	if len(parts) == 0 {
		return s == ""
	}
	// Anchored prefix.
	if parts[0] != "" {
		if !strings.HasPrefix(s, parts[0]) {
			return false
		}
		s = s[len(parts[0]):]
	}
	last := len(parts) - 1
	// Middle parts must occur in order.
	for i := 1; i < last; i++ {
		idx := strings.Index(s, parts[i])
		if idx < 0 {
			return false
		}
		s = s[idx+len(parts[i]):]
	}
	// Anchored suffix.
	if last > 0 && parts[last] != "" {
		return strings.HasSuffix(s, parts[last])
	}
	return true
}
